// Benchmarks regenerating every table and figure of the paper (one bench
// per artifact, DESIGN.md §5) plus the design-choice ablations of
// DESIGN.md §6. Each iteration performs a complete, reduced-scale run of
// the corresponding experiment; the CLI tools (cmd/rhchar, cmd/rhmitigate,
// cmd/rhreport) run the same code at full scale.
package rowhammer_test

import (
	"context"
	"testing"

	rowhammer "repro"
	"repro/internal/attack"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/faultmodel"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
)

// benchOptions is the reduced characterization scale used per iteration.
func benchOptions() core.Options {
	return core.Options{
		Scale:             chips.ScaleTiny,
		Stride:            1,
		MaxChipsPerConfig: 1,
		Iterations:        2,
		Seed:              1,
	}
}

func BenchmarkTable1Population(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := core.RunTable1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty census")
		}
	}
}

func BenchmarkTable2RowHammerable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := core.RunTable2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 6 {
			b.Fatalf("got %d rows", len(t.Rows))
		}
	}
}

func BenchmarkTable3WorstPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunTable3(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4HCFirst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.RunHCFirstStudy(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(s.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable5Monotonicity(b *testing.B) {
	o := benchOptions()
	o.Iterations = 4
	o.Stride = 4
	for i := 0; i < b.N; i++ {
		if _, err := core.RunTable5(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunFigure4(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5RateVsHC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunFigure5(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6Spatial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunFigure6(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7WordDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunFigure7(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8HCFirstDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := core.RunHCFirstStudy(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		_ = s.FormatFigure8()
	}
}

func BenchmarkFigure9ECC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunFigure9(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTables7and8Modules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.RunTable7().Modules) != 110 {
			b.Fatal("DDR4 module count")
		}
		if len(core.RunTable8().Modules) != 60 {
			b.Fatal("DDR3 module count")
		}
	}
}

// benchMitigationOptions is one reduced Figure 10 sweep.
func benchMitigationOptions() core.MitigationOptions {
	return core.MitigationOptions{
		Mixes:        2,
		Cores:        4,
		TraceRecords: 1_000,
		WarmupInsts:  1_000,
		MeasureInsts: 8_000,
		HCSweep:      []int{100_000, 2_000, 256},
		Mechanisms: []core.MechanismID{
			core.MechPARA, core.MechIdeal, core.MechTWiCeIdeal,
			core.MechProHIT, core.MechMRLoc,
		},
		Seed: 1,
	}
}

func BenchmarkFigure10Mitigations(b *testing.B) {
	o := benchMitigationOptions()
	for i := 0; i < b.N; i++ {
		f, err := core.RunFigure10(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// benchAttackOptions is one reduced attack-evaluation grid point.
func benchAttackOptions() core.AttackOptions {
	return core.AttackOptions{
		Patterns:     []attack.Kind{attack.DoubleSided},
		Mechanisms:   []core.MechanismID{core.MechNone, core.MechIdeal},
		HCSweep:      []int{512},
		BenignCores:  2,
		TraceRecords: 800,
		MemCycles:    150_000,
		Rows:         1024,
		Seed:         1,
	}
}

func BenchmarkAttackEval(b *testing.B) {
	o := benchAttackOptions()
	for i := 0; i < b.N; i++ {
		ev, err := core.RunAttackEval(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(ev.Points) != 2 {
			b.Fatalf("points = %d", len(ev.Points))
		}
	}
}

// BenchmarkHammerObserverACT measures the per-activation cost of the
// attack subsystem's damage accounting — the hook on the simulator's
// hottest path.
func BenchmarkHammerObserverACT(b *testing.B) {
	chip, err := rowhammer.NewChip(rowhammer.ChipConfig{
		Name: "obs-bench", Banks: 16, Rows: 4096, RowBits: 1024,
		HCFirst: 1 << 40, Rate150k: 5e-5, // unreachable: pure accounting cost
		WorstPattern: rowhammer.RowStripe0, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	chip.WriteAll(rowhammer.RowStripe0)
	obs := rowhammer.NewHammerObserver(chip)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.OnACT(0, i&15, 100+(i&1), int64(i))
	}
}

func BenchmarkTable6Baseline(b *testing.B) {
	cfg := sim.Table6Config(1_000, 10_000)
	mix := trace.Mixes(1, 4, 1_000, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, mix)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalIPC() <= 0 {
			b.Fatal("zero IPC")
		}
	}
}

// --- Engine stress shapes ---------------------------------------------------
//
// The full suite runs under both engines via scripts/bench.sh (RH_ENGINE
// selects the driver); these two benchmarks are the sparse-trace shapes
// the event engine exists for — long idle stretches the cycle engine
// grinds through one cycle at a time.

// BenchmarkPacedAttackSparse is a duty-cycle paced attacker running alone
// (the trr-dodge cell shape): burst of serialized flush+loads, then most
// of each tREFI idle in gap instructions.
func BenchmarkPacedAttackSparse(b *testing.B) {
	cfg := sim.Table6Config(0, 1)
	cfg.Geo.Rows = 1024
	cfg.T = rowhammer.DDR4Timing(cfg.Geo.Rows)
	cfg.WarmupInsts = 0
	cfg.MeasureInsts = 1 << 40
	cfg.MaxCPUCycles = 400_000 * int64(cfg.CPUFreqMHz) / int64(cfg.MemFreqMHz)
	spec := attack.Spec{Kind: attack.DoubleSided, Records: 2_048, Seed: 5, DutyCycle: 0.25}
	tr, _, err := spec.Synthesize(cfg.Geo, attack.Target{Bank: 0, Row: 512})
	if err != nil {
		b.Fatal(err)
	}
	mix := trace.Mix{Name: "paced", Traces: []*trace.Trace{tr}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, mix)
		if err != nil {
			b.Fatal(err)
		}
		if res.Ctrl.Reads == 0 {
			b.Fatal("no attacker reads")
		}
	}
}

// BenchmarkSparseBenign is a single cache-resident core: almost every
// access hits the LLC and the memory system idles between refreshes.
func BenchmarkSparseBenign(b *testing.B) {
	cfg := sim.Table6Config(2_000, 40_000)
	p := trace.Profile{Name: "resident", MemFraction: 0.02, WorkingSetBytes: 1 << 20, Sequential: 0.9, WriteRatio: 0.2}
	mix := trace.Mix{Name: "sparse", Traces: []*trace.Trace{p.Generate(2_000, 9)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, mix)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalIPC() <= 0 {
			b.Fatal("zero IPC")
		}
	}
}

// --- Ablations (DESIGN.md §6) ---------------------------------------------

func runAblatedSim(b *testing.B, mutate func(*sim.Config)) float64 {
	b.Helper()
	cfg := sim.Table6Config(1_000, 10_000)
	if mutate != nil {
		mutate(&cfg)
	}
	mix := trace.Mixes(1, 4, 1_000, 7)[0]
	res, err := sim.Run(cfg, mix)
	if err != nil {
		b.Fatal(err)
	}
	return res.TotalIPC()
}

func BenchmarkAblationFRFCFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAblatedSim(b, nil)
	}
}

func BenchmarkAblationFCFSOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAblatedSim(b, func(c *sim.Config) { c.Ctrl.FCFSOnly = true })
	}
}

func BenchmarkAblationOpenRow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAblatedSim(b, nil)
	}
}

func BenchmarkAblationClosedRow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runAblatedSim(b, func(c *sim.Config) { c.Ctrl.ClosedRow = true })
	}
}

func benchPARAFanout(b *testing.B, fanout int) {
	cfg := sim.Table6Config(1_000, 10_000)
	mix := trace.Mixes(1, 4, 1_000, 7)[0]
	for i := 0; i < b.N; i++ {
		para, err := mitigation.NewPARA(cfg.MitigationParams(1_024, 1), cfg.T.TCKPS)
		if err != nil {
			b.Fatal(err)
		}
		para.WithFanout(fanout)
		run := cfg
		run.Mechanism = para
		if _, err := sim.Run(run, mix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPARAFanout1(b *testing.B) { benchPARAFanout(b, 1) }
func BenchmarkAblationPARAFanout2(b *testing.B) { benchPARAFanout(b, 2) }

func benchBetaSweep(b *testing.B, beta float64) {
	cfg := faultmodel.Config{
		Name: "ablate-beta", Banks: 1, Rows: 256, RowBits: 1024,
		HCFirst: 10_000, Beta: beta,
		WorstPattern: faultmodel.RowStripe0, Seed: 11,
	}
	for i := 0; i < b.N; i++ {
		chip, err := faultmodel.NewChip(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tester, err := rowhammer.NewTester(chip, 0)
		if err != nil {
			b.Fatal(err)
		}
		tester.WritePattern(chip.Config().WorstPattern)
		if _, err := tester.Sweep(100_000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBeta2(b *testing.B) { benchBetaSweep(b, 2) }
func BenchmarkAblationBeta4(b *testing.B) { benchBetaSweep(b, 4) }

// BenchmarkAblationLazySampling measures the lazy vulnerable-cell path:
// chip construction plus a single-row test, which instantiates only the
// touched rows.
func BenchmarkAblationLazySampling(b *testing.B) {
	cfg := faultmodel.Config{
		Name: "lazy", Banks: 1, Rows: 8192, RowBits: 8192,
		HCFirst: 10_000, Rate150k: 5e-5,
		WorstPattern: faultmodel.RowStripe0, Seed: 5,
	}
	for i := 0; i < b.N; i++ {
		chip, err := faultmodel.NewChip(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tester, err := rowhammer.NewTester(chip, 0)
		if err != nil {
			b.Fatal(err)
		}
		tester.WritePattern(chip.Config().WorstPattern)
		if _, err := tester.HammerDoubleSided(4096, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEagerSampling instantiates the full cell population
// up front (ForEachCell) before the same single-row test.
func BenchmarkAblationEagerSampling(b *testing.B) {
	cfg := faultmodel.Config{
		Name: "eager", Banks: 1, Rows: 8192, RowBits: 8192,
		HCFirst: 10_000, Rate150k: 5e-5,
		WorstPattern: faultmodel.RowStripe0, Seed: 5,
	}
	for i := 0; i < b.N; i++ {
		chip, err := faultmodel.NewChip(cfg)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		chip.ForEachCell(func(faultmodel.CellInfo) { n++ })
		tester, err := rowhammer.NewTester(chip, 0)
		if err != nil {
			b.Fatal(err)
		}
		tester.WritePattern(chip.Config().WorstPattern)
		if _, err := tester.HammerDoubleSided(4096, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core micro-benchmarks --------------------------------------------------

func BenchmarkChipFullSweep(b *testing.B) {
	chip, err := rowhammer.NewChip(rowhammer.ChipConfig{
		Name: "bench", Banks: 1, Rows: 512, RowBits: 2048,
		HCFirst: 10_000, Rate150k: 1e-4,
		WorstPattern: rowhammer.RowStripe0, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	tester, err := rowhammer.NewTester(chip, 0)
	if err != nil {
		b.Fatal(err)
	}
	tester.WritePattern(rowhammer.RowStripe0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tester.Sweep(100_000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControllerSaturated(b *testing.B) {
	geo := rowhammer.Table6Geometry()
	t := rowhammer.DDR4Timing(geo.Rows)
	for i := 0; i < b.N; i++ {
		ch, err := rowhammer.NewChannel(geo, t)
		if err != nil {
			b.Fatal(err)
		}
		ctrl, err := memctrl.New(memctrl.Table6Config(), ch, nil)
		if err != nil {
			b.Fatal(err)
		}
		mapper, err := rowhammer.NewAddressMapper(geo)
		if err != nil {
			b.Fatal(err)
		}
		addr := int64(0)
		for c := 0; c < 100_000; c++ {
			ctrl.EnqueueRead(0, mapper.LineAddress(addr), func() {})
			addr += 4096 // row-conflict heavy
			ctrl.Tick()
		}
	}
}

// benchStoreSpec is the tiny fig5 grid the CI service smoke submits
// twice; the store benchmarks time the two sides of that exchange.
func benchStoreSpec(b *testing.B) core.ExperimentSpec {
	b.Helper()
	spec, err := core.NewSpec("fig5", 7, core.CharParams{Scale: "tiny", Chips: 2, Iterations: 2})
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// BenchmarkStoreColdSubmit is a cache-miss submission: compute the grid
// and persist it atomically (the service's first-POST path).
func BenchmarkStoreColdSubmit(b *testing.B) {
	spec := benchStoreSpec(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		r := store.Runner{Store: st}
		_, _, hit, err := r.Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if hit {
			b.Fatal("cold submit reported a cache hit")
		}
	}
}

// BenchmarkStoreWarmHit is the second submission of the same spec: the
// result must come back from the store, verified, with no tasks run.
func BenchmarkStoreWarmHit(b *testing.B) {
	spec := benchStoreSpec(b)
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	r := store.Runner{Store: st}
	if _, _, _, err := r.Run(context.Background(), spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, hit, err := r.Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if !hit {
			b.Fatal("warm submit missed the store")
		}
	}
}
