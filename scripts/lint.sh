#!/usr/bin/env bash
# The repository lint gate: gofmt, go vet, rhlint (the determinism and
# hot-path allocation suite, see docs/LINT.md), then staticcheck and
# shellcheck when installed. CI runs the same steps as a required job;
# locally the optional tools are skipped with a notice rather than
# failing machines that lack them.
#
# Usage: scripts/lint.sh
set -uo pipefail
cd "$(dirname "$0")/.." || exit 1

fail=0

echo "== gofmt =="
fmtout="$(gofmt -l .)"
if [ -n "$fmtout" ]; then
	echo "gofmt needed on:"
	echo "$fmtout"
	fail=1
fi

echo "== go vet =="
go vet ./... || fail=1

echo "== rhlint =="
rhlint_bin="$(mktemp -t rhlint.XXXXXX)"
if go build -o "$rhlint_bin" ./cmd/rhlint; then
	# The gate: go vet mode covers test packages and rides the build cache.
	go vet -vettool="$rhlint_bin" ./... || fail=1
	# The inventory: the -json run's stderr summary counts findings,
	# suppressed (//rhlint:allow) sites, packages, and facts.
	"$rhlint_bin" -json ./... >/dev/null || fail=1
else
	fail=1
fi
rm -f "$rhlint_bin"

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./... || fail=1
else
	echo "staticcheck not installed; skipped (CI runs it)"
fi

echo "== shellcheck scripts/ =="
if command -v shellcheck >/dev/null 2>&1; then
	shellcheck scripts/*.sh || fail=1
else
	echo "shellcheck not installed; skipped (CI runs it)"
fi

if [ "$fail" -ne 0 ]; then
	echo "lint: FAIL"
	exit 1
fi
echo "lint: ok"
