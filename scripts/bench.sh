#!/usr/bin/env bash
# Regenerates the committed perf trajectory (BENCH_<pr>.json): the full
# bench_test.go suite under both simulation engines with pinned
# -benchtime/-count so numbers stay comparable across PRs.
#
# Usage: scripts/bench.sh [out.json]     (default BENCH_8.json)
#   BENCHTIME=3x COUNT=5 scripts/bench.sh    # override the pins
#
# Per benchmark the minimum ns/op over COUNT runs is kept — the standard
# noise-robust statistic for shared machines — along with that run's
# bytes/op and allocs/op (-benchmem), which are iteration-deterministic
# and expose allocation regressions the timing noise can hide. The
# engines alternate per iteration so slow host periods skew both columns
# equally instead of whichever engine happened to run second.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

BENCHTIME="${BENCHTIME:-3x}"
COUNT="${COUNT:-5}"
OUT="${1:-BENCH_8.json}"

run() {
	RH_ENGINE="$1" go test -run '^$' -bench . -benchtime="$BENCHTIME" -benchmem -count=1 .
}

event_raw=""
cycle_raw=""
i=0
while [ "$i" -lt "$COUNT" ]; do
	event_raw+="$(run event)"$'\n'
	cycle_raw+="$(run cycle)"$'\n'
	i=$((i + 1))
done

{
	printf '{\n'
	printf '  "script": "scripts/bench.sh",\n'
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "count": %s,\n' "$COUNT"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "statistic": "min ns/op over count runs; bytes/allocs from the min run",\n'
	printf '  "caveat": "ns/op is shared-machine noisy (BENCH_7 drifted up to ~50%% vs BENCH_6 on untouched benchmarks); compare trajectories on min-of-count and on the deterministic allocs_op/bytes_op columns",\n'
	printf '  "benchmarks": [\n'
	awk -v event="$event_raw" -v cycle="$cycle_raw" '
	function collect(raw, min, bytes, allocs, order,    n, lines, i, parts, name, ns) {
		n = split(raw, lines, "\n")
		for (i = 1; i <= n; i++) {
			if (lines[i] !~ /^Benchmark/) continue
			split(lines[i], parts, /[ \t]+/)
			name = parts[1]
			sub(/-[0-9]+$/, "", name)
			ns = parts[3] + 0
			if (!(name in min) || ns < min[name]) {
				if (!(name in min)) order[++order[0]] = name
				min[name] = ns
				bytes[name] = parts[5] + 0
				allocs[name] = parts[7] + 0
			}
		}
	}
	BEGIN {
		collect(event, emin, ebytes, eallocs, eorder)
		collect(cycle, cmin, cbytes, callocs, corder)
		for (i = 1; i <= eorder[0]; i++) {
			name = eorder[i]
			sep = (i < eorder[0]) ? "," : ""
			ratio = (name in cmin && emin[name] > 0) ? cmin[name] / emin[name] : 0
			printf "    {\"name\": \"%s\", \"event_ns_op\": %d, \"event_bytes_op\": %d, \"event_allocs_op\": %d, \"cycle_ns_op\": %d, \"cycle_bytes_op\": %d, \"cycle_allocs_op\": %d, \"cycle_over_event\": %.3f}%s\n", \
				name, emin[name], ebytes[name], eallocs[name], cmin[name], cbytes[name], callocs[name], ratio, sep
		}
	}'
	printf '  ]\n'
	printf '}\n'
} > "$OUT"

echo "wrote $OUT"
