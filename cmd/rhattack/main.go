// Command rhattack runs the adversarial mitigation evaluation: mixed
// attacker+benign cycle-accurate simulations over a (mechanism × attack
// pattern × HCfirst) grid, with the fault model coupled to the memory
// controller's command stream. It reports security outcomes (escaped bit
// flips, time to first flip, achieved aggressor ACT rate, the attacker's
// DRAM bus share) alongside benign performance under attack and DRAM
// bandwidth overhead.
//
// rhattack is a flag front end over the "attack" experiment of the
// declarative registry: -emit-spec prints the equivalent spec, which
// `rhx run` executes (or shards) identically.
//
// Usage:
//
//	rhattack                                  # default grid
//	rhattack -mechs None,PARA,Ideal -hc 2000  # focused run
//	rhattack -patterns double-sided,scattered
//	rhattack -cycles 1000000 -rows 4096       # quick, small system
//	rhattack -catalog                         # print the pattern catalog
//	rhattack -emit-spec > attack.json         # then: rhx run -spec attack.json -shard 0/4 …
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
)

var catalog = []struct {
	kind attack.Kind
	desc string
}{
	{attack.SingleSided, "one adjacent aggressor + a far conflict row (the original RowHammer loop)"},
	{attack.DoubleSided, "alternate the two rows flanking the victim (Algorithm 1 worst case)"},
	{attack.ManySided, "N aggressors two rows apart, TRRespass-style; defeats small tracker tables"},
	{attack.Scattered, "double-sided pairs in several banks at once; bank-parallel ACT rate"},
	{attack.Decoy, "double-sided interleaved with random far-row reads; pollutes frequency trackers"},
}

// parseInts splits a comma-separated int list.
func parseInts(prog, flagName, v string) []int {
	var out []int
	for _, s := range strings.Split(v, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "%s: bad %s value %q\n", prog, flagName, s)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func main() {
	d := core.DefaultAttackOptions()
	var (
		patternsStr = flag.String("patterns", "", "comma-separated attack patterns (default: all)")
		mechsStr    = flag.String("mechs", "", "comma-separated mechanisms (default: None,PARA,BlockHammer,Ideal)")
		hcStr       = flag.String("hc", "", "comma-separated HCfirst grid points (default: 10000,4800,2000,512)")
		benign      = flag.Int("benign", d.BenignCores, "benign cores sharing the system with the attacker")
		records     = flag.Int("records", d.TraceRecords, "memory records per benign trace")
		cycles      = flag.Int64("cycles", d.MemCycles, "attack duration in memory-clock cycles")
		rows        = flag.Int("rows", 0, "rows per bank (0 = Table 6's 16384)")
		sched       = flag.String("sched", "", "memory scheduler: FR-FCFS (default) or BLISS")
		ecc         = flag.Bool("ecc", false, "evaluate LPDDR4-like chips with on-die ECC (post-correction flips + raw counts)")
		duty        = flag.Float64("duty", 0, "attacker duty cycle in (0,1): hammer this fraction of each refresh interval, idle the rest")
		phase       = flag.Float64("phase", 0, "attacker phase in (0,1): shift the bursts within each refresh interval by this fraction (with -duty)")
		parallel    = flag.Int("parallel", 0, "concurrent simulations (0 = all cores; output is identical for any value)")
		seed        = flag.Uint64("seed", d.Seed, "evaluation seed")
		showCatalog = flag.Bool("catalog", false, "print the attack pattern catalog and exit")
		emitSpec    = flag.Bool("emit-spec", false, "print the experiment spec JSON instead of running it")
	)
	flag.Parse()

	if *showCatalog {
		fmt.Println("Attack pattern catalog:")
		for _, c := range catalog {
			fmt.Printf("  %-14s %s\n", c.kind, c.desc)
		}
		return
	}

	p := core.AttackParams{
		Scheduler:    core.SchedulerID(*sched),
		BenignCores:  *benign,
		TraceRecords: *records,
		MemCycles:    *cycles,
		Rows:         *rows,
		ECC:          *ecc,
	}
	if *duty != 0 || *phase != 0 {
		p.Attack = &attack.Spec{DutyCycle: *duty, Phase: *phase}
	}
	if *patternsStr != "" {
		for _, s := range strings.Split(*patternsStr, ",") {
			p.Patterns = append(p.Patterns, attack.Kind(strings.TrimSpace(s)))
		}
	}
	if *mechsStr != "" {
		for _, m := range strings.Split(*mechsStr, ",") {
			p.Mechanisms = append(p.Mechanisms, core.MechanismID(strings.TrimSpace(m)))
		}
	}
	if *hcStr != "" {
		p.HCSweep = parseInts("rhattack", "HCfirst", *hcStr)
	}

	spec, err := core.NewSpec("attack", *seed, p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhattack: %v\n", err)
		os.Exit(2)
	}
	if *emitSpec {
		data, err := spec.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhattack: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		return
	}
	res, err := core.RunWith(spec, core.Exec{Parallelism: *parallel})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhattack: %v\n", err)
		os.Exit(1)
	}
	out, err := res.Format()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhattack: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(out)
}
