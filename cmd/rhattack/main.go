// Command rhattack runs the adversarial mitigation evaluation: mixed
// attacker+benign cycle-accurate simulations over a (mechanism × attack
// pattern × HCfirst) grid, with the fault model coupled to the memory
// controller's command stream. It reports security outcomes (escaped bit
// flips, time to first flip, achieved aggressor ACT rate) alongside
// benign performance under attack and DRAM bandwidth overhead.
//
// Usage:
//
//	rhattack                                  # default grid
//	rhattack -mechs None,PARA,Ideal -hc 2000  # focused run
//	rhattack -patterns double-sided,scattered
//	rhattack -cycles 1000000 -rows 4096       # quick, small system
//	rhattack -catalog                         # print the pattern catalog
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
)

var catalog = []struct {
	kind attack.Kind
	desc string
}{
	{attack.SingleSided, "one adjacent aggressor + a far conflict row (the original RowHammer loop)"},
	{attack.DoubleSided, "alternate the two rows flanking the victim (Algorithm 1 worst case)"},
	{attack.ManySided, "N aggressors two rows apart, TRRespass-style; defeats small tracker tables"},
	{attack.Scattered, "double-sided pairs in several banks at once; bank-parallel ACT rate"},
	{attack.Decoy, "double-sided interleaved with random far-row reads; pollutes frequency trackers"},
}

func main() {
	d := core.DefaultAttackOptions()
	var (
		patternsStr = flag.String("patterns", "", "comma-separated attack patterns (default: all)")
		mechsStr    = flag.String("mechs", "", "comma-separated mechanisms (default: None,PARA,BlockHammer,Ideal)")
		hcStr       = flag.String("hc", "", "comma-separated HCfirst grid points (default: 10000,4800,2000,512)")
		benign      = flag.Int("benign", d.BenignCores, "benign cores sharing the system with the attacker")
		records     = flag.Int("records", d.TraceRecords, "memory records per benign trace")
		cycles      = flag.Int64("cycles", d.MemCycles, "attack duration in memory-clock cycles")
		rows        = flag.Int("rows", 0, "rows per bank (0 = Table 6's 16384)")
		sched       = flag.String("sched", "", "memory scheduler: FR-FCFS (default) or BLISS")
		ecc         = flag.Bool("ecc", false, "evaluate LPDDR4-like chips with on-die ECC (post-correction flips + raw counts)")
		duty        = flag.Float64("duty", 0, "attacker duty cycle in (0,1): hammer this fraction of each refresh interval, idle the rest")
		phase       = flag.Float64("phase", 0, "attacker phase in (0,1): shift the bursts within each refresh interval by this fraction (with -duty)")
		parallel    = flag.Int("parallel", 0, "concurrent simulations (0 = all cores; output is identical for any value)")
		seed        = flag.Uint64("seed", d.Seed, "evaluation seed")
		showCatalog = flag.Bool("catalog", false, "print the attack pattern catalog and exit")
	)
	flag.Parse()

	if *showCatalog {
		fmt.Println("Attack pattern catalog:")
		for _, c := range catalog {
			fmt.Printf("  %-14s %s\n", c.kind, c.desc)
		}
		return
	}

	o := core.AttackOptions{
		BenignCores:  *benign,
		TraceRecords: *records,
		MemCycles:    *cycles,
		Rows:         *rows,
		Scheduler:    core.SchedulerID(*sched),
		ECC:          *ecc,
		Parallelism:  *parallel,
		Seed:         *seed,
	}
	o.AttackSpec.DutyCycle = *duty
	o.AttackSpec.Phase = *phase
	if *patternsStr != "" {
		for _, p := range strings.Split(*patternsStr, ",") {
			o.Patterns = append(o.Patterns, attack.Kind(strings.TrimSpace(p)))
		}
	}
	if *mechsStr != "" {
		for _, m := range strings.Split(*mechsStr, ",") {
			o.Mechanisms = append(o.Mechanisms, core.MechanismID(strings.TrimSpace(m)))
		}
	}
	if *hcStr != "" {
		for _, s := range strings.Split(*hcStr, ",") {
			hc, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || hc <= 0 {
				fmt.Fprintf(os.Stderr, "rhattack: bad HCfirst value %q\n", s)
				os.Exit(2)
			}
			o.HCSweep = append(o.HCSweep, hc)
		}
	}

	ev, err := core.RunAttackEval(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhattack: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(ev.Format())
}
