// Command rhpareto runs the combined security/overhead Pareto sweep: a
// (mechanism × scheduler × HCfirst) grid in which every point faces each
// attack pattern plus one attacker-free run, reporting worst-case escaped
// flips against worst-case benign throughput as frontier points per
// HCfirst. It is the experiment that answers "which defense + scheduler
// combination buys the most security for the least benign cost?".
//
// The BLISS scheduler's streak threshold and clearing interval are sweep
// axes: -bliss-streaks/-bliss-clears evaluate every combination, mapping
// the fairness/throughput trade-off.
//
// rhpareto is a flag front end over the "pareto" experiment of the
// declarative registry: -emit-spec prints the equivalent spec, which
// `rhx run` executes (or shards) identically.
//
// Usage:
//
//	rhpareto                                       # default grid
//	rhpareto -mechs BlockHammer,BlockHammer-binary -scheds FR-FCFS,BLISS
//	rhpareto -patterns decoy -hc 512 -cycles 1000000 -rows 4096
//	rhpareto -scheds BLISS -bliss-streaks 2,4,8 -bliss-clears 5000,10000
//	rhpareto -ecc                                  # LPDDR4-like on-die ECC chips
//	rhpareto -duty 0.5 -phase 0.25                 # refresh-pause-aware streams
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
)

func parseInts(flagName, v string) []int {
	var out []int
	for _, s := range strings.Split(v, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "rhpareto: bad %s value %q\n", flagName, s)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func main() {
	d := core.DefaultParetoOptions()
	var (
		mechsStr     = flag.String("mechs", "", "comma-separated mechanisms (default: None,PARA,BlockHammer-blanket,BlockHammer,Ideal)")
		schedsStr    = flag.String("scheds", "", "comma-separated schedulers (default: FR-FCFS,BLISS)")
		patternsStr  = flag.String("patterns", "", "comma-separated attack patterns (default: double-sided,decoy)")
		hcStr        = flag.String("hc", "", "comma-separated HCfirst grid points (default: 4800,512)")
		blissStreaks = flag.String("bliss-streaks", "", "comma-separated BLISS streak thresholds to sweep (default: controller default 4)")
		blissClears  = flag.String("bliss-clears", "", "comma-separated BLISS clearing intervals in memory cycles (default: controller default 10000)")
		benign       = flag.Int("benign", d.BenignCores, "benign cores sharing the system with the attacker")
		records      = flag.Int("records", d.TraceRecords, "memory records per benign trace")
		cycles       = flag.Int64("cycles", d.MemCycles, "attack duration in memory-clock cycles")
		rows         = flag.Int("rows", 0, "rows per bank (0 = Table 6's 16384)")
		ecc          = flag.Bool("ecc", false, "evaluate LPDDR4-like chips with on-die ECC (post-correction flips + raw counts)")
		duty         = flag.Float64("duty", 0, "attacker duty cycle in (0,1): hammer this fraction of each refresh interval, idle the rest")
		phase        = flag.Float64("phase", 0, "attacker phase in (0,1): shift the bursts within each refresh interval by this fraction (with -duty)")
		parallel     = flag.Int("parallel", 0, "concurrent simulations (0 = all cores; output is identical for any value)")
		seed         = flag.Uint64("seed", d.Seed, "evaluation seed")
		emitSpec     = flag.Bool("emit-spec", false, "print the experiment spec JSON instead of running it")
	)
	flag.Parse()

	p := core.ParetoParams{
		BenignCores:  *benign,
		TraceRecords: *records,
		MemCycles:    *cycles,
		Rows:         *rows,
		ECC:          *ecc,
	}
	if *duty != 0 || *phase != 0 {
		p.Attack = &attack.Spec{DutyCycle: *duty, Phase: *phase}
	}
	if *mechsStr != "" {
		for _, m := range strings.Split(*mechsStr, ",") {
			p.Mechanisms = append(p.Mechanisms, core.MechanismID(strings.TrimSpace(m)))
		}
	}
	if *schedsStr != "" {
		for _, s := range strings.Split(*schedsStr, ",") {
			p.Schedulers = append(p.Schedulers, core.SchedulerID(strings.TrimSpace(s)))
		}
	}
	if *patternsStr != "" {
		for _, s := range strings.Split(*patternsStr, ",") {
			p.Patterns = append(p.Patterns, attack.Kind(strings.TrimSpace(s)))
		}
	}
	if *hcStr != "" {
		p.HCSweep = parseInts("HCfirst", *hcStr)
	}
	if *blissStreaks != "" {
		p.BLISSStreaks = parseInts("bliss-streaks", *blissStreaks)
	}
	if *blissClears != "" {
		for _, n := range parseInts("bliss-clears", *blissClears) {
			p.BLISSClears = append(p.BLISSClears, int64(n))
		}
	}

	spec, err := core.NewSpec("pareto", *seed, p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhpareto: %v\n", err)
		os.Exit(2)
	}
	if *emitSpec {
		data, err := spec.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhpareto: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		return
	}
	res, err := core.RunWith(spec, core.Exec{Parallelism: *parallel})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhpareto: %v\n", err)
		os.Exit(1)
	}
	out, err := res.Format()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhpareto: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(out)
}
