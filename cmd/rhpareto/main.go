// Command rhpareto runs the combined security/overhead Pareto sweep: a
// (mechanism × scheduler × HCfirst) grid in which every point faces each
// attack pattern plus one attacker-free run, reporting worst-case escaped
// flips against worst-case benign throughput as frontier points per
// HCfirst. It is the experiment that answers "which defense + scheduler
// combination buys the most security for the least benign cost?".
//
// Usage:
//
//	rhpareto                                       # default grid
//	rhpareto -mechs BlockHammer,BlockHammer-blanket -scheds FR-FCFS,BLISS
//	rhpareto -patterns decoy -hc 512 -cycles 1000000 -rows 4096
//	rhpareto -ecc                                  # LPDDR4-like on-die ECC chips
//	rhpareto -duty 0.5 -phase 0.25                 # refresh-pause-aware streams
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
)

func main() {
	d := core.DefaultParetoOptions()
	var (
		mechsStr    = flag.String("mechs", "", "comma-separated mechanisms (default: None,PARA,BlockHammer-blanket,BlockHammer,Ideal)")
		schedsStr   = flag.String("scheds", "", "comma-separated schedulers (default: FR-FCFS,BLISS)")
		patternsStr = flag.String("patterns", "", "comma-separated attack patterns (default: double-sided,decoy)")
		hcStr       = flag.String("hc", "", "comma-separated HCfirst grid points (default: 4800,512)")
		benign      = flag.Int("benign", d.BenignCores, "benign cores sharing the system with the attacker")
		records     = flag.Int("records", d.TraceRecords, "memory records per benign trace")
		cycles      = flag.Int64("cycles", d.MemCycles, "attack duration in memory-clock cycles")
		rows        = flag.Int("rows", 0, "rows per bank (0 = Table 6's 16384)")
		ecc         = flag.Bool("ecc", false, "evaluate LPDDR4-like chips with on-die ECC (post-correction flips + raw counts)")
		duty        = flag.Float64("duty", 0, "attacker duty cycle in (0,1): hammer this fraction of each refresh interval, idle the rest")
		phase       = flag.Float64("phase", 0, "attacker phase in (0,1): shift the bursts within each refresh interval by this fraction (with -duty)")
		parallel    = flag.Int("parallel", 0, "concurrent simulations (0 = all cores; output is identical for any value)")
		seed        = flag.Uint64("seed", d.Seed, "evaluation seed")
	)
	flag.Parse()

	o := core.ParetoOptions{
		BenignCores:  *benign,
		TraceRecords: *records,
		MemCycles:    *cycles,
		Rows:         *rows,
		ECC:          *ecc,
		Parallelism:  *parallel,
		Seed:         *seed,
	}
	o.AttackSpec.DutyCycle = *duty
	o.AttackSpec.Phase = *phase
	if *mechsStr != "" {
		for _, m := range strings.Split(*mechsStr, ",") {
			o.Mechanisms = append(o.Mechanisms, core.MechanismID(strings.TrimSpace(m)))
		}
	}
	if *schedsStr != "" {
		for _, s := range strings.Split(*schedsStr, ",") {
			o.Schedulers = append(o.Schedulers, core.SchedulerID(strings.TrimSpace(s)))
		}
	}
	if *patternsStr != "" {
		for _, p := range strings.Split(*patternsStr, ",") {
			o.Patterns = append(o.Patterns, attack.Kind(strings.TrimSpace(p)))
		}
	}
	if *hcStr != "" {
		for _, s := range strings.Split(*hcStr, ",") {
			hc, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || hc <= 0 {
				fmt.Fprintf(os.Stderr, "rhpareto: bad HCfirst value %q\n", s)
				os.Exit(2)
			}
			o.HCSweep = append(o.HCSweep, hc)
		}
	}

	sweep, err := core.RunParetoSweep(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhpareto: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(sweep.Format())
}
