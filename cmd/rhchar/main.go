// Command rhchar runs the paper's characterization experiments (Tables
// 1–5, 7, 8 and Figures 4–9) against the simulated chip population and
// prints the corresponding table or figure data.
//
// Usage:
//
//	rhchar -all
//	rhchar -table 4 -scale medium
//	rhchar -figure 6 -chips 8 -stride 2
//	rhchar -figure 8 -parallel 4
//
// Experiments fan out over the chip grid on the deterministic parallel
// engine (internal/engine): -parallel changes wall-clock time only, never
// the output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chips"
	"repro/internal/core"
)

func main() {
	var (
		tableN   = flag.Int("table", 0, "reproduce one table (1,2,3,4,5,7,8)")
		figureN  = flag.Int("figure", 0, "reproduce one figure (4,5,6,7,8,9)")
		all      = flag.Bool("all", false, "run every characterization artifact")
		scale    = flag.String("scale", "small", "chip geometry: tiny, small, medium, full")
		nChips   = flag.Int("chips", 4, "max instantiated chips per configuration (0 = all)")
		stride   = flag.Int("stride", 1, "victim-row stride for full-chip sweeps")
		iters    = flag.Int("iters", 0, "iterations for repeated experiments (0 = paper defaults)")
		parallel = flag.Int("parallel", 0, "concurrent chip experiments (0 = all cores; output is identical for any value)")
		seed     = flag.Uint64("seed", 1, "population seed")
	)
	flag.Parse()

	o := core.Options{
		Stride:            *stride,
		MaxChipsPerConfig: *nChips,
		Iterations:        *iters,
		Parallelism:       *parallel,
		Seed:              *seed,
	}
	switch *scale {
	case "tiny":
		o.Scale = chips.ScaleTiny
	case "small":
		o.Scale = chips.ScaleSmall
	case "medium":
		o.Scale = chips.ScaleMedium
	case "full":
		o.Scale = chips.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "rhchar: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	run := func(name string, fn func() (string, error)) {
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhchar: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	artifacts := map[string]func() (string, error){
		"table1": func() (string, error) {
			t, err := core.RunTable1(o)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		},
		"table2": func() (string, error) {
			t, err := core.RunTable2(o)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		},
		"table3": func() (string, error) {
			t, err := core.RunTable3(o)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		},
		"table4": func() (string, error) {
			s, err := core.RunHCFirstStudy(o)
			if err != nil {
				return "", err
			}
			return s.FormatTable4(), nil
		},
		"table5": func() (string, error) {
			t, err := core.RunTable5(o)
			if err != nil {
				return "", err
			}
			return t.Format(), nil
		},
		"table7": func() (string, error) { return core.RunTable7().Format(), nil },
		"table8": func() (string, error) { return core.RunTable8().Format(), nil },
		"figure4": func() (string, error) {
			f, err := core.RunFigure4(o)
			if err != nil {
				return "", err
			}
			return f.Format(), nil
		},
		"figure5": func() (string, error) {
			f, err := core.RunFigure5(o)
			if err != nil {
				return "", err
			}
			return f.Format(), nil
		},
		"figure6": func() (string, error) {
			f, err := core.RunFigure6(o)
			if err != nil {
				return "", err
			}
			return f.Format(), nil
		},
		"figure7": func() (string, error) {
			f, err := core.RunFigure7(o)
			if err != nil {
				return "", err
			}
			return f.Format(), nil
		},
		"figure8": func() (string, error) {
			s, err := core.RunHCFirstStudy(o)
			if err != nil {
				return "", err
			}
			return s.FormatFigure8(), nil
		},
		"figure9": func() (string, error) {
			f, err := core.RunFigure9(o)
			if err != nil {
				return "", err
			}
			return f.Format(), nil
		},
	}

	order := []string{"table1", "table2", "figure4", "table3", "figure5",
		"figure6", "figure7", "figure8", "table4", "figure9", "table5",
		"table7", "table8"}

	switch {
	case *all:
		for _, name := range order {
			run(name, artifacts[name])
		}
	case *tableN != 0:
		name := fmt.Sprintf("table%d", *tableN)
		fn, ok := artifacts[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "rhchar: no such table %d\n", *tableN)
			os.Exit(2)
		}
		run(name, fn)
	case *figureN != 0:
		name := fmt.Sprintf("figure%d", *figureN)
		fn, ok := artifacts[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "rhchar: no such figure %d\n", *figureN)
			os.Exit(2)
		}
		run(name, fn)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
