// Command rhchar runs the paper's characterization experiments (Tables
// 1–5, 7, 8 and Figures 4–9) against the simulated chip population and
// prints the corresponding table or figure data. It is a flag-friendly
// front end over the declarative experiment registry: every invocation
// builds an ExperimentSpec and executes it through the same Run path as
// `rhx run`, so any rhchar run can be reproduced (or sharded across
// machines) from the spec that -emit-spec prints.
//
// Usage:
//
//	rhchar -all
//	rhchar -table 4 -scale medium
//	rhchar -figure 6 -chips 8 -stride 2
//	rhchar -figure 8 -parallel 4
//	rhchar -figure 5 -emit-spec > fig5.json   # then: rhx run -spec fig5.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	var (
		tableN   = flag.Int("table", 0, "reproduce one table (1,2,3,4,5,7,8)")
		figureN  = flag.Int("figure", 0, "reproduce one figure (4,5,6,7,8,9)")
		all      = flag.Bool("all", false, "run every characterization artifact")
		scale    = flag.String("scale", "small", "chip geometry: tiny, small, medium, full")
		nChips   = flag.Int("chips", 4, "max instantiated chips per configuration (0 = all)")
		stride   = flag.Int("stride", 1, "victim-row stride for full-chip sweeps")
		iters    = flag.Int("iters", 0, "iterations for repeated experiments (0 = paper defaults)")
		parallel = flag.Int("parallel", 0, "concurrent chip experiments (0 = all cores; output is identical for any value)")
		seed     = flag.Uint64("seed", 1, "population seed")
		emitSpec = flag.Bool("emit-spec", false, "print the experiment spec JSON instead of running it")
	)
	flag.Parse()

	params := core.CharParams{
		Scale:      *scale,
		Stride:     *stride,
		Iterations: *iters,
	}
	switch {
	case *nChips == 0:
		params.Chips = -1 // uncapped
	default:
		params.Chips = *nChips
	}

	run := func(name string) {
		spec, err := core.NewSpec(name, *seed, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhchar: %s: %v\n", name, err)
			os.Exit(2)
		}
		if *emitSpec {
			data, err := spec.Encode()
			if err != nil {
				fmt.Fprintf(os.Stderr, "rhchar: %v\n", err)
				os.Exit(1)
			}
			os.Stdout.Write(data)
			return
		}
		res, err := core.RunWith(spec, core.Exec{Parallelism: *parallel})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhchar: %s: %v\n", name, err)
			os.Exit(1)
		}
		out, err := res.Format()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhchar: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	order := []string{"table1", "table2", "fig4", "table3", "fig5",
		"fig6", "fig7", "fig8", "table4", "fig9", "table5",
		"table7", "table8"}
	valid := map[string]bool{}
	for _, n := range order {
		valid[n] = true
	}

	switch {
	case *all:
		for _, name := range order {
			run(name)
		}
	case *tableN != 0:
		name := fmt.Sprintf("table%d", *tableN)
		if !valid[name] {
			fmt.Fprintf(os.Stderr, "rhchar: no such table %d\n", *tableN)
			os.Exit(2)
		}
		run(name)
	case *figureN != 0:
		name := fmt.Sprintf("fig%d", *figureN)
		if !valid[name] {
			fmt.Fprintf(os.Stderr, "rhchar: no such figure %d\n", *figureN)
			os.Exit(2)
		}
		run(name)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
