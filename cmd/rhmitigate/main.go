// Command rhmitigate runs the Section 6 mitigation-mechanism evaluation
// (Figure 10): cycle-accurate simulation of multi-programmed mixes under
// every mechanism across an HCfirst sweep.
//
// rhmitigate is a flag front end over the "fig10" experiment of the
// declarative registry: -emit-spec prints the equivalent spec, which
// `rhx run` executes (or shards the (mechanism × HCfirst) grid of)
// identically.
//
// Usage:
//
//	rhmitigate                       # default sweep, 48 mixes
//	rhmitigate -mixes 8 -insts 20000 # quick run
//	rhmitigate -mechs PARA,Ideal -hc 2000,256
//	rhmitigate -config               # print the Table 6 system config
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	var (
		mixes    = flag.Int("mixes", 48, "number of 8-core workload mixes")
		cores    = flag.Int("cores", 8, "cores per mix")
		records  = flag.Int("records", 4000, "memory records per core trace")
		warmup   = flag.Int64("warmup", 5000, "warmup instructions per core")
		insts    = flag.Int64("insts", 50000, "measured instructions per core")
		mechsStr = flag.String("mechs", "", "comma-separated mechanisms (default: all)")
		hcStr    = flag.String("hc", "", "comma-separated HCfirst sweep points (default: paper sweep)")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = all cores; output is identical for any value)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		showCfg  = flag.Bool("config", false, "print the simulated system configuration (Table 6) and exit")
		emitSpec = flag.Bool("emit-spec", false, "print the experiment spec JSON instead of running it")
	)
	flag.Parse()

	if *showCfg {
		printTable6()
		return
	}

	p := core.Fig10Params{
		Mixes:        *mixes,
		Cores:        *cores,
		TraceRecords: *records,
		WarmupInsts:  *warmup,
		MeasureInsts: *insts,
	}
	if *mechsStr != "" {
		for _, m := range strings.Split(*mechsStr, ",") {
			p.Mechanisms = append(p.Mechanisms, core.MechanismID(strings.TrimSpace(m)))
		}
	}
	if *hcStr != "" {
		for _, s := range strings.Split(*hcStr, ",") {
			hc, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || hc <= 0 {
				fmt.Fprintf(os.Stderr, "rhmitigate: bad HCfirst value %q\n", s)
				os.Exit(2)
			}
			p.HCSweep = append(p.HCSweep, hc)
		}
	}

	spec, err := core.NewSpec("fig10", *seed, p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhmitigate: %v\n", err)
		os.Exit(2)
	}
	if *emitSpec {
		data, err := spec.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhmitigate: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		return
	}
	res, err := core.RunWith(spec, core.Exec{Parallelism: *parallel})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhmitigate: %v\n", err)
		os.Exit(1)
	}
	out, err := res.Format()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhmitigate: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(out)
}

func printTable6() {
	cfg := core.DefaultMitigationOptions()
	sc := sim.Table6Config(cfg.WarmupInsts, cfg.MeasureInsts)
	fmt.Println("Table 6: simulated system configuration")
	fmt.Printf("  Processor        %d GHz, %d-core, %d-wide issue, %d-entry instr. window\n",
		sc.CPUFreqMHz/1000, cfg.Cores, sc.Core.IssueWidth, sc.Core.WindowSize)
	fmt.Printf("  Last-level cache %d-byte lines, %d-way, %d MiB\n",
		sc.LLC.LineBytes, sc.LLC.Assoc, sc.LLC.SizeBytes>>20)
	fmt.Printf("  Memory ctrl.     %d-entry read queue, FR-FCFS, write drain\n", sc.Ctrl.ReadQueue)
	fmt.Printf("  Main memory      DDR4-2400, 1 channel, %d rank, %d bank groups × %d banks, %d rows/bank\n",
		sc.Geo.Ranks, sc.Geo.BankGroups, sc.Geo.BanksPerGroup, sc.Geo.Rows)
	fmt.Printf("  Timings          tRC=%.1fns tRCD=%d tRP=%d tCL=%d tRFC=%d tREFI=%d (cycles)\n",
		sc.T.TRCNanos(), sc.T.RCD, sc.T.RP, sc.T.CL, sc.T.RFC, sc.T.REFI)
}
