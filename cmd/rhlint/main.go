// Command rhlint runs the repository's determinism and hot-path lint
// suite (internal/analysis). It is both a standalone checker and a
// `go vet -vettool`:
//
//	rhlint ./...                            standalone
//	go vet -vettool=$(command -v rhlint) ./...   through the go command
//
// See docs/LINT.md for the analyzer catalog and annotation grammar.
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	if analysis.IsUnitProtocol(args) {
		analysis.UnitMain(args) // exits
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhlint: %v\n", err)
		os.Exit(2)
	}
	os.Exit(analysis.Standalone(dir, args, os.Stdout, os.Stderr))
}
