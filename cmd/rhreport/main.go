// Command rhreport runs the complete reproduction — every
// characterization table/figure plus the mitigation evaluation — and
// emits one consolidated report, suitable for regenerating
// EXPERIMENTS.md's measured columns. Every section is a spec executed
// through the experiment registry, the same path `rhx run` uses.
//
// Usage:
//
//	rhreport                # medium characterization + reduced Figure 10
//	rhreport -quick         # tiny everything (~seconds)
//	rhreport -full          # full-scale (long)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "tiny scale, seconds")
		full     = flag.Bool("full", false, "full scale, hours")
		parallel = flag.Int("parallel", 0, "concurrent experiment tasks (0 = all cores; output is identical for any value)")
		seed     = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	cp := core.CharParams{Scale: "small", Chips: 4}
	mp := core.Fig10Params{
		Mixes: 12, Cores: 8, TraceRecords: 3000,
		WarmupInsts: 5000, MeasureInsts: 30000,
	}
	switch {
	case *quick:
		cp = core.CharParams{Scale: "tiny", Chips: 1, Iterations: 3, Stride: 2}
		mp.Mixes = 2
		mp.Cores = 4
		mp.MeasureInsts = 10000
		mp.HCSweep = []int{100_000, 2_000, 256}
	case *full:
		cp = core.CharParams{Scale: "medium", Chips: -1}
		mp = core.Fig10Params{} // registry defaults = the paper's full sweep
	}
	ex := core.Exec{Parallelism: *parallel}

	// runSpec executes one named experiment and returns its artifact.
	runSpec := func(name string, params any) core.Artifact {
		spec, err := core.NewSpec(name, *seed, params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhreport: %s: %v\n", name, err)
			os.Exit(1)
		}
		res, err := core.RunWith(spec, ex)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhreport: %s: %v\n", name, err)
			os.Exit(1)
		}
		art, err := res.Artifact()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhreport: %s: %v\n", name, err)
			os.Exit(1)
		}
		return art
	}

	start := time.Now()
	section := func(name string, fn func() string) {
		t0 := time.Now()
		fmt.Println(fn())
		fmt.Printf("  [%s in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	fmt.Println("=== RowHammer revisited: reproduction report ===")
	fmt.Println()
	section("table1", func() string { return runSpec("table1", cp).Format() })
	section("table2", func() string { return runSpec("table2", cp).Format() })
	section("figure4+table3", func() string {
		// Table 3 is a different rendering of Figure 4's cells; run the
		// grid once and derive both views.
		f := runSpec("fig4", cp).(*core.Figure4)
		t3 := &core.Table3{Rows: f.Rows}
		return f.Format() + "\n" + t3.Format()
	})
	section("figure5", func() string { return runSpec("fig5", cp).Format() })
	section("figure6", func() string { return runSpec("fig6", cp).Format() })
	section("figure7", func() string { return runSpec("fig7", cp).Format() })
	section("figure8+table4", func() string {
		s := runSpec("fig8", cp).(*core.Figure8)
		return s.FormatFigure8() + "\n" + s.FormatTable4()
	})
	section("figure9", func() string { return runSpec("fig9", cp).Format() })
	section("table5", func() string { return runSpec("table5", cp).Format() })
	section("figure10", func() string { return runSpec("fig10", mp).Format() })
	fmt.Printf("=== report complete in %v ===\n", time.Since(start).Round(time.Second))
}
