// Command rhreport runs the complete reproduction — every
// characterization table/figure plus the mitigation evaluation — and
// emits one consolidated report, suitable for regenerating
// EXPERIMENTS.md's measured columns.
//
// Usage:
//
//	rhreport                # medium characterization + reduced Figure 10
//	rhreport -quick         # tiny everything (~seconds)
//	rhreport -full          # full-scale (long)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chips"
	"repro/internal/core"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "tiny scale, seconds")
		full     = flag.Bool("full", false, "full scale, hours")
		parallel = flag.Int("parallel", 0, "concurrent experiment tasks (0 = all cores; output is identical for any value)")
		seed     = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	o := core.Options{Scale: chips.ScaleSmall, MaxChipsPerConfig: 4, Parallelism: *parallel, Seed: *seed}
	mo := core.MitigationOptions{
		Mixes: 12, Cores: 8, TraceRecords: 3000,
		WarmupInsts: 5000, MeasureInsts: 30000, Parallelism: *parallel, Seed: *seed,
	}
	switch {
	case *quick:
		o.Scale = chips.ScaleTiny
		o.MaxChipsPerConfig = 1
		o.Iterations = 3
		o.Stride = 2
		mo.Mixes = 2
		mo.Cores = 4
		mo.MeasureInsts = 10000
		mo.HCSweep = []int{100_000, 2_000, 256}
	case *full:
		o.Scale = chips.ScaleMedium
		o.MaxChipsPerConfig = 0
		mo = core.DefaultMitigationOptions()
		mo.Parallelism = *parallel
		mo.Seed = *seed
	}

	start := time.Now()
	section := func(name string, fn func() (string, error)) {
		t0 := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhreport: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("  [%s in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	fmt.Println("=== RowHammer revisited: reproduction report ===")
	fmt.Println()
	section("table1", func() (string, error) {
		t, err := core.RunTable1(o)
		if err != nil {
			return "", err
		}
		return t.Format(), nil
	})
	section("table2", func() (string, error) {
		t, err := core.RunTable2(o)
		if err != nil {
			return "", err
		}
		return t.Format(), nil
	})
	section("figure4+table3", func() (string, error) {
		f, err := core.RunFigure4(o)
		if err != nil {
			return "", err
		}
		t3 := &core.Table3{Rows: f.Rows}
		return f.Format() + "\n" + t3.Format(), nil
	})
	section("figure5", func() (string, error) {
		f, err := core.RunFigure5(o)
		if err != nil {
			return "", err
		}
		return f.Format(), nil
	})
	section("figure6", func() (string, error) {
		f, err := core.RunFigure6(o)
		if err != nil {
			return "", err
		}
		return f.Format(), nil
	})
	section("figure7", func() (string, error) {
		f, err := core.RunFigure7(o)
		if err != nil {
			return "", err
		}
		return f.Format(), nil
	})
	section("figure8+table4", func() (string, error) {
		s, err := core.RunHCFirstStudy(o)
		if err != nil {
			return "", err
		}
		return s.FormatFigure8() + "\n" + s.FormatTable4(), nil
	})
	section("figure9", func() (string, error) {
		f, err := core.RunFigure9(o)
		if err != nil {
			return "", err
		}
		return f.Format(), nil
	})
	section("table5", func() (string, error) {
		t, err := core.RunTable5(o)
		if err != nil {
			return "", err
		}
		return t.Format(), nil
	})
	section("figure10", func() (string, error) {
		f, err := core.RunFigure10(mo)
		if err != nil {
			return "", err
		}
		return f.Format(), nil
	})
	fmt.Printf("=== report complete in %v ===\n", time.Since(start).Round(time.Second))
}
