// Command rhx is the unified experiment runner over the declarative
// experiment API: every paper artifact and post-paper evaluation is a
// named experiment resolved through a registry, described by one
// JSON-serializable spec (name + params + seed + shard), and produces a
// mergeable result. Shards of one spec can run on different machines;
// merging their outputs reproduces the single-process result byte for
// byte.
//
// Usage:
//
//	rhx list                                  # registry + default params
//	rhx run -name attack                      # defaults, print report
//	rhx run -spec spec.json -out full.json    # spec file → result JSON
//	rhx run -spec spec.json -store cache/     # cached: instant on re-run
//	rhx run -spec spec.json -shard 0/2 -out part0.json
//	rhx run -spec spec.json -shard 1/2 -out part1.json
//	rhx merge -out merged.json part0.json part1.json
//	rhx merge -format part*.json              # merge and print the report
//	rhx fmt merged.json                       # render a stored result
//	rhx spec -name pareto                     # emit a template spec
//	rhx spec -name pareto -hash               # print its content address
//	rhx serve -addr :8080 -store cache/       # HTTP experiment service
//	rhx lint                                  # run the rhlint analyzers
//
// The -store flag (shared by run and serve) points at a content-
// addressed result store: results are keyed by the SHA-256 of their
// canonical spec, so the CLI and the service share one cache — a grid
// sharded by CLI runs resumes inside the service and vice versa.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "spec":
		err = cmdSpec(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "lint":
		err = cmdLint(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rhx: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhx: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rhx list                               list registered experiments
  rhx run   [-spec f|-name n] [flags]    run (a shard of) an experiment
  rhx merge [-out f] [-format] part...   merge shard results
  rhx fmt   result.json                  render a stored result
  rhx spec  -name n [-seed s] [-hash]    emit a template spec (or its hash)
  rhx serve -addr a -store d [flags]     run the HTTP experiment service
  rhx lint  [-print] [packages]          run the rhlint static analyzers (default ./...)`)
}

// loadSpec resolves -spec/-name/-seed/-shard into a validated spec.
func loadSpec(specPath, name string, seed uint64, shardStr string) (core.ExperimentSpec, error) {
	var spec core.ExperimentSpec
	switch {
	case specPath != "" && name != "":
		return spec, fmt.Errorf("give either -spec or -name, not both")
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return spec, err
		}
		spec, err = core.DecodeSpec(data)
		if err != nil {
			return spec, err
		}
	case name != "":
		s, err := core.NewSpec(name, seed, nil)
		if err != nil {
			return spec, err
		}
		spec = s
	default:
		return spec, fmt.Errorf("need -spec file or -name experiment (try `rhx list`)")
	}
	if seed != 0 {
		spec.Seed = seed
	}
	if shardStr != "" {
		shard, err := core.ParseShard(shardStr)
		if err != nil {
			return spec, err
		}
		spec.Shard = shard
	}
	return spec, spec.Validate()
}

// writeOut writes data to path, or stdout for "".
func writeOut(path string, data []byte) error {
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("rhx list", flag.ExitOnError)
	verbose := fs.Bool("v", false, "include each experiment's default params JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, e := range core.Experiments() {
		fmt.Printf("%-8s %s\n", e.Name, e.Description)
		if *verbose {
			fmt.Printf("         params: %s\n", e.DefaultParams)
		}
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("rhx run", flag.ExitOnError)
	var (
		specPath = fs.String("spec", "", "spec JSON file (\"-\" reads stdin is not supported; use a file)")
		name     = fs.String("name", "", "run a registered experiment with default params")
		seed     = fs.Uint64("seed", 0, "override the spec's seed (0 keeps it)")
		shardStr = fs.String("shard", "", "run one shard, as index/count (e.g. 2/8)")
		out      = fs.String("out", "", "write the result JSON here (default: only the report is printed)")
		format   = fs.Bool("format", false, "also print the formatted report (complete results only)")
		parallel = fs.Int("parallel", 0, "concurrent tasks (0 = all cores; never affects results)")
		storeDir = fs.String("store", "", "content-addressed result store directory (enables caching + resume)")
		shards   = fs.Int("shards", 0, "with -store: split a whole-grid run into N cacheable shard units (resume reuses finished ones)")
		noCache  = fs.Bool("no-cache", false, "with -store: skip cache reads, recompute, and refresh the stored entry")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the run here (pprof format)")
		memProf  = fs.String("memprofile", "", "write a heap profile at end of run here (pprof format)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := loadSpec(*specPath, *name, *seed, *shardStr)
	if err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var res *core.Result
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return err
		}
		runner := &store.Runner{
			Store:   st,
			Exec:    core.Exec{Parallelism: *parallel},
			Shards:  *shards,
			NoCache: *noCache,
			OnEvent: func(ev store.Event) {
				switch ev.Status {
				case store.StatusRunning:
					fmt.Fprintf(os.Stderr, "rhx: %s shard %s: running\n", spec.Name, ev.Shard)
				default:
					fmt.Fprintf(os.Stderr, "rhx: %s shard %s: %s (%d/%d cells)\n",
						spec.Name, ev.Shard, ev.Status, ev.Cells, ev.Tasks)
				}
			},
		}
		var hit bool
		res, _, hit, err = runner.Run(signalContext(), spec)
		if err != nil {
			return err
		}
		hash, _ := spec.SpecHash()
		if hit {
			fmt.Fprintf(os.Stderr, "rhx: %s: served from store (%s)\n", spec.Name, hash)
		} else {
			fmt.Fprintf(os.Stderr, "rhx: %s: computed and stored (%s)\n", spec.Name, hash)
		}
	} else {
		if *noCache {
			return fmt.Errorf("-no-cache needs -store")
		}
		res, err = core.RunContext(signalContext(), spec, core.Exec{Parallelism: *parallel})
		if err != nil {
			return err
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	wantFormat := *format || *out == ""
	if *out != "" {
		data, err := res.Encode()
		if err != nil {
			return err
		}
		if err := writeOut(*out, data); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rhx: %s shard %s: %d/%d tasks → %s\n",
			spec.Name, spec.Shard, len(res.Cells), res.Tasks, *out)
	}
	if wantFormat {
		if !res.Complete() {
			if *out == "" {
				return fmt.Errorf("shard %s covers %d/%d tasks; pass -out to save it for merging",
					spec.Shard, len(res.Cells), res.Tasks)
			}
			return nil
		}
		text, err := res.Format()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("rhx merge", flag.ExitOnError)
	var (
		out    = fs.String("out", "", "write the merged result JSON here")
		format = fs.Bool("format", false, "print the formatted report after merging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("merge needs at least one result file")
	}
	var parts []*core.Result
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		r, err := core.DecodeResult(data)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		parts = append(parts, r)
	}
	merged, err := core.MergeResults(parts...)
	if err != nil {
		return err
	}
	if !merged.Complete() {
		fmt.Fprintf(os.Stderr, "rhx: warning: merged result covers %d/%d tasks (missing shards?)\n",
			len(merged.Cells), merged.Tasks)
	}
	if *out != "" {
		data, err := merged.Encode()
		if err != nil {
			return err
		}
		if err := writeOut(*out, data); err != nil {
			return err
		}
	}
	if *format || *out == "" {
		text, err := merged.Format()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	return nil
}

func cmdFmt(args []string) error {
	fs := flag.NewFlagSet("rhx fmt", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("fmt needs exactly one result file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := core.DecodeResult(data)
	if err != nil {
		return err
	}
	text, err := res.Format()
	if err != nil {
		return err
	}
	fmt.Println(text)
	return nil
}

func cmdSpec(args []string) error {
	fs := flag.NewFlagSet("rhx spec", flag.ExitOnError)
	var (
		name     = fs.String("name", "", "experiment name")
		seed     = fs.Uint64("seed", 1, "seed")
		specPath = fs.String("spec", "", "hash an existing spec file instead of a template")
		hash     = fs.Bool("hash", false, "print the spec's content address (store key) instead of the spec")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := loadSpec(*specPath, *name, func() uint64 {
		if *specPath != "" {
			return 0 // keep the file's seed
		}
		return *seed
	}(), "")
	if err != nil {
		return err
	}
	if *hash {
		h, err := spec.SpecHash()
		if err != nil {
			return err
		}
		fmt.Println(h)
		return nil
	}
	data, err := spec.Encode()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

// cmdLint runs the rhlint static-analysis suite: it builds cmd/rhlint
// (the analyzers live in their own binary because the go vet -vettool
// protocol requires a dedicated executable) and drives it through
// `go vet`, so test packages are covered and the go build cache skips
// unchanged packages. Findings propagate as a non-zero exit. -print
// restores the old behavior of only printing the manual invocations.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("rhx lint", flag.ExitOnError)
	printOnly := fs.Bool("print", false, "print the manual lint invocations instead of running them")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *printOnly {
		fmt.Print(`rhx lint: the static analyzers ship as cmd/rhlint (see docs/LINT.md).

Run them standalone:

  go build -o /tmp/rhlint ./cmd/rhlint
  /tmp/rhlint ./...

or through go vet (identical diagnostics, build-cache driven):

  go vet -vettool=/tmp/rhlint ./...

or as part of the full lint gate (gofmt, go vet, rhlint, staticcheck,
shellcheck):

  scripts/lint.sh
`)
		return nil
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	tmp, err := os.MkdirTemp("", "rhlint")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "rhlint")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/rhlint")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building rhlint: %w", err)
	}
	vet := exec.Command("go", append([]string{"vet", "-vettool=" + bin}, patterns...)...)
	vet.Stdout, vet.Stderr = os.Stdout, os.Stderr
	if err := vet.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			os.Exit(1) // findings: exit code without the "rhx:" wrapper
		}
		return err
	}
	fmt.Println("rhx lint: clean")
	return nil
}

// signalContext returns a context canceled by SIGINT/SIGTERM, so ^C
// stops in-flight grid tasks promptly instead of running to completion.
func signalContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	return ctx
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("rhx serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		storeDir = fs.String("store", "rhx-store", "content-addressed result store directory")
		workers  = fs.Int("workers", 2, "concurrent shard executions across all requests")
		shards   = fs.Int("shards", 0, "cacheable shard units per submitted grid (0 = workers)")
		parallel = fs.Int("parallel", 0, "concurrent tasks within one shard run (0 = all cores)")
		logJSON  = fs.Bool("log-json", false, "emit structured logs as JSON (default: text)")
		pprofOn  = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ for live profiling")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{
		Store:       st,
		Workers:     *workers,
		Shards:      *shards,
		Exec:        core.Exec{Parallelism: *parallel},
		Logger:      logger,
		EnablePprof: *pprofOn,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout so scripts starting the service
	// on port 0 can discover the port.
	fmt.Printf("rhx serve: listening on %s (store %s, %d workers)\n", ln.Addr(), *storeDir, *workers)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx := signalContext()
	select {
	case <-ctx.Done():
		logger.Info("shutdown", "reason", "signal")
	case err := <-errCh:
		return err
	}
	// Graceful stop: cancel and drain the jobs first (this unblocks any
	// handler waiting on one), then close the listener and let in-flight
	// handlers finish.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("job shutdown", "error", err)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "error", err)
	}
	return nil
}
