// Command rhx is the unified experiment runner over the declarative
// experiment API: every paper artifact and post-paper evaluation is a
// named experiment resolved through a registry, described by one
// JSON-serializable spec (name + params + seed + shard), and produces a
// mergeable result. Shards of one spec can run on different machines;
// merging their outputs reproduces the single-process result byte for
// byte.
//
// Usage:
//
//	rhx list                                  # registry + default params
//	rhx run -name attack                      # defaults, print report
//	rhx run -spec spec.json -out full.json    # spec file → result JSON
//	rhx run -spec spec.json -shard 0/2 -out part0.json
//	rhx run -spec spec.json -shard 1/2 -out part1.json
//	rhx merge -out merged.json part0.json part1.json
//	rhx merge -format part*.json              # merge and print the report
//	rhx fmt merged.json                       # render a stored result
//	rhx spec -name pareto                     # emit a template spec
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "spec":
		err = cmdSpec(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rhx: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhx: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rhx list                               list registered experiments
  rhx run   [-spec f|-name n] [flags]    run (a shard of) an experiment
  rhx merge [-out f] [-format] part...   merge shard results
  rhx fmt   result.json                  render a stored result
  rhx spec  -name n [-seed s]            emit a template spec`)
}

// loadSpec resolves -spec/-name/-seed/-shard into a validated spec.
func loadSpec(specPath, name string, seed uint64, shardStr string) (core.ExperimentSpec, error) {
	var spec core.ExperimentSpec
	switch {
	case specPath != "" && name != "":
		return spec, fmt.Errorf("give either -spec or -name, not both")
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return spec, err
		}
		spec, err = core.DecodeSpec(data)
		if err != nil {
			return spec, err
		}
	case name != "":
		s, err := core.NewSpec(name, seed, nil)
		if err != nil {
			return spec, err
		}
		spec = s
	default:
		return spec, fmt.Errorf("need -spec file or -name experiment (try `rhx list`)")
	}
	if seed != 0 {
		spec.Seed = seed
	}
	if shardStr != "" {
		shard, err := core.ParseShard(shardStr)
		if err != nil {
			return spec, err
		}
		spec.Shard = shard
	}
	return spec, spec.Validate()
}

// writeOut writes data to path, or stdout for "".
func writeOut(path string, data []byte) error {
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("rhx list", flag.ExitOnError)
	verbose := fs.Bool("v", false, "include each experiment's default params JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, e := range core.Experiments() {
		fmt.Printf("%-8s %s\n", e.Name, e.Description)
		if *verbose {
			fmt.Printf("         params: %s\n", e.DefaultParams)
		}
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("rhx run", flag.ExitOnError)
	var (
		specPath = fs.String("spec", "", "spec JSON file (\"-\" reads stdin is not supported; use a file)")
		name     = fs.String("name", "", "run a registered experiment with default params")
		seed     = fs.Uint64("seed", 0, "override the spec's seed (0 keeps it)")
		shardStr = fs.String("shard", "", "run one shard, as index/count (e.g. 2/8)")
		out      = fs.String("out", "", "write the result JSON here (default: only the report is printed)")
		format   = fs.Bool("format", false, "also print the formatted report (complete results only)")
		parallel = fs.Int("parallel", 0, "concurrent tasks (0 = all cores; never affects results)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the run here (pprof format)")
		memProf  = fs.String("memprofile", "", "write a heap profile at end of run here (pprof format)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := loadSpec(*specPath, *name, *seed, *shardStr)
	if err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	res, err := core.RunWith(spec, core.Exec{Parallelism: *parallel})
	if err != nil {
		return err
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	wantFormat := *format || *out == ""
	if *out != "" {
		data, err := res.Encode()
		if err != nil {
			return err
		}
		if err := writeOut(*out, data); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rhx: %s shard %s: %d/%d tasks → %s\n",
			spec.Name, spec.Shard, len(res.Cells), res.Tasks, *out)
	}
	if wantFormat {
		if !res.Complete() {
			if *out == "" {
				return fmt.Errorf("shard %s covers %d/%d tasks; pass -out to save it for merging",
					spec.Shard, len(res.Cells), res.Tasks)
			}
			return nil
		}
		text, err := res.Format()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("rhx merge", flag.ExitOnError)
	var (
		out    = fs.String("out", "", "write the merged result JSON here")
		format = fs.Bool("format", false, "print the formatted report after merging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("merge needs at least one result file")
	}
	var parts []*core.Result
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		r, err := core.DecodeResult(data)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		parts = append(parts, r)
	}
	merged, err := core.MergeResults(parts...)
	if err != nil {
		return err
	}
	if !merged.Complete() {
		fmt.Fprintf(os.Stderr, "rhx: warning: merged result covers %d/%d tasks (missing shards?)\n",
			len(merged.Cells), merged.Tasks)
	}
	if *out != "" {
		data, err := merged.Encode()
		if err != nil {
			return err
		}
		if err := writeOut(*out, data); err != nil {
			return err
		}
	}
	if *format || *out == "" {
		text, err := merged.Format()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	return nil
}

func cmdFmt(args []string) error {
	fs := flag.NewFlagSet("rhx fmt", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("fmt needs exactly one result file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := core.DecodeResult(data)
	if err != nil {
		return err
	}
	text, err := res.Format()
	if err != nil {
		return err
	}
	fmt.Println(text)
	return nil
}

func cmdSpec(args []string) error {
	fs := flag.NewFlagSet("rhx spec", flag.ExitOnError)
	var (
		name = fs.String("name", "", "experiment name")
		seed = fs.Uint64("seed", 1, "seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("spec needs -name (try `rhx list`)")
	}
	spec, err := core.NewSpec(*name, *seed, nil)
	if err != nil {
		return err
	}
	data, err := spec.Encode()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}
