// Command rhtrace generates and inspects the synthetic workload traces
// used by the mitigation evaluation.
//
// Usage:
//
//	rhtrace -list                         # show the workload catalog
//	rhtrace -profile stream-copy -n 1000  # emit a trace to stdout
//	rhtrace -stat < trace.txt             # summarize a trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list workload profiles")
		profile = flag.String("profile", "", "generate a trace for this profile")
		n       = flag.Int("n", 10000, "memory records to generate")
		seed    = flag.Uint64("seed", 1, "generator seed")
		stat    = flag.Bool("stat", false, "summarize a trace read from stdin")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-16s %8s %12s %6s %6s\n", "profile", "mem%", "working-set", "seq%", "wr%")
		for _, p := range trace.Catalog() {
			fmt.Printf("%-16s %7.0f%% %10dMiB %5.0f%% %5.0f%%\n",
				p.Name, 100*p.MemFraction, p.WorkingSetBytes>>20, 100*p.Sequential, 100*p.WriteRatio)
		}
	case *profile != "":
		var found *trace.Profile
		for _, p := range trace.Catalog() {
			if p.Name == *profile {
				p := p
				found = &p
				break
			}
		}
		if found == nil {
			fmt.Fprintf(os.Stderr, "rhtrace: unknown profile %q (try -list)\n", *profile)
			os.Exit(2)
		}
		t := found.Generate(*n, *seed)
		if err := t.Encode(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rhtrace: %v\n", err)
			os.Exit(1)
		}
	case *stat:
		t, err := trace.Decode(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhtrace: %v\n", err)
			os.Exit(1)
		}
		writes := 0
		var minAddr, maxAddr int64
		for i, r := range t.Records {
			if r.Write {
				writes++
			}
			if i == 0 || r.Addr < minAddr {
				minAddr = r.Addr
			}
			if r.Addr > maxAddr {
				maxAddr = r.Addr
			}
		}
		fmt.Printf("trace %s: %d records, %d instructions, %.1f%% writes, span %d KiB\n",
			t.Name, len(t.Records), t.Instructions(),
			100*float64(writes)/float64(len(t.Records)), (maxAddr-minAddr)>>10)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
