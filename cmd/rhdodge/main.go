// Command rhdodge runs the TRR dodge study: a (sampler rate × table size
// × pattern × duty-cycle × phase) grid of mixed attacker+benign
// simulations against the in-DRAM counter-sampled TRR model, reporting
// escaped flips, the sampler's effort, and the per-REF timeline evidence
// of the dodge. Duty cycle 0 (always included by default) is the
// full-rate baseline; the study's headline finding is a paced attack
// escaping a sampler configuration that blocks the same attack at full
// rate.
//
// rhdodge is a flag front end over the "trr-dodge" experiment of the
// declarative registry: -emit-spec prints the equivalent spec, which
// `rhx run` executes (or shards) identically.
//
// Usage:
//
//	rhdodge                                        # default grid
//	rhdodge -duty 0,0.25,0.5 -phases 0,0.5         # pacing axes
//	rhdodge -rates 0.25,0.5,1 -tables 2,4,8        # sampler axes
//	rhdodge -patterns double-sided,many-sided      # TRRespass-style table thrash
//	rhdodge -hc 512 -rows 4096 -cycles 1000000
//	rhdodge -emit-spec > dodge.json && rhx run -spec dodge.json -shard 0/2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
)

func parseFloats(flagName, v string) []float64 {
	var out []float64
	for _, s := range strings.Split(v, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhdodge: bad %s value %q\n", flagName, s)
			os.Exit(2)
		}
		out = append(out, f)
	}
	return out
}

func parseInts(flagName, v string) []int {
	var out []int
	for _, s := range strings.Split(v, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhdodge: bad %s value %q\n", flagName, s)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func main() {
	d := core.DefaultTRRDodgeParams()
	var (
		patternsStr = flag.String("patterns", "", "comma-separated attack patterns (default: double-sided)")
		dutyStr     = flag.String("duty", "", "comma-separated duty cycles in [0,1); 0 is the full-rate baseline (default: 0,0.25,0.5)")
		phasesStr   = flag.String("phases", "", "comma-separated phases in [0,1) for paced cells (default: 0,0.5)")
		ratesStr    = flag.String("rates", "", "comma-separated sampler rates in (0,1] (default: 0.5)")
		tablesStr   = flag.String("tables", "", "comma-separated sampler table sizes per bank (default: 4)")
		hc          = flag.Int("hc", d.HCFirst, "victim chip HCfirst")
		benign      = flag.Int("benign", d.BenignCores, "benign cores sharing the system with the attacker")
		records     = flag.Int("records", d.TraceRecords, "memory records per benign trace")
		cycles      = flag.Int64("cycles", d.MemCycles, "attack duration in memory-clock cycles")
		rows        = flag.Int("rows", 0, "rows per bank (0 = Table 6's 16384)")
		ecc         = flag.Bool("ecc", false, "evaluate LPDDR4-like chips with on-die ECC (post-correction flips + raw counts)")
		parallel    = flag.Int("parallel", 0, "concurrent simulations (0 = all cores; output is identical for any value)")
		seed        = flag.Uint64("seed", 1, "evaluation seed")
		emitSpec    = flag.Bool("emit-spec", false, "print the experiment spec JSON instead of running it")
	)
	flag.Parse()

	p := core.TRRDodgeParams{
		HCFirst:      *hc,
		BenignCores:  *benign,
		TraceRecords: *records,
		MemCycles:    *cycles,
		Rows:         *rows,
		ECC:          *ecc,
	}
	if *patternsStr != "" {
		for _, s := range strings.Split(*patternsStr, ",") {
			p.Patterns = append(p.Patterns, attack.Kind(strings.TrimSpace(s)))
		}
	}
	if *dutyStr != "" {
		p.DutyCycles = parseFloats("duty", *dutyStr)
	}
	if *phasesStr != "" {
		p.Phases = parseFloats("phases", *phasesStr)
	}
	if *ratesStr != "" {
		p.SampleRates = parseFloats("rates", *ratesStr)
	}
	if *tablesStr != "" {
		p.TableSizes = parseInts("tables", *tablesStr)
	}

	spec, err := core.NewSpec("trr-dodge", *seed, p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhdodge: %v\n", err)
		os.Exit(2)
	}
	if *emitSpec {
		data, err := spec.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rhdodge: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		return
	}
	res, err := core.RunWith(spec, core.Exec{Parallelism: *parallel})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhdodge: %v\n", err)
		os.Exit(1)
	}
	out, err := res.Format()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhdodge: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(out)
}
