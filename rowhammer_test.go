package rowhammer_test

import (
	"testing"

	rowhammer "repro"
)

// TestPublicAPIQuickstart exercises the README's quickstart path through
// the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	chip, err := rowhammer.NewChip(rowhammer.ChipConfig{
		Name: "api-test", Banks: 1, Rows: 256, RowBits: 1024,
		HCFirst: 8_000, Rate150k: 1e-4,
		WorstPattern: rowhammer.RowStripe0, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tester, err := rowhammer.NewTester(chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	tester.WritePattern(rowhammer.RowStripe0)
	victim := chip.WeakestCell().Row
	flips, err := tester.HammerDoubleSided(victim, 3*8_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) == 0 {
		t.Fatal("no flips above threshold")
	}
	hc, found, err := tester.MeasureHCFirst(rowhammer.HCFirstOptions{})
	if err != nil || !found {
		t.Fatalf("HCfirst not found: %v", err)
	}
	if hc < 4_000 || hc > 14_000 {
		t.Errorf("measured HCfirst %d far from 8k", hc)
	}
}

func TestPublicAPIPopulation(t *testing.T) {
	pop := rowhammer.NewPopulation(rowhammer.AllModules(), rowhammer.ScaleTiny, 1)
	if len(pop.Chips) == 0 {
		t.Fatal("empty population")
	}
	if len(pop.Census()) == 0 {
		t.Fatal("empty census")
	}
	chip, err := pop.Instantiate(pop.Chips[0])
	if err != nil {
		t.Fatal(err)
	}
	if chip.Rows() != rowhammer.ScaleTiny.Rows {
		t.Errorf("instantiated rows = %d", chip.Rows())
	}
}

func TestPublicAPISimulation(t *testing.T) {
	cfg := rowhammer.Table6SimConfig(500, 4_000)
	mix := rowhammer.WorkloadMixes(1, 2, 500, 1)[0]
	res, err := rowhammer.RunSim(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIPC() <= 0 {
		t.Fatal("zero IPC")
	}
	para, err := rowhammer.NewPARA(cfg.MitigationParams(1_000, 1), cfg.T.TCKPS)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mechanism = para
	res2, err := rowhammer.RunSim(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Mechanism != "PARA" {
		t.Errorf("mechanism = %q", res2.Mechanism)
	}
}

func TestPublicAPIExperimentRunners(t *testing.T) {
	o := rowhammer.DefaultOptions()
	o.Scale = rowhammer.ScaleTiny
	o.MaxChipsPerConfig = 1
	o.Iterations = 2
	t1, err := rowhammer.RunTable1(o)
	if err != nil || len(t1.Rows) == 0 {
		t.Fatalf("Table 1: %v", err)
	}
	t2, err := rowhammer.RunTable2(o)
	if err != nil || len(t2.Rows) != 6 {
		t.Fatalf("Table 2: %v", err)
	}
	if len(rowhammer.RunTable7().Modules) != 110 {
		t.Error("Table 7 module count")
	}
	if len(rowhammer.RunTable8().Modules) != 60 {
		t.Error("Table 8 module count")
	}
}
