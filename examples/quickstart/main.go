// Quickstart: build one simulated DRAM chip, double-sided hammer a row
// the way Algorithm 1 does, and watch bit flips appear once the hammer
// count crosses the chip's HCfirst.
package main

import (
	"fmt"
	"log"

	rowhammer "repro"
)

func main() {
	// An LPDDR4-1y-class chip: the most vulnerable configuration the
	// paper measured (HCfirst = 4.8k, Table 4), with on-die ECC.
	chip, err := rowhammer.NewChip(rowhammer.ChipConfig{
		Name: "demo-lpddr4-1y",
		Rows: 1024, Banks: 1, RowBits: 4096,
		HCFirst:      4_800,
		Rate150k:     3e-4,
		W3:           0.12,
		W5:           0.05,
		WorstPattern: rowhammer.RowStripe1,
		OnDieECC:     true,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	tester, err := rowhammer.NewTester(chip, 0)
	if err != nil {
		log.Fatal(err)
	}
	tester.WritePattern(rowhammer.RowStripe1)

	// The paper's attack model: the weakest cell's row is the victim;
	// its two physically adjacent rows are the aggressors.
	victim := chip.WeakestCell().Row
	fmt.Printf("chip %s: weakest cell in row %d (threshold %.0f hammers)\n",
		chip.Config().Name, victim, chip.WeakestCell().Threshold)

	for _, hc := range []int{1_000, 2_500, 5_000, 10_000, 50_000} {
		flips, err := tester.HammerDoubleSided(victim, hc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  HC=%6d → %2d observed bit flips", hc, len(flips))
		if len(flips) > 0 {
			f := flips[0]
			fmt.Printf("   (first: bank %d row %d bit %d)", f.Bank, f.Row, f.Bit)
		}
		fmt.Println()
	}

	// Find the chip's HCfirst the way Section 5.5 does.
	hcFirst, found, err := tester.MeasureHCFirst(rowhammer.HCFirstOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !found {
		fmt.Println("chip is not RowHammerable within the 150k sweep")
		return
	}
	fmt.Printf("measured HCfirst = %d hammers (ground truth %.0f)\n",
		hcFirst, chip.Config().HCFirst)
}
