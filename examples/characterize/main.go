// Characterize: run the paper's methodology over a small chip
// population — reverse-engineer each chip's internal row mapping, find
// its worst-case data pattern, and measure HCfirst — then summarize per
// configuration like Figure 8 / Table 4.
package main

import (
	"fmt"
	"log"

	rowhammer "repro"
)

func main() {
	// One chip from each LPDDR4 module group plus a few DDR4 modules.
	modules := append(rowhammer.DDR4Modules()[:4], rowhammer.LPDDR4Modules()[:6]...)
	pop := rowhammer.NewPopulation(modules, rowhammer.ScaleSmall, 7)

	fmt.Printf("population: %d chips from %d modules\n\n", len(pop.Chips), len(pop.Modules))

	for _, spec := range pop.Chips {
		chip, err := pop.Instantiate(spec)
		if err != nil {
			log.Fatal(err)
		}
		tester, err := rowhammer.NewTester(chip, 0)
		if err != nil {
			log.Fatal(err)
		}

		// Step 1 (Section 4.3): deduce the logical→physical row mapping
		// by hammering single rows and watching where the flips land.
		remap, err := tester.ReverseEngineerRemap(48)
		if err != nil {
			log.Fatal(err)
		}

		// Step 2 (Section 5.2): find the worst-case data pattern.
		tester.WritePattern(rowhammer.Checkered0)
		cov, err := tester.MeasureCoverage(min(150_000, tester.MaxHC), 3, 2)
		if err != nil {
			log.Fatal(err)
		}
		worst, ok := cov.WorstPattern()
		worstName := "n/a (not enough flips)"
		if ok {
			worstName = worst.String()
			tester.WritePattern(worst)
		}

		// Step 3 (Section 5.5): measure HCfirst under the worst pattern.
		hcFirst, found, err := tester.MeasureHCFirst(rowhammer.HCFirstOptions{Stride: 2})
		if err != nil {
			log.Fatal(err)
		}
		hcStr := "no flips ≤ 150k"
		if found {
			hcStr = fmt.Sprintf("HCfirst=%d", hcFirst)
		}

		fmt.Printf("%-22s %-9s remap=%-16v worstDP=%-12s %s\n",
			spec.Name, spec.Node.String(), remap, worstName, hcStr)
	}
}
