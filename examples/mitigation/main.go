// Mitigation: compare the RowHammer mitigation mechanisms on one 8-core
// workload mix across decreasing HCfirst values — a single-mix slice of
// Figure 10 showing how overheads scale as chips grow more vulnerable.
package main

import (
	"fmt"
	"log"
	"text/tabwriter"

	"os"

	rowhammer "repro"
)

func main() {
	cfg := rowhammer.Table6SimConfig(2_000, 25_000)
	mix := rowhammer.WorkloadMixes(1, 8, 2_000, 11)[0]

	// Baseline: no mitigation.
	base, err := rowhammer.RunSim(cfg, mix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mix %s: baseline IPC %.2f, MPKI %.0f\n\n", mix.Name, base.TotalIPC(), base.MPKI)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mechanism\tHCfirst\trel. perf\tbandwidth overhead\tmitigation ACTs")

	type build func(p rowhammer.MitigationParams) (rowhammer.Mechanism, error)
	mechs := []struct {
		name string
		mk   build
	}{
		{"PARA", func(p rowhammer.MitigationParams) (rowhammer.Mechanism, error) {
			return rowhammer.NewPARA(p, cfg.T.TCKPS)
		}},
		{"TWiCe-ideal", func(p rowhammer.MitigationParams) (rowhammer.Mechanism, error) {
			return rowhammer.NewTWiCe(p, true)
		}},
		{"Ideal", rowhammer.NewIdealMechanism},
	}

	for _, m := range mechs {
		for _, hc := range []int{100_000, 4_800, 512, 128} {
			mech, err := m.mk(cfg.MitigationParams(hc, 1))
			if err != nil {
				log.Fatal(err)
			}
			run := cfg
			run.Mechanism = mech
			res, err := rowhammer.RunSim(run, mix)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%.3f%%\t%d\n",
				m.name, hc,
				100*res.TotalIPC()/base.TotalIPC(),
				res.BandwidthOverheadPct,
				res.Ctrl.MitigationACTs)
		}
	}
	w.Flush()
	fmt.Println("\nLower HCfirst ⇒ more victim refreshes ⇒ less bandwidth for the workload.")
}
