// Attack: an end-to-end double-sided RowHammer attack through the
// cycle-accurate memory controller against a simulated DDR4 chip — first
// unprotected, then with PARA enabled. The access pattern is the strong
// threat model of Section 6: the attacker knows the physical row layout
// and issues alternating row-conflict reads to the victim's two
// neighbours as fast as the DRAM protocol allows.
package main

import (
	"fmt"
	"log"

	rowhammer "repro"
)

// attack hammers the victim's neighbours through the controller for the
// given number of memory cycles and returns the victim's committed flips.
func attack(mech rowhammer.Mechanism, cycles int64) (flips int, acts int64, err error) {
	geo := rowhammer.Table6Geometry()
	ch, err := rowhammer.NewChannel(geo, rowhammer.DDR4Timing(geo.Rows))
	if err != nil {
		return 0, 0, err
	}
	ctrl, err := rowhammer.NewMemController(rowhammer.Table6MemControllerConfig(), ch, mech)
	if err != nil {
		return 0, 0, err
	}
	mapper, err := rowhammer.NewAddressMapper(geo)
	if err != nil {
		return 0, 0, err
	}

	// A DDR4-new-class chip (HCfirst 10k) spanning the whole channel.
	chip, err := rowhammer.NewChip(rowhammer.ChipConfig{
		Name:         "attacked-ddr4-new",
		Banks:        geo.Banks(),
		Rows:         geo.Rows,
		RowBits:      1024,
		HCFirst:      10_000,
		Rate150k:     5e-5,
		WorstPattern: rowhammer.RowStripe0,
		Seed:         99,
	})
	if err != nil {
		return 0, 0, err
	}
	chip.WriteAll(rowhammer.RowStripe0)

	// Every activation the controller performs — demand or mitigation —
	// hammers the fault model.
	ctrl.OnACT(func(rank, bank, row int, cycle int64) {
		if err := chip.Activate(bank, row, 1); err != nil {
			log.Fatal(err)
		}
	})

	// The attacker has profiled the chip: target the weakest cell's row.
	weak := chip.WeakestCell()
	victim, bank := weak.Row, weak.Bank
	aggLo := mapper.AddressOf(rowhammer.Address{Bank: bank, Row: victim - 1})
	aggHi := mapper.AddressOf(rowhammer.Address{Bank: bank, Row: victim + 1})

	// Alternate reads to the two aggressor rows; each is a row conflict,
	// so every read costs an ACT (the classic hammering loop).
	next := aggLo
	for c := int64(0); c < cycles; c++ {
		if ctrl.PendingReads() == 0 {
			ctrl.EnqueueRead(0, next, func() {})
			if next == aggLo {
				next = aggHi
			} else {
				next = aggLo
			}
		}
		ctrl.Tick()
	}
	chip.CommitFlips()
	return len(chip.CommittedFlips(bank, victim)), ctrl.Stats.DemandACTs, nil
}

func main() {
	geo := rowhammer.Table6Geometry()
	t := rowhammer.DDR4Timing(geo.Rows)

	// ~64 ms of wall-clock hammering: one full refresh window.
	cycles := t.REFW

	fmt.Println("double-sided RowHammer through the memory controller (one 64 ms refresh window)")

	flips, acts, err := attack(nil, cycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  unprotected:    %6d demand ACTs → %d bit flips in the victim row\n", acts, flips)

	cfg := rowhammer.Table6SimConfig(0, 1)
	para, err := rowhammer.NewPARA(cfg.MitigationParams(10_000, 1), t.TCKPS)
	if err != nil {
		log.Fatal(err)
	}
	flips, acts, err = attack(para, cycles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  PARA-protected: %6d demand ACTs → %d bit flips in the victim row\n", acts, flips)

	fmt.Println("\nPARA's probabilistic neighbour refreshes reset the victim's charge")
	fmt.Println("before the hammer count reaches the chip's HCfirst.")
}
