package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter flags `range` over a map in simulation-visible packages.
// Go randomizes map iteration order on purpose, so any map-ordered loop
// whose effects reach published state is a reproducibility bug waiting
// for a fuzz seed to find it.
//
// Two shapes are exempt without annotation:
//
//   - the delete-clear idiom: a loop whose body only deletes from the
//     map being ranged (order cannot matter);
//   - sort-then-iterate: the loop only accumulates into locals that a
//     sort.* / slices.Sort* call in the same function orders before any
//     consumer sees them.
//
// Anything else needs //rhlint:allow mapiter(reason).
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: `flags range-over-map in simulation-visible packages

Map iteration order is randomized; in packages whose state reaches
published results (sim, memctrl, cpu, cache, dram, faultmodel, attack,
mitigation, engine, core, stats, chips, trace, ecc, charact) a ranged
map must either feed a sort-then-iterate pattern, be the delete-clear
idiom, or carry //rhlint:allow mapiter(reason).`,
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	if !simVisiblePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isDeleteClear(pass.TypesInfo, rs) || feedsSort(pass, rs, stack) {
				return true
			}
			pass.Reportf(rs.For, "range over map %s in simulation-visible package %q: iteration order is nondeterministic (sort the keys first, or //rhlint:allow mapiter(reason))",
				types.ExprString(rs.X), pass.Pkg.Path())
			return true
		})
	}
	return nil
}

// isDeleteClear recognizes `for k := range m { delete(m, k) }`: the
// compiler-blessed map-clear idiom, trivially order-independent.
func isDeleteClear(info *types.Info, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	es, ok := rs.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "delete" {
		return false
	}
	// Both the ranged expression and delete's first argument must be the
	// same object (or at least the same spelled expression).
	return sameObject(info, rs.X, call.Args[0])
}

// sameObject reports whether two expressions denote the same variable
// (by object identity for identifiers/selectors, else by spelling).
func sameObject(info *types.Info, a, b ast.Expr) bool {
	oa, ob := rootObject(info, a), rootObject(info, b)
	if oa != nil && ob != nil {
		return oa == ob
	}
	return types.ExprString(a) == types.ExprString(b)
}

// rootObject resolves the object an identifier or field selection
// denotes, or nil.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// feedsSort reports whether the range loop only writes locals that are
// sorted after the loop in the same function body (the sort-then-iterate
// pattern): collect keys/values in arbitrary order, order them, then
// consume. The check is shape-based, not a dataflow proof: every object
// assigned or appended to inside the loop body is collected, and some
// collected object must appear as an argument of a sort.*/slices.* call
// after the loop. Mutating anything through a pointer, a method call, or
// a channel inside the loop defeats the exemption.
func feedsSort(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	body := enclosingFuncBody(stack[:len(stack)-1])
	if body == nil {
		return false
	}

	// Objects written inside the loop body.
	written := map[types.Object]bool{}
	escapes := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if o := identObject(pass.TypesInfo, l); o != nil {
						written[o] = true
					}
				case *ast.IndexExpr:
					if o := rootObject(pass.TypesInfo, l.X); o != nil {
						written[o] = true
					}
				case *ast.SelectorExpr, *ast.StarExpr:
					// Writing through a field or pointer publishes state
					// before any sort can run.
					escapes = true
				}
			}
		case *ast.SendStmt, *ast.ReturnStmt:
			escapes = true
		}
		return true
	})
	if escapes || len(written) == 0 {
		return false
	}

	// A sort call after the loop over one of the written objects.
	sorted := false
	for _, stmt := range body.List {
		if stmt.Pos() < rs.End() {
			continue
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || sorted {
				return !sorted
			}
			obj := calleeFunc(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			if path != "sort" && path != "slices" && !strings.HasSuffix(path, "/sort") {
				return true
			}
			for _, arg := range call.Args {
				if o := rootObject(pass.TypesInfo, argRoot(arg)); o != nil && written[o] {
					sorted = true
				}
			}
			return !sorted
		})
		if sorted {
			return true
		}
	}
	return false
}

// identObject resolves an identifier's object from either Defs (for :=)
// or Uses (for =).
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// argRoot strips slicing and func-literal wrappers so sort.Slice(keys,
// func...) and sort.Strings(keys[:n]) both resolve to keys.
func argRoot(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		default:
			return e
		}
	}
}
