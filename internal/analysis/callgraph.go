package analysis

// Shared call-graph scaffolding for the fact-producing analyzers. Each
// of them computes a per-function fact ("allocates", "impure",
// "returns a derived PRNG") by scanning function bodies and consulting
// the facts of callees — which live either in the same package (requiring
// a fixpoint over the package's possibly mutually recursive functions)
// or in an already-analyzed dependency (requiring only a store lookup).

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
)

// A funcInfo pairs one declared function with its type object.
type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

// packageFuncs returns the package's function declarations with bodies,
// in file/source order (deterministic fact and diagnostic order).
// Test-file functions are excluded: their objects are not importable,
// so facts about them could never be consumed.
func packageFuncs(pass *Pass) []funcInfo {
	var out []funcInfo
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			out = append(out, funcInfo{decl: fd, obj: obj})
		}
	}
	return out
}

// propagate runs compute over the package's functions until a full
// sweep produces no new fact — the fixpoint that resolves same-package
// (including mutually recursive) call chains. compute must be monotone:
// it only ever adds facts, so the loop terminates in at most one sweep
// per function.
func propagate(funcs []funcInfo, compute func(fn funcInfo) bool) {
	for range funcs {
		changed := false
		for _, fn := range funcs {
			if compute(fn) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// calleeAt resolves the *types.Func a call expression statically
// invokes, or nil for builtins, conversions, func-typed values, and
// interface-method calls (which the fact analyses conservatively treat
// as unknown — same limit the direct checks always had).
func calleeAt(info *types.Info, call *ast.CallExpr) *types.Func {
	obj := calleeFunc(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// shortPos renders a position as "file.go:123" for fact Why chains —
// compact enough to survive several levels of propagation.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// factName renders a function for Why chains and diagnostics:
// "pkgname.Func" or "pkgname.(Type).Method".
func factName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// capWhy bounds a Why chain so deeply nested propagation cannot bloat
// fact files or diagnostics.
func capWhy(s string) string {
	const max = 240
	if len(s) <= max {
		return s
	}
	return s[:max] + "..."
}
