package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc reports allocating constructs inside functions annotated
// //rhlint:hotpath — the saturated Tick/EnqueueRead/NextWork chain whose
// zero-alloc property the runtime gates (TestSaturatedTickZeroAlloc and
// the bulk-skip gate) assert empirically. The static view catches the
// regression at review time; the runtime gate catches what escapes the
// static view.
//
// Flagged constructs:
//
//   - append whose destination shows no capacity evidence (any append is
//     flagged; amortized-growth sites carry an allow with the reasoning);
//   - make/new and map, slice, or &struct composite literals;
//   - function literals that capture variables (escaping closures);
//   - implicit or explicit conversion of a non-pointer-shaped value to
//     an interface (boxing);
//   - calls passing arguments to a variadic interface parameter
//     (...any): the backing slice for the arguments allocates even when
//     every argument is pointer-shaped;
//   - interprocedurally, any call to a function carrying an Allocates
//     fact: helpers no longer need their own //rhlint:hotpath
//     annotation to be checked — the fact propagates bottom-up through
//     the call graph, across packages, and the diagnostic names the
//     offending path down to the concrete allocation site.
//
// Unlike the determinism analyzers, hotalloc applies wherever the
// annotation appears — any package, including _test.go files — because
// the annotation itself is the opt-in. Facts, however, are computed for
// every module package the driver walks, annotated or not.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: `reports allocating constructs in //rhlint:hotpath functions

Functions whose doc comment carries //rhlint:hotpath must not allocate:
no append/make/new, no map/slice/&struct literals, no capturing
closures, no boxing of non-pointer values into interfaces, no variadic
interface calls, and no calls to functions that allocate — computed
transitively, across packages, via Allocates facts. Arguments of panic
calls are exempt: a crash path produces no result bytes. Amortized or
one-time allocations carry //rhlint:allow hotalloc(reason); an allow on
an allocation site also stops the fact from propagating to callers.`,
	Run:       runHotAlloc,
	FactTypes: []Fact{(*Allocates)(nil)},
}

// stdAllocates names standard-library functions that are documented or
// well-known allocators. The standard library is never analyzed for
// facts (both drivers must see identical fact sets, and only the module
// tree is walked by both), so this curated table is the std knowledge
// the transitive analysis is allowed to use.
var stdAllocates = map[string]bool{
	"fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true,
	"fmt.Errorf": true, "fmt.Appendf": true,
	"errors.New":   true,
	"strings.Join": true, "strings.Repeat": true, "strings.Split": true,
	"strings.Fields": true, "strings.ToLower": true, "strings.ToUpper": true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatUint": true,
	"strconv.FormatFloat": true, "strconv.Quote": true, "strconv.AppendInt": true,
	"sort.Slice": true, "sort.SliceStable": true,
	"bytes.Clone": true, "slices.Clone": true, "maps.Clone": true,
}

func runHotAlloc(pass *Pass) error {
	computeAllocFacts(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// computeAllocFacts attaches an Allocates fact to every package-level
// function that allocates on some path — directly, or by calling a
// callee that does (same package via fixpoint, other packages via
// imported facts). Sites covered by //rhlint:allow hotalloc(...) are
// excluded: a reasoned amortized-allocation allow clears the whole
// hotpath closure above it, exactly as the annotation always promised.
func computeAllocFacts(pass *Pass) {
	funcs := packageFuncs(pass)
	propagate(funcs, func(fn funcInfo) bool {
		var have Allocates
		if pass.ImportObjectFact(fn.obj, &have) {
			return false // already known to allocate; monotone, done
		}
		why, found := firstAllocation(pass, fn.decl)
		if !found {
			return false
		}
		pass.ExportObjectFact(fn.obj, &Allocates{Why: capWhy(why)})
		return true
	})
}

// firstAllocation scans a function body in source order and returns a
// description of the first unsuppressed allocation evidence, direct or
// via a callee's Allocates fact.
func firstAllocation(pass *Pass, fd *ast.FuncDecl) (string, bool) {
	info := pass.TypesInfo
	why := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				return false // crash path: allocation cannot perturb results
			}
			if w, ok := callAllocation(pass, n); ok {
				why = w
				return false
			}
			// Boxing at argument positions and explicit conversions.
			forEachBoxedArg(pass, n, func(arg ast.Expr) {
				if why == "" && !pass.SuppressedAt(arg.Pos()) {
					why = "interface boxing at " + shortPos(pass.Fset, arg.Pos())
				}
			})
		case *ast.CompositeLit:
			if pass.SuppressedAt(n.Pos()) {
				return true
			}
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					why = "map literal at " + shortPos(pass.Fset, n.Pos())
				case *types.Slice:
					why = "slice literal at " + shortPos(pass.Fset, n.Pos())
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && !pass.SuppressedAt(n.Pos()) {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					why = "&composite literal at " + shortPos(pass.Fset, n.Pos())
				}
			}
		case *ast.FuncLit:
			if !pass.SuppressedAt(n.Pos()) && capturedVar(info, n, fd) != nil {
				why = "capturing closure at " + shortPos(pass.Fset, n.Pos())
			}
			return false // the literal runs later; its body is its own problem
		case *ast.GoStmt:
			if !pass.SuppressedAt(n.Pos()) {
				why = "go statement at " + shortPos(pass.Fset, n.Pos())
			}
		}
		return why == ""
	})
	return why, why != ""
}

// callAllocation reports allocation evidence carried by one call
// expression: allocating builtins, known std allocators, variadic
// interface argument slices, and callees with Allocates facts.
func callAllocation(pass *Pass, call *ast.CallExpr) (string, bool) {
	if pass.SuppressedAt(call.Pos()) {
		return "", false
	}
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "make", "new":
				return b.Name() + " at " + shortPos(pass.Fset, call.Pos()), true
			}
			return "", false
		}
	}
	// Callee-based evidence first: "calls fmt.Sprintf" names the path
	// better than the generic variadic-slice message would.
	if callee := calleeAt(info, call); callee != nil {
		if callee.Pkg() != nil && stdAllocates[callee.Pkg().Path()+"."+callee.Name()] {
			return "calls " + factName(callee) + " at " + shortPos(pass.Fset, call.Pos()), true
		}
		var fact Allocates
		if pass.ImportObjectFact(callee, &fact) {
			return "calls " + factName(callee) + " at " + shortPos(pass.Fset, call.Pos()) + ": " + fact.Why, true
		}
	}
	if n := variadicInterfaceArgs(info, call); n > 0 {
		return "variadic interface call at " + shortPos(pass.Fset, call.Pos()), true
	}
	return "", false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, n) {
				return false // crash path: allocation cannot perturb results
			}
			checkHotCall(pass, fd, n)
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hotpath %s", fd.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hotpath %s", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in hotpath %s (reuse a pooled or preallocated object)", fd.Name.Name)
				}
			}
		case *ast.FuncLit:
			if capt := capturedVar(info, n, fd); capt != nil {
				pass.Reportf(n.Pos(), "closure captures %s in hotpath %s: capturing closures allocate (hoist the closure or pass state explicitly)", capt.Name(), fd.Name.Name)
			}
			return false // don't double-report the literal's own body
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hotpath %s: goroutine start allocates its stack", fd.Name.Name)
		}
		return true
	})
	// Boxing: walk again looking at every expression with both a
	// concrete type and an interface conversion context.
	checkBoxing(pass, fd)
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append in hotpath %s may grow the backing array (preallocate, use a free list, or //rhlint:allow hotalloc(amortized: ...))", fd.Name.Name)
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hotpath %s", fd.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in hotpath %s", fd.Name.Name)
			}
			return
		}
	}
	if n := variadicInterfaceArgs(info, call); n > 0 {
		pass.Reportf(call.Pos(), "call to %s passes %d argument(s) through a variadic interface parameter in hotpath %s: the argument slice allocates per call", types.ExprString(call.Fun), n, fd.Name.Name)
	}
	callee := calleeAt(info, call)
	if callee == nil {
		return
	}
	if callee.Pkg() != nil && stdAllocates[callee.Pkg().Path()+"."+callee.Name()] {
		pass.Reportf(call.Pos(), "call to %s allocates in hotpath %s (known allocating standard-library function)", factName(callee), fd.Name.Name)
		return
	}
	var fact Allocates
	if pass.ImportObjectFact(callee, &fact) {
		pass.Reportf(call.Pos(), "call to %s allocates in hotpath %s: %s (make the callee allocation-free, or //rhlint:allow hotalloc(reason))", factName(callee), fd.Name.Name, fact.Why)
	}
}

// variadicInterfaceArgs returns how many arguments the call passes
// through a variadic interface parameter (...any, ...interface{...}),
// or 0. Spreading an existing slice (f(xs...)) passes the slice itself
// and allocates nothing new.
func variadicInterfaceArgs(info *types.Info, call *ast.CallExpr) int {
	if call.Ellipsis != token.NoPos {
		return 0
	}
	sig := callSignature(info, call)
	if sig == nil || !sig.Variadic() {
		return 0
	}
	params := sig.Params()
	last, ok := params.At(params.Len() - 1).Type().(*types.Slice)
	if !ok || !types.IsInterface(last.Elem().Underlying()) {
		return 0
	}
	if n := len(call.Args) - (params.Len() - 1); n > 0 {
		return n
	}
	return 0
}

// capturedVar returns a variable the function literal captures from its
// enclosing function, or nil. Package-level variables and the literal's
// own parameters/locals are not captures.
func capturedVar(info *types.Info, lit *ast.FuncLit, outer *ast.FuncDecl) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		// Declared inside the literal: local, not a capture.
		if lit.Pos() <= pos && pos < lit.End() {
			return true
		}
		// Declared inside the enclosing function (parameters included):
		// a capture. Anything declared outside it is package scope.
		if outer.Pos() <= pos && pos < outer.End() {
			captured = v
			return false
		}
		return true
	})
	return captured
}

// checkBoxing flags conversions of non-pointer-shaped concrete values to
// interface types: call arguments, explicit conversions, and returns.
func checkBoxing(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(pass.TypesInfo, n) {
				return false
			}
			forEachBoxedArg(pass, n, func(arg ast.Expr) {
				pass.Reportf(arg.Pos(), "interface conversion boxes %s in hotpath %s (non-pointer value escapes to the heap)", pass.TypesInfo.Types[arg].Type, fd.Name.Name)
			})
		case *ast.FuncLit:
			return false
		}
		return true
	})
}

// isPanicCall reports whether the call invokes the panic builtin. A
// hotpath that is about to crash is allowed to allocate its message:
// nothing downstream of a panic produces result bytes, so the zero-alloc
// discipline does not apply to the crash path.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// forEachBoxedArg calls fn for every argument of the call that boxes a
// non-pointer-shaped concrete value into an interface: explicit
// conversions I(x) and implicit conversions at interface-typed
// parameters, variadic included.
func forEachBoxedArg(pass *Pass, call *ast.CallExpr, fn func(ast.Expr)) {
	info := pass.TypesInfo
	// Explicit conversion T(x) where T is an interface.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			fn(call.Args[0])
		}
		return
	}
	// Implicit conversion at a call site with interface params.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // spread: no per-element conversion
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt.Underlying()) && boxes(info, arg) {
			fn(arg)
		}
	}
}

// boxes reports whether converting arg to an interface allocates.
// Pointer-shaped values (pointers, channels, maps, funcs, unsafe
// pointers) fit in the interface word; everything else — ints, strings,
// structs, slices — escapes to the heap when boxed (small-int
// staticuint64s caching notwithstanding; on a hot path even that is a
// data-dependent branch worth surfacing).
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if types.IsInterface(t.Underlying()) {
		return false // interface-to-interface: no box
	}
	if tv.IsNil() {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
		// Constants of basic type may be boxed statically, but
		// variables are not.
		return tv.Value == nil
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored in the interface word
	default:
		return true
	}
}

// callSignature returns the signature of the called function, or nil
// for builtins and type conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}
