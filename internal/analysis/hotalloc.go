package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc reports allocating constructs inside functions annotated
// //rhlint:hotpath — the saturated Tick/EnqueueRead/NextWork chain whose
// zero-alloc property the runtime gates (TestSaturatedTickZeroAlloc and
// the bulk-skip gate) assert empirically. The static view catches the
// regression at review time; the runtime gate catches what escapes the
// static view.
//
// Flagged constructs:
//
//   - append whose destination shows no capacity evidence (any append is
//     flagged; amortized-growth sites carry an allow with the reasoning);
//   - make/new and map, slice, or &struct composite literals;
//   - function literals that capture variables (escaping closures);
//   - implicit or explicit conversion of a non-pointer-shaped value to
//     an interface (boxing).
//
// Unlike the determinism analyzers, hotalloc applies wherever the
// annotation appears — any package, including _test.go files — because
// the annotation itself is the opt-in.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: `reports allocating constructs in //rhlint:hotpath functions

Functions whose doc comment carries //rhlint:hotpath must not allocate:
no append/make/new, no map/slice/&struct literals, no capturing
closures, no boxing of non-pointer values into interfaces. Amortized or
one-time allocations carry //rhlint:allow hotalloc(reason).`,
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fd, n)
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hotpath %s", fd.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hotpath %s", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in hotpath %s (reuse a pooled or preallocated object)", fd.Name.Name)
				}
			}
		case *ast.FuncLit:
			if capt := capturedVar(info, n, fd); capt != nil {
				pass.Reportf(n.Pos(), "closure captures %s in hotpath %s: capturing closures allocate (hoist the closure or pass state explicitly)", capt.Name(), fd.Name.Name)
			}
			return false // don't double-report the literal's own body
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hotpath %s: goroutine start allocates its stack", fd.Name.Name)
		}
		return true
	})
	// Boxing: walk again looking at every expression with both a
	// concrete type and an interface conversion context.
	checkBoxing(pass, fd)
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append in hotpath %s may grow the backing array (preallocate, use a free list, or //rhlint:allow hotalloc(amortized: ...))", fd.Name.Name)
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hotpath %s", fd.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in hotpath %s", fd.Name.Name)
			}
			return
		}
	}
}

// capturedVar returns a variable the function literal captures from its
// enclosing function, or nil. Package-level variables and the literal's
// own parameters/locals are not captures.
func capturedVar(info *types.Info, lit *ast.FuncLit, outer *ast.FuncDecl) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		// Declared inside the literal: local, not a capture.
		if lit.Pos() <= pos && pos < lit.End() {
			return true
		}
		// Declared inside the enclosing function (parameters included):
		// a capture. Anything declared outside it is package scope.
		if outer.Pos() <= pos && pos < outer.End() {
			captured = v
			return false
		}
		return true
	})
	return captured
}

// checkBoxing flags conversions of non-pointer-shaped concrete values to
// interface types: call arguments, explicit conversions, and returns.
func checkBoxing(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Explicit conversion T(x) where T is an interface.
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				if types.IsInterface(tv.Type) && len(n.Args) == 1 {
					reportBox(pass, fd, n.Args[0])
				}
				return true
			}
			// Implicit conversion at a call site with interface params.
			sig := callSignature(info, n)
			if sig == nil {
				return true
			}
			params := sig.Params()
			for i, arg := range n.Args {
				var pt types.Type
				switch {
				case sig.Variadic() && i >= params.Len()-1:
					pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
				case i < params.Len():
					pt = params.At(i).Type()
				}
				if pt != nil && types.IsInterface(pt.Underlying()) {
					reportBox(pass, fd, arg)
				}
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
}

// reportBox flags arg if its concrete type boxes on conversion to an
// interface. Pointer-shaped values (pointers, channels, maps, funcs,
// unsafe pointers) fit in the interface word; everything else — ints,
// strings, structs, slices — escapes to the heap when boxed (small-int
// staticuint64s caching notwithstanding; on a hot path even that is a
// data-dependent branch worth surfacing).
func reportBox(pass *Pass, fd *ast.FuncDecl, arg ast.Expr) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if types.IsInterface(t.Underlying()) {
		return // interface-to-interface: no box
	}
	if tv.IsNil() {
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
		if b, ok := t.Underlying().(*types.Basic); ok {
			if b.Kind() == types.UnsafePointer {
				return
			}
			// Constants of basic type may be boxed statically, but
			// variables are not.
			if tv.Value != nil {
				return
			}
			pass.Reportf(arg.Pos(), "interface conversion boxes %s in hotpath %s (non-pointer value escapes to the heap)", t, fd.Name.Name)
			return
		}
		return // pointer-shaped: stored in the interface word
	default:
		pass.Reportf(arg.Pos(), "interface conversion boxes %s in hotpath %s (non-pointer value escapes to the heap)", t, fd.Name.Name)
	}
}

// callSignature returns the signature of the called function, or nil
// for builtins and type conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}
