// Package analysis is rhlint: a suite of static analyzers that enforce
// the repository's determinism and hot-path allocation discipline at
// compile time, before the runtime gates (the differential corpus, the
// scheduler-equivalence sweep, the shard-merge invariance tests) ever
// run.
//
// The suite is a self-contained reimplementation of the
// golang.org/x/tools/go/analysis analyzer shape on the standard library
// alone — the repository carries no module dependencies, so the real
// framework cannot be imported. The surface is deliberately the same:
// an Analyzer holds a Name, a Doc, and a Run(*Pass); cmd/rhlint drives
// the suite either standalone (rhlint ./...) or as a `go vet -vettool`
// (the unitchecker .cfg protocol, see unit.go).
//
// Findings are suppressed with an annotation that must carry a reason:
//
//	//rhlint:allow mapiter(per-key in-place rewrite, order-independent)
//
// placed on the offending line or the line directly above it. A bare
// //rhlint:allow without analyzer name or reason is itself a diagnostic.
// Functions opt into the hotalloc analyzer with //rhlint:hotpath in
// their doc comment. docs/LINT.md documents the grammar and catalog.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one rhlint analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rhlint:allow annotations.
	Name string
	// Doc is the one-paragraph catalog entry (`rhlint help`).
	Doc string
	// Run reports findings on one package through pass.Reportf.
	Run func(*Pass) error
	// FactTypes lists the fact types the analyzer exports and imports
	// (see facts.go). An analyzer with facts is run over dependency
	// packages too — fact-only, diagnostics discarded — so its facts
	// exist by the time a dependent package needs them.
	FactTypes []Fact
}

// usesFacts reports whether any analyzer in the set declares facts, in
// which case the driver must walk dependencies fact-first.
func usesFacts(analyzers []*Analyzer) bool {
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			return true
		}
	}
	return false
}

// Analyzers returns the full suite in catalog order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapIter, WallClock, HotAlloc, SeedFlow}
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the cross-package fact store the driver threads through
	// the build graph; nil in fact-free runs (see facts.go).
	Facts *FactStore

	dirs   *directives
	report func(Diagnostic)
}

// SuppressedAt reports whether an //rhlint:allow directive for this
// pass's analyzer covers pos. The fact analyzers consult it so a
// reasoned allow at a leaf site (an amortized append, the RH_ENGINE
// read) stops the fact from propagating and poisoning every caller.
func (p *Pass) SuppressedAt(pos token.Pos) bool {
	if p.dirs == nil {
		return false
	}
	_, ok := p.dirs.reasonFor(Diagnostic{Analyzer: p.Analyzer.Name, Pos: p.Fset.Position(pos)})
	return ok
}

// A Diagnostic is one finding. Suppressed is the //rhlint:allow reason
// when a directive covers the finding; drivers print only unsuppressed
// diagnostics but -json exposes both.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file is a _test.go file. The
// determinism analyzers skip test files: tests do not produce published
// results, and the runtime suites (differential corpus, shard-merge
// invariance) already pin their behavior.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// simVisible names the packages whose state reaches published results:
// any nondeterminism here escapes into result bytes. The module root
// ("repro") re-exports the experiment API and counts too.
var simVisible = map[string]bool{
	"sim": true, "memctrl": true, "cpu": true, "cache": true,
	"dram": true, "faultmodel": true, "attack": true, "mitigation": true,
	"engine": true, "core": true, "stats": true,
	// Not named by the original task list but equally simulation-visible:
	// the chip population, trace synthesis, ECC model, and measurement
	// primitives all feed result bytes.
	"chips": true, "trace": true, "ecc": true, "charact": true,
}

// simVisiblePkg gates the determinism analyzers by import path.
func simVisiblePkg(path string) bool {
	if path == "repro" {
		return true
	}
	return simVisible[path[strings.LastIndex(path, "/")+1:]]
}

// --- rhlint directives ------------------------------------------------------

const (
	directivePrefix  = "//rhlint:"
	hotpathDirective = "//rhlint:hotpath"
)

// allowRe matches //rhlint:allow name(reason); the reason is mandatory
// and free-form (no newline). Trailing text after the closing paren is
// tolerated so the annotation can share a comment with prose.
var allowRe = regexp.MustCompile(`^//rhlint:allow ([a-z]+)\(([^)]+)\)`)

// directives is the per-file suppression index of one package.
type directives struct {
	fset *token.FileSet
	// allow maps filename -> line -> analyzer name -> reason for
	// suppressions on that line. A directive suppresses its own line
	// and the line below it, so it works both as a trailing comment and
	// on its own line above the finding.
	allow map[string]map[int]map[string]string
	// malformed collects unparseable //rhlint: comments as driver
	// diagnostics (analyzer "rhlint"); they are not suppressible.
	malformed []Diagnostic
}

func scanDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{fset: fset, allow: map[string]map[int]map[string]string{}}
	names := map[string]bool{}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
					continue
				}
				m := allowRe.FindStringSubmatch(text)
				bad := func(format string, args ...any) {
					d.malformed = append(d.malformed, Diagnostic{
						Analyzer: "rhlint",
						Pos:      fset.Position(c.Pos()),
						Message:  fmt.Sprintf(format, args...),
					})
				}
				if m == nil {
					bad("malformed rhlint directive %q: want //rhlint:hotpath or //rhlint:allow <analyzer>(<reason>)", text)
					continue
				}
				if !names[m[1]] {
					bad("rhlint:allow names unknown analyzer %q (have mapiter, wallclock, hotalloc, seedflow)", m[1])
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad("rhlint:allow %s() has an empty reason; every suppression must say why", m[1])
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := d.allow[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]string{}
					d.allow[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]string{}
					}
					byLine[line][m[1]] = strings.TrimSpace(m[2])
				}
			}
		}
	}
	return d
}

// reasonFor returns the allow reason covering the finding — a directive
// on its line or the line above, which indexed both lines — and whether
// one exists.
func (d *directives) reasonFor(diag Diagnostic) (string, bool) {
	byLine := d.allow[diag.Pos.Filename]
	if byLine == nil {
		return "", false
	}
	reason, ok := byLine[diag.Pos.Line][diag.Analyzer]
	return reason, ok
}

// isHotpath reports whether the function declaration opts into hotalloc.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// --- driver -----------------------------------------------------------------

// A Package is one loaded, type-checked compilation unit. FactsOnly
// marks a dependency loaded solely so its facts exist before its
// dependents are analyzed; drivers discard its diagnostics — the
// standalone equivalent of the vet protocol's VetxOnly units.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
	FactsOnly bool
}

// RunPackage runs the analyzers over the package, applies the allow
// directives, and returns every diagnostic sorted by position —
// suppressed findings included, carrying their allow reason, so -json
// can expose them; callers that print filter with ActiveOnly.
// Malformed directives are reported once per package. facts may be nil
// for a fact-free run; with a store, facts of dependency packages must
// already be present (the drivers walk the build graph in dependency
// order) and this package's facts are added to the store.
func RunPackage(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	dirs := scanDirectives(pkg.Fset, pkg.Files)
	diags := append([]Diagnostic(nil), dirs.malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			dirs:      dirs,
		}
		pass.report = func(d Diagnostic) {
			if reason, ok := dirs.reasonFor(d); ok {
				d.Suppressed = reason
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// ActiveOnly filters out the diagnostics an //rhlint:allow covers.
func ActiveOnly(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Suppressed == "" {
			out = append(out, d)
		}
	}
	return out
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// calleeFunc resolves the called function object of a call expression,
// or nil (func-typed variables, method values through interfaces, etc.).
func calleeFunc(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// inspectWithStack walks the file keeping the ancestor stack, calling fn
// with the node pushed last (fn sees n == stack[len(stack)-1]).
func inspectWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// The walk still descends; analyzers here never prune.
			return true
		}
		return true
	})
}

// enclosingFuncBody returns the innermost function body on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
