package analysis

// Tests for the interprocedural layer: the multi-package facts fixture
// (testdata/facts: impure/allocating leaf -> clean middle -> flagged sim
// caller), gob round-tripping of every fact type, and driver parity —
// the standalone walk and the `go vet -vettool` protocol must emit
// identical diagnostics from identical facts.

import (
	"bytes"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// factsFixture names the fixture packages in dependency order.
var factsFixture = []struct{ dir, path string }{
	{filepath.Join("testdata", "facts", "leaf"), "example.com/facts/leaf"},
	{filepath.Join("testdata", "facts", "mid"), "example.com/facts/mid"},
	{filepath.Join("testdata", "facts", "sim"), "example.com/facts/sim"},
}

// loadFactsFixture type-checks the fixture packages against each other
// (shared loader) and runs the full suite over them with a shared fact
// store — the same walk the standalone driver performs.
func loadFactsFixture(t *testing.T) ([]Diagnostic, *FactStore, []string) {
	t.Helper()
	var allFiles []string
	imports := map[string]bool{}
	ifset := token.NewFileSet()
	perPkg := make([][]string, len(factsFixture))
	for i, fx := range factsFixture {
		entries, err := os.ReadDir(fx.dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			name := filepath.Join(fx.dir, e.Name())
			perPkg[i] = append(perPkg[i], name)
			allFiles = append(allFiles, name)
			f, err := parser.ParseFile(ifset, name, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatal(err)
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatal(err)
				}
				if !strings.HasPrefix(p, "example.com/") {
					imports[p] = true
				}
			}
		}
		sort.Strings(perPkg[i])
	}

	l := newLoader(token.NewFileSet())
	if len(imports) > 0 {
		var pats []string
		for p := range imports {
			pats = append(pats, p)
		}
		sort.Strings(pats)
		pkgs, err := goList(".", pats)
		if err != nil {
			t.Fatal(err)
		}
		l.addExports(pkgs)
	}

	facts := NewFactStore()
	var diags []Diagnostic
	for i, fx := range factsFixture {
		pkg, err := l.typecheck(fx.path, perPkg[i], nil, "")
		if err != nil {
			t.Fatalf("typecheck %s: %v", fx.dir, err)
		}
		ds, err := RunPackage(pkg, Analyzers(), facts)
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, ds...)
	}
	return diags, facts, allFiles
}

func TestFactsFixtureStandalone(t *testing.T) {
	diags, facts, files := loadFactsFixture(t)
	compareWants(t, parseWants(t, files), ActiveOnly(diags))

	// Pin the fact propagation the wants depend on.
	const mid = "example.com/facts/mid"
	var imp Impure
	if !facts.get(mid, "When", &imp) || !imp.TimeNow {
		t.Errorf("mid.When: want Impure{TimeNow} fact, got %+v (found=%v)", imp, facts.get(mid, "When", &imp))
	}
	if facts.get(mid, "Logged", &Impure{}) {
		t.Errorf("mid.Logged: leaf-side allow should have stopped the Impure fact")
	}
	var alloc Allocates
	if !facts.get(mid, "Note", &alloc) || !strings.Contains(alloc.Why, "leaf.Describe") {
		t.Errorf("mid.Note: want Allocates fact naming leaf.Describe, got %+v", alloc)
	}
	if !facts.get(mid, "Fresh", &ReturnsDerivedPRNG{}) {
		t.Errorf("mid.Fresh: want ReturnsDerivedPRNG fact, got none")
	}
	if facts.get(mid, "Shared", &ReturnsDerivedPRNG{}) {
		t.Errorf("mid.Shared: shared-global accessor must not get ReturnsDerivedPRNG")
	}
}

// TestFactStoreRoundTrip pins gob serialization for every fact type and
// the byte-determinism of Encode.
func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.put("example.com/a", "F", &Allocates{Why: "append at f.go:10"})
	s.put("example.com/a", "G", &Impure{TimeNow: true, Getenv: true, Why: "time.Now at g.go:3"})
	s.put("example.com/b", "T.M", &ReturnsDerivedPRNG{})
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("Encode is not deterministic")
	}

	r := NewFactStore()
	if err := r.Decode(data); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("round-trip lost facts: got %d, want 3", r.Len())
	}
	var alloc Allocates
	if !r.get("example.com/a", "F", &alloc) || alloc.Why != "append at f.go:10" {
		t.Errorf("Allocates round-trip: got %+v", alloc)
	}
	var imp Impure
	if !r.get("example.com/a", "G", &imp) || !imp.TimeNow || !imp.Getenv || imp.GlobalRand || imp.Why != "time.Now at g.go:3" {
		t.Errorf("Impure round-trip: got %+v", imp)
	}
	if !r.get("example.com/b", "T.M", &ReturnsDerivedPRNG{}) {
		t.Errorf("ReturnsDerivedPRNG round-trip: fact missing")
	}

	// The pre-fact stub wrote zero-byte files; they must stay readable.
	if err := NewFactStore().Decode(nil); err != nil {
		t.Errorf("Decode(nil) = %v, want nil", err)
	}
}

// diagLine normalizes one driver output line to "base.go:line: message",
// or "" for non-diagnostic lines (package headers, summaries).
var diagLineRe = regexp.MustCompile(`([^/\s]+\.go):(\d+):\d+: (.+)$`)

func normalizeDiagLines(out string) []string {
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		if m := diagLineRe.FindStringSubmatch(line); m != nil {
			lines = append(lines, m[1]+":"+m[2]+": "+m[3])
		}
	}
	sort.Strings(lines)
	return lines
}

// TestFactsFixtureVettoolParity copies the fixture into a temp module,
// builds rhlint, and runs it both standalone and as `go vet -vettool`.
// The diagnostic streams must be identical — which also pins that vetx
// fact files round-trip through the go command: the sim findings exist
// only if the leaf and mid facts survived the per-unit handoff.
func TestFactsFixtureVettoolParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs go vet")
	}
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module example.com/facts\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	for _, fx := range factsFixture {
		name := filepath.Base(fx.dir)
		if err := os.MkdirAll(filepath.Join(tmp, name), 0o777); err != nil {
			t.Fatal(err)
		}
		src, err := os.ReadFile(filepath.Join(fx.dir, name+".go"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tmp, name, name+".go"), src, 0o666); err != nil {
			t.Fatal(err)
		}
	}

	bin := filepath.Join(tmp, "rhlint")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/rhlint")
	build.Dir = filepath.Join("..", "..")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building rhlint: %v\n%s", err, out)
	}

	runIn := func(name string, args ...string) string {
		cmd := exec.Command(name, args...)
		cmd.Dir = tmp
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		if _, ok := err.(*exec.ExitError); err != nil && !ok {
			t.Fatalf("%s %v: %v\n%s", name, args, err, buf.String())
		}
		if err == nil {
			t.Fatalf("%s %v: exit 0, want findings\n%s", name, args, buf.String())
		}
		return buf.String()
	}

	standalone := normalizeDiagLines(runIn(bin, "./..."))
	vettool := normalizeDiagLines(runIn("go", "vet", "-vettool="+bin, "./..."))

	if len(standalone) == 0 {
		t.Fatalf("standalone run produced no diagnostics")
	}
	if fmt.Sprint(standalone) != fmt.Sprint(vettool) {
		t.Errorf("driver outputs differ:\nstandalone:\n  %s\nvettool:\n  %s",
			strings.Join(standalone, "\n  "), strings.Join(vettool, "\n  "))
	}
	for _, want := range []string{"mid.When reads wall-clock time", "mid.Note allocates in hotpath Hot", "passed across goroutine boundary"} {
		found := false
		for _, line := range standalone {
			if strings.Contains(line, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q in:\n  %s", want, strings.Join(standalone, "\n  "))
		}
	}
}
