package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// WallClock forbids ambient-environment reads in simulation-visible
// packages: wall-clock time, the process-global math/rand state, and
// environment variables. All three smuggle per-run state into what must
// be a pure function of (config, seed).
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: `forbids time.Now, global math/rand, and os.Getenv in sim packages

Simulation-visible packages must be pure functions of configuration and
seed. time.Now/Since/Until, the package-level math/rand functions
(rand.Intn, rand.Float64, ...), and os.Getenv/LookupEnv/Environ all read
ambient process state. Seeded generators (rand.New(rand.NewSource(s)))
and the documented RH_ENGINE engine-selection variable are allowed.`,
	Run: runWallClock,
}

// seededRandConstructors are the math/rand functions that construct
// explicit generators rather than touching the global one.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// allowedEnvVars are the documented configuration entrypoints read once
// at startup (sync.OnceValue), never per-task.
var allowedEnvVars = map[string]bool{"RH_ENGINE": true}

func runWallClock(pass *Pass) error {
	if !simVisiblePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeFunc(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			pkg, name := obj.Pkg().Path(), obj.Name()
			switch pkg {
			case "time":
				switch name {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(), "time.%s in simulation-visible package %q: wall-clock time must not influence simulated state (thread cycles or a seeded source instead)", name, pass.Pkg.Path())
				}
			case "os":
				switch name {
				case "Getenv", "LookupEnv", "Environ":
					if name != "Environ" && isAllowedEnvRead(pass.TypesInfo, call) {
						return true
					}
					pass.Reportf(call.Pos(), "os.%s in simulation-visible package %q: environment reads make runs machine-dependent (plumb configuration explicitly; RH_ENGINE is the one allowed entrypoint)", name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				// Only the package-level convenience functions use the
				// global generator; methods on *Rand et al. have receivers.
				if fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				if seededRandConstructors[name] {
					return true
				}
				pass.Reportf(call.Pos(), "global %s.%s in simulation-visible package %q: the process-global generator is shared, unseeded state (use a per-task seeded generator)", obj.Pkg().Name(), name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// isAllowedEnvRead reports whether the env read names an allowlisted
// variable via a string constant.
func isAllowedEnvRead(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return allowedEnvVars[constant.StringVal(tv.Value)]
}
