package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// WallClock forbids ambient-environment reads in simulation-visible
// packages: wall-clock time, the process-global math/rand state, and
// environment variables. All three smuggle per-run state into what must
// be a pure function of (config, seed).
//
// The check is interprocedural: every module function that reaches an
// ambient read — directly or through any chain of callees, across
// package boundaries — carries an Impure fact, and a simulation-visible
// package calling an impure helper that lives in a *non*-sim package is
// flagged at the boundary call site, with the diagnostic naming the
// chain down to the leaf read. Direct reads inside sim packages are
// flagged at the read itself, as before; an //rhlint:allow
// wallclock(reason) on the leaf stops both the diagnostic and the fact,
// so one reasoned allow clears every caller.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: `forbids time.Now, global math/rand, and os.Getenv in sim packages

Simulation-visible packages must be pure functions of configuration and
seed. time.Now/Since/Until, the package-level math/rand functions
(rand.Intn, rand.Float64, ...), and os.Getenv/LookupEnv/Environ all read
ambient process state — and so does any function that reaches one of
them through helpers, which the Impure fact tracks across packages.
Seeded generators (rand.New(rand.NewSource(s))) and the documented
RH_ENGINE engine-selection variable are allowed.`,
	Run:       runWallClock,
	FactTypes: []Fact{(*Impure)(nil)},
}

// seededRandConstructors are the math/rand functions that construct
// explicit generators rather than touching the global one.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// allowedEnvVars are the documented configuration entrypoints read once
// at startup (sync.OnceValue), never per-task.
var allowedEnvVars = map[string]bool{"RH_ENGINE": true}

func runWallClock(pass *Pass) error {
	computeImpureFacts(pass)
	if !simVisiblePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if kind, detail := directImpureCall(pass.TypesInfo, call); kind != nil {
				reportDirectImpure(pass, call, kind, detail)
				return true
			}
			// The interprocedural boundary: a call into a non-sim
			// package whose target carries an Impure fact. Leaves
			// inside sim-visible packages are flagged at the read (or
			// at their own boundary call), so only foreign, unflagged
			// impurity is surfaced here.
			callee := calleeAt(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() == pass.Pkg.Path() || simVisiblePkg(callee.Pkg().Path()) {
				return true
			}
			var fact Impure
			if pass.ImportObjectFact(callee, &fact) {
				pass.Reportf(call.Pos(), "call to %s reads %s in simulation-visible package %q: %s (plumb cycles, configuration, or a seeded source through explicitly)",
					factName(callee), fact.kinds(), pass.Pkg.Path(), fact.Why)
			}
			return true
		})
	}
	return nil
}

// computeImpureFacts attaches an Impure fact to every package-level
// function that reaches an ambient read, merging the impurity kinds of
// every unsuppressed site and callee fact. Runs for every module
// package, sim-visible or not — non-sim helpers are exactly the blind
// spot the facts close.
func computeImpureFacts(pass *Pass) {
	funcs := packageFuncs(pass)
	propagate(funcs, func(fn funcInfo) bool {
		merged := Impure{}
		found := false
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pass.SuppressedAt(call.Pos()) {
				return true
			}
			if kind, detail := directImpureCall(pass.TypesInfo, call); kind != nil {
				if !found {
					merged.Why = detail + " at " + shortPos(pass.Fset, call.Pos())
				}
				mergeImpure(&merged, kind)
				found = true
				return true
			}
			callee := calleeAt(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			var fact Impure
			if pass.ImportObjectFact(callee, &fact) {
				if !found {
					merged.Why = capWhy("calls " + factName(callee) + " at " + shortPos(pass.Fset, call.Pos()) + ": " + fact.Why)
				}
				mergeImpure(&merged, &fact)
				found = true
			}
			return true
		})
		if !found {
			return false
		}
		var have Impure
		if pass.ImportObjectFact(fn.obj, &have) &&
			have.TimeNow == merged.TimeNow && have.GlobalRand == merged.GlobalRand && have.Getenv == merged.Getenv {
			return false // fixpoint for this function
		}
		merged.Why = capWhy(merged.Why)
		if have.Why != "" {
			merged.Why = have.Why // keep the first-found chain stable
		}
		pass.ExportObjectFact(fn.obj, &merged)
		return true
	})
}

func mergeImpure(dst, src *Impure) {
	dst.TimeNow = dst.TimeNow || src.TimeNow
	dst.GlobalRand = dst.GlobalRand || src.GlobalRand
	dst.Getenv = dst.Getenv || src.Getenv
}

// directImpureCall classifies a call that itself performs an ambient
// read, returning the impurity kind and a display name ("time.Now"),
// or (nil, ""). Allowlisted reads (RH_ENGINE, seeded constructors,
// methods on explicit generators) return nil.
func directImpureCall(info *types.Info, call *ast.CallExpr) (*Impure, string) {
	obj := calleeFunc(info, call)
	if obj == nil || obj.Pkg() == nil {
		return nil, ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, ""
	}
	pkg, name := obj.Pkg().Path(), obj.Name()
	switch pkg {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return &Impure{TimeNow: true}, "time." + name
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			if name != "Environ" && isAllowedEnvRead(info, call) {
				return nil, ""
			}
			return &Impure{Getenv: true}, "os." + name
		}
	case "math/rand", "math/rand/v2":
		// Only the package-level convenience functions use the
		// global generator; methods on *Rand et al. have receivers.
		if fn.Type().(*types.Signature).Recv() != nil {
			return nil, ""
		}
		if seededRandConstructors[name] {
			return nil, ""
		}
		return &Impure{GlobalRand: true}, obj.Pkg().Name() + "." + name
	}
	return nil, ""
}

// reportDirectImpure emits the classic single-site diagnostics for an
// ambient read inside a simulation-visible package.
func reportDirectImpure(pass *Pass, call *ast.CallExpr, kind *Impure, detail string) {
	switch {
	case kind.TimeNow:
		pass.Reportf(call.Pos(), "%s in simulation-visible package %q: wall-clock time must not influence simulated state (thread cycles or a seeded source instead)", detail, pass.Pkg.Path())
	case kind.Getenv:
		pass.Reportf(call.Pos(), "%s in simulation-visible package %q: environment reads make runs machine-dependent (plumb configuration explicitly; RH_ENGINE is the one allowed entrypoint)", detail, pass.Pkg.Path())
	case kind.GlobalRand:
		pass.Reportf(call.Pos(), "global %s in simulation-visible package %q: the process-global generator is shared, unseeded state (use a per-task seeded generator)", detail, pass.Pkg.Path())
	}
}

// isAllowedEnvRead reports whether the env read names an allowlisted
// variable via a string constant.
func isAllowedEnvRead(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return allowedEnvVars[constant.StringVal(tv.Value)]
}
