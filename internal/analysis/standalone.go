package analysis

// The standalone driver: `rhlint [-json] [packages]` loads the patterns
// (default ./...), walks the build graph dependencies-first so
// cross-package facts are available, runs the suite, and prints
// findings. It is the diagnostic-equivalent of the `go vet -vettool`
// invocation (unit.go) for non-test files; CI may use either.

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonDiagnostic is the -json wire form of one finding. Suppressed
// carries the //rhlint:allow reason when a directive covers the
// finding; such findings do not affect the exit code but are exposed
// so tooling can audit the suppression inventory.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed string `json:"suppressed,omitempty"`
}

// Standalone runs the suite over the patterns and returns the process
// exit code: 0 clean, 1 findings, 2 operational error. With -json the
// full diagnostic set (suppressed included) is printed as a JSON array
// on stdout and a one-line summary on stderr.
func Standalone(dir string, args []string, stdout, stderr io.Writer) int {
	jsonOut := false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "help", "-h", "--help", "-help":
			printHelp(stdout)
			return 0
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "rhlint: %v\n", err)
		return 2
	}
	facts := NewFactStore()
	var all []Diagnostic
	analyzed := 0
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, Analyzers(), facts)
		if err != nil {
			fmt.Fprintf(stderr, "rhlint: %v\n", err)
			return 2
		}
		if pkg.FactsOnly {
			continue // dependency walked for facts alone
		}
		analyzed++
		all = append(all, diags...)
	}
	active := ActiveOnly(all)
	if jsonOut {
		out := make([]jsonDiagnostic, 0, len(all))
		for _, d := range all {
			out = append(out, jsonDiagnostic{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Column:     d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "rhlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "rhlint: %d finding(s), %d suppressed, %d package(s), %d fact(s)\n",
			len(active), len(all)-len(active), analyzed, facts.Len())
	} else {
		for _, d := range active {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(active) > 0 {
		return 1
	}
	return 0
}

func printHelp(w io.Writer) {
	fmt.Fprintf(w, `rhlint statically enforces the repository's determinism and hot-path
allocation discipline. See docs/LINT.md.

Usage:
  rhlint [-json] [packages]         standalone (default ./...)
  go vet -vettool=$(which rhlint) ./...   as a vet tool (includes test
                                    packages; _test.go files are exempt)

-json prints machine-readable diagnostics (file/line/column/analyzer/
message, plus suppressed findings with their allow reason) and a
summary line on stderr.

Both drivers are interprocedural: per-function facts (Allocates,
Impure, ReturnsDerivedPRNG) are computed for every module package and
flow through the build graph, so a hotpath function calling an
un-annotated helper that allocates — or a sim package reaching
time.Now through two layers of calls — is flagged at the boundary with
the offending path named.

Suppress a finding with an annotation carrying a reason, on the line or
the line above:
  //rhlint:allow mapiter(keys sorted by the caller)
An allow on a leaf allocation or ambient read also stops its fact, so
one reasoned allow clears the callers above it.
Opt a function into hotalloc with //rhlint:hotpath in its doc comment.

Analyzers:
`)
	for _, a := range Analyzers() {
		fmt.Fprintf(w, "\n%s:\n%s\n", a.Name, a.Doc)
	}
}
