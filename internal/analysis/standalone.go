package analysis

// The standalone driver: `rhlint [packages]` loads the patterns
// (default ./...), runs the suite, and prints findings. It is the
// byte-equivalent of the `go vet -vettool` invocation (unit.go) for
// non-test files; CI may use either.

import (
	"fmt"
	"io"
)

// Standalone runs the suite over the patterns and returns the process
// exit code: 0 clean, 1 findings, 2 operational error.
func Standalone(dir string, args []string, stdout, stderr io.Writer) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if len(patterns) == 1 && (patterns[0] == "help" || patterns[0] == "-h" || patterns[0] == "--help") {
		printHelp(stdout)
		return 0
	}
	pkgs, err := Load(dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "rhlint: %v\n", err)
		return 2
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, Analyzers())
		if err != nil {
			fmt.Fprintf(stderr, "rhlint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
			found++
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}

func printHelp(w io.Writer) {
	fmt.Fprintf(w, `rhlint statically enforces the repository's determinism and hot-path
allocation discipline. See docs/LINT.md.

Usage:
  rhlint [packages]                 standalone (default ./...)
  go vet -vettool=$(which rhlint) ./...   as a vet tool (includes test
                                    packages; _test.go files are exempt)

Suppress a finding with an annotation carrying a reason, on the line or
the line above:
  //rhlint:allow mapiter(keys sorted by the caller)
Opt a function into hotalloc with //rhlint:hotpath in its doc comment.

Analyzers:
`)
	for _, a := range Analyzers() {
		fmt.Fprintf(w, "\n%s:\n%s\n", a.Name, a.Doc)
	}
}
