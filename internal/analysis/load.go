package analysis

// Package loading for the standalone driver and the analysistest
// harness. The real go/analysis stack rides on go/packages; this
// reimplementation shells out to `go list -export` for the build graph
// and export data (compiled type information), then type-checks only
// the packages under analysis from source. Everything below is standard
// library: go/importer's gc importer reads the export files the go
// command already produced, so no network and no module downloads are
// involved.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
)

// listPkg is the subset of `go list -json` the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// goList runs `go list -deps -export -json` on the patterns in dir and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,ImportMap,Export,DepOnly,Standard,Module,Error",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loader type-checks packages against the export data of their
// dependencies.
type loader struct {
	fset    *token.FileSet
	exports map[string]string // package path -> export data file
	gc      types.Importer
}

func newLoader(fset *token.FileSet) *loader {
	l := &loader{fset: fset, exports: map[string]string{}}
	l.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

func (l *loader) addExports(pkgs []*listPkg) {
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// mapImporter applies one package's vendor/import map before delegating
// to the shared gc importer.
type mapImporter struct {
	m  map[string]string
	gc types.Importer
}

func (mi mapImporter) Import(path string) (*types.Package, error) {
	if real, ok := mi.m[path]; ok {
		path = real
	}
	return mi.gc.Import(path)
}

// typecheck parses and checks one package from source. files are
// absolute paths; goVersion may be empty.
func (l *loader) typecheck(path string, files []string, importMap map[string]string, goVersion string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := newInfo()
	conf := &types.Config{
		Importer:  mapImporter{m: importMap, gc: l.gc},
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: l.fset, Files: asts, Types: tpkg, Info: info}, nil
}

// Load lists the patterns in dir, type-checks every matched (non-dep)
// package, and returns them sorted by import path.
func Load(dir string, patterns []string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := newLoader(fset)
	l.addExports(pkgs)

	var targets []*listPkg
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var out []*Package
	for _, p := range targets {
		var files []string
		for _, lists := range [][]string{p.GoFiles, p.CgoFiles} {
			for _, f := range lists {
				files = append(files, join(p.Dir, f))
			}
		}
		if len(files) == 0 {
			continue
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + strings.TrimPrefix(p.Module.GoVersion, "go")
		}
		pkg, err := l.typecheck(p.ImportPath, files, p.ImportMap, goVersion)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

func join(dir, file string) string {
	if strings.HasPrefix(file, "/") {
		return file
	}
	return dir + string(os.PathSeparator) + file
}
