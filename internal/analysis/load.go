package analysis

// Package loading for the standalone driver and the analysistest
// harness. The real go/analysis stack rides on go/packages; this
// reimplementation shells out to `go list -export` for the build graph
// and export data (compiled type information), then type-checks only
// the packages under analysis from source. Everything below is standard
// library: go/importer's gc importer reads the export files the go
// command already produced, so no network and no module downloads are
// involved.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
)

// listPkg is the subset of `go list -json` the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// goList runs `go list -deps -export -json` on the patterns in dir and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Imports,ImportMap,Export,DepOnly,Standard,Module,Error",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loader type-checks packages against the export data of their
// dependencies, or against packages it already checked from source —
// which is how the multi-package fact fixtures (fake import paths, no
// export data) resolve their intra-fixture imports.
type loader struct {
	fset    *token.FileSet
	exports map[string]string         // package path -> export data file
	typed   map[string]*types.Package // package path -> source-checked package
	gc      types.Importer
}

func newLoader(fset *token.FileSet) *loader {
	l := &loader{fset: fset, exports: map[string]string{}, typed: map[string]*types.Package{}}
	l.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

func (l *loader) addExports(pkgs []*listPkg) {
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// mapImporter applies one package's vendor/import map, prefers
// source-checked packages, then delegates to the gc importer.
type mapImporter struct {
	m     map[string]string
	typed map[string]*types.Package
	gc    types.Importer
}

func (mi mapImporter) Import(path string) (*types.Package, error) {
	if real, ok := mi.m[path]; ok {
		path = real
	}
	if pkg, ok := mi.typed[path]; ok {
		return pkg, nil
	}
	return mi.gc.Import(path)
}

// typecheck parses and checks one package from source. files are
// absolute paths; goVersion may be empty.
func (l *loader) typecheck(path string, files []string, importMap map[string]string, goVersion string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := newInfo()
	conf := &types.Config{
		Importer:  mapImporter{m: importMap, typed: l.typed, gc: l.gc},
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if err != nil {
		return nil, err
	}
	l.typed[path] = tpkg
	return &Package{Path: path, Fset: l.fset, Files: asts, Types: tpkg, Info: info}, nil
}

// Load lists the patterns in dir and type-checks every matched package
// — plus, so cross-package facts exist no matter which subset of the
// module the patterns name, every non-standard dependency. Packages
// come back in dependency (topological) order, dependencies first;
// dependency-only packages are marked FactsOnly, and drivers run the
// analyzers over them for their facts while discarding their
// diagnostics. The standard library is never analyzed: both drivers
// must see the same fact universe, and the vet driver cannot cheaply
// walk std sources, so std knowledge lives in curated analyzer tables.
func Load(dir string, patterns []string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := newLoader(fset)
	l.addExports(pkgs)

	selected := map[string]*listPkg{}
	for _, p := range pkgs {
		if p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		selected[p.ImportPath] = p
	}

	// Topological order (dependencies first) over the selected set, with
	// deterministic tie-breaking by import path.
	var order []*listPkg
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listPkg)
	visit = func(p *listPkg) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, imp := range deps {
			if real, ok := p.ImportMap[imp]; ok {
				imp = real
			}
			if dep, ok := selected[imp]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
	}
	roots := make([]string, 0, len(selected))
	//rhlint:allow mapiter(roots are sorted before use)
	for path := range selected {
		roots = append(roots, path)
	}
	sort.Strings(roots)
	for _, path := range roots {
		visit(selected[path])
	}

	var out []*Package
	for _, p := range order {
		var files []string
		for _, lists := range [][]string{p.GoFiles, p.CgoFiles} {
			for _, f := range lists {
				files = append(files, join(p.Dir, f))
			}
		}
		if len(files) == 0 {
			continue
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + strings.TrimPrefix(p.Module.GoVersion, "go")
		}
		pkg, err := l.typecheck(p.ImportPath, files, p.ImportMap, goVersion)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		pkg.FactsOnly = p.DepOnly
		out = append(out, pkg)
	}
	return out, nil
}

func join(dir, file string) string {
	if strings.HasPrefix(file, "/") {
		return file
	}
	return dir + string(os.PathSeparator) + file
}
