// Package hot exercises the hotalloc analyzer. The package path is NOT
// simulation-visible: hotalloc is gated by the //rhlint:hotpath
// annotation alone.
package hot

type node struct{ v int }

// sink is a non-hot helper with an interface parameter.
func sink(vals ...any) int { return len(vals) }

//rhlint:hotpath
func appends(xs []int, n int) []int {
	out := make([]int, 0, n) // want `make allocates in hotpath appends`
	for _, x := range xs {
		out = append(out, x) // want `append in hotpath appends`
	}
	return out
}

// cold is identical but unannotated: nothing is reported.
func cold(xs []int, n int) []int {
	out := make([]int, 0, n)
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

//rhlint:hotpath
func literals() (map[string]int, []int, *node) {
	m := map[string]int{} // want `map literal allocates in hotpath literals`
	s := []int{1, 2}      // want `slice literal allocates in hotpath literals`
	p := &node{v: 1}      // want `&composite literal allocates in hotpath literals`
	return m, s, p
}

//rhlint:hotpath
func newAlloc() *node {
	return new(node) // want `new allocates in hotpath newAlloc`
}

//rhlint:hotpath
func capturing(k int) func() int {
	return func() int { return k } // want `closure captures k in hotpath capturing`
}

// globalFn is package scope: referring to it from a literal is not a
// capture, so the closure below is allocation-free (a static funcval).
var globalCounter int

//rhlint:hotpath
func nonCapturing() func() {
	return func() { globalCounter++ }
}

//rhlint:hotpath
func boxesInt(v int64) int {
	return sink(v) // want `interface conversion boxes int64 in hotpath boxesInt` `variadic interface parameter in hotpath boxesInt`
}

//rhlint:hotpath
func boxesStruct(n node) int {
	return sink(n) // want `interface conversion boxes .*node in hotpath boxesStruct` `variadic interface parameter in hotpath boxesStruct`
}

//rhlint:hotpath
func boxesExplicit(v int) any {
	return any(v) // want `interface conversion boxes int in hotpath boxesExplicit`
}

// pointerShaped: a pointer fits in the interface word — no box — but
// the variadic ...any call still allocates its backing slice.
//
//rhlint:hotpath
func pointerShaped(p *node) int {
	return sink(p) // want `variadic interface parameter in hotpath pointerShaped`
}

//rhlint:hotpath
func spawns(f func()) {
	go f() // want `go statement in hotpath spawns`
}

// allowedAmortized: annotated allocation sites are suppressed.
//
//rhlint:hotpath
func allowedAmortized(buf []int, v int) []int {
	//rhlint:allow hotalloc(amortized: callers reuse capacity across calls)
	return append(buf, v)
}
