// Package util is not simulation-visible (its import path ends in
// "util"), so mapiter reports nothing here.
package util

func unflagged(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
