// _test.go files are exempt from the determinism analyzers: tests do
// not produce published results, and the runtime suites pin their
// behavior. No diagnostics expected anywhere in this file.
package sim

func testOnlyIteration(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
