// Package sim exercises the mapiter analyzer: its import path ends in
// "sim", so every range over a map is simulation-visible.
package sim

import "sort"

// flagged: the sum is order-independent here, but the analyzer cannot
// prove that in general and demands a sort or an annotation.
func flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map m`
		total += v
	}
	return total
}

// flaggedField: field selections are flagged like locals.
type holder struct{ cells map[int]bool }

func (h *holder) flaggedField() int {
	n := 0
	for range h.cells { // want `range over map h\.cells`
		n++
	}
	return n
}

// allowedAbove: an annotation on the line above suppresses the finding.
func allowedAbove(m map[string]int) int {
	total := 0
	//rhlint:allow mapiter(commutative integer sum)
	for _, v := range m {
		total += v
	}
	return total
}

// allowedTrailing: a trailing annotation on the same line works too.
func allowedTrailing(m map[string]int) int {
	total := 0
	for _, v := range m { //rhlint:allow mapiter(commutative integer sum)
		total += v
	}
	return total
}

// sortedKeys: the sort-then-iterate pattern is exempt without annotation.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSlice: sort.Slice over collected values is recognized as well.
func sortSlice(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// clearAll: the delete-clear idiom is exempt.
func clearAll(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// escapes: writing through a pointer inside the loop publishes state
// before any later sort, so the exemption does not apply.
func escapes(m map[string]int, out *[]string) {
	for k := range m { // want `range over map m`
		*out = append(*out, k)
	}
	sort.Strings(*out)
}

// unsorted: collecting into a local without ever sorting it is flagged.
func unsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m`
		keys = append(keys, k)
	}
	return keys
}
