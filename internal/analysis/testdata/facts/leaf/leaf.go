// Package leaf is the bottom of the facts fixture: it performs the
// ambient reads and allocations. Its import path is NOT
// simulation-visible, so nothing is reported here — the facts computed
// about these functions are the whole point.
package leaf

import (
	"fmt"
	"math/rand"
	"time"
)

// Stamp reads the wall clock: carries Impure{TimeNow}.
func Stamp() int64 { return time.Now().UnixNano() }

// Describe allocates through fmt.Sprintf: carries Allocates.
func Describe(x int) string { return fmt.Sprintf("leaf %d", x) }

// NewRNG is a seeded constructor wrapper: carries ReturnsDerivedPRNG.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

var shared = rand.New(rand.NewSource(1))

// Global hands out the package-shared generator: PRNG-typed result but
// NO ReturnsDerivedPRNG fact, so callers may not treat it as fresh.
func Global() *rand.Rand { return shared }

// AllowedStamp reads the clock under a reasoned allow. The allow stops
// the Impure fact here, so every caller above stays clean.
func AllowedStamp() int64 {
	//rhlint:allow wallclock(coarse log timestamp, never simulated state)
	return time.Now().UnixNano()
}
