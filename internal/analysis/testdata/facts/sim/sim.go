// Package sim is the simulation-visible top of the facts fixture:
// every call here looks innocent in isolation and is only flaggable
// through the facts imported from packages mid and leaf.
package sim

import (
	"math/rand"

	"example.com/facts/mid"
)

// Tick is two hops from time.Now through clean-looking wrappers.
func Tick() int64 {
	return mid.When() // want `call to mid\.When reads wall-clock time in simulation-visible package "example\.com/facts/sim": calls leaf\.Stamp`
}

// LogTime calls the chain whose leaf read carries a reasoned allow:
// the fact stopped at the leaf, so nothing is reported here.
func LogTime() int64 {
	return mid.Logged()
}

//rhlint:hotpath
func Hot(x int) string {
	return mid.Note(x) // want `call to mid\.Note allocates in hotpath Hot: calls leaf\.Describe at mid\.go:\d+: calls fmt\.Sprintf`
}

// Workers forks per-goroutine state. mid.Fresh carries
// ReturnsDerivedPRNG, so its result counts as a fresh generator;
// mid.Shared does not, so its result may not cross the boundary.
func Workers(seed int64) {
	go consume(mid.Fresh(seed))
	go consume(mid.Shared()) // want `PRNG mid\.Shared\(\) passed across goroutine boundary`
}

func consume(r *rand.Rand) { _ = r.Int63() }
