// Package mid is the clean-looking middle layer of the facts fixture:
// no ambient read and no allocation appears in this file, yet most of
// these wrappers inherit facts from package leaf. Its import path is
// NOT simulation-visible, so nothing is reported here either.
package mid

import (
	"math/rand"

	"example.com/facts/leaf"
)

// When inherits Impure{TimeNow} from leaf.Stamp.
func When() int64 { return leaf.Stamp() }

// Note inherits Allocates from leaf.Describe.
func Note(x int) string { return leaf.Describe(x) }

// Fresh inherits ReturnsDerivedPRNG from leaf.NewRNG.
func Fresh(seed int64) *rand.Rand { return leaf.NewRNG(seed) }

// Shared forwards the shared-global accessor: no fact, like its callee.
func Shared() *rand.Rand { return leaf.Global() }

// Logged calls the allowed leaf read: the leaf-side allow already
// stopped the Impure fact, so Logged carries none.
func Logged() int64 { return leaf.AllowedStamp() }
