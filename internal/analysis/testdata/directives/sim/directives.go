// Package sim exercises the directive grammar: malformed //rhlint:
// comments are driver diagnostics (analyzer "rhlint") and cannot be
// suppressed.
package sim

//rhlint:allow // want `malformed rhlint directive`

//rhlint:allow mapiter // want `malformed rhlint directive`

//rhlint:allow bogus(some reason) // want `unknown analyzer "bogus"`

//rhlint:allow mapiter( ) // want `empty reason`

// A well-formed hotpath directive is not a diagnostic.
//
//rhlint:hotpath
func fine() {}

// A well-formed allow with analyzer and reason is not a diagnostic, and
// suppresses its finding.
func allowed(m map[string]int) int {
	n := 0
	//rhlint:allow mapiter(commutative count)
	for range m {
		n++
	}
	return n
}

// An allow naming the wrong analyzer does not suppress the finding.
func wrongAnalyzer(m map[string]int) int {
	n := 0
	//rhlint:allow wallclock(mentions the wrong analyzer)
	for range m { // want `range over map m`
		n++
	}
	return n
}
