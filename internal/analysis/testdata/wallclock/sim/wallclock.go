// Package sim exercises the wallclock analyzer.
package sim

import (
	"math/rand"
	"os"
	"time"
)

func wallTime() int64 {
	t := time.Now() // want `time\.Now in simulation-visible package`
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in simulation-visible package`
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn in simulation-visible package`
}

func globalFloat() float64 {
	return rand.Float64() // want `global rand\.Float64 in simulation-visible package`
}

func env() string {
	return os.Getenv("HOME") // want `os\.Getenv in simulation-visible package`
}

func lookup() bool {
	_, ok := os.LookupEnv("SHELL") // want `os\.LookupEnv in simulation-visible package`
	return ok
}

// engineVar: the documented RH_ENGINE entrypoint is allowlisted.
func engineVar() string {
	return os.Getenv("RH_ENGINE")
}

// seeded: explicit generators are the sanctioned pattern.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// methodsNotGlobal: methods on an explicit generator are not the
// package-level convenience functions.
func methodsNotGlobal(r *rand.Rand) float64 {
	return r.Float64()
}

// allowed: annotated wall-clock use (e.g. progress logging that never
// reaches result bytes) is suppressed.
func allowed() time.Time {
	//rhlint:allow wallclock(progress timestamp, never reaches result bytes)
	return time.Now()
}
