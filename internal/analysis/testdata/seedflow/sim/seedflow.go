// Package sim exercises the seedflow analyzer, using both math/rand and
// the repository's stats.RNG.
package sim

import (
	"math/rand"

	"repro/internal/stats"
)

// badSource: seeding from an arbitrary value is flagged.
func badSource(x int64) *rand.Rand {
	return rand.New(rand.NewSource(x)) // want `NewSource seeded from x`
}

// badLiteral: a bare literal seed is flagged too.
func badLiteral() *stats.RNG {
	return stats.NewRNG(42) // want `NewRNG seeded from 42`
}

// goodSeedName: an argument mentioning a seed variable passes.
func goodSeedName(taskSeed int64) *rand.Rand {
	return rand.New(rand.NewSource(taskSeed))
}

// goodDerive: a derivation call with "seed" in its name passes.
func deriveSeed(base uint64, i int) uint64 { return base + uint64(i) }

func goodDerive(base uint64, i int) *stats.RNG {
	return stats.NewRNG(deriveSeed(base, i))
}

// goodFork: drawing the seed from an existing generator (the Fork
// pattern) passes.
func goodFork(r *stats.RNG) *stats.RNG {
	return stats.NewRNG(r.Uint64())
}

// allowedLiteral: an annotated fixed stream is suppressed.
func allowedLiteral() *stats.RNG {
	//rhlint:allow seedflow(fixed calibration stream, not part of results)
	return stats.NewRNG(7)
}

// capture: a goroutine capturing a PRNG from the enclosing scope is the
// scheduler-dependence bug.
func capture(r *stats.RNG, ch chan int) {
	go func() {
		ch <- int(r.Uint64()) // want `goroutine captures PRNG r`
	}()
}

// passed: handing the generator itself across the boundary is flagged.
func passed(r *stats.RNG, f func(*stats.RNG)) {
	go f(r) // want `PRNG r passed across goroutine boundary`
}

// forked: passing a fresh fork is the sanctioned pattern.
func forked(r *stats.RNG, f func(*stats.RNG)) {
	go f(r.Fork())
}

// method: running a method on a shared generator in the new goroutine is
// flagged at the go statement.
func method(r *stats.RNG, sink chan uint64) {
	go r.Uint64() // want `method on shared PRNG r`
	_ = sink
}

// local: a generator created inside the goroutine is private to it.
func local(taskSeed uint64, ch chan int) {
	go func() {
		r := stats.NewRNG(taskSeed)
		ch <- int(r.Uint64())
	}()
}
