package analysis

// The fact mechanism: typed, per-object facts that flow across package
// boundaries, mirroring the golang.org/x/tools/go/analysis design on
// the standard library alone. An analyzer that declares FactTypes may
// attach a fact to any package-level function (or method) it analyzes;
// when a *different* package is analyzed later, the analyzer can ask
// for the facts of the functions it calls. This is what turns the
// per-function syntactic checks into interprocedural ones: hotalloc
// learns that an un-annotated helper three packages away allocates,
// wallclock learns that a clean-looking wrapper eventually reaches
// time.Now, seedflow learns that a constructor wrapper really does
// return a derived PRNG.
//
// Facts are serialized with encoding/gob. In the `go vet -vettool`
// protocol each compilation unit reads the fact files (.vetx) of its
// dependencies and writes its own (unit.go); in the standalone driver
// the store simply persists in memory across the topologically ordered
// package walk (load.go). Both drivers therefore see the same facts
// and must produce identical diagnostics — pinned by the facts fixture
// tests.
//
// Objects are identified by a stable textual key rather than by
// go/types object identity, because the same function is a
// source-checked *types.Func in one run and an export-data import in
// the next. Facts only attach to package-level functions and methods,
// so the key is simply "FuncName" or "RecvTypeName.MethodName" — the
// subset of x/tools' objectpath this suite needs.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a typed message attached to a package-level function or
// method, produced in the defining package and consumed in dependents.
// Implementations must be pointers to gob-encodable structs and are
// registered via RegisterFactTypes at init time.
type Fact interface {
	AFact() // dummy method to mark fact types
}

// --- concrete fact types ----------------------------------------------------

// Allocates records that calling the function allocates on at least one
// path: either directly (append/make/new, composite literals, capturing
// closures, boxing) or by calling something that does. Why carries a
// human-readable call chain down to the concrete allocation site, e.g.
//
//	calls memctrl.grow: append at queue.go:120
//
// so the diagnostic at a hotpath call site names the offending path.
type Allocates struct {
	Why string
}

func (*Allocates) AFact() {}

func (f *Allocates) String() string { return fmt.Sprintf("allocates(%s)", f.Why) }

// Impure records that the function reads ambient process state — wall
// clock, the global math/rand generator, or the environment — directly
// or through any chain of callees. Why names the chain down to the
// leaf call.
type Impure struct {
	TimeNow    bool
	GlobalRand bool
	Getenv     bool
	Why        string
}

func (*Impure) AFact() {}

func (f *Impure) String() string { return fmt.Sprintf("impure(%s)", f.Why) }

// kinds renders the impurity set for diagnostics ("time.Now, os.Getenv").
func (f *Impure) kinds() string {
	var s []string
	if f.TimeNow {
		s = append(s, "wall-clock time")
	}
	if f.GlobalRand {
		s = append(s, "the global math/rand generator")
	}
	if f.Getenv {
		s = append(s, "the environment")
	}
	out := ""
	for i, k := range s {
		if i > 0 {
			out += ", "
		}
		out += k
	}
	return out
}

// ReturnsDerivedPRNG records that every PRNG the function returns is
// derived: constructed from a seed-traced value, forked from an
// existing generator, or obtained from another function carrying this
// fact. seedflow treats calls to such functions as fresh, derived
// generators — and, crucially, does NOT extend that trust to PRNG-
// returning functions without the fact (shared-global accessors).
type ReturnsDerivedPRNG struct{}

func (*ReturnsDerivedPRNG) AFact() {}

func (f *ReturnsDerivedPRNG) String() string { return "returnsDerivedPRNG" }

func init() {
	gob.Register(&Allocates{})
	gob.Register(&Impure{})
	gob.Register(&ReturnsDerivedPRNG{})
}

// --- object keys ------------------------------------------------------------

// objectKey returns the stable intra-package key for a package-level
// function or method, or "" for objects facts cannot attach to
// (locals, variables, imported-package aliases, interface methods of
// anonymous types).
func objectKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		// Package-level function — but only if it really is package
		// scope (not a local closure assigned to a name).
		if fn.Parent() != nil && fn.Parent() != fn.Pkg().Scope() {
			return ""
		}
		return fn.Name()
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "" // methods on anonymous/interface types
	}
	return named.Obj().Name() + "." + fn.Name()
}

// --- the store --------------------------------------------------------------

// factKey addresses one fact: (package, object, concrete fact type).
type factKey struct {
	pkg string
	obj string
	typ reflect.Type
}

// A FactStore holds every fact known to the current driver run: the
// facts of already-analyzed packages in standalone mode, or the decoded
// dependency .vetx files plus the current unit's new facts in vettool
// mode.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]Fact{}}
}

func (s *FactStore) put(pkg, obj string, f Fact) {
	s.m[factKey{pkg, obj, reflect.TypeOf(f)}] = f
}

// get copies the stored fact matching ptr's concrete type into ptr.
func (s *FactStore) get(pkg, obj string, ptr Fact) bool {
	f, ok := s.m[factKey{pkg, obj, reflect.TypeOf(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// factEntry is the serialized form of one fact.
type factEntry struct {
	Pkg    string // defining package import path
	Object string // objectKey within Pkg
	Fact   Fact   // concrete type registered with gob
}

// Encode serializes the whole store. Entries are sorted so the bytes
// are deterministic — fact files participate in the go command's build
// cache, and this repository does not ship nondeterministic bytes.
func (s *FactStore) Encode() ([]byte, error) {
	entries := make([]factEntry, 0, len(s.m))
	//rhlint:allow mapiter(entries are fully sorted below before encoding)
	for k, f := range s.m {
		entries = append(entries, factEntry{Pkg: k.pkg, Object: k.obj, Fact: f})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return reflect.TypeOf(a.Fact).String() < reflect.TypeOf(b.Fact).String()
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges serialized facts into the store. Empty input is a valid
// empty fact set (the pre-fact stub wrote zero bytes; tolerate it).
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var entries []factEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, e := range entries {
		if e.Fact == nil {
			continue
		}
		s.put(e.Pkg, e.Object, e.Fact)
	}
	return nil
}

// Len reports the number of stored facts (tests and -json summary).
func (s *FactStore) Len() int { return len(s.m) }

// --- Pass-facing API --------------------------------------------------------

// ExportObjectFact attaches fact to obj, which must be a package-level
// function or method of any package in the build (usually the one under
// analysis). No-op for objects facts cannot attach to.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	key := objectKey(obj)
	if key == "" {
		return
	}
	p.Facts.put(obj.Pkg().Path(), key, fact)
}

// ImportObjectFact copies the fact of obj's concrete type into ptr and
// reports whether one was found. Works for objects of the current
// package and of any dependency whose facts the driver loaded.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key := objectKey(obj)
	if key == "" {
		return false
	}
	return p.Facts.get(obj.Pkg().Path(), key, ptr)
}
