package analysis

// The `go vet -vettool` protocol, mirroring the contract of
// x/tools/go/analysis/unitchecker without importing it:
//
//	rhlint -V=full          print an executable fingerprint (build cache key)
//	rhlint -flags           print supported flags as JSON
//	rhlint [-name...] x.cfg analyze one compilation unit described by the
//	                        JSON config the go command wrote
//
// The config carries the file set of one package plus the export-data
// and fact-file locations of its dependencies. Facts are real here: a
// unit decodes the .vetx files of its direct dependencies
// (cfg.PackageVetx), runs the analyzers — fact computation included —
// and writes every fact it knows (its own and its dependencies',
// so transitivity survives the direct-deps-only handoff) to
// cfg.VetxOutput. VetxOnly invocations — the go command pre-computing
// facts for dependencies — do the same minus diagnostics.
//
// The standard library is the deliberate exception: std units get an
// empty fact file without analysis, because the standalone driver
// (load.go) never walks std sources and the two drivers must produce
// identical diagnostics. Standard-library knowledge lives in curated
// tables inside the analyzers instead.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// vetConfig is the JSON compilation-unit description `go vet` passes.
// Field names are fixed by the go command (see unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsUnitProtocol reports whether the arguments are a `go vet` driver
// invocation rather than standalone package patterns.
func IsUnitProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || a == "-flags" || a == "--flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// UnitMain implements the vet driver protocol on os.Args and exits.
func UnitMain(args []string) {
	log.SetFlags(0)
	log.SetPrefix("rhlint: ")

	enabled := map[string]bool{}
	var cfgFile string
	for _, arg := range args {
		switch {
		case arg == "-V=full":
			printVersion()
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			printUnitFlags()
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		case strings.HasPrefix(arg, "-"):
			name, val, has := strings.Cut(strings.TrimLeft(arg, "-"), "=")
			on := !has || val == "true" || val == "1"
			switch name {
			case "mapiter", "wallclock", "hotalloc", "seedflow":
				enabled[name] = on
			case "json", "c", "V", "source", "v", "all", "tags":
				// Accepted for vet compatibility; plain output only.
			default:
				log.Fatalf("unknown flag %s", arg)
			}
		default:
			log.Fatalf("unexpected argument %q (want a .cfg file from go vet)", arg)
		}
	}
	if cfgFile == "" {
		log.Fatalf("no .cfg file; invoke through go vet -vettool")
	}
	os.Exit(runUnit(cfgFile, enabled))
}

// printVersion emits the -V=full fingerprint the go command hashes into
// its build cache key: content-derived, so editing the analyzers
// invalidates cached vet results — fact files included.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("rhlint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

func printUnitFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range Analyzers() {
		flags = append(flags, jsonFlag{a.Name, true, "enable " + a.Name + " analysis"})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// writeVetx persists the fact store (nil for the empty std stub).
func writeVetx(path string, facts *FactStore) {
	if path == "" {
		return
	}
	var data []byte
	if facts != nil {
		var err error
		data, err = facts.Encode()
		if err != nil {
			log.Fatalf("writing facts: %v", err)
		}
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		log.Fatalf("writing facts: %v", err)
	}
}

// isStdUnit reports whether the unit describes a standard-library
// package. cfg.Standard only lists the unit's std *dependencies* (the
// go command never marks the unit itself), so the load-bearing signal
// is the unit's own sources living under GOROOT.
func isStdUnit(cfg *vetConfig) bool {
	if cfg.Standard[cfg.ImportPath] {
		return true
	}
	goroot := runtime.GOROOT()
	if goroot == "" || len(cfg.GoFiles) == 0 {
		return false
	}
	for _, f := range cfg.GoFiles {
		if !strings.HasPrefix(f, goroot+string(filepath.Separator)) {
			return false
		}
	}
	return true
}

func runUnit(cfgFile string, enabled map[string]bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgFile, err)
	}

	// Standard-library units are not analyzed (see the package comment):
	// empty fact file, immediate success.
	if isStdUnit(cfg) {
		writeVetx(cfg.VetxOutput, nil)
		return 0
	}

	// Import the facts of the direct dependencies. Transitive facts are
	// present because every unit re-exports everything it knows.
	facts := NewFactStore()
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	//rhlint:allow mapiter(paths are sorted before use)
	for _, file := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, file)
	}
	sort.Strings(vetxPaths)
	for _, file := range vetxPaths {
		fdata, err := os.ReadFile(file)
		if err != nil {
			if os.IsNotExist(err) {
				continue // tolerated: dependency had no facts to give
			}
			log.Fatalf("reading facts: %v", err)
		}
		if err := facts.Decode(fdata); err != nil {
			log.Fatalf("reading facts %s: %v", file, err)
		}
	}

	fset := token.NewFileSet()
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})

	// Parse and type-check the unit. For VetxOnly units a failure only
	// costs precision (no facts from this package), never correctness,
	// so degrade to an empty contribution rather than breaking the
	// build — cgo-processed dependencies are the common case.
	softFail := func(err error) int {
		if cfg.VetxOnly {
			writeVetx(cfg.VetxOutput, facts)
			return 0
		}
		if cfg.SucceedOnTypecheckFailure {
			return 0 // the compiler reports the error
		}
		log.Fatal(err)
		return 2
	}

	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return softFail(err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := &types.Config{
		Importer:  mapImporter{m: cfg.ImportMap, gc: compilerImporter},
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return softFail(err)
	}

	analyzers := Analyzers()
	if len(enabled) > 0 {
		// Mirror multichecker semantics: any -name=true restricts the
		// run to those; otherwise -name=false drops from the full set.
		anyTrue := false
		for _, on := range enabled {
			anyTrue = anyTrue || on
		}
		var keep []*Analyzer
		for _, a := range analyzers {
			on, set := enabled[a.Name]
			if anyTrue && set && on {
				keep = append(keep, a)
			}
			if !anyTrue && !(set && !on) {
				keep = append(keep, a)
			}
		}
		analyzers = keep
	}

	pkg := &Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := RunPackage(pkg, analyzers, facts)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx(cfg.VetxOutput, facts)
	if cfg.VetxOnly {
		return 0
	}
	active := ActiveOnly(diags)
	for _, d := range active {
		// Same rendering as the standalone driver — the fixture parity
		// test compares the two streams line for line.
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(active) > 0 {
		return 1
	}
	return 0
}
