package analysis

// The `go vet -vettool` protocol, mirroring the contract of
// x/tools/go/analysis/unitchecker without importing it:
//
//	rhlint -V=full          print an executable fingerprint (build cache key)
//	rhlint -flags           print supported flags as JSON
//	rhlint [-name...] x.cfg analyze one compilation unit described by the
//	                        JSON config the go command wrote
//
// The config carries the file set of one package plus the export-data
// and fact-file locations of its dependencies. rhlint's analyzers are
// fact-free, so dependency fact files are ignored and an empty fact
// file is written for dependents; VetxOnly invocations (the go command
// pre-computing facts for dependencies, including the standard library)
// return without parsing anything.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
)

// vetConfig is the JSON compilation-unit description `go vet` passes.
// Field names are fixed by the go command (see unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// IsUnitProtocol reports whether the arguments are a `go vet` driver
// invocation rather than standalone package patterns.
func IsUnitProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || a == "-flags" || a == "--flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// UnitMain implements the vet driver protocol on os.Args and exits.
func UnitMain(args []string) {
	log.SetFlags(0)
	log.SetPrefix("rhlint: ")

	enabled := map[string]bool{}
	var cfgFile string
	for _, arg := range args {
		switch {
		case arg == "-V=full":
			printVersion()
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			printUnitFlags()
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		case strings.HasPrefix(arg, "-"):
			name, val, has := strings.Cut(strings.TrimLeft(arg, "-"), "=")
			on := !has || val == "true" || val == "1"
			switch name {
			case "mapiter", "wallclock", "hotalloc", "seedflow":
				enabled[name] = on
			case "json", "c", "V", "source", "v", "all", "tags":
				// Accepted for vet compatibility; plain output only.
			default:
				log.Fatalf("unknown flag %s", arg)
			}
		default:
			log.Fatalf("unexpected argument %q (want a .cfg file from go vet)", arg)
		}
	}
	if cfgFile == "" {
		log.Fatalf("no .cfg file; invoke through go vet -vettool")
	}
	os.Exit(runUnit(cfgFile, enabled))
}

// printVersion emits the -V=full fingerprint the go command hashes into
// its build cache key: content-derived, so editing the analyzers
// invalidates cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("rhlint version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

func printUnitFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	for _, a := range Analyzers() {
		flags = append(flags, jsonFlag{a.Name, true, "enable " + a.Name + " analysis"})
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

func runUnit(cfgFile string, enabled map[string]bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgFile, err)
	}

	// Dependents expect a fact file to exist; rhlint has no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatalf("writing facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})

	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler reports the syntax error
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := &types.Config{
		Importer:  mapImporter{m: cfg.ImportMap, gc: compilerImporter},
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}

	analyzers := Analyzers()
	if len(enabled) > 0 {
		// Mirror multichecker semantics: any -name=true restricts the
		// run to those; otherwise -name=false drops from the full set.
		anyTrue := false
		for _, on := range enabled {
			anyTrue = anyTrue || on
		}
		var keep []*Analyzer
		for _, a := range analyzers {
			on, set := enabled[a.Name]
			if anyTrue && set && on {
				keep = append(keep, a)
			}
			if !anyTrue && !(set && !on) {
				keep = append(keep, a)
			}
		}
		analyzers = keep
	}

	pkg := &Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := RunPackage(pkg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
