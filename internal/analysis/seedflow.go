package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow enforces the per-task seed-derivation discipline: PRNG state
// is constructed from a derived task seed and never crosses a goroutine
// boundary. Sharing one generator across goroutines makes draw order
// depend on the scheduler — the exact bug class the per-task
// DeriveSeed/Fork design exists to prevent, and the one that breaks
// shard-merge bit-identity across worker processes.
//
// Two checks:
//
//   - construction: rand.NewSource / rand.New / stats.NewRNG arguments
//     must trace to a seed (an identifier mentioning "seed", a
//     DeriveSeed call, or a draw from an existing generator as in
//     Fork); constructing from a literal unrelated expression is
//     flagged;
//   - sharing: a go statement must not receive a PRNG-typed argument,
//     run a method on a PRNG receiver, or capture a PRNG-typed variable
//     declared outside its function literal.
//
// Constructor wrappers are resolved interprocedurally: a function whose
// every returned generator is provably derived (a seeded constructor, a
// Fork, or a call to another such function) carries a
// ReturnsDerivedPRNG fact, and calls to it count as fresh, derived
// generators anywhere in the build. A PRNG-returning function *without*
// the fact — a shared-global accessor, say — no longer gets the benefit
// of the doubt it used to: passing its result into a goroutine is
// flagged.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: `flags PRNGs built from non-seed values or shared across goroutines

PRNG constructors (rand.NewSource, rand.New, rand.NewPCG, stats.NewRNG)
must be fed a derived task seed: an expression mentioning a seed
variable, engine.DeriveSeed(...), or a draw from an existing generator
(the Fork pattern). A go statement must not carry PRNG state across the
goroutine boundary — fork a child generator per goroutine instead.
Functions that return derived generators carry a ReturnsDerivedPRNG
fact (computed across packages), so wrapper constructors are recognized
and shared-global accessors are not.`,
	Run:       runSeedFlow,
	FactTypes: []Fact{(*ReturnsDerivedPRNG)(nil)},
}

func runSeedFlow(pass *Pass) error {
	computeDerivedPRNGFacts(pass)
	if !simVisiblePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSeedConstruction(pass, n)
			case *ast.GoStmt:
				checkGoroutineSharing(pass, n)
			}
			return true
		})
	}
	return nil
}

// computeDerivedPRNGFacts attaches ReturnsDerivedPRNG to every function
// whose returned PRNGs are all provably derived. The proof is
// shape-based on return expressions: a function that stashes its
// generator in a local or a field first simply gets no fact (callers
// then treat its results as shared — conservative in the flagging
// direction).
func computeDerivedPRNGFacts(pass *Pass) {
	funcs := packageFuncs(pass)
	propagate(funcs, func(fn funcInfo) bool {
		var have ReturnsDerivedPRNG
		if pass.ImportObjectFact(fn.obj, &have) {
			return false
		}
		if !returnsDerivedPRNG(pass, fn) {
			return false
		}
		pass.ExportObjectFact(fn.obj, &ReturnsDerivedPRNG{})
		return true
	})
}

// returnsDerivedPRNG reports whether fn's signature returns at least
// one PRNG-typed result and every return statement supplies derived
// expressions for all PRNG-typed results.
func returnsDerivedPRNG(pass *Pass, fn funcInfo) bool {
	sig, ok := fn.obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	hasPRNGResult := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isPRNGType(sig.Results().At(i).Type()) {
			hasPRNGResult = true
		}
	}
	if !hasPRNGResult {
		return false
	}
	sawReturn := false
	allDerived := true
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if !allDerived {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested literals return for themselves
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				allDerived = false // naked return: generator came from a local
				return false
			}
			sawReturn = true
			for _, res := range n.Results {
				tv, ok := pass.TypesInfo.Types[res]
				if !ok || !isPRNGType(tv.Type) {
					continue
				}
				if !isDerivedPRNGExpr(pass, res) {
					allDerived = false
					return false
				}
			}
		}
		return true
	})
	return sawReturn && allDerived
}

// isDerivedPRNGExpr reports whether the expression produces a fresh,
// derived generator: a seeded constructor, a method drawn off an
// existing generator (Fork), or a call to a function carrying the
// ReturnsDerivedPRNG fact.
func isDerivedPRNGExpr(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	info := pass.TypesInfo
	// Method on a PRNG-typed receiver: rng.Fork() and friends.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && isPRNGType(tv.Type) {
			return true
		}
	}
	obj := calleeFunc(info, call)
	// Known constructor with a seed-traced argument.
	if i, ok := seedArgIndex(obj); ok {
		return len(call.Args) > i && isSeedDerived(pass, call.Args[i])
	}
	// rand.New(src): derived iff its source argument is.
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if (path == "math/rand" || path == "math/rand/v2") && fn.Name() == "New" {
			return len(call.Args) > 0 &&
				(isDerivedPRNGExpr(pass, call.Args[0]) || isSeedDerived(pass, call.Args[0]))
		}
	}
	// A wrapper already proven to return derived generators.
	if fn, ok := obj.(*types.Func); ok {
		var fact ReturnsDerivedPRNG
		if pass.ImportObjectFact(fn, &fact) {
			return true
		}
	}
	return false
}

// seedArgIndex maps constructor name -> index of the seed argument, for
// math/rand, math/rand/v2, and the repo's stats.NewRNG.
func seedArgIndex(obj types.Object) (int, bool) {
	if obj == nil || obj.Pkg() == nil {
		return 0, false
	}
	path, name := obj.Pkg().Path(), obj.Name()
	switch {
	case path == "math/rand" && name == "NewSource":
		return 0, true
	case path == "math/rand/v2" && (name == "NewPCG" || name == "NewChaCha8"):
		return 0, true
	case strings.HasSuffix(path, "internal/stats") && name == "NewRNG":
		return 0, true
	}
	return 0, false
}

func checkSeedConstruction(pass *Pass, call *ast.CallExpr) {
	obj := calleeFunc(pass.TypesInfo, call)
	i, ok := seedArgIndex(obj)
	if !ok || len(call.Args) <= i {
		return
	}
	arg := call.Args[i]
	if isSeedDerived(pass, arg) {
		return
	}
	pass.Reportf(call.Pos(), "%s seeded from %s, which does not trace to a derived task seed (use engine.DeriveSeed, a seed-named variable, or Fork an existing generator)",
		obj.Name(), types.ExprString(arg))
}

// isSeedDerived reports whether the expression plausibly carries a
// derived seed: it mentions an identifier or selector whose name
// contains "seed" (case-insensitive), calls a function whose name
// contains "seed" or is DeriveSeed, or draws from an existing PRNG —
// a method call on a PRNG-typed receiver (the Fork pattern) or on the
// result of a function with the ReturnsDerivedPRNG fact.
func isSeedDerived(pass *Pass, e ast.Expr) bool {
	info := pass.TypesInfo
	derived := false
	ast.Inspect(e, func(n ast.Node) bool {
		if derived {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "seed") {
				derived = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && isPRNGType(tv.Type) {
					derived = true // rng.Uint64() and friends: the Fork pattern
				}
			}
		}
		return !derived
	})
	return derived
}

// prngNames are the generator types whose sharing across goroutines is
// scheduler-dependent.
var prngNames = map[string]map[string]bool{
	"math/rand":    {"Rand": true, "Source": true, "Source64": true, "Zipf": true},
	"math/rand/v2": {"Rand": true, "Source": true, "Zipf": true, "PCG": true, "ChaCha8": true},
}

// isPRNGType reports whether t (possibly behind a pointer) is a known
// generator type, including the repo's stats.RNG.
func isPRNGType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	if names, ok := prngNames[path]; ok && names[name] {
		return true
	}
	return strings.HasSuffix(path, "internal/stats") && name == "RNG"
}

func checkGoroutineSharing(pass *Pass, g *ast.GoStmt) {
	info := pass.TypesInfo
	call := g.Call

	// go rng.Method(...) — the receiver itself crosses the boundary.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && isPRNGType(tv.Type) {
			pass.Reportf(g.Pos(), "goroutine runs a method on shared PRNG %s: draw order becomes scheduler-dependent (Fork a child generator per goroutine)", types.ExprString(sel.X))
			return
		}
	}
	// go f(rng) — PRNG passed as an argument.
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isPRNGType(tv.Type) {
			// A fresh, derived generator created in the argument list is
			// the sanctioned pattern: go f(rng.Fork()).
			if isFreshFork(pass, arg) {
				continue
			}
			pass.Reportf(arg.Pos(), "PRNG %s passed across goroutine boundary: draw order becomes scheduler-dependent (pass rng.Fork() or a derived seed instead)", types.ExprString(arg))
		}
	}
	// go func() { ...rng... }() — PRNG captured by the literal.
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || !isPRNGType(v.Type()) {
			return true
		}
		// Declared inside the literal (including its parameters): fine.
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		pass.Reportf(id.Pos(), "goroutine captures PRNG %s declared outside it: draw order becomes scheduler-dependent (Fork a child generator inside the goroutine's task seed)", v.Name())
		return true
	})
}

// isFreshFork reports whether the expression is a call that produces a
// generator the goroutine may own outright: a known constructor (seed
// provenance is checkSeedConstruction's job), a Fork drawn off an
// existing generator, or a wrapper carrying the ReturnsDerivedPRNG
// fact. A call that merely has a PRNG result type — a shared-global
// accessor, a sync.Pool fetch — does not qualify: that is precisely
// the wrapper blind spot the fact closes.
func isFreshFork(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || !isPRNGType(tv.Type) {
		return false
	}
	return freshPRNGCall(pass, call)
}

// freshPRNGCall is isDerivedPRNGExpr minus the seed-provenance
// requirement on constructor arguments: constructors always mint a new
// generator (nothing is shared even if the seed is bad), so for the
// goroutine-sharing check they count as fresh unconditionally.
func freshPRNGCall(pass *Pass, call *ast.CallExpr) bool {
	info := pass.TypesInfo
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && isPRNGType(tv.Type) {
			return true // rng.Fork() and friends
		}
	}
	obj := calleeFunc(info, call)
	if _, ok := seedArgIndex(obj); ok {
		return true
	}
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if (path == "math/rand" || path == "math/rand/v2") && fn.Name() == "New" {
			// rand.New wraps its source: fresh iff the source is.
			if len(call.Args) == 0 {
				return true // rand/v2 has no such form; be permissive
			}
			if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
				return freshPRNGCall(pass, inner)
			}
			return false // rand.New(sharedSource): the source crosses the boundary
		}
		var fact ReturnsDerivedPRNG
		if pass.ImportObjectFact(fn, &fact) {
			return true
		}
	}
	return false
}
