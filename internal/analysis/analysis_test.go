package analysis

// The golden-diagnostic harness, following the x/tools analysistest
// convention: testdata packages carry `// want "regexp"` comments on the
// lines where a diagnostic is expected; the test fails on any unexpected
// diagnostic and any unmatched expectation. Directories named testdata
// are invisible to the go tool, so these packages never build as part of
// the module and rhlint's own tree run never sees them.

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// wantRe extracts the expectation regexps from a want tail; both
// double-quoted and backquoted arguments are accepted, as in
// x/tools/go/analysis/analysistest.
var wantRe = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")
var wantArgRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// testAnalyzer runs one analyzer over the testdata package in dir,
// type-checked under pkgpath (whose last element drives the
// simulation-visible gating), and compares diagnostics against the
// want comments.
func testAnalyzer(t *testing.T, a *Analyzer, dir, pkgpath string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	// Export data for every import (and its deps) via go list.
	imports := map[string]bool{}
	ifset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(ifset, name, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatal(err)
			}
			imports[p] = true
		}
	}
	l := newLoader(token.NewFileSet())
	if len(imports) > 0 {
		var pats []string
		for p := range imports {
			pats = append(pats, p)
		}
		sort.Strings(pats)
		pkgs, err := goList(dir, pats)
		if err != nil {
			t.Fatal(err)
		}
		l.addExports(pkgs)
	}
	pkg, err := l.typecheck(pkgpath, files, nil, "")
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	diags, err := RunPackage(pkg, []*Analyzer{a}, NewFactStore())
	if err != nil {
		t.Fatal(err)
	}
	compareWants(t, parseWants(t, files), ActiveOnly(diags))
}

// compareWants diffs actual diagnostics against want expectations keyed
// by "filename:line"; every diagnostic must match one expectation and
// every expectation must be consumed.
func compareWants(t *testing.T, wants map[string][]*regexp.Regexp, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		rest := wants[key][:0]
		for _, w := range wants[key] {
			if !matched && w.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			t.Errorf("%s: expected diagnostic matching %q, got none", k, w)
		}
	}
}

// parseWants scans the files' source text for want comments, keyed by
// "filename:line".
func parseWants(t *testing.T, files []string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", name, i+1)
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				expr := arg[1]
				if arg[2] != "" {
					expr = arg[2]
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", key, expr, err)
				}
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants
}

func TestMapIter(t *testing.T) {
	testAnalyzer(t, MapIter, filepath.Join("testdata", "mapiter", "sim"), "example.com/x/sim")
}

func TestMapIterIgnoresNonSimPackages(t *testing.T) {
	testAnalyzer(t, MapIter, filepath.Join("testdata", "mapiter", "notsim"), "example.com/x/util")
}

func TestWallClock(t *testing.T) {
	testAnalyzer(t, WallClock, filepath.Join("testdata", "wallclock", "sim"), "example.com/x/sim")
}

func TestHotAlloc(t *testing.T) {
	// hotalloc is annotation-gated, not package-gated: a non-sim path.
	testAnalyzer(t, HotAlloc, filepath.Join("testdata", "hotalloc", "hot"), "example.com/x/hot")
}

func TestSeedFlow(t *testing.T) {
	testAnalyzer(t, SeedFlow, filepath.Join("testdata", "seedflow", "sim"), "example.com/x/sim")
}

func TestMalformedDirectives(t *testing.T) {
	testAnalyzer(t, MapIter, filepath.Join("testdata", "directives", "sim"), "example.com/x/sim")
}

func TestIsUnitProtocol(t *testing.T) {
	cases := []struct {
		args []string
		want bool
	}{
		{[]string{"./..."}, false},
		{[]string{}, false},
		{[]string{"-V=full"}, true},
		{[]string{"-flags"}, true},
		{[]string{"-mapiter=false", "/tmp/vet1234.cfg"}, true},
	}
	for _, c := range cases {
		if got := IsUnitProtocol(c.args); got != c.want {
			t.Errorf("IsUnitProtocol(%v) = %v, want %v", c.args, got, c.want)
		}
	}
}

func TestSimVisiblePkg(t *testing.T) {
	for _, path := range []string{"repro", "repro/internal/sim", "repro/internal/memctrl", "example.com/x/stats"} {
		if !simVisiblePkg(path) {
			t.Errorf("simVisiblePkg(%q) = false, want true", path)
		}
	}
	for _, path := range []string{"repro/internal/store", "repro/internal/serve", "example.com/x/util"} {
		if simVisiblePkg(path) {
			t.Errorf("simVisiblePkg(%q) = true, want false", path)
		}
	}
}
