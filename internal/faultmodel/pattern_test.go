package faultmodel

import (
	"testing"
	"testing/quick"
)

func TestPatternBytes(t *testing.T) {
	cases := []struct {
		p          Pattern
		even, odd  byte
		alternates bool
	}{
		{Solid0, 0x00, 0x00, false},
		{Solid1, 0xFF, 0xFF, false},
		{ColStripe0, 0x55, 0x55, false},
		{ColStripe1, 0xAA, 0xAA, false},
		{Checkered0, 0x55, 0xAA, true},
		{Checkered1, 0xAA, 0x55, true},
		{RowStripe0, 0x00, 0xFF, true},
		{RowStripe1, 0xFF, 0x00, true},
	}
	for _, c := range cases {
		if got := c.p.RowByte(0); got != c.even {
			t.Errorf("%v even row byte = %#x, want %#x", c.p, got, c.even)
		}
		if got := c.p.RowByte(1); got != c.odd {
			t.Errorf("%v odd row byte = %#x, want %#x", c.p, got, c.odd)
		}
	}
}

func TestPatternInverseProperty(t *testing.T) {
	// Property: Inverse flips every stored bit, and is an involution.
	f := func(pRaw, rowRaw, bitRaw uint) bool {
		p := Pattern(pRaw % uint(NumPatterns))
		row := int(rowRaw % 1024)
		bit := int(bitRaw % 8192)
		inv := p.Inverse()
		if inv.Inverse() != p {
			return false
		}
		return p.Bit(row, bit)^inv.Bit(row, bit) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParsePattern(t *testing.T) {
	for p := Pattern(0); p < NumPatterns; p++ {
		for _, s := range []string{p.String(), p.Short()} {
			got, err := ParsePattern(s)
			if err != nil || got != p {
				t.Errorf("ParsePattern(%q) = %v, %v", s, got, err)
			}
		}
	}
	if _, err := ParsePattern("nope"); err == nil {
		t.Error("bad name accepted")
	}
}

func TestFigurePatternsAreSixNonSolid(t *testing.T) {
	ps := FigurePatterns()
	if len(ps) != 6 {
		t.Fatalf("figure patterns = %d, want 6", len(ps))
	}
	for _, p := range ps {
		if p == Solid0 || p == Solid1 {
			t.Errorf("solid pattern %v in Figure 4 set", p)
		}
	}
}

func TestPatternsEnumeration(t *testing.T) {
	if len(Patterns()) != int(NumPatterns) {
		t.Fatalf("Patterns() = %d entries", len(Patterns()))
	}
}
