package faultmodel

import (
	"testing"

	"repro/internal/dram"
)

// testConfig returns a small, fast chip configuration.
func testConfig() Config {
	return Config{
		Name: "test", Type: dram.DDR4, Node: "new", Mfr: "A",
		Banks: 1, Rows: 256, RowBits: 1024,
		HCFirst: 10_000, Rate150k: 1e-4,
		WorstPattern: RowStripe0,
		Seed:         42,
	}
}

func mustChip(t *testing.T, cfg Config) *Chip {
	t.Helper()
	c, err := NewChip(cfg)
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	return c
}

func TestNewChipValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero banks", func(c *Config) { c.Banks = 0 }},
		{"zero rows", func(c *Config) { c.Rows = 0 }},
		{"zero row bits", func(c *Config) { c.RowBits = 0 }},
		{"zero hcfirst", func(c *Config) { c.HCFirst = 0 }},
		{"bad pattern", func(c *Config) { c.WorstPattern = NumPatterns }},
		{"ecc non-multiple", func(c *Config) { c.OnDieECC = true; c.RowBits = 100 }},
		{"paired odd rows", func(c *Config) { c.PairedWordlines = true; c.Rows = 255 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			if _, err := NewChip(cfg); err == nil {
				t.Fatalf("want error for %s, got none", tc.name)
			}
		})
	}
}

func TestWeakestCellCalibration(t *testing.T) {
	c := mustChip(t, testConfig())
	min, ok := c.MinThreshold(c.Config().WorstPattern)
	if !ok {
		t.Fatal("no eligible cells under the worst pattern")
	}
	if min != c.Config().HCFirst {
		t.Fatalf("weakest eligible threshold = %v, want exactly HCFirst %v", min, c.Config().HCFirst)
	}
	// Under every other pattern the minimum must be at least HCFirst.
	for p := Pattern(0); p < NumPatterns; p++ {
		if m, ok := c.MinThreshold(p); ok && m < c.Config().HCFirst {
			t.Fatalf("pattern %v min threshold %v < HCFirst", p, m)
		}
	}
}

func TestDoubleSidedHammerFlipsAboveThreshold(t *testing.T) {
	c := mustChip(t, testConfig())
	c.WriteAll(c.Config().WorstPattern)

	// Find the weakest cell's row via the analytic API.
	var weakRow int
	best := 1e18
	c.ForEachCell(func(ci CellInfo) {
		if ci.Threshold < best {
			best = ci.Threshold
			weakRow = ci.Row
		}
	})

	lo, hi, ok := c.AggressorsFor(weakRow)
	if !ok {
		t.Fatalf("no aggressors for row %d", weakRow)
	}

	hammer := func(hc int) int {
		c.BeginTest(uint64(hc))
		if err := c.Activate(0, lo, hc); err != nil {
			t.Fatal(err)
		}
		if err := c.Activate(0, hi, hc); err != nil {
			t.Fatal(err)
		}
		return len(c.ObservedFlips(0, weakRow))
	}

	if n := hammer(3 * int(c.Config().HCFirst)); n == 0 {
		t.Errorf("no flips at 3×HCFirst hammers")
	}
	if n := hammer(int(c.Config().HCFirst) / 4); n != 0 {
		t.Errorf("got %d flips at HCFirst/4 hammers, want 0", n)
	}
}

func TestAggressorRowsAreImmune(t *testing.T) {
	c := mustChip(t, testConfig())
	c.WriteAll(c.Config().WorstPattern)
	c.BeginTest(1)
	// Hammer rows 10 and 12 (victim 11): neither aggressor may flip.
	if err := c.Activate(0, 10, 500_000); err != nil {
		t.Fatal(err)
	}
	if err := c.Activate(0, 12, 500_000); err != nil {
		t.Fatal(err)
	}
	if flips := c.ObservedFlips(0, 10); len(flips) != 0 {
		t.Errorf("aggressor row 10 has %d flips, want 0", len(flips))
	}
	if flips := c.ObservedFlips(0, 12); len(flips) != 0 {
		t.Errorf("aggressor row 12 has %d flips, want 0", len(flips))
	}
}

func TestEvenOffsetsOnly(t *testing.T) {
	cfg := testConfig()
	cfg.Rate150k = 1e-3 // dense, to populate neighbours
	cfg.W3 = 0.35
	cfg.W5 = 0.2
	c := mustChip(t, cfg)
	c.WriteAll(c.Config().WorstPattern)

	victim := 100
	c.BeginTest(7)
	for _, agg := range []int{victim - 1, victim + 1} {
		if err := c.Activate(0, agg, 400_000); err != nil {
			t.Fatal(err)
		}
	}
	// Odd offsets from the victim (= even wordline distance from the
	// aggressors) must never flip (Section 5.4).
	for _, off := range []int{-5, -3, 3, 5} {
		if flips := c.ObservedFlips(0, victim+off); len(flips) != 0 {
			t.Errorf("odd offset %+d has %d flips, want 0", off, len(flips))
		}
	}
}

func TestRefreshRowClearsDamage(t *testing.T) {
	c := mustChip(t, testConfig())
	c.WriteAll(c.Config().WorstPattern)
	c.BeginTest(1)
	if err := c.Activate(0, 20, 100_000); err != nil {
		t.Fatal(err)
	}
	if d := c.Damage(0, 21); d <= 0 {
		t.Fatalf("damage on row 21 = %v, want > 0", d)
	}
	c.RefreshRow(0, 21)
	if d := c.Damage(0, 21); d != 0 {
		t.Fatalf("damage after refresh = %v, want 0", d)
	}
}

func TestCommitFlipsPersist(t *testing.T) {
	c := mustChip(t, testConfig())
	c.WriteAll(c.Config().WorstPattern)

	var weakRow int
	best := 1e18
	c.ForEachCell(func(ci CellInfo) {
		if ci.Threshold < best {
			best = ci.Threshold
			weakRow = ci.Row
		}
	})
	lo, hi, ok := c.AggressorsFor(weakRow)
	if !ok {
		t.Fatalf("no aggressors for row %d", weakRow)
	}
	if err := c.Activate(0, lo, 3*int(best)); err != nil {
		t.Fatal(err)
	}
	if err := c.Activate(0, hi, 3*int(best)); err != nil {
		t.Fatal(err)
	}
	c.CommitFlips()
	if got := len(c.CommittedFlips(0, weakRow)); got == 0 {
		t.Fatal("no committed flips in the weakest row")
	}
	if c.TotalCommittedFlips() == 0 {
		t.Fatal("TotalCommittedFlips = 0")
	}
	// WriteAll clears persistent corruption.
	c.WriteAll(c.Config().WorstPattern)
	if c.TotalCommittedFlips() != 0 {
		t.Fatal("WriteAll did not clear committed flips")
	}
}

func TestPairedWordlineAggressors(t *testing.T) {
	cfg := testConfig()
	cfg.PairedWordlines = true
	c := mustChip(t, cfg)
	lo, hi, ok := c.AggressorsFor(100)
	if !ok {
		t.Fatal("no aggressors for row 100")
	}
	// Row 100 is on wordline 50; adjacent wordlines host rows 98/99 and
	// 102/103.
	if lo != 98 || hi != 102 {
		t.Fatalf("aggressors = %d,%d, want 98,102", lo, hi)
	}
	if c.Wordlines() != cfg.Rows/2 {
		t.Fatalf("wordlines = %d, want %d", c.Wordlines(), cfg.Rows/2)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int {
		c := mustChip(t, testConfig())
		c.WriteAll(c.Config().WorstPattern)
		total := 0
		for v := 2; v < c.Rows()-2; v += 7 {
			c.BeginTest(uint64(v))
			lo, hi, ok := c.AggressorsFor(v)
			if !ok {
				continue
			}
			c.Activate(0, lo, 120_000)
			c.Activate(0, hi, 120_000)
			total += len(c.ObservedFlips(0, v))
		}
		return total
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic flip counts: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("sweep found no flips at HC=120k on a 10k-HCFirst chip")
	}
}

func TestOnDieECCHidesSingleBitFlips(t *testing.T) {
	cfg := testConfig()
	cfg.RowBits = 1024
	cfg.OnDieECC = true
	cfg.Type = dram.LPDDR4
	cfg.ClusterP = 0 // isolated cells only → raw flips are single-bit
	cfg.Rate150k = 5e-4
	c := mustChip(t, cfg)
	c.WriteAll(c.Config().WorstPattern)

	raws, observed := 0, 0
	for v := 2; v < c.Rows()-2; v++ {
		c.BeginTest(uint64(v))
		lo, hi, ok := c.AggressorsFor(v)
		if !ok {
			continue
		}
		c.Activate(0, lo, 140_000)
		c.Activate(0, hi, 140_000)
		raws += len(c.rawFlips(0, v))
		observed += len(c.ObservedFlips(0, v))
	}
	if raws == 0 {
		t.Fatal("no raw flips; test is vacuous")
	}
	if observed >= raws {
		t.Fatalf("on-die ECC observed %d flips ≥ raw %d; expected correction to hide most", observed, raws)
	}
}

func TestBetaDerivation(t *testing.T) {
	cfg := testConfig()
	c := mustChip(t, cfg)
	if c.Beta() < 1.2 || c.Beta() > 6 {
		t.Fatalf("beta = %v out of [1.2, 6]", c.Beta())
	}
	// A chip that is not RowHammerable uses the default exponent.
	cfg.HCFirst = 200_000
	c2 := mustChip(t, cfg)
	if c2.Beta() != DefaultBeta {
		t.Fatalf("beta = %v, want default %v", c2.Beta(), DefaultBeta)
	}
}
