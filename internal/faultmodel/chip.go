package faultmodel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ecc"
	"repro/internal/stats"
)

// Flip identifies one observed bit flip: a data bit in a row whose value
// no longer matches what was written.
type Flip struct {
	Bank, Row, Bit int
}

// cell is one vulnerable DRAM cell. bit indexes the row's raw bit array:
// [0, RowBits) are data bits; with on-die ECC, [RowBits, RowBits+8·words)
// are parity bits.
type cell struct {
	bit       int
	threshold float64 // hammers to 50% flip probability under best pattern
	charged   byte    // stored value from which the cell can discharge
	affin     [NumPatterns]float32
}

// effectiveThreshold returns the cell's threshold under pattern p.
func (c *cell) effectiveThreshold(p Pattern) float64 {
	a := float64(c.affin[p])
	if a <= 0 {
		return math.Inf(1)
	}
	return c.threshold / a
}

// Chip is one simulated DRAM chip with RowHammer protection disabled, as
// the paper tests them. It supports two usage styles:
//
//   - Test mode (Algorithm 1): WriteAll → BeginTest → Activate aggressors
//     → ObservedFlips. Flips are sampled probabilistically per test and do
//     not persist, matching line 16 ("restore bit flips").
//   - Accumulate mode (attack demos): Activate interleaved with
//     RefreshRow, then CommitFlips/CommittedFlips. Crossing a threshold
//     permanently corrupts the cell until the next WriteAll.
//
// A Chip is not safe for concurrent use.
type Chip struct {
	cfg       Config
	beta      float64
	wordlines int
	rawBits   int // raw bits per row (data + on-die parity)
	eccWords  int // 128-bit ECC words per row (0 without on-die ECC)

	siteLambda float64 // expected vulnerable sites per row

	cells map[int][]cell // lazily generated, keyed by bank*Rows+row

	weakKey  int // row key holding the forced weakest cell
	weakCell cell
	weakMate cell // same-word companion, for HCsecond

	parityByByte map[byte][]byte // cached SEC128 parity bits per row byte

	// Dynamic state. The per-ACT accounting is flat slices indexed by
	// wordline key (bank*wordlines+wl) with a touched-key journal, so the
	// hot Activate path is array arithmetic and reset cost is O(touched)
	// rather than O(chip). The slices are allocated lazily on the first
	// Activate; while they are nil every key reads as zero.
	pattern   Pattern
	nonce     uint64
	damage    []float64     // accumulated hammers per wordline key
	activated []int64       // ACT counts per wordline key within a test
	dirty     []bool        // wordline keys with uncommitted neighbour damage
	journaled []bool        // wordline keys present in touched
	touched   []int         // journal of keys with any nonzero accounting
	flipped   map[Flip]bool // committed (persistent) flips
}

// NewChip constructs a chip from cfg. The vulnerable-cell population is
// generated lazily per row, deterministically from cfg.Seed.
func NewChip(cfg Config) (*Chip, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Chip{
		cfg:          cfg,
		beta:         cfg.beta(),
		wordlines:    cfg.Rows,
		rawBits:      cfg.RowBits,
		cells:        make(map[int][]cell),
		parityByByte: make(map[byte][]byte),
		pattern:      cfg.WorstPattern,
		flipped:      make(map[Flip]bool),
	}
	if cfg.PairedWordlines {
		c.wordlines = cfg.Rows / 2
	}
	if cfg.OnDieECC {
		c.eccWords = cfg.RowBits / 128
		c.rawBits = cfg.RowBits + 8*c.eccWords
	}

	// Expected vulnerable cells chip-wide with T ≤ cutoff, per the power
	// law E[#flips](H) = (H/HCFirst)^β, divided over rows and deflated by
	// the mean cluster size so clustering does not inflate the total.
	total := math.Pow(thresholdCutoff/cfg.HCFirst, c.beta)
	meanCluster := 1.0
	p := cfg.ClusterP
	for i, f := 0, p; i < 3; i++ {
		meanCluster += f
		f *= p
	}
	c.siteLambda = total / (float64(cfg.Banks) * float64(cfg.Rows) * meanCluster)
	if maxLambda := float64(c.rawBits) / 64; c.siteLambda > maxLambda {
		c.siteLambda = maxLambda
	}

	// Force the weakest cell so the chip's HCfirst is exactly cfg.HCFirst
	// (Table 4 calibration), with a same-word companion for HCsecond.
	rng := stats.NewRNG(cfg.Seed ^ 0x5eed1e55)
	weakBank := rng.Intn(cfg.Banks)
	weakRow := 2 * rng.Intn(cfg.Rows/2) // even row: the worst pattern's base byte
	if weakRow == 0 {
		weakRow = 2
	}
	c.weakKey = weakBank*cfg.Rows + weakRow
	wordStart := 64 * rng.Intn(cfg.RowBits/64)
	bit := wordStart + rng.Intn(64)
	c.weakCell = c.makeCell(rng, weakRow, bit, cfg.HCFirst, cfg.WorstPattern)
	mateBit := wordStart + rng.Intn(64)
	for mateBit == bit {
		mateBit = wordStart + rng.Intn(64)
	}
	// With on-die ECC a single flip is corrected, so the *observed*
	// HCfirst is the companion cell's threshold: keep it at ≈HCFirst so
	// the chip's measured value matches its calibration (the paper's
	// LPDDR4 numbers are likewise post-ECC observations). Without ECC the
	// companion models the word-level clustering of Figures 7/9.
	mateT := cfg.HCFirst * rng.Range(cfg.ClusterLo, cfg.ClusterHi)
	if cfg.OnDieECC {
		mateT = cfg.HCFirst * rng.Range(1.02, 1.12)
	}
	c.weakMate = c.makeCell(rng, weakRow, mateBit, mateT, cfg.WorstPattern)
	return c, nil
}

// Config returns the chip's configuration (with defaults applied).
func (c *Chip) Config() Config { return c.cfg }

// Beta returns the realized power-law exponent of the threshold
// distribution (the log-log slope of Observation 4).
func (c *Chip) Beta() float64 { return c.beta }

// Rows returns logical rows per bank; Banks the bank count.
func (c *Chip) Rows() int  { return c.cfg.Rows }
func (c *Chip) Banks() int { return c.cfg.Banks }

// RowBits returns data bits per row.
func (c *Chip) RowBits() int { return c.cfg.RowBits }

// Wordlines returns the number of physical wordlines per bank (half the
// row count for paired-wordline chips).
func (c *Chip) Wordlines() int { return c.wordlines }

// wordlineOf maps a logical row to its physical wordline.
func (c *Chip) wordlineOf(row int) int {
	if c.cfg.PairedWordlines {
		return row >> 1
	}
	return row
}

// rowsOnWordline returns the logical rows sharing a wordline.
func (c *Chip) rowsOnWordline(wl int) []int {
	if c.cfg.PairedWordlines {
		return []int{2 * wl, 2*wl + 1}
	}
	return []int{wl}
}

// AggressorsFor returns one logical row on each wordline physically
// adjacent to the victim's wordline, i.e. the rows a double-sided hammer
// must activate. ok is false at the array edges.
func (c *Chip) AggressorsFor(victim int) (lo, hi int, ok bool) {
	wl := c.wordlineOf(victim)
	if wl <= 0 || wl >= c.wordlines-1 {
		return 0, 0, false
	}
	lows := c.rowsOnWordline(wl - 1)
	highs := c.rowsOnWordline(wl + 1)
	return lows[0], highs[0], true
}

// BlastRadius returns the maximum wordline distance at which this chip's
// aggressors disturb victims.
func (c *Chip) BlastRadius() int {
	switch {
	case c.cfg.W5 > 0:
		return 5
	case c.cfg.W3 > 0:
		return 3
	default:
		return 1
	}
}

func (c *Chip) couplingWeight(d int) float64 {
	switch d {
	case 1:
		return w1
	case 3:
		return c.cfg.W3
	case 5:
		return c.cfg.W5
	default:
		return 0
	}
}

// --- cell population -----------------------------------------------------

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hammerRand returns a deterministic uniform [0,1) value for a
// (cell, nonce) pair, so flips are reproducible within a test iteration.
func (c *Chip) hammerRand(bank, row, bit int, nonce uint64) float64 {
	h := c.cfg.Seed
	h = mix64(h ^ uint64(bank)<<40 ^ uint64(row)<<16 ^ uint64(bit))
	h = mix64(h ^ nonce)
	return float64(h>>11) / (1 << 53)
}

// makeCell builds one vulnerable cell with the given preferred pattern.
func (c *Chip) makeCell(rng *stats.RNG, row, bit int, threshold float64, pref Pattern) cell {
	cl := cell{bit: bit, threshold: threshold}
	cl.charged = c.storedBitUnder(pref, row, bit)
	for p := Pattern(0); p < NumPatterns; p++ {
		if p == pref {
			cl.affin[p] = 1
		} else {
			cl.affin[p] = float32(rng.Range(0.25, 0.95))
		}
	}
	return cl
}

// rowCells returns (generating on first use) the vulnerable cells of a row.
func (c *Chip) rowCells(bank, row int) []cell {
	key := bank*c.cfg.Rows + row
	if cs, ok := c.cells[key]; ok {
		return cs
	}
	rng := stats.NewRNG(mix64(c.cfg.Seed ^ uint64(key)<<1 ^ 0xc0ffee))
	n := rng.Poisson(c.siteLambda)
	var cs []cell
	for i := 0; i < n; i++ {
		bit := rng.Intn(c.rawBits)
		// T = cutoff·U^(1/β): inverse CDF of the power law, clamped just
		// above HCFirst so the forced weakest cell stays unique.
		t := thresholdCutoff * math.Pow(rng.Float64(), 1/c.beta)
		if t < c.cfg.HCFirst*1.02 {
			t = c.cfg.HCFirst * 1.02
		}
		pref := c.cfg.WorstPattern
		if !rng.Bernoulli(c.cfg.PrefBias) {
			pref = Pattern(rng.Intn(int(NumPatterns)))
		}
		cs = append(cs, c.makeCell(rng, row, bit, t, pref))
		// Grow a same-word cluster (only meaningful for data bits),
		// capped at four cells per word as Observation 8 reports. The
		// second cell sits ClusterLo–ClusterHi above the first; deeper
		// cells cluster tightly above the second, which is what makes
		// Figure 9's 2→3 multiplier smaller than its 1→2 multiplier
		// (Observation 13's diminishing returns).
		if bit < c.cfg.RowBits {
			wordStart := bit - bit%64
			prev := t
			contP := c.cfg.ClusterP
			for size := 1; size < 4 && rng.Bernoulli(contP); size++ {
				nb := wordStart + rng.Intn(64)
				if size == 1 {
					prev *= rng.Range(c.cfg.ClusterLo, c.cfg.ClusterHi)
				} else {
					prev *= rng.Range(1.05, 1.5)
				}
				cs = append(cs, c.makeCell(rng, row, nb, prev, pref))
				contP = c.cfg.ClusterP + 0.25
			}
		}
	}
	if key == c.weakKey {
		cs = append(cs, c.weakCell, c.weakMate)
	}
	c.cells[key] = cs
	return cs
}

// storedBitUnder returns the value pattern p stores in a row's raw bit.
func (c *Chip) storedBitUnder(p Pattern, row, bit int) byte {
	if bit < c.cfg.RowBits {
		return p.Bit(row, bit)
	}
	// On-die ECC parity region: parity bit j of some word; all words of a
	// uniform-data row share the same parity bits.
	j := (bit - c.cfg.RowBits) % 8
	return c.parityBits(p.RowByte(row))[j]
}

// parityBits returns the SEC128 parity for a 128-bit word of repeated b.
func (c *Chip) parityBits(b byte) []byte {
	if par, ok := c.parityByByte[b]; ok {
		return par
	}
	data := make([]byte, 128)
	for i := range data {
		data[i] = (b >> (uint(i) & 7)) & 1
	}
	par, err := ecc.SEC128.ParityFor(data)
	if err != nil {
		panic(fmt.Sprintf("faultmodel: SEC128 parity: %v", err))
	}
	c.parityByByte[b] = par
	return par
}

// eligible reports whether the cell can flip under pattern p in its row:
// the stored value must be the cell's charged state.
func (c *Chip) eligible(cl *cell, p Pattern, row int) bool {
	return c.storedBitUnder(p, row, cl.bit) == cl.charged
}

// flipProbability implements P = 1 − 2^−(E/T)^γ.
func (c *Chip) flipProbability(effHammers, threshold float64) float64 {
	if effHammers <= 0 {
		return 0
	}
	r := effHammers / threshold
	if r < 0.5 {
		return 0 // below 2% probability; treat as impossible
	}
	return 1 - math.Exp2(-math.Pow(r, c.cfg.Gamma))
}

// --- dynamic state ---------------------------------------------------------

// ensureAccounting allocates the flat accounting slices on first use.
func (c *Chip) ensureAccounting() {
	if c.damage != nil {
		return
	}
	n := c.cfg.Banks * c.wordlines
	c.damage = make([]float64, n)
	c.activated = make([]int64, n)
	c.dirty = make([]bool, n)
	c.journaled = make([]bool, n)
}

// journal records key in the touched set so resetAccounting can clear it.
func (c *Chip) journal(key int) {
	if !c.journaled[key] {
		c.journaled[key] = true
		c.touched = append(c.touched, key)
	}
}

// resetAccounting zeroes the per-test hammer accounting (damage, ACT
// counts, dirty marks) by replaying the touched-key journal, leaving the
// committed-flip set alone.
func (c *Chip) resetAccounting() {
	for _, key := range c.touched {
		c.damage[key] = 0
		c.activated[key] = 0
		c.dirty[key] = false
		c.journaled[key] = false
	}
	c.touched = c.touched[:0]
}

// WriteAll stores pattern p into every cell and clears all accumulated
// damage and committed flips (Algorithm 1 lines 2–3).
func (c *Chip) WriteAll(p Pattern) {
	c.pattern = p
	c.resetAccounting()
	c.flipped = make(map[Flip]bool)
}

// Pattern returns the currently written data pattern.
func (c *Chip) Pattern() Pattern { return c.pattern }

// BeginTest starts one core-loop iteration of Algorithm 1: refresh is
// disabled, the victim is freshly refreshed, and all previously
// accumulated hammers are gone. nonce seeds this iteration's sampling so
// repeated iterations model run-to-run variation (Section 5.6).
func (c *Chip) BeginTest(nonce uint64) {
	c.nonce = nonce
	c.resetAccounting()
}

func (c *Chip) wlKey(bank, wl int) int { return bank*c.wordlines + wl }

// Activate issues times activations to (bank, row): the row's own
// wordline is refreshed (and becomes immune for the rest of the test) and
// neighbouring wordlines at odd distances accumulate coupling damage.
func (c *Chip) Activate(bank, row, times int) error {
	if bank < 0 || bank >= c.cfg.Banks || row < 0 || row >= c.cfg.Rows {
		return fmt.Errorf("faultmodel: activate out of range: bank %d row %d", bank, row)
	}
	if times <= 0 {
		return nil
	}
	c.ensureAccounting()
	wl := c.wordlineOf(row)
	self := c.wlKey(bank, wl)
	c.journal(self)
	c.activated[self] += int64(times)
	c.damage[self] = 0 // an activation restores the row's own charge
	for _, d := range [...]int{1, 3, 5} {
		w := c.couplingWeight(d)
		if w == 0 {
			continue
		}
		for _, nwl := range [...]int{wl - d, wl + d} {
			if nwl < 0 || nwl >= c.wordlines {
				continue
			}
			key := c.wlKey(bank, nwl)
			c.journal(key)
			c.damage[key] += float64(times) * w
			c.dirty[key] = true
		}
	}
	return nil
}

// RefreshRow restores the charge of every cell on the row's wordline,
// clearing its accumulated hammer damage. This is what refresh-based
// mitigation mechanisms do to victims.
func (c *Chip) RefreshRow(bank, row int) {
	// An untouched key already reads zero, so only journaled state needs
	// the store; nil slices mean nothing was ever activated.
	if c.damage != nil {
		c.damage[c.wlKey(bank, c.wordlineOf(row))] = 0
	}
}

// Damage returns the accumulated effective hammers on a row's wordline.
func (c *Chip) Damage(bank, row int) float64 {
	if c.damage == nil {
		return 0
	}
	return c.damage[c.wlKey(bank, c.wordlineOf(row))]
}

// rawFlips samples this test's raw (pre-ECC) cell flips for a row.
func (c *Chip) rawFlips(bank, row int) []int {
	if c.damage == nil {
		return nil
	}
	wl := c.wordlineOf(row)
	key := c.wlKey(bank, wl)
	if c.activated[key] > 0 {
		return nil // aggressor rows cannot fail (Section 5.4)
	}
	e := c.damage[key]
	if e <= 0 {
		return nil
	}
	var bits []int
	for i := range c.rowCells(bank, row) {
		cl := &c.cells[bank*c.cfg.Rows+row][i]
		if !c.eligible(cl, c.pattern, row) {
			continue
		}
		p := c.flipProbability(e, cl.effectiveThreshold(c.pattern))
		if p <= 0 {
			continue
		}
		if c.hammerRand(bank, row, cl.bit, c.nonce) < p {
			bits = append(bits, cl.bit)
		}
	}
	sort.Ints(bits)
	return bits
}

// ObservedFlips returns the bit flips visible to the system in a row for
// the current test: raw cell flips filtered through on-die ECC when the
// chip has it. Bit indices refer to the row's data bits.
func (c *Chip) ObservedFlips(bank, row int) []Flip {
	raw := c.rawFlips(bank, row)
	if len(raw) == 0 {
		return nil
	}
	if !c.cfg.OnDieECC {
		fs := make([]Flip, 0, len(raw))
		for _, b := range raw {
			fs = append(fs, Flip{Bank: bank, Row: row, Bit: b})
		}
		return fs
	}
	return c.decodeThroughECC(bank, row, raw)
}

// ObservedFromRaw filters a row's raw cell flips (raw-bit indices; on-die
// ECC parity bits included, in [RowBits, RowBits+8·words)) through the
// chip's ECC and returns the data flips the system observes. Without
// on-die ECC the data bits pass through unchanged. External hammer
// accountants use it to report post-correction escaped flips alongside
// the raw counts.
func (c *Chip) ObservedFromRaw(bank, row int, raw []int) []Flip {
	if len(raw) == 0 {
		return nil
	}
	if !c.cfg.OnDieECC {
		fs := make([]Flip, 0, len(raw))
		for _, b := range raw {
			if b < c.cfg.RowBits {
				fs = append(fs, Flip{Bank: bank, Row: row, Bit: b})
			}
		}
		return fs
	}
	return c.decodeThroughECC(bank, row, raw)
}

// decodeThroughECC groups raw flips into 128-bit ECC words, runs the real
// SEC decoder on each, and reports the post-correction data flips.
func (c *Chip) decodeThroughECC(bank, row int, raw []int) []Flip {
	byWord := make(map[int][]int)
	for _, b := range raw {
		var word, cwBit int
		if b < c.cfg.RowBits {
			word = b / 128
			cwBit = ecc.SEC128.DataPosition(b % 128)
		} else {
			j := b - c.cfg.RowBits
			word = j / 8
			cwBit = ecc.SEC128.ParityPosition(j % 8)
		}
		byWord[word] = append(byWord[word], cwBit)
	}
	var flips []Flip
	for word, cwBits := range byWord {
		dataFlips, _, err := ecc.SEC128.DecodeFlips(cwBits)
		if err != nil {
			panic(fmt.Sprintf("faultmodel: on-die ECC decode: %v", err))
		}
		for _, di := range dataFlips {
			flips = append(flips, Flip{Bank: bank, Row: row, Bit: word*128 + di})
		}
	}
	sort.Slice(flips, func(i, j int) bool { return flips[i].Bit < flips[j].Bit })
	return flips
}

// CommitFlips materializes permanent flips for every cell whose
// accumulated damage has crossed its threshold (accumulate mode). Flips
// persist until the next WriteAll.
func (c *Chip) CommitFlips() {
	for _, key := range c.touched {
		if !c.dirty[key] {
			continue
		}
		c.dirty[key] = false
		bank := key / c.wordlines
		wl := key % c.wordlines
		if c.activated[c.wlKey(bank, wl)] > 0 {
			continue
		}
		e := c.damage[key]
		if e <= 0 {
			continue
		}
		for _, row := range c.rowsOnWordline(wl) {
			for i := range c.rowCells(bank, row) {
				cl := &c.cells[bank*c.cfg.Rows+row][i]
				if cl.bit >= c.cfg.RowBits {
					continue // attack demos read raw data bits
				}
				if !c.eligible(cl, c.pattern, row) {
					continue
				}
				if e >= cl.effectiveThreshold(c.pattern) {
					c.flipped[Flip{Bank: bank, Row: row, Bit: cl.bit}] = true
				}
			}
		}
	}
}

// CommittedFlips lists the persistent flips in a row (accumulate mode).
func (c *Chip) CommittedFlips(bank, row int) []Flip {
	var fs []Flip
	for f := range c.flipped {
		if f.Bank == bank && f.Row == row {
			fs = append(fs, f)
		}
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].Bit < fs[j].Bit })
	return fs
}

// TotalCommittedFlips returns the count of persistent flips chip-wide.
func (c *Chip) TotalCommittedFlips() int { return len(c.flipped) }

// --- analytic ground truth ------------------------------------------------

// CellInfo describes one vulnerable cell for analytic queries.
type CellInfo struct {
	Bank, Row, Bit int     // Bit indexes the row's raw bit array
	Threshold      float64 // hammers, under the cell's preferred pattern
	Parity         bool    // true for on-die ECC parity cells
}

// ForEachCell instantiates the full vulnerable-cell population and calls
// fn for every cell. Intended for analysis and tests, not the hot path.
func (c *Chip) ForEachCell(fn func(CellInfo)) {
	for bank := 0; bank < c.cfg.Banks; bank++ {
		for row := 0; row < c.cfg.Rows; row++ {
			for _, cl := range c.rowCells(bank, row) {
				fn(CellInfo{
					Bank: bank, Row: row, Bit: cl.bit,
					Threshold: cl.threshold,
					Parity:    cl.bit >= c.cfg.RowBits,
				})
			}
		}
	}
}

// WeakestCell returns the chip's forced weakest cell — the one whose
// threshold equals the configured HCFirst. Attack demos use it as the
// profiled target.
func (c *Chip) WeakestCell() CellInfo {
	return CellInfo{
		Bank:      c.weakKey / c.cfg.Rows,
		Row:       c.weakKey % c.cfg.Rows,
		Bit:       c.weakCell.bit,
		Threshold: c.weakCell.threshold,
	}
}

// MinThreshold returns the smallest effective threshold over all cells
// eligible under pattern p, and whether any such cell exists. For chips
// with on-die ECC this is the raw (pre-correction) threshold.
func (c *Chip) MinThreshold(p Pattern) (float64, bool) {
	best := math.Inf(1)
	found := false
	for bank := 0; bank < c.cfg.Banks; bank++ {
		for row := 0; row < c.cfg.Rows; row++ {
			for i := range c.rowCells(bank, row) {
				cl := &c.cells[bank*c.cfg.Rows+row][i]
				if !c.eligible(cl, p, row) {
					continue
				}
				if t := cl.effectiveThreshold(p); t < best {
					best = t
					found = true
				}
			}
		}
	}
	return best, found
}

// WordThresholds returns, for every 64-bit data word containing at least
// n eligible vulnerable cells under pattern p, the n-th smallest
// effective threshold. Used by the Figure 9 ECC analysis (HCfirst,
// HCsecond, HCthird at 64-bit granularity).
func (c *Chip) WordThresholds(p Pattern, n int) []float64 {
	type wordKey struct{ bank, row, word int }
	byWord := make(map[wordKey][]float64)
	for bank := 0; bank < c.cfg.Banks; bank++ {
		for row := 0; row < c.cfg.Rows; row++ {
			for i := range c.rowCells(bank, row) {
				cl := &c.cells[bank*c.cfg.Rows+row][i]
				if cl.bit >= c.cfg.RowBits || !c.eligible(cl, p, row) {
					continue
				}
				k := wordKey{bank, row, cl.bit / 64}
				byWord[k] = append(byWord[k], cl.effectiveThreshold(p))
			}
		}
	}
	var out []float64
	for _, ts := range byWord {
		if len(ts) < n {
			continue
		}
		sort.Float64s(ts)
		out = append(out, ts[n-1])
	}
	sort.Float64s(out)
	return out
}
