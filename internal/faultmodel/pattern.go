// Package faultmodel implements the circuit-level RowHammer fault model
// that substitutes for the paper's 1580 real DRAM chips (see DESIGN.md §2
// and §4). A Chip exposes the operations the paper's testing
// infrastructure performs — write a data pattern, disable refresh,
// activate aggressor rows, read back bit flips — on top of a per-cell
// vulnerability model: power-law hammer thresholds, odd-distance coupling,
// true-/anti-cell orientation, per-cell data-pattern affinity, optional
// paired-wordline remapping, and optional on-die ECC.
package faultmodel

import "fmt"

// Pattern is one of the DRAM data patterns of Section 4.3. Every byte of
// every row is written with the pattern's byte; the Checkered and
// RowStripe patterns write the inverse byte into alternating rows.
type Pattern int

const (
	Solid0     Pattern = iota // SO0: 0x00 everywhere
	Solid1                    // SO1: 0xFF everywhere
	ColStripe0                // CS0: 0x55 everywhere
	ColStripe1                // CS1: 0xAA everywhere
	Checkered0                // CH0: 0x55 in even rows, 0xAA in odd rows
	Checkered1                // CH1: 0xAA in even rows, 0x55 in odd rows
	RowStripe0                // RS0: 0x00 in even rows, 0xFF in odd rows
	RowStripe1                // RS1: 0xFF in even rows, 0x00 in odd rows
	NumPatterns
)

// Patterns lists all patterns in definition order.
func Patterns() []Pattern {
	ps := make([]Pattern, NumPatterns)
	for i := range ps {
		ps[i] = Pattern(i)
	}
	return ps
}

// FigurePatterns lists the six patterns Figure 4 reports coverage for.
func FigurePatterns() []Pattern {
	return []Pattern{RowStripe0, RowStripe1, ColStripe0, ColStripe1, Checkered0, Checkered1}
}

func (p Pattern) String() string {
	switch p {
	case Solid0:
		return "Solid0"
	case Solid1:
		return "Solid1"
	case ColStripe0:
		return "ColStripe0"
	case ColStripe1:
		return "ColStripe1"
	case Checkered0:
		return "Checkered0"
	case Checkered1:
		return "Checkered1"
	case RowStripe0:
		return "RowStripe0"
	case RowStripe1:
		return "RowStripe1"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Short returns the paper's two-letter abbreviation plus polarity.
func (p Pattern) Short() string {
	switch p {
	case Solid0:
		return "SO0"
	case Solid1:
		return "SO1"
	case ColStripe0:
		return "CS0"
	case ColStripe1:
		return "CS1"
	case Checkered0:
		return "CH0"
	case Checkered1:
		return "CH1"
	case RowStripe0:
		return "RS0"
	case RowStripe1:
		return "RS1"
	default:
		return "??"
	}
}

// ParsePattern converts a name (long or short form) to a Pattern.
func ParsePattern(s string) (Pattern, error) {
	for p := Pattern(0); p < NumPatterns; p++ {
		if s == p.String() || s == p.Short() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("faultmodel: unknown data pattern %q", s)
}

// baseByte is the byte written into even rows.
func (p Pattern) baseByte() byte {
	switch p {
	case Solid0, RowStripe0:
		return 0x00
	case Solid1, RowStripe1:
		return 0xFF
	case ColStripe0, Checkered0:
		return 0x55
	default: // ColStripe1, Checkered1
		return 0xAA
	}
}

// alternates reports whether odd rows store the inverse byte.
func (p Pattern) alternates() bool {
	switch p {
	case Checkered0, Checkered1, RowStripe0, RowStripe1:
		return true
	default:
		return false
	}
}

// RowByte returns the byte the pattern stores in the given row.
func (p Pattern) RowByte(row int) byte {
	b := p.baseByte()
	if p.alternates() && row&1 == 1 {
		b = ^b
	}
	return b
}

// Bit returns the stored value of the given bit of the given row
// (bit indices count from the row's least-significant data bit; bytes
// repeat across the row).
func (p Pattern) Bit(row, bit int) byte {
	return (p.RowByte(row) >> (uint(bit) & 7)) & 1
}

// Inverse returns the pattern with all stored bits flipped.
func (p Pattern) Inverse() Pattern {
	switch p {
	case Solid0:
		return Solid1
	case Solid1:
		return Solid0
	case ColStripe0:
		return ColStripe1
	case ColStripe1:
		return ColStripe0
	case Checkered0:
		return Checkered1
	case Checkered1:
		return Checkered0
	case RowStripe0:
		return RowStripe1
	default:
		return RowStripe0
	}
}
