package faultmodel

import (
	"fmt"
	"math"

	"repro/internal/dram"
)

// Config describes one simulated DRAM chip's geometry and RowHammer
// vulnerability. The vulnerability parameters are calibrated per DRAM
// type-node configuration and manufacturer by package chips.
type Config struct {
	Name string    // e.g. "A-LPDDR4-1y-chip03"
	Type dram.Type // DDR3, DDR4, LPDDR4
	Node string    // "old", "new", "1x", "1y"
	Mfr  string    // "A", "B", "C"

	// Geometry. RowBits counts *data* bits per row; with on-die ECC the
	// raw row additionally stores 8 parity bits per 128 data bits.
	Banks   int
	Rows    int
	RowBits int

	// HCFirst is the chip's weakest-cell hammer threshold under its
	// worst-case data pattern: the quantity Table 4 and Figure 8 report.
	// One hammer = one activation to each of the two aggressor rows.
	HCFirst float64

	// Rate150k is the target fraction of cells that flip when every row
	// is double-sided hammered with HC = 150k under the worst-case data
	// pattern; together with HCFirst it pins the power-law exponent β of
	// Observation 4. Ignored when HCFirst ≥ 150k (Beta is used directly).
	Rate150k float64

	// Beta overrides the derived power-law exponent when positive.
	Beta float64

	// Gamma controls how sharply a cell's flip probability rises around
	// its threshold: P = 1 − 2^−(E/T)^Gamma. Defaults to 24, making the
	// 10%→90% transition span only a few percent of HC — what Table 5's
	// >97% monotonicity (20 trials, 5k HC steps) implies for real cells.
	Gamma float64

	// W3 and W5 are the aggressor coupling weights at odd wordline
	// distances 3 and 5, relative to the distance-1 weight of 0.5
	// (DESIGN.md §4). Zero means no coupling at that distance; newer
	// nodes have a wider blast radius (Observation 6).
	W3, W5 float64

	// WorstPattern is the chip's worst-case data pattern (Table 3).
	// PrefBias is the probability that a vulnerable cell prefers that
	// pattern rather than a uniformly random one. Defaults to 0.55.
	WorstPattern Pattern
	PrefBias     float64

	// ClusterP is the probability that a vulnerable site grows an extra
	// cell in the same 64-bit word (geometrically, capped at 4 cells),
	// with each extra cell's threshold multiplied by a uniform draw from
	// [ClusterLo, ClusterHi]. This reproduces the multi-bit words of
	// Figures 7 and 9. Defaults: 0.25, [1.4, 2.9].
	ClusterP             float64
	ClusterLo, ClusterHi float64

	// OnDieECC routes every read through a (136,128) single-error-
	// correcting code, as in all tested LPDDR4 chips.
	OnDieECC bool

	// PairedWordlines models the Mfr B LPDDR4-1x internal remapping where
	// logical rows 2k and 2k+1 share one physical wordline.
	PairedWordlines bool

	Seed uint64
}

// Defaults used when the corresponding Config field is zero.
const (
	DefaultGamma     = 24.0
	DefaultPrefBias  = 0.55
	DefaultClusterP  = 0.25
	DefaultClusterLo = 1.4
	DefaultClusterHi = 2.9
	DefaultBeta      = 3.0

	// thresholdCutoff is the largest hammer threshold instantiated as a
	// concrete vulnerable cell. Tests sweep HC ≤ 150k; with Gamma = 6 a
	// cell needs T ≤ ~1.4×E to have non-negligible flip probability, so
	// 400k covers every observable flip with margin.
	thresholdCutoff = 400_000.0

	// w1 is the coupling weight at wordline distance 1: each aggressor
	// contributes half a hammer per activation, so a double-sided hammer
	// (one ACT to each neighbor) contributes exactly one.
	w1 = 0.5

	// refHammers converts one hammer to the paper's reporting convention.
	hcReportUnit = 1000.0
)

// normalized returns cfg with defaults applied.
func (cfg Config) normalized() Config {
	if cfg.Gamma == 0 {
		cfg.Gamma = DefaultGamma
	}
	if cfg.PrefBias == 0 {
		cfg.PrefBias = DefaultPrefBias
	}
	if cfg.ClusterP == 0 {
		cfg.ClusterP = DefaultClusterP
	}
	if cfg.ClusterLo == 0 {
		cfg.ClusterLo = DefaultClusterLo
	}
	if cfg.ClusterHi == 0 {
		cfg.ClusterHi = DefaultClusterHi
	}
	return cfg
}

// Validate reports configuration errors.
func (cfg Config) Validate() error {
	switch {
	case cfg.Banks <= 0:
		return fmt.Errorf("faultmodel: banks must be positive, got %d", cfg.Banks)
	case cfg.Rows <= 0:
		return fmt.Errorf("faultmodel: rows must be positive, got %d", cfg.Rows)
	case cfg.RowBits <= 0:
		return fmt.Errorf("faultmodel: row bits must be positive, got %d", cfg.RowBits)
	case cfg.HCFirst <= 0:
		return fmt.Errorf("faultmodel: HCFirst must be positive, got %g", cfg.HCFirst)
	case cfg.WorstPattern < 0 || cfg.WorstPattern >= NumPatterns:
		return fmt.Errorf("faultmodel: invalid worst pattern %d", int(cfg.WorstPattern))
	case cfg.OnDieECC && cfg.RowBits%128 != 0:
		return fmt.Errorf("faultmodel: on-die ECC requires row bits divisible by 128, got %d", cfg.RowBits)
	case cfg.PairedWordlines && cfg.Rows%2 != 0:
		return fmt.Errorf("faultmodel: paired wordlines require an even row count, got %d", cfg.Rows)
	}
	return nil
}

// beta returns the power-law exponent: the slope of log(#flips) vs
// log(HC) (Observation 4), derived so that a full-chip sweep at HC = 150k
// yields Rate150k flipped cells, or the explicit/default value.
func (cfg Config) beta() float64 {
	if cfg.Beta > 0 {
		return cfg.Beta
	}
	if cfg.HCFirst >= 150_000 || cfg.Rate150k <= 0 {
		return DefaultBeta
	}
	totalBits := float64(cfg.Banks) * float64(cfg.Rows) * float64(cfg.RowBits)
	b := math.Log(cfg.Rate150k*totalBits) / math.Log(150_000/cfg.HCFirst)
	if b < 1.2 {
		b = 1.2
	}
	if b > 6 {
		b = 6
	}
	return b
}

// TotalDataBits returns the chip's addressable data capacity in bits.
func (cfg Config) TotalDataBits() int64 {
	return int64(cfg.Banks) * int64(cfg.Rows) * int64(cfg.RowBits)
}
