package faultmodel

import (
	"math"
	"sort"
)

// This file exposes the chip's physical structure and cell thresholds to
// external hammer accountants (internal/attack's command-stream observer):
// queries only, no mutation of the chip's own damage state, so an observer
// can mirror the exact between-refreshes accumulation a live memory
// controller produces.

// WordlineIndex maps a logical row to its physical wordline (identity for
// ordinary chips, row/2 for paired-wordline chips).
func (c *Chip) WordlineIndex(row int) int { return c.wordlineOf(row) }

// ForEachCoupledWordline calls fn for every wordline disturbed by one
// activation of wl, with the coupling weight its accumulated damage grows
// by (0.5 at distance 1; W3/W5 at the odd far distances when configured).
func (c *Chip) ForEachCoupledWordline(wl int, fn func(neighbor int, weight float64)) {
	for _, d := range [...]int{1, 3, 5} {
		w := c.couplingWeight(d)
		if w == 0 {
			continue
		}
		if n := wl - d; n >= 0 {
			fn(n, w)
		}
		if n := wl + d; n < c.wordlines {
			fn(n, w)
		}
	}
}

// ThresholdCrossings returns the data-bit flips an accumulated damage of
// e effective hammers causes on a wordline of a bank (deterministic
// threshold crossing over the cells eligible under the currently written
// pattern, the same rule CommitFlips applies), plus the smallest eligible
// threshold strictly above e — math.Inf(1) when no further cell can ever
// flip. Callers cache the returned next-threshold so the common ACT path
// costs one float comparison. On-die ECC parity cells are skipped: the
// crossings are raw data-bit flips.
func (c *Chip) ThresholdCrossings(bank, wl int, e float64) ([]Flip, float64) {
	return c.thresholdCrossings(bank, wl, e, false)
}

// RawThresholdCrossings is ThresholdCrossings over the full raw bit array:
// on-die ECC parity cells are included, with Flip.Bit indexing raw bits
// (data in [0,RowBits), parity above). Hammer accountants for ECC chips
// track raw crossings and pass them through ObservedFromRaw to learn what
// the system sees after correction.
func (c *Chip) RawThresholdCrossings(bank, wl int, e float64) ([]Flip, float64) {
	return c.thresholdCrossings(bank, wl, e, true)
}

func (c *Chip) thresholdCrossings(bank, wl int, e float64, includeParity bool) ([]Flip, float64) {
	next := math.Inf(1)
	var flips []Flip
	for _, row := range c.rowsOnWordline(wl) {
		cells := c.rowCells(bank, row)
		for i := range cells {
			cl := &cells[i]
			if !includeParity && cl.bit >= c.cfg.RowBits {
				continue
			}
			if !c.eligible(cl, c.pattern, row) {
				continue
			}
			t := cl.effectiveThreshold(c.pattern)
			if e >= t {
				flips = append(flips, Flip{Bank: bank, Row: row, Bit: cl.bit})
			} else if t < next {
				next = t
			}
		}
	}
	sort.Slice(flips, func(i, j int) bool {
		if flips[i].Row != flips[j].Row {
			return flips[i].Row < flips[j].Row
		}
		return flips[i].Bit < flips[j].Bit
	})
	return flips, next
}
