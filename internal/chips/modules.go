package chips

import "repro/internal/dram"

// ModuleSpec is one row of the paper's module tables (Tables 7 and 8 for
// DDR4/DDR3; LPDDR4 modules are synthesized to match Table 1's census and
// Table 4's minimum HCfirst values, since the paper publishes no per-
// module LPDDR4 data).
type ModuleSpec struct {
	ID   string // e.g. "DDR4-A16-18"
	Mfr  string
	Node TypeNode

	Date     string  // manufacture date "yy-ww"; "" when the paper lists N/A
	FreqMTs  int     // data rate in MT/s
	TRCns    float64 // tRC in nanoseconds
	SizeGB   int
	Chips    int // chips on the module
	PinWidth int // x4 / x8 / x16

	// MinHCFirst is the module's published minimum HCfirst in hammers;
	// zero encodes the paper's "N/A" (no flips within the HC ≤ 150k
	// sweep).
	MinHCFirst float64

	// VulnChips bounds how many of the module's chips have
	// HCfirst ≤ 150k; -1 means all of them. Calibrated so Table 2's
	// RowHammerable fractions reproduce.
	VulnChips int
}

// Modules expands a group row of Table 7/8 (one table line can describe
// several modules) into per-module specs.
func expand(id string, count int, m ModuleSpec) []ModuleSpec {
	ms := make([]ModuleSpec, count)
	for i := range ms {
		m := m
		m.ID = id
		if count > 1 {
			m.ID = id + string(rune('a'+i))
		}
		ms[i] = m
	}
	return ms
}

// DDR4Modules returns the 110 DDR4 modules of Table 7.
func DDR4Modules() []ModuleSpec {
	var ms []ModuleSpec
	add := func(id string, count int, m ModuleSpec) { ms = append(ms, expand(id, count, m)...) }

	// Manufacturer A.
	add("DDR4-A0-15", 16, ModuleSpec{Mfr: "A", Node: DDR4Old, Date: "17-08", FreqMTs: 2133, TRCns: 47.06, SizeGB: 4, Chips: 8, PinWidth: 8, MinHCFirst: 17_500, VulnChips: -1})
	add("DDR4-A16-18", 3, ModuleSpec{Mfr: "A", Node: DDR4New, Date: "19-19", FreqMTs: 2400, TRCns: 46.16, SizeGB: 4, Chips: 4, PinWidth: 16, MinHCFirst: 12_500, VulnChips: -1})
	add("DDR4-A19-24", 6, ModuleSpec{Mfr: "A", Node: DDR4New, Date: "19-36", FreqMTs: 2666, TRCns: 46.25, SizeGB: 4, Chips: 4, PinWidth: 16, MinHCFirst: 10_000, VulnChips: -1})
	add("DDR4-A25-33", 9, ModuleSpec{Mfr: "A", Node: DDR4New, Date: "19-45", FreqMTs: 2666, TRCns: 46.25, SizeGB: 4, Chips: 4, PinWidth: 16, MinHCFirst: 10_000, VulnChips: -1})
	add("DDR4-A34-36", 3, ModuleSpec{Mfr: "A", Node: DDR4New, Date: "19-51", FreqMTs: 2133, TRCns: 46.5, SizeGB: 8, Chips: 8, PinWidth: 8, MinHCFirst: 10_000, VulnChips: -1})
	add("DDR4-A37-46", 10, ModuleSpec{Mfr: "A", Node: DDR4New, Date: "20-07", FreqMTs: 2400, TRCns: 46.16, SizeGB: 8, Chips: 8, PinWidth: 8, MinHCFirst: 12_500, VulnChips: -1})
	add("DDR4-A47-58", 12, ModuleSpec{Mfr: "A", Node: DDR4New, Date: "20-08", FreqMTs: 2133, TRCns: 46.5, SizeGB: 4, Chips: 8, PinWidth: 8, MinHCFirst: 10_000, VulnChips: -1})

	// Manufacturer B.
	add("DDR4-B0-2", 3, ModuleSpec{Mfr: "B", Node: DDR4Old, FreqMTs: 2133, TRCns: 46.5, SizeGB: 4, Chips: 8, PinWidth: 8, MinHCFirst: 30_000, VulnChips: -1})
	add("DDR4-B3-4", 2, ModuleSpec{Mfr: "B", Node: DDR4New, FreqMTs: 2133, TRCns: 46.5, SizeGB: 4, Chips: 8, PinWidth: 8, MinHCFirst: 25_000, VulnChips: -1})

	// Manufacturer C.
	add("DDR4-C0-7", 8, ModuleSpec{Mfr: "C", Node: DDR4Old, Date: "16-48", FreqMTs: 2133, TRCns: 46.5, SizeGB: 4, Chips: 8, PinWidth: 8, MinHCFirst: 147_500, VulnChips: -1})
	add("DDR4-C8-17", 10, ModuleSpec{Mfr: "C", Node: DDR4Old, Date: "17-12", FreqMTs: 2133, TRCns: 46.5, SizeGB: 4, Chips: 8, PinWidth: 8, MinHCFirst: 87_000, VulnChips: -1})
	add("DDR4-C45", 1, ModuleSpec{Mfr: "C", Node: DDR4New, Date: "19-01", FreqMTs: 2400, TRCns: 45.75, SizeGB: 8, Chips: 8, PinWidth: 8, MinHCFirst: 54_000, VulnChips: -1})
	add("DDR4-C44", 1, ModuleSpec{Mfr: "C", Node: DDR4New, Date: "19-06", FreqMTs: 2400, TRCns: 45.75, SizeGB: 8, Chips: 8, PinWidth: 8, MinHCFirst: 63_000, VulnChips: -1})
	add("DDR4-C34", 1, ModuleSpec{Mfr: "C", Node: DDR4New, Date: "19-11", FreqMTs: 2400, TRCns: 45.75, SizeGB: 4, Chips: 4, PinWidth: 16, MinHCFirst: 62_500, VulnChips: -1})
	add("DDR4-C35-36", 2, ModuleSpec{Mfr: "C", Node: DDR4New, Date: "19-23", FreqMTs: 2400, TRCns: 45.75, SizeGB: 4, Chips: 4, PinWidth: 16, MinHCFirst: 63_000, VulnChips: -1})
	add("DDR4-C37-43", 7, ModuleSpec{Mfr: "C", Node: DDR4New, Date: "19-44", FreqMTs: 2133, TRCns: 46.5, SizeGB: 8, Chips: 8, PinWidth: 8, MinHCFirst: 57_500, VulnChips: -1})
	add("DDR4-C18-27", 10, ModuleSpec{Mfr: "C", Node: DDR4New, Date: "19-48", FreqMTs: 2400, TRCns: 45.75, SizeGB: 8, Chips: 8, PinWidth: 8, MinHCFirst: 52_500, VulnChips: -1})
	add("DDR4-C28-33", 6, ModuleSpec{Mfr: "C", Node: DDR4New, FreqMTs: 2666, TRCns: 46.5, SizeGB: 4, Chips: 8, PinWidth: 4, MinHCFirst: 40_000, VulnChips: -1})

	return ms
}

// DDR3Modules returns the 60 DDR3 modules of Table 8. VulnChips values
// are calibrated so the RowHammerable chip counts of Table 2 reproduce:
// Mfr A 24 (old) and 8 (new); Mfr B 0 and 44; Mfr C 0 and 96.
func DDR3Modules() []ModuleSpec {
	var ms []ModuleSpec
	add := func(id string, count int, m ModuleSpec) { ms = append(ms, expand(id, count, m)...) }

	// Manufacturer A.
	add("DDR3-A0", 1, ModuleSpec{Mfr: "A", Node: DDR3Old, Date: "10-19", FreqMTs: 1066, TRCns: 50.625, SizeGB: 1, Chips: 8, PinWidth: 8, MinHCFirst: 155_000, VulnChips: -1})
	add("DDR3-A1", 1, ModuleSpec{Mfr: "A", Node: DDR3Old, Date: "10-40", FreqMTs: 1333, TRCns: 49.5, SizeGB: 2, Chips: 8, PinWidth: 8})
	add("DDR3-A2-6", 5, ModuleSpec{Mfr: "A", Node: DDR3Old, Date: "12-11", FreqMTs: 1866, TRCns: 47.91, SizeGB: 2, Chips: 8, PinWidth: 8, MinHCFirst: 156_000, VulnChips: -1})
	add("DDR3-A7-9", 3, ModuleSpec{Mfr: "A", Node: DDR3Old, Date: "12-32", FreqMTs: 1600, TRCns: 48.75, SizeGB: 2, Chips: 8, PinWidth: 8, MinHCFirst: 69_200, VulnChips: -1})
	// Mfr A DDR3-new: only 8 of these chips flip below 150k (Table 2);
	// the first module contributes two, the rest one each.
	add("DDR3-A10", 1, ModuleSpec{Mfr: "A", Node: DDR3New, Date: "14-16", FreqMTs: 1600, TRCns: 48.75, SizeGB: 4, Chips: 8, PinWidth: 8, MinHCFirst: 85_000, VulnChips: 2})
	add("DDR3-A11-16", 6, ModuleSpec{Mfr: "A", Node: DDR3New, Date: "14-16", FreqMTs: 1600, TRCns: 48.75, SizeGB: 4, Chips: 8, PinWidth: 8, MinHCFirst: 85_000, VulnChips: 1})
	add("DDR3-A17-18", 2, ModuleSpec{Mfr: "A", Node: DDR3New, Date: "14-26", FreqMTs: 1600, TRCns: 48.75, SizeGB: 2, Chips: 4, PinWidth: 16, MinHCFirst: 160_000, VulnChips: 0})
	add("DDR3-A19", 1, ModuleSpec{Mfr: "A", Node: DDR3New, Date: "15-23", FreqMTs: 1600, TRCns: 48.75, SizeGB: 8, Chips: 16, PinWidth: 4, MinHCFirst: 155_000, VulnChips: 1})

	// Manufacturer B.
	add("DDR3-B0-1", 2, ModuleSpec{Mfr: "B", Node: DDR3Old, Date: "10-48", FreqMTs: 1333, TRCns: 49.5, SizeGB: 1, Chips: 8, PinWidth: 8})
	add("DDR3-B2-4", 3, ModuleSpec{Mfr: "B", Node: DDR3Old, Date: "11-42", FreqMTs: 1333, TRCns: 49.5, SizeGB: 2, Chips: 8, PinWidth: 8})
	add("DDR3-B5-6", 2, ModuleSpec{Mfr: "B", Node: DDR3Old, Date: "12-24", FreqMTs: 1600, TRCns: 48.75, SizeGB: 2, Chips: 8, PinWidth: 8, MinHCFirst: 157_000, VulnChips: -1})
	add("DDR3-B7-10", 4, ModuleSpec{Mfr: "B", Node: DDR3Old, Date: "13-51", FreqMTs: 1600, TRCns: 48.75, SizeGB: 4, Chips: 8, PinWidth: 8})
	// Mfr B DDR3-new: 44 of 52 chips are RowHammerable (Table 2).
	add("DDR3-B11-14", 4, ModuleSpec{Mfr: "B", Node: DDR3New, Date: "15-22", FreqMTs: 1600, TRCns: 50.625, SizeGB: 4, Chips: 8, PinWidth: 8, MinHCFirst: 33_500, VulnChips: 6})
	add("DDR3-B15-19", 5, ModuleSpec{Mfr: "B", Node: DDR3New, Date: "15-25", FreqMTs: 1600, TRCns: 48.75, SizeGB: 2, Chips: 4, PinWidth: 16, MinHCFirst: 22_400, VulnChips: -1})

	// Manufacturer C.
	add("DDR3-C0-6", 7, ModuleSpec{Mfr: "C", Node: DDR3Old, Date: "10-43", FreqMTs: 1333, TRCns: 49.125, SizeGB: 1, Chips: 4, PinWidth: 16, MinHCFirst: 155_000, VulnChips: -1})
	// Mfr C DDR3-new: 96 of 104 chips are RowHammerable (Table 2).
	add("DDR3-C7", 1, ModuleSpec{Mfr: "C", Node: DDR3New, Date: "15-04", FreqMTs: 1600, TRCns: 48.75, SizeGB: 4, Chips: 8, PinWidth: 8})
	add("DDR3-C8-12", 5, ModuleSpec{Mfr: "C", Node: DDR3New, Date: "15-46", FreqMTs: 1600, TRCns: 48.75, SizeGB: 2, Chips: 8, PinWidth: 8, MinHCFirst: 33_500, VulnChips: -1})
	add("DDR3-C13-19", 7, ModuleSpec{Mfr: "C", Node: DDR3New, Date: "17-03", FreqMTs: 1600, TRCns: 48.75, SizeGB: 4, Chips: 8, PinWidth: 8, MinHCFirst: 24_000, VulnChips: -1})

	return ms
}

// LPDDR4Modules returns 130 synthesized LPDDR4 modules matching Table 1's
// census (1x: 3×A, 45×B; 1y: 46×A, 36×C; 4 chips per module) and Table
// 4's per-configuration minimum HCfirst.
func LPDDR4Modules() []ModuleSpec {
	var ms []ModuleSpec
	add := func(id string, count int, m ModuleSpec) { ms = append(ms, expand(id, count, m)...) }

	spread := func(base float64, i, n int) float64 {
		// The weakest module carries the published minimum; later modules
		// step upward deterministically across a ~3x range.
		if i == 0 {
			return base
		}
		return base * (1 + 2.2*float64(i)/float64(n))
	}
	group := func(prefix, mfr string, node TypeNode, count int, minHC float64) {
		for i := 0; i < count; i++ {
			add(prefix+itoa2(i), 1, ModuleSpec{
				Mfr: mfr, Node: node, FreqMTs: 3200, TRCns: 60, SizeGB: 2,
				Chips: 4, PinWidth: 16,
				MinHCFirst: spread(minHC, i, count), VulnChips: -1,
			})
		}
	}
	group("LP4X-A", "A", LPDDR4x, 3, 43_200)
	group("LP4X-B", "B", LPDDR4x, 45, 16_800)
	group("LP4Y-A", "A", LPDDR4y, 46, 4_800)
	group("LP4Y-C", "C", LPDDR4y, 36, 9_600)
	return ms
}

func itoa2(i int) string {
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// AllModules returns the full 300-module population.
func AllModules() []ModuleSpec {
	var ms []ModuleSpec
	ms = append(ms, DDR3Modules()...)
	ms = append(ms, DDR4Modules()...)
	ms = append(ms, LPDDR4Modules()...)
	return ms
}

// Timing returns the DRAM timing parameters appropriate for the module's
// type, sized for the given rows per bank.
func (m ModuleSpec) Timing(rowsPerBank int) dram.Timing {
	return dram.TimingFor(m.Node.Type, rowsPerBank)
}
