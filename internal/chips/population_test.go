package chips

import (
	"testing"

	"repro/internal/faultmodel"
)

func TestModuleCounts(t *testing.T) {
	if got := len(DDR4Modules()); got != 110 {
		t.Errorf("DDR4 modules = %d, want 110 (Table 7)", got)
	}
	if got := len(DDR3Modules()); got != 60 {
		t.Errorf("DDR3 modules = %d, want 60 (Table 8)", got)
	}
	if got := len(LPDDR4Modules()); got != 130 {
		t.Errorf("LPDDR4 modules = %d, want 130 (Table 1)", got)
	}
	if got := len(AllModules()); got != 300 {
		t.Errorf("total modules = %d, want 300", got)
	}
}

func TestModuleIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range AllModules() {
		if seen[m.ID] {
			t.Errorf("duplicate module id %q", m.ID)
		}
		seen[m.ID] = true
	}
}

func TestChipCountsPerType(t *testing.T) {
	count := func(ms []ModuleSpec) int {
		n := 0
		for _, m := range ms {
			n += m.Chips
		}
		return n
	}
	// Tables 7/8 chip sums; LPDDR4 matches Table 1 exactly (520). Note
	// the paper's own Table 1 (408 DDR3 chips) does not reconcile with
	// its appendix Table 8 (432 = sum of modules × chips); we encode the
	// appendix, which is the per-module source of truth.
	if got := count(DDR3Modules()); got != 432 {
		t.Errorf("DDR3 chips = %d, want 432 (Table 8 sum)", got)
	}
	if got := count(LPDDR4Modules()); got != 520 {
		t.Errorf("LPDDR4 chips = %d, want 520", got)
	}
}

func TestPaperHCFirstTable4(t *testing.T) {
	cases := []struct {
		tn   TypeNode
		mfr  string
		want float64
	}{
		{DDR3Old, "A", 69_200},
		{DDR3New, "B", 22_400},
		{DDR4Old, "A", 17_500},
		{DDR4New, "A", 10_000},
		{LPDDR4x, "B", 16_800},
		{LPDDR4y, "A", 4_800},
		{LPDDR4y, "C", 9_600},
	}
	for _, c := range cases {
		got, ok := PaperHCFirst(c.tn, c.mfr)
		if !ok || got != c.want {
			t.Errorf("PaperHCFirst(%v,%s) = %v,%v want %v", c.tn, c.mfr, got, ok, c.want)
		}
	}
	if _, ok := PaperHCFirst(LPDDR4x, "C"); ok {
		t.Error("LPDDR4-1x Mfr C should be missing (Section 4.2)")
	}
	if _, ok := PaperHCFirst(LPDDR4y, "B"); ok {
		t.Error("LPDDR4-1y Mfr B should be missing (Section 4.2)")
	}
}

func TestModuleMinimaMatchTable4(t *testing.T) {
	// The per-configuration minimum over module minima must equal the
	// published Table 4 value.
	min := map[TypeNode]map[string]float64{}
	for _, m := range AllModules() {
		if m.MinHCFirst == 0 {
			continue
		}
		if min[m.Node] == nil {
			min[m.Node] = map[string]float64{}
		}
		cur, ok := min[m.Node][m.Mfr]
		if !ok || m.MinHCFirst < cur {
			min[m.Node][m.Mfr] = m.MinHCFirst
		}
	}
	for _, tn := range TypeNodes {
		for _, mfr := range Manufacturers {
			want, ok := PaperHCFirst(tn, mfr)
			if !ok {
				continue
			}
			got, ok := min[tn][mfr]
			if !ok {
				t.Errorf("%v/%s: no module minimum", tn, mfr)
				continue
			}
			if got != want {
				t.Errorf("%v/%s: module minimum %v, Table 4 says %v", tn, mfr, got, want)
			}
		}
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a := NewPopulation(AllModules(), ScaleTiny, 9)
	b := NewPopulation(AllModules(), ScaleTiny, 9)
	if len(a.Chips) != len(b.Chips) {
		t.Fatal("chip counts differ")
	}
	for i := range a.Chips {
		if a.Chips[i] != b.Chips[i] {
			t.Fatalf("chip %d differs", i)
		}
	}
}

func TestPopulationFirstChipCarriesModuleMin(t *testing.T) {
	pop := NewPopulation(DDR4Modules(), Scale{Banks: 1, Rows: 256, RowBits: 1024}, 3)
	byModule := map[string][]ChipSpec{}
	for _, c := range pop.Chips {
		byModule[c.Module] = append(byModule[c.Module], c)
	}
	for _, m := range DDR4Modules() {
		chips := byModule[m.ID]
		if len(chips) != m.Chips {
			t.Fatalf("module %s has %d chips, want %d", m.ID, len(chips), m.Chips)
		}
		if m.MinHCFirst > 0 && chips[0].HCFirst != m.MinHCFirst {
			t.Errorf("module %s first chip HCfirst %v, want %v", m.ID, chips[0].HCFirst, m.MinHCFirst)
		}
		for _, c := range chips {
			if m.MinHCFirst > 0 && c.HCFirst < m.MinHCFirst {
				t.Errorf("chip %s below module minimum", c.Name)
			}
		}
	}
}

func TestSpecRowHammerableMatchesTable2(t *testing.T) {
	counts := SpecRowHammerable(AllModules(), 1)
	want := map[TypeNode]map[string][2]int{
		DDR3Old: {"A": {24, 80}, "B": {0, 88}, "C": {0, 28}},
		DDR3New: {"A": {8, 80}, "B": {44, 52}, "C": {96, 104}},
	}
	for tn, byMfr := range want {
		for mfr, w := range byMfr {
			got := counts[tn][mfr]
			if got != w {
				t.Errorf("%v/%s = %v, want %v", tn, mfr, got, w)
			}
		}
	}
	// All DDR4 and LPDDR4 chips are RowHammerable (Section 5.1).
	for _, tn := range []TypeNode{DDR4Old, DDR4New, LPDDR4x, LPDDR4y} {
		for mfr, v := range counts[tn] {
			if v[0] != v[1] {
				t.Errorf("%v/%s: %d of %d RowHammerable, want all", tn, mfr, v[0], v[1])
			}
		}
	}
}

func TestInstantiateAppliesCalibration(t *testing.T) {
	pop := NewPopulation(LPDDR4Modules(), ScaleTiny, 5)
	var bSpec, aSpec *ChipSpec
	for i := range pop.Chips {
		c := &pop.Chips[i]
		if c.Node == LPDDR4x && c.Mfr == "B" && bSpec == nil {
			bSpec = c
		}
		if c.Node == LPDDR4y && c.Mfr == "A" && aSpec == nil {
			aSpec = c
		}
	}
	if bSpec == nil || aSpec == nil {
		t.Fatal("missing LPDDR4 specs")
	}
	bChip, err := pop.Instantiate(*bSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !bChip.Config().PairedWordlines {
		t.Error("Mfr B LPDDR4-1x must use paired wordlines")
	}
	if !bChip.Config().OnDieECC {
		t.Error("LPDDR4 must have on-die ECC")
	}
	aChip, err := pop.Instantiate(*aSpec)
	if err != nil {
		t.Fatal(err)
	}
	if aChip.Config().PairedWordlines {
		t.Error("Mfr A chips must not use paired wordlines")
	}
	if aChip.Config().WorstPattern != faultmodel.RowStripe1 {
		t.Errorf("LPDDR4-1y worst pattern = %v, want RowStripe1 (Table 3)",
			aChip.Config().WorstPattern)
	}
	if aChip.BlastRadius() != 5 {
		t.Errorf("LPDDR4-1y blast radius = %d, want 5 (Figure 6)", aChip.BlastRadius())
	}
}

func TestCensusMatchesTable1Structure(t *testing.T) {
	pop := NewPopulation(AllModules(), ScaleTiny, 1)
	census := pop.Census()
	byKey := map[string]CensusRow{}
	for _, r := range census {
		byKey[r.Node.String()+r.Mfr] = r
	}
	// Spot-check Table 1 cells that map 1:1 onto Tables 7/8.
	if r := byKey["DDR4-old"+"A"]; r.Modules != 16 {
		t.Errorf("DDR4-old A modules = %d, want 16", r.Modules)
	}
	if r := byKey["LPDDR4-1y"+"A"]; r.Chips != 184 || r.Modules != 46 {
		t.Errorf("LPDDR4-1y A = %d (%d), want 184 (46)", r.Chips, r.Modules)
	}
	if r := byKey["LPDDR4-1x"+"B"]; r.Chips != 180 || r.Modules != 45 {
		t.Errorf("LPDDR4-1x B = %d (%d), want 180 (45)", r.Chips, r.Modules)
	}
}
