package chips

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/faultmodel"
	"repro/internal/stats"
)

// ChipSpec describes one chip of the population: which module it sits on
// and its ground-truth weakest-cell hammer count. Instantiating the spec
// yields a faultmodel.Chip whose measured HCfirst reproduces it.
type ChipSpec struct {
	Name   string
	Module string
	Mfr    string
	Node   TypeNode

	// HCFirst is the chip's weakest-cell threshold in hammers. Values
	// above 150k make the chip "not RowHammerable" in the paper's sweep.
	HCFirst float64

	Seed uint64
}

// RowHammerable reports whether the chip flips within the paper's
// HC ≤ 150k sweep (Section 5.1).
func (cs ChipSpec) RowHammerable() bool { return cs.HCFirst <= 150_000 }

// Scale sets the geometry used when instantiating chips and how many
// chips per module to instantiate. Real chips (16k+ rows, 8 KiB rows)
// make full-population characterization take CPU-hours; the paper's
// statistics are rate-based, so smaller arrays preserve every shape.
type Scale struct {
	Banks   int
	Rows    int
	RowBits int // data bits per row
	// ChipsPerModule caps instantiated chips per module; 0 means all.
	ChipsPerModule int
}

// Predefined scales. Tiny is for unit tests, Small for quick CLI runs,
// Medium for the benchmark harness, Full for overnight-style runs.
var (
	ScaleTiny   = Scale{Banks: 1, Rows: 256, RowBits: 1024, ChipsPerModule: 1}
	ScaleSmall  = Scale{Banks: 1, Rows: 512, RowBits: 2048, ChipsPerModule: 1}
	ScaleMedium = Scale{Banks: 1, Rows: 2048, RowBits: 4096, ChipsPerModule: 2}
	ScaleFull   = Scale{Banks: 1, Rows: 8192, RowBits: 8192}
)

// Population is the set of chips generated from a module list. Chip specs
// are cheap; the backing faultmodel.Chip is built on demand via
// Instantiate so experiments can stream through chips one at a time.
type Population struct {
	Modules []ModuleSpec
	Chips   []ChipSpec
	Scale   Scale
}

// NewPopulation samples the per-chip HCfirst values of every module
// deterministically from seed. ChipsPerModule from the scale limits how
// many chips per module enter the population (the first chip always
// carries the module's published minimum HCfirst).
func NewPopulation(modules []ModuleSpec, scale Scale, seed uint64) *Population {
	p := &Population{Modules: modules, Scale: scale}
	rng := stats.NewRNG(seed)
	for _, m := range modules {
		mrng := rng.Fork()
		limit := m.Chips
		if scale.ChipsPerModule > 0 && scale.ChipsPerModule < limit {
			limit = scale.ChipsPerModule
		}
		for i := 0; i < limit; i++ {
			hc := sampleChipHCFirst(m, i, mrng)
			p.Chips = append(p.Chips, ChipSpec{
				Name:    fmt.Sprintf("%s-chip%02d", m.ID, i),
				Module:  m.ID,
				Mfr:     m.Mfr,
				Node:    m.Node,
				HCFirst: hc,
				Seed:    mrng.Uint64(),
			})
		}
	}
	return p
}

// sampleChipHCFirst draws chip i's weakest-cell hammer count for module m.
func sampleChipHCFirst(m ModuleSpec, i int, rng *stats.RNG) float64 {
	if m.MinHCFirst == 0 {
		// "N/A" module: no flips observed within the sweep.
		return rng.Range(320_000, 600_000)
	}
	if i == 0 {
		return m.MinHCFirst
	}
	vulnerable := m.VulnChips == -1 || i < m.VulnChips
	if !vulnerable {
		return rng.Range(200_000, 400_000)
	}
	u := rng.Float64()
	u = u * u // bias chips toward the module minimum
	if m.MinHCFirst >= 150_000 {
		return m.MinHCFirst * (1 + 0.5*u)
	}
	f := 150_000/m.MinHCFirst - 1
	if f > 1.2 {
		f = 1.2
	}
	return m.MinHCFirst * (1 + f*u)
}

// Instantiate builds the fault-model chip for a spec at the population's
// scale.
func (p *Population) Instantiate(cs ChipSpec) (*faultmodel.Chip, error) {
	cal := calibration(cs.Node, cs.Mfr)
	cfg := faultmodel.Config{
		Name:            cs.Name,
		Type:            cs.Node.Type,
		Node:            cs.Node.Node,
		Mfr:             cs.Mfr,
		Banks:           p.Scale.Banks,
		Rows:            p.Scale.Rows,
		RowBits:         p.Scale.RowBits,
		HCFirst:         cs.HCFirst,
		Rate150k:        cal.rate150k,
		W3:              cal.w3,
		W5:              cal.w5,
		WorstPattern:    cal.worst,
		ClusterP:        cal.clusterP,
		OnDieECC:        cs.Node.Type == dram.LPDDR4,
		PairedWordlines: cs.Node == LPDDR4x && cs.Mfr == "B",
		Seed:            cs.Seed,
	}
	return faultmodel.NewChip(cfg)
}

// ChipsOf returns the population's chips for one configuration.
func (p *Population) ChipsOf(tn TypeNode, mfr string) []ChipSpec {
	var out []ChipSpec
	for _, c := range p.Chips {
		if c.Node == tn && c.Mfr == mfr {
			out = append(out, c)
		}
	}
	return out
}

// CensusRow is one cell of Table 1: chips (modules) of a configuration.
type CensusRow struct {
	Node    TypeNode
	Mfr     string
	Chips   int
	Modules int
}

// Census tabulates the full module list (Table 1), independent of the
// ChipsPerModule instantiation cap.
func (p *Population) Census() []CensusRow {
	idx := make(map[TypeNode]map[string]*CensusRow)
	for _, m := range p.Modules {
		byMfr, ok := idx[m.Node]
		if !ok {
			byMfr = make(map[string]*CensusRow)
			idx[m.Node] = byMfr
		}
		row, ok := byMfr[m.Mfr]
		if !ok {
			row = &CensusRow{Node: m.Node, Mfr: m.Mfr}
			byMfr[m.Mfr] = row
		}
		row.Modules++
		row.Chips += m.Chips
	}
	var rows []CensusRow
	for _, tn := range TypeNodes {
		for _, mfr := range Manufacturers {
			if r, ok := idx[tn][mfr]; ok {
				rows = append(rows, *r)
			}
		}
	}
	return rows
}

// SpecRowHammerable tabulates, per configuration, how many chips of the
// *full* module list have HCfirst ≤ 150k (the ground truth behind Table
// 2). It samples every chip of every module regardless of the
// instantiation cap, using the same deterministic draws as NewPopulation.
func SpecRowHammerable(modules []ModuleSpec, seed uint64) map[TypeNode]map[string][2]int {
	full := NewPopulation(modules, Scale{Banks: 1, Rows: 256, RowBits: 1024}, seed)
	out := make(map[TypeNode]map[string][2]int)
	for _, c := range full.Chips {
		byMfr, ok := out[c.Node]
		if !ok {
			byMfr = make(map[string][2]int)
			out[c.Node] = byMfr
		}
		v := byMfr[c.Mfr]
		if c.RowHammerable() {
			v[0]++
		}
		v[1]++
		byMfr[c.Mfr] = v
	}
	return out
}
