// Package chips encodes the paper's DRAM chip population: the 300 modules
// / 1580 chips of Tables 1, 7 and 8, the per-configuration RowHammer
// calibration of Tables 2, 3 and 4, and constructors that turn population
// entries into faultmodel chips at a chosen geometry scale.
package chips

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/faultmodel"
)

// TypeNode is a DRAM type-node configuration, the paper's primary
// independent variable (e.g. "DDR4-new", "LPDDR4-1y").
type TypeNode struct {
	Type dram.Type
	Node string // "old", "new", "1x", "1y"
}

func (tn TypeNode) String() string { return fmt.Sprintf("%v-%s", tn.Type, tn.Node) }

// The ten type-node configurations of Table 1, in the paper's age order.
var (
	DDR3Old   = TypeNode{dram.DDR3, "old"}
	DDR3New   = TypeNode{dram.DDR3, "new"}
	DDR4Old   = TypeNode{dram.DDR4, "old"}
	DDR4New   = TypeNode{dram.DDR4, "new"}
	LPDDR4x   = TypeNode{dram.LPDDR4, "1x"}
	LPDDR4y   = TypeNode{dram.LPDDR4, "1y"}
	TypeNodes = []TypeNode{DDR3Old, DDR3New, DDR4Old, DDR4New, LPDDR4x, LPDDR4y}
)

// Manufacturers lists the three anonymized DRAM manufacturers.
var Manufacturers = []string{"A", "B", "C"}

// nodeCalibration holds the per-(type-node, manufacturer) RowHammer
// behaviour calibrated from the paper's characterization results.
type nodeCalibration struct {
	// rate150k: chip-level flip rate at HC=150k under the worst-case
	// pattern (Figure 5's order of magnitude; Section 5.1's flip counts).
	rate150k float64
	// w3, w5: coupling at wordline distances 3 and 5 (Figure 6's blast
	// radius: DDR3/DDR4 ±2 rows, LPDDR4-1x ±4, LPDDR4-1y ±6).
	w3, w5 float64
	// worst: the worst-case data pattern of Table 3.
	worst faultmodel.Pattern
	// clusterP: probability of same-word multi-cell sites (Figures 7, 9).
	clusterP float64
}

// calibration returns the fault-model calibration for a configuration.
// Entries the paper marks "N/A"/"Not enough flips" fall back to the
// type-node's sibling behaviour with a Checkered0 worst pattern.
func calibration(tn TypeNode, mfr string) nodeCalibration {
	cal := nodeCalibration{worst: faultmodel.Checkered0, clusterP: 0.20}
	switch tn {
	case DDR3Old:
		cal.rate150k = 1e-8
	case DDR3New:
		switch mfr {
		case "A":
			// Mfr A DDR3-new chips show <20 flips on average at HC=150k
			// (Section 5.1), orders of magnitude below Mfrs B and C.
			cal.rate150k = 1e-9
		default:
			// Mfrs B and C DDR3-new average 87k flips per chip at
			// HC=150k on multi-gigabit devices: ≈2e-5 of all cells.
			cal.rate150k = 2e-5
			cal.worst = faultmodel.Checkered0
		}
	case DDR4Old:
		cal.rate150k = 1e-5
		switch mfr {
		case "C":
			cal.worst = faultmodel.RowStripe0
		default:
			cal.worst = faultmodel.RowStripe1
		}
	case DDR4New:
		cal.rate150k = 5e-5
		switch mfr {
		case "C":
			cal.worst = faultmodel.Checkered1
		default:
			cal.worst = faultmodel.RowStripe0
		}
	case LPDDR4x:
		cal.rate150k = 1e-4
		cal.w3 = 0.10
		cal.clusterP = 0.35
		switch mfr {
		case "A":
			cal.worst = faultmodel.Checkered1
		default:
			cal.worst = faultmodel.Checkered0
		}
	case LPDDR4y:
		cal.rate150k = 3e-4
		cal.w3 = 0.12
		cal.w5 = 0.05
		cal.clusterP = 0.35
		cal.worst = faultmodel.RowStripe1
	}
	return cal
}

// WorstPattern returns the Table 3 worst-case data pattern for a
// configuration (our calibration input, which Table 3's experiment must
// rediscover by sweeping patterns).
func WorstPattern(tn TypeNode, mfr string) faultmodel.Pattern {
	return calibration(tn, mfr).worst
}

// PaperHCFirst returns Table 4: the lowest HCfirst (in hammers) the paper
// measured across all chips of the configuration, and false where the
// paper has no chips of that configuration.
func PaperHCFirst(tn TypeNode, mfr string) (float64, bool) {
	v := map[TypeNode]map[string]float64{
		DDR3Old: {"A": 69_200, "B": 157_000, "C": 155_000},
		DDR3New: {"A": 85_000, "B": 22_400, "C": 24_000},
		DDR4Old: {"A": 17_500, "B": 30_000, "C": 87_000},
		DDR4New: {"A": 10_000, "B": 25_000, "C": 40_000},
		LPDDR4x: {"A": 43_200, "B": 16_800},
		LPDDR4y: {"A": 4_800, "C": 9_600},
	}
	hc, ok := v[tn][mfr]
	return hc, ok
}

// HasConfiguration reports whether the paper has chips for the
// (type-node, manufacturer) pair; LPDDR4-1x Mfr C and LPDDR4-1y Mfr B are
// missing (Section 4.2).
func HasConfiguration(tn TypeNode, mfr string) bool {
	_, ok := PaperHCFirst(tn, mfr)
	return ok
}
