package memctrl

import "repro/internal/dram"

// request is one queued demand access. Requests live on three intrusive
// doubly-linked lists at once:
//
//   - the queue list (qnext/qprev): every request of the read or write
//     queue in arrival order — the order the reference FR-FCFS scan
//     walks;
//   - the bank list (bnext/bprev): the queue's requests targeting one
//     bank, in arrival order;
//   - the hit chain (hnext/hprev): the bank-list subset targeting the
//     bank's currently open row, in arrival order — the incrementally
//     maintained first-ready (row hit) candidates.
//
// seq is the global arrival counter; comparing seq across banks
// reproduces the flat queue order without walking it.
type request struct {
	addr   dram.Address
	req    int // requester (source/thread) ID; RequesterNone when unknown
	write  bool
	onDone func()
	queued int64

	seq          uint64
	qnext, qprev *request
	bnext, bprev *request
	hnext, hprev *request
	inHit        bool
}

// bankBucket indexes one bank's slice of a queue: its FIFO of requests
// and the chain of requests hitting the bank's open row.
type bankBucket struct {
	head, tail *request
	n          int

	hitHead, hitTail *request
	hitN             int
}

// reqQueue is a demand queue (read or write) as a linked arrival-order
// list plus per-bank buckets. The global list is authoritative for
// scheduling order; the buckets make per-cycle candidate selection
// O(banks) instead of O(queue).
type reqQueue struct {
	head, tail *request
	n          int
	seq        uint64 // next arrival stamp
	banks      []bankBucket
	hitMask    uint64 // bit per bank with a non-empty hit chain (banks < 64)
}

func (q *reqQueue) init(banks int) {
	q.banks = make([]bankBucket, banks)
}

// push appends r (arrival order) and indexes it under its bank; openRow
// is the bank's currently open row so the hit chain stays complete.
//
//rhlint:hotpath
func (q *reqQueue) push(r *request, openRow int) {
	r.seq = q.seq
	q.seq++
	if q.tail == nil {
		q.head, q.tail = r, r
	} else {
		r.qprev = q.tail
		q.tail.qnext = r
		q.tail = r
	}
	q.n++
	b := &q.banks[r.addr.Bank]
	if b.tail == nil {
		b.head, b.tail = r, r
	} else {
		r.bprev = b.tail
		b.tail.bnext = r
		b.tail = r
	}
	b.n++
	if openRow == r.addr.Row {
		b.hitAppend(r)
		q.hitMask |= 1 << uint(r.addr.Bank)
	}
}

// remove unlinks r from the queue, its bank bucket, and the hit chain.
//
//rhlint:hotpath
func (q *reqQueue) remove(r *request) {
	if r.qprev != nil {
		r.qprev.qnext = r.qnext
	} else {
		q.head = r.qnext
	}
	if r.qnext != nil {
		r.qnext.qprev = r.qprev
	} else {
		q.tail = r.qprev
	}
	r.qnext, r.qprev = nil, nil
	q.n--

	b := &q.banks[r.addr.Bank]
	if r.bprev != nil {
		r.bprev.bnext = r.bnext
	} else {
		b.head = r.bnext
	}
	if r.bnext != nil {
		r.bnext.bprev = r.bprev
	} else {
		b.tail = r.bprev
	}
	r.bnext, r.bprev = nil, nil
	b.n--

	if r.inHit {
		b.hitRemove(r)
		if b.hitN == 0 {
			q.hitMask &^= 1 << uint(r.addr.Bank)
		}
	}
}

// bankRowChanged rebuilds the bank's hit chain after an ACT or PRE
// changed its open row (-1 when precharged). Row transitions are
// tRC-paced, so the O(bank depth) walk is off the per-cycle path.
//
//rhlint:hotpath
func (q *reqQueue) bankRowChanged(bank, openRow int) {
	b := &q.banks[bank]
	for r := b.hitHead; r != nil; {
		next := r.hnext
		r.hnext, r.hprev = nil, nil
		r.inHit = false
		r = next
	}
	b.hitHead, b.hitTail = nil, nil
	b.hitN = 0
	q.hitMask &^= 1 << uint(bank)
	if openRow < 0 {
		return
	}
	for r := b.head; r != nil; r = r.bnext {
		if r.addr.Row == openRow {
			b.hitAppend(r)
		}
	}
	if b.hitN > 0 {
		q.hitMask |= 1 << uint(bank)
	}
}

//rhlint:hotpath
func (b *bankBucket) hitAppend(r *request) {
	if b.hitTail == nil {
		b.hitHead, b.hitTail = r, r
	} else {
		r.hprev = b.hitTail
		b.hitTail.hnext = r
		b.hitTail = r
	}
	r.inHit = true
	b.hitN++
}

//rhlint:hotpath
func (b *bankBucket) hitRemove(r *request) {
	if r.hprev != nil {
		r.hprev.hnext = r.hnext
	} else {
		b.hitHead = r.hnext
	}
	if r.hnext != nil {
		r.hnext.hprev = r.hprev
	} else {
		b.hitTail = r.hprev
	}
	r.hnext, r.hprev = nil, nil
	r.inHit = false
	b.hitN--
}
