package memctrl

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/mitigation"
)

// This file certifies the indexed scheduler (queue.go buckets, hit
// chains, dense BLISS state) against the kept reference scans
// (reference.go): two controllers with identical configuration and
// identical mechanism state are driven in lockstep through randomized
// request streams, and every externally visible behaviour must match
// bit-for-bit — enqueue admission, the full ACT/REF command stream,
// read completion order, NextWork bounds, and final Stats.
//
// The mechanisms are deliberately stateful (PRNG-driven throttling,
// victim refreshes): any divergence in the *sequence* of mechanism
// calls between the two scan implementations desynchronizes the PRNGs
// and snowballs into a visible command-stream mismatch, so call parity
// is certified too, not just outcome parity.

// eqMech is a stateful mechanism exercising every controller hook:
// random victim refreshes (mitigation queue pressure), random ACT
// throttling, and random admission denial.
type eqMech struct {
	mitigation.None
	rng *rand.Rand
}

func (m *eqMech) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int {
	if !fromMitigation && m.rng.Intn(8) == 0 {
		return []int{row - 1, row + 1}
	}
	return nil
}

func (m *eqMech) ActAllowed(requester, bank, row int, cycle int64) bool {
	return m.rng.Intn(16) != 0
}

func (m *eqMech) AdmitRequest(requester, bank, row int, queueLoad float64, cycle int64) bool {
	return m.rng.Intn(12) != 0
}

func (m *eqMech) OnRequesterACT(requester, bank, row int, cycle int64) {}

// eqLog captures one controller's externally visible activity.
type eqLog struct {
	cmds []string // ACT/REF stream with coordinates and cycles
	done []int    // completed read indices, in completion order
}

type eqController struct {
	ctrl *Controller
	log  eqLog
}

func newEqController(t *testing.T, cfg Config, mechSeed int64, mech string, ref bool) *eqController {
	t.Helper()
	geo := dram.Table6Geometry()
	ch, err := dram.NewChannel(geo, dram.DDR4_2400(geo.Rows))
	if err != nil {
		t.Fatal(err)
	}
	var m mitigation.Mechanism
	switch mech {
	case "none":
		m = mitigation.NewNone()
	case "hammer":
		m = &hammerMech{}
	case "throttle":
		m = &eqMech{rng: rand.New(rand.NewSource(mechSeed))}
	default:
		t.Fatalf("unknown mechanism %q", mech)
	}
	ctrl, err := New(cfg, ch, m)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.refScan = ref
	ec := &eqController{ctrl: ctrl}
	ctrl.OnACT(func(rank, bank, row int, cycle int64) {
		ec.log.cmds = append(ec.log.cmds, fmt.Sprintf("ACT %d %d %d @%d", rank, bank, row, cycle))
	})
	ctrl.OnRefresh(func(rank, bank, rowStart, rowCount int, cycle int64) {
		ec.log.cmds = append(ec.log.cmds, fmt.Sprintf("REF %d %d %d+%d @%d", rank, bank, rowStart, rowCount, cycle))
	})
	return ec
}

// runEquivalence drives an indexed and a reference controller in
// lockstep for steps randomized operations and asserts identical
// behaviour throughout.
func runEquivalence(t *testing.T, cfg Config, mech string, seed int64, steps int) {
	t.Helper()
	idx := newEqController(t, cfg, seed*31+7, mech, false)
	ref := newEqController(t, cfg, seed*31+7, mech, true)

	geo := dram.Table6Geometry()
	mapper, err := dram.NewAddressMapper(geo)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	banks := geo.Banks()
	// A small hot row set concentrates traffic so row-hit chains,
	// starvation preemption, and BLISS streaks all trigger.
	hotRows := []int{100, 101, 102, 103, 200, 201}

	randomAddr := func() int64 {
		row := hotRows[rng.Intn(len(hotRows))]
		if rng.Intn(4) == 0 {
			row = 10 + rng.Intn(500)
		}
		return mapper.AddressOf(dram.Address{
			Bank: rng.Intn(banks),
			Row:  row,
			Col:  rng.Intn(64),
		})
	}

	for i := 0; i < steps; i++ {
		switch op := rng.Intn(100); {
		case op < 50: // enqueue a read on both
			req := rng.Intn(8) - 1 // occasionally RequesterNone
			addr := randomAddr()
			id := i
			a1 := idx.ctrl.EnqueueRead(req, addr, func() { idx.log.done = append(idx.log.done, id) })
			a2 := ref.ctrl.EnqueueRead(req, addr, func() { ref.log.done = append(ref.log.done, id) })
			if a1 != a2 {
				t.Fatalf("step %d: EnqueueRead accept mismatch: indexed=%v reference=%v", i, a1, a2)
			}
		case op < 65: // enqueue a write on both
			req := rng.Intn(8) - 1
			addr := randomAddr()
			idx.ctrl.EnqueueWrite(req, addr)
			ref.ctrl.EnqueueWrite(req, addr)
		case op < 95: // advance both a random burst
			for k := 1 + rng.Intn(60); k > 0; k-- {
				idx.ctrl.Tick()
				ref.ctrl.Tick()
			}
		default: // idle-skip: NextWork must agree, then replay the gap
			n1, n2 := idx.ctrl.NextWork(), ref.ctrl.NextWork()
			if n1 != n2 {
				t.Fatalf("step %d: NextWork mismatch: indexed=%d reference=%d", i, n1, n2)
			}
			if k := n1 - idx.ctrl.Cycle() - 1; k > 0 {
				idx.ctrl.AdvanceIdle(k)
				ref.ctrl.AdvanceIdle(k)
			}
		}
		if idx.ctrl.PendingReads() != ref.ctrl.PendingReads() {
			t.Fatalf("step %d: pending reads diverged: indexed=%d reference=%d",
				i, idx.ctrl.PendingReads(), ref.ctrl.PendingReads())
		}
	}
	// Drain all outstanding work so completion logs are total.
	for k := 0; k < 200_000 && (idx.ctrl.PendingReads() > 0 || ref.ctrl.PendingReads() > 0); k++ {
		idx.ctrl.Tick()
		ref.ctrl.Tick()
	}

	if !reflect.DeepEqual(idx.log.done, ref.log.done) {
		t.Fatalf("read completion order diverged:\nindexed:   %v\nreference: %v", idx.log.done, ref.log.done)
	}
	if len(idx.log.cmds) != len(ref.log.cmds) {
		t.Fatalf("command stream length diverged: indexed=%d reference=%d", len(idx.log.cmds), len(ref.log.cmds))
	}
	for i := range idx.log.cmds {
		if idx.log.cmds[i] != ref.log.cmds[i] {
			t.Fatalf("command %d diverged: indexed=%q reference=%q", i, idx.log.cmds[i], ref.log.cmds[i])
		}
	}
	if !reflect.DeepEqual(idx.ctrl.Stats, ref.ctrl.Stats) {
		t.Fatalf("stats diverged:\nindexed:   %+v\nreference: %+v", idx.ctrl.Stats, ref.ctrl.Stats)
	}
}

// TestSchedulerEquivalence sweeps scheduler configurations × mechanism
// pressures × seeds. Every cell must produce bit-identical behaviour
// between the indexed and reference scan implementations.
func TestSchedulerEquivalence(t *testing.T) {
	smallQueues := Table6Config()
	smallQueues.ReadQueue = 8
	smallQueues.WriteQueue = 4

	closedRow := Table6Config()
	closedRow.ClosedRow = true

	fcfs := Table6Config()
	fcfs.FCFSOnly = true

	blissClosed := blissConfig()
	blissClosed.ClosedRow = true

	cases := []struct {
		name string
		cfg  Config
		mech string
	}{
		{"default-none", Table6Config(), "none"},
		{"default-throttle", Table6Config(), "throttle"},
		{"bliss-hammer", blissConfig(), "hammer"},
		{"bliss-throttle", blissConfig(), "throttle"},
		{"fcfs-none", fcfs, "none"},
		{"closedrow-hammer", closedRow, "hammer"},
		{"bliss-closedrow-throttle", blissClosed, "throttle"},
		{"smallqueues-throttle", smallQueues, "throttle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				runEquivalence(t, tc.cfg, tc.mech, seed, 600)
			}
		})
	}
}
