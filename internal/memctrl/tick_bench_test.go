package memctrl

import (
	"math/rand"
	"testing"

	"repro/internal/dram"
	"repro/internal/mitigation"
)

// saturatedTickController builds a controller plus a refill closure that
// keeps its read queue at capacity from a fixed mixed-bank address pool —
// the steady state the dense benchmarks live in.
func saturatedTickController(tb testing.TB, ref bool) (*Controller, func()) {
	tb.Helper()
	geo := dram.Table6Geometry()
	ch, err := dram.NewChannel(geo, dram.DDR4_2400(geo.Rows))
	if err != nil {
		tb.Fatal(err)
	}
	cfg := Table6Config()
	ctrl, err := New(cfg, ch, mitigation.NewNone())
	if err != nil {
		tb.Fatal(err)
	}
	ctrl.refScan = ref
	mapper, err := dram.NewAddressMapper(geo)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	addrs := make([]int64, 4096)
	for i := range addrs {
		addrs[i] = mapper.AddressOf(dram.Address{
			Bank: rng.Intn(geo.Banks()),
			Row:  100 + rng.Intn(8), // hot rows: FR-FCFS hit chains stay busy
			Col:  rng.Intn(64),
		})
	}
	onDone := func() {}
	ai := 0
	fill := func() {
		for ctrl.PendingReads() < cfg.ReadQueue {
			if !ctrl.EnqueueRead(ai%4, addrs[ai%len(addrs)], onDone) {
				break
			}
			ai++
		}
	}
	return ctrl, fill
}

func benchmarkSaturatedTick(b *testing.B, ref bool) {
	ctrl, fill := saturatedTickController(b, ref)
	fill()
	for i := 0; i < 10_000; i++ { // warm the free list and returns buffer
		ctrl.Tick()
		fill()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Tick()
		fill()
	}
}

// BenchmarkSaturatedTickIndexed measures the per-cycle cost of the
// bucket-indexed scheduler with the read queue pinned at capacity.
func BenchmarkSaturatedTickIndexed(b *testing.B) { benchmarkSaturatedTick(b, false) }

// BenchmarkSaturatedTickReference measures the same workload through the
// kept O(queue) reference scans, for the indexed/reference speedup ratio.
func BenchmarkSaturatedTickReference(b *testing.B) { benchmarkSaturatedTick(b, true) }
