//go:build !race

// The race detector instruments allocations, so the zero-alloc gate only
// runs in the regular test pass (CI runs both).

package memctrl

import "testing"

// TestSaturatedTickZeroAlloc is the allocation-regression gate of the
// indexed scheduler: once the free list, completion buffer, and
// per-requester stats are warm, a saturated enqueue+Tick steady state
// must not touch the heap at all — the property that keeps the dense
// benchmarks allocation-flat no matter how many cycles they simulate.
func TestSaturatedTickZeroAlloc(t *testing.T) {
	ctrl, fill := saturatedTickController(t, false)
	fill()
	for i := 0; i < 20_000; i++ {
		ctrl.Tick()
		fill()
	}
	allocs := testing.AllocsPerRun(2000, func() {
		ctrl.Tick()
		fill()
	})
	if allocs != 0 {
		t.Fatalf("saturated Tick steady state allocated %.2f times per cycle; want 0", allocs)
	}
}
