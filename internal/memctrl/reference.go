package memctrl

import "repro/internal/dram"

// This file keeps the original O(queue) scheduler scans, walking the
// queues in arrival order exactly as the pre-index controller did over
// its flat slices. They are dispatched when Controller.refScan is set —
// by the randomized scheduler-equivalence test, which drives an indexed
// and a reference controller side by side and requires bit-identical
// command streams, and as the fallback for geometries wider than the
// indexed scan's 64-bank failure bitmask.

// refScheduleRowHits is the reference first-ready scan: the first
// eligible request in arrival order whose bank has its row open wins;
// candidates that fail on column timing are skipped and the walk
// continues.
func (c *Controller) refScheduleRowHits(q *reqQueue, write bool, excludeBank int, f classFilter) bool {
	for r := q.head; r != nil; {
		next := r.qnext // serveReq unlinks r on success
		if !c.classMatch(f, r) {
			r = next
			continue
		}
		if r.addr.Bank == excludeBank {
			r = next
			continue
		}
		if c.ch.OpenRow(0, r.addr.Bank) != r.addr.Row {
			r = next
			continue
		}
		if c.serveReq(q, r, write) {
			return true
		}
		r = next
	}
	return false
}

// refNextWorkScan is the reference per-request no-op-horizon scan.
func (c *Controller) refNextWorkScan() int64 {
	// States whose Tick mutates per-cycle state even without issuing:
	// a due refresh keeps closing banks, mitigation ops flip their
	// activated flag outside the command slot, and a throttling mechanism
	// is consulted (ThrottleStallCycles, sketch queries) whenever any
	// request is queued.
	if c.refPending || len(c.mitQ) > 0 ||
		(c.throttle != nil && (c.readQ.n > 0 || c.writeQ.n > 0)) {
		return c.cycle + 1
	}
	// floor is the tightest bound the scan can reach; stop as soon as it
	// does (dense queues almost always have a ready request).
	floor := c.cycle + 1
	w := c.nextREF
	for _, ev := range c.returns {
		if ev.cycle < w {
			if ev.cycle <= floor {
				return floor
			}
			w = ev.cycle
		}
	}
	for r := c.readQ.head; r != nil; r = r.qnext {
		if b := c.reqLowerBound(r); b < w {
			if b <= floor {
				return floor
			}
			w = b
		}
	}
	for r := c.writeQ.head; r != nil; r = r.qnext {
		if b := c.reqLowerBound(r); b < w {
			if b <= floor {
				return floor
			}
			w = b
		}
	}
	if c.cfg.ClosedRow {
		// closeIdleRows may precharge an untargeted open row as soon as
		// its bank allows.
		for b := 0; b < c.ch.Geo.Banks(); b++ {
			open, _, nextPRE, _, _ := c.ch.BankTimes(0, b)
			if open != -1 && nextPRE < w {
				w = nextPRE
			}
		}
	}
	if w <= c.cycle {
		w = c.cycle + 1
	}
	return w
}

// refCloseIdleRows is the reference closed-row sweep: walk every queued
// request per open bank to decide whether the row is still wanted.
func (c *Controller) refCloseIdleRows() {
	for b := 0; b < c.ch.Geo.Banks(); b++ {
		open := c.ch.OpenRow(0, b)
		if open == -1 {
			continue
		}
		wanted := false
		for r := c.readQ.head; r != nil; r = r.qnext {
			if r.addr.Bank == b && r.addr.Row == open {
				wanted = true
				break
			}
		}
		if !wanted {
			for r := c.writeQ.head; r != nil; r = r.qnext {
				if r.addr.Bank == b && r.addr.Row == open {
					wanted = true
					break
				}
			}
		}
		if !wanted && c.ch.CanIssue(dram.CmdPRE, 0, b, 0, c.cycle) {
			c.issueRowChange(dram.CmdPRE, b, 0)
			return
		}
	}
}

// refWriteBacklogHolds is the reference read-after-write forwarding scan
// over the whole write backlog.
func (c *Controller) refWriteBacklogHolds(la dram.Address) bool {
	for w := c.writeQ.head; w != nil; w = w.qnext {
		if w.addr == la && w.write {
			return true
		}
	}
	return false
}

// refWriteCoalesces is the reference write-coalescing scan.
func (c *Controller) refWriteCoalesces(a dram.Address) bool {
	for w := c.writeQ.head; w != nil; w = w.qnext {
		if w.addr == a {
			return true
		}
	}
	return false
}
