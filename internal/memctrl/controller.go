// Package memctrl implements the simulated memory controller of Table 6:
// FR-FCFS scheduling over 64-entry read/write queues, open-row policy
// with write draining, tREFI-paced all-bank refresh, and the hook through
// which RowHammer mitigation mechanisms observe activations and inject
// targeted victim-row refreshes.
//
// Every demand request carries a requester (source/thread) ID, which
// feeds two consumers: the optional BLISS fairness scheduler (per-
// requester service-streak blacklisting, Config.BLISS) and the
// mitigation.Throttler hook (per-requester queue admission and ACT
// attribution, BlockHammer's RowBlocker-Req).
//
// The queues are indexed per bank (see queue.go) with incrementally
// maintained row-hit chains, so the per-cycle FR-FCFS scans cost
// O(banks-with-work) instead of O(queue). The original linear scans are
// kept verbatim in reference.go behind the refScan switch; the
// randomized scheduler-equivalence test certifies both paths produce
// bit-identical command streams and statistics.
package memctrl

import (
	"errors"
	"math/bits"

	"repro/internal/dram"
	"repro/internal/mitigation"
)

// Config sizes the controller.
type Config struct {
	ReadQueue  int // demand read queue capacity (Table 6: 64)
	WriteQueue int // write drain high watermark

	// FCFSOnly disables the first-ready (row-hit) scan, degrading the
	// scheduler to plain FCFS (ablation).
	FCFSOnly bool
	// ClosedRow precharges a bank as soon as no queued request targets
	// its open row (closed-row policy ablation; default is open-row).
	ClosedRow bool

	// BLISS enables the blacklisting fairness scheduler (after Subramanian
	// et al.): a requester served BLISSStreak consecutive demand reads is
	// blacklisted until the next clearing interval, and non-blacklisted
	// requesters' reads take scheduling priority. The cheap streak counter
	// is what makes a max-MLP attacker lose its FR-FCFS row-hit monopoly
	// without per-request bookkeeping.
	BLISS bool
	// BLISSStreak is the consecutive-service count that blacklists a
	// requester (default 4).
	BLISSStreak int
	// BLISSClearCycles is the blacklist clearing period in memory-clock
	// cycles (default 10000).
	BLISSClearCycles int64
}

// Table6Config returns the paper's controller parameters.
func Table6Config() Config { return Config{ReadQueue: 64, WriteQueue: 64} }

// mitOp is a mitigation-triggered victim refresh: an ACT+PRE pair that
// restores a row's charge.
type mitOp struct {
	bank, row int
	activated bool
}

// Stats aggregates controller activity, split between demand and
// mitigation traffic so the Figure 10a bandwidth overhead can be derived.
type Stats struct {
	Reads, Writes int64

	DemandACTs     int64
	MitigationACTs int64
	REFs           int64

	// MitigationBusyCycles: bank-cycles consumed by mitigation refreshes
	// (tRC per targeted refresh).
	MitigationBusyCycles int64
	// RefreshBusyCycles: bank-cycles consumed by REF commands.
	RefreshBusyCycles int64
	// DemandBusyCycles: bank-cycles consumed by demand activates (tRC
	// per row cycle, an upper-bound attribution).
	DemandBusyCycles int64

	ReadQueueFull int64

	// ThrottledReads counts demand reads rejected at queue admission
	// because their target row was blacklisted by a throttling mechanism
	// (mitigation.Throttler). Unit: requests.
	ThrottledReads int64
	// ThrottleStallCycles counts scheduler passes that skipped at least
	// one throttle-blocked request. Unit: (approximately) memory cycles.
	ThrottleStallCycles int64

	// BLISSBlacklists counts requester blacklisting events of the BLISS
	// fairness scheduler.
	BLISSBlacklists int64

	// PerRequester splits demand-read activity by source, indexed by
	// requester ID (grown on demand; negative/unknown sources are counted
	// only in the aggregate fields above).
	PerRequester []RequesterStats
}

// RequesterStats is one source's slice of the controller's demand-read
// activity.
type RequesterStats struct {
	Reads          int64 // reads accepted into the queue
	ServedReads    int64 // reads whose column command issued
	ThrottledReads int64 // reads rejected at admission by the throttler
	Blacklistings  int64 // times BLISS blacklisted this requester

	// BusBusyCycles attributes demand DRAM occupancy to the source: tRC
	// bank-cycles per demand ACT the requester's request caused (the same
	// upper-bound attribution as Stats.DemandBusyCycles) plus the data-bus
	// burst cycles of every column command served for it. Together with
	// the sibling entries it completes the DoS picture: who consumed the
	// memory system, not just who asked.
	BusBusyCycles int64
}

// BusSharePct returns this requester's share of all per-requester
// attributed demand bus time, in percent (0 when nothing is attributed).
func (s *Stats) BusSharePct(id int) float64 {
	if id < 0 || id >= len(s.PerRequester) {
		return 0
	}
	var total int64
	for _, rs := range s.PerRequester {
		total += rs.BusBusyCycles
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(s.PerRequester[id].BusBusyCycles) / float64(total)
}

// maxTrackedRequesters bounds the per-requester stats table. Requester
// IDs come from trace files as well as cores, so an adversarial or
// corrupt trace could otherwise force a multi-gigabyte allocation with
// one huge ID; sources beyond the cap are counted only in the aggregate
// fields.
const maxTrackedRequesters = 1024

// reqStats returns the per-requester slot for id, growing the slice on
// first sight; nil for unknown or untracked sources.
//
//rhlint:hotpath
func (s *Stats) reqStats(id int) *RequesterStats {
	if id < 0 || id >= maxTrackedRequesters {
		return nil
	}
	for len(s.PerRequester) <= id {
		//rhlint:allow hotalloc(amortized: grows once per newly seen requester, capped at maxTrackedRequesters)
		s.PerRequester = append(s.PerRequester, RequesterStats{})
	}
	return &s.PerRequester[id]
}

// Controller owns one channel. Drive it with Tick once per memory-clock
// cycle.
type Controller struct {
	cfg      Config
	ch       *dram.Channel
	mapper   *dram.AddressMapper
	mech     mitigation.Mechanism
	throttle mitigation.Throttler // non-nil when mech implements it

	readQ       reqQueue
	writeQ      reqQueue
	free        *request // recycled request nodes (chained via qnext)
	mitQ        []mitOp
	mitBankBusy []bool // scratch: banks owned by an earlier op this cycle

	draining   bool
	refPending bool
	nextREF    int64
	refi       int64

	// Pending read-data returns, in issue order (fixed CL+BL ⇒ FIFO).
	returns []retEvent

	cycle int64

	// nwVal/nwValid memoize NextWork between invalidating mutations.
	nwVal   int64
	nwValid bool

	// refScan routes the scheduler scans through the original linear
	// queue walks (reference.go) instead of the per-bank indexes. The two
	// paths are bit-identical by construction; the equivalence property
	// test drives them side by side. Forced on when the geometry exceeds
	// the indexed scan's 64-bank failure bitmask.
	refScan bool

	// issuingMitigation marks Issue calls made for mitigation ops so the
	// OnACT observer can attribute them.
	issuingMitigation bool
	// issuingReq is the requester whose demand request is being progressed
	// when an ACT issues (RequesterNone otherwise), so the throttler's
	// per-source bookkeeping sees who caused each activation.
	issuingReq int

	// BLISS fairness state: the last-served requester, its service streak,
	// and the current blacklist (cleared every BLISSClearCycles). The
	// blacklist is a dense generation-stamped slice — requester id is
	// blacklisted iff blissBlackGen[id] == blissGen — so membership is one
	// compare and clearing is one increment; ids past the dense cap spill
	// into blissOver. blissCount mirrors the blacklist's size and
	// demotedReads counts queued reads whose requester is blacklisted, so
	// empty class passes are skipped without walking the queue.
	blissLast     int
	blissStreak   int
	blissGen      uint64
	blissBlackGen []uint64
	blissOver     map[int]bool
	blissCount    int
	demotedReads  int
	blissClear    int64

	// lastThrottleStall deduplicates ThrottleStallCycles across the BLISS
	// scheduler's two class passes within one cycle.
	lastThrottleStall int64

	// onACT and onREF forward the command stream to an external observer
	// (the fault-model hammer accountant of internal/attack).
	onACT dram.ACTObserver
	onREF dram.RefreshObserver

	Stats Stats
}

type retEvent struct {
	cycle int64
	fn    func()
}

// New builds a controller over the channel. mech may be nil (no
// mitigation).
func New(cfg Config, ch *dram.Channel, mech mitigation.Mechanism) (*Controller, error) {
	if cfg.ReadQueue <= 0 || cfg.WriteQueue <= 0 {
		return nil, errors.New("memctrl: queue capacities must be positive")
	}
	mapper, err := dram.NewAddressMapper(ch.Geo)
	if err != nil {
		return nil, err
	}
	if mech == nil {
		mech = mitigation.NewNone()
	}
	if cfg.BLISS {
		if cfg.BLISSStreak <= 0 {
			cfg.BLISSStreak = 4
		}
		if cfg.BLISSClearCycles <= 0 {
			cfg.BLISSClearCycles = 10_000
		}
	}
	c := &Controller{
		cfg:         cfg,
		ch:          ch,
		mapper:      mapper,
		mech:        mech,
		mitBankBusy: make([]bool, ch.Geo.Banks()),
		issuingReq:  mitigation.RequesterNone,
		blissLast:   mitigation.RequesterNone,
	}
	c.readQ.init(ch.Geo.Banks())
	c.writeQ.init(ch.Geo.Banks())
	if ch.Geo.Banks() > 64 {
		c.refScan = true
	}
	if cfg.BLISS {
		c.blissGen = 1
		c.blissBlackGen = make([]uint64, maxTrackedRequesters)
		c.blissClear = cfg.BLISSClearCycles
	}
	c.throttle, _ = mech.(mitigation.Throttler)
	c.refi = int64(float64(ch.T.REFI) / mech.RefreshMultiplier())
	if c.refi < int64(ch.T.RFC)+1 {
		c.refi = int64(ch.T.RFC) + 1 // refresh storm floor: back-to-back REF
	}
	c.nextREF = c.refi
	ch.OnACT(c.observeACT)
	ch.OnRefresh(c.observeRefresh)
	return c, nil
}

// Mechanism returns the active mitigation mechanism.
func (c *Controller) Mechanism() mitigation.Mechanism { return c.mech }

// OnACT registers an external activation observer (e.g. the fault model).
func (c *Controller) OnACT(fn dram.ACTObserver) { c.onACT = fn }

// OnRefresh registers an external observer of the auto-refresh rotation,
// so hammer accountants can clear per-row damage exactly when the DRAM
// restores the rows' charge.
func (c *Controller) OnRefresh(fn dram.RefreshObserver) { c.onREF = fn }

// observeACT feeds the mitigation mechanism and external observers.
func (c *Controller) observeACT(rank, bank, row int, cycle int64) {
	if c.issuingMitigation {
		c.Stats.MitigationACTs++
		c.Stats.MitigationBusyCycles += int64(c.ch.T.RC)
	} else {
		c.Stats.DemandACTs++
		c.Stats.DemandBusyCycles += int64(c.ch.T.RC)
		if rs := c.Stats.reqStats(c.issuingReq); rs != nil {
			rs.BusBusyCycles += int64(c.ch.T.RC)
		}
		if c.throttle != nil {
			c.throttle.OnRequesterACT(c.issuingReq, bank, row, cycle)
		}
	}
	victims := c.mech.OnActivate(bank, row, cycle, c.issuingMitigation)
	for _, v := range victims {
		c.enqueueMitigation(bank, v)
	}
	if c.onACT != nil {
		c.onACT(rank, bank, row, cycle)
	}
}

func (c *Controller) observeRefresh(rank, bank, rowStart, rowCount int, cycle int64) {
	extra := c.mech.OnAutoRefresh(bank, rowStart, rowCount, cycle)
	for _, v := range extra {
		c.enqueueMitigation(bank, v)
	}
	if c.onREF != nil {
		c.onREF(rank, bank, rowStart, rowCount, cycle)
	}
}

func (c *Controller) enqueueMitigation(bank, row int) {
	// Deduplicate identical pending ops: one refresh suffices.
	for _, op := range c.mitQ {
		if op.bank == bank && op.row == row && !op.activated {
			return
		}
	}
	c.mitQ = append(c.mitQ, mitOp{bank: bank, row: row})
}

// newReq pops a recycled request node or allocates one; the steady-state
// saturated Tick path recycles every node and allocates nothing.
//
//rhlint:hotpath
func (c *Controller) newReq() *request {
	if r := c.free; r != nil {
		c.free = r.qnext
		r.qnext = nil
		return r
	}
	//rhlint:allow hotalloc(cold path: the free list only misses while the queues first fill)
	return &request{}
}

// freeReq clears the node (dropping its callback reference) and chains it
// on the free list.
//
//rhlint:hotpath
func (c *Controller) freeReq(r *request) {
	*r = request{qnext: c.free}
	c.free = r
}

// EnqueueRead accepts a demand read for the given requester; returns
// false when the queue is full or the throttling mechanism rejects the
// request at admission (BlockHammer's RowBlocker-Req).
//
//rhlint:hotpath
func (c *Controller) EnqueueRead(requester int, addr int64, onDone func()) bool {
	c.nwValid = false
	// Read-after-write forwarding from the write backlog (which can only
	// hold the line when it is non-empty, so the usual read-heavy phase
	// skips the line mapping entirely).
	if c.writeQ.n > 0 && c.writeBacklogHolds(c.mapper.Map(c.mapper.LineAddress(addr))) {
		//rhlint:allow hotalloc(amortized: fireReturns compacts in place, so capacity is reused)
		c.returns = append(c.returns, retEvent{cycle: c.cycle + 1, fn: onDone})
		c.Stats.Reads++
		if rs := c.Stats.reqStats(requester); rs != nil {
			rs.Reads++
		}
		return true
	}
	if c.readQ.n >= c.cfg.ReadQueue {
		c.Stats.ReadQueueFull++
		return false
	}
	a := c.mapper.Map(addr)
	if c.throttle != nil &&
		!c.throttle.AdmitRequest(requester, a.Bank, a.Row,
			float64(c.readQ.n)/float64(c.cfg.ReadQueue), c.cycle) {
		c.Stats.ThrottledReads++
		if rs := c.Stats.reqStats(requester); rs != nil {
			rs.ThrottledReads++
		}
		return false
	}
	r := c.newReq()
	r.addr, r.req, r.onDone, r.queued = a, requester, onDone, c.cycle
	c.readQ.push(r, c.ch.OpenRow(0, a.Bank))
	if c.cfg.BLISS && c.blissIsBlack(requester) {
		c.demotedReads++
	}
	c.Stats.Reads++
	if rs := c.Stats.reqStats(requester); rs != nil {
		rs.Reads++
	}
	return true
}

// writeBacklogHolds reports whether the write backlog holds the line, in
// which case a read is served by forwarding.
func (c *Controller) writeBacklogHolds(la dram.Address) bool {
	if c.refScan {
		return c.refWriteBacklogHolds(la)
	}
	for w := c.writeQ.banks[la.Bank].head; w != nil; w = w.bnext {
		if w.addr == la {
			return true
		}
	}
	return false
}

// EnqueueWrite accepts a write (always; the backlog stands in for the
// write buffer hierarchy above the 64-entry drain queue). requester is
// the source whose fill or flush produced the writeback.
func (c *Controller) EnqueueWrite(requester int, addr int64) {
	c.nwValid = false
	a := c.mapper.Map(addr)
	if c.refScan {
		if c.refWriteCoalesces(a) {
			return
		}
	} else {
		for w := c.writeQ.banks[a.Bank].head; w != nil; w = w.bnext {
			if w.addr == a {
				return // coalesce
			}
		}
	}
	r := c.newReq()
	r.addr, r.req, r.write, r.queued = a, requester, true, c.cycle
	c.writeQ.push(r, c.ch.OpenRow(0, a.Bank))
	c.Stats.Writes++
}

// PendingReads reports demand reads still queued (for drain-to-idle).
func (c *Controller) PendingReads() int { return c.readQ.n }

// Cycle returns the controller's current memory-clock cycle.
func (c *Controller) Cycle() int64 { return c.cycle }

// NextWork returns a lower bound on the next memory cycle at which Tick
// could do anything beyond advancing the clock: issue or progress a
// command, fire a read return, or mutate statistics. Every Tick at a
// cycle strictly below the bound is a no-op that AdvanceIdle replays
// exactly, so the event engine may skip straight to it. The bound is
// conservative (a real Tick at the returned cycle may still find nothing
// ready — rank-scoped DRAM constraints are ignored); it is never late.
//
// The scan is memoized: controller state only changes through Tick,
// AdvanceIdle, and the enqueue paths, each of which invalidates the
// cached bound, so the event engine may probe every CPU cycle for free.
//
//rhlint:hotpath
func (c *Controller) NextWork() int64 {
	if !c.nwValid {
		c.nwVal = c.nextWorkScan()
		c.nwValid = true
	}
	return c.nwVal
}

//rhlint:hotpath
func (c *Controller) nextWorkScan() int64 {
	if c.refScan {
		return c.refNextWorkScan()
	}
	// States whose Tick mutates per-cycle state even without issuing:
	// a due refresh keeps closing banks, mitigation ops flip their
	// activated flag outside the command slot, and a throttling mechanism
	// is consulted (ThrottleStallCycles, sketch queries) whenever any
	// request is queued.
	if c.refPending || len(c.mitQ) > 0 ||
		(c.throttle != nil && (c.readQ.n > 0 || c.writeQ.n > 0)) {
		return c.cycle + 1
	}
	w := c.nextREF
	for _, ev := range c.returns {
		if ev.cycle < w {
			w = ev.cycle
		}
	}
	// Per-bank lower bounds from the bucket census: a bank contributes
	// nextACT when closed, nextRD/nextWR for queued row hits, and nextPRE
	// when a queued request (or the closed-row policy) wants it closed —
	// the same value set the per-request reference scan minimizes over.
	for b := range c.readQ.banks {
		rb := &c.readQ.banks[b]
		wb := &c.writeQ.banks[b]
		if rb.n == 0 && wb.n == 0 && !c.cfg.ClosedRow {
			continue
		}
		open, nextACT, nextPRE, nextRD, nextWR := c.ch.BankTimes(0, b)
		if open == -1 {
			if (rb.n > 0 || wb.n > 0) && nextACT < w {
				w = nextACT
			}
			continue
		}
		if rb.hitN > 0 && nextRD < w {
			w = nextRD
		}
		if wb.hitN > 0 && nextWR < w {
			w = nextWR
		}
		if (rb.n > rb.hitN || wb.n > wb.hitN || c.cfg.ClosedRow) && nextPRE < w {
			w = nextPRE
		}
	}
	if w <= c.cycle {
		w = c.cycle + 1
	}
	return w
}

// reqLowerBound returns the earliest cycle at which any command could
// legally progress the request, from per-bank timing alone.
//
//rhlint:hotpath
func (c *Controller) reqLowerBound(r *request) int64 {
	open, nextACT, nextPRE, nextRD, nextWR := c.ch.BankTimes(0, r.addr.Bank)
	switch {
	case open == r.addr.Row:
		if r.write {
			return nextWR
		}
		return nextRD
	case open == -1:
		return nextACT
	default:
		return nextPRE
	}
}

// AdvanceIdle advances the controller k memory cycles, replaying the only
// time-triggered state the skipped no-op Ticks would have touched: the
// BLISS clearing schedule. Legal only when every skipped cycle is below
// NextWork().
//
//rhlint:hotpath
func (c *Controller) AdvanceIdle(k int64) {
	c.nwValid = false
	c.cycle += k
	if c.cfg.BLISS {
		// The per-cycle loop fires a clear at exactly cycle==blissClear
		// (ticks hit every integer), so the replay steps period-by-period.
		for c.blissClear <= c.cycle {
			c.blissClearAll()
			c.blissClear += c.cfg.BLISSClearCycles
		}
	}
}

// Tick advances one memory-clock cycle and issues at most one command.
//
//rhlint:hotpath
func (c *Controller) Tick() {
	c.nwValid = false
	c.cycle++
	c.fireReturns()

	// BLISS forgives all blacklists every clearing interval, so a phase
	// change in a once-greedy requester is not punished forever.
	if c.cfg.BLISS && c.cycle >= c.blissClear {
		c.blissClearAll()
		c.blissClear = c.cycle + c.cfg.BLISSClearCycles
	}

	if c.cycle >= c.nextREF {
		c.refPending = true
	}
	// Priority 1: refresh (close banks, then REF).
	if c.refPending {
		if c.tryRefresh() {
			return
		}
		// Banks still closing: fall through only if nothing to do for
		// refresh this cycle is impossible — tryRefresh issues PREs.
	}
	// Priority 2: mitigation victim refreshes.
	if c.tryMitigation() {
		return
	}
	if c.refPending {
		return // don't admit new demand work while a REF is due
	}
	// Priority 3: demand scheduling, FR-FCFS with write draining.
	c.updateDrainMode()
	if c.draining {
		if c.schedule(&c.writeQ, true) {
			return
		}
		// While draining, still serve row-hit reads opportunistically —
		// honoring the BLISS class order, which applies wherever reads
		// compete for the command slot.
		if c.cfg.BLISS && c.blissCount > 0 {
			if !c.scheduleRowHits(&c.readQ, false, -1, classFilter{kind: classFavored}) {
				c.scheduleRowHits(&c.readQ, false, -1, classFilter{kind: classDemoted})
			}
		} else {
			c.scheduleRowHits(&c.readQ, false, -1, classFilter{})
		}
		return
	}
	if c.schedule(&c.readQ, false) {
		return
	}
	// Idle read queue: sneak writes out.
	if c.writeQ.n > 0 && c.schedule(&c.writeQ, true) {
		return
	}
	if c.cfg.ClosedRow {
		c.closeIdleRows()
	}
}

// issueRowChange issues an ACT or PRE — the commands that change a bank's
// open row — and rebuilds both queues' hit chains for the bank, keeping
// the first-ready candidate sets exact.
//
//rhlint:hotpath
func (c *Controller) issueRowChange(cmd dram.Command, bank, row int) {
	c.ch.Issue(cmd, 0, bank, row, c.cycle)
	open := -1
	if cmd == dram.CmdACT {
		open = row
	}
	c.readQ.bankRowChanged(bank, open)
	c.writeQ.bankRowChanged(bank, open)
}

// closeIdleRows implements the closed-row policy: precharge any bank
// whose open row no queued request targets.
//
//rhlint:hotpath
func (c *Controller) closeIdleRows() {
	if c.refScan {
		c.refCloseIdleRows()
		return
	}
	for b := range c.readQ.banks {
		if c.ch.OpenRow(0, b) == -1 {
			continue
		}
		// hitN is exactly the count of queued requests targeting the open
		// row, so "wanted" is two integer loads.
		if c.readQ.banks[b].hitN > 0 || c.writeQ.banks[b].hitN > 0 {
			continue
		}
		if c.ch.CanIssue(dram.CmdPRE, 0, b, 0, c.cycle) {
			c.issueRowChange(dram.CmdPRE, b, 0)
			return
		}
	}
}

//rhlint:hotpath
func (c *Controller) fireReturns() {
	n := 0
	for _, ev := range c.returns {
		if ev.cycle <= c.cycle {
			ev.fn()
		} else {
			c.returns[n] = ev
			n++
		}
	}
	c.returns = c.returns[:n]
}

// tryRefresh closes open banks and issues REF when possible. Returns true
// if it consumed the command slot.
func (c *Controller) tryRefresh() bool {
	if c.ch.CanIssue(dram.CmdREF, 0, 0, 0, c.cycle) {
		// REF requires every bank precharged, so the hit chains are
		// already empty and stay valid.
		c.ch.Issue(dram.CmdREF, 0, 0, 0, c.cycle)
		c.Stats.REFs++
		c.Stats.RefreshBusyCycles += int64(c.ch.T.RFC) * int64(c.ch.Geo.Banks())
		c.refPending = false
		c.nextREF += c.refi
		return true
	}
	for b := 0; b < c.ch.Geo.Banks(); b++ {
		if c.ch.OpenRow(0, b) != -1 && c.ch.CanIssue(dram.CmdPRE, 0, b, 0, c.cycle) {
			c.issueRowChange(dram.CmdPRE, b, 0)
			return true
		}
	}
	return false
}

// tryMitigation advances pending victim refreshes. Ops on different
// banks proceed concurrently (one in flight per bank); at most one
// command issues per cycle. Returns true if it consumed the command slot.
func (c *Controller) tryMitigation() bool {
	if len(c.mitQ) == 0 {
		return false
	}
	for b := range c.mitBankBusy {
		c.mitBankBusy[b] = false
	}
	for idx := 0; idx < len(c.mitQ); idx++ {
		op := &c.mitQ[idx]
		if c.mitBankBusy[op.bank] {
			continue // an earlier op owns this bank
		}
		c.mitBankBusy[op.bank] = true
		if !op.activated {
			switch open := c.ch.OpenRow(0, op.bank); {
			case open == op.row:
				// Row already open: its charge is restored; finish with
				// a precharge on a later cycle.
				op.activated = true
			case open != -1:
				if c.ch.CanIssue(dram.CmdPRE, 0, op.bank, 0, c.cycle) {
					c.issueRowChange(dram.CmdPRE, op.bank, 0)
					return true
				}
			default:
				if c.ch.CanIssue(dram.CmdACT, 0, op.bank, op.row, c.cycle) {
					c.issuingMitigation = true
					c.issueRowChange(dram.CmdACT, op.bank, op.row)
					c.issuingMitigation = false
					op.activated = true
					return true
				}
			}
			continue
		}
		if c.ch.CanIssue(dram.CmdPRE, 0, op.bank, 0, c.cycle) {
			c.issueRowChange(dram.CmdPRE, op.bank, 0)
			//rhlint:allow hotalloc(in-place removal: dst and src share mitQ's backing array, so the append never grows it)
			c.mitQ = append(c.mitQ[:idx], c.mitQ[idx+1:]...)
			return true
		}
	}
	return false
}

// updateDrainMode applies write-drain hysteresis.
func (c *Controller) updateDrainMode() {
	hi := c.cfg.WriteQueue
	lo := c.cfg.WriteQueue / 4
	if !c.draining && c.writeQ.n >= hi {
		c.draining = true
	}
	if c.draining && c.writeQ.n <= lo {
		c.draining = false
	}
}

// starveLimit is the age (memory cycles) past which the oldest request
// preempts row hits to its bank. Unbounded row-hit priority lets
// streaming cores extend a bank's tRTP horizon forever and starve a
// row-conflict request — real FR-FCFS schedulers cap the hit streak.
const starveLimit = 512

// classFilter selects the subset of a queue a scheduling pass may serve:
// everything, the BLISS favored class, the demoted class, or the demoted
// class minus one bank (a starving favored request's claim).
type classFilter struct {
	kind    classKind
	notBank int
}

type classKind uint8

const (
	classAll classKind = iota
	classFavored
	classDemoted
	classDemotedNotBank
)

func (c *Controller) classMatch(f classFilter, r *request) bool {
	switch f.kind {
	case classAll:
		return true
	case classFavored:
		return !c.blissIsBlack(r.req)
	case classDemoted:
		return c.blissIsBlack(r.req)
	default:
		return c.blissIsBlack(r.req) && r.addr.Bank != f.notBank
	}
}

// blissIsBlack reports whether a requester is currently blacklisted.
func (c *Controller) blissIsBlack(id int) bool {
	if id < 0 {
		return false
	}
	if id < maxTrackedRequesters {
		return c.blissBlackGen != nil && c.blissBlackGen[id] == c.blissGen
	}
	return c.blissOver[id]
}

// blissBlacklist adds a requester (not currently blacklisted) to the
// blacklist and re-derives the demoted-read census: every queued read of
// the requester switches class.
func (c *Controller) blissBlacklist(id int) {
	if id < maxTrackedRequesters {
		c.blissBlackGen[id] = c.blissGen
	} else {
		if c.blissOver == nil {
			//rhlint:allow hotalloc(one-time lazy init of the overflow map; requester ids below maxTrackedRequesters use the flat array)
			c.blissOver = make(map[int]bool)
		}
		c.blissOver[id] = true
	}
	c.blissCount++
	for r := c.readQ.head; r != nil; r = r.qnext {
		if r.req == id {
			c.demotedReads++
		}
	}
}

// blissClearAll forgives every blacklist: one generation bump.
func (c *Controller) blissClearAll() {
	c.blissGen++
	c.blissCount = 0
	c.demotedReads = 0
	if len(c.blissOver) > 0 {
		for k := range c.blissOver {
			delete(c.blissOver, k)
		}
	}
}

// schedule applies FR-FCFS to the queue. Under BLISS, demand reads are
// scheduled in two classes: requests from non-blacklisted requesters take
// the command slot first, and a blacklisted requester's requests are
// considered only when no favored request can use the cycle — BLISS
// demotes, it never blocks, so liveness is untouched.
// Returns true if a command issued.
//
//rhlint:hotpath
func (c *Controller) schedule(q *reqQueue, write bool) bool {
	if c.cfg.BLISS && !write && c.blissCount > 0 {
		if c.scheduleClass(q, write, classFilter{kind: classFavored}) {
			return true
		}
		// A *starving* favored request claims its bank from the demoted
		// pass too, exactly as row hits yield inside one FR-FCFS pass:
		// otherwise demoted row hits keep extending the bank's tRTP
		// horizon and the favored request starves behind the very traffic
		// BLISS demoted. Short of starvation, demoted requests may fill
		// the idle slot anywhere — BLISS reorders, it does not idle banks.
		if ex := c.starvingFavoredBank(q); ex >= 0 {
			return c.scheduleClass(q, write, classFilter{kind: classDemotedNotBank, notBank: ex})
		}
		return c.scheduleClass(q, write, classFilter{kind: classDemoted})
	}
	return c.scheduleClass(q, write, classFilter{})
}

// starvingFavoredBank returns the bank of the oldest schedulable favored
// request if that request has starved past starveLimit, else -1. The
// walk is shared by both scan modes: it consults the throttler per
// skipped request, and that query sequence is part of the pinned
// behavior.
//
//rhlint:hotpath
func (c *Controller) starvingFavoredBank(q *reqQueue) int {
	for r := q.head; r != nil; r = r.qnext {
		if c.blissIsBlack(r.req) {
			continue
		}
		if c.throttle != nil && c.throttledIdle(r) {
			continue
		}
		if c.cycle-r.queued > starveLimit {
			return r.addr.Bank
		}
		return -1 // oldest schedulable favored request is not starving
	}
	return -1
}

// scheduleClass applies FR-FCFS to the subset of q matching the class
// filter: ready row-hit column commands first, otherwise progress the
// oldest request (ACT or PRE). Once the oldest request is starving, it
// preempts row hits to its bank. A throttle-blacklisted request is
// waiting on the mechanism, not on the scheduler, so it neither counts
// as starving nor preempts anyone. Returns true if a command issued.
//
//rhlint:hotpath
func (c *Controller) scheduleClass(q *reqQueue, write bool, f classFilter) bool {
	if q.n == 0 {
		return false
	}
	// A class with no queued members issues nothing and consults the
	// throttler for nothing in the reference walk either (class
	// eligibility is checked before the throttle), so the pass can be
	// skipped outright on the maintained census.
	if !c.refScan && !write {
		switch f.kind {
		case classFavored:
			if q.n == c.demotedReads {
				return false
			}
		case classDemoted, classDemotedNotBank:
			if c.demotedReads == 0 {
				return false
			}
		}
	}
	// One throttle scan per pass: find the oldest eligible unthrottled
	// request and hand it to progressReq, so the sketch queries behind
	// ActAllowed are not repeated over the same prefix. The walk runs in
	// arrival order in both scan modes — the throttler is stateful, so
	// the query sequence itself is pinned behavior.
	var oldest *request
	throttleSkip := false
	for r := q.head; r != nil; r = r.qnext {
		if !c.classMatch(f, r) {
			continue
		}
		if c.throttle != nil && c.throttledIdle(r) {
			throttleSkip = true
			continue
		}
		oldest = r
		break
	}
	// Count at most one throttle-stall per memory cycle: under BLISS this
	// method runs once per class, and blocked requests in both classes
	// must not inflate the (per-cycle) stat.
	if throttleSkip && c.lastThrottleStall != c.cycle {
		c.Stats.ThrottleStallCycles++
		c.lastThrottleStall = c.cycle
	}
	if oldest == nil {
		// Every eligible request is throttle-blocked with its row closed:
		// no row hit or progress is possible for this class this cycle.
		return false
	}
	starving := c.cycle-oldest.queued > starveLimit
	excludeBank := -1
	if starving {
		excludeBank = oldest.addr.Bank
		if c.progressReq(q, oldest, write) {
			return true
		}
	}
	if !c.cfg.FCFSOnly && c.scheduleRowHits(q, write, excludeBank, f) {
		return true
	}
	if !starving && c.progressReq(q, oldest, write) {
		return true
	}
	return false
}

// throttledIdle reports whether a request is blocked by the throttling
// mechanism: its row is not open (it would need an ACT) and the mechanism
// denies that ACT.
//
//rhlint:hotpath
func (c *Controller) throttledIdle(req *request) bool {
	if c.throttle == nil || c.ch.OpenRow(0, req.addr.Bank) == req.addr.Row {
		return false
	}
	return !c.throttle.ActAllowed(req.req, req.addr.Bank, req.addr.Row, c.cycle)
}

// progressReq moves the oldest schedulable request — as determined by
// scheduleClass's throttle scan — forward: serve it when its row is open,
// otherwise open (or close) the row it needs.
//
//rhlint:hotpath
func (c *Controller) progressReq(q *reqQueue, req *request, write bool) bool {
	bank := req.addr.Bank
	open := c.ch.OpenRow(0, bank)
	if open == req.addr.Row {
		return c.serveReq(q, req, write)
	}
	if open == -1 {
		if c.ch.CanIssue(dram.CmdACT, 0, bank, req.addr.Row, c.cycle) {
			c.issuingReq = req.req
			c.issueRowChange(dram.CmdACT, bank, req.addr.Row)
			c.issuingReq = mitigation.RequesterNone
			return true
		}
		return false
	}
	if c.ch.CanIssue(dram.CmdPRE, 0, bank, 0, c.cycle) {
		c.issueRowChange(dram.CmdPRE, bank, 0)
		return true
	}
	return false
}

// scheduleRowHits issues the first (arrival order) ready row-hit column
// access in q matching the class filter, skipping excludeBank (a starving
// request's bank).
//
// The indexed scan walks hit chains instead of the queue: each bank's
// earliest matching candidate stands for the whole bank, because CanIssue
// for a column command is uniform across requests targeting the bank's
// open row — when one candidate fails on timing, every hit in its bank
// fails this cycle, so the bank is dropped wholesale and the next-oldest
// bank candidate is tried, exactly reproducing the reference walk's
// outcome.
//
//rhlint:hotpath
func (c *Controller) scheduleRowHits(q *reqQueue, write bool, excludeBank int, f classFilter) bool {
	if c.refScan {
		return c.refScheduleRowHits(q, write, excludeBank, f)
	}
	avail := q.hitMask // banks with hit candidates, minus exclusions
	if excludeBank >= 0 {
		avail &^= 1 << uint(excludeBank)
	}
	if f.kind == classDemotedNotBank {
		avail &^= 1 << uint(f.notBank)
	}
	for avail != 0 {
		var best *request
		for m := avail; m != 0; m &= m - 1 {
			r := q.banks[bits.TrailingZeros64(m)].hitHead
			if f.kind != classAll {
				for r != nil && !c.classMatch(f, r) {
					r = r.hnext
				}
			}
			if r != nil && (best == nil || r.seq < best.seq) {
				best = r
			}
		}
		if best == nil {
			return false
		}
		if c.serveReq(q, best, write) {
			return true
		}
		avail &^= 1 << uint(best.addr.Bank) // whole bank fails this cycle
	}
	return false
}

// serveReq issues the column command for r (whose row must be open) and
// removes it from the queue. Returns false when timing blocks it.
//
//rhlint:hotpath
func (c *Controller) serveReq(q *reqQueue, r *request, write bool) bool {
	cmd := dram.CmdRD
	if r.write {
		cmd = dram.CmdWR
	}
	if !c.ch.CanIssue(cmd, 0, r.addr.Bank, r.addr.Row, c.cycle) {
		return false
	}
	ready := c.ch.Issue(cmd, 0, r.addr.Bank, r.addr.Row, c.cycle)
	if !r.write && r.onDone != nil {
		//rhlint:allow hotalloc(amortized: fireReturns compacts in place, so capacity is reused)
		c.returns = append(c.returns, retEvent{cycle: ready, fn: r.onDone})
	}
	// Data-bus occupancy: every served column command burns BL clocks of
	// the shared bus for its requester, row hit or not.
	if rs := c.Stats.reqStats(r.req); rs != nil {
		rs.BusBusyCycles += int64(c.ch.T.BL)
	}
	if !write {
		if rs := c.Stats.reqStats(r.req); rs != nil {
			rs.ServedReads++
		}
		// BLISS streak accounting: a requester monopolizing consecutive
		// read service gets blacklisted until the next clearing interval.
		if c.cfg.BLISS {
			if r.req == c.blissLast {
				c.blissStreak++
			} else {
				c.blissLast, c.blissStreak = r.req, 1
			}
			if c.blissStreak >= c.cfg.BLISSStreak {
				if r.req >= 0 && !c.blissIsBlack(r.req) {
					c.blissBlacklist(r.req)
					c.Stats.BLISSBlacklists++
					if rs := c.Stats.reqStats(r.req); rs != nil {
						rs.Blacklistings++
					}
				}
				c.blissStreak = 0
			}
			// The census counted r (still queued) if its requester is
			// blacklisted — including a blacklisting this very service.
			if c.blissIsBlack(r.req) {
				c.demotedReads--
			}
		}
	}
	q.remove(r)
	c.freeReq(r)
	return true
}
