// Package memctrl implements the simulated memory controller of Table 6:
// FR-FCFS scheduling over 64-entry read/write queues, open-row policy
// with write draining, tREFI-paced all-bank refresh, and the hook through
// which RowHammer mitigation mechanisms observe activations and inject
// targeted victim-row refreshes.
package memctrl

import (
	"errors"

	"repro/internal/dram"
	"repro/internal/mitigation"
)

// Config sizes the controller.
type Config struct {
	ReadQueue  int // demand read queue capacity (Table 6: 64)
	WriteQueue int // write drain high watermark

	// FCFSOnly disables the first-ready (row-hit) scan, degrading the
	// scheduler to plain FCFS (ablation).
	FCFSOnly bool
	// ClosedRow precharges a bank as soon as no queued request targets
	// its open row (closed-row policy ablation; default is open-row).
	ClosedRow bool
}

// Table6Config returns the paper's controller parameters.
func Table6Config() Config { return Config{ReadQueue: 64, WriteQueue: 64} }

type request struct {
	addr   dram.Address
	write  bool
	onDone func()
	queued int64
}

// mitOp is a mitigation-triggered victim refresh: an ACT+PRE pair that
// restores a row's charge.
type mitOp struct {
	bank, row int
	activated bool
}

// Stats aggregates controller activity, split between demand and
// mitigation traffic so the Figure 10a bandwidth overhead can be derived.
type Stats struct {
	Reads, Writes int64

	DemandACTs     int64
	MitigationACTs int64
	REFs           int64

	// MitigationBusyCycles: bank-cycles consumed by mitigation refreshes
	// (tRC per targeted refresh).
	MitigationBusyCycles int64
	// RefreshBusyCycles: bank-cycles consumed by REF commands.
	RefreshBusyCycles int64
	// DemandBusyCycles: bank-cycles consumed by demand activates (tRC
	// per row cycle, an upper-bound attribution).
	DemandBusyCycles int64

	ReadQueueFull int64

	// ThrottledReads counts demand reads rejected at queue admission
	// because their target row was blacklisted by a throttling mechanism
	// (mitigation.Throttler). Unit: requests.
	ThrottledReads int64
	// ThrottleStallCycles counts scheduler passes that skipped at least
	// one throttle-blocked request. Unit: (approximately) memory cycles.
	ThrottleStallCycles int64
}

// Controller owns one channel. Drive it with Tick once per memory-clock
// cycle.
type Controller struct {
	cfg      Config
	ch       *dram.Channel
	mapper   *dram.AddressMapper
	mech     mitigation.Mechanism
	throttle mitigation.Throttler // non-nil when mech implements it

	readQ       []*request
	writeQ      []*request
	mitQ        []mitOp
	mitBankBusy []bool // scratch: banks owned by an earlier op this cycle

	draining   bool
	refPending bool
	nextREF    int64
	refi       int64

	// Pending read-data returns, in issue order (fixed CL+BL ⇒ FIFO).
	returns []retEvent

	cycle int64

	// issuingMitigation marks Issue calls made for mitigation ops so the
	// OnACT observer can attribute them.
	issuingMitigation bool

	// onACT and onREF forward the command stream to an external observer
	// (the fault-model hammer accountant of internal/attack).
	onACT dram.ACTObserver
	onREF dram.RefreshObserver

	Stats Stats
}

type retEvent struct {
	cycle int64
	fn    func()
}

// New builds a controller over the channel. mech may be nil (no
// mitigation).
func New(cfg Config, ch *dram.Channel, mech mitigation.Mechanism) (*Controller, error) {
	if cfg.ReadQueue <= 0 || cfg.WriteQueue <= 0 {
		return nil, errors.New("memctrl: queue capacities must be positive")
	}
	mapper, err := dram.NewAddressMapper(ch.Geo)
	if err != nil {
		return nil, err
	}
	if mech == nil {
		mech = mitigation.NewNone()
	}
	c := &Controller{
		cfg:         cfg,
		ch:          ch,
		mapper:      mapper,
		mech:        mech,
		mitBankBusy: make([]bool, ch.Geo.Banks()),
	}
	c.throttle, _ = mech.(mitigation.Throttler)
	c.refi = int64(float64(ch.T.REFI) / mech.RefreshMultiplier())
	if c.refi < int64(ch.T.RFC)+1 {
		c.refi = int64(ch.T.RFC) + 1 // refresh storm floor: back-to-back REF
	}
	c.nextREF = c.refi
	ch.OnACT(c.observeACT)
	ch.OnRefresh(c.observeRefresh)
	return c, nil
}

// Mechanism returns the active mitigation mechanism.
func (c *Controller) Mechanism() mitigation.Mechanism { return c.mech }

// OnACT registers an external activation observer (e.g. the fault model).
func (c *Controller) OnACT(fn dram.ACTObserver) { c.onACT = fn }

// OnRefresh registers an external observer of the auto-refresh rotation,
// so hammer accountants can clear per-row damage exactly when the DRAM
// restores the rows' charge.
func (c *Controller) OnRefresh(fn dram.RefreshObserver) { c.onREF = fn }

// observeACT feeds the mitigation mechanism and external observers.
func (c *Controller) observeACT(rank, bank, row int, cycle int64) {
	if c.issuingMitigation {
		c.Stats.MitigationACTs++
		c.Stats.MitigationBusyCycles += int64(c.ch.T.RC)
	} else {
		c.Stats.DemandACTs++
		c.Stats.DemandBusyCycles += int64(c.ch.T.RC)
	}
	victims := c.mech.OnActivate(bank, row, cycle, c.issuingMitigation)
	for _, v := range victims {
		c.enqueueMitigation(bank, v)
	}
	if c.onACT != nil {
		c.onACT(rank, bank, row, cycle)
	}
}

func (c *Controller) observeRefresh(rank, bank, rowStart, rowCount int, cycle int64) {
	extra := c.mech.OnAutoRefresh(bank, rowStart, rowCount, cycle)
	for _, v := range extra {
		c.enqueueMitigation(bank, v)
	}
	if c.onREF != nil {
		c.onREF(rank, bank, rowStart, rowCount, cycle)
	}
}

func (c *Controller) enqueueMitigation(bank, row int) {
	// Deduplicate identical pending ops: one refresh suffices.
	for _, op := range c.mitQ {
		if op.bank == bank && op.row == row && !op.activated {
			return
		}
	}
	c.mitQ = append(c.mitQ, mitOp{bank: bank, row: row})
}

// EnqueueRead accepts a demand read; returns false when the queue is full.
func (c *Controller) EnqueueRead(addr int64, onDone func()) bool {
	// Read-after-write forwarding from the write backlog.
	line := c.mapper.LineAddress(addr)
	for _, w := range c.writeQ {
		if w.addr == c.mapper.Map(line) && w.write {
			c.returns = append(c.returns, retEvent{cycle: c.cycle + 1, fn: onDone})
			c.Stats.Reads++
			return true
		}
	}
	if len(c.readQ) >= c.cfg.ReadQueue {
		c.Stats.ReadQueueFull++
		return false
	}
	a := c.mapper.Map(addr)
	// Request-level throttling (BlockHammer's RowBlocker-Req): once the
	// queue is half full, reads to a blacklisted row are rejected at
	// admission, so unissuable requests cannot crowd out other cores.
	if c.throttle != nil && len(c.readQ) >= c.cfg.ReadQueue/2 &&
		!c.throttle.ActAllowed(a.Bank, a.Row, c.cycle) {
		c.Stats.ThrottledReads++
		return false
	}
	c.readQ = append(c.readQ, &request{addr: a, onDone: onDone, queued: c.cycle})
	c.Stats.Reads++
	return true
}

// EnqueueWrite accepts a write (always; the backlog stands in for the
// write buffer hierarchy above the 64-entry drain queue).
func (c *Controller) EnqueueWrite(addr int64) {
	a := c.mapper.Map(addr)
	for _, w := range c.writeQ {
		if w.addr == a {
			return // coalesce
		}
	}
	c.writeQ = append(c.writeQ, &request{addr: a, write: true, queued: c.cycle})
	c.Stats.Writes++
}

// PendingReads reports demand reads still queued (for drain-to-idle).
func (c *Controller) PendingReads() int { return len(c.readQ) }

// Cycle returns the controller's current memory-clock cycle.
func (c *Controller) Cycle() int64 { return c.cycle }

// Tick advances one memory-clock cycle and issues at most one command.
func (c *Controller) Tick() {
	c.cycle++
	c.fireReturns()

	if c.cycle >= c.nextREF {
		c.refPending = true
	}
	// Priority 1: refresh (close banks, then REF).
	if c.refPending {
		if c.tryRefresh() {
			return
		}
		// Banks still closing: fall through only if nothing to do for
		// refresh this cycle is impossible — tryRefresh issues PREs.
	}
	// Priority 2: mitigation victim refreshes.
	if c.tryMitigation() {
		return
	}
	if c.refPending {
		return // don't admit new demand work while a REF is due
	}
	// Priority 3: demand scheduling, FR-FCFS with write draining.
	c.updateDrainMode()
	if c.draining {
		if c.schedule(c.writeQ, true) {
			return
		}
		// While draining, still serve row-hit reads opportunistically.
		c.scheduleRowHits(c.readQ, false, -1)
		return
	}
	if c.schedule(c.readQ, false) {
		return
	}
	// Idle read queue: sneak writes out.
	if len(c.writeQ) > 0 && c.schedule(c.writeQ, true) {
		return
	}
	if c.cfg.ClosedRow {
		c.closeIdleRows()
	}
}

// closeIdleRows implements the closed-row policy: precharge any bank
// whose open row no queued request targets.
func (c *Controller) closeIdleRows() {
	for b := 0; b < c.ch.Geo.Banks(); b++ {
		open := c.ch.OpenRow(0, b)
		if open == -1 {
			continue
		}
		wanted := false
		for _, r := range c.readQ {
			if r.addr.Bank == b && r.addr.Row == open {
				wanted = true
				break
			}
		}
		if !wanted {
			for _, r := range c.writeQ {
				if r.addr.Bank == b && r.addr.Row == open {
					wanted = true
					break
				}
			}
		}
		if !wanted && c.ch.CanIssue(dram.CmdPRE, 0, b, 0, c.cycle) {
			c.ch.Issue(dram.CmdPRE, 0, b, 0, c.cycle)
			return
		}
	}
}

func (c *Controller) fireReturns() {
	n := 0
	for _, ev := range c.returns {
		if ev.cycle <= c.cycle {
			ev.fn()
		} else {
			c.returns[n] = ev
			n++
		}
	}
	c.returns = c.returns[:n]
}

// tryRefresh closes open banks and issues REF when possible. Returns true
// if it consumed the command slot.
func (c *Controller) tryRefresh() bool {
	if c.ch.CanIssue(dram.CmdREF, 0, 0, 0, c.cycle) {
		c.ch.Issue(dram.CmdREF, 0, 0, 0, c.cycle)
		c.Stats.REFs++
		c.Stats.RefreshBusyCycles += int64(c.ch.T.RFC) * int64(c.ch.Geo.Banks())
		c.refPending = false
		c.nextREF += c.refi
		return true
	}
	for b := 0; b < c.ch.Geo.Banks(); b++ {
		if c.ch.OpenRow(0, b) != -1 && c.ch.CanIssue(dram.CmdPRE, 0, b, 0, c.cycle) {
			c.ch.Issue(dram.CmdPRE, 0, b, 0, c.cycle)
			return true
		}
	}
	return false
}

// tryMitigation advances pending victim refreshes. Ops on different
// banks proceed concurrently (one in flight per bank); at most one
// command issues per cycle. Returns true if it consumed the command slot.
func (c *Controller) tryMitigation() bool {
	if len(c.mitQ) == 0 {
		return false
	}
	for b := range c.mitBankBusy {
		c.mitBankBusy[b] = false
	}
	for idx := 0; idx < len(c.mitQ); idx++ {
		op := &c.mitQ[idx]
		if c.mitBankBusy[op.bank] {
			continue // an earlier op owns this bank
		}
		c.mitBankBusy[op.bank] = true
		if !op.activated {
			switch open := c.ch.OpenRow(0, op.bank); {
			case open == op.row:
				// Row already open: its charge is restored; finish with
				// a precharge on a later cycle.
				op.activated = true
			case open != -1:
				if c.ch.CanIssue(dram.CmdPRE, 0, op.bank, 0, c.cycle) {
					c.ch.Issue(dram.CmdPRE, 0, op.bank, 0, c.cycle)
					return true
				}
			default:
				if c.ch.CanIssue(dram.CmdACT, 0, op.bank, op.row, c.cycle) {
					c.issuingMitigation = true
					c.ch.Issue(dram.CmdACT, 0, op.bank, op.row, c.cycle)
					c.issuingMitigation = false
					op.activated = true
					return true
				}
			}
			continue
		}
		if c.ch.CanIssue(dram.CmdPRE, 0, op.bank, 0, c.cycle) {
			c.ch.Issue(dram.CmdPRE, 0, op.bank, 0, c.cycle)
			c.mitQ = append(c.mitQ[:idx], c.mitQ[idx+1:]...)
			return true
		}
	}
	return false
}

// updateDrainMode applies write-drain hysteresis.
func (c *Controller) updateDrainMode() {
	hi := c.cfg.WriteQueue
	lo := c.cfg.WriteQueue / 4
	if !c.draining && len(c.writeQ) >= hi {
		c.draining = true
	}
	if c.draining && len(c.writeQ) <= lo {
		c.draining = false
	}
}

// starveLimit is the age (memory cycles) past which the oldest request
// preempts row hits to its bank. Unbounded row-hit priority lets
// streaming cores extend a bank's tRTP horizon forever and starve a
// row-conflict request — real FR-FCFS schedulers cap the hit streak.
const starveLimit = 512

// schedule applies FR-FCFS to the queue: ready row-hit column commands
// first, otherwise progress the oldest request (ACT or PRE). Once the
// oldest request is starving, it preempts row hits to its bank. A
// throttle-blacklisted request is waiting on the mechanism, not on the
// scheduler, so it neither counts as starving nor preempts anyone.
// Returns true if a command issued.
func (c *Controller) schedule(q []*request, write bool) bool {
	if len(q) == 0 {
		return false
	}
	// One throttle scan per cycle: find the oldest unthrottled request and
	// hand its index to progressFrom, so the sketch queries behind
	// ActAllowed are not repeated over the same prefix.
	oldest := 0
	if c.throttle != nil {
		oldest = -1
		for i, r := range q {
			if !c.throttledIdle(r) {
				oldest = i
				break
			}
		}
		if oldest != 0 {
			c.Stats.ThrottleStallCycles++
		}
		if oldest < 0 {
			// Every queued request is throttle-blocked with its row closed:
			// no row hit or progress is possible this cycle.
			return false
		}
	}
	starving := c.cycle-q[oldest].queued > starveLimit
	exclude := -1
	if starving {
		exclude = q[oldest].addr.Bank
		if c.progressFrom(q, write, oldest) {
			return true
		}
	}
	if !c.cfg.FCFSOnly && c.scheduleRowHits(q, write, exclude) {
		return true
	}
	if !starving && c.progressFrom(q, write, oldest) {
		return true
	}
	return false
}

// throttledIdle reports whether a request is blocked by the throttling
// mechanism: its row is not open (it would need an ACT) and the mechanism
// denies that ACT.
func (c *Controller) throttledIdle(req *request) bool {
	if c.throttle == nil || c.ch.OpenRow(0, req.addr.Bank) == req.addr.Row {
		return false
	}
	return !c.throttle.ActAllowed(req.addr.Bank, req.addr.Row, c.cycle)
}

// progressFrom moves q[start] — the oldest schedulable request, as
// determined by schedule's throttle scan — forward: serve it when its row
// is open, otherwise open (or close) the row it needs.
func (c *Controller) progressFrom(q []*request, write bool, start int) bool {
	req := q[start]
	bank := req.addr.Bank
	open := c.ch.OpenRow(0, bank)
	if open == req.addr.Row {
		return c.serveAt(q, start, write)
	}
	if open == -1 {
		if c.ch.CanIssue(dram.CmdACT, 0, bank, req.addr.Row, c.cycle) {
			c.ch.Issue(dram.CmdACT, 0, bank, req.addr.Row, c.cycle)
			return true
		}
		return false
	}
	if c.ch.CanIssue(dram.CmdPRE, 0, bank, 0, c.cycle) {
		c.ch.Issue(dram.CmdPRE, 0, bank, 0, c.cycle)
		return true
	}
	return false
}

// scheduleRowHits issues the first ready row-hit column access in q,
// skipping excludeBank (a starving request's bank).
func (c *Controller) scheduleRowHits(q []*request, write bool, excludeBank int) bool {
	for i, req := range q {
		if req.addr.Bank == excludeBank {
			continue
		}
		if c.ch.OpenRow(0, req.addr.Bank) != req.addr.Row {
			continue
		}
		if c.serveAt(q, i, write) {
			return true
		}
	}
	return false
}

// serveAt issues the column command for q[i] (whose row must be open)
// and removes it from the queue. Returns false when timing blocks it.
func (c *Controller) serveAt(q []*request, i int, write bool) bool {
	req := q[i]
	cmd := dram.CmdRD
	if req.write {
		cmd = dram.CmdWR
	}
	if !c.ch.CanIssue(cmd, 0, req.addr.Bank, req.addr.Row, c.cycle) {
		return false
	}
	ready := c.ch.Issue(cmd, 0, req.addr.Bank, req.addr.Row, c.cycle)
	if !req.write && req.onDone != nil {
		c.returns = append(c.returns, retEvent{cycle: ready, fn: req.onDone})
	}
	if write {
		c.writeQ = append(q[:i], q[i+1:]...)
	} else {
		c.readQ = append(q[:i], q[i+1:]...)
	}
	return true
}
