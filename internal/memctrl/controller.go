// Package memctrl implements the simulated memory controller of Table 6:
// FR-FCFS scheduling over 64-entry read/write queues, open-row policy
// with write draining, tREFI-paced all-bank refresh, and the hook through
// which RowHammer mitigation mechanisms observe activations and inject
// targeted victim-row refreshes.
//
// Every demand request carries a requester (source/thread) ID, which
// feeds two consumers: the optional BLISS fairness scheduler (per-
// requester service-streak blacklisting, Config.BLISS) and the
// mitigation.Throttler hook (per-requester queue admission and ACT
// attribution, BlockHammer's RowBlocker-Req).
package memctrl

import (
	"errors"

	"repro/internal/dram"
	"repro/internal/mitigation"
)

// Config sizes the controller.
type Config struct {
	ReadQueue  int // demand read queue capacity (Table 6: 64)
	WriteQueue int // write drain high watermark

	// FCFSOnly disables the first-ready (row-hit) scan, degrading the
	// scheduler to plain FCFS (ablation).
	FCFSOnly bool
	// ClosedRow precharges a bank as soon as no queued request targets
	// its open row (closed-row policy ablation; default is open-row).
	ClosedRow bool

	// BLISS enables the blacklisting fairness scheduler (after Subramanian
	// et al.): a requester served BLISSStreak consecutive demand reads is
	// blacklisted until the next clearing interval, and non-blacklisted
	// requesters' reads take scheduling priority. The cheap streak counter
	// is what makes a max-MLP attacker lose its FR-FCFS row-hit monopoly
	// without per-request bookkeeping.
	BLISS bool
	// BLISSStreak is the consecutive-service count that blacklists a
	// requester (default 4).
	BLISSStreak int
	// BLISSClearCycles is the blacklist clearing period in memory-clock
	// cycles (default 10000).
	BLISSClearCycles int64
}

// Table6Config returns the paper's controller parameters.
func Table6Config() Config { return Config{ReadQueue: 64, WriteQueue: 64} }

type request struct {
	addr   dram.Address
	req    int // requester (source/thread) ID; RequesterNone when unknown
	write  bool
	onDone func()
	queued int64
}

// mitOp is a mitigation-triggered victim refresh: an ACT+PRE pair that
// restores a row's charge.
type mitOp struct {
	bank, row int
	activated bool
}

// Stats aggregates controller activity, split between demand and
// mitigation traffic so the Figure 10a bandwidth overhead can be derived.
type Stats struct {
	Reads, Writes int64

	DemandACTs     int64
	MitigationACTs int64
	REFs           int64

	// MitigationBusyCycles: bank-cycles consumed by mitigation refreshes
	// (tRC per targeted refresh).
	MitigationBusyCycles int64
	// RefreshBusyCycles: bank-cycles consumed by REF commands.
	RefreshBusyCycles int64
	// DemandBusyCycles: bank-cycles consumed by demand activates (tRC
	// per row cycle, an upper-bound attribution).
	DemandBusyCycles int64

	ReadQueueFull int64

	// ThrottledReads counts demand reads rejected at queue admission
	// because their target row was blacklisted by a throttling mechanism
	// (mitigation.Throttler). Unit: requests.
	ThrottledReads int64
	// ThrottleStallCycles counts scheduler passes that skipped at least
	// one throttle-blocked request. Unit: (approximately) memory cycles.
	ThrottleStallCycles int64

	// BLISSBlacklists counts requester blacklisting events of the BLISS
	// fairness scheduler.
	BLISSBlacklists int64

	// PerRequester splits demand-read activity by source, indexed by
	// requester ID (grown on demand; negative/unknown sources are counted
	// only in the aggregate fields above).
	PerRequester []RequesterStats
}

// RequesterStats is one source's slice of the controller's demand-read
// activity.
type RequesterStats struct {
	Reads          int64 // reads accepted into the queue
	ServedReads    int64 // reads whose column command issued
	ThrottledReads int64 // reads rejected at admission by the throttler
	Blacklistings  int64 // times BLISS blacklisted this requester

	// BusBusyCycles attributes demand DRAM occupancy to the source: tRC
	// bank-cycles per demand ACT the requester's request caused (the same
	// upper-bound attribution as Stats.DemandBusyCycles) plus the data-bus
	// burst cycles of every column command served for it. Together with
	// the sibling entries it completes the DoS picture: who consumed the
	// memory system, not just who asked.
	BusBusyCycles int64
}

// BusSharePct returns this requester's share of all per-requester
// attributed demand bus time, in percent (0 when nothing is attributed).
func (s *Stats) BusSharePct(id int) float64 {
	if id < 0 || id >= len(s.PerRequester) {
		return 0
	}
	var total int64
	for _, rs := range s.PerRequester {
		total += rs.BusBusyCycles
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(s.PerRequester[id].BusBusyCycles) / float64(total)
}

// maxTrackedRequesters bounds the per-requester stats table. Requester
// IDs come from trace files as well as cores, so an adversarial or
// corrupt trace could otherwise force a multi-gigabyte allocation with
// one huge ID; sources beyond the cap are counted only in the aggregate
// fields.
const maxTrackedRequesters = 1024

// reqStats returns the per-requester slot for id, growing the slice on
// first sight; nil for unknown or untracked sources.
func (s *Stats) reqStats(id int) *RequesterStats {
	if id < 0 || id >= maxTrackedRequesters {
		return nil
	}
	for len(s.PerRequester) <= id {
		s.PerRequester = append(s.PerRequester, RequesterStats{})
	}
	return &s.PerRequester[id]
}

// Controller owns one channel. Drive it with Tick once per memory-clock
// cycle.
type Controller struct {
	cfg      Config
	ch       *dram.Channel
	mapper   *dram.AddressMapper
	mech     mitigation.Mechanism
	throttle mitigation.Throttler // non-nil when mech implements it

	readQ       []*request
	writeQ      []*request
	mitQ        []mitOp
	mitBankBusy []bool // scratch: banks owned by an earlier op this cycle

	draining   bool
	refPending bool
	nextREF    int64
	refi       int64

	// Pending read-data returns, in issue order (fixed CL+BL ⇒ FIFO).
	returns []retEvent

	cycle int64

	// nwVal/nwValid memoize NextWork between invalidating mutations.
	nwVal   int64
	nwValid bool

	// issuingMitigation marks Issue calls made for mitigation ops so the
	// OnACT observer can attribute them.
	issuingMitigation bool
	// issuingReq is the requester whose demand request is being progressed
	// when an ACT issues (RequesterNone otherwise), so the throttler's
	// per-source bookkeeping sees who caused each activation.
	issuingReq int

	// BLISS fairness state: the last-served requester, its service streak,
	// and the current blacklist (cleared every BLISSClearCycles).
	blissLast   int
	blissStreak int
	blissBlack  map[int]bool
	blissClear  int64

	// lastThrottleStall deduplicates ThrottleStallCycles across the BLISS
	// scheduler's two class passes within one cycle.
	lastThrottleStall int64

	// onACT and onREF forward the command stream to an external observer
	// (the fault-model hammer accountant of internal/attack).
	onACT dram.ACTObserver
	onREF dram.RefreshObserver

	Stats Stats
}

type retEvent struct {
	cycle int64
	fn    func()
}

// New builds a controller over the channel. mech may be nil (no
// mitigation).
func New(cfg Config, ch *dram.Channel, mech mitigation.Mechanism) (*Controller, error) {
	if cfg.ReadQueue <= 0 || cfg.WriteQueue <= 0 {
		return nil, errors.New("memctrl: queue capacities must be positive")
	}
	mapper, err := dram.NewAddressMapper(ch.Geo)
	if err != nil {
		return nil, err
	}
	if mech == nil {
		mech = mitigation.NewNone()
	}
	if cfg.BLISS {
		if cfg.BLISSStreak <= 0 {
			cfg.BLISSStreak = 4
		}
		if cfg.BLISSClearCycles <= 0 {
			cfg.BLISSClearCycles = 10_000
		}
	}
	c := &Controller{
		cfg:         cfg,
		ch:          ch,
		mapper:      mapper,
		mech:        mech,
		mitBankBusy: make([]bool, ch.Geo.Banks()),
		issuingReq:  mitigation.RequesterNone,
		blissLast:   mitigation.RequesterNone,
	}
	if cfg.BLISS {
		c.blissBlack = make(map[int]bool)
		c.blissClear = cfg.BLISSClearCycles
	}
	c.throttle, _ = mech.(mitigation.Throttler)
	c.refi = int64(float64(ch.T.REFI) / mech.RefreshMultiplier())
	if c.refi < int64(ch.T.RFC)+1 {
		c.refi = int64(ch.T.RFC) + 1 // refresh storm floor: back-to-back REF
	}
	c.nextREF = c.refi
	ch.OnACT(c.observeACT)
	ch.OnRefresh(c.observeRefresh)
	return c, nil
}

// Mechanism returns the active mitigation mechanism.
func (c *Controller) Mechanism() mitigation.Mechanism { return c.mech }

// OnACT registers an external activation observer (e.g. the fault model).
func (c *Controller) OnACT(fn dram.ACTObserver) { c.onACT = fn }

// OnRefresh registers an external observer of the auto-refresh rotation,
// so hammer accountants can clear per-row damage exactly when the DRAM
// restores the rows' charge.
func (c *Controller) OnRefresh(fn dram.RefreshObserver) { c.onREF = fn }

// observeACT feeds the mitigation mechanism and external observers.
func (c *Controller) observeACT(rank, bank, row int, cycle int64) {
	if c.issuingMitigation {
		c.Stats.MitigationACTs++
		c.Stats.MitigationBusyCycles += int64(c.ch.T.RC)
	} else {
		c.Stats.DemandACTs++
		c.Stats.DemandBusyCycles += int64(c.ch.T.RC)
		if rs := c.Stats.reqStats(c.issuingReq); rs != nil {
			rs.BusBusyCycles += int64(c.ch.T.RC)
		}
		if c.throttle != nil {
			c.throttle.OnRequesterACT(c.issuingReq, bank, row, cycle)
		}
	}
	victims := c.mech.OnActivate(bank, row, cycle, c.issuingMitigation)
	for _, v := range victims {
		c.enqueueMitigation(bank, v)
	}
	if c.onACT != nil {
		c.onACT(rank, bank, row, cycle)
	}
}

func (c *Controller) observeRefresh(rank, bank, rowStart, rowCount int, cycle int64) {
	extra := c.mech.OnAutoRefresh(bank, rowStart, rowCount, cycle)
	for _, v := range extra {
		c.enqueueMitigation(bank, v)
	}
	if c.onREF != nil {
		c.onREF(rank, bank, rowStart, rowCount, cycle)
	}
}

func (c *Controller) enqueueMitigation(bank, row int) {
	// Deduplicate identical pending ops: one refresh suffices.
	for _, op := range c.mitQ {
		if op.bank == bank && op.row == row && !op.activated {
			return
		}
	}
	c.mitQ = append(c.mitQ, mitOp{bank: bank, row: row})
}

// EnqueueRead accepts a demand read for the given requester; returns
// false when the queue is full or the throttling mechanism rejects the
// request at admission (BlockHammer's RowBlocker-Req).
func (c *Controller) EnqueueRead(requester int, addr int64, onDone func()) bool {
	c.nwValid = false
	// Read-after-write forwarding from the write backlog.
	line := c.mapper.LineAddress(addr)
	for _, w := range c.writeQ {
		if w.addr == c.mapper.Map(line) && w.write {
			c.returns = append(c.returns, retEvent{cycle: c.cycle + 1, fn: onDone})
			c.Stats.Reads++
			if rs := c.Stats.reqStats(requester); rs != nil {
				rs.Reads++
			}
			return true
		}
	}
	if len(c.readQ) >= c.cfg.ReadQueue {
		c.Stats.ReadQueueFull++
		return false
	}
	a := c.mapper.Map(addr)
	if c.throttle != nil &&
		!c.throttle.AdmitRequest(requester, a.Bank, a.Row,
			float64(len(c.readQ))/float64(c.cfg.ReadQueue), c.cycle) {
		c.Stats.ThrottledReads++
		if rs := c.Stats.reqStats(requester); rs != nil {
			rs.ThrottledReads++
		}
		return false
	}
	c.readQ = append(c.readQ, &request{addr: a, req: requester, onDone: onDone, queued: c.cycle})
	c.Stats.Reads++
	if rs := c.Stats.reqStats(requester); rs != nil {
		rs.Reads++
	}
	return true
}

// EnqueueWrite accepts a write (always; the backlog stands in for the
// write buffer hierarchy above the 64-entry drain queue). requester is
// the source whose fill or flush produced the writeback.
func (c *Controller) EnqueueWrite(requester int, addr int64) {
	c.nwValid = false
	a := c.mapper.Map(addr)
	for _, w := range c.writeQ {
		if w.addr == a {
			return // coalesce
		}
	}
	c.writeQ = append(c.writeQ, &request{addr: a, req: requester, write: true, queued: c.cycle})
	c.Stats.Writes++
}

// PendingReads reports demand reads still queued (for drain-to-idle).
func (c *Controller) PendingReads() int { return len(c.readQ) }

// Cycle returns the controller's current memory-clock cycle.
func (c *Controller) Cycle() int64 { return c.cycle }

// NextWork returns a lower bound on the next memory cycle at which Tick
// could do anything beyond advancing the clock: issue or progress a
// command, fire a read return, or mutate statistics. Every Tick at a
// cycle strictly below the bound is a no-op that AdvanceIdle replays
// exactly, so the event engine may skip straight to it. The bound is
// conservative (a real Tick at the returned cycle may still find nothing
// ready — rank-scoped DRAM constraints are ignored); it is never late.
//
// The scan is memoized: controller state only changes through Tick,
// AdvanceIdle, and the enqueue paths, each of which invalidates the
// cached bound, so the event engine may probe every CPU cycle for free.
func (c *Controller) NextWork() int64 {
	if !c.nwValid {
		c.nwVal = c.nextWorkScan()
		c.nwValid = true
	}
	return c.nwVal
}

func (c *Controller) nextWorkScan() int64 {
	// States whose Tick mutates per-cycle state even without issuing:
	// a due refresh keeps closing banks, mitigation ops flip their
	// activated flag outside the command slot, and a throttling mechanism
	// is consulted (ThrottleStallCycles, sketch queries) whenever any
	// request is queued.
	if c.refPending || len(c.mitQ) > 0 ||
		(c.throttle != nil && (len(c.readQ) > 0 || len(c.writeQ) > 0)) {
		return c.cycle + 1
	}
	// floor is the tightest bound the scan can reach; stop as soon as it
	// does (dense queues almost always have a ready request).
	floor := c.cycle + 1
	w := c.nextREF
	for _, ev := range c.returns {
		if ev.cycle < w {
			if ev.cycle <= floor {
				return floor
			}
			w = ev.cycle
		}
	}
	for _, r := range c.readQ {
		if b := c.reqLowerBound(r); b < w {
			if b <= floor {
				return floor
			}
			w = b
		}
	}
	for _, r := range c.writeQ {
		if b := c.reqLowerBound(r); b < w {
			if b <= floor {
				return floor
			}
			w = b
		}
	}
	if c.cfg.ClosedRow {
		// closeIdleRows may precharge an untargeted open row as soon as
		// its bank allows.
		for b := 0; b < c.ch.Geo.Banks(); b++ {
			open, _, nextPRE, _, _ := c.ch.BankTimes(0, b)
			if open != -1 && nextPRE < w {
				w = nextPRE
			}
		}
	}
	if w <= c.cycle {
		w = c.cycle + 1
	}
	return w
}

// reqLowerBound returns the earliest cycle at which any command could
// legally progress the request, from per-bank timing alone.
func (c *Controller) reqLowerBound(r *request) int64 {
	open, nextACT, nextPRE, nextRD, nextWR := c.ch.BankTimes(0, r.addr.Bank)
	switch {
	case open == r.addr.Row:
		if r.write {
			return nextWR
		}
		return nextRD
	case open == -1:
		return nextACT
	default:
		return nextPRE
	}
}

// AdvanceIdle advances the controller k memory cycles, replaying the only
// time-triggered state the skipped no-op Ticks would have touched: the
// BLISS clearing schedule. Legal only when every skipped cycle is below
// NextWork().
func (c *Controller) AdvanceIdle(k int64) {
	c.nwValid = false
	c.cycle += k
	if c.cfg.BLISS {
		// The per-cycle loop fires a clear at exactly cycle==blissClear
		// (ticks hit every integer), so the replay steps period-by-period.
		for c.blissClear <= c.cycle {
			for k := range c.blissBlack {
				delete(c.blissBlack, k)
			}
			c.blissClear += c.cfg.BLISSClearCycles
		}
	}
}

// Tick advances one memory-clock cycle and issues at most one command.
func (c *Controller) Tick() {
	c.nwValid = false
	c.cycle++
	c.fireReturns()

	// BLISS forgives all blacklists every clearing interval, so a phase
	// change in a once-greedy requester is not punished forever.
	if c.cfg.BLISS && c.cycle >= c.blissClear {
		for k := range c.blissBlack {
			delete(c.blissBlack, k)
		}
		c.blissClear = c.cycle + c.cfg.BLISSClearCycles
	}

	if c.cycle >= c.nextREF {
		c.refPending = true
	}
	// Priority 1: refresh (close banks, then REF).
	if c.refPending {
		if c.tryRefresh() {
			return
		}
		// Banks still closing: fall through only if nothing to do for
		// refresh this cycle is impossible — tryRefresh issues PREs.
	}
	// Priority 2: mitigation victim refreshes.
	if c.tryMitigation() {
		return
	}
	if c.refPending {
		return // don't admit new demand work while a REF is due
	}
	// Priority 3: demand scheduling, FR-FCFS with write draining.
	c.updateDrainMode()
	if c.draining {
		if c.schedule(c.writeQ, true) {
			return
		}
		// While draining, still serve row-hit reads opportunistically —
		// honoring the BLISS class order, which applies wherever reads
		// compete for the command slot.
		if c.cfg.BLISS && len(c.blissBlack) > 0 {
			if !c.scheduleRowHits(c.readQ, false, -1, c.favored) {
				c.scheduleRowHits(c.readQ, false, -1, c.demoted)
			}
		} else {
			c.scheduleRowHits(c.readQ, false, -1, nil)
		}
		return
	}
	if c.schedule(c.readQ, false) {
		return
	}
	// Idle read queue: sneak writes out.
	if len(c.writeQ) > 0 && c.schedule(c.writeQ, true) {
		return
	}
	if c.cfg.ClosedRow {
		c.closeIdleRows()
	}
}

// closeIdleRows implements the closed-row policy: precharge any bank
// whose open row no queued request targets.
func (c *Controller) closeIdleRows() {
	for b := 0; b < c.ch.Geo.Banks(); b++ {
		open := c.ch.OpenRow(0, b)
		if open == -1 {
			continue
		}
		wanted := false
		for _, r := range c.readQ {
			if r.addr.Bank == b && r.addr.Row == open {
				wanted = true
				break
			}
		}
		if !wanted {
			for _, r := range c.writeQ {
				if r.addr.Bank == b && r.addr.Row == open {
					wanted = true
					break
				}
			}
		}
		if !wanted && c.ch.CanIssue(dram.CmdPRE, 0, b, 0, c.cycle) {
			c.ch.Issue(dram.CmdPRE, 0, b, 0, c.cycle)
			return
		}
	}
}

func (c *Controller) fireReturns() {
	n := 0
	for _, ev := range c.returns {
		if ev.cycle <= c.cycle {
			ev.fn()
		} else {
			c.returns[n] = ev
			n++
		}
	}
	c.returns = c.returns[:n]
}

// tryRefresh closes open banks and issues REF when possible. Returns true
// if it consumed the command slot.
func (c *Controller) tryRefresh() bool {
	if c.ch.CanIssue(dram.CmdREF, 0, 0, 0, c.cycle) {
		c.ch.Issue(dram.CmdREF, 0, 0, 0, c.cycle)
		c.Stats.REFs++
		c.Stats.RefreshBusyCycles += int64(c.ch.T.RFC) * int64(c.ch.Geo.Banks())
		c.refPending = false
		c.nextREF += c.refi
		return true
	}
	for b := 0; b < c.ch.Geo.Banks(); b++ {
		if c.ch.OpenRow(0, b) != -1 && c.ch.CanIssue(dram.CmdPRE, 0, b, 0, c.cycle) {
			c.ch.Issue(dram.CmdPRE, 0, b, 0, c.cycle)
			return true
		}
	}
	return false
}

// tryMitigation advances pending victim refreshes. Ops on different
// banks proceed concurrently (one in flight per bank); at most one
// command issues per cycle. Returns true if it consumed the command slot.
func (c *Controller) tryMitigation() bool {
	if len(c.mitQ) == 0 {
		return false
	}
	for b := range c.mitBankBusy {
		c.mitBankBusy[b] = false
	}
	for idx := 0; idx < len(c.mitQ); idx++ {
		op := &c.mitQ[idx]
		if c.mitBankBusy[op.bank] {
			continue // an earlier op owns this bank
		}
		c.mitBankBusy[op.bank] = true
		if !op.activated {
			switch open := c.ch.OpenRow(0, op.bank); {
			case open == op.row:
				// Row already open: its charge is restored; finish with
				// a precharge on a later cycle.
				op.activated = true
			case open != -1:
				if c.ch.CanIssue(dram.CmdPRE, 0, op.bank, 0, c.cycle) {
					c.ch.Issue(dram.CmdPRE, 0, op.bank, 0, c.cycle)
					return true
				}
			default:
				if c.ch.CanIssue(dram.CmdACT, 0, op.bank, op.row, c.cycle) {
					c.issuingMitigation = true
					c.ch.Issue(dram.CmdACT, 0, op.bank, op.row, c.cycle)
					c.issuingMitigation = false
					op.activated = true
					return true
				}
			}
			continue
		}
		if c.ch.CanIssue(dram.CmdPRE, 0, op.bank, 0, c.cycle) {
			c.ch.Issue(dram.CmdPRE, 0, op.bank, 0, c.cycle)
			c.mitQ = append(c.mitQ[:idx], c.mitQ[idx+1:]...)
			return true
		}
	}
	return false
}

// updateDrainMode applies write-drain hysteresis.
func (c *Controller) updateDrainMode() {
	hi := c.cfg.WriteQueue
	lo := c.cfg.WriteQueue / 4
	if !c.draining && len(c.writeQ) >= hi {
		c.draining = true
	}
	if c.draining && len(c.writeQ) <= lo {
		c.draining = false
	}
}

// starveLimit is the age (memory cycles) past which the oldest request
// preempts row hits to its bank. Unbounded row-hit priority lets
// streaming cores extend a bank's tRTP horizon forever and starve a
// row-conflict request — real FR-FCFS schedulers cap the hit streak.
const starveLimit = 512

// schedule applies FR-FCFS to the queue. Under BLISS, demand reads are
// scheduled in two classes: requests from non-blacklisted requesters take
// the command slot first, and a blacklisted requester's requests are
// considered only when no favored request can use the cycle — BLISS
// demotes, it never blocks, so liveness is untouched.
// Returns true if a command issued.
func (c *Controller) schedule(q []*request, write bool) bool {
	if c.cfg.BLISS && !write && len(c.blissBlack) > 0 {
		if c.scheduleClass(q, write, c.favored) {
			return true
		}
		// A *starving* favored request claims its bank from the demoted
		// pass too, exactly as row hits yield inside one FR-FCFS pass:
		// otherwise demoted row hits keep extending the bank's tRTP
		// horizon and the favored request starves behind the very traffic
		// BLISS demoted. Short of starvation, demoted requests may fill
		// the idle slot anywhere — BLISS reorders, it does not idle banks.
		if ex := c.starvingFavoredBank(q); ex >= 0 {
			return c.scheduleClass(q, write, func(r *request) bool {
				return c.demoted(r) && r.addr.Bank != ex
			})
		}
		return c.scheduleClass(q, write, c.demoted)
	}
	return c.scheduleClass(q, write, nil)
}

// favored and demoted are the two BLISS scheduling classes.
func (c *Controller) favored(r *request) bool { return !c.blissBlack[r.req] }
func (c *Controller) demoted(r *request) bool { return c.blissBlack[r.req] }

// starvingFavoredBank returns the bank of the oldest schedulable favored
// request if that request has starved past starveLimit, else -1.
func (c *Controller) starvingFavoredBank(q []*request) int {
	for _, r := range q {
		if !c.favored(r) {
			continue
		}
		if c.throttle != nil && c.throttledIdle(r) {
			continue
		}
		if c.cycle-r.queued > starveLimit {
			return r.addr.Bank
		}
		return -1 // oldest schedulable favored request is not starving
	}
	return -1
}

// scheduleClass applies FR-FCFS to the subset of q matching eligible
// (nil = every request): ready row-hit column commands first, otherwise
// progress the oldest request (ACT or PRE). Once the oldest request is
// starving, it preempts row hits to its bank. A throttle-blacklisted
// request is waiting on the mechanism, not on the scheduler, so it
// neither counts as starving nor preempts anyone. Returns true if a
// command issued.
func (c *Controller) scheduleClass(q []*request, write bool, eligible func(*request) bool) bool {
	if len(q) == 0 {
		return false
	}
	// One throttle scan per pass: find the oldest eligible unthrottled
	// request and hand its index to progressFrom, so the sketch queries
	// behind ActAllowed are not repeated over the same prefix.
	oldest := -1
	throttleSkip := false
	for i, r := range q {
		if eligible != nil && !eligible(r) {
			continue
		}
		if c.throttle != nil && c.throttledIdle(r) {
			throttleSkip = true
			continue
		}
		oldest = i
		break
	}
	// Count at most one throttle-stall per memory cycle: under BLISS this
	// method runs once per class, and blocked requests in both classes
	// must not inflate the (per-cycle) stat.
	if throttleSkip && c.lastThrottleStall != c.cycle {
		c.Stats.ThrottleStallCycles++
		c.lastThrottleStall = c.cycle
	}
	if oldest < 0 {
		// Every eligible request is throttle-blocked with its row closed:
		// no row hit or progress is possible for this class this cycle.
		return false
	}
	starving := c.cycle-q[oldest].queued > starveLimit
	exclude := -1
	if starving {
		exclude = q[oldest].addr.Bank
		if c.progressFrom(q, write, oldest) {
			return true
		}
	}
	if !c.cfg.FCFSOnly && c.scheduleRowHits(q, write, exclude, eligible) {
		return true
	}
	if !starving && c.progressFrom(q, write, oldest) {
		return true
	}
	return false
}

// throttledIdle reports whether a request is blocked by the throttling
// mechanism: its row is not open (it would need an ACT) and the mechanism
// denies that ACT.
func (c *Controller) throttledIdle(req *request) bool {
	if c.throttle == nil || c.ch.OpenRow(0, req.addr.Bank) == req.addr.Row {
		return false
	}
	return !c.throttle.ActAllowed(req.req, req.addr.Bank, req.addr.Row, c.cycle)
}

// progressFrom moves q[start] — the oldest schedulable request, as
// determined by schedule's throttle scan — forward: serve it when its row
// is open, otherwise open (or close) the row it needs.
func (c *Controller) progressFrom(q []*request, write bool, start int) bool {
	req := q[start]
	bank := req.addr.Bank
	open := c.ch.OpenRow(0, bank)
	if open == req.addr.Row {
		return c.serveAt(q, start, write)
	}
	if open == -1 {
		if c.ch.CanIssue(dram.CmdACT, 0, bank, req.addr.Row, c.cycle) {
			c.issuingReq = req.req
			c.ch.Issue(dram.CmdACT, 0, bank, req.addr.Row, c.cycle)
			c.issuingReq = mitigation.RequesterNone
			return true
		}
		return false
	}
	if c.ch.CanIssue(dram.CmdPRE, 0, bank, 0, c.cycle) {
		c.ch.Issue(dram.CmdPRE, 0, bank, 0, c.cycle)
		return true
	}
	return false
}

// scheduleRowHits issues the first ready row-hit column access in q
// matching eligible (nil = all), skipping excludeBank (a starving
// request's bank).
func (c *Controller) scheduleRowHits(q []*request, write bool, excludeBank int, eligible func(*request) bool) bool {
	for i, req := range q {
		if eligible != nil && !eligible(req) {
			continue
		}
		if req.addr.Bank == excludeBank {
			continue
		}
		if c.ch.OpenRow(0, req.addr.Bank) != req.addr.Row {
			continue
		}
		if c.serveAt(q, i, write) {
			return true
		}
	}
	return false
}

// serveAt issues the column command for q[i] (whose row must be open)
// and removes it from the queue. Returns false when timing blocks it.
func (c *Controller) serveAt(q []*request, i int, write bool) bool {
	req := q[i]
	cmd := dram.CmdRD
	if req.write {
		cmd = dram.CmdWR
	}
	if !c.ch.CanIssue(cmd, 0, req.addr.Bank, req.addr.Row, c.cycle) {
		return false
	}
	ready := c.ch.Issue(cmd, 0, req.addr.Bank, req.addr.Row, c.cycle)
	if !req.write && req.onDone != nil {
		c.returns = append(c.returns, retEvent{cycle: ready, fn: req.onDone})
	}
	// Data-bus occupancy: every served column command burns BL clocks of
	// the shared bus for its requester, row hit or not.
	if rs := c.Stats.reqStats(req.req); rs != nil {
		rs.BusBusyCycles += int64(c.ch.T.BL)
	}
	if !write {
		if rs := c.Stats.reqStats(req.req); rs != nil {
			rs.ServedReads++
		}
		// BLISS streak accounting: a requester monopolizing consecutive
		// read service gets blacklisted until the next clearing interval.
		if c.cfg.BLISS {
			if req.req == c.blissLast {
				c.blissStreak++
			} else {
				c.blissLast, c.blissStreak = req.req, 1
			}
			if c.blissStreak >= c.cfg.BLISSStreak {
				if req.req >= 0 && !c.blissBlack[req.req] {
					c.blissBlack[req.req] = true
					c.Stats.BLISSBlacklists++
					if rs := c.Stats.reqStats(req.req); rs != nil {
						rs.Blacklistings++
					}
				}
				c.blissStreak = 0
			}
		}
	}
	if write {
		c.writeQ = append(q[:i], q[i+1:]...)
	} else {
		c.readQ = append(q[:i], q[i+1:]...)
	}
	return true
}
