package memctrl

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/mitigation"
)

func testController(t *testing.T, mech mitigation.Mechanism) (*Controller, *dram.Channel) {
	t.Helper()
	geo := dram.Table6Geometry()
	ch, err := dram.NewChannel(geo, dram.DDR4_2400(geo.Rows))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(Table6Config(), ch, mech)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, ch
}

func run(ctrl *Controller, cycles int) {
	for i := 0; i < cycles; i++ {
		ctrl.Tick()
	}
}

func TestReadCompletes(t *testing.T) {
	ctrl, _ := testController(t, nil)
	done := false
	if !ctrl.EnqueueRead(0, 0x10000, func() { done = true }) {
		t.Fatal("read rejected on empty queue")
	}
	run(ctrl, 200)
	if !done {
		t.Fatal("read never completed")
	}
	if ctrl.Stats.Reads != 1 || ctrl.Stats.DemandACTs != 1 {
		t.Errorf("stats = %+v", ctrl.Stats)
	}
}

func TestReadQueueCapacity(t *testing.T) {
	ctrl, _ := testController(t, nil)
	accepted := 0
	for i := 0; i < 100; i++ {
		if ctrl.EnqueueRead(0, int64(i)*1<<20, func() {}) {
			accepted++
		}
	}
	if accepted != Table6Config().ReadQueue {
		t.Errorf("accepted %d reads, want %d", accepted, Table6Config().ReadQueue)
	}
	if ctrl.Stats.ReadQueueFull == 0 {
		t.Error("queue-full counter not incremented")
	}
}

func TestWritesDrainEventually(t *testing.T) {
	ctrl, _ := testController(t, nil)
	for i := 0; i < 80; i++ {
		ctrl.EnqueueWrite(0, int64(i)*1<<14)
	}
	if ctrl.Stats.Writes != 80 {
		t.Fatalf("writes accepted = %d", ctrl.Stats.Writes)
	}
	run(ctrl, 20_000)
	if ctrl.writeQ.n != 0 {
		t.Errorf("%d writes still queued", ctrl.writeQ.n)
	}
	if ctrl.Stats.DemandACTs == 0 {
		t.Error("writes issued no activates")
	}
}

func TestWriteCoalescing(t *testing.T) {
	ctrl, _ := testController(t, nil)
	ctrl.EnqueueWrite(0, 0x4000)
	ctrl.EnqueueWrite(0, 0x4000)
	if ctrl.writeQ.n != 1 {
		t.Errorf("duplicate write not coalesced: %d", ctrl.writeQ.n)
	}
}

func TestReadAfterWriteForwarding(t *testing.T) {
	ctrl, _ := testController(t, nil)
	ctrl.EnqueueWrite(0, 0x8000)
	done := false
	if !ctrl.EnqueueRead(0, 0x8000, func() { done = true }) {
		t.Fatal("forwarded read rejected")
	}
	run(ctrl, 3)
	if !done {
		t.Error("forwarded read did not complete immediately")
	}
}

func TestRefreshIssuesAtTREFI(t *testing.T) {
	ctrl, ch := testController(t, nil)
	run(ctrl, int(ch.T.REFI)*3+100)
	if ctrl.Stats.REFs < 2 || ctrl.Stats.REFs > 4 {
		t.Errorf("REFs = %d after 3×tREFI, want ≈3", ctrl.Stats.REFs)
	}
}

func TestIncreasedRefreshMultipliesREFs(t *testing.T) {
	geo := dram.Table6Geometry()
	tm := dram.DDR4_2400(geo.Rows)
	mech, err := mitigation.NewIncreasedRefresh(mitigation.Params{
		HCFirst: 64_000, Rows: geo.Rows, Banks: geo.Banks(),
		TRC: int64(tm.RC), TREFI: int64(tm.REFI), TREFW: tm.REFW,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, ch := testController(t, mech)
	cycles := int(ch.T.REFI) * 4
	run(ctrl, cycles)
	base := int64(cycles) / int64(ch.T.REFI)
	if ctrl.Stats.REFs < 4*base {
		t.Errorf("REFs = %d, want ≥ %d (multiplier %.0f)",
			ctrl.Stats.REFs, 4*base, mech.RefreshMultiplier())
	}
}

// hammerMech requests a victim refresh on every ACT, for plumbing tests.
type hammerMech struct{ victims int }

func (h *hammerMech) Name() string { return "test" }
func (h *hammerMech) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int {
	if fromMitigation {
		return nil
	}
	h.victims++
	return []int{row + 1}
}
func (h *hammerMech) OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int { return nil }
func (h *hammerMech) RefreshMultiplier() float64                                    { return 1 }

func TestMitigationRefreshPlumbing(t *testing.T) {
	mech := &hammerMech{}
	ctrl, _ := testController(t, mech)
	ctrl.EnqueueRead(0, 0x100000, func() {})
	run(ctrl, 500)
	if mech.victims == 0 {
		t.Fatal("mechanism never observed the demand ACT")
	}
	if ctrl.Stats.MitigationACTs == 0 {
		t.Fatal("victim refresh never issued")
	}
	if ctrl.Stats.MitigationBusyCycles == 0 {
		t.Error("mitigation busy cycles not accounted")
	}
}

func TestExternalACTObserver(t *testing.T) {
	ctrl, _ := testController(t, nil)
	var rows []int
	ctrl.OnACT(func(rank, bank, row int, cycle int64) { rows = append(rows, row) })
	ctrl.EnqueueRead(0, 0x30000, func() {})
	run(ctrl, 300)
	if len(rows) == 0 {
		t.Fatal("external observer never fired")
	}
}

func TestExternalRefreshObserver(t *testing.T) {
	ctrl, ch := testController(t, nil)
	covered := 0
	ctrl.OnRefresh(func(rank, bank, rowStart, rowCount int, cycle int64) {
		covered += rowCount
	})
	run(ctrl, int(ch.T.REFI)*3)
	if covered == 0 {
		t.Fatal("external refresh observer never fired")
	}
	// Every REF covers RowsPerREF rows in each bank.
	wantPerREF := ch.T.RowsPerREF * ch.Geo.Banks()
	if covered%wantPerREF != 0 {
		t.Errorf("covered %d rows, want a multiple of %d", covered, wantPerREF)
	}
}

// blockRow throttles ACTs to one row forever.
type blockRow struct {
	mitigation.None
	bank, row int
	denials   int64
	actReqs   []int // requesters attributed via OnRequesterACT
}

func (b *blockRow) ActAllowed(requester, bank, row int, cycle int64) bool {
	if bank == b.bank && row == b.row {
		b.denials++
		return false
	}
	return true
}

func (b *blockRow) AdmitRequest(requester, bank, row int, queueLoad float64, cycle int64) bool {
	return true
}

func (b *blockRow) OnRequesterACT(requester, bank, row int, cycle int64) {
	b.actReqs = append(b.actReqs, requester)
}

func TestThrottledRowDoesNotStallOthers(t *testing.T) {
	ctrl, ch := testController(t, &blockRow{bank: 0, row: 100})
	mapper, err := dram.NewAddressMapper(ch.Geo)
	if err != nil {
		t.Fatal(err)
	}
	blockedDone, otherDone := false, false
	// The blacklisted request is the oldest; a younger request in another
	// bank must still progress past it.
	ctrl.EnqueueRead(0, mapper.AddressOf(dram.Address{Bank: 0, Row: 100}), func() { blockedDone = true })
	ctrl.EnqueueRead(0, mapper.AddressOf(dram.Address{Bank: 5, Row: 300}), func() { otherDone = true })
	run(ctrl, 2000)
	if blockedDone {
		t.Error("permanently throttled request completed")
	}
	if !otherDone {
		t.Fatal("younger request starved behind a throttled one")
	}
	if ctrl.Stats.ThrottleStallCycles == 0 {
		t.Error("throttle stall cycles not counted")
	}
}

func TestStarvationBounded(t *testing.T) {
	// A stream of row hits to one bank must not starve a conflicting
	// request in the same bank forever.
	ctrl, ch := testController(t, nil)
	mapper, err := dram.NewAddressMapper(ch.Geo)
	if err != nil {
		t.Fatal(err)
	}
	victimAddr := mapper.AddressOf(dram.Address{Bank: 0, Row: 100})
	hitAddr := func(col int) int64 {
		return mapper.AddressOf(dram.Address{Bank: 0, Row: 200, Col: col % ch.Geo.Columns})
	}
	// Open row 200 and keep hitting it while the row-100 request waits.
	ctrl.EnqueueRead(0, hitAddr(0), func() {})
	run(ctrl, 100)
	done := false
	ctrl.EnqueueRead(0, victimAddr, func() { done = true })
	col := 1
	for i := 0; i < 5000 && !done; i++ {
		if ctrl.PendingReads() < 32 {
			ctrl.EnqueueRead(0, hitAddr(col), func() {})
			col++
		}
		ctrl.Tick()
	}
	if !done {
		t.Fatal("row-conflict request starved behind a row-hit stream")
	}
}

func TestPerRequesterStatsAndACTAttribution(t *testing.T) {
	mech := &blockRow{bank: -1, row: -1} // throttles nothing, records ACT sources
	ctrl, ch := testController(t, mech)
	mapper, err := dram.NewAddressMapper(ch.Geo)
	if err != nil {
		t.Fatal(err)
	}
	// Two requesters, distinct banks so both need an ACT.
	ctrl.EnqueueRead(0, mapper.AddressOf(dram.Address{Bank: 0, Row: 10}), func() {})
	ctrl.EnqueueRead(2, mapper.AddressOf(dram.Address{Bank: 3, Row: 20}), func() {})
	run(ctrl, 500)
	if len(ctrl.Stats.PerRequester) < 3 {
		t.Fatalf("per-requester stats = %d entries, want ≥3", len(ctrl.Stats.PerRequester))
	}
	for _, id := range []int{0, 2} {
		rs := ctrl.Stats.PerRequester[id]
		if rs.Reads != 1 || rs.ServedReads != 1 {
			t.Errorf("requester %d stats = %+v, want 1 read accepted and served", id, rs)
		}
	}
	if rs := ctrl.Stats.PerRequester[1]; rs.Reads != 0 {
		t.Errorf("idle requester accrued reads: %+v", rs)
	}
	// The throttler's per-source hook saw both demand ACTs with the right
	// attribution.
	want := map[int]bool{0: true, 2: true}
	for _, r := range mech.actReqs {
		delete(want, r)
	}
	if len(want) != 0 {
		t.Errorf("OnRequesterACT missed sources %v (saw %v)", want, mech.actReqs)
	}
}

func TestPerRequesterBusOccupancy(t *testing.T) {
	ctrl, ch := testController(t, nil)
	mapper, err := dram.NewAddressMapper(ch.Geo)
	if err != nil {
		t.Fatal(err)
	}
	// Requester 0 issues many reads across rows (ACT + burst each);
	// requester 1 issues a single read. The heavy source must own the
	// overwhelming bus share.
	served := 0
	pending := 0
	for i := 0; i < 40; i++ {
		ctrl.EnqueueRead(0, mapper.AddressOf(dram.Address{Bank: i % 4, Row: 10 + i}), func() { served++ })
		pending++
	}
	ctrl.EnqueueRead(1, mapper.AddressOf(dram.Address{Bank: 5, Row: 7}), func() { served++ })
	pending++
	for i := 0; i < 50_000 && served < pending; i++ {
		ctrl.Tick()
	}
	if served < pending {
		t.Fatalf("served %d/%d reads", served, pending)
	}
	heavy := ctrl.Stats.PerRequester[0]
	light := ctrl.Stats.PerRequester[1]
	if heavy.BusBusyCycles == 0 || light.BusBusyCycles == 0 {
		t.Fatalf("bus occupancy not attributed: heavy=%d light=%d",
			heavy.BusBusyCycles, light.BusBusyCycles)
	}
	// Each served read burns at least the burst; each row miss adds tRC.
	if min := int64(ch.T.BL); light.BusBusyCycles < min {
		t.Errorf("light requester bus cycles %d below one burst (%d)", light.BusBusyCycles, min)
	}
	if heavy.BusBusyCycles <= 10*light.BusBusyCycles {
		t.Errorf("heavy requester share not dominant: heavy=%d light=%d",
			heavy.BusBusyCycles, light.BusBusyCycles)
	}
	hs, ls := ctrl.Stats.BusSharePct(0), ctrl.Stats.BusSharePct(1)
	if hs <= ls || hs+ls > 100.0001 {
		t.Errorf("BusSharePct: heavy=%.1f light=%.1f", hs, ls)
	}
	if ctrl.Stats.BusSharePct(99) != 0 {
		t.Error("unknown requester has nonzero bus share")
	}
}

// blissConfig returns a Table 6 controller with the fairness scheduler on
// and a tiny streak so tests trigger blacklisting quickly.
func blissConfig() Config {
	cfg := Table6Config()
	cfg.BLISS = true
	cfg.BLISSStreak = 3
	cfg.BLISSClearCycles = 5_000
	return cfg
}

func TestBLISSBlacklistsStreakAndDemotes(t *testing.T) {
	geo := dram.Table6Geometry()
	ch, err := dram.NewChannel(geo, dram.DDR4_2400(geo.Rows))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(blissConfig(), ch, nil)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := dram.NewAddressMapper(geo)
	if err != nil {
		t.Fatal(err)
	}
	hitAddr := func(col int) int64 {
		return mapper.AddressOf(dram.Address{Bank: 0, Row: 200, Col: col % geo.Columns})
	}
	// Requester 0 streams row hits; requester 1 wants a conflicting row in
	// the same bank. BLISS blacklists the streamer after three consecutive
	// services, and once the conflict starves past the cap its bank is
	// claimed from the demoted pass too, so the stream cannot extend the
	// tRTP horizon forever.
	ctrl.EnqueueRead(0, hitAddr(0), func() {})
	run(ctrl, 100)
	served1 := int64(-1)
	start := ctrl.Cycle()
	ctrl.EnqueueRead(1, mapper.AddressOf(dram.Address{Bank: 0, Row: 100}), func() { served1 = ctrl.Cycle() })
	col := 1
	for i := 0; i < 4000 && served1 < 0; i++ {
		if ctrl.PendingReads() < 16 {
			ctrl.EnqueueRead(0, hitAddr(col), func() {})
			col++
		}
		ctrl.Tick()
	}
	if served1 < 0 {
		t.Fatal("conflicting request never served under BLISS")
	}
	if ctrl.Stats.BLISSBlacklists == 0 {
		t.Error("streaming requester never blacklisted")
	}
	if rs := ctrl.Stats.PerRequester[0]; rs.Blacklistings == 0 {
		t.Error("blacklisting not attributed to the streaming requester")
	}
	if rs := ctrl.Stats.PerRequester[1]; rs.Blacklistings != 0 {
		t.Errorf("victim requester blacklisted: %+v", rs)
	}
	if wait := served1 - start; wait > 2*starveLimit {
		t.Errorf("conflict waited %d cycles behind a demoted stream (cap %d)", wait, starveLimit)
	}
}

func TestBLISSClearingForgives(t *testing.T) {
	geo := dram.Table6Geometry()
	ch, err := dram.NewChannel(geo, dram.DDR4_2400(geo.Rows))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(blissConfig(), ch, nil)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := dram.NewAddressMapper(geo)
	if err != nil {
		t.Fatal(err)
	}
	// Keep one requester streaming across several clearing intervals: each
	// interval forgives the blacklist, the streak rebuilds, and the
	// requester is blacklisted again.
	col := 0
	for i := 0; i < 20_000; i++ {
		if ctrl.PendingReads() < 16 {
			ctrl.EnqueueRead(0, mapper.AddressOf(dram.Address{Bank: 0, Row: 50, Col: col % geo.Columns}), func() {})
			col++
		}
		ctrl.Tick()
	}
	if got := ctrl.Stats.PerRequester[0].Blacklistings; got < 2 {
		t.Errorf("blacklistings = %d across clearing intervals, want ≥2 (clearing never forgave)", got)
	}
}

func TestClosedRowPolicyCloses(t *testing.T) {
	geo := dram.Table6Geometry()
	ch, err := dram.NewChannel(geo, dram.DDR4_2400(geo.Rows))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Table6Config()
	cfg.ClosedRow = true
	ctrl, err := New(cfg, ch, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.EnqueueRead(0, 0x50000, func() {})
	run(ctrl, 400)
	for b := 0; b < geo.Banks(); b++ {
		if ch.OpenRow(0, b) != -1 {
			t.Fatalf("bank %d still open under closed-row policy", b)
		}
	}
}

func TestFCFSOnlyStillCompletes(t *testing.T) {
	geo := dram.Table6Geometry()
	ch, err := dram.NewChannel(geo, dram.DDR4_2400(geo.Rows))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Table6Config()
	cfg.FCFSOnly = true
	ctrl, err := New(cfg, ch, nil)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for i := 0; i < 16; i++ {
		ctrl.EnqueueRead(0, int64(i)*1<<16, func() { completed++ })
	}
	run(ctrl, 10_000)
	if completed != 16 {
		t.Fatalf("FCFS completed %d/16 reads", completed)
	}
}
