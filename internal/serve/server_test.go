package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// tinySpecJSON is the fast fig5 grid the suite submits.
const tinySpecJSON = `{
  "name": "fig5",
  "seed": 7,
  "params": {"scale": "tiny", "chips": 2, "iterations": 2}
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, spec string, wait bool) (*http.Response, []byte) {
	t.Helper()
	url := ts.URL + "/v1/experiments"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestSubmitTwiceSecondIsCacheHit is the PR's acceptance criterion over
// HTTP: the same spec submitted twice returns byte-identical result
// bodies, the second served from the store without running any tasks.
func TestSubmitTwiceSecondIsCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp1, body1 := submit(t, ts, tinySpecJSON, true)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %d %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-RHX-Cache"); got != "miss" {
		t.Fatalf("first submit X-RHX-Cache = %q, want miss", got)
	}
	hash := resp1.Header.Get("X-RHX-Hash")
	if len(hash) != 64 {
		t.Fatalf("bad X-RHX-Hash %q", hash)
	}

	resp2, body2 := submit(t, ts, tinySpecJSON, false) // no wait: hit answers instantly anyway
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submit: %d %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-RHX-Cache"); got != "hit" {
		t.Fatalf("second submit X-RHX-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("result bodies differ between cold and cached submit")
	}

	// The body is the canonical result encoding: identical to an
	// in-process uncached run.
	spec, err := core.DecodeSpec([]byte(tinySpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, want) {
		t.Fatal("served body differs from the in-process canonical encoding")
	}

	// GET by hash serves the same bytes.
	resp3, err := http.Get(ts.URL + "/v1/experiments/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK || !bytes.Equal(body3, body1) {
		t.Fatalf("GET by hash: %d, identical=%v", resp3.StatusCode, bytes.Equal(body3, body1))
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := submit(t, ts, tinySpecJSON, false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		Hash   string `json:"hash"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bad ack %s: %v", body, err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/v1/experiments/" + doc.Hash)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var res core.Result
			if err := json.Unmarshal(b, &res); err != nil {
				t.Fatalf("final body is not a result: %v", err)
			}
			if !res.Complete() {
				t.Fatal("final result incomplete")
			}
			return
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("poll: %d %s", resp.StatusCode, b)
		}
		if time.Now().After(deadline) {
			t.Fatal("experiment did not finish in time")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"unknown experiment", `{"name": "nope"}`, http.StatusBadRequest},
		{"not json", `{{{`, http.StatusBadRequest},
		{"typoed param", `{"name": "fig5", "params": {"scal": "tiny"}}`, http.StatusBadRequest},
		{"bad shard", `{"name": "fig5", "shard": {"index": 9, "count": 2}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := submit(t, ts, tc.body, false)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("%s: got %d %s, want %d", tc.name, resp.StatusCode, body, tc.wantCode)
			}
			var doc map[string]string
			if err := json.Unmarshal(body, &doc); err != nil || doc["error"] == "" {
				t.Fatalf("error body %s is not an error doc", body)
			}
		})
	}
}

func TestGetUnknownHash(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{
		"/v1/experiments/" + strings.Repeat("ab", 32),
		"/v1/experiments/zzz",
		"/v1/experiments/" + strings.Repeat("ab", 32) + "/events",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestRegistryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registry: %d", resp.StatusCode)
	}
	var doc struct {
		Experiments []struct {
			Name            string `json:"name"`
			DefaultSpecHash string `json:"default_spec_hash"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Experiments) != len(core.Experiments()) {
		t.Fatalf("registry lists %d experiments, want %d", len(doc.Experiments), len(core.Experiments()))
	}
	names := map[string]bool{}
	for _, e := range doc.Experiments {
		names[e.Name] = true
		if len(e.DefaultSpecHash) != 64 {
			t.Errorf("%s: bad default_spec_hash %q", e.Name, e.DefaultSpecHash)
		}
	}
	for _, want := range []string{"fig5", "attack", "trr-dodge"} {
		if !names[want] {
			t.Errorf("registry missing %q", want)
		}
	}
}

// TestEventsStreamShardProgress subscribes to the SSE stream during a
// run and checks the frame grammar: shard events then one terminal
// status event.
func TestEventsStreamShardProgress(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Shards: 2})

	resp, body := submit(t, ts, tinySpecJSON, false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var ack struct {
		Hash string `json:"hash"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}

	sseResp, err := http.Get(ts.URL + "/v1/experiments/" + ack.Hash + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if sseResp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", sseResp.StatusCode)
	}
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}

	type frame struct{ kind, data string }
	var frames []frame
	scanner := bufio.NewScanner(sseResp.Body)
	cur := frame{}
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.kind = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.kind != "" {
				frames = append(frames, cur)
			}
			cur = frame{}
		}
	}
	if len(frames) == 0 {
		t.Fatal("no SSE frames")
	}
	last := frames[len(frames)-1]
	if last.kind != "status" {
		t.Fatalf("last frame is %q, want status", last.kind)
	}
	var terminal struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(last.data), &terminal); err != nil || terminal.Status != "done" {
		t.Fatalf("terminal frame %s, want status done", last.data)
	}
	shardStatuses := map[string]int{}
	for _, f := range frames[:len(frames)-1] {
		if f.kind != "shard" {
			t.Fatalf("non-shard frame before terminal: %+v", f)
		}
		var ev store.Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("bad shard frame %s: %v", f.data, err)
		}
		shardStatuses[string(ev.Status)]++
	}
	// Two shards ran cold: 2 running, 2 done, 1 merged.
	if shardStatuses["running"] != 2 || shardStatuses["done"] != 2 || shardStatuses["merged"] != 1 {
		t.Fatalf("shard frame counts = %v, want 2 running / 2 done / 1 merged", shardStatuses)
	}

	// A late subscriber on a finished hash still gets a terminal event.
	late, err := http.Get(ts.URL + "/v1/experiments/" + ack.Hash + "/events")
	if err != nil {
		t.Fatal(err)
	}
	lateBody, _ := io.ReadAll(late.Body)
	late.Body.Close()
	if !strings.Contains(string(lateBody), `"status":"done"`) &&
		!strings.Contains(string(lateBody), `"status": "done"`) {
		t.Fatalf("late events stream lacks terminal done: %s", lateBody)
	}
}

// TestAbandonedWaitCancelsJob: an abandoned waited submission must
// cancel the in-flight job promptly (the serve half of the cancellation
// satellite).
func TestAbandonedWaitCancelsJob(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Store: st, Workers: 1, Shards: 1})

	// A deliberately heavier spec so the run is still in flight when we
	// abandon it.
	heavy := `{"name": "fig5", "seed": 3, "params": {"scale": "small", "chips": 4, "iterations": 4}}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/experiments?wait=1",
		strings.NewReader(heavy))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errCh <- err
	}()

	// Wait until the job exists, then abandon the request.
	spec, err := core.DecodeSpec([]byte(heavy))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := spec.SpecHash()
	if err != nil {
		t.Fatal(err)
	}
	waitFor := func(cond func() bool, what string) {
		deadline := time.Now().Add(time.Minute)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	jobLive := func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return srv.jobs[hash] != nil
	}
	waitFor(jobLive, "job to start")
	cancel()
	<-errCh

	// The job must terminate (canceled → failed → forgotten) well before
	// the full run would finish.
	waitFor(func() bool { return !jobLive() }, "job to be canceled and reaped")
	if st.Has(spec.WithoutShard()) {
		t.Fatal("abandoned run still produced a whole-grid entry")
	}
}

// TestDedupedConcurrentSubmits: two concurrent waited submissions of one
// spec share a single job and both get the identical body.
func TestDedupedConcurrentSubmits(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	type out struct {
		code int
		body []byte
	}
	results := make(chan out, 2)
	var inFlight atomic.Int32
	for i := 0; i < 2; i++ {
		go func() {
			inFlight.Add(1)
			resp, err := http.Post(ts.URL+"/v1/experiments?wait=1", "application/json",
				strings.NewReader(tinySpecJSON))
			if err != nil {
				results <- out{code: -1}
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- out{code: resp.StatusCode, body: b}
		}()
	}
	a, b := <-results, <-results
	if a.code != http.StatusOK || b.code != http.StatusOK {
		t.Fatalf("codes %d / %d", a.code, b.code)
	}
	if !bytes.Equal(a.body, b.body) {
		t.Fatal("concurrent submitters got different bodies")
	}
}

// TestShutdownCancelsJobs: Shutdown drains promptly even with a job in
// flight, because the root context cancels it.
func TestShutdownCancelsJobs(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: st, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	heavy := `{"name": "fig5", "seed": 3, "params": {"scale": "small", "chips": 4, "iterations": 4}}`
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(heavy))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v (after %v)", err, time.Since(start))
	}
}

// TestWaitSubmitOnPartialCache: shard entries pre-seeded by a CLI run
// are reused by the service — the waited submit only computes the
// missing shard and still returns uncached-identical bytes.
func TestWaitSubmitOnPartialCache(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := core.DecodeSpec([]byte(tinySpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	for _, idx := range []int{0, 2} {
		ss := spec
		ss.Shard = core.Shard{Index: idx, Count: shards}
		res, err := core.Run(ss)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Put(ss, res); err != nil {
			t.Fatal(err)
		}
	}
	_, ts := newTestServer(t, Config{Store: st, Workers: 2, Shards: shards})
	resp, body := submit(t, ts, tinySpecJSON, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("partial-cache service result differs from uncached run")
	}
}

func TestPprofEndpointsGatedByConfig(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: GET /debug/pprof/ = %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("goroutine")) {
		t.Fatal("pprof index does not list profiles")
	}
}
