// Package serve is the HTTP front end of the experiment registry: a
// small service that accepts canonical experiment specs, answers
// instantly from the content-addressed store on a spec-hash hit, and
// otherwise shards the grid across a bounded local worker pool (per-
// shard core.RunContext + byte-identical merge through store.Runner),
// streaming per-shard progress over SSE.
//
// Endpoints (all under /v1):
//
//	POST /v1/experiments            submit a spec (JSON body). Store hit:
//	                                200 + the canonical result bytes
//	                                (X-RHX-Cache: hit). Miss: 202 + a
//	                                status document; ?wait=1 blocks until
//	                                completion and returns the result.
//	GET  /v1/experiments/{hash}     result bytes when done, status JSON
//	                                (202) while pending, 404 if unknown.
//	GET  /v1/experiments/{hash}/events  SSE per-shard progress stream.
//	GET  /v1/registry               the experiment registry + live jobs.
//
// Determinism makes the cache sound: a spec's canonical bytes fully
// determine its result bytes, so the service can serve any stored entry
// for an equal hash without rechecking anything but integrity (which the
// store does on every read).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Store backs the cache; required.
	Store *store.Store
	// Workers bounds concurrently executing shard runs across every job
	// (the local worker pool); <= 0 means 2.
	Workers int
	// Shards is how many cacheable shard units a submitted whole-grid
	// spec is split into; <= 0 means Workers (so a cold grid saturates
	// the pool).
	Shards int
	// Exec bounds each shard run's internal task parallelism.
	Exec core.Exec
	// Logger receives per-request and per-job structured logs; nil
	// discards them.
	Logger *slog.Logger
	// MaxBodyBytes caps spec upload size; <= 0 means 1 MiB.
	MaxBodyBytes int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/ so a live
	// service can be CPU/heap-profiled mid-grid. Off by default: the
	// endpoints expose runtime internals, so only enable them on a
	// trusted listener (rhx serve -pprof).
	EnablePprof bool
}

// jobState is a job's lifecycle phase.
type jobState string

const (
	statePending jobState = "pending"
	stateRunning jobState = "running"
	stateDone    jobState = "done"
	stateFailed  jobState = "failed"
)

// jobLinger is how long a done job stays registered after completion so
// late SSE subscribers still receive the full per-shard replay (fast
// grids can finish before an async submitter's /events request lands).
// Afterwards the store is the source of truth and /events degrades to a
// single terminal frame.
const jobLinger = 2 * time.Minute

// event is one SSE frame: a shard progress step or a terminal status.
type event struct {
	kind string // "shard" or "status"
	data []byte // JSON payload
}

// job tracks one in-flight (or finished) experiment execution.
type job struct {
	hash string
	spec core.ExperimentSpec

	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches done/failed

	mu       sync.Mutex
	state    jobState
	errMsg   string
	result   []byte  // canonical bytes once done
	cached   bool    // answered entirely from cache
	events   []event // replay buffer for late SSE subscribers
	subs     map[chan event]struct{}
	waiters  int  // wait=1 submitters attached
	detached bool // an async submitter exists: never cancel on abandon
}

// Server is the experiment service. Create with New, serve via Handler,
// stop with Shutdown.
type Server struct {
	cfg     Config
	log     *slog.Logger
	gate    chan struct{}
	mux     *http.ServeMux
	rootCtx context.Context
	stop    context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*job
	wg   sync.WaitGroup
}

// New builds a Server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Shards <= 0 {
		cfg.Shards = cfg.Workers
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		log:     log,
		gate:    make(chan struct{}, cfg.Workers),
		rootCtx: ctx,
		stop:    stop,
		jobs:    map[string]*job{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("GET /v1/experiments/{hash}", s.handleGet)
	mux.HandleFunc("GET /v1/experiments/{hash}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", httppprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", httppprof.Trace)
	}
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler, wrapped in per-request
// structured logging.
func (s *Server) Handler() http.Handler { return s.logged(s.mux) }

// Shutdown cancels every in-flight job and waits (bounded by ctx) for
// job goroutines to drain. The HTTP listener itself is the caller's to
// close (http.Server.Shutdown); this drains the work behind it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stop()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// --- request logging -------------------------------------------------------

type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so SSE streaming works through
// the logging layer.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, req)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.log.Info("request",
			"method", req.Method,
			"path", req.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", float64(time.Since(start).Microseconds())/1000,
		)
	})
}

// --- handlers --------------------------------------------------------------

// statusDoc is the JSON envelope for pending/failed responses and the
// submit acknowledgement.
type statusDoc struct {
	Hash   string `json:"hash"`
	Name   string `json:"name,omitempty"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeResult serves canonical result bytes with cache attribution.
func writeResult(w http.ResponseWriter, hash string, body []byte, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-RHX-Hash", hash)
	if cached {
		w.Header().Set("X-RHX-Cache", "hit")
	} else {
		w.Header().Set("X-RHX-Cache", "miss")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handleSubmit accepts a spec, answers from the store when possible, and
// otherwise ensures a job is running. ?wait=1 blocks for the outcome;
// abandoning a waited request (client disconnect) cancels the job if it
// has no other watchers and no async submitter.
func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", s.cfg.MaxBodyBytes)
		return
	}
	spec, err := core.DecodeSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The service owns sharding; a submitted spec is always its
	// whole-grid identity.
	spec = spec.WithoutShard()
	hash, err := spec.SpecHash()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	wait := req.URL.Query().Get("wait") != ""

	// Store hit: answer instantly, no job.
	if _, raw, ok := s.cfg.Store.Get(spec); ok {
		s.log.Info("experiment", "hash", hash, "name", spec.Name, "outcome", "cache-hit")
		writeResult(w, hash, raw, true)
		return
	}

	j, started := s.ensureJob(hash, spec, !wait)
	if j == nil {
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if started {
		s.log.Info("experiment", "hash", hash, "name", spec.Name, "outcome", "started",
			"shards", s.cfg.Shards, "workers", s.cfg.Workers)
	}
	if !wait {
		writeJSON(w, http.StatusAccepted, statusDoc{Hash: hash, Name: spec.Name, Status: string(j.snapshotState())})
		return
	}

	j.addWaiter()
	defer s.releaseWaiter(j)
	select {
	case <-j.done:
		s.respondFinished(w, j)
	case <-req.Context().Done():
		// Abandoned request: releaseWaiter (deferred) cancels the job
		// if nobody else cares.
	}
}

// respondFinished writes a finished job's outcome.
func (s *Server) respondFinished(w http.ResponseWriter, j *job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case stateDone:
		writeResult(w, j.hash, j.result, j.cached)
	default:
		writeJSON(w, http.StatusInternalServerError, statusDoc{
			Hash: j.hash, Name: j.spec.Name, Status: string(stateFailed), Error: j.errMsg})
	}
}

// handleGet serves a result (or job status) by content address.
func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	if _, raw, ok := s.cfg.Store.GetByHash(hash); ok {
		writeResult(w, hash, raw, true)
		return
	}
	s.mu.Lock()
	j := s.jobs[hash]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no experiment %s", hash)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case stateDone:
		writeResult(w, hash, j.result, j.cached)
	case stateFailed:
		writeJSON(w, http.StatusInternalServerError, statusDoc{
			Hash: hash, Name: j.spec.Name, Status: string(stateFailed), Error: j.errMsg})
	default:
		writeJSON(w, http.StatusAccepted, statusDoc{Hash: hash, Name: j.spec.Name, Status: string(j.state)})
	}
}

// handleEvents streams per-shard progress as SSE: `shard` events while
// running, one terminal `status` event, then EOF. Subscribers arriving
// after completion get the full replay.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	hash := req.PathValue("hash")
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	s.mu.Lock()
	j := s.jobs[hash]
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	writeEvent := func(ev event) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.kind, ev.data)
	}

	if j == nil {
		// No live job — a stored result still yields a terminal event so
		// `curl .../events` on a finished hash is meaningful.
		if _, _, ok := s.cfg.Store.GetByHash(hash); ok {
			data, _ := json.Marshal(statusDoc{Hash: hash, Status: string(stateDone)})
			w.WriteHeader(http.StatusOK)
			writeEvent(event{kind: "status", data: data})
			flusher.Flush()
			return
		}
		httpError(w, http.StatusNotFound, "no experiment %s", hash)
		return
	}

	w.WriteHeader(http.StatusOK)
	replay, sub := j.subscribe()
	defer j.unsubscribe(sub)
	for _, ev := range replay {
		writeEvent(ev)
	}
	flusher.Flush()
	for {
		select {
		case ev, open := <-sub:
			if !open {
				return // job finished and the terminal event was replayed
			}
			writeEvent(ev)
			flusher.Flush()
		case <-req.Context().Done():
			return
		}
	}
}

// registryDoc is the GET /v1/registry response.
type registryDoc struct {
	Experiments []registryExperiment `json:"experiments"`
	Jobs        []statusDoc          `json:"jobs,omitempty"`
}

type registryExperiment struct {
	Name          string          `json:"name"`
	Description   string          `json:"description"`
	DefaultParams json.RawMessage `json:"default_params"`
	// DefaultSpecHash is the content address of {name, seed 1, default
	// params}: what a bare `{"name": ...}` submission resolves to.
	DefaultSpecHash string `json:"default_spec_hash"`
}

func (s *Server) handleRegistry(w http.ResponseWriter, req *http.Request) {
	doc := registryDoc{}
	for _, e := range core.Experiments() {
		re := registryExperiment{Name: e.Name, Description: e.Description, DefaultParams: e.DefaultParams}
		if spec, err := core.NewSpec(e.Name, 1, nil); err == nil {
			re.DefaultSpecHash, _ = spec.SpecHash()
		}
		doc.Experiments = append(doc.Experiments, re)
	}
	s.mu.Lock()
	for hash, j := range s.jobs {
		j.mu.Lock()
		doc.Jobs = append(doc.Jobs, statusDoc{Hash: hash, Name: j.spec.Name, Status: string(j.state), Error: j.errMsg})
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

// --- job lifecycle ---------------------------------------------------------

// ensureJob returns the live job for hash, creating and starting one if
// needed. detached marks that an async submitter exists, which pins the
// job against abandon-cancellation. A nil job means the server is
// shutting down.
func (s *Server) ensureJob(hash string, spec core.ExperimentSpec, detached bool) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[hash]; ok {
		if detached {
			j.mu.Lock()
			j.detached = true
			j.mu.Unlock()
		}
		return j, false
	}
	if s.rootCtx.Err() != nil {
		return nil, false // draining: no new work (and no wg.Add racing wg.Wait)
	}
	ctx, cancel := context.WithCancel(s.rootCtx)
	j := &job{
		hash:     hash,
		spec:     spec,
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    statePending,
		subs:     map[chan event]struct{}{},
		detached: detached,
	}
	s.jobs[hash] = j
	s.wg.Add(1)
	go s.runJob(ctx, j)
	return j, true
}

// runJob executes one job through the shared Runner and publishes the
// outcome.
func (s *Server) runJob(ctx context.Context, j *job) {
	defer s.wg.Done()
	defer j.cancel()
	start := time.Now()
	j.setState(stateRunning)
	r := &store.Runner{
		Store:   s.cfg.Store,
		Exec:    s.cfg.Exec,
		Shards:  s.cfg.Shards,
		Gate:    s.gate,
		OnEvent: j.publishShard,
	}
	_, raw, cached, err := r.Run(ctx, j.spec)

	j.mu.Lock()
	if err != nil {
		j.state = stateFailed
		j.errMsg = err.Error()
	} else {
		j.state = stateDone
		j.result = raw
		j.cached = cached
	}
	terminal := statusDoc{Hash: j.hash, Name: j.spec.Name, Status: string(j.state), Error: j.errMsg}
	data, _ := json.Marshal(terminal)
	j.publishLocked(event{kind: "status", data: data})
	for sub := range j.subs {
		close(sub)
		delete(j.subs, sub)
	}
	j.mu.Unlock()
	close(j.done)

	s.log.Info("experiment", "hash", j.hash, "name", j.spec.Name,
		"outcome", string(j.snapshotState()), "error", j.snapshotErr(),
		"duration_ms", float64(time.Since(start).Microseconds())/1000)

	// Failed jobs are forgotten immediately so a resubmission retries
	// (partial shard entries make the retry cheap). Done jobs linger for
	// jobLinger so status/event queries racing the completion still see
	// the replay buffer, then the store is the source of truth. The
	// timer only prunes a map entry, so it is safe to fire after
	// Shutdown.
	if j.snapshotState() == stateFailed {
		s.mu.Lock()
		delete(s.jobs, j.hash)
		s.mu.Unlock()
		return
	}
	time.AfterFunc(jobLinger, func() {
		s.mu.Lock()
		delete(s.jobs, j.hash)
		s.mu.Unlock()
	})
}

func (j *job) setState(st jobState) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

func (j *job) snapshotState() jobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *job) snapshotErr() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// publishShard converts a Runner event into an SSE frame.
func (j *job) publishShard(ev store.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	j.mu.Lock()
	j.publishLocked(event{kind: "shard", data: data})
	j.mu.Unlock()
}

// publishLocked appends to the replay buffer and fans out to
// subscribers; callers hold j.mu. Slow subscribers lose intermediate
// frames (the replay buffer keeps the history for late joiners; the
// terminal event is delivered via channel close + replay).
func (j *job) publishLocked(ev event) {
	j.events = append(j.events, ev)
	for sub := range j.subs {
		select {
		case sub <- ev:
		default:
		}
	}
}

// subscribe returns the replay-so-far plus a live channel. The channel
// closes when the job finishes.
func (j *job) subscribe() ([]event, chan event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay := make([]event, len(j.events))
	copy(replay, j.events)
	if j.state == stateDone || j.state == stateFailed {
		ch := make(chan event)
		close(ch)
		return replay, ch
	}
	ch := make(chan event, 64)
	j.subs[ch] = struct{}{}
	return replay, ch
}

func (j *job) unsubscribe(ch chan event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
	}
}

func (j *job) addWaiter() {
	j.mu.Lock()
	j.waiters++
	j.mu.Unlock()
}

// releaseWaiter drops one waiter; when the last waiter leaves an
// unfinished, non-detached job, the job is canceled — an abandoned
// request must not keep burning CPU.
func (s *Server) releaseWaiter(j *job) {
	j.mu.Lock()
	j.waiters--
	abandon := j.waiters == 0 && !j.detached && j.state != stateDone && j.state != stateFailed
	j.mu.Unlock()
	if abandon {
		s.log.Info("experiment", "hash", j.hash, "name", j.spec.Name, "outcome", "abandoned")
		j.cancel()
	}
}
