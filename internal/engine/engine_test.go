package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestMapOrderStable checks that results land in item order and are
// identical across worker counts.
func TestMapOrderStable(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	var runs [][]int
	for _, workers := range []int{1, 3, 16, 0} {
		got, err := Map(Options{Workers: workers, Seed: 7}, items, func(c TaskContext, x int) (int, error) {
			// Unequal work per task so a racy implementation would
			// reorder completions.
			s := 0
			for j := 0; j < (x%7)*1000; j++ {
				s += j
			}
			_ = s
			return 3*x + 1, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range got {
			if r != 3*i+1 {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, 3*i+1)
			}
		}
		runs = append(runs, got)
	}
	for i := 1; i < len(runs); i++ {
		for j := range runs[0] {
			if runs[i][j] != runs[0][j] {
				t.Fatalf("run %d differs from run 0 at %d", i, j)
			}
		}
	}
}

// TestMapSeedsIndependentOfWorkers checks per-task seed derivation:
// distinct per task, stable across worker counts, dependent on the base.
func TestMapSeedsIndependentOfWorkers(t *testing.T) {
	items := make([]int, 32)
	seedsAt := func(workers int, base uint64) []uint64 {
		got, err := Map(Options{Workers: workers, Seed: base}, items, func(c TaskContext, _ int) (uint64, error) {
			return c.Seed, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	serial := seedsAt(1, 42)
	parallel := seedsAt(8, 42)
	other := seedsAt(8, 43)
	seen := map[uint64]bool{}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("task %d: seed differs across worker counts", i)
		}
		if seen[serial[i]] {
			t.Errorf("task %d: duplicate seed %d", i, serial[i])
		}
		seen[serial[i]] = true
		if serial[i] == other[i] {
			t.Errorf("task %d: seed ignores base seed", i)
		}
	}
	// The derived RNG must be usable and deterministic.
	ctx := TaskContext{Index: 3, Seed: DeriveSeed(42, 3)}
	if ctx.RNG().Uint64() != ctx.RNG().Uint64() {
		t.Error("TaskContext.RNG not deterministic")
	}
}

// TestMapErrorDeterministic checks that a failure surfaces as a TaskError
// for the lowest-index failing task — the same task for any worker count,
// even when several tasks fail.
func TestMapErrorDeterministic(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	boom := errors.New("boom")
	for _, workers := range []int{1, 4, 8} {
		_, err := Map(Options{Workers: workers}, items, func(c TaskContext, x int) (int, error) {
			if x == 5 || x == 7 {
				return 0, fmt.Errorf("item %d: %w", x, boom)
			}
			return x, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: error %v does not wrap the task failure", workers, err)
		}
		var te *TaskError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: error %v is not a TaskError", workers, err)
		}
		if te.Index != 5 {
			t.Errorf("workers=%d: TaskError.Index = %d, want 5 (lowest failing)", workers, te.Index)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(Options{}, nil, func(TaskContext, int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestMapEachIndexRunsOnce checks that the atomic claim hands every index
// to exactly one task.
func TestMapEachIndexRunsOnce(t *testing.T) {
	items := make([]int, 50)
	hits := make([]int, len(items))
	if _, err := Map(Options{Workers: 8}, items, func(c TaskContext, _ int) (struct{}, error) {
		hits[c.Index]++ // each index owned by exactly one task
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Errorf("task %d ran %d times", i, h)
		}
	}
}

func TestDeriveSeedMixes(t *testing.T) {
	if DeriveSeed(0, 0) == DeriveSeed(0, 1) {
		t.Error("adjacent indices collide")
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("adjacent bases collide")
	}
	if DeriveSeed(5, 9) != DeriveSeed(5, 9) {
		t.Error("not deterministic")
	}
}

// TestMapCancellationBounded is the serve-layer regression: canceling the
// context mid-run stops the fan-out within a bounded number of tasks —
// after the cancel is issued, each worker may finish at most the task it
// already claimed plus one claimed before observing the cancellation.
func TestMapCancellationBounded(t *testing.T) {
	const (
		n          = 10_000
		workers    = 4
		cancelAt   = 8
		slackTasks = 2 * workers // one in-flight + one claim-race per worker
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	_, err := Map(Options{Workers: workers, Context: ctx}, make([]int, n),
		func(TaskContext, int) (struct{}, error) {
			if ran.Add(1) == cancelAt {
				cancel()
			}
			return struct{}{}, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > cancelAt+slackTasks {
		t.Errorf("ran %d tasks after cancel at %d; want at most %d", got, cancelAt, cancelAt+slackTasks)
	}
}

// TestMapCancelBeforeStart runs nothing at all when the context is
// already canceled.
func TestMapCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Map(Options{Workers: 2, Context: ctx}, make([]int, 100),
		func(TaskContext, int) (struct{}, error) {
			ran.Add(1)
			return struct{}{}, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("ran %d tasks with pre-canceled context, want 0", got)
	}
}

// TestMapTaskErrorBeatsCancel pins the error-precedence contract: when a
// task fails and the context is canceled, the deterministic task error
// wins.
func TestMapTaskErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := fmt.Errorf("boom")
	_, err := Map(Options{Workers: 2, Context: ctx}, make([]int, 50),
		func(c TaskContext, _ int) (struct{}, error) {
			if c.Index == 0 {
				cancel()
				return struct{}{}, boom
			}
			return struct{}{}, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error", err)
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Index != 0 {
		t.Fatalf("err = %v, want TaskError{Index: 0}", err)
	}
}
