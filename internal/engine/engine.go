// Package engine is the shared parallel experiment executor behind every
// table/figure runner. It fans a flat task list out over a bounded worker
// pool and collects results in task order, so an experiment's output is
// bit-identical regardless of worker count: parallelism only changes
// wall-clock time, never results.
//
// Three properties make that guarantee hold:
//
//   - Tasks are independent. A task receives its item plus a TaskContext
//     carrying a seed derived purely from (base seed, task index), never
//     from scheduling order.
//   - Results land in a slice indexed by task position; aggregation
//     happens in the caller, serially, in task order.
//   - On failure, the error of the lowest-index failed task is returned
//     (wrapped in a TaskError), which is the same task for any worker
//     count: tasks are claimed in ascending index order and a claimed
//     task always runs to completion, so no failure can preempt a
//     lower-index task.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Options bounds one fan-out.
type Options struct {
	// Workers is the maximum number of concurrent tasks; <= 0 uses all
	// cores (runtime.GOMAXPROCS). Results do not depend on this value.
	Workers int
	// Seed is the base seed per-task seeds are derived from.
	Seed uint64
	// Context, when non-nil, cancels the fan-out: workers check it
	// before claiming each task, so after cancellation at most one
	// in-flight task per worker runs to completion and Map returns the
	// context's error. A nil Context never cancels.
	Context context.Context
}

// TaskContext identifies one task of a fan-out and carries its derived
// seed. The seed depends only on (Options.Seed, Index), so randomized
// tasks stay reproducible under any worker count.
type TaskContext struct {
	Index int
	Seed  uint64
}

// RNG returns a fresh deterministic generator for this task.
func (c TaskContext) RNG() *stats.RNG { return stats.NewRNG(c.Seed) }

// DeriveSeed mixes a base seed with a task index through a SplitMix64
// finalizer, decorrelating neighboring tasks.
func DeriveSeed(base, index uint64) uint64 {
	z := base + 0x9e3779b97f4a7c15*(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TaskError wraps a task failure with the index of the task that failed.
type TaskError struct {
	Index int
	Err   error
}

func (e *TaskError) Error() string { return fmt.Sprintf("task %d: %v", e.Index, e.Err) }
func (e *TaskError) Unwrap() error { return e.Err }

// Map runs fn over every item on a bounded worker pool and returns the
// results in item order. On failure it returns the lowest-index task's
// error as a TaskError; remaining unstarted tasks are skipped. If
// Options.Context is canceled mid-run, unclaimed tasks are skipped and
// Map returns the context's error (a task failure takes precedence, so
// the reported error stays deterministic when both happen).
func Map[T, R any](o Options, items []T, fn func(TaskContext, T) (R, error)) ([]R, error) {
	n := len(items)
	results := make([]R, n)
	if n == 0 {
		return results, nil
	}
	errs := make([]error, n)
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	ctx := o.Context
	var next atomic.Int64
	var failed, canceled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					canceled.Store(true)
					continue // drain remaining indices without running them
				}
				if failed.Load() {
					continue // drain remaining indices without running them
				}
				ctx := TaskContext{Index: i, Seed: DeriveSeed(o.Seed, uint64(i))}
				r, err := fn(ctx, items[i])
				if err != nil {
					errs[i] = &TaskError{Index: i, Err: err}
					failed.Store(true)
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()

	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	if canceled.Load() {
		return nil, ctx.Err()
	}
	return results, nil
}
