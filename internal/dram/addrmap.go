package dram

import "fmt"

// Address identifies one cache-line-sized column in the channel.
type Address struct {
	Rank, Bank, Row, Col int
}

// AddressMapper translates physical line addresses to DRAM coordinates.
// The mapping is Row:Rank:Bank:Column (column bits lowest), the common
// open-page-friendly layout: consecutive cache lines fill a row buffer,
// then rotate across banks, so streaming workloads exploit row locality
// while independent streams spread over banks. Bank bits are XORed with
// low row bits to reduce pathological bank conflicts, as many controllers
// do.
type AddressMapper struct {
	geo      Geometry
	banks    int
	lineMask int64
}

// NewAddressMapper builds a mapper for the geometry.
func NewAddressMapper(geo Geometry) (*AddressMapper, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	return &AddressMapper{geo: geo, banks: geo.Banks(), lineMask: int64(geo.LineBytes - 1)}, nil
}

// Capacity returns the number of addressable bytes.
func (m *AddressMapper) Capacity() int64 { return m.geo.CapacityBytes() }

// Map translates a byte address to DRAM coordinates. Addresses wrap
// modulo the channel capacity so trace generators need not care about the
// exact size.
func (m *AddressMapper) Map(addr int64) Address {
	line := (addr / int64(m.geo.LineBytes))
	col := int(line % int64(m.geo.Columns))
	line /= int64(m.geo.Columns)
	bank := int(line % int64(m.banks))
	line /= int64(m.banks)
	rank := int(line % int64(m.geo.Ranks))
	line /= int64(m.geo.Ranks)
	row := int(line % int64(m.geo.Rows))
	// XOR low row bits into the bank index to spread row-conflict streams.
	bank = (bank ^ row) % m.banks
	if bank < 0 {
		bank += m.banks
	}
	return Address{Rank: rank, Bank: bank, Row: row, Col: col}
}

// LineAddress returns the aligned line address containing addr.
func (m *AddressMapper) LineAddress(addr int64) int64 { return addr &^ m.lineMask }

// AddressOf inverts Map: it returns a byte address whose coordinates are
// a. Attack code uses it to aim requests at specific rows.
func (m *AddressMapper) AddressOf(a Address) int64 {
	raw := (a.Bank ^ a.Row) % m.banks
	if raw < 0 {
		raw += m.banks
	}
	line := ((int64(a.Row)*int64(m.geo.Ranks)+int64(a.Rank))*int64(m.banks)+int64(raw))*
		int64(m.geo.Columns) + int64(a.Col)
	return line * int64(m.geo.LineBytes)
}

func (a Address) String() string {
	return fmt.Sprintf("rank %d bank %d row %d col %d", a.Rank, a.Bank, a.Row, a.Col)
}
