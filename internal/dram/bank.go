package dram

import "fmt"

// bankState tracks one bank's open row and per-bank timing horizon.
type bankState struct {
	openRow int   // -1 when precharged
	nextACT int64 // earliest cycle an ACT may issue
	nextPRE int64
	nextRD  int64
	nextWR  int64
	refPtr  int // next row the auto-refresh rotation will cover
}

// rankState tracks rank-scoped constraints (tRRD, tFAW, tCCD, tWTR, bus).
type rankState struct {
	lastACT    int64    // most recent ACT anywhere in the rank
	lastACTBG  []int64  // most recent ACT per bank group
	lastCASBG  []int64  // most recent RD/WR issue per bank group
	lastCAS    int64    // most recent RD/WR issue anywhere
	lastRD     int64    // most recent RD issue (for tRTW)
	lastWREnd  []int64  // end of most recent write burst per bank group
	lastWREndR int64    // end of most recent write burst anywhere
	faw        [4]int64 // issue cycles of the last four ACTs
	fawIdx     int
}

// ACTObserver is notified of every activate the channel performs; the
// RowHammer mitigation mechanisms and the fault model hang off this hook.
type ACTObserver func(rank, bank, row int, cycle int64)

// RefreshObserver is notified of the rows covered by each auto-refresh
// command (the per-bank rotation), so activation trackers can reset their
// counters exactly when the paper's mechanisms would.
type RefreshObserver func(rank, bank, rowStart, rowCount int, cycle int64)

// Channel is a cycle-accurate model of one DRAM channel: its banks, their
// open rows, and every timing constraint between commands. All cycles are
// in memory-clock units.
type Channel struct {
	Geo Geometry
	T   Timing

	banks []bankState // [rank][bankGroup][bank] flattened
	ranks []rankState

	busBusyUntil int64 // data-bus reservation horizon

	// Statistics.
	Stats ChannelStats

	onACT     ACTObserver
	onRefresh RefreshObserver
}

// ChannelStats aggregates channel activity counters.
type ChannelStats struct {
	ACTs, PREs, RDs, WRs, REFs int64
	BusBusyCycles              int64 // data-bus cycles carrying bursts
	RefreshBusyCycles          int64 // bank-cycles consumed by REF (tRFC each)
}

// NewChannel builds a channel with the given geometry and timing.
func NewChannel(geo Geometry, t Timing) (*Channel, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	ch := &Channel{Geo: geo, T: t}
	ch.banks = make([]bankState, geo.Ranks*geo.Banks())
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	ch.ranks = make([]rankState, geo.Ranks)
	for r := range ch.ranks {
		ch.ranks[r].lastACTBG = make([]int64, geo.BankGroups)
		ch.ranks[r].lastCASBG = make([]int64, geo.BankGroups)
		ch.ranks[r].lastWREnd = make([]int64, geo.BankGroups)
		for i := range ch.ranks[r].faw {
			ch.ranks[r].faw[i] = -1 << 62
		}
		ch.ranks[r].lastACT = -1 << 62
		ch.ranks[r].lastCAS = -1 << 62
		ch.ranks[r].lastRD = -1 << 62
		ch.ranks[r].lastWREndR = -1 << 62
		for g := 0; g < geo.BankGroups; g++ {
			ch.ranks[r].lastACTBG[g] = -1 << 62
			ch.ranks[r].lastCASBG[g] = -1 << 62
			ch.ranks[r].lastWREnd[g] = -1 << 62
		}
	}
	return ch, nil
}

// OnACT registers the activate observer (at most one; later calls replace).
func (ch *Channel) OnACT(fn ACTObserver) { ch.onACT = fn }

// OnRefresh registers the auto-refresh rotation observer.
func (ch *Channel) OnRefresh(fn RefreshObserver) { ch.onRefresh = fn }

func (ch *Channel) bankIndex(rank, bank int) int { return rank*ch.Geo.Banks() + bank }

func (ch *Channel) bankGroupOf(bank int) int { return bank / ch.Geo.BanksPerGroup }

// OpenRow returns the row currently open in a bank, or -1 if precharged.
func (ch *Channel) OpenRow(rank, bank int) int {
	return ch.banks[ch.bankIndex(rank, bank)].openRow
}

// CanIssue reports whether cmd targeting (rank, bank, row) may legally
// issue at the given cycle. For REF, bank and row are ignored.
func (ch *Channel) CanIssue(cmd Command, rank, bank, row int, cycle int64) bool {
	rk := &ch.ranks[rank]
	switch cmd {
	case CmdACT:
		b := &ch.banks[ch.bankIndex(rank, bank)]
		if b.openRow != -1 || cycle < b.nextACT {
			return false
		}
		g := ch.bankGroupOf(bank)
		if cycle < rk.lastACTBG[g]+int64(ch.T.RRDL) {
			return false
		}
		if cycle < rk.lastACT+int64(ch.T.RRDS) {
			return false
		}
		// tFAW: at most four ACTs in any FAW window.
		oldest := rk.faw[rk.fawIdx]
		return cycle >= oldest+int64(ch.T.FAW)
	case CmdPRE:
		b := &ch.banks[ch.bankIndex(rank, bank)]
		return b.openRow != -1 && cycle >= b.nextPRE
	case CmdRD:
		b := &ch.banks[ch.bankIndex(rank, bank)]
		if b.openRow == -1 || b.openRow != row || cycle < b.nextRD {
			return false
		}
		g := ch.bankGroupOf(bank)
		if cycle < rk.lastCASBG[g]+int64(ch.T.CCDL) {
			return false
		}
		if cycle < rk.lastCAS+int64(ch.T.CCDS) {
			return false
		}
		// Write-to-read turnaround.
		if cycle < rk.lastWREnd[g]+int64(ch.T.WTRL) {
			return false
		}
		if cycle < rk.lastWREndR+int64(ch.T.WTRS) {
			return false
		}
		// Data bus must be free when the burst starts.
		return cycle+int64(ch.T.CL) >= ch.busBusyUntil
	case CmdWR:
		b := &ch.banks[ch.bankIndex(rank, bank)]
		if b.openRow == -1 || b.openRow != row || cycle < b.nextWR {
			return false
		}
		g := ch.bankGroupOf(bank)
		if cycle < rk.lastCASBG[g]+int64(ch.T.CCDL) {
			return false
		}
		if cycle < rk.lastCAS+int64(ch.T.CCDS) {
			return false
		}
		// Read-to-write turnaround.
		if cycle < rk.lastRD+int64(ch.T.RTW) {
			return false
		}
		return cycle+int64(ch.T.CWL) >= ch.busBusyUntil
	case CmdREF:
		for b := 0; b < ch.Geo.Banks(); b++ {
			bs := &ch.banks[ch.bankIndex(rank, b)]
			if bs.openRow != -1 || cycle < bs.nextACT {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Issue performs cmd at the given cycle. It returns the cycle at which
// read data becomes available (for CmdRD; zero otherwise). Issuing an
// illegal command is a programming error and panics: the controller must
// gate every Issue with CanIssue.
func (ch *Channel) Issue(cmd Command, rank, bank, row int, cycle int64) int64 {
	if !ch.CanIssue(cmd, rank, bank, row, cycle) {
		panic(fmt.Sprintf("dram: illegal %v to rank %d bank %d row %d at cycle %d",
			cmd, rank, bank, row, cycle))
	}
	rk := &ch.ranks[rank]
	switch cmd {
	case CmdACT:
		b := &ch.banks[ch.bankIndex(rank, bank)]
		b.openRow = row
		b.nextRD = cycle + int64(ch.T.RCD)
		b.nextWR = cycle + int64(ch.T.RCD)
		b.nextPRE = cycle + int64(ch.T.RAS)
		b.nextACT = cycle + int64(ch.T.RC)
		g := ch.bankGroupOf(bank)
		rk.lastACTBG[g] = cycle
		rk.lastACT = cycle
		rk.faw[rk.fawIdx] = cycle
		rk.fawIdx = (rk.fawIdx + 1) % len(rk.faw)
		ch.Stats.ACTs++
		if ch.onACT != nil {
			ch.onACT(rank, bank, row, cycle)
		}
		return 0
	case CmdPRE:
		b := &ch.banks[ch.bankIndex(rank, bank)]
		b.openRow = -1
		if next := cycle + int64(ch.T.RP); next > b.nextACT {
			b.nextACT = next
		}
		ch.Stats.PREs++
		return 0
	case CmdRD:
		b := &ch.banks[ch.bankIndex(rank, bank)]
		g := ch.bankGroupOf(bank)
		rk.lastCASBG[g] = cycle
		rk.lastCAS = cycle
		rk.lastRD = cycle
		start := cycle + int64(ch.T.CL)
		ch.busBusyUntil = start + int64(ch.T.BL)
		ch.Stats.BusBusyCycles += int64(ch.T.BL)
		if next := cycle + int64(ch.T.RTP); next > b.nextPRE {
			b.nextPRE = next
		}
		ch.Stats.RDs++
		return start + int64(ch.T.BL)
	case CmdWR:
		b := &ch.banks[ch.bankIndex(rank, bank)]
		g := ch.bankGroupOf(bank)
		rk.lastCASBG[g] = cycle
		rk.lastCAS = cycle
		start := cycle + int64(ch.T.CWL)
		end := start + int64(ch.T.BL)
		ch.busBusyUntil = end
		ch.Stats.BusBusyCycles += int64(ch.T.BL)
		rk.lastWREnd[g] = end
		rk.lastWREndR = end
		if next := end + int64(ch.T.WR); next > b.nextPRE {
			b.nextPRE = next
		}
		ch.Stats.WRs++
		return 0
	case CmdREF:
		rows := ch.T.RowsPerREF
		for b := 0; b < ch.Geo.Banks(); b++ {
			bs := &ch.banks[ch.bankIndex(rank, b)]
			bs.nextACT = cycle + int64(ch.T.RFC)
			start := bs.refPtr
			if ch.onRefresh != nil {
				ch.onRefresh(rank, b, start, rows, cycle)
			}
			bs.refPtr = (bs.refPtr + rows) % ch.Geo.Rows
		}
		ch.Stats.REFs++
		ch.Stats.RefreshBusyCycles += int64(ch.T.RFC) * int64(ch.Geo.Banks())
		return 0
	default:
		panic(fmt.Sprintf("dram: unknown command %v", cmd))
	}
}

// RefreshPointer returns the next row index the auto-refresh rotation will
// cover in the given bank.
func (ch *Channel) RefreshPointer(rank, bank int) int {
	return ch.banks[ch.bankIndex(rank, bank)].refPtr
}

// BankTimes exposes one bank's per-bank timing horizon: its open row (-1
// when precharged) and the earliest cycles at which an ACT, PRE, RD, or WR
// targeting it could legally issue, ignoring rank-scoped constraints
// (tRRD/tFAW/tCCD/turnaround/bus). Rank constraints only delay commands
// further, so these values are safe lower bounds for an event-driven
// scheduler asking "when could this bank possibly accept a command?".
func (ch *Channel) BankTimes(rank, bank int) (openRow int, nextACT, nextPRE, nextRD, nextWR int64) {
	b := &ch.banks[ch.bankIndex(rank, bank)]
	return b.openRow, b.nextACT, b.nextPRE, b.nextRD, b.nextWR
}
