// Package dram models DRAM devices at the level the paper needs: JEDEC
// command/timing behaviour for cycle-accurate simulation (Section 6) and
// per-type activation timings for hammer-rate math (Section 4.3).
//
// The model follows the organization of Section 2: a channel owns ranks,
// ranks own bank groups and banks, banks own rows. One Channel value is a
// complete timing-accurate state machine: the memory controller asks
// CanIssue/Issue and the channel enforces every intra-bank, intra-group,
// rank and data-bus constraint.
package dram

import "fmt"

// Type identifies a DRAM standard characterized by the paper.
type Type int

const (
	DDR3 Type = iota
	DDR4
	LPDDR4
)

func (t Type) String() string {
	switch t {
	case DDR3:
		return "DDR3"
	case DDR4:
		return "DDR4"
	case LPDDR4:
		return "LPDDR4"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Command is a DRAM bus command.
type Command int

const (
	CmdACT Command = iota // activate (open) a row
	CmdPRE                // precharge (close) the bank's open row
	CmdRD                 // column read burst
	CmdWR                 // column write burst
	CmdREF                // all-bank auto refresh
)

func (c Command) String() string {
	switch c {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	default:
		return fmt.Sprintf("Command(%d)", int(c))
	}
}

// Geometry describes one channel's structure. The paper's simulation
// configuration (Table 6) is one channel, one rank, 4 bank groups × 4
// banks, 16k rows per bank.
type Geometry struct {
	Ranks         int
	BankGroups    int
	BanksPerGroup int
	Rows          int // rows per bank
	Columns       int // cache-line-sized columns per row
	LineBytes     int // bytes per column burst (cache line)
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	switch {
	case g.Ranks <= 0:
		return fmt.Errorf("dram: ranks must be positive, got %d", g.Ranks)
	case g.BankGroups <= 0:
		return fmt.Errorf("dram: bank groups must be positive, got %d", g.BankGroups)
	case g.BanksPerGroup <= 0:
		return fmt.Errorf("dram: banks per group must be positive, got %d", g.BanksPerGroup)
	case g.Rows <= 0:
		return fmt.Errorf("dram: rows must be positive, got %d", g.Rows)
	case g.Columns <= 0:
		return fmt.Errorf("dram: columns must be positive, got %d", g.Columns)
	case g.LineBytes <= 0:
		return fmt.Errorf("dram: line bytes must be positive, got %d", g.LineBytes)
	}
	return nil
}

// Banks returns the total number of banks per rank.
func (g Geometry) Banks() int { return g.BankGroups * g.BanksPerGroup }

// TotalBanks returns the number of banks across all ranks.
func (g Geometry) TotalBanks() int { return g.Ranks * g.Banks() }

// RowBytes returns the row-buffer size in bytes.
func (g Geometry) RowBytes() int { return g.Columns * g.LineBytes }

// CapacityBytes returns the channel capacity in bytes.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.Ranks) * int64(g.Banks()) * int64(g.Rows) * int64(g.RowBytes())
}

// Table6Geometry is the simulated system configuration of Table 6:
// 1 channel, 1 rank, 4 bank groups × 4 banks, 16k rows per bank, with an
// 8 KiB row buffer (128 cache lines of 64 B).
func Table6Geometry() Geometry {
	return Geometry{
		Ranks:         1,
		BankGroups:    4,
		BanksPerGroup: 4,
		Rows:          16 * 1024,
		Columns:       128,
		LineBytes:     64,
	}
}
