package dram

import "fmt"

// Timing holds the JEDEC timing parameters the simulator enforces, in
// memory-clock cycles, plus the clock period so they can be converted to
// wall time. The fields mirror the constraints Ramulator models for DDR4.
type Timing struct {
	TCKPS int64 // clock period in picoseconds

	BL int // burst length in clocks (BL8 on a DDR bus = 4 clocks)

	CL  int // CAS latency (read)
	CWL int // CAS write latency

	RCD int // ACT → RD/WR
	RP  int // PRE → ACT
	RAS int // ACT → PRE
	RC  int // ACT → ACT, same bank

	RRDS int // ACT → ACT, different bank group
	RRDL int // ACT → ACT, same bank group
	FAW  int // rolling window for four ACTs per rank

	CCDS int // RD→RD / WR→WR, different bank group
	CCDL int // RD→RD / WR→WR, same bank group

	RTP  int // RD → PRE
	WR   int // end of write burst → PRE (write recovery)
	WTRS int // end of write burst → RD, different bank group
	WTRL int // end of write burst → RD, same bank group
	RTW  int // RD issue → WR issue (bus turnaround)

	RFC        int   // REF → any, refresh cycle time
	REFI       int   // average interval between REF commands
	REFW       int64 // refresh window (all rows refreshed once), in clocks
	RowsPerREF int   // rows auto-refreshed per bank per REF command
}

// NsToClk converts nanoseconds to (rounded-up) clock cycles.
func (t Timing) NsToClk(ns float64) int {
	clk := ns * 1000 / float64(t.TCKPS)
	n := int(clk)
	if float64(n) < clk {
		n++
	}
	return n
}

// ClkToNs converts clock cycles to nanoseconds.
func (t Timing) ClkToNs(clk int64) float64 {
	return float64(clk) * float64(t.TCKPS) / 1000
}

// TRCNanos returns the row-cycle time in nanoseconds, the quantity the
// paper uses to bound achievable hammer rates (Section 4.3).
func (t Timing) TRCNanos() float64 { return t.ClkToNs(int64(t.RC)) }

// Validate checks basic consistency of the parameters.
func (t Timing) Validate() error {
	if t.TCKPS <= 0 {
		return fmt.Errorf("dram: clock period must be positive, got %d ps", t.TCKPS)
	}
	if t.RC < t.RAS+t.RP {
		return fmt.Errorf("dram: tRC (%d) < tRAS+tRP (%d)", t.RC, t.RAS+t.RP)
	}
	for _, v := range []struct {
		name string
		val  int
	}{
		{"BL", t.BL}, {"CL", t.CL}, {"CWL", t.CWL}, {"RCD", t.RCD},
		{"RP", t.RP}, {"RAS", t.RAS}, {"RRDS", t.RRDS}, {"RRDL", t.RRDL},
		{"FAW", t.FAW}, {"CCDS", t.CCDS}, {"CCDL", t.CCDL}, {"RTP", t.RTP},
		{"WR", t.WR}, {"RFC", t.RFC}, {"REFI", t.REFI},
	} {
		if v.val <= 0 {
			return fmt.Errorf("dram: t%s must be positive, got %d", v.name, v.val)
		}
	}
	if t.REFW <= 0 {
		return fmt.Errorf("dram: tREFW must be positive, got %d", t.REFW)
	}
	if t.RowsPerREF <= 0 {
		return fmt.Errorf("dram: rows per REF must be positive, got %d", t.RowsPerREF)
	}
	return nil
}

// DDR4_2400 returns DDR4-2400R-like timings (tCK = 0.833 ns). The row
// cycle time matches the ~46 ns the paper lists for its DDR4 modules
// (Table 7), and is the configuration used for the Section 6 simulations.
func DDR4_2400(rowsPerBank int) Timing {
	t := Timing{
		TCKPS: 833,
		BL:    4,
		CL:    17,
		CWL:   12,
		RCD:   17,
		RP:    17,
		RAS:   39,
		RC:    56, // 46.6 ns
		RRDS:  4,
		RRDL:  6,
		FAW:   26,
		CCDS:  4,
		CCDL:  6,
		RTP:   9,
		WR:    18,
		WTRS:  3,
		WTRL:  9,
		RTW:   8,
		RFC:   421,  // 350 ns (8 Gb)
		REFI:  9363, // 7.8 µs
	}
	t.REFW = 64 * 1000 * 1000 * 1000 / t.TCKPS // 64 ms
	refsPerWindow := int(t.REFW / int64(t.REFI))
	t.RowsPerREF = (rowsPerBank + refsPerWindow - 1) / refsPerWindow
	if t.RowsPerREF < 1 {
		t.RowsPerREF = 1
	}
	return t
}

// DDR3_1600 returns DDR3-1600K-like timings (tCK = 1.25 ns), with
// tRC = 48.75 ns as in the paper's DDR3 modules (Table 8).
func DDR3_1600(rowsPerBank int) Timing {
	t := Timing{
		TCKPS: 1250,
		BL:    4,
		CL:    11,
		CWL:   8,
		RCD:   11,
		RP:    11,
		RAS:   28,
		RC:    39, // 48.75 ns
		RRDS:  5,
		RRDL:  5,
		FAW:   24,
		CCDS:  4,
		CCDL:  4,
		RTP:   6,
		WR:    12,
		WTRS:  6,
		WTRL:  6,
		RTW:   7,
		RFC:   208,  // 260 ns (4 Gb)
		REFI:  6240, // 7.8 µs
	}
	t.REFW = 64 * 1000 * 1000 * 1000 / t.TCKPS
	refsPerWindow := int(t.REFW / int64(t.REFI))
	t.RowsPerREF = (rowsPerBank + refsPerWindow - 1) / refsPerWindow
	if t.RowsPerREF < 1 {
		t.RowsPerREF = 1
	}
	return t
}

// LPDDR4_3200 returns LPDDR4-3200-like timings (tCK = 0.625 ns) with
// tRC = 60 ns as the paper states for LPDDR4 (Section 4.3).
func LPDDR4_3200(rowsPerBank int) Timing {
	t := Timing{
		TCKPS: 625,
		BL:    8, // BL16 on a DDR bus
		CL:    28,
		CWL:   14,
		RCD:   29,
		RP:    29,
		RAS:   67,
		RC:    96, // 60 ns
		RRDS:  10,
		RRDL:  10,
		FAW:   64,
		CCDS:  8,
		CCDL:  8,
		RTP:   12,
		WR:    29,
		WTRS:  16,
		WTRL:  16,
		RTW:   12,
		RFC:   448,  // 280 ns
		REFI:  6240, // 3.9 µs (per-bank refresh folded into all-bank here)
	}
	t.REFW = 32 * 1000 * 1000 * 1000 / t.TCKPS // 32 ms
	refsPerWindow := int(t.REFW / int64(t.REFI))
	t.RowsPerREF = (rowsPerBank + refsPerWindow - 1) / refsPerWindow
	if t.RowsPerREF < 1 {
		t.RowsPerREF = 1
	}
	return t
}

// TimingFor returns the default timing set for a DRAM type, sized for the
// given rows per bank.
func TimingFor(typ Type, rowsPerBank int) Timing {
	switch typ {
	case DDR3:
		return DDR3_1600(rowsPerBank)
	case LPDDR4:
		return LPDDR4_3200(rowsPerBank)
	default:
		return DDR4_2400(rowsPerBank)
	}
}

// TRCByType returns the activation cycle time in nanoseconds the paper
// quotes per DRAM type in Section 4.3: DDR3 52.5 ns, DDR4 50 ns,
// LPDDR4 60 ns. These bound the achievable hammer rate.
func TRCByType(typ Type) float64 {
	switch typ {
	case DDR3:
		return 52.5
	case DDR4:
		return 50.0
	case LPDDR4:
		return 60.0
	default:
		return 50.0
	}
}

// MaxHammersIn sets the paper's test-length bound: the largest number of
// double-sided hammers (one ACT to each of two aggressor rows) that fit in
// the given window for a DRAM type. The paper keeps the core test loop
// under 32 ms so retention failures cannot be confused with RowHammer bit
// flips.
func MaxHammersIn(typ Type, windowMs float64) int {
	perHammerNs := 2 * TRCByType(typ)
	return int(windowMs * 1e6 / perHammerNs)
}
