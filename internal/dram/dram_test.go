package dram

import (
	"testing"
	"testing/quick"
)

func testChannel(t *testing.T) *Channel {
	t.Helper()
	geo := Table6Geometry()
	ch, err := NewChannel(geo, DDR4_2400(geo.Rows))
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestGeometryValidate(t *testing.T) {
	good := Table6Geometry()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Banks() != 16 || good.TotalBanks() != 16 {
		t.Errorf("banks = %d", good.Banks())
	}
	if good.RowBytes() != 8192 {
		t.Errorf("row bytes = %d, want 8192", good.RowBytes())
	}
	for _, mutate := range []func(*Geometry){
		func(g *Geometry) { g.Ranks = 0 },
		func(g *Geometry) { g.BankGroups = 0 },
		func(g *Geometry) { g.BanksPerGroup = -1 },
		func(g *Geometry) { g.Rows = 0 },
		func(g *Geometry) { g.Columns = 0 },
		func(g *Geometry) { g.LineBytes = 0 },
	} {
		g := good
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("invalid geometry accepted: %+v", g)
		}
	}
}

func TestTimingValidateAndConversions(t *testing.T) {
	for _, tm := range []Timing{DDR4_2400(16384), DDR3_1600(16384), LPDDR4_3200(16384)} {
		if err := tm.Validate(); err != nil {
			t.Errorf("timing invalid: %v", err)
		}
		if tm.RC < tm.RAS+tm.RP {
			t.Error("tRC < tRAS+tRP")
		}
	}
	tm := DDR4_2400(16384)
	if got := tm.TRCNanos(); got < 45 || got > 48 {
		t.Errorf("DDR4 tRC = %vns, want ≈46.6", got)
	}
	if tm.NsToClk(tm.ClkToNs(100)) != 100 {
		t.Error("clk↔ns round trip failed")
	}
}

func TestTRCByTypeMatchesPaper(t *testing.T) {
	// Section 4.3: DDR3 52.5 ns, DDR4 50 ns, LPDDR4 60 ns.
	if TRCByType(DDR3) != 52.5 || TRCByType(DDR4) != 50.0 || TRCByType(LPDDR4) != 60.0 {
		t.Error("per-type tRC mismatch")
	}
	// 32 ms bound: DDR4 allows 32e6/(2×50) = 320k hammers.
	if got := MaxHammersIn(DDR4, 32); got != 320_000 {
		t.Errorf("MaxHammersIn(DDR4) = %d, want 320000", got)
	}
}

func TestActivateReadPrechargeSequence(t *testing.T) {
	ch := testChannel(t)
	tm := ch.T
	cycle := int64(100)

	if !ch.CanIssue(CmdACT, 0, 0, 42, cycle) {
		t.Fatal("ACT to idle bank rejected")
	}
	ch.Issue(CmdACT, 0, 0, 42, cycle)
	if ch.OpenRow(0, 0) != 42 {
		t.Fatal("row not open after ACT")
	}

	// RD must wait tRCD.
	if ch.CanIssue(CmdRD, 0, 0, 42, cycle+int64(tm.RCD)-1) {
		t.Error("RD accepted before tRCD")
	}
	rdCycle := cycle + int64(tm.RCD)
	if !ch.CanIssue(CmdRD, 0, 0, 42, rdCycle) {
		t.Fatal("RD rejected at tRCD")
	}
	ready := ch.Issue(CmdRD, 0, 0, 42, rdCycle)
	if want := rdCycle + int64(tm.CL) + int64(tm.BL); ready != want {
		t.Errorf("data ready at %d, want %d", ready, want)
	}

	// RD to the wrong row must be rejected.
	if ch.CanIssue(CmdRD, 0, 0, 43, rdCycle+10) {
		t.Error("RD to closed row accepted")
	}

	// PRE must respect tRAS.
	if ch.CanIssue(CmdPRE, 0, 0, 0, cycle+int64(tm.RAS)-1) {
		t.Error("PRE accepted before tRAS")
	}
	preCycle := cycle + int64(tm.RAS)
	if !ch.CanIssue(CmdPRE, 0, 0, 0, preCycle) {
		t.Fatal("PRE rejected at tRAS")
	}
	ch.Issue(CmdPRE, 0, 0, 0, preCycle)
	if ch.OpenRow(0, 0) != -1 {
		t.Fatal("row still open after PRE")
	}

	// Next ACT must respect both tRC and tRP.
	if ch.CanIssue(CmdACT, 0, 0, 7, preCycle+int64(tm.RP)-1) {
		t.Error("ACT accepted before tRP")
	}
	if !ch.CanIssue(CmdACT, 0, 0, 7, cycle+int64(tm.RC)) {
		t.Error("ACT rejected at tRC")
	}
}

func TestTFAWLimitsActivates(t *testing.T) {
	ch := testChannel(t)
	tm := ch.T
	// Issue four ACTs to different bank groups as fast as tRRD_S allows.
	cycle := int64(1000)
	for i := 0; i < 4; i++ {
		bank := i * ch.Geo.BanksPerGroup // one per bank group
		for !ch.CanIssue(CmdACT, 0, bank, 1, cycle) {
			cycle++
		}
		ch.Issue(CmdACT, 0, bank, 1, cycle)
	}
	// A fifth ACT (same rank, any bank — use group 0 bank 1) must wait
	// for the tFAW window from the first ACT.
	fifth := int64(1000) + int64(tm.RRDS)
	bank5 := 1
	if ch.CanIssue(CmdACT, 0, bank5, 1, fifth) {
		t.Error("fifth ACT accepted inside tFAW window")
	}
	if !ch.CanIssue(CmdACT, 0, bank5, 1, 1000+int64(tm.FAW)) {
		t.Error("fifth ACT rejected after tFAW")
	}
}

func TestRefreshRotationAndObserver(t *testing.T) {
	geo := Table6Geometry()
	ch, err := NewChannel(geo, DDR4_2400(geo.Rows))
	if err != nil {
		t.Fatal(err)
	}
	covered := map[int]int{}
	ch.OnRefresh(func(rank, bank, rowStart, rowCount int, cycle int64) {
		if bank == 0 {
			for r := rowStart; r < rowStart+rowCount; r++ {
				covered[r%geo.Rows]++
			}
		}
	})
	cycle := int64(10)
	refs := geo.Rows / ch.T.RowsPerREF
	for i := 0; i < refs; i++ {
		if !ch.CanIssue(CmdREF, 0, 0, 0, cycle) {
			t.Fatalf("REF %d rejected", i)
		}
		ch.Issue(CmdREF, 0, 0, 0, cycle)
		cycle += int64(ch.T.RFC) + 1
	}
	if len(covered) != geo.Rows {
		t.Fatalf("refresh rotation covered %d of %d rows", len(covered), geo.Rows)
	}
	// ACT blocked during tRFC.
	ch2 := testChannel(t)
	ch2.Issue(CmdREF, 0, 0, 0, 5)
	if ch2.CanIssue(CmdACT, 0, 3, 1, 5+int64(ch2.T.RFC)-1) {
		t.Error("ACT accepted during tRFC")
	}
}

func TestREFRequiresClosedBanks(t *testing.T) {
	ch := testChannel(t)
	ch.Issue(CmdACT, 0, 2, 9, 10)
	if ch.CanIssue(CmdREF, 0, 0, 0, 20) {
		t.Error("REF accepted with an open bank")
	}
}

func TestIllegalIssuePanics(t *testing.T) {
	ch := testChannel(t)
	defer func() {
		if recover() == nil {
			t.Error("illegal Issue did not panic")
		}
	}()
	ch.Issue(CmdRD, 0, 0, 5, 1) // no row open
}

func TestACTObserverFires(t *testing.T) {
	ch := testChannel(t)
	var got []int
	ch.OnACT(func(rank, bank, row int, cycle int64) { got = append(got, row) })
	ch.Issue(CmdACT, 0, 0, 11, 10)
	ch.Issue(CmdACT, 0, 8, 22, 20)
	if len(got) != 2 || got[0] != 11 || got[1] != 22 {
		t.Errorf("observer saw %v", got)
	}
}

func TestAddressMapRoundTrip(t *testing.T) {
	geo := Table6Geometry()
	m, err := NewAddressMapper(geo)
	if err != nil {
		t.Fatal(err)
	}
	// Property: AddressOf inverts Map for any in-range coordinates.
	f := func(bankRaw, rowRaw, colRaw uint) bool {
		a := Address{
			Rank: 0,
			Bank: int(bankRaw % uint(geo.Banks())),
			Row:  int(rowRaw % uint(geo.Rows)),
			Col:  int(colRaw % uint(geo.Columns)),
		}
		return m.Map(m.AddressOf(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAddressMapSequentialLinesShareRow(t *testing.T) {
	geo := Table6Geometry()
	m, err := NewAddressMapper(geo)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Map(0)
	for i := 1; i < geo.Columns; i++ {
		a := m.Map(int64(i * geo.LineBytes))
		if a.Row != base.Row || a.Bank != base.Bank {
			t.Fatalf("line %d left the row buffer: %v vs %v", i, a, base)
		}
		if a.Col != i {
			t.Fatalf("line %d col = %d", i, a.Col)
		}
	}
	// The next line must move to another bank, not the next row.
	next := m.Map(int64(geo.Columns * geo.LineBytes))
	if next.Bank == base.Bank && next.Row == base.Row {
		t.Error("row crossing did not rotate banks")
	}
}

func TestBusConflictBlocksOverlappingBursts(t *testing.T) {
	ch := testChannel(t)
	tm := ch.T
	ch.Issue(CmdACT, 0, 0, 1, 0)
	ch.Issue(CmdACT, 0, ch.Geo.BanksPerGroup, 1, int64(tm.RRDS)) // other group
	c := int64(tm.RCD) + int64(tm.RRDS)
	ch.Issue(CmdRD, 0, 0, 1, c)
	// An immediate RD on the other bank would overlap the data burst.
	if ch.CanIssue(CmdRD, 0, ch.Geo.BanksPerGroup, 1, c+1) {
		t.Error("overlapping burst accepted")
	}
	if !ch.CanIssue(CmdRD, 0, ch.Geo.BanksPerGroup, 1, c+int64(tm.BL)) {
		t.Error("post-burst RD rejected")
	}
}
