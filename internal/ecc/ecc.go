// Package ecc implements the single-error-correcting Hamming codes the
// paper's analysis depends on: the 64-bit-granularity rank-level codes of
// Section 5.5 / Figure 9 and the 128-bit on-die LPDDR4 code of
// Observation 9 / Table 5.
//
// The decoder is a real syndrome decoder, so its behaviour on multi-bit
// errors is the genuine "undefined" behaviour the paper describes: it may
// correct one of the flips, do nothing, or miscorrect an error-free bit.
package ecc

import (
	"errors"
	"fmt"
	"sort"
)

// Code is a binary Hamming single-error-correcting code over k data bits
// with r parity bits, stored as a (k+r)-bit codeword. Bit positions in the
// codeword are numbered 1..n (the classic Hamming arrangement): positions
// that are powers of two hold parity bits, the rest hold data bits in
// ascending order.
type Code struct {
	k int // data bits
	r int // parity bits
	n int // codeword bits = k + r

	dataPos []int // codeword position (1-based) of each data bit
	parPos  []int // codeword position (1-based) of each parity bit
	posKind []int // index 1..n: data index (>=0) or -(parity index)-1
}

// New constructs a Hamming SEC code for k data bits. It returns an error
// if k is not positive.
func New(k int) (*Code, error) {
	if k <= 0 {
		return nil, errors.New("ecc: data width must be positive")
	}
	r := 0
	for (1 << r) < k+r+1 {
		r++
	}
	c := &Code{k: k, r: r, n: k + r}
	c.posKind = make([]int, c.n+1)
	di := 0
	for pos := 1; pos <= c.n; pos++ {
		if pos&(pos-1) == 0 { // power of two → parity
			c.posKind[pos] = -len(c.parPos) - 1
			c.parPos = append(c.parPos, pos)
		} else {
			c.dataPos = append(c.dataPos, pos)
			c.posKind[pos] = di
			di++
		}
	}
	return c, nil
}

// MustNew is New for statically-known widths; it panics on error.
func MustNew(k int) *Code {
	c, err := New(k)
	if err != nil {
		panic(err)
	}
	return c
}

// DataBits returns k, the number of data bits per codeword.
func (c *Code) DataBits() int { return c.k }

// ParityBits returns r, the number of parity bits per codeword.
func (c *Code) ParityBits() int { return c.r }

// CodewordBits returns n = k + r.
func (c *Code) CodewordBits() int { return c.n }

// Encode computes the codeword for the given data bits. data must hold at
// least k entries; each entry is 0 or 1. The result has n entries indexed
// 0..n-1 (codeword position minus one).
func (c *Code) Encode(data []byte) ([]byte, error) {
	if len(data) < c.k {
		return nil, fmt.Errorf("ecc: need %d data bits, got %d", c.k, len(data))
	}
	cw := make([]byte, c.n)
	for i, pos := range c.dataPos {
		cw[pos-1] = data[i] & 1
	}
	for _, ppos := range c.parPos {
		var p byte
		for pos := 1; pos <= c.n; pos++ {
			if pos&ppos != 0 && pos != ppos {
				p ^= cw[pos-1]
			}
		}
		cw[ppos-1] = p
	}
	return cw, nil
}

// Action describes what the decoder did to a codeword.
type Action int

const (
	// NoError means the syndrome was zero: nothing changed.
	NoError Action = iota
	// Corrected means the syndrome pointed at a bit inside the codeword,
	// which was flipped back. For a single-bit error this is a true
	// correction; for multi-bit errors it may be a miscorrection.
	Corrected
	// Detected means the syndrome pointed outside the codeword: the
	// decoder knows something is wrong but changes nothing.
	Detected
)

func (a Action) String() string {
	switch a {
	case NoError:
		return "no-error"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Decode computes the syndrome of cw (length n), applies the Hamming
// correction rule in place, and returns the recovered data bits plus the
// action taken. Multi-bit errors yield genuinely undefined-but-
// deterministic behaviour: whatever bit the aliased syndrome points at is
// flipped (possibly an error-free one), exactly as real on-die SEC logic
// behaves.
func (c *Code) Decode(cw []byte) (data []byte, action Action, err error) {
	if len(cw) < c.n {
		return nil, NoError, fmt.Errorf("ecc: need %d codeword bits, got %d", c.n, len(cw))
	}
	syndrome := 0
	for pos := 1; pos <= c.n; pos++ {
		if cw[pos-1]&1 == 1 {
			syndrome ^= pos
		}
	}
	switch {
	case syndrome == 0:
		action = NoError
	case syndrome <= c.n:
		cw[syndrome-1] ^= 1
		action = Corrected
	default:
		action = Detected
	}
	data = make([]byte, c.k)
	for i, pos := range c.dataPos {
		data[i] = cw[pos-1] & 1
	}
	return data, action, nil
}

// DecodeFlips is the fault-model fast path. The stored codeword is the
// correct encoding of known data with the raw cell flips listed in
// rawFlips (0-based codeword bit indices). It returns the 0-based *data*
// bit indices that remain wrong after decoding — i.e. the flips the system
// observes through the ECC.
//
// This avoids materializing whole codewords when only a handful of cells
// flipped, which is what makes full-chip characterization tractable.
func (c *Code) DecodeFlips(rawFlips []int) (observedDataFlips []int, action Action, err error) {
	syndrome := 0
	for _, f := range rawFlips {
		if f < 0 || f >= c.n {
			return nil, NoError, fmt.Errorf("ecc: flip index %d out of range [0,%d)", f, c.n)
		}
		syndrome ^= f + 1
	}
	// Set of flipped positions after the correction step.
	post := make(map[int]bool, len(rawFlips)+1)
	for _, f := range rawFlips {
		post[f+1] = !post[f+1] // duplicate flips cancel
	}
	switch {
	case syndrome == 0:
		action = NoError
	case syndrome <= c.n:
		post[syndrome] = !post[syndrome]
		action = Corrected
	default:
		action = Detected
	}
	// Walk positions in codeword order, not map order, so the returned
	// flips are deterministic (callers feed them into published results).
	positions := make([]int, 0, len(post))
	for pos := range post {
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	for _, pos := range positions {
		if !post[pos] {
			continue
		}
		if di := c.posKind[pos]; di >= 0 {
			observedDataFlips = append(observedDataFlips, di)
		}
	}
	return observedDataFlips, action, nil
}

// DataPosition returns the 0-based codeword bit index that stores data
// bit i.
func (c *Code) DataPosition(i int) int { return c.dataPos[i] - 1 }

// ParityPosition returns the 0-based codeword bit index that stores
// parity bit j.
func (c *Code) ParityPosition(j int) int { return c.parPos[j] - 1 }

// ParityFor computes the r parity bits for the given data bits.
func (c *Code) ParityFor(data []byte) ([]byte, error) {
	cw, err := c.Encode(data)
	if err != nil {
		return nil, err
	}
	par := make([]byte, c.r)
	for j, pos := range c.parPos {
		par[j] = cw[pos-1]
	}
	return par, nil
}

// Standard code widths used by the paper.
var (
	// SEC64 is the 64-bit-data rank-level code of Section 5.5 (Figure 9's
	// analysis granularity): (71,64) Hamming, 7 parity bits.
	SEC64 = MustNew(64)
	// SEC128 is the LPDDR4 on-die code: a 128-bit single-error-correcting
	// code ((136,128) Hamming, 8 parity bits).
	SEC128 = MustNew(128)
)
