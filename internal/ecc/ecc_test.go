package ecc

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestCodeDimensions(t *testing.T) {
	cases := []struct{ k, r int }{
		{4, 3}, {11, 4}, {64, 7}, {128, 8},
	}
	for _, c := range cases {
		code, err := New(c.k)
		if err != nil {
			t.Fatal(err)
		}
		if code.ParityBits() != c.r {
			t.Errorf("k=%d: parity = %d, want %d", c.k, code.ParityBits(), c.r)
		}
		if code.CodewordBits() != c.k+c.r {
			t.Errorf("k=%d: n = %d", c.k, code.CodewordBits())
		}
	}
	if _, err := New(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func randomData(rng *stats.RNG, k int) []byte {
	d := make([]byte, k)
	for i := range d {
		if rng.Bool() {
			d[i] = 1
		}
	}
	return d
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, code := range []*Code{SEC64, SEC128, MustNew(8)} {
		for trial := 0; trial < 50; trial++ {
			data := randomData(rng, code.DataBits())
			cw, err := code.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			got, action, err := code.Decode(cw)
			if err != nil {
				t.Fatal(err)
			}
			if action != NoError {
				t.Fatalf("clean codeword decoded with action %v", action)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("round trip bit %d mismatch", i)
				}
			}
		}
	}
}

func TestSingleBitErrorAlwaysCorrected(t *testing.T) {
	rng := stats.NewRNG(2)
	for _, code := range []*Code{SEC64, SEC128} {
		data := randomData(rng, code.DataBits())
		for pos := 0; pos < code.CodewordBits(); pos++ {
			cw, err := code.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			cw[pos] ^= 1
			got, action, err := code.Decode(cw)
			if err != nil {
				t.Fatal(err)
			}
			if action != Corrected {
				t.Fatalf("flip at %d: action %v, want corrected", pos, action)
			}
			for i := range data {
				if got[i] != data[i] {
					t.Fatalf("flip at %d not corrected", pos)
				}
			}
		}
	}
}

func TestSingleBitCorrectionProperty(t *testing.T) {
	// Property (testing/quick): for random data and a random single
	// flipped bit, SEC64 recovers the data exactly.
	f := func(seed uint64, posRaw uint) bool {
		rng := stats.NewRNG(seed)
		data := randomData(rng, 64)
		cw, err := SEC64.Encode(data)
		if err != nil {
			return false
		}
		pos := int(posRaw % uint(SEC64.CodewordBits()))
		cw[pos] ^= 1
		got, action, err := SEC64.Decode(cw)
		if err != nil || action != Corrected {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDoubleBitErrorMisbehaves(t *testing.T) {
	// Two flips exceed SEC correction: the decoder must take *some*
	// non-trivial action (Section 5.4: correct one, do nothing, or
	// miscorrect) and the result must differ from the original data.
	rng := stats.NewRNG(3)
	data := randomData(rng, 128)
	cw, err := SEC128.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	cw[3] ^= 1
	cw[40] ^= 1
	got, action, err := SEC128.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if action == NoError {
		t.Error("double error produced zero syndrome")
	}
	diff := 0
	for i := range data {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("double error silently corrected — impossible for SEC")
	}
}

func TestDecodeFlipsMatchesDecode(t *testing.T) {
	// Property: DecodeFlips (the fault-model fast path) must agree with
	// a full Decode on which data bits remain wrong.
	rng := stats.NewRNG(4)
	for trial := 0; trial < 200; trial++ {
		code := SEC128
		data := randomData(rng, code.DataBits())
		cw, err := code.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		nFlips := 1 + rng.Intn(4)
		flipSet := map[int]bool{}
		for len(flipSet) < nFlips {
			flipSet[rng.Intn(code.CodewordBits())] = true
		}
		var flips []int
		for f := range flipSet {
			cw[f] ^= 1
			flips = append(flips, f)
		}
		got, actionFull, err := code.Decode(cw)
		if err != nil {
			t.Fatal(err)
		}
		var wantWrong []int
		for i := range data {
			if got[i] != data[i] {
				wantWrong = append(wantWrong, i)
			}
		}
		fastWrong, actionFast, err := code.DecodeFlips(flips)
		if err != nil {
			t.Fatal(err)
		}
		if actionFull != actionFast {
			t.Fatalf("action mismatch: %v vs %v (flips %v)", actionFull, actionFast, flips)
		}
		if len(fastWrong) != len(wantWrong) {
			t.Fatalf("wrong-bit count mismatch: fast %v vs full %v", fastWrong, wantWrong)
		}
		wrongSet := map[int]bool{}
		for _, w := range wantWrong {
			wrongSet[w] = true
		}
		for _, w := range fastWrong {
			if !wrongSet[w] {
				t.Fatalf("fast path reported bit %d, full path %v", w, wantWrong)
			}
		}
	}
}

// TestDecodeFlipsDeterministicOrder pins the mapiter fix: the observed
// data flips come back sorted ascending (codeword-position order), not
// in map-iteration order, so identical inputs yield identical bytes in
// every run and process.
func TestDecodeFlipsDeterministicOrder(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 100; trial++ {
		code := SEC128
		nFlips := 3 + rng.Intn(4)
		flipSet := map[int]bool{}
		for len(flipSet) < nFlips {
			flipSet[rng.Intn(code.CodewordBits())] = true
		}
		var flips []int
		for f := range flipSet {
			flips = append(flips, f)
		}
		first, _, err := code.DecodeFlips(flips)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(first); i++ {
			if first[i] <= first[i-1] {
				t.Fatalf("unsorted observed flips %v", first)
			}
		}
		for rep := 0; rep < 10; rep++ {
			got, _, err := code.DecodeFlips(flips)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(first) {
				t.Fatalf("rep %d: %v vs %v", rep, got, first)
			}
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("rep %d: order changed: %v vs %v", rep, got, first)
				}
			}
		}
	}
}

func TestDecodeFlipsSingleRawFlipHidden(t *testing.T) {
	// A single raw flip anywhere must be invisible after decode — the
	// mechanism behind LPDDR4's masked singles (Observation 9).
	for pos := 0; pos < SEC128.CodewordBits(); pos++ {
		wrong, action, err := SEC128.DecodeFlips([]int{pos})
		if err != nil {
			t.Fatal(err)
		}
		if action != Corrected {
			t.Fatalf("pos %d: action %v", pos, action)
		}
		if len(wrong) != 0 {
			t.Fatalf("pos %d: observed flips %v, want none", pos, wrong)
		}
	}
}

func TestDecodeFlipsValidation(t *testing.T) {
	if _, _, err := SEC64.DecodeFlips([]int{-1}); err == nil {
		t.Error("negative flip index accepted")
	}
	if _, _, err := SEC64.DecodeFlips([]int{SEC64.CodewordBits()}); err == nil {
		t.Error("out-of-range flip index accepted")
	}
}

func TestPositionsInvertible(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < SEC128.DataBits(); i++ {
		p := SEC128.DataPosition(i)
		if seen[p] {
			t.Fatalf("duplicate codeword position %d", p)
		}
		seen[p] = true
	}
	for j := 0; j < SEC128.ParityBits(); j++ {
		p := SEC128.ParityPosition(j)
		if seen[p] {
			t.Fatalf("parity position %d collides", p)
		}
		seen[p] = true
	}
	if len(seen) != SEC128.CodewordBits() {
		t.Fatalf("positions cover %d of %d bits", len(seen), SEC128.CodewordBits())
	}
}

func TestEncodeShortDataRejected(t *testing.T) {
	if _, err := SEC64.Encode(make([]byte, 10)); err == nil {
		t.Error("short data accepted")
	}
	if _, _, err := SEC64.Decode(make([]byte, 10)); err == nil {
		t.Error("short codeword accepted")
	}
}

func TestParityForStability(t *testing.T) {
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte((0x55 >> (uint(i) & 7)) & 1)
	}
	p1, err := SEC128.ParityFor(data)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := SEC128.ParityFor(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("parity not deterministic")
		}
	}
	if len(p1) != 8 {
		t.Fatalf("parity width %d, want 8", len(p1))
	}
}
