// Package stats provides the small set of statistics used throughout the
// RowHammer reproduction: box-and-whisker summaries (Figure 8), histograms
// (Figures 4, 6, 7), means with deviations (Figure 9, Table 5), and
// least-squares fits in log-log space (Observation 4).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries that need at least one sample.
var ErrEmpty = errors.New("stats: empty data set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when xs has
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between closest ranks, matching the convention used by the
// paper's box plots (median = Quantile(0.5)).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// BoxPlot summarizes a distribution the way Figure 8 draws it: quartiles,
// whiskers at 1.5×IQR, and outliers beyond the whiskers.
type BoxPlot struct {
	Min, Max       float64
	Q1, Median, Q3 float64
	WhiskerLo      float64 // smallest sample ≥ Q1 − 1.5·IQR
	WhiskerHi      float64 // largest sample ≤ Q3 + 1.5·IQR
	Outliers       []float64
	N              int
}

// IQR returns the inter-quartile range of the summary.
func (b BoxPlot) IQR() float64 { return b.Q3 - b.Q1 }

// NewBoxPlot computes a box-and-whisker summary of xs.
func NewBoxPlot(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var b BoxPlot
	b.N = len(s)
	b.Min = s[0]
	b.Max = s[len(s)-1]
	var err error
	if b.Q1, err = Quantile(s, 0.25); err != nil {
		return BoxPlot{}, err
	}
	if b.Median, err = Quantile(s, 0.5); err != nil {
		return BoxPlot{}, err
	}
	if b.Q3, err = Quantile(s, 0.75); err != nil {
		return BoxPlot{}, err
	}
	loFence := b.Q1 - 1.5*b.IQR()
	hiFence := b.Q3 + 1.5*b.IQR()
	b.WhiskerLo = b.Max // shrink downward
	b.WhiskerHi = b.Min // grow upward
	for _, x := range s {
		if x >= loFence && x < b.WhiskerLo {
			b.WhiskerLo = x
		}
		if x <= hiFence && x > b.WhiskerHi {
			b.WhiskerHi = x
		}
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
		}
	}
	return b, nil
}

// Histogram counts samples into len(edges)-1 bins; edges must be strictly
// increasing. Samples outside [edges[0], edges[last]) are dropped, except
// that a sample equal to the final edge lands in the last bin.
type Histogram struct {
	Edges  []float64
	Counts []int
	Total  int // samples actually binned
}

// NewHistogram builds a histogram of xs over the given bin edges.
func NewHistogram(xs []float64, edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, errors.New("stats: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, errors.New("stats: histogram edges must be strictly increasing")
		}
	}
	h := &Histogram{Edges: edges, Counts: make([]int, len(edges)-1)}
	for _, x := range xs {
		if x < edges[0] || x > edges[len(edges)-1] {
			continue
		}
		i := sort.SearchFloat64s(edges, x)
		// SearchFloat64s returns the first index with edges[i] >= x.
		if i > 0 && (i == len(edges) || edges[i] != x) {
			i--
		}
		if i == len(edges)-1 {
			i-- // x equals the final edge
		}
		h.Counts[i]++
		h.Total++
	}
	return h, nil
}

// Fractions returns each bin count as a fraction of the binned total.
func (h *Histogram) Fractions() []float64 {
	fs := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return fs
	}
	for i, c := range h.Counts {
		fs[i] = float64(c) / float64(h.Total)
	}
	return fs
}

// LinearFit is a least-squares line y = Slope·x + Intercept with the
// coefficient of determination R2.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine fits a least-squares line through the points (xs[i], ys[i]).
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched point slices")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: need at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	f := LinearFit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy == 0 {
		f.R2 = 1
	} else {
		f.R2 = (sxy * sxy) / (sxx * syy)
	}
	return f, nil
}

// FitLogLog fits a line in log10-log10 space, used to verify Observation 4
// (the log of the flip count is linear in the log of the hammer count).
// Points with non-positive coordinates are skipped.
func FitLogLog(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched point slices")
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log10(xs[i]))
			ly = append(ly, math.Log10(ys[i]))
		}
	}
	return FitLine(lx, ly)
}

// GeoMean returns the geometric mean of xs; all entries must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}
