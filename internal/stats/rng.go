package stats

import "math"

// RNG is a small deterministic pseudo-random generator (xoshiro256**) used
// everywhere randomness is needed so that experiments are reproducible from
// a seed alone, independent of math/rand version changes.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given value via SplitMix64,
// which guarantees a non-zero internal state for any seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Poisson draws from a Poisson distribution with mean lambda using
// inversion for small means and a normal approximation for large ones.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		// Knuth inversion.
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation with continuity correction.
	n := lambda + math.Sqrt(lambda)*r.Normal()
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// Normal returns a standard normal deviate (Box–Muller).
func (r *RNG) Normal() float64 {
	// Marsaglia polar method.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Fork derives an independent generator from this one, for giving each
// chip/row/workload its own stream without coupling draw orders.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// Shuffle permutes the first n indices using the Fisher–Yates algorithm,
// calling swap for each exchange.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
