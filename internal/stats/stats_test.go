package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("stddev = %v, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty slices should give 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range quantile accepted")
	}
}

func TestQuantileOrderProperty(t *testing.T) {
	// Property: quantiles are monotone in q and bounded by min/max.
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1, _ := Quantile(xs, 0.25)
		q2, _ := Quantile(xs, 0.5)
		q3, _ := Quantile(xs, 0.75)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return lo <= q1 && q1 <= q2 && q2 <= q3 && q3 <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoxPlot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100} // 100 is an outlier
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 9 || b.Min != 1 || b.Max != 100 {
		t.Errorf("summary: %+v", b)
	}
	if b.Median != 5 {
		t.Errorf("median = %v, want 5", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", b.Outliers)
	}
	if b.WhiskerHi >= 100 {
		t.Errorf("whisker %v should exclude the outlier", b.WhiskerHi)
	}
	if _, err := NewBoxPlot(nil); err == nil {
		t.Error("empty box plot accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0.5, 1.5, 1.7, 2.5, 3}, []float64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	fr := h.Fractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", sum)
	}
	if _, err := NewHistogram(nil, []float64{1}); err == nil {
		t.Error("single-edge histogram accepted")
	}
	if _, err := NewHistogram(nil, []float64{2, 1}); err == nil {
		t.Error("non-increasing edges accepted")
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 || f.R2 < 0.999 {
		t.Errorf("fit = %+v", f)
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single-point fit accepted")
	}
	if _, err := FitLine([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("degenerate x fit accepted")
	}
}

func TestFitLogLogPowerLaw(t *testing.T) {
	// y = 3 x^2.5 must fit with slope 2.5 in log-log space.
	var xs, ys []float64
	for x := 1.0; x <= 100; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 2.5))
	}
	f, err := FitLogLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2.5) > 1e-9 {
		t.Errorf("log-log slope = %v, want 2.5", f.Slope)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", g)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative value accepted")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal values", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	n := 100000
	sum := 0.0
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %v", x)
		}
		sum += x
		buckets[int(x*10)]++
	}
	if m := sum / float64(n); math.Abs(m-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", m)
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestRNGPoisson(t *testing.T) {
	r := NewRNG(9)
	for _, lambda := range []float64{0.5, 3, 50} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > 0.1*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestRNGBernoulliEdges(t *testing.T) {
	r := NewRNG(1)
	if r.Bernoulli(0) {
		t.Error("p=0 returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("p=1 returned false")
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if hits < 2700 || hits > 3300 {
		t.Errorf("Bernoulli(0.3) hit %d/10000", hits)
	}
}

func TestRNGNormal(t *testing.T) {
	r := NewRNG(13)
	n := 50000
	sum, ss := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		ss += x * x
	}
	mean := sum / float64(n)
	std := math.Sqrt(ss/float64(n) - mean*mean)
	if math.Abs(mean) > 0.02 || math.Abs(std-1) > 0.02 {
		t.Errorf("normal mean=%v std=%v", mean, std)
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(3)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("shuffle lost elements: %v", xs)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}
