package cpu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// instantMem completes reads synchronously on the next Tick via the
// cache's own scheduling: it fires callbacks immediately.
type instantMem struct {
	reads int
	reqs  []int
}

func (m *instantMem) EnqueueRead(requester int, addr int64, onDone func()) bool {
	m.reads++
	m.reqs = append(m.reqs, requester)
	onDone()
	return true
}
func (m *instantMem) EnqueueWrite(requester int, addr int64) {}

func newLLC(t *testing.T, mem cache.Backend) *cache.Cache {
	t.Helper()
	llc, err := cache.New(cache.Config{
		SizeBytes: 1 << 20, Assoc: 8, LineBytes: 64, HitLatency: 2, MSHRs: 16,
	}, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	return llc
}

func TestNewValidation(t *testing.T) {
	llc := newLLC(t, &instantMem{})
	tr := &trace.Trace{Records: []trace.Record{{Gap: 1, Addr: 0}}}
	if _, err := New(0, Config{}, tr, llc); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(0, Table6Config(), &trace.Trace{}, llc); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestNonMemoryInstructionsRetireAtWidth(t *testing.T) {
	llc := newLLC(t, &instantMem{})
	// One record with a large gap: pure compute.
	tr := &trace.Trace{Records: []trace.Record{{Gap: 1 << 20, Addr: 0}}}
	c, err := New(0, Table6Config(), tr, llc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		llc.Tick()
		c.Tick()
	}
	// Steady-state IPC must approach the issue width (4); the window
	// fill/drain transient costs a cycle.
	if ipc := c.IPC(); ipc < 3.5 {
		t.Errorf("compute-only IPC = %v, want ≈4", ipc)
	}
}

func TestMemoryInstructionsBlockRetirement(t *testing.T) {
	mem := &instantMem{}
	llc := newLLC(t, mem)
	// Strided reads: every instruction is a distinct-line load.
	var recs []trace.Record
	for i := 0; i < 512; i++ {
		recs = append(recs, trace.Record{Gap: 0, Addr: int64(i) * 64})
	}
	tr := &trace.Trace{Records: recs}
	c, err := New(0, Table6Config(), tr, llc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		llc.Tick()
		c.Tick()
	}
	if c.Retired == 0 {
		t.Fatal("nothing retired")
	}
	if mem.reads == 0 {
		t.Fatal("no memory traffic")
	}
	// Loads must not exceed issue width per cycle on average.
	if ipc := c.IPC(); ipc > 4 {
		t.Errorf("IPC %v exceeds issue width", ipc)
	}
}

func TestWritesRetireImmediately(t *testing.T) {
	llc := newLLC(t, &instantMem{})
	var recs []trace.Record
	for i := 0; i < 64; i++ {
		recs = append(recs, trace.Record{Gap: 0, Addr: int64(i) * 64, Write: true})
	}
	c, err := New(0, Table6Config(), &trace.Trace{Records: recs}, llc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		llc.Tick()
		c.Tick()
	}
	if c.Retired < 64 {
		t.Errorf("only %d writes retired", c.Retired)
	}
}

func TestResetStatsKeepsPipeline(t *testing.T) {
	llc := newLLC(t, &instantMem{})
	tr := &trace.Trace{Records: []trace.Record{{Gap: 10, Addr: 64}}}
	c, err := New(0, Table6Config(), tr, llc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		llc.Tick()
		c.Tick()
	}
	c.ResetStats()
	if c.Retired != 0 || c.Cycles != 0 {
		t.Error("stats not reset")
	}
	for i := 0; i < 100; i++ {
		llc.Tick()
		c.Tick()
	}
	if c.Retired == 0 {
		t.Error("core stopped after stats reset")
	}
}

func TestRequesterPropagation(t *testing.T) {
	mem := &instantMem{}
	llc := newLLC(t, mem)
	// Two distinct-line reads: one unattributed (the replaying core's ID
	// must substitute), one with an explicit source.
	tr := &trace.Trace{Records: []trace.Record{
		{Gap: 0, Addr: 0},
		{Gap: 0, Addr: 64 * 64, Requester: 7},
	}}
	c, err := New(3, Table6Config(), tr, llc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && len(mem.reqs) < 2; i++ {
		llc.Tick()
		c.Tick()
	}
	if len(mem.reqs) < 2 {
		t.Fatalf("backend saw %d requests, want 2", len(mem.reqs))
	}
	if mem.reqs[0] != 3 {
		t.Errorf("unattributed record reached the backend as requester %d, want the core ID 3", mem.reqs[0])
	}
	if mem.reqs[1] != 7 {
		t.Errorf("explicit record reached the backend as requester %d, want 7", mem.reqs[1])
	}
}

func TestPassOffsetAdvancesAddresses(t *testing.T) {
	mem := &instantMem{}
	llc := newLLC(t, mem)
	tr := &trace.Trace{
		Records:    []trace.Record{{Gap: 0, Addr: 0}, {Gap: 0, Addr: 64}},
		PassStride: 1 << 20,
		Span:       1 << 30,
	}
	c, err := New(0, Table6Config(), tr, llc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		llc.Tick()
		c.Tick()
	}
	// With pass shifting, replays touch fresh lines, so backend reads
	// keep growing well beyond the two distinct trace lines.
	if mem.reads < 10 {
		t.Errorf("backend reads = %d; pass shifting not applied", mem.reads)
	}
}
