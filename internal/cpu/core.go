// Package cpu implements the paper's simple core model (Table 6: 4 GHz,
// 4-wide issue, 128-entry instruction window): trace-driven in-order
// cores whose memory-level parallelism is bounded by the instruction
// window, the standard Ramulator CPU front end.
package cpu

import (
	"errors"

	"repro/internal/cache"
	"repro/internal/trace"
)

// Config sizes one core.
type Config struct {
	IssueWidth int // instructions retired/issued per cycle
	WindowSize int // in-flight instruction window entries
}

// Table6Config returns the paper's core parameters.
func Table6Config() Config { return Config{IssueWidth: 4, WindowSize: 128} }

// Core replays one trace through the shared LLC. Non-memory instructions
// complete immediately; loads occupy a window slot until data returns;
// stores retire as soon as the cache accepts them.
type Core struct {
	ID  int
	cfg Config

	trc    *trace.Trace
	pos    int
	pass   int64
	offset int64 // current pass's address offset

	// Instruction window: a ring of done flags. seqHead is the sequence
	// number of the oldest in-flight instruction. mask shortcuts the ring
	// modulo when the window size is a power of two (-1 otherwise).
	done    []bool
	mask    int64
	seqHead int64
	inFlite int

	gapLeft   int
	recLoaded bool
	rec       trace.Record

	// outstanding counts in-flight loads whose data has not returned, so
	// the event engine can tell "every window slot is a completed
	// instruction" (bulk-replayable) from "a callback may land any time".
	outstanding int

	llc *cache.Cache

	Retired int64
	Cycles  int64
	stalled int64 // cycles with zero issue due to back-pressure
}

// New builds a core over the shared cache.
func New(id int, cfg Config, trc *trace.Trace, llc *cache.Cache) (*Core, error) {
	if cfg.IssueWidth <= 0 || cfg.WindowSize <= 0 {
		return nil, errors.New("cpu: issue width and window size must be positive")
	}
	if trc == nil || len(trc.Records) == 0 {
		return nil, errors.New("cpu: empty trace")
	}
	mask := int64(-1)
	if cfg.WindowSize&(cfg.WindowSize-1) == 0 {
		mask = int64(cfg.WindowSize - 1)
	}
	return &Core{
		ID:   id,
		cfg:  cfg,
		trc:  trc,
		done: make([]bool, cfg.WindowSize),
		mask: mask,
		llc:  llc,
	}, nil
}

// IPC returns retired instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

// StallCycles returns cycles in which the core could not issue anything.
func (c *Core) StallCycles() int64 { return c.stalled }

// ResetStats zeroes retirement statistics (end of warmup) without
// disturbing the pipeline state.
func (c *Core) ResetStats() {
	c.Retired = 0
	c.Cycles = 0
	c.stalled = 0
}

func (c *Core) slot(seq int64) int {
	if c.mask >= 0 {
		return int(seq & c.mask)
	}
	return int(seq % int64(len(c.done)))
}

// Tick advances the core one CPU cycle: retire up to IssueWidth done
// instructions from the window head, then issue up to IssueWidth new ones.
func (c *Core) Tick() {
	c.Cycles++

	// Retire.
	for i := 0; i < c.cfg.IssueWidth && c.inFlite > 0; i++ {
		s := c.slot(c.seqHead)
		if !c.done[s] {
			break
		}
		c.done[s] = false
		c.seqHead++
		c.inFlite--
		c.Retired++
	}

	// Issue.
	issued := 0
	for issued < c.cfg.IssueWidth && c.inFlite < len(c.done) {
		if !c.recLoaded {
			c.rec = c.trc.Records[c.pos]
			c.rec.Addr += c.offset
			c.pos++
			if c.pos == len(c.trc.Records) {
				// Traces replay cyclically; each pass shifts its address
				// window so short traces model full-length ones.
				c.pos = 0
				c.pass++
				c.offset = c.trc.PassOffset(c.pass)
			}
			c.gapLeft = c.rec.Gap
			c.recLoaded = true
		}
		if c.gapLeft > 0 {
			// Non-memory instruction: completes immediately.
			c.done[c.slot(c.seqHead+int64(c.inFlite))] = true
			c.inFlite++
			c.gapLeft--
			issued++
			continue
		}
		// Memory instruction. The access carries a requester ID down the
		// memory path: the record's explicit source when the trace declares
		// one, otherwise this core's ID.
		req := c.ID
		if c.rec.Requester != 0 {
			req = c.rec.Requester
		}
		if c.rec.Write {
			if !c.llc.Write(req, c.rec.Addr) {
				break // back-pressure: retry next cycle
			}
			c.done[c.slot(c.seqHead+int64(c.inFlite))] = true
			c.inFlite++
		} else {
			seq := c.seqHead + int64(c.inFlite)
			s := c.slot(seq)
			c.done[s] = false // before Read: the callback may fire any time after
			read := c.llc.Read
			if c.rec.NoCache {
				read = c.llc.ReadUncached // flush+load: always reaches DRAM
			}
			//rhlint:allow hotalloc(one completion closure per issued read, amortized over the read's multi-cycle memory latency)
			if !read(req, c.rec.Addr, func() { c.done[s] = true; c.outstanding-- }) {
				break
			}
			c.outstanding++
			c.inFlite++
		}
		c.recLoaded = false
		issued++
	}
	if issued == 0 && c.inFlite > 0 {
		c.stalled++
	}
}

// BulkWindow reports how many CPU cycles the core can advance without an
// exact Tick, and which bulk method applies. A window of 0 means the core
// must tick cycle-by-cycle. The two bulk-replayable states:
//
//   - blocked: the instruction window is full and its head instruction is
//     incomplete. Tick is exactly {Cycles++, stalled++} until an external
//     callback completes the head, and callbacks only fire from the LLC or
//     controller clocks — which the event engine holds still during a
//     jump. Unbounded (the engine's other horizons cap the jump).
//
//   - gap run: no loads are outstanding (every window slot is a completed
//     instruction) and the current record still owes more than one issue
//     group of non-memory instructions. Retire/issue evolve arithmetically
//     and no memory access can be attempted for (gapLeft-1)/IssueWidth
//     cycles.
//
//rhlint:hotpath
func (c *Core) BulkWindow() (n int64, gapRun bool) {
	if c.inFlite == len(c.done) && !c.done[c.slot(c.seqHead)] {
		return 1 << 62, false
	}
	if c.outstanding == 0 && c.recLoaded && c.gapLeft > c.cfg.IssueWidth {
		return int64((c.gapLeft - 1) / c.cfg.IssueWidth), true
	}
	return 0, false
}

// AdvanceIdle advances a blocked core (window full, head incomplete) by n
// cycles: pure stall time.
//
//rhlint:hotpath
func (c *Core) AdvanceIdle(n int64) {
	c.Cycles += n
	c.stalled += n
}

// AdvanceGap replays n cycles of a gap run (BulkWindow gapRun=true, n no
// larger than its window) without touching the done ring per cycle. With
// every in-flight slot complete, one cycle retires r=min(I,inFlite) and
// issues a=min(I, W-inFlite+r) immediately-done gap instructions; the
// state reaches a fixed point (r==a) after at most one transient cycle,
// so the remainder is a multiplication. The done ring is rebuilt at the
// end: exactly the surviving in-flight span is complete.
//
//rhlint:hotpath
func (c *Core) AdvanceGap(n int64) {
	c.Cycles += n
	iw := int64(c.cfg.IssueWidth)
	w := int64(len(c.done))
	f := int64(c.inFlite)
	var retired, issued int64
	for n > 0 {
		r := iw
		if f < r {
			r = f
		}
		f -= r
		a := iw
		if w-f < a {
			a = w - f
		}
		f += a
		retired += r
		issued += a
		n--
		if r == a { // fixed point: every further cycle is identical
			retired += r * n
			issued += a * n
			n = 0
		}
	}
	c.Retired += retired
	c.seqHead += retired
	c.gapLeft -= int(issued)
	c.inFlite = int(f)
	for i := range c.done {
		c.done[i] = false
	}
	for s := int64(0); s < f; s++ {
		c.done[c.slot(c.seqHead+s)] = true
	}
}
