// Package store is the content-addressed experiment result store: every
// entry is a canonical Result keyed by the SHA-256 of its spec's
// canonical encoding (core.ExperimentSpec.SpecHash). Whole-grid results
// file under the shard-stripped spec's hash; per-shard results file
// under the sharded spec's hash, which gives resume for free — a
// partially-complete grid reuses the shard entries that exist and only
// recomputes the missing ones (see Runner).
//
// The on-disk layout under the root is one directory per entry:
//
//	objects/<hh>/<hash>/spec.json    canonical spec bytes (hash preimage)
//	objects/<hh>/<hash>/result.json  canonical result bytes
//	objects/<hh>/<hash>/digest       "sha256:<hex of result.json>\n"
//	tmp/                             staging for atomic writes
//
// where <hh> is the first two hex digits of <hash>. Writes stage the
// whole entry in tmp/ and rename the directory into place, so readers
// never observe a partial entry and concurrent writers of the same key
// are safe (determinism makes their contents identical; the loser of the
// rename race discards its copy). Reads verify integrity end to end —
// the directory name must equal the recomputed hash of spec.json, the
// digest must match result.json, and the result's embedded spec must be
// the keyed spec — and any mismatch degrades to a cache miss (the
// corrupt entry is quarantined by removal), never to serving bad bytes.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
)

// Store is a content-addressed result store rooted at one directory.
// The zero value is unusable; call Open. All methods are safe for
// concurrent use by multiple goroutines and multiple processes sharing
// the root.
type Store struct {
	root string
}

// Open initializes (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty root directory")
	}
	s := &Store{root: dir}
	for _, sub := range []string{s.objectsDir(), s.tmpDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) objectsDir() string { return filepath.Join(s.root, "objects") }
func (s *Store) tmpDir() string     { return filepath.Join(s.root, "tmp") }

// entryDir maps a hash to its entry directory.
func (s *Store) entryDir(hash string) string {
	return filepath.Join(s.objectsDir(), hash[:2], hash)
}

// Key returns the content address a spec files under: the hash of its
// canonical encoding. Unsharded (or shard-normalized 0/1) specs key the
// whole-grid entry; sharded specs key their shard's entry.
func (s *Store) Key(spec core.ExperimentSpec) (string, error) {
	h, err := spec.SpecHash()
	if err != nil {
		return "", fmt.Errorf("store: hash spec: %w", err)
	}
	return h, nil
}

// digestLine renders the result-byte digest file content.
func digestLine(result []byte) string {
	sum := sha256.Sum256(result)
	return "sha256:" + hex.EncodeToString(sum[:]) + "\n"
}

// Put stores a result under its spec's content address, atomically
// (stage in tmp, rename into place). The result's spec must match the
// keying spec — a result can only ever be filed under its own identity.
// Put returns the canonical result bytes stored (or already present:
// losing a concurrent Put race to an identical entry is success).
func (s *Store) Put(spec core.ExperimentSpec, res *core.Result) ([]byte, error) {
	specBytes, err := spec.Encode()
	if err != nil {
		return nil, fmt.Errorf("store: encode spec: %w", err)
	}
	resSpecBytes, err := res.Spec.Encode()
	if err != nil {
		return nil, fmt.Errorf("store: encode result spec: %w", err)
	}
	if !bytes.Equal(specBytes, resSpecBytes) {
		return nil, fmt.Errorf("store: result's spec does not match the keying spec")
	}
	resultBytes, err := res.Encode()
	if err != nil {
		return nil, fmt.Errorf("store: encode result: %w", err)
	}
	hash, err := s.Key(spec)
	if err != nil {
		return nil, err
	}

	stage, err := os.MkdirTemp(s.tmpDir(), "put-")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer os.RemoveAll(stage)
	files := []struct {
		name string
		data []byte
	}{
		{"spec.json", specBytes},
		{"result.json", resultBytes},
		{"digest", []byte(digestLine(resultBytes))},
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(stage, f.name), f.data, 0o644); err != nil {
			return nil, fmt.Errorf("store: stage %s: %w", f.name, err)
		}
	}

	dir := s.entryDir(hash)
	if err := os.MkdirAll(filepath.Dir(dir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(stage, dir); err != nil {
		// A concurrent Put of the same key won the race: the entry
		// exists, and determinism guarantees identical contents.
		if _, statErr := os.Stat(dir); statErr == nil {
			return resultBytes, nil
		}
		return nil, fmt.Errorf("store: commit entry: %w", err)
	}
	return resultBytes, nil
}

// Get loads and verifies the entry for a spec. It returns the decoded
// result plus the exact canonical bytes on disk, or ok=false on a miss.
// Every integrity failure — truncated files, digest mismatch, an entry
// whose spec hash or contents disagree with the key — is a miss, and the
// offending entry is removed so the next Put can heal it.
func (s *Store) Get(spec core.ExperimentSpec) (*core.Result, []byte, bool) {
	hash, err := s.Key(spec)
	if err != nil {
		return nil, nil, false
	}
	res, raw, ok := s.load(hash)
	if !ok {
		return nil, nil, false
	}
	// The keyed spec must be the stored one (hash preimage check makes
	// this a pure belt-and-braces collision guard).
	wantSpec, err := spec.Encode()
	if err != nil {
		return nil, nil, false
	}
	gotSpec, err := res.Spec.Encode()
	if err != nil || !bytes.Equal(wantSpec, gotSpec) {
		s.quarantine(hash)
		return nil, nil, false
	}
	return res, raw, true
}

// GetByHash loads and verifies an entry by its content address alone
// (the service's GET /v1/experiments/{hash} path, where no spec is in
// hand). Verification is identical to Get minus the key-equality check,
// which the hash preimage already implies.
func (s *Store) GetByHash(hash string) (*core.Result, []byte, bool) {
	if !validHash(hash) {
		return nil, nil, false
	}
	return s.load(hash)
}

// Has reports whether a verified entry exists for the spec.
func (s *Store) Has(spec core.ExperimentSpec) bool {
	_, _, ok := s.Get(spec)
	return ok
}

// load reads and verifies one entry directory.
func (s *Store) load(hash string) (*core.Result, []byte, bool) {
	dir := s.entryDir(hash)
	specBytes, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		if _, statErr := os.Stat(dir); statErr == nil {
			s.quarantine(hash) // torn entry: directory without its spec
		}
		return nil, nil, false
	}
	resultBytes, err := os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		s.quarantine(hash)
		return nil, nil, false
	}
	digest, err := os.ReadFile(filepath.Join(dir, "digest"))
	if err != nil {
		s.quarantine(hash)
		return nil, nil, false
	}

	// 1. The directory name must be the hash of the stored spec bytes.
	sum := sha256.Sum256(specBytes)
	if hex.EncodeToString(sum[:]) != hash {
		s.quarantine(hash)
		return nil, nil, false
	}
	// 2. The result bytes must match their recorded digest (catches
	// truncation and bit rot).
	if string(digest) != digestLine(resultBytes) {
		s.quarantine(hash)
		return nil, nil, false
	}
	// 3. The result must decode, and its embedded spec must re-encode to
	// the stored (hash-verified) spec bytes.
	res, err := core.DecodeResult(resultBytes)
	if err != nil {
		s.quarantine(hash)
		return nil, nil, false
	}
	resSpec, err := res.Spec.Encode()
	if err != nil || !bytes.Equal(resSpec, specBytes) {
		s.quarantine(hash)
		return nil, nil, false
	}
	return res, resultBytes, true
}

// quarantine removes a corrupt entry so it cannot be served again and a
// future Put can replace it. Removal failures are ignored: the entry
// already failed verification, so it will never be served either way.
func (s *Store) quarantine(hash string) {
	os.RemoveAll(s.entryDir(hash))
}

// validHash accepts exactly lowercase-hex SHA-256 strings, keeping
// attacker-supplied hashes (URL path segments) from escaping objects/.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Entry describes one stored object for listings and GC.
type Entry struct {
	Hash    string
	Name    string // experiment name from the stored spec
	Shard   core.Shard
	Bytes   int64     // size of result.json
	ModTime time.Time // of result.json
}

// List enumerates verified entries in hash order. Corrupt entries are
// skipped (and quarantined), not reported.
func (s *Store) List() ([]Entry, error) {
	hashes, err := s.hashes()
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, h := range hashes {
		res, raw, ok := s.load(h)
		if !ok {
			continue
		}
		info, err := os.Stat(filepath.Join(s.entryDir(h), "result.json"))
		if err != nil {
			continue
		}
		out = append(out, Entry{
			Hash:    h,
			Name:    res.Spec.Name,
			Shard:   res.Spec.Shard,
			Bytes:   int64(len(raw)),
			ModTime: info.ModTime(),
		})
	}
	return out, nil
}

// hashes lists every entry directory name under objects/, sorted (the
// two-level fan-out reads in lexical order).
func (s *Store) hashes() ([]string, error) {
	prefixes, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, p := range prefixes {
		if !p.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.objectsDir(), p.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() && validHash(e.Name()) && strings.HasPrefix(e.Name(), p.Name()) {
				out = append(out, e.Name())
			}
		}
	}
	return out, nil
}

// GC removes entries that fail verification and, when maxAge > 0,
// verified entries whose result is older than maxAge. It returns how
// many entries were removed. Leftover staging directories older than an
// hour are swept too (a crashed Put's debris).
func (s *Store) GC(maxAge time.Duration) (removed int, err error) {
	hashes, err := s.hashes()
	if err != nil {
		return 0, err
	}
	now := time.Now()
	for _, h := range hashes {
		if _, _, ok := s.load(h); !ok {
			removed++ // load already quarantined it
			continue
		}
		if maxAge <= 0 {
			continue
		}
		info, statErr := os.Stat(filepath.Join(s.entryDir(h), "result.json"))
		if statErr != nil {
			continue
		}
		if now.Sub(info.ModTime()) > maxAge {
			s.quarantine(h)
			removed++
		}
	}
	if stale, readErr := os.ReadDir(s.tmpDir()); readErr == nil {
		for _, e := range stale {
			p := filepath.Join(s.tmpDir(), e.Name())
			if info, infoErr := e.Info(); infoErr == nil && now.Sub(info.ModTime()) > time.Hour {
				os.RemoveAll(p)
			}
		}
	}
	return removed, nil
}
