package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
)

// tinySpec is a fast fig5 grid used throughout: 2 chips x tiny scale.
func tinySpec(t *testing.T) core.ExperimentSpec {
	t.Helper()
	spec, err := core.NewSpec("fig5", 7, core.CharParams{Scale: "tiny", Chips: 2, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runSpec(t *testing.T, spec core.ExperimentSpec) *core.Result {
	t.Helper()
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openStore(t)
	spec := tinySpec(t)
	if s.Has(spec) {
		t.Fatal("Has on empty store")
	}
	res := runSpec(t, spec)
	put, err := s.Put(spec, res)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(put, want) {
		t.Fatal("Put returned different bytes than the result encodes to")
	}
	got, raw, ok := s.Get(spec)
	if !ok {
		t.Fatal("Get miss after Put")
	}
	if !bytes.Equal(raw, want) {
		t.Fatal("Get bytes differ from the stored encoding")
	}
	if !got.Complete() || len(got.Cells) != len(res.Cells) {
		t.Fatalf("decoded result has %d cells, want %d", len(got.Cells), len(res.Cells))
	}
	if !s.Has(spec) {
		t.Fatal("Has false after Put")
	}

	// GetByHash reaches the same entry.
	hash, err := s.Key(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, byHash, ok := s.GetByHash(hash)
	if !ok || !bytes.Equal(byHash, want) {
		t.Fatal("GetByHash mismatch")
	}
	if _, _, ok := s.GetByHash("no-such"); ok {
		t.Fatal("GetByHash hit on invalid hash")
	}
}

func TestPutRejectsMismatchedSpec(t *testing.T) {
	s := openStore(t)
	spec := tinySpec(t)
	res := runSpec(t, spec)
	other := spec
	other.Seed = 99
	if _, err := s.Put(other, res); err == nil {
		t.Fatal("Put filed a result under a different spec's key")
	}
}

// corrupt applies fn to the entry files of spec, returning the entry dir.
func corrupt(t *testing.T, s *Store, spec core.ExperimentSpec, fn func(dir string)) {
	t.Helper()
	hash, err := s.Key(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := s.entryDir(hash)
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("entry missing before corruption: %v", err)
	}
	fn(dir)
}

// TestCorruptionDegradesToMiss is the satellite's core guarantee: every
// corruption mode is a cache miss that heals on the next Put — never
// served bytes.
func TestCorruptionDegradesToMiss(t *testing.T) {
	spec := tinySpec(t)
	res := runSpec(t, spec)
	cases := []struct {
		name string
		fn   func(dir string)
	}{
		{"truncated result", func(dir string) {
			p := filepath.Join(dir, "result.json")
			data, _ := os.ReadFile(p)
			os.WriteFile(p, data[:len(data)/2], 0o644)
		}},
		{"flipped result byte", func(dir string) {
			p := filepath.Join(dir, "result.json")
			data, _ := os.ReadFile(p)
			data[len(data)/3] ^= 0x40
			os.WriteFile(p, data, 0o644)
		}},
		{"digest mismatch", func(dir string) {
			os.WriteFile(filepath.Join(dir, "digest"), []byte("sha256:deadbeef\n"), 0o644)
		}},
		{"spec tampered (hash mismatch)", func(dir string) {
			p := filepath.Join(dir, "spec.json")
			data, _ := os.ReadFile(p)
			os.WriteFile(p, bytes.Replace(data, []byte(`"seed": 7`), []byte(`"seed": 8`), 1), 0o644)
		}},
		{"missing result file", func(dir string) {
			os.Remove(filepath.Join(dir, "result.json"))
		}},
		{"missing spec file", func(dir string) {
			os.Remove(filepath.Join(dir, "spec.json"))
		}},
		{"missing digest", func(dir string) {
			os.Remove(filepath.Join(dir, "digest"))
		}},
		{"garbage result json", func(dir string) {
			raw := []byte("{ not json")
			os.WriteFile(filepath.Join(dir, "result.json"), raw, 0o644)
			os.WriteFile(filepath.Join(dir, "digest"), []byte(digestLine(raw)), 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openStore(t)
			if _, err := s.Put(spec, res); err != nil {
				t.Fatal(err)
			}
			corrupt(t, s, spec, tc.fn)
			if _, _, ok := s.Get(spec); ok {
				t.Fatal("Get served a corrupt entry")
			}
			if s.Has(spec) {
				t.Fatal("Has true on corrupt entry")
			}
			// The corrupt entry was quarantined: a fresh Put must heal it
			// and serve good bytes again.
			want, err := s.Put(spec, res)
			if err != nil {
				t.Fatalf("healing Put: %v", err)
			}
			_, raw, ok := s.Get(spec)
			if !ok || !bytes.Equal(raw, want) {
				t.Fatal("store did not heal after corruption + rePut")
			}
		})
	}
}

// TestConcurrentPutSameKey races many goroutines writing the same entry
// (run under -race in CI): every Put must succeed and the surviving
// entry must verify and serve the canonical bytes.
func TestConcurrentPutSameKey(t *testing.T) {
	s := openStore(t)
	spec := tinySpec(t)
	res := runSpec(t, spec)
	want, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Put(spec, res)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	_, raw, ok := s.Get(spec)
	if !ok || !bytes.Equal(raw, want) {
		t.Fatal("entry does not verify after concurrent Puts")
	}
	// No staging debris left behind.
	stale, err := os.ReadDir(s.tmpDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) != 0 {
		t.Fatalf("%d staging dirs left in tmp/", len(stale))
	}
}

func TestGCRemovesCorruptAndKeepsGood(t *testing.T) {
	s := openStore(t)
	spec := tinySpec(t)
	res := runSpec(t, spec)
	if _, err := s.Put(spec, res); err != nil {
		t.Fatal(err)
	}
	// A second, corrupt entry under a different key.
	spec2 := spec
	spec2.Seed = 8
	res2 := runSpec(t, spec2)
	if _, err := s.Put(spec2, res2); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, spec2, func(dir string) {
		os.WriteFile(filepath.Join(dir, "digest"), []byte("sha256:00\n"), 0o644)
	})
	removed, err := s.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("GC removed %d entries, want 1", removed)
	}
	if !s.Has(spec) {
		t.Fatal("GC removed a good entry")
	}
	if s.Has(spec2) {
		t.Fatal("GC kept a corrupt entry")
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "fig5" {
		t.Fatalf("List = %+v, want the one good fig5 entry", entries)
	}
}

// TestRunnerResume is the PR's acceptance criterion: a partially-cached
// sharded grid recomputes only the missing shards, and the merged result
// is byte-identical to an uncached run.
func TestRunnerResume(t *testing.T) {
	spec := tinySpec(t)

	// Reference: uncached whole-grid run.
	uncached := runSpec(t, spec)
	wantBytes, err := uncached.Encode()
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	s := openStore(t)

	// Pre-seed shards 0 and 2 (as an interrupted earlier run would).
	for _, idx := range []int{0, 2} {
		ss := spec
		ss.Shard = core.Shard{Index: idx, Count: shards}
		if _, err := s.Put(ss, runSpec(t, ss)); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	var events []Event
	r := &Runner{
		Store:  s,
		Shards: shards,
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	res, raw, hit, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("reported a whole-grid cache hit on a partial cache")
	}
	if !bytes.Equal(raw, wantBytes) {
		t.Fatal("resumed merged bytes differ from the uncached run")
	}
	if !res.Complete() {
		t.Fatal("resumed result incomplete")
	}

	// Exactly one shard (index 1) computed; 0 and 2 came from cache.
	counts := map[EventStatus]int{}
	ranShards := map[string]bool{}
	for _, ev := range events {
		counts[ev.Status]++
		if ev.Status == StatusRunning {
			ranShards[ev.Shard.String()] = true
		}
	}
	if counts[StatusCached] != 2 || counts[StatusRunning] != 1 || counts[StatusDone] != 1 || counts[StatusMerged] != 1 {
		t.Fatalf("event counts = %v, want 2 cached / 1 running / 1 done / 1 merged", counts)
	}
	if !ranShards["1/3"] || len(ranShards) != 1 {
		t.Fatalf("computed shards = %v, want exactly 1/3", ranShards)
	}

	// The merge was stored under the whole-grid key: a second Run is a
	// pure hit with identical bytes and no tasks run.
	events = nil
	_, raw2, hit2, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Fatal("second Run was not a whole-grid cache hit")
	}
	if !bytes.Equal(raw2, wantBytes) {
		t.Fatal("cache-hit bytes differ from the uncached run")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, ev := range events {
		if ev.Status == StatusRunning || ev.Status == StatusDone {
			t.Fatalf("cache hit ran tasks: %+v", ev)
		}
	}
}

// TestRunnerColdSplitMatchesUncached: a cold sharded Runner run (nothing
// cached) still produces the uncached bytes, and populates shard + whole
// entries.
func TestRunnerColdSplitMatchesUncached(t *testing.T) {
	spec := tinySpec(t)
	want, err := runSpec(t, spec).Encode()
	if err != nil {
		t.Fatal(err)
	}
	s := openStore(t)
	r := &Runner{Store: s, Shards: 3, Gate: make(chan struct{}, 2)}
	_, raw, hit, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit || !bytes.Equal(raw, want) {
		t.Fatalf("cold split run: hit=%v, bytes equal=%v", hit, bytes.Equal(raw, want))
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // 3 shards + merged whole
		t.Fatalf("store holds %d entries after cold split run, want 4", len(entries))
	}
}

// TestRunnerNoCacheRecomputesButRefreshes: NoCache bypasses reads (even
// on a warm store) and still writes results back.
func TestRunnerNoCacheRecomputesButRefreshes(t *testing.T) {
	spec := tinySpec(t)
	s := openStore(t)
	var events []Event
	r := &Runner{Store: s, OnEvent: func(ev Event) { events = append(events, ev) }}
	if _, _, _, err := r.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	r.NoCache = true
	events = nil
	_, _, hit, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("NoCache run reported a cache hit")
	}
	ran := false
	for _, ev := range events {
		if ev.Status == StatusRunning {
			ran = true
		}
	}
	if !ran {
		t.Fatal("NoCache run did not recompute")
	}
	if !s.Has(spec) {
		t.Fatal("NoCache run did not refresh the store")
	}
}

// TestRunnerShardedSpecUnit: an explicitly sharded spec caches under its
// own sharded key and round-trips bytes.
func TestRunnerShardedSpecUnit(t *testing.T) {
	spec := tinySpec(t)
	spec.Shard = core.Shard{Index: 1, Count: 2}
	want, err := runSpec(t, spec).Encode()
	if err != nil {
		t.Fatal(err)
	}
	s := openStore(t)
	r := &Runner{Store: s}
	_, raw, hit, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit || !bytes.Equal(raw, want) {
		t.Fatal("sharded unit cold run mismatch")
	}
	_, raw2, hit2, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 || !bytes.Equal(raw2, want) {
		t.Fatal("sharded unit warm run was not a byte-identical hit")
	}
	// The whole-grid key is untouched.
	if s.Has(spec.WithoutShard()) {
		t.Fatal("sharded unit polluted the whole-grid key")
	}
}

// TestRunnerCancellation: canceling the context aborts a sharded run
// promptly with the context error.
func TestRunnerCancellation(t *testing.T) {
	spec := tinySpec(t)
	s := openStore(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Store: s, Shards: 2}
	_, _, _, err := r.Run(ctx, spec)
	if err == nil {
		t.Fatal("canceled run succeeded")
	}
	if ctx.Err() == nil {
		t.Fatal("context not canceled?")
	}
}
