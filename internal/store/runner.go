// The cached experiment runner: the one execution path the CLI and the
// HTTP service share. It answers whole-grid requests from the store when
// possible, otherwise splits the grid into shard entries, reuses every
// shard already stored (resume), recomputes only the missing ones, and
// merges byte-identically — so a request's result bytes are the same
// whether they came from a cold run, a warm cache, or any mix.
package store

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// EventStatus labels one step of a cached run's progress.
type EventStatus string

const (
	// StatusCached: the unit was served from the store without running.
	StatusCached EventStatus = "cached"
	// StatusRunning: the unit's tasks are executing.
	StatusRunning EventStatus = "running"
	// StatusDone: the unit finished computing (and was stored).
	StatusDone EventStatus = "done"
	// StatusMerged: all shards are in and the merged whole-grid result
	// was stored.
	StatusMerged EventStatus = "merged"
)

// Event reports per-shard progress of one Runner.Run.
type Event struct {
	Shard  core.Shard  `json:"shard"`
	Status EventStatus `json:"status"`
	// Cells/Tasks: cells this unit holds vs the full grid's task count
	// (known once the unit has run or was loaded; zero before).
	Cells int `json:"cells"`
	Tasks int `json:"tasks"`
}

// Runner executes specs through the store. The zero value (no store)
// runs uncached. A Runner is safe for concurrent Run calls; they share
// the Gate.
type Runner struct {
	// Store caches results; nil disables caching entirely.
	Store *Store
	// Exec bounds each shard run's internal task parallelism.
	Exec core.Exec
	// Shards splits whole-grid specs into this many cacheable shard
	// units (<= 1: run the grid as one unit). Specs that arrive already
	// sharded are always a single unit.
	Shards int
	// NoCache bypasses store reads — everything recomputes — but fresh
	// results are still written back, so -no-cache doubles as a cache
	// refresh.
	NoCache bool
	// Gate, when non-nil, bounds concurrent shard executions across all
	// Run calls sharing it (the service's worker pool): a shard run
	// holds one slot. Cache reads and merges don't take slots.
	Gate chan struct{}
	// OnEvent, when non-nil, observes per-shard progress. It may be
	// called from multiple goroutines when shards run concurrently.
	OnEvent func(Event)
}

// Run executes the spec with caching and resume. It returns the result,
// its exact canonical bytes, and whether the whole request was answered
// from the store without computing anything. A spec that arrives already
// sharded is one cacheable unit (RunSharded); a whole-grid spec may be
// split into Shards units for resumable caching.
func (r *Runner) Run(ctx context.Context, spec core.ExperimentSpec) (*core.Result, []byte, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, false, err
	}
	if spec.Shard.Count > 1 {
		return r.RunSharded(ctx, spec)
	}
	return r.run(ctx, spec.WithoutShard())
}

func (r *Runner) emit(ev Event) {
	if r.OnEvent != nil {
		r.OnEvent(ev)
	}
}

// acquire takes a worker slot (or returns ctx's error).
func (r *Runner) acquire(ctx context.Context) error {
	if r.Gate == nil {
		return nil
	}
	select {
	case r.Gate <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Runner) release() {
	if r.Gate != nil {
		<-r.Gate
	}
}

// run handles a request spec. RunSharded handles explicit shard specs.
func (r *Runner) run(ctx context.Context, whole core.ExperimentSpec) (*core.Result, []byte, bool, error) {
	// Whole-grid store hit: answer instantly.
	if r.Store != nil && !r.NoCache {
		if res, raw, ok := r.Store.Get(whole); ok {
			r.emit(Event{Shard: core.Shard{Index: 0, Count: 1}, Status: StatusCached,
				Cells: len(res.Cells), Tasks: res.Tasks})
			return res, raw, true, nil
		}
	}

	n := r.Shards
	if n <= 1 || r.Store == nil {
		// One unit: run the whole grid directly.
		res, raw, err := r.runUnit(ctx, whole)
		if err != nil {
			return nil, nil, false, err
		}
		return res, raw, false, nil
	}

	// Sharded: reuse stored shard entries, compute the missing ones
	// concurrently (each holding one Gate slot), then merge.
	parts := make([]*core.Result, n)
	errs := make([]error, n)
	done := make(chan int, n)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			shardSpec := whole
			shardSpec.Shard = core.Shard{Index: i, Count: n}
			parts[i], _, errs[i] = r.runShard(runCtx, shardSpec)
		}(i)
	}
	for range parts {
		<-done
	}
	// Report the lowest-index failure, deterministically.
	for _, err := range errs {
		if err != nil {
			return nil, nil, false, err
		}
	}

	merged, err := core.MergeResults(parts...)
	if err != nil {
		return nil, nil, false, err
	}
	if !merged.Complete() {
		return nil, nil, false, fmt.Errorf("store: merged result covers %d/%d tasks", len(merged.Cells), merged.Tasks)
	}
	raw, err := r.put(whole, merged)
	if err != nil {
		return nil, nil, false, err
	}
	r.emit(Event{Shard: core.Shard{Index: 0, Count: 1}, Status: StatusMerged,
		Cells: len(merged.Cells), Tasks: merged.Tasks})
	return merged, raw, false, nil
}

// RunSharded executes one explicitly sharded spec as a single cacheable
// unit keyed by the sharded spec (the `rhx run -shard i/n -store` path);
// an unsharded spec is simply its whole-grid unit. Unlike Run, the grid
// is never split further.
func (r *Runner) RunSharded(ctx context.Context, spec core.ExperimentSpec) (*core.Result, []byte, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, false, err
	}
	if r.Store != nil && !r.NoCache {
		if res, raw, ok := r.Store.Get(spec); ok {
			r.emit(Event{Shard: spec.Shard, Status: StatusCached, Cells: len(res.Cells), Tasks: res.Tasks})
			return res, raw, true, nil
		}
	}
	res, raw, err := r.runUnit(ctx, spec)
	if err != nil {
		return nil, nil, false, err
	}
	return res, raw, false, nil
}

// runShard serves one shard of a split grid: from the store if present,
// else by computing and storing it.
func (r *Runner) runShard(ctx context.Context, spec core.ExperimentSpec) (*core.Result, []byte, error) {
	if !r.NoCache {
		if res, raw, ok := r.Store.Get(spec); ok {
			r.emit(Event{Shard: spec.Shard, Status: StatusCached, Cells: len(res.Cells), Tasks: res.Tasks})
			return res, raw, nil
		}
	}
	return r.runUnit(ctx, spec)
}

// runUnit computes one spec (whole grid or one shard) under a Gate slot
// and writes it back to the store.
func (r *Runner) runUnit(ctx context.Context, spec core.ExperimentSpec) (*core.Result, []byte, error) {
	if err := r.acquire(ctx); err != nil {
		return nil, nil, err
	}
	defer r.release()
	r.emit(Event{Shard: spec.Shard, Status: StatusRunning})
	res, err := core.RunContext(ctx, spec, r.Exec)
	if err != nil {
		return nil, nil, err
	}
	raw, err := r.put(spec, res)
	if err != nil {
		return nil, nil, err
	}
	r.emit(Event{Shard: spec.Shard, Status: StatusDone, Cells: len(res.Cells), Tasks: res.Tasks})
	return res, raw, nil
}

// put writes a result to the store (or just encodes it when no store).
func (r *Runner) put(spec core.ExperimentSpec, res *core.Result) ([]byte, error) {
	if r.Store == nil {
		return res.Encode()
	}
	return r.Store.Put(spec, res)
}
