//go:build !race

// The race detector instruments allocations, so the zero-alloc gate only
// runs in the regular test pass (CI runs both).

package sim

import (
	"testing"

	"repro/internal/trace"
)

// TestEventBulkSkipZeroAlloc is the allocation-regression gate of the
// event engine's bulk-skip path, the companion of the controller's
// TestSaturatedTickZeroAlloc: on a pure-gap workload the loop settles
// into AdvanceGap/AdvanceIdle jumps punctuated by exact ticks at REF
// deadlines, and apart from the one gapRun buffer everything after
// newSystem must stay off the heap. The gate compares total allocations
// of a short and a 4x-longer run of the same configuration: setup cost
// is identical, so any difference is the loop allocating per cycle (or
// per skip), which is exactly the regression the event engine exists to
// avoid.
func TestEventBulkSkipZeroAlloc(t *testing.T) {
	// One record whose gap is never exhausted within MaxCPUCycles: the
	// core stays in an arithmetic gap run for the whole simulation, the
	// LLC is never touched, and the controller only ever services
	// refresh deadlines.
	mix := trace.Mix{Name: "pure-gap", Traces: []*trace.Trace{{
		Name:    "gap",
		Records: []trace.Record{{Gap: 1 << 30, Addr: 0}},
	}}}

	run := func(maxCycles int64) func() {
		cfg := Table6Config(0, 1<<40)
		cfg.MaxCPUCycles = maxCycles
		cfg.Engine = EngineEvent
		return func() {
			s, err := newSystem(cfg, mix)
			if err != nil {
				t.Fatal(err)
			}
			s.runEvent()
			if s.cpuCycle != maxCycles {
				t.Fatalf("run ended at cycle %d, want %d", s.cpuCycle, maxCycles)
			}
		}
	}

	const base = 100_000
	short := testing.AllocsPerRun(10, run(base))
	long := testing.AllocsPerRun(10, run(4*base))
	if long-short > 0.5 {
		t.Fatalf("event engine allocated in the bulk-skip loop: %.1f allocs at %d cycles vs %.1f at %d",
			long, 4*base, short, base)
	}
}
