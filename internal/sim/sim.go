// Package sim wires the full simulated system of Table 6 — trace-driven
// cores, shared LLC, FR-FCFS memory controller, cycle-accurate DDR4
// channel, and a RowHammer mitigation mechanism — and measures the two
// metrics of Section 6.2.1: normalized weighted speedup and DRAM
// bandwidth overhead.
//
// Two execution engines drive the same component graph. EngineCycle is
// the original loop: one CPU cycle per iteration, the reference
// semantics. EngineEvent (the default) advances time to the next
// scheduled wakeup — an LLC fill, a controller command or REF deadline, a
// core leaving a bulk-replayable state — while preserving the exact
// CPU/mem clock-ratio phase, so every DRAM command lands on the identical
// cycle and all results are byte-identical to the cycle engine (enforced
// by the differential tests in this package).
package sim

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/trace"
)

// Engine selects the simulation driver.
type Engine int

const (
	// EngineDefault resolves to EngineEvent unless the RH_ENGINE
	// environment variable is "cycle" (the escape hatch back to the
	// reference loop).
	EngineDefault Engine = iota
	// EngineEvent skips idle time: identical results, less wall-clock.
	EngineEvent
	// EngineCycle is the original cycle-by-cycle loop, kept as the
	// differential-testing oracle.
	EngineCycle
)

// String names the engine (resolved form).
func (e Engine) String() string {
	if e.resolve() == EngineCycle {
		return "cycle"
	}
	return "event"
}

var envEngine = sync.OnceValue(func() Engine {
	if os.Getenv("RH_ENGINE") == "cycle" {
		return EngineCycle
	}
	return EngineEvent
})

func (e Engine) resolve() Engine {
	if e == EngineDefault {
		return envEngine()
	}
	return e
}

// Config describes one simulation run.
type Config struct {
	CPUFreqMHz int // Table 6: 4000
	MemFreqMHz int // DDR4-2400: 1200 (command clock)

	Core cpu.Config
	LLC  cache.Config
	Ctrl memctrl.Config
	Geo  dram.Geometry
	T    dram.Timing

	// WarmupInsts / MeasureInsts per core. Warmup fills caches before
	// statistics reset (the paper warms 100M and measures 200M; scale
	// down proportionally for tractable runs).
	WarmupInsts  int64
	MeasureInsts int64

	// MaxCPUCycles bounds runaway runs (0 = derived from MeasureInsts).
	// Attack evaluations use it as the primary termination: with a huge
	// MeasureInsts the run lasts exactly this many CPU cycles.
	MaxCPUCycles int64

	// Engine selects the simulation driver; the zero value follows the
	// RH_ENGINE environment variable and defaults to the event engine.
	Engine Engine

	Mechanism mitigation.Mechanism

	// Observer, when non-nil, receives the controller's full DRAM command
	// stream (every ACT including mitigation refreshes, and the rows each
	// auto-refresh rotation covers). The attack subsystem couples the
	// fault model to the simulation through this hook.
	Observer CommandObserver
}

// CommandObserver watches the DRAM command stream of a simulation run.
type CommandObserver interface {
	OnACT(rank, bank, row int, cycle int64)
	OnRefresh(rank, bank, rowStart, rowCount int, cycle int64)
}

// Table6Config returns the paper's system configuration with the given
// per-core instruction budget.
func Table6Config(warmup, measure int64) Config {
	geo := dram.Table6Geometry()
	return Config{
		CPUFreqMHz:   4000,
		MemFreqMHz:   1200,
		Core:         cpu.Table6Config(),
		LLC:          cache.Table6Config(),
		Ctrl:         memctrl.Table6Config(),
		Geo:          geo,
		T:            dram.DDR4_2400(geo.Rows),
		WarmupInsts:  warmup,
		MeasureInsts: measure,
	}
}

// MitigationParams derives the mechanism parameter block from a system
// configuration and a target HCfirst.
func (c Config) MitigationParams(hcFirst int, seed uint64) mitigation.Params {
	return mitigation.Params{
		HCFirst: hcFirst,
		Rows:    c.Geo.Rows,
		Banks:   c.Geo.Banks(),
		TRC:     int64(c.T.RC),
		TREFI:   int64(c.T.REFI),
		TREFW:   c.T.REFW,
		Seed:    seed,
	}
}

// Result reports one run.
type Result struct {
	Mechanism string
	CPUCycles int64
	MemCycles int64

	IPC     []float64 // per core, measured window
	Retired []int64

	MPKI float64 // aggregate LLC misses per kilo-instruction

	Ctrl memctrl.Stats
	Chan dram.ChannelStats
	LLC  cache.Stats

	// BandwidthOverheadPct is Figure 10a's metric: the share of total
	// DRAM bank-time consumed by the mitigation mechanism (targeted
	// refreshes plus refresh commands beyond the nominal tREFI pace), as
	// a percentage. Refresh-storm configurations can exceed 100% on a
	// demanded-time basis.
	BandwidthOverheadPct float64
}

// TotalIPC sums per-core IPCs.
func (r Result) TotalIPC() float64 {
	s := 0.0
	for _, v := range r.IPC {
		s += v
	}
	return s
}

// system is the assembled component graph plus the loop state both
// engines share. Either engine leaves cpuCycle/measStartCycle with the
// reference-loop values, so result() is engine-agnostic.
type system struct {
	cfg   Config
	ch    *dram.Channel
	ctrl  *memctrl.Controller
	llc   *cache.Cache
	cores []*cpu.Core
	mech  mitigation.Mechanism

	maxCycles  int64
	cpuF, memF int64

	cpuCycle       int64
	memAcc         int64
	warmedUp       bool
	measStartCycle int64

	// laggard memoizes a core known to be short of the current
	// retirement target, so the per-cycle allRetired probe is O(1) until
	// that core crosses.
	laggard int
}

func newSystem(cfg Config, mix trace.Mix) (*system, error) {
	if len(mix.Traces) == 0 {
		return nil, errors.New("sim: empty mix")
	}
	if cfg.MeasureInsts <= 0 {
		return nil, errors.New("sim: MeasureInsts must be positive")
	}
	if cfg.CPUFreqMHz <= 0 || cfg.MemFreqMHz <= 0 || cfg.MemFreqMHz > cfg.CPUFreqMHz {
		return nil, fmt.Errorf("sim: bad clocks %d/%d MHz", cfg.CPUFreqMHz, cfg.MemFreqMHz)
	}

	ch, err := dram.NewChannel(cfg.Geo, cfg.T)
	if err != nil {
		return nil, err
	}
	mech := cfg.Mechanism
	if mech == nil {
		mech = mitigation.NewNone()
	}
	ctrl, err := memctrl.New(cfg.Ctrl, ch, mech)
	if err != nil {
		return nil, err
	}
	if cfg.Observer != nil {
		ctrl.OnACT(cfg.Observer.OnACT)
		ctrl.OnRefresh(cfg.Observer.OnRefresh)
	}
	llc, err := cache.New(cfg.LLC, ctrl, len(mix.Traces))
	if err != nil {
		return nil, err
	}
	cores := make([]*cpu.Core, len(mix.Traces))
	for i, tr := range mix.Traces {
		cores[i], err = cpu.New(i, cfg.Core, tr, llc)
		if err != nil {
			return nil, err
		}
	}

	maxCycles := cfg.MaxCPUCycles
	if maxCycles == 0 {
		// Even at 0.5% of peak IPC the run completes.
		maxCycles = (cfg.WarmupInsts + cfg.MeasureInsts) * 800
	}

	return &system{
		cfg:       cfg,
		ch:        ch,
		ctrl:      ctrl,
		llc:       llc,
		cores:     cores,
		mech:      mech,
		maxCycles: maxCycles,
		cpuF:      int64(cfg.CPUFreqMHz),
		memF:      int64(cfg.MemFreqMHz),
		warmedUp:  cfg.WarmupInsts == 0,
	}, nil
}

// allRetired reports whether every core has retired at least n
// instructions, probing the memoized laggard before rescanning.
func (s *system) allRetired(n int64) bool {
	if s.cores[s.laggard].Retired < n {
		return false
	}
	for i, c := range s.cores {
		if c.Retired < n {
			s.laggard = i
			return false
		}
	}
	return true
}

// beginMeasure ends warmup: statistics reset, the measured window starts
// at the current cycle.
func (s *system) beginMeasure() {
	s.warmedUp = true
	for _, c := range s.cores {
		c.ResetStats()
	}
	s.llc.ResetStats()
	s.ctrl.Stats = memctrl.Stats{}
	s.ch.Stats = dram.ChannelStats{}
	s.measStartCycle = s.cpuCycle
}

// runCycle is the reference loop (EngineCycle): one CPU cycle per
// iteration, the differential-testing oracle for the event engine.
func (s *system) runCycle() {
	target := s.cfg.WarmupInsts
	for s.cpuCycle = 0; s.cpuCycle < s.maxCycles; s.cpuCycle++ {
		s.llc.Tick()
		for _, c := range s.cores {
			c.Tick()
		}
		s.memAcc += s.memF
		if s.memAcc >= s.cpuF {
			s.memAcc -= s.cpuF
			s.ctrl.Tick()
		}
		if !s.warmedUp && s.allRetired(target) {
			s.beginMeasure()
		}
		if s.warmedUp && s.allRetired(s.cfg.MeasureInsts) {
			break
		}
	}
}

func (s *system) result() *Result {
	res := &Result{
		Mechanism: s.mech.Name(),
		CPUCycles: s.cpuCycle - s.measStartCycle,
		MemCycles: s.ctrl.Cycle(),
		Ctrl:      s.ctrl.Stats,
		Chan:      s.ch.Stats,
		LLC:       s.llc.Stats,
	}
	var totalInsts int64
	for _, c := range s.cores {
		res.IPC = append(res.IPC, c.IPC())
		res.Retired = append(res.Retired, c.Retired)
		totalInsts += c.Retired
	}
	res.MPKI = s.llc.Stats.MPKI(totalInsts)
	res.BandwidthOverheadPct = bandwidthOverhead(s.cfg, s.mech, s.ctrl.Stats, res.CPUCycles)
	return res
}

// Run simulates the mix on the configuration.
func Run(cfg Config, mix trace.Mix) (*Result, error) {
	s, err := newSystem(cfg, mix)
	if err != nil {
		return nil, err
	}
	if cfg.Engine.resolve() == EngineCycle {
		s.runCycle()
	} else {
		s.runEvent()
	}
	return s.result(), nil
}

// bandwidthOverhead computes Figure 10a's metric on a demanded-time
// basis: mitigation bank-cycles (targeted refreshes plus above-nominal
// refresh time) over the total bank-time of the measured window.
func bandwidthOverhead(cfg Config, mech mitigation.Mechanism, st memctrl.Stats, cpuCycles int64) float64 {
	memCycles := cpuCycles * int64(cfg.MemFreqMHz) / int64(cfg.CPUFreqMHz)
	if memCycles == 0 {
		return 0
	}
	bankTime := float64(memCycles) * float64(cfg.Geo.Banks())

	mit := float64(st.MitigationBusyCycles)

	// Demanded refresh time above the nominal refresh schedule. Using the
	// demanded (not issued) time lets refresh-storm configurations report
	// >100%, like the paper's inverted log axis.
	mult := mech.RefreshMultiplier()
	if mult > 1 {
		nominalREFs := float64(memCycles) / float64(cfg.T.REFI)
		demandedREFs := nominalREFs * mult
		mit += (demandedREFs - nominalREFs) * float64(cfg.T.RFC) * float64(cfg.Geo.Banks())
	}
	return 100 * mit / bankTime
}

// WeightedSpeedup implements the Section 6.2.1 metric: the sum over cores
// of IPC_shared / IPC_alone.
func WeightedSpeedup(shared, alone []float64) (float64, error) {
	if len(shared) != len(alone) {
		return 0, errors.New("sim: mismatched IPC slices")
	}
	ws := 0.0
	for i := range shared {
		if alone[i] <= 0 {
			return 0, fmt.Errorf("sim: core %d alone-IPC is zero", i)
		}
		ws += shared[i] / alone[i]
	}
	return ws, nil
}

// RunAlone measures each trace's single-core IPC on the baseline system
// (no mitigation), the denominator of weighted speedup. The command
// observer is detached along with the mechanism: alone runs exist only to
// normalize IPC, and feeding their ACT/REF streams to a hammer or TRR
// accountant would corrupt its timeline with traffic the shared run never
// issued.
func RunAlone(cfg Config, mix trace.Mix) ([]float64, error) {
	alone := make([]float64, len(mix.Traces))
	cfg.Mechanism = nil
	cfg.Observer = nil
	for i, tr := range mix.Traces {
		res, err := Run(cfg, trace.Mix{Name: mix.Name + "-alone", Traces: []*trace.Trace{tr}})
		if err != nil {
			return nil, err
		}
		alone[i] = res.IPC[0]
	}
	return alone, nil
}
