package sim

import (
	"testing"

	"repro/internal/mitigation"
	"repro/internal/trace"
)

// quickConfig returns a scaled-down Table 6 system for tests.
func quickConfig() Config {
	cfg := Table6Config(2_000, 20_000)
	cfg.LLC.SizeBytes = 1 << 20 // 1 MiB keeps the miss rate realistic at small scale
	return cfg
}

func quickMix(cores int, seed uint64) trace.Mix {
	return trace.Mixes(1, cores, 2_000, seed)[0]
}

func TestBaselineRunCompletes(t *testing.T) {
	cfg := quickConfig()
	mix := quickMix(4, 1)
	res, err := Run(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUCycles <= 0 {
		t.Fatal("no measured cycles")
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > float64(cfg.Core.IssueWidth) {
			t.Errorf("core %d IPC = %v out of (0,%d]", i, ipc, cfg.Core.IssueWidth)
		}
	}
	for i, r := range res.Retired {
		if r < cfg.MeasureInsts {
			t.Errorf("core %d retired %d < target %d", i, r, cfg.MeasureInsts)
		}
	}
	if res.Ctrl.Reads == 0 {
		t.Error("no memory reads reached the controller")
	}
	if res.Ctrl.REFs == 0 {
		t.Error("no refresh commands issued")
	}
	if res.MPKI <= 0 {
		t.Error("zero MPKI on a memory-intensive mix")
	}
}

// memoryIntenseMix builds a mix from the most activation-heavy profiles
// so mitigation overheads rise well above run-to-run noise.
func memoryIntenseMix(seed uint64) trace.Mix {
	var profiles []trace.Profile
	for _, p := range trace.Catalog() {
		switch p.Name {
		case "mcf-like", "graph-walk", "sparse-mv", "hash-join":
			profiles = append(profiles, p)
		}
	}
	m := trace.Mix{Name: "intense"}
	for i, p := range profiles {
		m.Traces = append(m.Traces, p.Generate(2_000, seed+uint64(i)))
	}
	return m
}

func TestMitigationSlowdownOrdering(t *testing.T) {
	cfg := quickConfig()
	mix := memoryIntenseMix(2)

	base, err := Run(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}

	// An aggressive PARA (tiny HCfirst) must slow the system down and
	// consume bandwidth; a mild one (large HCfirst) should be near zero.
	aggressive, err := mitigation.NewPARA(cfg.MitigationParams(128, 1), cfg.T.TCKPS)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := cfg
	cfgA.Mechanism = aggressive
	resA, err := Run(cfgA, mix)
	if err != nil {
		t.Fatal(err)
	}

	mild, err := mitigation.NewPARA(cfg.MitigationParams(100_000, 1), cfg.T.TCKPS)
	if err != nil {
		t.Fatal(err)
	}
	cfgM := cfg
	cfgM.Mechanism = mild
	resM, err := Run(cfgM, mix)
	if err != nil {
		t.Fatal(err)
	}

	if resA.TotalIPC() >= base.TotalIPC() {
		t.Errorf("aggressive PARA IPC %.3f not below baseline %.3f", resA.TotalIPC(), base.TotalIPC())
	}
	if resA.BandwidthOverheadPct <= resM.BandwidthOverheadPct {
		t.Errorf("aggressive PARA overhead %.3f%% not above mild %.3f%%",
			resA.BandwidthOverheadPct, resM.BandwidthOverheadPct)
	}
	if resA.Ctrl.MitigationACTs == 0 {
		t.Error("aggressive PARA issued no mitigation activates")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ws != 1.5 {
		t.Fatalf("ws = %v, want 1.5", ws)
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero alone-IPC accepted")
	}
}

func TestRunAlone(t *testing.T) {
	cfg := quickConfig()
	cfg.WarmupInsts = 1_000
	cfg.MeasureInsts = 5_000
	mix := quickMix(2, 3)
	alone, err := RunAlone(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(alone) != 2 {
		t.Fatalf("got %d alone IPCs, want 2", len(alone))
	}
	for i, ipc := range alone {
		if ipc <= 0 {
			t.Errorf("alone IPC[%d] = %v", i, ipc)
		}
	}
}

// countingObserver records how many DRAM commands it was shown.
type countingObserver struct{ acts, refs int }

func (o *countingObserver) OnACT(rank, bank, row int, cycle int64) { o.acts++ }
func (o *countingObserver) OnRefresh(rank, bank, rowStart, rowCount int, cycle int64) {
	o.refs++
}

// TestRunAloneDetachesObserver guards the alone-run isolation contract:
// normalization runs must not leak their ACT/REF streams into the
// caller's command observer, or a hammer/TRR accountant would count
// traffic the shared run never issued.
func TestRunAloneDetachesObserver(t *testing.T) {
	cfg := quickConfig()
	cfg.WarmupInsts = 500
	cfg.MeasureInsts = 3_000
	obs := &countingObserver{}
	cfg.Observer = obs
	if _, err := RunAlone(cfg, quickMix(2, 3)); err != nil {
		t.Fatal(err)
	}
	if obs.acts != 0 || obs.refs != 0 {
		t.Fatalf("observer saw alone-run traffic: %d ACTs, %d refresh windows", obs.acts, obs.refs)
	}
	// The same config must still drive the observer in a shared run.
	if _, err := Run(cfg, quickMix(2, 3)); err != nil {
		t.Fatal(err)
	}
	if obs.acts == 0 {
		t.Fatal("observer attached to Run saw no ACTs")
	}
}

func TestRequesterStatsReachController(t *testing.T) {
	cfg := quickConfig()
	mix := quickMix(3, 5)
	res, err := Run(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	// Every core's ID must arrive at the controller as a requester with
	// demand reads attributed to it: the cpu→cache→memctrl identity path.
	if len(res.Ctrl.PerRequester) < len(mix.Traces) {
		t.Fatalf("controller saw %d requesters, want ≥%d", len(res.Ctrl.PerRequester), len(mix.Traces))
	}
	var sum int64
	for i := range mix.Traces {
		rs := res.Ctrl.PerRequester[i]
		if rs.Reads == 0 {
			t.Errorf("core %d: no reads attributed", i)
		}
		sum += rs.Reads
	}
	if sum != res.Ctrl.Reads {
		t.Errorf("per-requester reads sum %d != total %d (attribution leak)", sum, res.Ctrl.Reads)
	}
}

func TestBLISSSchedulerRunCompletes(t *testing.T) {
	cfg := quickConfig()
	cfg.Ctrl.BLISS = true
	mix := quickMix(4, 6)
	res, err := Run(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 {
			t.Errorf("core %d starved under BLISS (IPC %v)", i, ipc)
		}
	}
	if res.Ctrl.BLISSBlacklists == 0 {
		t.Error("no blacklisting events on a multi-core memory-intensive mix")
	}
}

func TestIdealMechanismNearZeroOverheadAtHighHCFirst(t *testing.T) {
	cfg := quickConfig()
	mix := quickMix(4, 4)
	ideal, err := mitigation.NewIdeal(cfg.MitigationParams(100_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mechanism = ideal
	res, err := Run(cfg, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthOverheadPct > 0.5 {
		t.Errorf("ideal mechanism at HCfirst=100k has %.3f%% overhead, want ~0", res.BandwidthOverheadPct)
	}
}
