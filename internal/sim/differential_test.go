package sim

import (
	"reflect"
	"testing"

	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/faultmodel"
	"repro/internal/mitigation"
	"repro/internal/trace"
)

// scenario builds one corpus entry fresh for each engine run: mechanisms
// and observers are stateful (RNGs, sampler tables, damage accounting),
// so sharing them across the two runs would confound the comparison.
type scenario func(t *testing.T) (Config, trace.Mix, *attack.Observer)

// runBothEngines executes a scenario under the cycle oracle and the event
// engine and asserts byte-identical results and observer timelines.
func runBothEngines(t *testing.T, mk scenario) {
	t.Helper()
	cfgC, mixC, obsC := mk(t)
	cfgC.Engine = EngineCycle
	resC, err := Run(cfgC, mixC)
	if err != nil {
		t.Fatalf("cycle engine: %v", err)
	}
	cfgE, mixE, obsE := mk(t)
	cfgE.Engine = EngineEvent
	resE, err := Run(cfgE, mixE)
	if err != nil {
		t.Fatalf("event engine: %v", err)
	}
	if !reflect.DeepEqual(resC, resE) {
		t.Errorf("results diverge\n cycle: %+v\n event: %+v", resC, resE)
	}
	if (obsC == nil) != (obsE == nil) {
		t.Fatal("scenario built observer for one engine only")
	}
	if obsC == nil {
		return
	}
	if !reflect.DeepEqual(obsC.Timeline(), obsE.Timeline()) {
		t.Errorf("REF-window timelines diverge\n cycle: %+v\n event: %+v",
			obsC.Timeline(), obsE.Timeline())
	}
	if !reflect.DeepEqual(obsC.Flips(), obsE.Flips()) {
		t.Errorf("flip events diverge\n cycle: %+v\n event: %+v", obsC.Flips(), obsE.Flips())
	}
	if obsC.TotalACTs() != obsE.TotalACTs() || obsC.AggressorACTs() != obsE.AggressorACTs() ||
		obsC.RawFlips() != obsE.RawFlips() || obsC.FirstFlipCycle() != obsE.FirstFlipCycle() {
		t.Errorf("observer counters diverge: cycle (acts %d agg %d raw %d first %d) event (acts %d agg %d raw %d first %d)",
			obsC.TotalACTs(), obsC.AggressorACTs(), obsC.RawFlips(), obsC.FirstFlipCycle(),
			obsE.TotalACTs(), obsE.AggressorACTs(), obsE.RawFlips(), obsE.FirstFlipCycle())
	}
}

// diffConfig is quickConfig shrunk a bit further: the corpus runs every
// scenario twice.
func diffConfig() Config {
	cfg := Table6Config(1_000, 10_000)
	cfg.LLC.SizeBytes = 1 << 20
	return cfg
}

func benignScenario(cores int, seed uint64, mut func(*Config)) scenario {
	return func(t *testing.T) (Config, trace.Mix, *attack.Observer) {
		cfg := diffConfig()
		if mut != nil {
			mut(&cfg)
		}
		return cfg, trace.Mixes(1, cores, 1_500, seed)[0], nil
	}
}

func mechScenario(build func(cfg Config) (mitigation.Mechanism, error)) scenario {
	return func(t *testing.T) (Config, trace.Mix, *attack.Observer) {
		cfg := diffConfig()
		mech, err := build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Mechanism = mech
		return cfg, trace.Mixes(1, 4, 1_500, 7)[0], nil
	}
}

// attackScenario wires a synthesized hammering stream plus one benign
// core into a duration-terminated run with the fault-model observer
// attached — the full trr-dodge/pareto cell shape.
func attackScenario(kind attack.Kind, duty, phase float64, benignCores int,
	build func(cfg Config) (mitigation.Mechanism, error), mut func(*Config),
) scenario {
	return func(t *testing.T) (Config, trace.Mix, *attack.Observer) {
		cfg := Table6Config(0, 1)
		cfg.Geo.Rows = 4096
		cfg.T = dram.DDR4_2400(cfg.Geo.Rows)
		cfg.LLC.SizeBytes = 1 << 20
		cfg.WarmupInsts = 0
		cfg.MeasureInsts = 1 << 40 // duration-terminated
		cfg.MaxCPUCycles = 120_000 * int64(cfg.CPUFreqMHz) / int64(cfg.MemFreqMHz)
		if mut != nil {
			mut(&cfg)
		}
		if build != nil {
			mech, err := build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Mechanism = mech
		}
		chip, err := faultmodel.NewChip(faultmodel.Config{
			Name:         "diff-" + string(kind),
			Banks:        cfg.Geo.Banks(),
			Rows:         cfg.Geo.Rows,
			RowBits:      1024,
			HCFirst:      4_000,
			Rate150k:     5e-5,
			WorstPattern: faultmodel.RowStripe0,
			Seed:         0x5eed,
		})
		if err != nil {
			t.Fatal(err)
		}
		chip.WriteAll(faultmodel.RowStripe0)
		weak := chip.WeakestCell()
		spec := attack.Spec{Kind: kind, Records: 1024, Seed: 0xdec0, DutyCycle: duty, Phase: phase}
		attackTrace, aggressors, err := spec.Synthesize(cfg.Geo, attack.Target{Bank: weak.Bank, Row: weak.Row})
		if err != nil {
			t.Fatal(err)
		}
		obs := attack.NewObserver(chip)
		obs.WatchAggressors(aggressors)
		cfg.Observer = obs
		mix := trace.Mix{Name: "diff-attack", Traces: []*trace.Trace{attackTrace}}
		if benignCores > 0 {
			mix.Traces = append(mix.Traces, trace.Mixes(1, benignCores, 1_000, 11)[0].Traces...)
		}
		return cfg, mix, obs
	}
}

// TestEngineDifferentialCorpus is the differential oracle of ISSUE 6: the
// event engine must be byte-identical to the cycle engine on benign mixes
// under every scheduler/policy/mechanism family, and on all five attack
// patterns including duty-cycle paced streams (whose REF-stall self-lock
// is cycle-exact).
func TestEngineDifferentialCorpus(t *testing.T) {
	para := func(hc int) func(cfg Config) (mitigation.Mechanism, error) {
		return func(cfg Config) (mitigation.Mechanism, error) {
			return mitigation.NewPARA(cfg.MitigationParams(hc, 1), cfg.T.TCKPS)
		}
	}
	trr := func(cfg Config) (mitigation.Mechanism, error) {
		return mitigation.NewTRR(cfg.MitigationParams(4_000, 2))
	}
	ideal := func(cfg Config) (mitigation.Mechanism, error) {
		return mitigation.NewIdeal(cfg.MitigationParams(4_000, 3))
	}
	blockhammer := func(cfg Config) (mitigation.Mechanism, error) {
		return mitigation.NewBlockHammer(cfg.MitigationParams(4_000, 4))
	}
	refresh := func(cfg Config) (mitigation.Mechanism, error) {
		return mitigation.NewIncreasedRefresh(cfg.MitigationParams(2_000, 5))
	}

	cases := []struct {
		name string
		mk   scenario
	}{
		{"benign-1core", benignScenario(1, 1, nil)},
		{"benign-2core", benignScenario(2, 2, nil)},
		{"benign-4core", benignScenario(4, 3, nil)},
		{"benign-bliss", benignScenario(4, 4, func(c *Config) { c.Ctrl.BLISS = true })},
		{"benign-fcfs", benignScenario(4, 5, func(c *Config) { c.Ctrl.FCFSOnly = true })},
		{"benign-closedrow", benignScenario(4, 6, func(c *Config) { c.Ctrl.ClosedRow = true })},
		{"mech-para-aggressive", mechScenario(para(128))},
		{"mech-trr", mechScenario(trr)},
		{"mech-ideal", mechScenario(ideal)},
		{"mech-blockhammer", mechScenario(blockhammer)},
		{"mech-refresh-storm", mechScenario(refresh)},
		{"attack-single-sided", attackScenario(attack.SingleSided, 0, 0, 1, nil, nil)},
		{"attack-double-sided-para", attackScenario(attack.DoubleSided, 0, 0, 1, para(4_000), nil)},
		{"attack-many-sided-trr", attackScenario(attack.ManySided, 0, 0, 1, trr, nil)},
		{"attack-scattered-blockhammer", attackScenario(attack.Scattered, 0, 0, 1, blockhammer, nil)},
		{"attack-decoy-ideal", attackScenario(attack.Decoy, 0, 0, 1, ideal, nil)},
		{"attack-paced-duty25", attackScenario(attack.DoubleSided, 0.25, 0.3, 0, trr, nil)},
		{"attack-paced-duty50-bliss", attackScenario(attack.DoubleSided, 0.5, 0, 0, nil,
			func(c *Config) { c.Ctrl.BLISS = true })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runBothEngines(t, tc.mk) })
	}
}

// TestEngineDifferentialFuzz widens the corpus with seeded randomized
// system/workload shapes: a deterministic generator drives both engines
// over random core counts, profiles, policies, and mechanisms.
func TestEngineDifferentialFuzz(t *testing.T) {
	n := 10
	if testing.Short() {
		n = 3
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		runBothEngines(t, fuzzScenario(seed))
	}
}
