package sim

// The event engine (EngineEvent) produces byte-identical results to the
// reference loop by construction: it only ever does one of two things per
// iteration —
//
//   - execute one cycle exactly as runCycle would (same component order,
//     same clock-divider arithmetic), or
//
//   - bulk-advance n cycles after proving that each of those cycles would
//     have been trivial for every component: cores either fully blocked
//     or in an arithmetic gap run (cpu.Core.BulkWindow), no LLC fill
//     callback due (cache.NextPendingCycle), and every skipped memory
//     tick a no-op for the controller (memctrl.NextWork). The bulk
//     replays the per-cycle effects — stall/retire counters, clock
//     phases, the BLISS clearing schedule — with closed-form updates.
//
// A cycle on which anything non-trivial could happen is therefore always
// executed exactly, on exactly the cycle number the reference loop would
// have used: the CPU/mem phase accumulator is stepped with the same
// modular arithmetic, so ACT/REF/return timing is preserved bit-for-bit.

// minBulk is the smallest jump worth taking: below it, the exact path is
// cheaper than rebuilding gap-run done rings.
const minBulk = 8

// retireNeed returns the minimum number of cycles before allRetired(tgt)
// can first hold: the largest per-core ceil(deficit/IssueWidth) over
// cores still short of the target. Capping a jump to this bound makes
// checking the retirement condition once, at the end of the jump,
// equivalent to the reference loop's per-cycle check — the condition
// cannot have held strictly inside the window.
//
//rhlint:hotpath
func (s *system) retireNeed(tgt, iw int64) int64 {
	var need int64
	for _, c := range s.cores {
		if c.Retired >= tgt {
			continue
		}
		if n := (tgt - c.Retired + iw - 1) / iw; n > need {
			need = n
		}
	}
	return need
}

// runEvent drives the system to the same final state as runCycle,
// skipping provably-trivial cycles.
//
//rhlint:hotpath
func (s *system) runEvent() {
	target := s.cfg.WarmupInsts
	iw := int64(s.cfg.Core.IssueWidth)
	//rhlint:allow hotalloc(one buffer per run, allocated before the loop)
	gapRun := make([]bool, len(s.cores))

	// Probe backoff: skipping a probe is always safe (the exact path IS
	// the oracle), so after a failed probe the loop runs up to maxBackoff
	// exact cycles before probing again. Dense regimes — where nearly
	// every probe fails — amortize the probe cost away. The cap bounds how
	// late a fresh jump window is spotted: the long idle stretches the
	// engine exists for dwarf it, while sub-maxBulk gap runs may be ridden
	// through exactly — a deliberate trade for dense-regime parity.
	const maxBackoff = 16
	var skipProbes int64
	backoff := int64(1)

	for s.cpuCycle = 0; s.cpuCycle < s.maxCycles; {
		// Longest provably-trivial window starting at this cycle. Probe
		// cheapest-first — core windows, then the (memoized) controller
		// horizon, then a k-slot LLC ring gate — and stop probing as soon
		// as the window provably cannot reach minBulk, so dense regimes
		// pay only the core scan per cycle.
		var n int64
		probed := false
		if skipProbes > 0 {
			skipProbes--
		} else {
			probed = true
			n = s.maxCycles - s.cpuCycle
		}
		for i, c := range s.cores {
			if n < minBulk {
				break // exact path; remaining gapRun entries unused
			}
			w, g := c.BulkWindow()
			gapRun[i] = g
			if w < n {
				n = w
			}
		}
		if n >= minBulk {
			// At most kmax memory ticks may be skipped; convert to CPU
			// cycles through the phase accumulator: ticks in n cycles =
			// floor((memAcc + n*memF)/cpuF). A busy controller (the common
			// dense state) bounds this to ~cpuF/memF cycles, ending the
			// probe before the LLC ring is touched.
			kmax := s.ctrl.NextWork() - s.ctrl.Cycle() - 1
			if nmem := (s.cpuF*(kmax+1) - 1 - s.memAcc) / s.memF; nmem < n {
				n = nmem
			}
		}
		// An LLC callback due within minBulk cycles forces a real Tick
		// before any worthwhile jump.
		if n >= minBulk && s.llc.PendingWithin(minBulk) {
			n = 0
		}
		if n >= minBulk {
			// The cycle an LLC callback fires must be a real Tick.
			if due := s.llc.NextPendingCycle(); due >= 0 {
				if m := due - s.llc.Cycle() - 1; m < n {
					n = m
				}
			}
		}
		if n >= minBulk {
			tgt := s.cfg.MeasureInsts
			if !s.warmedUp {
				tgt = target
			}
			if need := s.retireNeed(tgt, iw); need < n {
				n = need
			}
		}

		if n < minBulk {
			if probed {
				skipProbes = backoff
				if backoff < maxBackoff {
					backoff *= 2
				}
			}
			// Exact cycle, reference order.
			s.llc.Tick()
			for _, c := range s.cores {
				c.Tick()
			}
			s.memAcc += s.memF
			if s.memAcc >= s.cpuF {
				s.memAcc -= s.cpuF
				s.ctrl.Tick()
			}
			s.cpuCycle++
		} else {
			backoff = 1
			s.llc.AdvanceIdle(n)
			for i, c := range s.cores {
				if gapRun[i] {
					c.AdvanceGap(n)
				} else {
					c.AdvanceIdle(n)
				}
			}
			ticks := (s.memAcc + n*s.memF) / s.cpuF
			s.memAcc += n*s.memF - ticks*s.cpuF
			if ticks > 0 {
				s.ctrl.AdvanceIdle(ticks)
			}
			s.cpuCycle += n
		}

		// The reference loop checks after every cycle; the retireNeed cap
		// guarantees the condition cannot have first held strictly inside
		// a bulk window, so checking at its end is exact. cpuCycle here is
		// the count of executed cycles; the current cycle index (the
		// reference loop's cpuCycle inside the body) is cpuCycle-1.
		if !s.warmedUp && s.allRetired(target) {
			s.cpuCycle--
			s.beginMeasure()
			s.cpuCycle++
		}
		if s.warmedUp && s.allRetired(s.cfg.MeasureInsts) {
			s.cpuCycle-- // the reference loop breaks before incrementing
			return
		}
	}
}
