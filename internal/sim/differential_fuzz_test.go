package sim

import (
	"fmt"
	"testing"

	"repro/internal/attack"
	"repro/internal/mitigation"
	"repro/internal/stats"
	"repro/internal/trace"
)

// fuzzScenario derives a random-but-deterministic system shape and
// workload from the seed: both engine runs rebuild exactly the same
// scenario, so any divergence is an engine bug, not generator noise.
func fuzzScenario(seed uint64) scenario {
	return func(t *testing.T) (Config, trace.Mix, *attack.Observer) {
		rng := stats.NewRNG(seed ^ 0xf022)
		cfg := Table6Config(int64(rng.Intn(1_500)), int64(2_000+rng.Intn(8_000)))
		cfg.LLC.SizeBytes = 1 << 20
		cfg.Ctrl.BLISS = rng.Bernoulli(0.3)
		cfg.Ctrl.FCFSOnly = rng.Bernoulli(0.2)
		cfg.Ctrl.ClosedRow = rng.Bernoulli(0.2)

		var err error
		switch rng.Intn(5) {
		case 1:
			cfg.Mechanism, err = mitigation.NewPARA(
				cfg.MitigationParams(256+rng.Intn(8_000), rng.Uint64()), cfg.T.TCKPS)
		case 2:
			cfg.Mechanism, err = mitigation.NewTRR(
				cfg.MitigationParams(1_000+rng.Intn(8_000), rng.Uint64()))
		case 3:
			cfg.Mechanism, err = mitigation.NewIdeal(
				cfg.MitigationParams(1_000+rng.Intn(8_000), rng.Uint64()))
		case 4:
			cfg.Mechanism, err = mitigation.NewBlockHammer(
				cfg.MitigationParams(1_000+rng.Intn(8_000), rng.Uint64()))
		}
		if err != nil {
			t.Fatal(err)
		}

		catalog := trace.Catalog()
		cores := 1 + rng.Intn(3)
		mix := trace.Mix{Name: fmt.Sprintf("fuzz%d", seed)}
		for c := 0; c < cores; c++ {
			p := catalog[rng.Intn(len(catalog))]
			mix.Traces = append(mix.Traces, p.Generate(600+rng.Intn(1_200), rng.Uint64()))
		}
		return cfg, mix, nil
	}
}
