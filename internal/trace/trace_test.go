package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Catalog()[2] // stream-copy
	a := p.Generate(1000, 42)
	b := p.Generate(1000, 42)
	if len(a.Records) != 1000 || len(b.Records) != 1000 {
		t.Fatalf("record counts %d/%d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c := p.Generate(1000, 43)
	same := 0
	for i := range a.Records {
		if a.Records[i] == c.Records[i] {
			same++
		}
	}
	if same == len(a.Records) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateRespectsProfile(t *testing.T) {
	for _, p := range Catalog() {
		tr := p.Generate(5000, 1)
		writes := 0
		var span int64
		var lo, hi int64 = 1 << 62, 0
		for _, r := range tr.Records {
			if r.Write {
				writes++
			}
			if r.Addr < lo {
				lo = r.Addr
			}
			if r.Addr > hi {
				hi = r.Addr
			}
			if r.Gap < 0 {
				t.Fatalf("%s: negative gap", p.Name)
			}
		}
		span = hi - lo
		if span > p.WorkingSetBytes+(1<<26) {
			t.Errorf("%s: span %d exceeds working set %d", p.Name, span, p.WorkingSetBytes)
		}
		wr := float64(writes) / float64(len(tr.Records))
		if p.WriteRatio > 0 && (wr < p.WriteRatio-0.05 || wr > p.WriteRatio+0.05) {
			t.Errorf("%s: write ratio %.3f, want ≈%.2f", p.Name, wr, p.WriteRatio)
		}
		// Mean gap tracks MemFraction: gap ≈ 1/f − 1.
		totalInsts := tr.Instructions()
		memFrac := float64(len(tr.Records)) / float64(totalInsts)
		if memFrac < p.MemFraction*0.7 || memFrac > p.MemFraction*1.3 {
			t.Errorf("%s: memory fraction %.4f, want ≈%.4f", p.Name, memFrac, p.MemFraction)
		}
	}
}

func TestPassOffsetWrapsWithinSpan(t *testing.T) {
	p := Catalog()[2]
	tr := p.Generate(100, 9)
	f := func(pass uint16) bool {
		off := tr.PassOffset(int64(pass))
		return off >= 0 && off < tr.Span
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if tr.PassOffset(0) != 0 {
		t.Error("pass 0 must have zero offset")
	}
	// Different passes shift the window.
	if tr.PassOffset(1) == 0 {
		t.Error("pass 1 offset is zero; replays would be cache-resident")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := Catalog()[5]
	orig := p.Generate(500, 3)
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name {
		t.Errorf("name %q, want %q", got.Name, orig.Name)
	}
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("records %d, want %d", len(got.Records), len(orig.Records))
	}
	for i := range got.Records {
		if got.Records[i] != orig.Records[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// The replay parameters must survive the round trip: without them a
	// decoded trace stops pass-shifting and streaming workloads collapse
	// into cache-resident ones.
	if got.PassStride != orig.PassStride || got.Span != orig.Span {
		t.Errorf("replay params stride=%d span=%d, want stride=%d span=%d",
			got.PassStride, got.Span, orig.PassStride, orig.Span)
	}
	if got.PassOffset(3) != orig.PassOffset(3) {
		t.Errorf("pass offset %d, want %d", got.PassOffset(3), orig.PassOffset(3))
	}
}

func TestEncodeDecodeUncachedRecords(t *testing.T) {
	orig := &Trace{
		Name:       "attack-double-sided",
		PassStride: 0,
		Span:       0,
		Records: []Record{
			{Gap: 63, Addr: 4096, NoCache: true},
			{Gap: 63, Addr: 8192, NoCache: true},
			{Gap: 0, Addr: 64, Write: true},
			{Gap: 1, Addr: 128},
		},
	}
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("records %d, want %d", len(got.Records), len(orig.Records))
	}
	for i := range got.Records {
		if got.Records[i] != orig.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], orig.Records[i])
		}
	}
	if !got.Records[0].NoCache || got.Records[2].NoCache {
		t.Error("NoCache flags lost in round trip")
	}
	// An uncached store has no encoding; Encode must refuse rather than
	// silently drop a flag.
	bad := &Trace{Records: []Record{{Addr: 64, Write: true, NoCache: true}}}
	if err := bad.Encode(&bytes.Buffer{}); err == nil {
		t.Error("Write+NoCache record encoded without error")
	}
}

func TestEncodeDecodeRequesterRoundTrip(t *testing.T) {
	orig := &Trace{
		Name: "multi-source",
		Records: []Record{
			{Gap: 3, Addr: 64, Requester: 0},
			{Gap: 0, Addr: 128, Write: true, Requester: 5},
			{Gap: 7, Addr: 4096, NoCache: true, Requester: 2},
			{Gap: 1, Addr: 192, Requester: 11},
		},
	}
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "v2") {
		t.Errorf("encoded header lacks the v2 version tag:\n%s", buf.String())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("records %d, want %d", len(got.Records), len(orig.Records))
	}
	for i := range got.Records {
		if got.Records[i] != orig.Records[i] {
			t.Fatalf("record %d = %+v, want %+v (requester lost?)", i, got.Records[i], orig.Records[i])
		}
	}
	// A negative requester has no encoding.
	bad := &Trace{Records: []Record{{Addr: 64, Requester: -1}}}
	if err := bad.Encode(&bytes.Buffer{}); err == nil {
		t.Error("negative requester encoded without error")
	}
}

func TestDecodeLegacyV1Trace(t *testing.T) {
	// A pre-requester trace: un-versioned header, three fields per line.
	// It must decode exactly as before, with every requester zero.
	legacy := "# trace old records=3 stride=128 span=1024\n" +
		"4 64 R\n" +
		"0 128 W\n" +
		"63 4096 F\n"
	tr, err := Decode(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "old" || tr.PassStride != 128 || tr.Span != 1024 {
		t.Errorf("header lost: %+v", tr)
	}
	want := []Record{
		{Gap: 4, Addr: 64},
		{Gap: 0, Addr: 128, Write: true},
		{Gap: 63, Addr: 4096, NoCache: true},
	}
	if len(tr.Records) != len(want) {
		t.Fatalf("records %d, want %d", len(tr.Records), len(want))
	}
	for i := range want {
		if tr.Records[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, tr.Records[i], want[i])
		}
		if tr.Records[i].Requester != 0 {
			t.Errorf("record %d: legacy trace grew requester %d", i, tr.Records[i].Requester)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []string{
		"1 2",             // missing op
		"x 2 R",           // bad gap
		"1 y R",           // bad addr
		"1 2 Q",           // bad op
		"-1 2 R",          // negative gap
		"1 -2 W",          // negative addr
		"1 2 R extra bit", // too many fields
		"1 2 R x",         // bad requester
		"1 2 R -3",        // negative requester
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("malformed line %q accepted", c)
		}
	}
	// Comments and blank lines are fine.
	tr, err := Decode(strings.NewReader("# trace foo records=1\n\n3 128 W\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "foo" || len(tr.Records) != 1 || !tr.Records[0].Write {
		t.Errorf("decoded %+v", tr)
	}
}

func TestMixesShapeAndDeterminism(t *testing.T) {
	a := Mixes(48, 8, 100, 1)
	if len(a) != 48 {
		t.Fatalf("mixes = %d", len(a))
	}
	for _, m := range a {
		if len(m.Traces) != 8 {
			t.Fatalf("%s has %d traces", m.Name, len(m.Traces))
		}
	}
	b := Mixes(48, 8, 100, 1)
	for i := range a {
		for c := range a[i].Traces {
			if a[i].Traces[c].Name != b[i].Traces[c].Name {
				t.Fatal("mix drawing not deterministic")
			}
		}
	}
}

func TestInstructionsCount(t *testing.T) {
	tr := &Trace{Records: []Record{{Gap: 3}, {Gap: 0}, {Gap: 7}}}
	if got := tr.Instructions(); got != 13 {
		t.Errorf("instructions = %d, want 13", got)
	}
	if tr.MemoryAccesses() != 3 {
		t.Error("memory accesses != 3")
	}
}
