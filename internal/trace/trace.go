// Package trace generates and encodes the synthetic workload traces that
// substitute for the paper's SPEC CPU2006 mixes (Section 6.2.1): per-core
// streams of instruction records replayed by the simple core model. A
// record says "execute N non-memory instructions, then one memory
// instruction at address A". Profiles span the paper's memory-intensity
// range (mix MPKIs from 10 to 740).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Record is one trace entry: Gap non-memory instructions followed by one
// memory access. NoCache marks a flush+load (the clflush-based access
// RowHammer attack code uses): the LLC invalidates any cached copy and
// forwards the read straight to the memory controller without allocating.
//
// Requester is the explicit source/thread ID of the access for traces that
// capture multi-threaded attribution (trace format v2). The default 0
// means "unattributed": the replaying core substitutes its own ID, so
// per-core synthetic traces need not set it.
type Record struct {
	Gap       int
	Addr      int64
	Write     bool
	NoCache   bool
	Requester int
}

// Trace is a finite instruction trace replayed cyclically by the core.
// Each replay pass shifts all addresses by PassStride (wrapping within
// Span bytes), so a short trace models a full-length one: streaming
// workloads keep streaming into fresh memory while cache-resident
// workloads stay inside their small working set.
type Trace struct {
	Name    string
	Records []Record

	// PassStride is added to every address per completed replay pass.
	PassStride int64
	// Span bounds the accumulated pass offset (the working set size).
	Span int64
}

// PassOffset returns the address offset applied on the given pass.
func (t *Trace) PassOffset(pass int64) int64 {
	if t.PassStride == 0 || t.Span == 0 {
		return 0
	}
	return (pass * t.PassStride) % t.Span
}

// Instructions returns the total instruction count of one pass
// (memory instructions count as one each).
func (t *Trace) Instructions() int64 {
	var n int64
	for _, r := range t.Records {
		n += int64(r.Gap) + 1
	}
	return n
}

// MemoryAccesses returns the number of memory instructions per pass.
func (t *Trace) MemoryAccesses() int { return len(t.Records) }

// Encode writes the trace in text format v2: "gap addr R|W|F [requester]",
// one record per line ("F" is an uncached flush+load), with a header
// comment carrying the format version and the replay parameters
// (PassStride, Span) so a decoded trace pass-shifts exactly like the
// original. The requester field is written only when nonzero, so v2 output
// for unattributed traces stays line-compatible with v1 readers.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s v2 records=%d stride=%d span=%d\n",
		t.Name, len(t.Records), t.PassStride, t.Span); err != nil {
		return err
	}
	for i, r := range t.Records {
		op := "R"
		switch {
		case r.Write && r.NoCache:
			// No op letter exists for an uncached store (the core model
			// has no such access); refusing beats silently dropping a flag
			// on the round trip.
			return fmt.Errorf("trace: record %d: Write and NoCache are mutually exclusive", i)
		case r.Write:
			op = "W"
		case r.NoCache:
			op = "F"
		}
		if r.Requester < 0 {
			return fmt.Errorf("trace: record %d: negative requester %d", i, r.Requester)
		}
		var err error
		if r.Requester != 0 {
			_, err = fmt.Fprintf(bw, "%d %d %s %d\n", r.Gap, r.Addr, op, r.Requester)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d %s\n", r.Gap, r.Addr, op)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the text format produced by Encode: both v2 (with an
// optional fourth requester field per record) and the original
// un-versioned v1 format (three fields, Requester 0).
func Decode(r io.Reader) (*Trace, error) {
	t := &Trace{Name: "decoded"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			for i, f := range fields {
				switch {
				case f == "trace" && i+1 < len(fields):
					t.Name = fields[i+1]
				case strings.HasPrefix(f, "stride="):
					v, err := strconv.ParseInt(f[len("stride="):], 10, 64)
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: bad %q", lineNo, f)
					}
					t.PassStride = v
				case strings.HasPrefix(f, "span="):
					v, err := strconv.ParseInt(f[len("span="):], 10, 64)
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: bad %q", lineNo, f)
					}
					t.Span = v
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 3 or 4 fields, got %d", lineNo, len(fields))
		}
		gap, err := strconv.Atoi(fields[0])
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || addr < 0 {
			return nil, fmt.Errorf("trace: line %d: bad address %q", lineNo, fields[1])
		}
		var write, noCache bool
		switch fields[2] {
		case "R":
		case "W":
			write = true
		case "F":
			noCache = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[2])
		}
		requester := 0
		if len(fields) == 4 {
			requester, err = strconv.Atoi(fields[3])
			if err != nil || requester < 0 {
				return nil, fmt.Errorf("trace: line %d: bad requester %q", lineNo, fields[3])
			}
		}
		t.Records = append(t.Records, Record{Gap: gap, Addr: addr, Write: write, NoCache: noCache, Requester: requester})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Profile parameterizes a synthetic workload archetype.
type Profile struct {
	Name string
	// MemFraction is the fraction of instructions that access memory.
	MemFraction float64
	// WorkingSetBytes bounds the touched address range. Working sets
	// larger than the LLC produce misses; smaller ones are cache-resident
	// (low-MPKI workloads).
	WorkingSetBytes int64
	// Sequential is the probability that the next access continues the
	// current stream (next cache line) rather than jumping randomly —
	// streams are row-buffer friendly, jumps are not.
	Sequential float64
	// WriteRatio is the fraction of memory accesses that are stores.
	WriteRatio float64
}

// Generate produces a trace with the given number of memory records.
func (p Profile) Generate(records int, seed uint64) *Trace {
	rng := stats.NewRNG(seed)
	t := &Trace{Name: p.Name, Records: make([]Record, 0, records)}
	const line = 64
	lines := p.WorkingSetBytes / line
	if lines < 16 {
		lines = 16
	}
	// One pass touches at most records distinct lines; shifting by that
	// footprint each pass walks the whole working set over time.
	t.PassStride = int64(records) * line
	t.Span = lines * line
	// Mean gap between memory instructions.
	meanGap := 0.0
	if p.MemFraction > 0 {
		meanGap = 1/p.MemFraction - 1
	}
	cur := int64(rng.Intn(int(lines)))
	base := int64(rng.Intn(1<<20)) * line // per-instance offset
	for i := 0; i < records; i++ {
		// Geometric gap around the mean keeps issue bursts realistic.
		gap := 0
		if meanGap > 0 {
			for rng.Float64() > 1/(meanGap+1) {
				gap++
				if gap > 10000 {
					break
				}
			}
		}
		if rng.Bernoulli(p.Sequential) {
			cur = (cur + 1) % lines
		} else {
			cur = int64(rng.Intn(int(lines)))
		}
		t.Records = append(t.Records, Record{
			Gap:   gap,
			Addr:  base + cur*line,
			Write: rng.Bernoulli(p.WriteRatio),
		})
	}
	return t
}

// Catalog returns the workload archetypes the 48 mixes draw from. The
// profiles span cache-resident kernels up to memory-bound random-access
// workloads, mirroring the paper's 10–740 MPKI mix spread. MemFraction
// models the post-L2 access stream reaching the LLC, so profiles whose
// working set exceeds the 16 MiB LLC realize a per-core MPKI of roughly
// MemFraction×1000, SPEC-like (mcf ≈ 90, streams ≈ 30–60, kernels ≈ 0).
func Catalog() []Profile {
	const MiB = 1 << 20
	return []Profile{
		{Name: "kernel-tight", MemFraction: 0.020, WorkingSetBytes: 2 * MiB, Sequential: 0.9, WriteRatio: 0.2},
		{Name: "kernel-blocked", MemFraction: 0.030, WorkingSetBytes: 8 * MiB, Sequential: 0.8, WriteRatio: 0.25},
		{Name: "stream-copy", MemFraction: 0.035, WorkingSetBytes: 256 * MiB, Sequential: 0.97, WriteRatio: 0.45},
		{Name: "stream-triad", MemFraction: 0.045, WorkingSetBytes: 384 * MiB, Sequential: 0.95, WriteRatio: 0.3},
		{Name: "stencil", MemFraction: 0.025, WorkingSetBytes: 128 * MiB, Sequential: 0.7, WriteRatio: 0.3},
		{Name: "graph-walk", MemFraction: 0.050, WorkingSetBytes: 512 * MiB, Sequential: 0.05, WriteRatio: 0.05},
		{Name: "hash-join", MemFraction: 0.045, WorkingSetBytes: 256 * MiB, Sequential: 0.15, WriteRatio: 0.15},
		{Name: "btree-lookup", MemFraction: 0.030, WorkingSetBytes: 192 * MiB, Sequential: 0.1, WriteRatio: 0.05},
		{Name: "sparse-mv", MemFraction: 0.055, WorkingSetBytes: 320 * MiB, Sequential: 0.45, WriteRatio: 0.1},
		{Name: "sort-merge", MemFraction: 0.030, WorkingSetBytes: 160 * MiB, Sequential: 0.75, WriteRatio: 0.35},
		{Name: "mcf-like", MemFraction: 0.090, WorkingSetBytes: 768 * MiB, Sequential: 0.08, WriteRatio: 0.1},
		{Name: "lbm-like", MemFraction: 0.060, WorkingSetBytes: 512 * MiB, Sequential: 0.9, WriteRatio: 0.45},
		{Name: "milc-like", MemFraction: 0.045, WorkingSetBytes: 384 * MiB, Sequential: 0.5, WriteRatio: 0.2},
		{Name: "omnetpp-like", MemFraction: 0.035, WorkingSetBytes: 256 * MiB, Sequential: 0.12, WriteRatio: 0.25},
		{Name: "libq-like", MemFraction: 0.060, WorkingSetBytes: 64 * MiB, Sequential: 0.98, WriteRatio: 0.25},
		{Name: "gcc-like", MemFraction: 0.015, WorkingSetBytes: 48 * MiB, Sequential: 0.5, WriteRatio: 0.3},
	}
}

// Mix is one multi-programmed workload: a named set of per-core traces.
type Mix struct {
	Name   string
	Traces []*Trace
}

// Mixes builds the paper's 48 randomly drawn 8-core workload mixes
// deterministically from a seed. records sets each trace's length.
func Mixes(nMixes, cores, records int, seed uint64) []Mix {
	catalog := Catalog()
	rng := stats.NewRNG(seed)
	mixes := make([]Mix, 0, nMixes)
	for i := 0; i < nMixes; i++ {
		m := Mix{Name: fmt.Sprintf("mix%02d", i)}
		for c := 0; c < cores; c++ {
			p := catalog[rng.Intn(len(catalog))]
			m.Traces = append(m.Traces, p.Generate(records, rng.Uint64()))
		}
		mixes = append(mixes, m)
	}
	return mixes
}
