package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pacedAttackRun simulates a lone attacker (no benign cores, no
// mitigation) with the given pacing and returns the per-REF timeline.
func pacedAttackRun(t *testing.T, duty, phase float64) []attack.REFWindow {
	t.Helper()
	cfg := attackSimCfg(400_000, 1024)
	chip, err := attackChip(cfg, 512, 11, false)
	if err != nil {
		t.Fatal(err)
	}
	weak := chip.WeakestCell()
	spec := attack.Spec{Kind: attack.DoubleSided, Records: 2048, Seed: 3, DutyCycle: duty, Phase: phase}
	tr, aggressors, err := spec.Synthesize(cfg.Geo, attack.Target{Bank: weak.Bank, Row: weak.Row})
	if err != nil {
		t.Fatal(err)
	}
	obs := attack.NewObserver(chip)
	obs.WatchAggressors(aggressors)
	cfg.Observer = obs
	if _, err := sim.Run(cfg, trace.Mix{Name: "paced", Traces: []*trace.Trace{tr}}); err != nil {
		t.Fatal(err)
	}
	return obs.Timeline()
}

func timelineAggACTs(ws []attack.REFWindow) int64 {
	var n int64
	for _, w := range ws {
		n += w.AggressorACTs
	}
	return n
}

// TestDutyCycleAchievedFraction pins the idle-gap carry fix with
// Timeline evidence: the paced stream's aggressor activity, measured at
// the observer's per-REF granularity over many periods, must track the
// requested active fraction of the full-rate stream's activity instead
// of drifting away from it.
func TestDutyCycleAchievedFraction(t *testing.T) {
	full := pacedAttackRun(t, 0, 0)
	fullACTs := timelineAggACTs(full)
	if len(full) < 20 || fullACTs == 0 {
		t.Fatalf("full-rate run too small to measure: %d windows, %d aggressor ACTs", len(full), fullACTs)
	}
	for _, duty := range []float64{0.25, 0.5} {
		paced := pacedAttackRun(t, duty, 0)
		achieved := float64(timelineAggACTs(paced)) / float64(fullACTs)
		t.Logf("duty %.2f: achieved active fraction %.3f over %d REF windows", duty, achieved, len(paced))
		if math.Abs(achieved-duty) > 0.12 {
			t.Errorf("duty %.2f: achieved active fraction %.3f (|err| > 0.12) over %d REF windows",
				duty, achieved, len(paced))
		}
	}
}

// TestTRRDodgeValidation pins the new params' semantic checks at strict
// spec decode.
func TestTRRDodgeValidation(t *testing.T) {
	bad := []struct{ spec, want string }{
		{`{"name":"trr-dodge","params":{"duty_cycles":[1]}}`, "duty_cycles"},
		{`{"name":"trr-dodge","params":{"duty_cycles":[-0.25]}}`, "duty_cycles"},
		{`{"name":"trr-dodge","params":{"phases":[1.5]}}`, "phases"},
		{`{"name":"trr-dodge","params":{"sample_rates":[0]}}`, "sample_rates"},
		{`{"name":"trr-dodge","params":{"sample_rates":[1.1]}}`, "sample_rates"},
		{`{"name":"trr-dodge","params":{"table_sizes":[0]}}`, "table_sizes"},
		{`{"name":"trr-dodge","params":{"hc":-1}}`, "hc"},
		{`{"name":"trr-dodge","params":{"tabel_sizes":[4]}}`, "params"},
	}
	for _, b := range bad {
		if _, err := DecodeSpec([]byte(b.spec)); err == nil || !strings.Contains(err.Error(), b.want) {
			t.Errorf("%s: error = %v, want mention of %q", b.spec, err, b.want)
		}
	}
	if _, err := DecodeSpec([]byte(`{"name":"trr-dodge","params":{"duty_cycles":[0,0.25],"phases":[0.5],"sample_rates":[1],"table_sizes":[8]}}`)); err != nil {
		t.Errorf("valid trr-dodge spec rejected: %v", err)
	}
}

// TestTRRDodgeSpecRoundTrip pins the new params through the canonical
// encode/decode cycle.
func TestTRRDodgeSpecRoundTrip(t *testing.T) {
	spec, err := NewSpec("trr-dodge", 9, TRRDodgeParams{
		Patterns:   []attack.Kind{attack.DoubleSided, attack.ManySided},
		DutyCycles: []float64{0, 0.25},
		Phases:     []float64{0, 0.5},
		HCFirst:    512,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Errorf("encode/decode/encode not stable:\n%s\nvs\n%s", enc, enc2)
	}
}

// dodgeTestParams is the acceptance-scale grid: small geometry, one
// sampler configuration, full-rate baseline plus one paced point.
func dodgeTestParams() TRRDodgeParams {
	return TRRDodgeParams{
		Patterns:     []attack.Kind{attack.DoubleSided},
		DutyCycles:   []float64{0, 0.25},
		Phases:       []float64{0},
		SampleRates:  []float64{0.5},
		TableSizes:   []int{4},
		HCFirst:      256,
		TraceRecords: 800,
		MemCycles:    600_000,
		Rows:         1024,
	}
}

// TestTRRDodgeShowsDodge is the PR's acceptance criterion: on a grid
// where full-rate hammering is blocked by the sampler, a paced attack at
// DutyCycle < 1 escapes flips.
func TestTRRDodgeShowsDodge(t *testing.T) {
	dodge, err := RunTRRDodge(dodgeTestParams(), 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	fullRate, ok := dodge.PointFor(attack.DoubleSided, 0, 0, 0.5, 4)
	if !ok {
		t.Fatal("grid missing the full-rate baseline point")
	}
	paced, ok := dodge.PointFor(attack.DoubleSided, 0.25, 0, 0.5, 4)
	if !ok {
		t.Fatal("grid missing the paced point")
	}
	if fullRate.EscapedFlips != 0 {
		t.Errorf("full-rate baseline escaped %d flips; sampler should block continuous hammering", fullRate.EscapedFlips)
	}
	if fullRate.SamplerRefreshes == 0 {
		t.Error("sampler issued no victim refreshes against full-rate hammering")
	}
	if paced.EscapedFlips == 0 {
		t.Error("paced attack escaped no flips; the dodge did not happen")
	}
	if paced.SamplerSamples >= fullRate.SamplerSamples {
		t.Errorf("paced attack was sampled as much as full rate (%d >= %d); pacing did not avoid the window",
			paced.SamplerSamples, fullRate.SamplerSamples)
	}
	if len(dodge.Dodges()) == 0 {
		t.Error("Dodges() empty despite a paced escape over a blocked full-rate baseline")
	}
	if !strings.Contains(dodge.Format(), "Dodges") {
		t.Error("Format() does not surface the dodge verdict")
	}
}
