package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/attack"
	"repro/internal/engine"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The trr-dodge experiment is the ROADMAP's duty-cycle security study:
// in-DRAM TRR-style samplers are the deployed reality at low HCfirst,
// and the RowHammer literature documents that they are dodged by attacks
// that pace their activations around the sampler's observation windows.
// This experiment quantifies the dodge end to end: a (sampler rate ×
// table size × pattern × duty-cycle × phase) grid of mixed
// attacker+benign simulations against the mitigation.TRR sampler,
// reporting escaped flips, the sampler's effort (samples taken, victim
// refreshes issued, bandwidth overhead) and the per-REF timeline
// evidence — aggressor activity per refresh interval and how little of
// it the sampler ever observed. Duty cycle 0 is the full-rate baseline
// every paced point is compared against: the dodge is demonstrated when
// a paced attack escapes flips that full-rate hammering cannot.

// TRRDodgeParams is the declarative parameter block of the trr-dodge
// experiment. All slice axes default to the values in
// DefaultTRRDodgeParams when empty.
type TRRDodgeParams struct {
	// Patterns is the attack-pattern axis (default double-sided).
	Patterns []attack.Kind `json:"patterns,omitempty"`
	// DutyCycles is the pacing axis, each value in [0,1): 0 is the
	// full-rate baseline, (0,1) hammers that fraction of each refresh
	// interval and idles through the rest.
	DutyCycles []float64 `json:"duty_cycles,omitempty"`
	// Phases shifts where within each interval the burst falls, each
	// value in [0,1). Only paced (duty > 0) cells take the phase axis;
	// the full-rate baseline runs once per (pattern, sampler) point.
	Phases []float64 `json:"phases,omitempty"`
	// SampleRates is the sampler's probability axis, each value in (0,1].
	SampleRates []float64 `json:"sample_rates,omitempty"`
	// TableSizes is the sampler's per-bank entry-count axis.
	TableSizes []int `json:"table_sizes,omitempty"`

	// HCFirst is the victim chip's weakest-cell hammer count (default
	// 256 — below the paper's 4.8k-chip tail, where sampling defenses are
	// the deployed reality).
	HCFirst int `json:"hc,omitempty"`

	// BenignCores adds benign cores next to the attacker. The default is
	// 0 (attacker-only): a statically paced trace cannot re-synchronize
	// with the refresh schedule the way real refresh-aware attacks do, so
	// benign queue contention stretches its bursts and smears them across
	// the sampler window — the attacker-only run models the adaptive
	// attacker's achievable alignment. Setting this >0 measures exactly
	// that degradation (and the benign throughput under a paced attack).
	BenignCores   int   `json:"benign_cores,omitempty"`
	TraceRecords  int   `json:"trace_records,omitempty"`
	MemCycles     int64 `json:"mem_cycles,omitempty"`
	Rows          int   `json:"rows,omitempty"`
	AttackRecords int   `json:"attack_records,omitempty"`
	ECC           bool  `json:"ecc,omitempty"`
}

// DefaultTRRDodgeParams is the CLI-scale grid: one sampler
// configuration, the full-rate baseline plus two duty cycles at two
// phases each, against the highest-pressure pattern.
func DefaultTRRDodgeParams() TRRDodgeParams {
	return TRRDodgeParams{
		Patterns:     []attack.Kind{attack.DoubleSided},
		DutyCycles:   []float64{0, 0.25, 0.5},
		Phases:       []float64{0, 0.5},
		SampleRates:  []float64{0.5},
		TableSizes:   []int{4},
		HCFirst:      256,
		TraceRecords: 2_000,
		MemCycles:    3_000_000,
	}
}

// Validate rejects out-of-domain axis values at spec decode: duty cycles
// and phases outside [0,1), sample rates outside (0,1], non-positive
// table sizes, and a negative HCfirst.
func (p *TRRDodgeParams) Validate() error {
	for _, d := range p.DutyCycles {
		if d < 0 || d >= 1 {
			return fmt.Errorf("core: trr-dodge duty_cycles value %g outside [0,1) (0 is the full-rate baseline)", d)
		}
	}
	for _, ph := range p.Phases {
		if ph < 0 || ph >= 1 {
			return fmt.Errorf("core: trr-dodge phases value %g outside [0,1)", ph)
		}
	}
	for _, r := range p.SampleRates {
		if r <= 0 || r > 1 {
			return fmt.Errorf("core: trr-dodge sample_rates value %g outside (0,1]", r)
		}
	}
	for _, ts := range p.TableSizes {
		if ts < 1 {
			return fmt.Errorf("core: trr-dodge table_sizes value %d must be positive", ts)
		}
	}
	if p.HCFirst < 0 {
		return fmt.Errorf("core: trr-dodge hc %d must not be negative", p.HCFirst)
	}
	return nil
}

func (p TRRDodgeParams) normalized() TRRDodgeParams {
	d := DefaultTRRDodgeParams()
	if len(p.Patterns) == 0 {
		p.Patterns = d.Patterns
	}
	if len(p.DutyCycles) == 0 {
		p.DutyCycles = d.DutyCycles
	}
	if len(p.Phases) == 0 {
		p.Phases = d.Phases
	}
	if len(p.SampleRates) == 0 {
		p.SampleRates = d.SampleRates
	}
	if len(p.TableSizes) == 0 {
		p.TableSizes = d.TableSizes
	}
	if p.HCFirst <= 0 {
		p.HCFirst = d.HCFirst
	}
	// BenignCores 0 is meaningful (attacker-only), not a default request.
	if p.BenignCores < 0 {
		p.BenignCores = 0
	}
	if p.TraceRecords <= 0 {
		p.TraceRecords = d.TraceRecords
	}
	if p.MemCycles <= 0 {
		p.MemCycles = d.MemCycles
	}
	return p
}

// DodgePoint is one grid cell's outcome: the attack's pacing and the
// sampler's configuration, security results, the sampler's effort, and
// the per-REF timeline evidence of the dodge.
type DodgePoint struct {
	Pattern    attack.Kind
	DutyCycle  float64 // 0 = full-rate baseline
	Phase      float64
	SampleRate float64
	TableSize  int
	HCFirst    int

	// Security outcome.
	EscapedFlips      int
	RawFlips          int
	TimeToFirstFlipMS float64 // -1 when no flip escaped
	AggressorACTs     int64
	AggACTsPerSec     float64

	// Per-REF timeline evidence (attack.Observer windows): how much
	// aggressor activity each refresh interval carried, and in how many
	// intervals flips landed. A dodging cell shows sustained per-window
	// aggressor activity and escaped flips while SamplerSamples stays
	// near zero — the attack was loud, the sampler just never looked at
	// the right time.
	REFWindows        int
	MeanWindowAggACTs float64
	MaxWindowAggACTs  int64
	FlipWindows       int

	// Sampler effort: activations the sampler observed and neighbour
	// refreshes its REFs issued (the refresh overhead of the defense).
	SamplerSamples   int64
	SamplerRefreshes int64

	// Performance.
	BenignPerfPct float64
	OverheadPct   float64
}

// TRRDodge is the full study result.
type TRRDodge struct {
	Points    []DodgePoint
	MemCycles int64
	WallMS    float64
	Benign    string
	ECC       bool
}

// fmtAxis renders a float axis value for task keys and reports,
// shortest-round-trip form so keys are stable and readable.
func fmtAxis(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// dodgeCell is one trr-dodge task: a sweepCell plus the sampler
// configuration echoed into the payload.
type dodgeCell struct {
	cell sweepCell
	rate float64
	tbl  int
}

// trrDodgeGrid enumerates the (sampler × pattern × pacing) grid. The
// full-rate baseline (duty 0) appears once per (sampler, pattern) point
// — the phase axis only multiplies paced cells. The stream seed (and
// with it the victim chip) derives from the pattern's identity, not its
// position in the axis, so every sampler configuration and every pacing
// faces the same chip and the same base access stream for a given
// pattern — across runs with differently composed pattern lists too.
func trrDodgeGrid(p TRRDodgeParams, seed uint64) (keys []string, cells []dodgeCell) {
	add := func(rate float64, tbl int, pat attack.Kind, duty, phase float64) {
		cells = append(cells, dodgeCell{
			cell: sweepCell{
				Mech: MechTRR, Sched: SchedFRFCFS, Pattern: pat, HC: p.HCFirst,
				duty: duty, phase: phase,
				trr:        &mitigation.TRRConfig{SampleRate: rate, TableSize: tbl},
				streamSeed: engine.DeriveSeed(seed^0xd0d9e, keyHash(string(pat))),
			},
			rate: rate, tbl: tbl,
		})
		keys = append(keys, fmt.Sprintf("rate=%s/table=%d/pat=%s/duty=%s/phase=%s",
			fmtAxis(rate), tbl, pat, fmtAxis(duty), fmtAxis(phase)))
	}
	for _, rate := range p.SampleRates {
		for _, tbl := range p.TableSizes {
			for _, pat := range p.Patterns {
				for _, duty := range p.DutyCycles {
					if duty == 0 {
						add(rate, tbl, pat, 0, 0)
						continue
					}
					for _, phase := range p.Phases {
						add(rate, tbl, pat, duty, phase)
					}
				}
			}
		}
	}
	return keys, cells
}

// RunTRRDodge runs the duty-cycle dodge study with the given parameters
// (zero-value fields take the defaults) — the wrapper over the
// "trr-dodge" registry entry.
func RunTRRDodge(p TRRDodgeParams, seed uint64, parallelism int) (*TRRDodge, error) {
	art, err := runSpecArtifact("trr-dodge", seed, p, Exec{Parallelism: parallelism})
	if err != nil {
		return nil, err
	}
	return art.(*TRRDodge), nil
}

func init() {
	register(&experiment{
		name:        "trr-dodge",
		description: "TRR dodge study: duty-cycle/phase-paced attacks vs an in-DRAM sampling TRR (sampler × pattern × pacing)",
		params:      func() any { return &TRRDodgeParams{} },
		run: func(rc *runCtx) (*Result, error) {
			var p TRRDodgeParams
			if err := rc.decode(&p); err != nil {
				return nil, err
			}
			p = p.normalized()
			cfg := attackSimCfg(p.MemCycles, p.Rows)
			benign := trace.Mix{Name: "benign"}
			var baseIPC []float64
			benignDesc := "attacker only"
			if p.BenignCores > 0 {
				var base *sim.Result
				var err error
				benign, baseIPC, base, err = benignBaseline(cfg, p.BenignCores, p.TraceRecords, rc.spec.Seed)
				if err != nil {
					return nil, fmt.Errorf("trr-dodge %w", err)
				}
				benignDesc = fmt.Sprintf("%d benign cores, MPKI %.0f", p.BenignCores, base.MPKI)
			}
			keys, cells := trrDodgeGrid(p, rc.spec.Seed)
			co := cellOptions{
				MemCycles:     p.MemCycles,
				AttackRecords: p.AttackRecords,
				ECC:           p.ECC,
			}
			meta := sweepMeta{
				MemCycles: p.MemCycles,
				WallMS:    float64(p.MemCycles) * float64(cfg.T.TCKPS) * 1e-9,
				Benign:    benignDesc,
				ECC:       p.ECC,
			}
			return gridResult(rc, meta, keys, cells,
				func(ctx engine.TaskContext, dc dodgeCell) (DodgePoint, error) {
					pt, obs, mech, err := runSweepCellObs(cfg, co, dc.cell, benign, baseIPC, ctx.Seed)
					if err != nil {
						return DodgePoint{}, fmt.Errorf("%s duty=%s phase=%s: %w",
							dc.cell.Pattern, fmtAxis(dc.cell.duty), fmtAxis(dc.cell.phase), err)
					}
					dp := DodgePoint{
						Pattern:           dc.cell.Pattern,
						DutyCycle:         dc.cell.duty,
						Phase:             dc.cell.phase,
						SampleRate:        dc.rate,
						TableSize:         dc.tbl,
						HCFirst:           dc.cell.HC,
						EscapedFlips:      pt.EscapedFlips,
						RawFlips:          pt.RawFlips,
						TimeToFirstFlipMS: pt.TimeToFirstFlipMS,
						AggressorACTs:     pt.AggressorACTs,
						AggACTsPerSec:     pt.AggACTsPerSec,
						BenignPerfPct:     pt.BenignPerfPct,
						OverheadPct:       pt.OverheadPct,
					}
					if obs != nil {
						var agg, max int64
						for _, w := range obs.Timeline() {
							agg += w.AggressorACTs
							if w.AggressorACTs > max {
								max = w.AggressorACTs
							}
							if w.Flips > 0 {
								dp.FlipWindows++
							}
						}
						dp.REFWindows = len(obs.Timeline())
						dp.MaxWindowAggACTs = max
						if dp.REFWindows > 0 {
							dp.MeanWindowAggACTs = float64(agg) / float64(dp.REFWindows)
						}
					}
					if trr, ok := mech.(*mitigation.TRR); ok {
						dp.SamplerSamples = trr.Samples()
						dp.SamplerRefreshes = trr.VictimRefreshes()
					}
					return dp, nil
				})
		},
		finalize: func(res *Result) (Artifact, error) {
			var p TRRDodgeParams
			if err := decodeParams(res.Spec.Params, &p); err != nil {
				return nil, err
			}
			p = p.normalized()
			var meta sweepMeta
			if err := json.Unmarshal(res.Meta, &meta); err != nil {
				return nil, fmt.Errorf("core: trr-dodge meta: %w", err)
			}
			keys, _ := trrDodgeGrid(p, res.Spec.Seed)
			points, err := cellsInOrder[DodgePoint](res, keys)
			if err != nil {
				return nil, err
			}
			return &TRRDodge{
				Points:    points,
				MemCycles: meta.MemCycles,
				WallMS:    meta.WallMS,
				Benign:    meta.Benign,
				ECC:       meta.ECC,
			}, nil
		},
	})
}

// samplerKey groups points by sampler configuration and pattern for the
// dodge verdict.
type samplerKey struct {
	rate float64
	tbl  int
	pat  attack.Kind
}

// PointFor returns the cell for one exact coordinate, if present.
func (d *TRRDodge) PointFor(pat attack.Kind, duty, phase, rate float64, tbl int) (DodgePoint, bool) {
	for _, p := range d.Points {
		if p.Pattern == pat && p.DutyCycle == duty && p.Phase == phase &&
			p.SampleRate == rate && p.TableSize == tbl {
			return p, true
		}
	}
	return DodgePoint{}, false
}

// Dodges returns the paced points that escaped flips while the full-rate
// baseline of the same (sampler, pattern) group escaped none — the
// experiment's headline finding when non-empty.
func (d *TRRDodge) Dodges() []DodgePoint {
	blocked := map[samplerKey]bool{}
	for _, p := range d.Points {
		if p.DutyCycle == 0 && p.EscapedFlips == 0 {
			blocked[samplerKey{p.SampleRate, p.TableSize, p.Pattern}] = true
		}
	}
	var out []DodgePoint
	for _, p := range d.Points {
		if p.DutyCycle > 0 && p.EscapedFlips > 0 &&
			blocked[samplerKey{p.SampleRate, p.TableSize, p.Pattern}] {
			out = append(out, p)
		}
	}
	return out
}

// Format renders the study.
func (d *TRRDodge) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TRR dodge study: paced attacks vs the in-DRAM sampler (%.2f ms window, %s", d.WallMS, d.Benign)
	if d.ECC {
		sb.WriteString(", on-die ECC")
	}
	sb.WriteString(")\n")

	sb.WriteString(table(func(w *tabwriter.Writer) {
		header := "pattern\tduty\tphase\trate\ttable\tflips\tt-first-flip\taggACT/s\twinACTs\tsampled\ttrrRef\tbenign perf%\toverhead%"
		if d.ECC {
			header = "pattern\tduty\tphase\trate\ttable\tflips\traw\tt-first-flip\taggACT/s\twinACTs\tsampled\ttrrRef\tbenign perf%\toverhead%"
		}
		fmt.Fprintln(w, header)
		for _, p := range d.Points {
			ttff := "-"
			if p.TimeToFirstFlipMS >= 0 {
				ttff = fmt.Sprintf("%.3fms", p.TimeToFirstFlipMS)
			}
			duty := "full"
			if p.DutyCycle > 0 {
				duty = fmtAxis(p.DutyCycle)
			}
			benign := "-"
			if p.BenignPerfPct >= 0 {
				benign = fmt.Sprintf("%.1f", p.BenignPerfPct)
			}
			if d.ECC {
				fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\t%d\t%s\t%.2fM\t%.0f\t%d\t%d\t%s\t%.3f\n",
					p.Pattern, duty, fmtAxis(p.Phase), fmtAxis(p.SampleRate), p.TableSize,
					p.EscapedFlips, p.RawFlips, ttff, p.AggACTsPerSec/1e6,
					p.MeanWindowAggACTs, p.SamplerSamples, p.SamplerRefreshes,
					benign, p.OverheadPct)
			} else {
				fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\t%s\t%.2fM\t%.0f\t%d\t%d\t%s\t%.3f\n",
					p.Pattern, duty, fmtAxis(p.Phase), fmtAxis(p.SampleRate), p.TableSize,
					p.EscapedFlips, ttff, p.AggACTsPerSec/1e6,
					p.MeanWindowAggACTs, p.SamplerSamples, p.SamplerRefreshes,
					benign, p.OverheadPct)
			}
		}
	}))

	sb.WriteString("\nwinACTs: mean aggressor ACTs per REF interval (the attack's loudness at TRR's own granularity);\n")
	sb.WriteString("sampled: activations the sampler observed; trrRef: neighbour refreshes its REFs issued.\n")

	dodges := d.Dodges()
	if len(dodges) == 0 {
		sb.WriteString("\nNo paced attack escaped a sampler configuration that blocks full-rate hammering on this grid.\n")
	} else {
		fmt.Fprintf(&sb, "\nDodges (%d): paced attacks escaping a sampler that blocks the same attack at full rate:\n", len(dodges))
		for _, p := range dodges {
			fmt.Fprintf(&sb, "  %s duty=%s phase=%s vs rate=%s table=%d: %d flips (sampler saw %d ACTs; full-rate: 0 flips)\n",
				p.Pattern, fmtAxis(p.DutyCycle), fmtAxis(p.Phase), fmtAxis(p.SampleRate), p.TableSize,
				p.EscapedFlips, p.SamplerSamples)
		}
	}
	return sb.String()
}
