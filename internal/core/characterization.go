package core

import (
	"math"
	"sort"

	"repro/internal/charact"
	"repro/internal/chips"
	"repro/internal/faultmodel"
	"repro/internal/stats"
)

// The characterization experiments (Tables 1–5, 7, 8 and Figures 4–9)
// live in the experiment registry (see regchar.go for the task grids and
// per-chip cell runners). This file keeps the artifact types, the
// aggregation logic that turns ordered per-chip cells into each
// artifact, and the legacy RunX(Options) wrappers, which now build a
// spec and route through Run — one code path whether an experiment runs
// in-process, sharded across machines, or from a spec file.

// newTester instantiates a population chip and wraps it in a tester with
// its worst-case pattern written, the state every experiment starts from.
func newTester(pop *chips.Population, spec chips.ChipSpec) (*charact.Tester, error) {
	chip, err := pop.Instantiate(spec)
	if err != nil {
		return nil, err
	}
	t, err := charact.NewTester(chip, 0)
	if err != nil {
		return nil, err
	}
	t.WritePattern(chip.Config().WorstPattern)
	return t, nil
}

// chipJob is one (configuration, chip) cell of an experiment fan-out. Every
// job is self-contained — it instantiates its own chip from the spec's seed
// — so the engine can run jobs in any order without coupling results.
type chipJob struct {
	cfg  int // index into the runner's ConfigKey slice
	key  ConfigKey
	spec chips.ChipSpec
}

// chipGrid flattens the per-configuration chip lists into a flat task list
// in configuration order, optionally filtering chips. Task order doubles as
// aggregation order, so per-configuration statistics accumulate exactly as
// the original serial loops did.
func chipGrid(keys []ConfigKey, byCfg map[ConfigKey][]chips.ChipSpec, keep func(ConfigKey, chips.ChipSpec) bool) []chipJob {
	var jobs []chipJob
	for ci, k := range keys {
		for _, spec := range byCfg[k] {
			if keep != nil && !keep(k, spec) {
				continue
			}
			jobs = append(jobs, chipJob{cfg: ci, key: k, spec: spec})
		}
	}
	return jobs
}

// repGrid builds one job per configuration using its representative chip.
func repGrid(keys []ConfigKey, byCfg map[ConfigKey][]chips.ChipSpec, keep func(ConfigKey, chips.ChipSpec) bool) []chipJob {
	var jobs []chipJob
	for ci, k := range keys {
		spec, ok := representative(byCfg[k])
		if !ok {
			continue
		}
		if keep != nil && !keep(k, spec) {
			continue
		}
		jobs = append(jobs, chipJob{cfg: ci, key: k, spec: spec})
	}
	return jobs
}

// groupByConfig buckets cells back into per-configuration lists,
// preserving task order within each configuration.
func groupByConfig[R any](nCfg int, jobs []chipJob, results []R) [][]R {
	out := make([][]R, nCfg)
	for i, j := range jobs {
		out[j.cfg] = append(out[j.cfg], results[i])
	}
	return out
}

// --- Table 1 ---------------------------------------------------------------

// Table1 is the chip-population census.
type Table1 struct {
	Rows []chips.CensusRow
}

// RunTable1 tabulates the population.
func RunTable1(o Options) (*Table1, error) {
	art, err := runOptions("table1", o)
	if err != nil {
		return nil, err
	}
	return art.(*Table1), nil
}

// --- Table 2 ---------------------------------------------------------------

// Table2Row is one cell of Table 2: RowHammerable DDR3 chips.
type Table2Row struct {
	Key        ConfigKey
	Vulnerable int
	Total      int
}

// Table2 reports the fraction of DDR3 chips with any flips at HC < 150k.
type Table2 struct {
	Rows []Table2Row
}

// RunTable2 counts RowHammerable chips over the full module list (ground
// truth census; Section 5.1 defines RowHammerable as flipping within the
// 150k sweep).
func RunTable2(o Options) (*Table2, error) {
	art, err := runOptions("table2", o)
	if err != nil {
		return nil, err
	}
	return art.(*Table2), nil
}

// --- Figure 4 / Table 3 ----------------------------------------------------

// CoverageRow is one configuration's Figure 4 subplot plus its Table 3
// worst-case pattern.
type CoverageRow struct {
	Key        ConfigKey
	Chip       string
	Coverage   map[faultmodel.Pattern]float64
	TotalFlips int
	Worst      faultmodel.Pattern
	WorstOK    bool // false when not enough flips (paper's empty cells)
	PaperWorst faultmodel.Pattern
}

// Figure4 holds per-configuration data-pattern coverages.
type Figure4 struct {
	HC   int
	Rows []CoverageRow
}

// figure4HC is the paper's Section 5.2 hammer count.
const figure4HC = 150_000

// RunFigure4 measures pattern coverage on one representative chip per
// configuration (10 iterations at HC = 150k, Section 5.2). Table 3 falls
// out of the same data via WorstPattern.
func RunFigure4(o Options) (*Figure4, error) {
	art, err := runOptions("fig4", o)
	if err != nil {
		return nil, err
	}
	return art.(*Figure4), nil
}

// Table3 derives the worst-case pattern table from Figure 4's data.
type Table3 struct {
	Rows []CoverageRow
}

// RunTable3 measures the worst-case data pattern per configuration.
func RunTable3(o Options) (*Table3, error) {
	art, err := runOptions("table3", o)
	if err != nil {
		return nil, err
	}
	return art.(*Table3), nil
}

// --- Figure 5 --------------------------------------------------------------

// RateSeries is one configuration's HC → flip-rate curve with its log-log
// fit (Observation 4).
type RateSeries struct {
	Key    ConfigKey
	Points map[int]float64 // HC → mean rate across chips
	Slope  float64         // log-log slope
	R2     float64
	Chips  int
}

// Figure5 aggregates rate curves per configuration.
type Figure5 struct {
	HCs  []int
	Rows []RateSeries
}

// RunFigure5 sweeps the hammer count across chips of every configuration
// and averages the flip rate per HC (Section 5.3).
func RunFigure5(o Options) (*Figure5, error) {
	art, err := runOptions("fig5", o)
	if err != nil {
		return nil, err
	}
	return art.(*Figure5), nil
}

// finalizeFigure5 aggregates ordered per-chip curves per configuration.
func finalizeFigure5(keys []ConfigKey, jobs []chipJob, curves []map[int]float64) *Figure5 {
	hcs := charact.DefaultRateHCs()
	fig := &Figure5{HCs: hcs}
	for ci, perChip := range groupByConfig(len(keys), jobs, curves) {
		if len(perChip) == 0 {
			continue
		}
		sums := make(map[int]float64, len(hcs))
		for _, curve := range perChip {
			// Each bucket receives one addend per chip, in perChip order;
			// map order only picks which bucket is touched first.
			//rhlint:allow mapiter(per-bucket addend order fixed by perChip slice order)
			for hc, r := range curve {
				sums[hc] += r
			}
		}
		n := len(perChip)
		s := RateSeries{Key: keys[ci], Points: make(map[int]float64), Chips: n}
		var xs, ys []float64
		for _, hc := range hcs {
			mean := sums[hc] / float64(n)
			s.Points[hc] = mean
			if mean > 0 {
				xs = append(xs, float64(hc))
				ys = append(ys, mean)
			}
		}
		if len(xs) >= 2 {
			if fit, err := stats.FitLogLog(xs, ys); err == nil {
				s.Slope, s.R2 = fit.Slope, fit.R2
			}
		}
		fig.Rows = append(fig.Rows, s)
	}
	return fig
}

// --- Figure 6 / Figure 7 ---------------------------------------------------

// SpatialRow is one configuration's Figure 6 subplot: mean fraction of
// flips per victim-relative row offset, with standard deviation across
// chips.
type SpatialRow struct {
	Key      ConfigKey
	Mean     map[int]float64
	StdDev   map[int]float64
	Chips    int
	TargetHC string // description of the normalization
}

// Figure6 is the spatial-distribution study.
type Figure6 struct {
	TargetRate float64
	Rows       []SpatialRow
}

// spatialCell is one chip's Figure 6 cell; nil marks a chip that
// produced no flips at the normalized rate.
type spatialCell struct {
	Fraction map[int]float64 `json:"fraction"`
}

// normalizedRate is the paper's Figure 6/7 target flip rate.
const normalizedRate = 1e-6

// RunFigure6 normalizes each chip to a flip rate of ~1e-6 (the paper's
// procedure) and profiles flip locations.
func RunFigure6(o Options) (*Figure6, error) {
	art, err := runOptions("fig6", o)
	if err != nil {
		return nil, err
	}
	return art.(*Figure6), nil
}

// finalizeFigure6 aggregates ordered per-chip spatial cells.
func finalizeFigure6(keys []ConfigKey, jobs []chipJob, samples []*spatialCell) *Figure6 {
	fig := &Figure6{TargetRate: normalizedRate}
	for ci, group := range groupByConfig(len(keys), jobs, samples) {
		perOffset := make(map[int][]float64)
		n := 0
		for _, s := range group {
			if s == nil {
				continue
			}
			//rhlint:allow mapiter(one element per chip per offset; per-offset order fixed by group order)
			for off, f := range s.Fraction {
				perOffset[off] = append(perOffset[off], f)
			}
			n++
		}
		if n == 0 {
			continue
		}
		row := SpatialRow{Key: keys[ci], Mean: make(map[int]float64), StdDev: make(map[int]float64), Chips: n}
		//rhlint:allow mapiter(independent per-key writes; JSON encoding sorts the keys)
		for off, fs := range perOffset {
			// Chips without flips at this offset contribute zero.
			for len(fs) < n {
				fs = append(fs, 0)
			}
			row.Mean[off] = stats.Mean(fs)
			row.StdDev[off] = stats.StdDev(fs)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// WordDensityRow is one configuration's Figure 7 subplot.
type WordDensityRow struct {
	Key      ConfigKey
	Fraction [6]float64 // mean fraction of flip-containing words with k flips
	StdDev   [6]float64
	Chips    int
}

// Figure7 is the flips-per-64-bit-word study.
type Figure7 struct {
	TargetRate float64
	Rows       []WordDensityRow
}

// wordCell is one chip's Figure 7 cell; nil marks a chip whose
// normalized run produced no flip-containing words.
type wordCell struct {
	Fraction [6]float64 `json:"fraction"`
}

// RunFigure7 measures the flip-density distribution per 64-bit word at
// the same normalized rate as Figure 6.
func RunFigure7(o Options) (*Figure7, error) {
	art, err := runOptions("fig7", o)
	if err != nil {
		return nil, err
	}
	return art.(*Figure7), nil
}

// finalizeFigure7 aggregates ordered per-chip word-density cells.
func finalizeFigure7(keys []ConfigKey, jobs []chipJob, samples []*wordCell) *Figure7 {
	fig := &Figure7{TargetRate: normalizedRate}
	for ci, group := range groupByConfig(len(keys), jobs, samples) {
		var perK [6][]float64
		n := 0
		for _, s := range group {
			if s == nil {
				continue
			}
			for i := 1; i <= 5; i++ {
				perK[i] = append(perK[i], s.Fraction[i])
			}
			n++
		}
		if n == 0 {
			continue
		}
		row := WordDensityRow{Key: keys[ci], Chips: n}
		for i := 1; i <= 5; i++ {
			row.Fraction[i] = stats.Mean(perK[i])
			row.StdDev[i] = stats.StdDev(perK[i])
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// --- Figure 8 / Table 4 ----------------------------------------------------

// HCFirstRow is one configuration's HCfirst distribution (Figure 8's
// box-and-whisker) and minimum (Table 4).
type HCFirstRow struct {
	Key      ConfigKey
	Measured []float64 // per RowHammerable chip, in hammers
	NoFlips  int       // chips with no flips within the sweep
	Box      stats.BoxPlot
	MinHC    float64
	PaperMin float64
}

// HCFirstStudy is the shared data behind Figure 8 and Table 4.
type HCFirstStudy struct {
	Rows []HCFirstRow
}

// hcFirstCell is one chip's first-flip search result.
type hcFirstCell struct {
	HC    float64 `json:"hc"`
	Found bool    `json:"found"`
}

// RunHCFirstStudy measures HCfirst for every instantiated chip.
func RunHCFirstStudy(o Options) (*HCFirstStudy, error) {
	art, err := runOptions("fig8", o)
	if err != nil {
		return nil, err
	}
	return art.(*Figure8).HCFirstStudy, nil
}

// finalizeHCFirst aggregates ordered per-chip first-flip cells.
func finalizeHCFirst(keys []ConfigKey, jobs []chipJob, samples []hcFirstCell) (*HCFirstStudy, error) {
	study := &HCFirstStudy{}
	for ci, group := range groupByConfig(len(keys), jobs, samples) {
		if len(group) == 0 {
			continue
		}
		k := keys[ci]
		row := HCFirstRow{Key: k}
		row.PaperMin, _ = chips.PaperHCFirst(k.Node, k.Mfr)
		for _, s := range group {
			if !s.Found {
				row.NoFlips++
				continue
			}
			row.Measured = append(row.Measured, s.HC)
		}
		if len(row.Measured) > 0 {
			box, err := stats.NewBoxPlot(row.Measured)
			if err != nil {
				return nil, err
			}
			row.Box = box
			row.MinHC, _ = stats.Min(row.Measured)
		} else {
			row.MinHC = math.NaN()
		}
		study.Rows = append(study.Rows, row)
	}
	return study, nil
}

// Figure8 and Table4 are the two renderings of the HCfirst study,
// distinct artifacts over the same cells.
type Figure8 struct{ *HCFirstStudy }

// Format renders the Figure 8 box-and-whisker view.
func (f *Figure8) Format() string { return f.FormatFigure8() }

// Table4 is the minimum-HCfirst rendering of the study.
type Table4 struct{ *HCFirstStudy }

// Format renders the Table 4 view.
func (t *Table4) Format() string { return t.FormatTable4() }

// --- Figure 9 --------------------------------------------------------------

// ECCRow is one configuration's Figure 9 bars: mean HC to find the first
// 64-bit word with 1, 2 and 3 flips, and the multipliers between them.
type ECCRow struct {
	Key         ConfigKey
	MeanHC      [4]float64 // index k = flips per word; [0] unused
	StdHC       [4]float64
	Multipliers [3][]float64 // [1]=HC2/HC1, [2]=HC3/HC2 across chips
	Chips       int
}

// Figure9 is the ECC-granularity analysis. LPDDR4 chips are excluded, as
// in the paper (their on-die ECC obfuscates the raw flips).
type Figure9 struct {
	Rows []ECCRow
}

// eccCell is one chip's word-granularity analysis.
type eccCell struct {
	HC     [4]float64 `json:"hc"`
	Found  [4]bool    `json:"found"`
	Mult   [3]float64 `json:"mult"`
	MultOK [3]bool    `json:"mult_ok"`
}

// RunFigure9 computes HCfirst/second/third at 64-bit granularity per
// configuration.
func RunFigure9(o Options) (*Figure9, error) {
	art, err := runOptions("fig9", o)
	if err != nil {
		return nil, err
	}
	return art.(*Figure9), nil
}

// finalizeFigure9 aggregates ordered per-chip ECC-word cells.
func finalizeFigure9(keys []ConfigKey, jobs []chipJob, samples []eccCell) *Figure9 {
	fig := &Figure9{}
	for ci, group := range groupByConfig(len(keys), jobs, samples) {
		if len(group) == 0 {
			continue
		}
		var hcs [4][]float64
		row := ECCRow{Key: keys[ci], Chips: len(group)}
		for _, s := range group {
			for kk := 1; kk <= 3; kk++ {
				if s.Found[kk] {
					hcs[kk] = append(hcs[kk], s.HC[kk])
				}
			}
			for kk := 1; kk <= 2; kk++ {
				if s.MultOK[kk] {
					row.Multipliers[kk] = append(row.Multipliers[kk], s.Mult[kk])
				}
			}
		}
		for kk := 1; kk <= 3; kk++ {
			row.MeanHC[kk] = stats.Mean(hcs[kk])
			row.StdHC[kk] = stats.StdDev(hcs[kk])
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// --- Table 5 ---------------------------------------------------------------

// Table5Row is one configuration's monotonicity percentage.
type Table5Row struct {
	Key     ConfigKey
	Percent float64
	Cells   int
}

// Table5 is the flip-probability monotonicity study.
type Table5 struct {
	Iterations int
	Rows       []Table5Row
}

// RunTable5 measures, per configuration, the share of flipping cells
// whose flip probability increases monotonically with HC (Section 5.6).
// Configurations that are not RowHammerable are skipped like the paper's
// DDR3-old rows.
func RunTable5(o Options) (*Table5, error) {
	art, err := runOptions("table5", o)
	if err != nil {
		return nil, err
	}
	return art.(*Table5), nil
}

// --- Tables 7 and 8 --------------------------------------------------------

// ModuleTable reproduces the appendix module tables.
type ModuleTable struct {
	Title   string
	Modules []chips.ModuleSpec
}

// RunTable7 returns the DDR4 module population.
func RunTable7() *ModuleTable {
	return &ModuleTable{Title: "Table 7: DDR4 modules", Modules: chips.DDR4Modules()}
}

// RunTable8 returns the DDR3 module population.
func RunTable8() *ModuleTable {
	return &ModuleTable{Title: "Table 8: DDR3 modules", Modules: chips.DDR3Modules()}
}

// sortedOffsets returns the keys of an offset map in ascending order.
func sortedOffsets(m map[int]float64) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// runOptions is the legacy-wrapper path: convert Options to a spec, run
// it unsharded, and finalize the artifact.
func runOptions(name string, o Options) (Artifact, error) {
	p, err := o.charParams()
	if err != nil {
		return nil, err
	}
	return runSpecArtifact(name, o.Seed, p, Exec{Parallelism: o.Parallelism})
}
