package core

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/faultmodel"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The attack evaluation is the experiment the paper doesn't contain:
// Figure 10 measures what mitigations cost on benign workloads; this
// measures what they prevent. A (mechanism × attack pattern × HCfirst)
// grid of mixed attacker+benign simulations runs with a calibrated
// faultmodel.Chip coupled to the controller's command stream through the
// attack.Observer, reporting security outcomes (escaped flips, time to
// first flip, achieved aggressor ACT rate) next to the familiar
// performance metrics (benign slowdown under attack, bandwidth overhead).

// AttackOptions scales the attack evaluation.
type AttackOptions struct {
	Patterns   []attack.Kind
	Mechanisms []MechanismID
	HCSweep    []int

	// BenignCores is the count of benign workload cores sharing the
	// system with the single attacker core (paper's Table 6 system has 8
	// cores; default 3 benign + 1 attacker keeps the grid tractable).
	BenignCores int
	// TraceRecords sizes the benign traces.
	TraceRecords int
	// MemCycles is the attack duration in memory-clock cycles. The
	// default (~2.5 ms of DDR4-2400 time) models the worst-case slice of
	// a refresh window: the victim gets no auto-refresh help, so the
	// mechanism alone must stop the accumulation.
	MemCycles int64
	// Rows overrides rows per bank (chip and channel geometry) so tests
	// can shrink the system; 0 keeps the Table 6 value.
	Rows int

	// AttackRecords sizes one attacker trace pass (0 = pattern default).
	AttackRecords int

	Parallelism int
	Seed        uint64
}

// DefaultAttackOptions is the CLI-scale configuration.
func DefaultAttackOptions() AttackOptions {
	return AttackOptions{
		Patterns:     attack.Kinds(),
		Mechanisms:   DefaultAttackMechanisms(),
		HCSweep:      []int{10_000, 4_800, 2_000, 512},
		BenignCores:  3,
		TraceRecords: 2_000,
		MemCycles:    3_000_000,
		Seed:         1,
	}
}

// DefaultAttackMechanisms lists the attack evaluation's default
// contenders: the unprotected baseline, the paper's most scalable
// refresh-based mechanism, the post-paper throttling design, and the
// oracle bound.
func DefaultAttackMechanisms() []MechanismID {
	return []MechanismID{MechNone, MechPARA, MechBlockHammer, MechIdeal}
}

func (o AttackOptions) normalized() AttackOptions {
	d := DefaultAttackOptions()
	if len(o.Patterns) == 0 {
		o.Patterns = d.Patterns
	}
	if len(o.Mechanisms) == 0 {
		o.Mechanisms = d.Mechanisms
	}
	if len(o.HCSweep) == 0 {
		o.HCSweep = d.HCSweep
	}
	if o.BenignCores <= 0 {
		o.BenignCores = d.BenignCores
	}
	if o.TraceRecords <= 0 {
		o.TraceRecords = d.TraceRecords
	}
	if o.MemCycles <= 0 {
		o.MemCycles = d.MemCycles
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// AttackPoint is one grid point's outcome.
type AttackPoint struct {
	Mechanism MechanismID
	Pattern   attack.Kind
	HCFirst   int
	Viable    bool

	// Security metrics.
	EscapedFlips      int
	TimeToFirstFlipMS float64 // -1 when no flip escaped
	AggressorACTs     int64
	AggACTsPerSec     float64

	// Performance metrics.
	BenignPerfPct float64 // benign weighted speedup vs. unattacked baseline, %
	OverheadPct   float64 // Figure 10a's DRAM bandwidth overhead metric
	// ThrottleStallCycles approximates memory cycles in which a throttling
	// mechanism held back a schedulable request.
	ThrottleStallCycles int64
}

// AttackEval is the full grid result.
type AttackEval struct {
	Points    []AttackPoint
	MemCycles int64
	WallMS    float64 // simulated attack duration
	Benign    string  // benign mix description
}

// attackSimConfig builds the simulated system for the evaluation.
func attackSimConfig(o AttackOptions) sim.Config {
	cfg := sim.Table6Config(0, 1)
	if o.Rows > 0 {
		cfg.Geo.Rows = o.Rows
		cfg.T = dram.DDR4_2400(o.Rows)
	}
	cfg.WarmupInsts = 0
	cfg.MeasureInsts = 1 << 40 // duration-terminated: MaxCPUCycles decides
	cfg.MaxCPUCycles = o.MemCycles * int64(cfg.CPUFreqMHz) / int64(cfg.MemFreqMHz)
	return cfg
}

// attackChip builds the victim chip for an HCfirst point: a DDR4-like
// part spanning the simulated channel, blast radius 1, no on-die ECC, so
// escaped flips are directly attributable.
func attackChip(cfg sim.Config, hc int, seed uint64) (*faultmodel.Chip, error) {
	chip, err := faultmodel.NewChip(faultmodel.Config{
		Name:         fmt.Sprintf("attacked-hc%d", hc),
		Banks:        cfg.Geo.Banks(),
		Rows:         cfg.Geo.Rows,
		RowBits:      1024,
		HCFirst:      float64(hc),
		Rate150k:     5e-5,
		WorstPattern: faultmodel.RowStripe0,
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	chip.WriteAll(faultmodel.RowStripe0)
	return chip, nil
}

// RunAttackEval evaluates every (mechanism, pattern, HCfirst) grid point.
// Phase 1 measures the benign cores alone (no attacker, no mitigation) as
// the performance baseline; phase 2 fans the grid out over the experiment
// engine, so results are bit-identical for any Parallelism.
func RunAttackEval(o AttackOptions) (*AttackEval, error) {
	o = o.normalized()
	cfg := attackSimConfig(o)
	benign := trace.Mixes(1, o.BenignCores, o.TraceRecords, o.Seed)[0]
	benign.Name = "benign"

	base, err := sim.Run(cfg, benign)
	if err != nil {
		return nil, fmt.Errorf("attack eval baseline: %w", err)
	}
	baseIPC := base.IPC
	for i, v := range baseIPC {
		if v <= 0 {
			return nil, fmt.Errorf("attack eval baseline: core %d IPC is zero", i)
		}
	}

	type job struct {
		mech    MechanismID
		pattern attack.Kind
		hc      int
		// streamSeed derives from (pattern, HCfirst) only — never the
		// mechanism — so every mechanism at a grid point faces the *same*
		// chip (same weakest cell, same thresholds) and the same attacker
		// stream. Anything else would confound cross-mechanism comparison.
		streamSeed uint64
	}
	var jobs []job
	for _, id := range o.Mechanisms {
		for pi, p := range o.Patterns {
			for hi, hc := range o.HCSweep {
				jobs = append(jobs, job{
					mech: id, pattern: p, hc: hc,
					streamSeed: engine.DeriveSeed(o.Seed^0x57eea, uint64(pi*len(o.HCSweep)+hi)),
				})
			}
		}
	}
	eo := engine.Options{Workers: o.Parallelism, Seed: o.Seed}
	points, err := engine.Map(eo, jobs, func(ctx engine.TaskContext, jb job) (AttackPoint, error) {
		pt, err := runAttackPoint(cfg, o, jb.mech, jb.pattern, jb.hc, benign, baseIPC, jb.streamSeed, ctx.Seed)
		if err != nil {
			return AttackPoint{}, fmt.Errorf("%s/%s hc=%d: %w", jb.mech, jb.pattern, jb.hc, err)
		}
		return *pt, nil
	})
	if err != nil {
		return nil, err
	}
	// engine.Map returns results in job order, so Points already follow
	// the caller's mechanism × pattern × HCfirst nesting.
	return &AttackEval{
		Points:    points,
		MemCycles: o.MemCycles,
		WallMS:    float64(o.MemCycles) * float64(cfg.T.TCKPS) * 1e-9,
		Benign:    fmt.Sprintf("%d benign cores, MPKI %.0f", o.BenignCores, base.MPKI),
	}, nil
}

// runAttackPoint runs one mixed attacker+benign simulation. streamSeed
// fixes the chip and attacker stream per (pattern, HCfirst) grid point;
// mechSeed is the per-task seed for mechanism-internal randomness.
func runAttackPoint(cfg sim.Config, o AttackOptions, id MechanismID, kind attack.Kind,
	hc int, benign trace.Mix, baseIPC []float64, streamSeed, mechSeed uint64,
) (*AttackPoint, error) {
	chip, err := attackChip(cfg, hc, streamSeed)
	if err != nil {
		return nil, err
	}
	mech, err := buildMechanism(id, cfg, hc, mechSeed^0x3eca)
	if err != nil {
		return nil, err
	}

	// The attacker has profiled the chip (the strong threat model of
	// Section 6): aim at the weakest cell's row.
	weak := chip.WeakestCell()
	spec := attack.Spec{Kind: kind, Records: o.AttackRecords, Seed: streamSeed ^ 0xdec0}
	attackTrace, aggressors, err := spec.Synthesize(cfg.Geo, attack.Target{Bank: weak.Bank, Row: weak.Row})
	if err != nil {
		return nil, err
	}

	obs := attack.NewObserver(chip)
	obs.WatchAggressors(aggressors)

	mix := trace.Mix{Name: "attack-" + string(kind), Traces: []*trace.Trace{attackTrace}}
	mix.Traces = append(mix.Traces, benign.Traces...)

	runCfg := cfg
	runCfg.Mechanism = mech
	runCfg.Observer = obs
	res, err := sim.Run(runCfg, mix)
	if err != nil {
		return nil, err
	}

	pt := &AttackPoint{
		Mechanism:           id,
		Pattern:             kind,
		HCFirst:             hc,
		Viable:              true,
		EscapedFlips:        obs.EscapedFlips(),
		AggressorACTs:       obs.AggressorACTs(),
		OverheadPct:         res.BandwidthOverheadPct,
		ThrottleStallCycles: res.Ctrl.ThrottleStallCycles,
	}
	if v, ok := mech.(mitigation.Viability); ok {
		pt.Viable = v.Viable()
	}
	pt.TimeToFirstFlipMS = -1
	if c := obs.FirstFlipCycle(); c >= 0 {
		pt.TimeToFirstFlipMS = float64(c) * float64(cfg.T.TCKPS) * 1e-9
	}
	if secs := float64(o.MemCycles) * float64(cfg.T.TCKPS) * 1e-12; secs > 0 {
		pt.AggACTsPerSec = float64(obs.AggressorACTs()) / secs
	}
	// Benign performance under attack: weighted speedup of the benign
	// cores (positions 1..N in the mix) against their unattacked,
	// unmitigated baseline.
	ws := 0.0
	for i, b := range baseIPC {
		ws += res.IPC[i+1] / b
	}
	pt.BenignPerfPct = 100 * ws / float64(len(baseIPC))
	return pt, nil
}

// PointsFor filters the grid for one mechanism, in report order.
func (e *AttackEval) PointsFor(id MechanismID) []AttackPoint {
	var out []AttackPoint
	for _, p := range e.Points {
		if p.Mechanism == id {
			out = append(out, p)
		}
	}
	return out
}

// Format renders the attack evaluation.
func (e *AttackEval) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Attack evaluation: mitigations under adversarial hammering (%.2f ms window, %s)\n",
		e.WallMS, e.Benign)

	var order []MechanismID
	seen := map[MechanismID]bool{}
	for _, p := range e.Points {
		if !seen[p.Mechanism] {
			seen[p.Mechanism] = true
			order = append(order, p.Mechanism)
		}
	}

	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "mechanism\tpattern\tHCfirst\tflips\tt-first-flip\taggACT/s\tbenign perf%\toverhead%\tviable")
		for _, id := range order {
			for _, p := range e.PointsFor(id) {
				ttff := "-"
				if p.TimeToFirstFlipMS >= 0 {
					ttff = fmt.Sprintf("%.3fms", p.TimeToFirstFlipMS)
				}
				fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%s\t%.2fM\t%.1f\t%.3f\t%v\n",
					p.Mechanism, p.Pattern, p.HCFirst, p.EscapedFlips, ttff,
					p.AggACTsPerSec/1e6, p.BenignPerfPct, p.OverheadPct, p.Viable)
			}
		}
	}))

	// Security verdict summary: a mechanism "holds" at a point when no
	// flip escaped.
	var insecure []string
	for _, p := range e.Points {
		if p.Mechanism != MechNone && p.EscapedFlips > 0 {
			insecure = append(insecure,
				fmt.Sprintf("%s vs %s @ %d (%d flips)", p.Mechanism, p.Pattern, p.HCFirst, p.EscapedFlips))
		}
	}
	if len(insecure) == 0 {
		sb.WriteString("\nAll evaluated mechanisms prevented every bit flip on this grid.\n")
	} else {
		fmt.Fprintf(&sb, "\nBroken configurations (%d):\n", len(insecure))
		for _, s := range insecure {
			sb.WriteString("  " + s + "\n")
		}
	}
	return sb.String()
}

// MaxEscaped returns the largest escaped-flip count for a mechanism
// across the grid (diagnostics and tests).
func (e *AttackEval) MaxEscaped(id MechanismID) int {
	max := math.MinInt
	for _, p := range e.PointsFor(id) {
		if p.EscapedFlips > max {
			max = p.EscapedFlips
		}
	}
	if max == math.MinInt {
		return 0
	}
	return max
}
