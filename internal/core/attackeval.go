package core

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"repro/internal/attack"
	"repro/internal/engine"
)

// The attack evaluation is the experiment the paper doesn't contain:
// Figure 10 measures what mitigations cost on benign workloads; this
// measures what they prevent. A (mechanism × attack pattern × HCfirst)
// grid of mixed attacker+benign simulations runs with a calibrated
// faultmodel.Chip coupled to the controller's command stream through the
// attack.Observer, reporting security outcomes (escaped flips, time to
// first flip, achieved aggressor ACT rate) next to the familiar
// performance metrics (benign slowdown under attack, bandwidth overhead).
// It shares its baseline and per-cell machinery with RunParetoSweep (see
// paretosweep.go); the difference is the reporting axis — per-pattern
// points here, worst-case frontier aggregates there.

// AttackOptions scales the attack evaluation.
type AttackOptions struct {
	Patterns   []attack.Kind
	Mechanisms []MechanismID
	HCSweep    []int

	// Scheduler selects the controller's scheduling policy for every grid
	// point (default FR-FCFS, the paper's baseline).
	Scheduler SchedulerID

	// BenignCores is the count of benign workload cores sharing the
	// system with the single attacker core (paper's Table 6 system has 8
	// cores; default 3 benign + 1 attacker keeps the grid tractable).
	BenignCores int
	// TraceRecords sizes the benign traces.
	TraceRecords int
	// MemCycles is the attack duration in memory-clock cycles. The
	// default (~2.5 ms of DDR4-2400 time) models the worst-case slice of
	// a refresh window: the victim gets no auto-refresh help, so the
	// mechanism alone must stop the accumulation.
	MemCycles int64
	// Rows overrides rows per bank (chip and channel geometry) so tests
	// can shrink the system; 0 keeps the Table 6 value.
	Rows int

	// AttackRecords sizes one attacker trace pass (0 = pattern default).
	AttackRecords int

	// ECC evaluates LPDDR4-like chips with on-die ECC: escaped flips are
	// post-correction counts, reported alongside the raw (pre-correction)
	// counts.
	ECC bool
	// AttackSpec carries pattern pacing (Phase/DutyCycle/Gap) applied to
	// every synthesized stream; Kind/Records/Seed are set per grid cell.
	AttackSpec attack.Spec

	Parallelism int
	Seed        uint64
}

// DefaultAttackOptions is the CLI-scale configuration.
func DefaultAttackOptions() AttackOptions {
	return AttackOptions{
		Patterns:     attack.Kinds(),
		Mechanisms:   DefaultAttackMechanisms(),
		HCSweep:      []int{10_000, 4_800, 2_000, 512},
		BenignCores:  3,
		TraceRecords: 2_000,
		MemCycles:    3_000_000,
		Seed:         1,
	}
}

// DefaultAttackMechanisms lists the attack evaluation's default
// contenders: the unprotected baseline, the paper's most scalable
// refresh-based mechanism, the post-paper throttling design, and the
// oracle bound.
func DefaultAttackMechanisms() []MechanismID {
	return []MechanismID{MechNone, MechPARA, MechBlockHammer, MechIdeal}
}

func (o AttackOptions) normalized() AttackOptions {
	d := DefaultAttackOptions()
	if len(o.Patterns) == 0 {
		o.Patterns = d.Patterns
	}
	if len(o.Mechanisms) == 0 {
		o.Mechanisms = d.Mechanisms
	}
	if len(o.HCSweep) == 0 {
		o.HCSweep = d.HCSweep
	}
	if o.BenignCores <= 0 {
		o.BenignCores = d.BenignCores
	}
	if o.TraceRecords <= 0 {
		o.TraceRecords = d.TraceRecords
	}
	if o.MemCycles <= 0 {
		o.MemCycles = d.MemCycles
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// AttackPoint is one grid point's outcome.
type AttackPoint struct {
	Mechanism MechanismID
	Scheduler SchedulerID
	Pattern   attack.Kind
	HCFirst   int
	Viable    bool

	// Security metrics. EscapedFlips is the post-correction count for
	// on-die ECC chips; RawFlips the pre-correction count (equal without
	// ECC).
	EscapedFlips      int
	RawFlips          int
	TimeToFirstFlipMS float64 // -1 when no flip escaped
	AggressorACTs     int64
	AggACTsPerSec     float64

	// Performance metrics.
	BenignPerfPct float64 // benign weighted speedup vs. unattacked baseline, %
	OverheadPct   float64 // Figure 10a's DRAM bandwidth overhead metric
	// ThrottleStallCycles approximates memory cycles in which a throttling
	// mechanism held back a schedulable request.
	ThrottleStallCycles int64
	// AttackerBusPct is the attacker's share of demand DRAM bus/bank time
	// (per-requester occupancy attribution): how much of the memory
	// system's demand service the attack monopolized. 0 in benign-only
	// cells.
	AttackerBusPct float64
}

// AttackEval is the full grid result.
type AttackEval struct {
	Points    []AttackPoint
	MemCycles int64
	WallMS    float64 // simulated attack duration
	Benign    string  // benign mix description
	ECC       bool
}

// AttackParams is the declarative (spec) form of AttackOptions.
type AttackParams struct {
	Patterns      []attack.Kind `json:"patterns,omitempty"`
	Mechanisms    []MechanismID `json:"mechanisms,omitempty"`
	HCSweep       []int         `json:"hc,omitempty"`
	Scheduler     SchedulerID   `json:"scheduler,omitempty"`
	BenignCores   int           `json:"benign_cores,omitempty"`
	TraceRecords  int           `json:"trace_records,omitempty"`
	MemCycles     int64         `json:"mem_cycles,omitempty"`
	Rows          int           `json:"rows,omitempty"`
	AttackRecords int           `json:"attack_records,omitempty"`
	ECC           bool          `json:"ecc,omitempty"`
	// Attack carries pacing (duty_cycle, phase, period_cycles, gap, …);
	// kind, records and seed are set per grid cell.
	Attack *attack.Spec `json:"attack,omitempty"`
}

// Validate rejects attack pacing outside its [0,1) domain at spec
// decode, so a mistyped duty_cycle/phase fails validation instead of
// silently evaluating an unpaced stream.
func (p *AttackParams) Validate() error {
	if p.Attack != nil {
		return p.Attack.Validate()
	}
	return nil
}

// options expands the params into the imperative AttackOptions form.
func (p AttackParams) options(seed uint64) AttackOptions {
	o := AttackOptions{
		Patterns:      p.Patterns,
		Mechanisms:    p.Mechanisms,
		HCSweep:       p.HCSweep,
		Scheduler:     p.Scheduler,
		BenignCores:   p.BenignCores,
		TraceRecords:  p.TraceRecords,
		MemCycles:     p.MemCycles,
		Rows:          p.Rows,
		AttackRecords: p.AttackRecords,
		ECC:           p.ECC,
		Seed:          seed,
	}
	if p.Attack != nil {
		o.AttackSpec = *p.Attack
	}
	return o
}

// attackParams converts legacy options into the spec parameter form.
func (o AttackOptions) attackParams() AttackParams {
	p := AttackParams{
		Patterns:      o.Patterns,
		Mechanisms:    o.Mechanisms,
		HCSweep:       o.HCSweep,
		Scheduler:     o.Scheduler,
		BenignCores:   o.BenignCores,
		TraceRecords:  o.TraceRecords,
		MemCycles:     o.MemCycles,
		Rows:          o.Rows,
		AttackRecords: o.AttackRecords,
		ECC:           o.ECC,
	}
	if o.AttackSpec != (attack.Spec{}) {
		spec := o.AttackSpec
		p.Attack = &spec
	}
	return p
}

// sweepMeta is the shard-invariant metadata of the adversarial sweeps.
type sweepMeta struct {
	MemCycles int64   `json:"mem_cycles"`
	WallMS    float64 `json:"wall_ms"`
	Benign    string  `json:"benign"`
	ECC       bool    `json:"ecc,omitempty"`
}

// attackGrid enumerates the (mechanism × pattern × HCfirst) cells and
// their stable keys.
func attackGrid(o AttackOptions) (keys []string, cells []sweepCell) {
	for _, id := range o.Mechanisms {
		for pi, p := range o.Patterns {
			for hi, hc := range o.HCSweep {
				cells = append(cells, sweepCell{
					Mech: id, Sched: o.Scheduler, Pattern: p, HC: hc,
					streamSeed: engine.DeriveSeed(o.Seed^0x57eea, uint64(pi*len(o.HCSweep)+hi)),
				})
				keys = append(keys, fmt.Sprintf("mech=%s/sched=%s/pat=%s/hc=%d",
					id, schedLabel(o.Scheduler), p, hc))
			}
		}
	}
	return keys, cells
}

// schedLabel renders a scheduler for task keys (empty means FR-FCFS).
func schedLabel(s SchedulerID) string {
	if s == "" {
		return string(SchedFRFCFS)
	}
	return string(s)
}

// RunAttackEval evaluates every (mechanism, pattern, HCfirst) grid point.
// Phase 1 measures the benign cores alone (no attacker, no mitigation) as
// the performance baseline; phase 2 fans the grid out over the experiment
// engine, so results are bit-identical for any Parallelism.
func RunAttackEval(o AttackOptions) (*AttackEval, error) {
	art, err := runSpecArtifact("attack", o.Seed, o.attackParams(), Exec{Parallelism: o.Parallelism})
	if err != nil {
		return nil, err
	}
	return art.(*AttackEval), nil
}

func init() {
	register(&experiment{
		name:        "attack",
		description: "Attack evaluation: mitigations under adversarial hammering (mechanism × pattern × HCfirst)",
		params:      func() any { return &AttackParams{} },
		run: func(rc *runCtx) (*Result, error) {
			var p AttackParams
			if err := rc.decode(&p); err != nil {
				return nil, err
			}
			o := p.options(rc.spec.Seed).normalized()
			cfg := attackSimCfg(o.MemCycles, o.Rows)
			benign, baseIPC, base, err := benignBaseline(cfg, o.BenignCores, o.TraceRecords, o.Seed)
			if err != nil {
				return nil, fmt.Errorf("attack eval %w", err)
			}
			keys, cells := attackGrid(o)
			co := cellOptions{
				MemCycles:     o.MemCycles,
				AttackRecords: o.AttackRecords,
				ECC:           o.ECC,
				Spec:          o.AttackSpec,
			}
			meta := sweepMeta{
				MemCycles: o.MemCycles,
				WallMS:    float64(o.MemCycles) * float64(cfg.T.TCKPS) * 1e-9,
				Benign:    fmt.Sprintf("%d benign cores, MPKI %.0f", o.BenignCores, base.MPKI),
				ECC:       o.ECC,
			}
			return gridResult(rc, meta, keys, cells,
				func(ctx engine.TaskContext, cell sweepCell) (AttackPoint, error) {
					pt, err := runSweepCell(cfg, co, cell, benign, baseIPC, ctx.Seed)
					if err != nil {
						return AttackPoint{}, fmt.Errorf("%s/%s hc=%d: %w", cell.Mech, cell.Pattern, cell.HC, err)
					}
					return *pt, nil
				})
		},
		finalize: func(res *Result) (Artifact, error) {
			var p AttackParams
			if err := decodeParams(res.Spec.Params, &p); err != nil {
				return nil, err
			}
			o := p.options(res.Spec.Seed).normalized()
			var meta sweepMeta
			if err := json.Unmarshal(res.Meta, &meta); err != nil {
				return nil, fmt.Errorf("core: attack meta: %w", err)
			}
			keys, _ := attackGrid(o)
			points, err := cellsInOrder[AttackPoint](res, keys)
			if err != nil {
				return nil, err
			}
			// Points follow the grid's mechanism × pattern × HCfirst
			// nesting by construction.
			return &AttackEval{
				Points:    points,
				MemCycles: meta.MemCycles,
				WallMS:    meta.WallMS,
				Benign:    meta.Benign,
				ECC:       meta.ECC,
			}, nil
		},
	})
}

// PointsFor filters the grid for one mechanism, in report order.
func (e *AttackEval) PointsFor(id MechanismID) []AttackPoint {
	var out []AttackPoint
	for _, p := range e.Points {
		if p.Mechanism == id {
			out = append(out, p)
		}
	}
	return out
}

// Format renders the attack evaluation.
func (e *AttackEval) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Attack evaluation: mitigations under adversarial hammering (%.2f ms window, %s)\n",
		e.WallMS, e.Benign)

	var order []MechanismID
	seen := map[MechanismID]bool{}
	for _, p := range e.Points {
		if !seen[p.Mechanism] {
			seen[p.Mechanism] = true
			order = append(order, p.Mechanism)
		}
	}

	sb.WriteString(table(func(w *tabwriter.Writer) {
		header := "mechanism\tpattern\tHCfirst\tflips\tt-first-flip\taggACT/s\tattBus%\tbenign perf%\toverhead%\tviable"
		if e.ECC {
			header = "mechanism\tpattern\tHCfirst\tflips\traw\tt-first-flip\taggACT/s\tattBus%\tbenign perf%\toverhead%\tviable"
		}
		fmt.Fprintln(w, header)
		for _, id := range order {
			for _, p := range e.PointsFor(id) {
				ttff := "-"
				if p.TimeToFirstFlipMS >= 0 {
					ttff = fmt.Sprintf("%.3fms", p.TimeToFirstFlipMS)
				}
				if e.ECC {
					fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%s\t%.2fM\t%.1f\t%.1f\t%.3f\t%v\n",
						p.Mechanism, p.Pattern, p.HCFirst, p.EscapedFlips, p.RawFlips, ttff,
						p.AggACTsPerSec/1e6, p.AttackerBusPct, p.BenignPerfPct, p.OverheadPct, p.Viable)
				} else {
					fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%s\t%.2fM\t%.1f\t%.1f\t%.3f\t%v\n",
						p.Mechanism, p.Pattern, p.HCFirst, p.EscapedFlips, ttff,
						p.AggACTsPerSec/1e6, p.AttackerBusPct, p.BenignPerfPct, p.OverheadPct, p.Viable)
				}
			}
		}
	}))

	// Security verdict summary: a mechanism "holds" at a point when no
	// flip escaped.
	var insecure []string
	for _, p := range e.Points {
		if p.Mechanism != MechNone && p.EscapedFlips > 0 {
			insecure = append(insecure,
				fmt.Sprintf("%s vs %s @ %d (%d flips)", p.Mechanism, p.Pattern, p.HCFirst, p.EscapedFlips))
		}
	}
	if len(insecure) == 0 {
		sb.WriteString("\nAll evaluated mechanisms prevented every bit flip on this grid.\n")
	} else {
		fmt.Fprintf(&sb, "\nBroken configurations (%d):\n", len(insecure))
		for _, s := range insecure {
			sb.WriteString("  " + s + "\n")
		}
	}
	return sb.String()
}

// MaxEscaped returns the largest escaped-flip count for a mechanism
// across the grid (diagnostics and tests).
func (e *AttackEval) MaxEscaped(id MechanismID) int {
	max := math.MinInt
	for _, p := range e.PointsFor(id) {
		if p.EscapedFlips > max {
			max = p.EscapedFlips
		}
	}
	if max == math.MinInt {
		return 0
	}
	return max
}
