package core

import (
	"strings"
	"testing"

	"repro/internal/attack"
)

// tinyAttackOptions is the reduced grid used across the attack-eval
// tests: one low-HCfirst point on a small chip, short window.
func tinyAttackOptions(parallelism int) AttackOptions {
	return AttackOptions{
		Patterns:     []attack.Kind{attack.DoubleSided},
		Mechanisms:   []MechanismID{MechNone, MechIdeal},
		HCSweep:      []int{512},
		BenignCores:  2,
		TraceRecords: 800,
		MemCycles:    200_000,
		Rows:         1024,
		Parallelism:  parallelism,
		Seed:         7,
	}
}

// TestAttackEvalSecurityLoop is the subsystem's reason to exist: with no
// mitigation, a low-HCfirst chip loses bits to a double-sided hammer
// within the window; the Ideal mechanism on the same chip and stream
// loses none. If both held or both broke, the command stream and the
// fault model would not actually be coupled.
func TestAttackEvalSecurityLoop(t *testing.T) {
	ev, err := RunAttackEval(tinyAttackOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	none := ev.PointsFor(MechNone)
	ideal := ev.PointsFor(MechIdeal)
	if len(none) != 1 || len(ideal) != 1 {
		t.Fatalf("points: none=%d ideal=%d", len(none), len(ideal))
	}
	if none[0].EscapedFlips == 0 {
		t.Errorf("unprotected chip survived the attack: %+v", none[0])
	}
	if none[0].TimeToFirstFlipMS < 0 {
		t.Error("no time-to-first-flip despite escaped flips")
	}
	if ideal[0].EscapedFlips != 0 {
		t.Errorf("Ideal mechanism leaked %d flips: %+v", ideal[0].EscapedFlips, ideal[0])
	}
	if ideal[0].TimeToFirstFlipMS >= 0 {
		t.Error("Ideal reports a first-flip time with zero flips")
	}
	// The attacker must have achieved a meaningful ACT rate in both runs.
	for _, p := range ev.Points {
		if p.AggressorACTs == 0 || p.AggACTsPerSec <= 0 {
			t.Errorf("%s: no aggressor activity measured: %+v", p.Mechanism, p)
		}
		if p.BenignPerfPct <= 0 || p.BenignPerfPct > 120 {
			t.Errorf("%s: implausible benign perf %.1f%%", p.Mechanism, p.BenignPerfPct)
		}
	}
}

// TestAttackEvalBlockHammerThrottles pins the throttling path end to end:
// BlockHammer must hold the same point the unprotected baseline loses,
// with zero mitigation refreshes and a visibly reduced aggressor rate.
func TestAttackEvalBlockHammerThrottles(t *testing.T) {
	o := tinyAttackOptions(0)
	o.Mechanisms = []MechanismID{MechNone, MechBlockHammer}
	ev, err := RunAttackEval(o)
	if err != nil {
		t.Fatal(err)
	}
	none := ev.PointsFor(MechNone)[0]
	bh := ev.PointsFor(MechBlockHammer)[0]
	if bh.EscapedFlips != 0 {
		t.Errorf("BlockHammer leaked %d flips", bh.EscapedFlips)
	}
	if bh.OverheadPct != 0 {
		t.Errorf("BlockHammer issued refreshes: overhead %.3f%%", bh.OverheadPct)
	}
	if bh.ThrottleStallCycles == 0 {
		t.Error("BlockHammer never throttled the attacker")
	}
	if bh.AggACTsPerSec >= none.AggACTsPerSec/2 {
		t.Errorf("throttled aggressor rate %.0f not well below baseline %.0f",
			bh.AggACTsPerSec, none.AggACTsPerSec)
	}
}

// TestAttackEvalParallelismInvariant extends the engine's contract to the
// new runner: formatted output is byte-identical for any worker count.
func TestAttackEvalParallelismInvariant(t *testing.T) {
	run := func(parallelism int) string {
		o := tinyAttackOptions(parallelism)
		o.Patterns = []attack.Kind{attack.DoubleSided, attack.Scattered}
		ev, err := RunAttackEval(o)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		return ev.Format()
	}
	serial := run(1)
	if serial == "" {
		t.Fatal("empty output")
	}
	parallel := run(8)
	if serial != parallel {
		t.Errorf("output differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestAttackEvalFormat sanity-checks the report rendering.
func TestAttackEvalFormat(t *testing.T) {
	ev, err := RunAttackEval(tinyAttackOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	out := ev.Format()
	for _, want := range []string{"Attack evaluation", "double-sided", "None", "Ideal", "t-first-flip"} {
		if !strings.Contains(out, want) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
}
