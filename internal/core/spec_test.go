package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	spec, err := NewSpec("attack", 7, AttackParams{
		Mechanisms: []MechanismID{MechNone, MechIdeal},
		HCSweep:    []int{512},
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Errorf("encode/decode/encode not stable:\n%s\nvs\n%s", enc, enc2)
	}
	if dec.Name != "attack" || dec.Seed != 7 {
		t.Errorf("round-trip lost fields: %+v", dec)
	}
}

func TestSpecSeedAndShardNormalization(t *testing.T) {
	spec, err := DecodeSpec([]byte(`{"name":"table1"}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 1 {
		t.Errorf("seed = %d, want 1 (zero normalizes)", spec.Seed)
	}
	if spec.Shard != (Shard{Index: 0, Count: 1}) {
		t.Errorf("shard = %+v, want 0/1", spec.Shard)
	}
}

func TestSpecUnknownNameError(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"name":"figure99"}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown name error = %v, want unknown-experiment", err)
	}
	if _, err := NewSpec("nope", 1, nil); err == nil {
		t.Error("NewSpec accepted an unregistered name")
	}
}

func TestSpecBadShardError(t *testing.T) {
	for _, bad := range []string{
		`{"name":"table1","shard":{"index":2,"count":2}}`,
		`{"name":"table1","shard":{"index":-1,"count":4}}`,
	} {
		if _, err := DecodeSpec([]byte(bad)); err == nil ||
			!strings.Contains(err.Error(), "shard") {
			t.Errorf("%s: error = %v, want shard validation failure", bad, err)
		}
	}
	for _, bad := range []string{"3", "a/b", "4/2", "-1/2", "1/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
	s, err := ParseShard("2/8")
	if err != nil || s.Index != 2 || s.Count != 8 {
		t.Errorf("ParseShard(2/8) = %+v, %v", s, err)
	}
}

func TestSpecUnknownParamFieldError(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"name":"fig5","params":{"scael":"tiny"}}`)); err == nil ||
		!strings.Contains(err.Error(), "params") {
		t.Errorf("typoed param error = %v, want bad-params", err)
	}
	// Params of another experiment family must not validate.
	if _, err := DecodeSpec([]byte(`{"name":"fig5","params":{"mem_cycles":1000}}`)); err == nil {
		t.Error("fig5 accepted attack params")
	}
}

func TestParetoParamsRejectNonPositiveBLISSAxes(t *testing.T) {
	for _, bad := range []string{
		`{"name":"pareto","params":{"bliss_streaks":[0]}}`,
		`{"name":"pareto","params":{"bliss_streaks":[-2]}}`,
		`{"name":"pareto","params":{"bliss_clears":[0,10000]}}`,
	} {
		if _, err := DecodeSpec([]byte(bad)); err == nil ||
			!strings.Contains(err.Error(), "not positive") {
			t.Errorf("%s: error = %v, want non-positive axis rejection", bad, err)
		}
	}
	if _, err := DecodeSpec([]byte(`{"name":"pareto","params":{"bliss_streaks":[2,8]}}`)); err != nil {
		t.Errorf("positive axes rejected: %v", err)
	}
}

// TestAttackPacingSpecValidation pins the bugfix at the spec layer:
// out-of-range duty_cycle/phase inside the attack/pareto families' attack
// block must fail strict decode with a clear error, not silently run an
// unpaced stream.
func TestAttackPacingSpecValidation(t *testing.T) {
	bad := []struct{ spec, want string }{
		{`{"name":"attack","params":{"attack":{"duty_cycle":1.5}}}`, "duty_cycle"},
		{`{"name":"attack","params":{"attack":{"duty_cycle":1}}}`, "duty_cycle"},
		{`{"name":"attack","params":{"attack":{"duty_cycle":-0.25}}}`, "duty_cycle"},
		{`{"name":"attack","params":{"attack":{"duty_cycle":0.5,"phase":1.25}}}`, "phase"},
		{`{"name":"pareto","params":{"attack":{"duty_cycle":2}}}`, "duty_cycle"},
		{`{"name":"pareto","params":{"attack":{"phase":-0.5}}}`, "phase"},
		// Phase without duty_cycle would be a silent no-op: rejected too.
		{`{"name":"attack","params":{"attack":{"phase":0.5}}}`, "phase"},
	}
	for _, b := range bad {
		if _, err := DecodeSpec([]byte(b.spec)); err == nil || !strings.Contains(err.Error(), b.want) {
			t.Errorf("%s: error = %v, want mention of %q", b.spec, err, b.want)
		}
	}
	for _, good := range []string{
		`{"name":"attack","params":{"attack":{"duty_cycle":0.5,"phase":0.25}}}`,
		`{"name":"pareto","params":{"attack":{"duty_cycle":0.99}}}`,
	} {
		if _, err := DecodeSpec([]byte(good)); err != nil {
			t.Errorf("%s: rejected: %v", good, err)
		}
	}
}

func TestShardPartitionCoversGridExactlyOnce(t *testing.T) {
	keys := []string{
		"DDR4-new/Mfr.A/K4-chip00", "DDR4-old/Mfr.C/K9-chip01",
		"mech=PARA/sched=FR-FCFS/pat=decoy/hc=512",
		"mech=None/sched=BLISS[s=8,c=20000]/hc=4800/pat=benign-only",
		"census", "modules", "a", "b", "c", "d", "e", "f",
	}
	for count := 1; count <= 5; count++ {
		for _, key := range keys {
			owners := 0
			for idx := 0; idx < count; idx++ {
				if (Shard{Index: idx, Count: count}).owns(key) {
					owners++
				}
			}
			if owners != 1 {
				t.Errorf("count=%d key=%q owned by %d shards, want exactly 1", count, key, owners)
			}
		}
	}
}

func TestExperimentsListing(t *testing.T) {
	infos := Experiments()
	if len(infos) != len(registry) {
		t.Fatalf("Experiments() lists %d of %d registered", len(infos), len(registry))
	}
	for _, want := range []string{"table1", "table8", "fig4", "fig10", "attack", "pareto", "trr-dodge"} {
		found := false
		for _, e := range infos {
			if e.Name == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry missing %q", want)
		}
	}
	// The listing order is canonical and leads with the paper order.
	if infos[0].Name != "table1" || infos[len(infos)-1].Name != "trr-dodge" {
		t.Errorf("unexpected listing order: first=%s last=%s", infos[0].Name, infos[len(infos)-1].Name)
	}
}

func TestResultIncompleteArtifactError(t *testing.T) {
	spec, err := NewSpec("table2", 1, CharParams{Scale: "tiny", Chips: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec.Shard = Shard{Index: 0, Count: 3}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() {
		t.Skip("shard 0/3 happened to own every task")
	}
	if _, err := res.Artifact(); err == nil {
		t.Error("Artifact() succeeded on an incomplete shard result")
	}
}

func TestMergeRejectsMismatchedSpecs(t *testing.T) {
	specA, _ := NewSpec("table1", 1, nil)
	specB, _ := NewSpec("table1", 2, nil)
	a, err := Run(specA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(specB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Merge(b); err == nil {
		t.Error("merge accepted results of different seeds")
	}
	if merged, err := a.Merge(a); err != nil || !merged.Complete() {
		t.Errorf("self-merge (idempotent union) failed: %v", err)
	}
}
