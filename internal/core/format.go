package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/faultmodel"
)

func table(fn func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fn(w)
	w.Flush()
	return sb.String()
}

func hcK(v float64) string {
	if math.IsNaN(v) || v <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fk", v/1000)
}

// Format renders Table 1.
func (t *Table1) Format() string {
	return "Table 1: DRAM chips tested (chips (modules))\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "type-node\tMfr. A\tMfr. B\tMfr. C\tTotal")
		type cell struct{ chips, modules int }
		grid := map[string]map[string]cell{}
		var order []string
		for _, r := range t.Rows {
			tn := r.Node.String()
			if grid[tn] == nil {
				grid[tn] = map[string]cell{}
				order = append(order, tn)
			}
			grid[tn][r.Mfr] = cell{r.Chips, r.Modules}
		}
		for _, tn := range order {
			totC, totM := 0, 0
			fmt.Fprintf(w, "%s", tn)
			for _, mfr := range []string{"A", "B", "C"} {
				c, ok := grid[tn][mfr]
				if !ok {
					fmt.Fprintf(w, "\tN/A")
					continue
				}
				fmt.Fprintf(w, "\t%d (%d)", c.chips, c.modules)
				totC += c.chips
				totM += c.modules
			}
			fmt.Fprintf(w, "\t%d (%d)\n", totC, totM)
		}
	})
}

// Format renders Table 2.
func (t *Table2) Format() string {
	return "Table 2: DDR3 chips vulnerable to RowHammer at HC < 150k\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "type-node\tMfr.\tRowHammerable")
		for _, r := range t.Rows {
			fmt.Fprintf(w, "%v\t%s\t%d/%d\n", r.Key.Node, r.Key.Mfr, r.Vulnerable, r.Total)
		}
	})
}

// Format renders Figure 4 as per-pattern coverage percentages.
func (f *Figure4) Format() string {
	return fmt.Sprintf("Figure 4: data pattern coverage (%% of all observed flips), HC=%d\n", f.HC) +
		table(func(w *tabwriter.Writer) {
			fmt.Fprint(w, "config\tchip\tflips")
			for _, p := range faultmodel.FigurePatterns() {
				fmt.Fprintf(w, "\t%s", p.Short())
			}
			fmt.Fprintln(w)
			for _, r := range f.Rows {
				if r.TotalFlips == 0 {
					fmt.Fprintf(w, "%v\t%s\t(not enough bit flips)\n", r.Key, r.Chip)
					continue
				}
				fmt.Fprintf(w, "%v\t%s\t%d", r.Key, r.Chip, r.TotalFlips)
				for _, p := range faultmodel.FigurePatterns() {
					fmt.Fprintf(w, "\t%.0f%%", 100*r.Coverage[p])
				}
				fmt.Fprintln(w)
			}
		})
}

// Format renders Table 3.
func (t *Table3) Format() string {
	return "Table 3: worst-case data pattern per configuration\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "config\tmeasured worst\tcalibration (paper)\tmatch")
		for _, r := range t.Rows {
			if !r.WorstOK {
				fmt.Fprintf(w, "%v\t(not enough bit flips)\t%s\t-\n", r.Key, patternName(r.PaperWorst))
				continue
			}
			match := "yes"
			if r.Worst != r.PaperWorst && r.Worst != r.PaperWorst.Inverse() {
				match = "NO"
			}
			fmt.Fprintf(w, "%v\t%s\t%s\t%s\n", r.Key, patternName(r.Worst), patternName(r.PaperWorst), match)
		}
	})
}

// Format renders Figure 5 as an HC → rate table plus log-log slopes.
func (f *Figure5) Format() string {
	return "Figure 5: hammer count vs. RowHammer bit flip rate\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprint(w, "config\tchips")
		for _, hc := range f.HCs {
			fmt.Fprintf(w, "\t%dk", hc/1000)
		}
		fmt.Fprintln(w, "\tlog-log slope\tR2")
		for _, s := range f.Rows {
			fmt.Fprintf(w, "%v\t%d", s.Key, s.Chips)
			for _, hc := range f.HCs {
				r := s.Points[hc]
				if r == 0 {
					fmt.Fprint(w, "\t0")
				} else {
					fmt.Fprintf(w, "\t%.1e", r)
				}
			}
			fmt.Fprintf(w, "\t%.2f\t%.2f\n", s.Slope, s.R2)
		}
	})
}

// Format renders Figure 6 row-offset histograms.
func (f *Figure6) Format() string {
	return fmt.Sprintf("Figure 6: flip distribution by distance from the victim row (rate≈%.0e)\n", f.TargetRate) +
		table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "config\tchips\toffset:fraction(±std)")
			for _, r := range f.Rows {
				fmt.Fprintf(w, "%v\t%d\t", r.Key, r.Chips)
				for i, off := range sortedOffsets(r.Mean) {
					if i > 0 {
						fmt.Fprint(w, "  ")
					}
					fmt.Fprintf(w, "%+d:%.3f(±%.3f)", off, r.Mean[off], r.StdDev[off])
				}
				fmt.Fprintln(w)
			}
		})
}

// Format renders Figure 7 word-density histograms.
func (f *Figure7) Format() string {
	return fmt.Sprintf("Figure 7: flips per 64-bit word (rate≈%.0e)\n", f.TargetRate) +
		table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "config\tchips\t1 flip\t2 flips\t3 flips\t4 flips\t5+ flips")
			for _, r := range f.Rows {
				fmt.Fprintf(w, "%v\t%d", r.Key, r.Chips)
				for k := 1; k <= 5; k++ {
					fmt.Fprintf(w, "\t%.3f±%.3f", r.Fraction[k], r.StdDev[k])
				}
				fmt.Fprintln(w)
			}
		})
}

// FormatFigure8 renders the box-and-whisker statistics of the study.
func (s *HCFirstStudy) FormatFigure8() string {
	return "Figure 8: HCfirst distribution per configuration (hammers)\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "config\tchips\tno-flips\tmin\tQ1\tmedian\tQ3\tmax")
		for _, r := range s.Rows {
			if len(r.Measured) == 0 {
				fmt.Fprintf(w, "%v\t0\t%d\t(no bit flips)\n", r.Key, r.NoFlips)
				continue
			}
			fmt.Fprintf(w, "%v\t%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
				r.Key, len(r.Measured), r.NoFlips,
				hcK(r.Box.Min), hcK(r.Box.Q1), hcK(r.Box.Median), hcK(r.Box.Q3), hcK(r.Box.Max))
		}
	})
}

// FormatTable4 renders the minimum HCfirst table with the paper's values.
func (s *HCFirstStudy) FormatTable4() string {
	return "Table 4: lowest HCfirst across all chips of each configuration\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "config\tmeasured min\tpaper\trel.err")
		for _, r := range s.Rows {
			if math.IsNaN(r.MinHC) {
				fmt.Fprintf(w, "%v\tno flips ≤150k\t%s\t-\n", r.Key, hcK(r.PaperMin))
				continue
			}
			rel := "-"
			if r.PaperMin > 0 && r.PaperMin <= 150_000 {
				rel = fmt.Sprintf("%+.0f%%", 100*(r.MinHC-r.PaperMin)/r.PaperMin)
			}
			fmt.Fprintf(w, "%v\t%s\t%s\t%s\n", r.Key, hcK(r.MinHC), hcK(r.PaperMin), rel)
		}
	})
}

// Format renders Figure 9.
func (f *Figure9) Format() string {
	return "Figure 9: HC to find the first 64-bit word with 1/2/3 flips, with multipliers\n" +
		table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "config\tchips\tHC(1)\tHC(2)\tHC(3)\tmult 1→2\tmult 2→3")
			for _, r := range f.Rows {
				fmt.Fprintf(w, "%v\t%d\t%s\t%s\t%s", r.Key, r.Chips,
					hcK(r.MeanHC[1]), hcK(r.MeanHC[2]), hcK(r.MeanHC[3]))
				for k := 1; k <= 2; k++ {
					ms := r.Multipliers[k]
					if len(ms) == 0 {
						fmt.Fprint(w, "\t-")
						continue
					}
					mean := 0.0
					for _, m := range ms {
						mean += m
					}
					mean /= float64(len(ms))
					fmt.Fprintf(w, "\t%.2fx", mean)
				}
				fmt.Fprintln(w)
			}
		})
}

// Format renders Table 5.
func (t *Table5) Format() string {
	return fmt.Sprintf("Table 5: cells with monotonically increasing flip probability (%d iterations)\n", t.Iterations) +
		table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "config\tcells\tmonotonic")
			for _, r := range t.Rows {
				fmt.Fprintf(w, "%v\t%d\t%.1f%%\n", r.Key, r.Cells, r.Percent)
			}
		})
}

// Format renders a module table (Tables 7 and 8).
func (t *ModuleTable) Format() string {
	return t.Title + "\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "module\tMfr.\tnode\tdate\tfreq\ttRC(ns)\tGB\tchips\tpins\tmin HCfirst")
		for _, m := range t.Modules {
			hc := "N/A"
			if m.MinHCFirst > 0 {
				hc = hcK(m.MinHCFirst)
			}
			date := m.Date
			if date == "" {
				date = "N/A"
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%.2f\t%d\t%d\tx%d\t%s\n",
				m.ID, m.Mfr, m.Node.Node, date, m.FreqMTs, m.TRCns, m.SizeGB, m.Chips, m.PinWidth, hc)
		}
	})
}

// Format renders Figure 10 as two aligned tables (bandwidth overhead and
// normalized performance).
func (f *Figure10) Format() string {
	var sb strings.Builder
	mpkiMin, _ := minMax(f.MixMPKIs)
	_, mpkiMax := minMax(f.MixMPKIs)
	fmt.Fprintf(&sb, "Figure 10: mitigation mechanisms across %d mixes (MPKI %.0f–%.0f)\n",
		f.Mixes, mpkiMin, mpkiMax)

	mechs := map[MechanismID]bool{}
	var order []MechanismID
	for _, p := range f.Points {
		if !mechs[p.Mechanism] {
			mechs[p.Mechanism] = true
			order = append(order, p.Mechanism)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	sb.WriteString("\n(a) DRAM bandwidth overhead (%)\n")
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "mechanism\tHCfirst\toverhead%\tmin\tmax\tviable")
		for _, id := range order {
			for _, p := range f.PointsFor(id) {
				fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%.3f\t%v\n",
					p.Mechanism, p.HCFirst, p.Overhead, p.OverheadMin, p.OverheadMax, p.Viable)
			}
		}
	}))
	sb.WriteString("\n(b) normalized system performance (%)\n")
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "mechanism\tHCfirst\tperf%\tmin\tmax\tviable")
		for _, id := range order {
			for _, p := range f.PointsFor(id) {
				fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\t%v\n",
					p.Mechanism, p.HCFirst, p.NormPerf, p.NormPerfMin, p.NormPerfMax, p.Viable)
			}
		}
	}))
	return sb.String()
}

func minMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
