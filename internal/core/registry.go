package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/engine"
)

// Artifact is a finalized experiment output — one of the typed
// table/figure results (*Table1 … *Figure10, *AttackEval, *ParetoSweep),
// all of which render themselves.
type Artifact interface {
	Format() string
}

// experiment is one registry entry. run executes the spec's shard of the
// task grid and returns the raw Result; finalize rebuilds the typed
// artifact from a complete Result (its cells plus meta), re-enumerating
// the grid from the spec so cell order never depends on map iteration.
type experiment struct {
	name        string
	description string
	// params returns a fresh pointer to the experiment's parameter
	// struct with its zero (all-defaults) value, used for strict
	// decoding and for documenting defaults in `rhx list`.
	params   func() any
	run      func(rc *runCtx) (*Result, error)
	finalize func(res *Result) (Artifact, error)
}

var registry = map[string]*experiment{}

// experimentOrder fixes the listing order of the registry (the paper's
// artifact order, then the post-paper evaluations).
var experimentOrder = []string{
	"table1", "table2", "fig4", "table3", "fig5", "fig6", "fig7",
	"fig8", "table4", "fig9", "table5", "table7", "table8",
	"fig10", "attack", "pareto", "trr-dodge",
}

func register(e *experiment) {
	if _, dup := registry[e.name]; dup {
		panic("core: duplicate experiment " + e.name)
	}
	registry[e.name] = e
}

func lookup(name string) (*experiment, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown experiment %q (see Experiments())", name)
	}
	return e, nil
}

// ExperimentInfo describes one registered experiment for listings.
type ExperimentInfo struct {
	Name        string
	Description string
	// DefaultParams is the JSON shape of the experiment's parameter
	// struct with every field at its default.
	DefaultParams json.RawMessage
}

// Experiments lists the registry in canonical order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	seen := map[string]bool{}
	add := func(name string) {
		e, ok := registry[name]
		if !ok || seen[name] {
			return
		}
		seen[name] = true
		raw, _ := json.Marshal(e.params())
		out = append(out, ExperimentInfo{Name: e.name, Description: e.description, DefaultParams: raw})
	}
	for _, name := range experimentOrder {
		add(name)
	}
	var rest []string
	for name := range registry {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		add(name)
	}
	return out
}

// Exec carries execution-only knobs: they change wall-clock behaviour,
// never results, so they live outside the spec.
type Exec struct {
	// Parallelism bounds concurrent tasks (0 = all cores).
	Parallelism int
}

// runCtx is the resolved context one experiment run executes under.
type runCtx struct {
	ctx  context.Context
	spec ExperimentSpec // normalized
	exec Exec
}

// engineOptions is the engine fan-out configuration every grid in this
// run uses: the exec parallelism bound, the given base seed, and the
// run's cancellation context.
func (rc *runCtx) engineOptions(seed uint64) engine.Options {
	return engine.Options{Workers: rc.exec.Parallelism, Seed: seed, Context: rc.ctx}
}

// decode strictly decodes the spec's params into the given struct.
func (rc *runCtx) decode(into any) error { return decodeParams(rc.spec.Params, into) }

// Run executes a spec's shard of its experiment with default execution
// options. It is the single entry point behind every RunX wrapper and
// CLI.
func Run(spec ExperimentSpec) (*Result, error) { return RunWith(spec, Exec{}) }

// RunWith executes a spec's shard with explicit execution options.
func RunWith(spec ExperimentSpec, ex Exec) (*Result, error) {
	return RunContext(context.Background(), spec, ex)
}

// RunContext executes a spec's shard under a cancellation context: when
// ctx is canceled (an abandoned HTTP request, SIGINT), in-flight grid
// tasks finish but no new tasks start, and the run returns ctx's error.
func RunContext(ctx context.Context, spec ExperimentSpec, ex Exec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	exp, err := lookup(spec.Name)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return exp.run(&runCtx{ctx: ctx, spec: spec.normalized(), exec: ex})
}

// Result is one run's output: the spec it came from, the full grid's
// task count, shard-invariant metadata, and one cell per executed task,
// keyed by the task's stable key. Results encode canonically (sorted
// cell keys), so merging every shard of a spec reproduces the unsharded
// run's bytes exactly.
type Result struct {
	Spec ExperimentSpec `json:"spec"`
	// Tasks is the size of the full (unsharded) task grid.
	Tasks int `json:"tasks"`
	// Meta holds experiment-level data every shard computes identically
	// (baseline measurements, window geometry); Merge verifies equality.
	Meta json.RawMessage `json:"meta,omitempty"`
	// Cells maps task key → that task's canonical JSON payload.
	Cells map[string]json.RawMessage `json:"cells"`
}

// Complete reports whether the result covers the whole task grid.
func (r *Result) Complete() bool { return len(r.Cells) == r.Tasks }

// Encode renders the result as canonical JSON: normalized spec, sorted
// cell keys (Go maps marshal in key order), two-space indent, trailing
// newline. Two complete results of the same spec — however their cells
// were produced, one process or many — encode byte-identically.
func (r *Result) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeResult parses an encoded Result. Raw JSON fields (Meta, cells)
// are re-compacted: they would otherwise keep the two-space indentation
// of the encoded document, and Merge compares them byte-for-byte
// against freshly computed parts, which are always compact.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("core: bad result: %w", err)
	}
	if err := r.Spec.Validate(); err != nil {
		return nil, err
	}
	r.Spec = r.Spec.normalized()
	if r.Cells == nil {
		r.Cells = map[string]json.RawMessage{}
	}
	meta, err := compactRaw(r.Meta)
	if err != nil {
		return nil, fmt.Errorf("core: bad result meta: %w", err)
	}
	r.Meta = meta
	// Sorted keys so a document with several bad cells always reports the
	// same one, whatever map-iteration order the runtime picks.
	for _, key := range sortedCellKeys(r.Cells) {
		c, err := compactRaw(r.Cells[key])
		if err != nil {
			return nil, fmt.Errorf("core: bad result cell %q: %w", key, err)
		}
		r.Cells[key] = c
	}
	return &r, nil
}

// sortedCellKeys returns the cell keys in lexical order. Every loop over
// a Cells map that can error, write output, or otherwise observe order
// must iterate this instead of the map (see docs/LINT.md, mapiter).
func sortedCellKeys(cells map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(cells))
	for key := range cells {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// compactRaw strips insignificant whitespace from a raw JSON value.
func compactRaw(raw json.RawMessage) (json.RawMessage, error) {
	if len(raw) == 0 {
		return raw, nil
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		return nil, err
	}
	return json.RawMessage(buf.Bytes()), nil
}

// Merge combines this result with other shards of the same spec into one
// result whose spec is the unsharded identity. Cells are unioned;
// overlapping cells must agree byte-for-byte, and metadata must be
// identical across all parts (every shard recomputes it from the same
// seed, so disagreement means the parts came from different specs).
func (r *Result) Merge(others ...*Result) (*Result, error) {
	return MergeResults(append([]*Result{r}, others...)...)
}

// MergeResults merges any number of shard results of one spec.
func MergeResults(parts ...*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: nothing to merge")
	}
	base := parts[0]
	want := base.Spec.sansShard()
	merged := &Result{
		Spec:  want,
		Tasks: base.Tasks,
		Meta:  base.Meta,
		Cells: make(map[string]json.RawMessage, base.Tasks),
	}
	for i, p := range parts {
		got := p.Spec.sansShard()
		if got.Name != want.Name || got.Seed != want.Seed || !bytes.Equal(got.Params, want.Params) {
			return nil, fmt.Errorf("core: merge: part %d is %q seed=%d, want %q seed=%d with identical params",
				i, got.Name, got.Seed, want.Name, want.Seed)
		}
		if p.Tasks != merged.Tasks {
			return nil, fmt.Errorf("core: merge: part %d reports %d tasks, want %d", i, p.Tasks, merged.Tasks)
		}
		if !bytes.Equal(p.Meta, merged.Meta) {
			return nil, fmt.Errorf("core: merge: part %d metadata differs from part 0", i)
		}
		// Sorted keys: with several conflicting cells, the error must name
		// the same cell on every run and every worker process.
		for _, key := range sortedCellKeys(p.Cells) {
			cell := p.Cells[key]
			if prev, dup := merged.Cells[key]; dup {
				if !bytes.Equal(prev, cell) {
					return nil, fmt.Errorf("core: merge: conflicting cell %q", key)
				}
				continue
			}
			merged.Cells[key] = cell
		}
	}
	return merged, nil
}

// Artifact rebuilds the experiment's typed artifact (e.g. *Figure5) from
// a complete result. Incomplete results — missing shards — are an error
// naming the first absent cell.
func (r *Result) Artifact() (Artifact, error) {
	exp, err := lookup(r.Spec.Name)
	if err != nil {
		return nil, err
	}
	if !r.Complete() {
		return nil, fmt.Errorf("core: result covers %d/%d tasks; merge the remaining shards first",
			len(r.Cells), r.Tasks)
	}
	return exp.finalize(r)
}

// Format renders the complete result's artifact.
func (r *Result) Format() (string, error) {
	art, err := r.Artifact()
	if err != nil {
		return "", err
	}
	return art.Format(), nil
}

// --- shared grid machinery -------------------------------------------------

// gridResult runs the shard-owned subset of a keyed task list on the
// engine and assembles the Result. Per-task seeds derive from the task's
// GLOBAL grid index, so a task computes identical bytes in every
// shard/count partition. meta may be nil.
func gridResult[T, C any](rc *runCtx, meta any, keys []string, items []T,
	fn func(ctx engine.TaskContext, item T) (C, error),
) (*Result, error) {
	if len(keys) != len(items) {
		return nil, fmt.Errorf("core: %s: %d keys for %d tasks", rc.spec.Name, len(keys), len(items))
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			return nil, fmt.Errorf("core: %s: duplicate task key %q", rc.spec.Name, k)
		}
		seen[k] = true
	}
	var mine []int
	for i, k := range keys {
		if rc.spec.Shard.owns(k) {
			mine = append(mine, i)
		}
	}
	eo := rc.engineOptions(rc.spec.Seed)
	cells, err := engine.Map(eo, mine, func(_ engine.TaskContext, gi int) (json.RawMessage, error) {
		ctx := engine.TaskContext{Index: gi, Seed: engine.DeriveSeed(rc.spec.Seed, uint64(gi))}
		c, err := fn(ctx, items[gi])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", keys[gi], err)
		}
		raw, err := json.Marshal(c)
		if err != nil {
			return nil, fmt.Errorf("%s: encode cell: %w", keys[gi], err)
		}
		return raw, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: rc.spec, Tasks: len(keys), Cells: make(map[string]json.RawMessage, len(mine))}
	for si, gi := range mine {
		res.Cells[keys[gi]] = cells[si]
	}
	if meta != nil {
		raw, err := json.Marshal(meta)
		if err != nil {
			return nil, fmt.Errorf("core: %s: encode meta: %w", rc.spec.Name, err)
		}
		res.Meta = raw
	}
	return res, nil
}

// cellsInOrder decodes the cells for an ordered key list into typed
// values, erroring on the first missing key.
func cellsInOrder[C any](res *Result, keys []string) ([]C, error) {
	out := make([]C, len(keys))
	for i, k := range keys {
		raw, ok := res.Cells[k]
		if !ok {
			return nil, fmt.Errorf("core: result missing cell %q", k)
		}
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("core: cell %q: %w", k, err)
		}
	}
	return out, nil
}

// runSpecArtifact is the wrapper path: run a spec and finalize its
// artifact in one call (the body of every legacy RunX function).
func runSpecArtifact(name string, seed uint64, params any, ex Exec) (Artifact, error) {
	spec, err := NewSpec(name, seed, params)
	if err != nil {
		return nil, err
	}
	res, err := RunWith(spec, ex)
	if err != nil {
		return nil, err
	}
	return res.Artifact()
}
