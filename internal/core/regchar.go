package core

// Registry entries for the characterization experiments. Each entry
// splits the old monolithic runner into the three spec-API phases:
//
//   - enumerate: build the deterministic task grid (one task per chip or
//     per configuration) from the spec's params — identical in every
//     shard, so stable task keys partition the grid exactly once;
//   - cell: run one task against its own instantiated chip, returning a
//     JSON-serializable cell;
//   - finalize: fold the complete, ordered cell list into the artifact
//     (the aggregation functions in characterization.go).

import (
	"fmt"

	"repro/internal/charact"
	"repro/internal/chips"
	"repro/internal/engine"
)

// charPlan is one characterization experiment's resolved task grid.
type charPlan struct {
	o     Options
	pop   *chips.Population
	keys  []ConfigKey
	jobs  []chipJob
	iters int
}

// charGridDef describes how an experiment builds its grid.
type charGridDef struct {
	// keys filters the configuration list (nil = every configuration).
	keys func() []ConfigKey
	// rep picks one representative chip per configuration instead of
	// every instantiated chip.
	rep bool
	// keep filters chips (nil = all).
	keep func(ConfigKey, chips.ChipSpec) bool
	// defaultIters is the paper's iteration count when the spec leaves
	// Iterations at 0.
	defaultIters int
}

// charPlanFor expands a spec into the experiment's task grid.
func charPlanFor(spec ExperimentSpec, def charGridDef) (*charPlan, error) {
	var p CharParams
	if err := decodeParams(spec.Params, &p); err != nil {
		return nil, err
	}
	o, err := p.options(spec.Seed)
	if err != nil {
		return nil, err
	}
	o = o.normalized()
	plan := &charPlan{o: o, pop: o.population()}
	byCfg := o.chipsByConfig(plan.pop)
	if def.keys != nil {
		plan.keys = def.keys()
	} else {
		plan.keys = ConfigKeys()
	}
	if def.rep {
		plan.jobs = repGrid(plan.keys, byCfg, def.keep)
	} else {
		plan.jobs = chipGrid(plan.keys, byCfg, def.keep)
	}
	plan.iters = o.Iterations
	if plan.iters == 0 {
		plan.iters = def.defaultIters
	}
	return plan, nil
}

// jobKeys renders the stable task keys: configuration plus chip name.
func (pl *charPlan) jobKeys() []string {
	keys := make([]string, len(pl.jobs))
	for i, j := range pl.jobs {
		keys[i] = j.key.String() + "/" + j.spec.Name
	}
	return keys
}

// charExperiment wires one chip-grid experiment into the registry.
func charExperiment[C any](name, desc string, def charGridDef,
	cell func(pl *charPlan, j chipJob) (C, error),
	finalize func(pl *charPlan, cells []C) (Artifact, error),
) {
	register(&experiment{
		name:        name,
		description: desc,
		params:      func() any { return &CharParams{} },
		run: func(rc *runCtx) (*Result, error) {
			pl, err := charPlanFor(rc.spec, def)
			if err != nil {
				return nil, err
			}
			return gridResult(rc, nil, pl.jobKeys(), pl.jobs,
				func(_ engine.TaskContext, j chipJob) (C, error) { return cell(pl, j) })
		},
		finalize: func(res *Result) (Artifact, error) {
			pl, err := charPlanFor(res.Spec, def)
			if err != nil {
				return nil, err
			}
			cells, err := cellsInOrder[C](res, pl.jobKeys())
			if err != nil {
				return nil, err
			}
			return finalize(pl, cells)
		},
	})
}

// rowHammerableOnly keeps the chips the paper's normalized-rate and
// ECC-word studies can measure.
func rowHammerableOnly(_ ConfigKey, s chips.ChipSpec) bool { return s.RowHammerable() }

// nonDDR3OldKeys excludes the configurations the paper skips in Table 5.
func nonDDR3OldKeys() []ConfigKey {
	var keys []ConfigKey
	for _, k := range ConfigKeys() {
		if k.Node == chips.DDR3Old {
			continue
		}
		keys = append(keys, k)
	}
	return keys
}

// figure9Keys excludes LPDDR4 (on-die ECC obfuscates raw flips) and the
// non-RowHammerable DDR3-old configurations.
func figure9Keys() []ConfigKey {
	var keys []ConfigKey
	for _, k := range ConfigKeys() {
		if k.Node == chips.LPDDR4x || k.Node == chips.LPDDR4y || k.Node == chips.DDR3Old {
			continue
		}
		keys = append(keys, k)
	}
	return keys
}

// ddr3Keys is Table 2's configuration list.
func ddr3Keys() []ConfigKey {
	var keys []ConfigKey
	for _, k := range ConfigKeys() {
		if k.Node.Type != chips.DDR3Old.Type {
			continue
		}
		keys = append(keys, k)
	}
	return keys
}

// coverageCell runs one configuration's Figure 4 / Table 3 measurement.
func coverageCell(pl *charPlan, j chipJob) (CoverageRow, error) {
	t, err := newTester(pl.pop, j.spec)
	if err != nil {
		return CoverageRow{}, err
	}
	hc := figure4HC
	if hc > t.MaxHC {
		hc = t.MaxHC
	}
	cov, err := t.MeasureCoverage(hc, pl.iters, pl.o.Stride)
	if err != nil {
		return CoverageRow{}, fmt.Errorf("coverage %v: %w", j.key, err)
	}
	worst, wok := cov.WorstPattern()
	return CoverageRow{
		Key:        j.key,
		Chip:       j.spec.Name,
		Coverage:   cov.Coverage,
		TotalFlips: cov.Total,
		Worst:      worst,
		WorstOK:    wok,
		PaperWorst: chips.WorstPattern(j.key.Node, j.key.Mfr),
	}, nil
}

func init() {
	coverageGrid := charGridDef{rep: true, defaultIters: 10}

	// table1: the census is one task over the whole module list.
	register(&experiment{
		name:        "table1",
		description: "Table 1: DRAM chip population census",
		params:      func() any { return &CharParams{} },
		run: func(rc *runCtx) (*Result, error) {
			pl, err := charPlanFor(rc.spec, charGridDef{})
			if err != nil {
				return nil, err
			}
			return gridResult(rc, nil, []string{"census"}, []int{0},
				func(engine.TaskContext, int) ([]chips.CensusRow, error) {
					return pl.pop.Census(), nil
				})
		},
		finalize: func(res *Result) (Artifact, error) {
			rows, err := cellsInOrder[[]chips.CensusRow](res, []string{"census"})
			if err != nil {
				return nil, err
			}
			return &Table1{Rows: rows[0]}, nil
		},
	})

	// table2: one task per DDR3 configuration over the ground-truth
	// spec census.
	register(&experiment{
		name:        "table2",
		description: "Table 2: RowHammerable DDR3 chips at HC < 150k",
		params:      func() any { return &CharParams{} },
		run: func(rc *runCtx) (*Result, error) {
			pl, err := charPlanFor(rc.spec, charGridDef{keys: ddr3Keys})
			if err != nil {
				return nil, err
			}
			// One ground-truth census shared by every configuration cell.
			counts := chips.SpecRowHammerable(pl.o.Modules, pl.o.Seed)
			return gridResult(rc, nil, configKeyStrings(pl.keys), pl.keys,
				func(_ engine.TaskContext, k ConfigKey) (Table2Row, error) {
					v := counts[k.Node][k.Mfr]
					return Table2Row{Key: k, Vulnerable: v[0], Total: v[1]}, nil
				})
		},
		finalize: func(res *Result) (Artifact, error) {
			pl, err := charPlanFor(res.Spec, charGridDef{keys: ddr3Keys})
			if err != nil {
				return nil, err
			}
			rows, err := cellsInOrder[Table2Row](res, configKeyStrings(pl.keys))
			if err != nil {
				return nil, err
			}
			return &Table2{Rows: rows}, nil
		},
	})

	charExperiment("fig4", "Figure 4: data-pattern coverage per configuration",
		coverageGrid, coverageCell,
		func(_ *charPlan, cells []CoverageRow) (Artifact, error) {
			return &Figure4{HC: figure4HC, Rows: cells}, nil
		})

	charExperiment("table3", "Table 3: worst-case data pattern per configuration",
		coverageGrid, coverageCell,
		func(_ *charPlan, cells []CoverageRow) (Artifact, error) {
			return &Table3{Rows: cells}, nil
		})

	charExperiment("fig5", "Figure 5: hammer count vs. bit-flip rate with log-log fits",
		charGridDef{},
		func(pl *charPlan, j chipJob) (map[int]float64, error) {
			t, err := newTester(pl.pop, j.spec)
			if err != nil {
				return nil, err
			}
			curve, err := t.RateCurve(charact.DefaultRateHCs(), pl.o.Stride)
			if err != nil {
				return nil, fmt.Errorf("rate curve %v: %w", j.key, err)
			}
			return curve, nil
		},
		func(pl *charPlan, cells []map[int]float64) (Artifact, error) {
			return finalizeFigure5(pl.keys, pl.jobs, cells), nil
		})

	charExperiment("fig6", "Figure 6: flip distribution by distance from the victim row",
		charGridDef{keep: rowHammerableOnly},
		func(pl *charPlan, j chipJob) (*spatialCell, error) {
			t, err := newTester(pl.pop, j.spec)
			if err != nil {
				return nil, err
			}
			hc, err := t.HCForRate(normalizedRate, pl.o.Stride)
			if err != nil {
				return nil, err
			}
			sp, err := t.MeasureSpatial(hc, pl.o.Stride)
			if err != nil {
				return nil, err
			}
			if sp.Total == 0 {
				return nil, nil
			}
			return &spatialCell{Fraction: sp.Fraction}, nil
		},
		func(pl *charPlan, cells []*spatialCell) (Artifact, error) {
			return finalizeFigure6(pl.keys, pl.jobs, cells), nil
		})

	charExperiment("fig7", "Figure 7: flips per 64-bit word at the normalized rate",
		charGridDef{keep: rowHammerableOnly},
		func(pl *charPlan, j chipJob) (*wordCell, error) {
			t, err := newTester(pl.pop, j.spec)
			if err != nil {
				return nil, err
			}
			hc, err := t.HCForRate(normalizedRate, pl.o.Stride)
			if err != nil {
				return nil, err
			}
			wd, err := t.MeasureWordDensity(hc, pl.o.Stride)
			if err != nil {
				return nil, err
			}
			if wd.Words == 0 {
				return nil, nil
			}
			return &wordCell{Fraction: wd.Fraction}, nil
		},
		func(pl *charPlan, cells []*wordCell) (Artifact, error) {
			return finalizeFigure7(pl.keys, pl.jobs, cells), nil
		})

	hcFirstCellFn := func(pl *charPlan, j chipJob) (hcFirstCell, error) {
		t, err := newTester(pl.pop, j.spec)
		if err != nil {
			return hcFirstCell{}, err
		}
		hc, found, err := t.MeasureHCFirst(charact.HCFirstOptions{Stride: pl.o.Stride})
		if err != nil {
			return hcFirstCell{}, fmt.Errorf("hcfirst %s: %w", j.spec.Name, err)
		}
		return hcFirstCell{HC: float64(hc), Found: found}, nil
	}
	charExperiment("fig8", "Figure 8: HCfirst distribution per configuration",
		charGridDef{}, hcFirstCellFn,
		func(pl *charPlan, cells []hcFirstCell) (Artifact, error) {
			study, err := finalizeHCFirst(pl.keys, pl.jobs, cells)
			if err != nil {
				return nil, err
			}
			return &Figure8{HCFirstStudy: study}, nil
		})
	charExperiment("table4", "Table 4: lowest HCfirst per configuration",
		charGridDef{}, hcFirstCellFn,
		func(pl *charPlan, cells []hcFirstCell) (Artifact, error) {
			study, err := finalizeHCFirst(pl.keys, pl.jobs, cells)
			if err != nil {
				return nil, err
			}
			return &Table4{HCFirstStudy: study}, nil
		})

	charExperiment("fig9", "Figure 9: HC to first 1/2/3-flip 64-bit word (ECC granularity)",
		charGridDef{keys: figure9Keys, keep: rowHammerableOnly},
		func(pl *charPlan, j chipJob) (eccCell, error) {
			t, err := newTester(pl.pop, j.spec)
			if err != nil {
				return eccCell{}, err
			}
			a := t.AnalyzeECCWords()
			var s eccCell
			for kk := 1; kk <= 3; kk++ {
				s.HC[kk], s.Found[kk] = a.HC[kk], a.Found[kk]
			}
			for kk := 1; kk <= 2; kk++ {
				s.Mult[kk], s.MultOK[kk] = a.Multiplier(kk)
			}
			return s, nil
		},
		func(pl *charPlan, cells []eccCell) (Artifact, error) {
			return finalizeFigure9(pl.keys, pl.jobs, cells), nil
		})

	charExperiment("table5", "Table 5: cells with monotonically increasing flip probability",
		charGridDef{keys: nonDDR3OldKeys, rep: true, keep: rowHammerableOnly, defaultIters: 20},
		func(pl *charPlan, j chipJob) (*Table5Row, error) {
			t, err := newTester(pl.pop, j.spec)
			if err != nil {
				return nil, err
			}
			m, err := t.MeasureMonotonicity(nil, pl.iters, pl.o.Stride)
			if err != nil {
				return nil, fmt.Errorf("monotonicity %v: %w", j.key, err)
			}
			if m.Cells == 0 {
				return nil, nil
			}
			return &Table5Row{Key: j.key, Percent: m.Percent(), Cells: m.Cells}, nil
		},
		func(pl *charPlan, cells []*Table5Row) (Artifact, error) {
			t5 := &Table5{Iterations: pl.iters}
			for _, r := range cells {
				if r != nil {
					t5.Rows = append(t5.Rows, *r)
				}
			}
			return t5, nil
		})

	// table7/table8: static module tables, one task each. They accept
	// CharParams for spec-template uniformity but the population tables
	// are scale-independent.
	moduleTable := func(name, desc string, build func() *ModuleTable) {
		register(&experiment{
			name:        name,
			description: desc,
			params:      func() any { return &CharParams{} },
			run: func(rc *runCtx) (*Result, error) {
				return gridResult(rc, nil, []string{"modules"}, []int{0},
					func(engine.TaskContext, int) ([]chips.ModuleSpec, error) {
						return build().Modules, nil
					})
			},
			finalize: func(res *Result) (Artifact, error) {
				mods, err := cellsInOrder[[]chips.ModuleSpec](res, []string{"modules"})
				if err != nil {
					return nil, err
				}
				return &ModuleTable{Title: build().Title, Modules: mods[0]}, nil
			},
		})
	}
	moduleTable("table7", "Table 7: DDR4 module population", RunTable7)
	moduleTable("table8", "Table 8: DDR3 module population", RunTable8)
}

// configKeyStrings renders a configuration list as task keys.
func configKeyStrings(keys []ConfigKey) []string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.String()
	}
	return out
}
