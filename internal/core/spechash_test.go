package core

import (
	"strings"
	"testing"
)

// goldenSpecHashes pins the content address of one default spec (seed 1,
// unsharded, default params) per registry entry. These hashes ARE the
// cache keys of internal/store: any change to the canonical spec
// encoding — field order, normalization, indentation, a renamed
// experiment — silently invalidates every cached result on every
// machine. If this test fails and the encoding change is intentional,
// regenerate the table AND call out the cache invalidation in the PR.
var goldenSpecHashes = map[string]string{
	"table1":    "069af9dad485cae688ae51841961875514c222d35781c1373d48eacfa4ee7007",
	"table2":    "c48d90dc9192a23fef9f65c50afcfdb8e4e94156eab7a00148753f3f0445e2c0",
	"fig4":      "fea6f055ac71f92a74d030b893c15198e7a7f8d6d0a4ff5c30f5e705c79f962c",
	"table3":    "35c2be94a3fb032ad55365ae62d78be2fae4ae7cb104e04ddfbedc6163d4a049",
	"fig5":      "a0c18845d50bebdb7550ac31bd9d3c5c83019b5376efbd71b651e9e85c240bf2",
	"fig6":      "d8974e112153c1ad52f3b3aa7c2d250657b702cb1eec169a15d480270cd44612",
	"fig7":      "0246ec21cac7202a2d0b72a5e97cdc03575dc194e9de331670fbfd3ecdfcda18",
	"fig8":      "6c398355bfa83346d27e97466aaacbd947006bc0c6aa31a55daef6c158cb2b0a",
	"table4":    "7bf71cc0b967d68c7eb1294f2545721e5a40a88a5cb0164594dad33de38a3c75",
	"fig9":      "63ec44cc43a6e5c77947d07dc6ed091691a8fdc172cb7898b9734c8e2aa5e101",
	"table5":    "5d201557ddfc625535245a657e8c9eef91e8c547946e1292c6046daf79bb68c3",
	"table7":    "9581015bceab2a0acf0088280761660a792eb82dd41f92d3b041e69e35814c29",
	"table8":    "dda90d93fa344daab9733bf1791c6ee8738734bac8caae332589ac551e00df4c",
	"fig10":     "7515522e1253e4b0f771fe897d27a0425ca2cdeba2dffe6329bda7bba128e5d4",
	"attack":    "bd90d9add4ef6d2ff50416e520f32e4a5b7dfb1ddc7dab4f235f812b8b715e26",
	"pareto":    "7cbbd4d11776f05f39b4bf8d562502475b731c8385313c3fb5396b33b87dbe6d",
	"trr-dodge": "d2c766914eb9d6a011907f4e40435c95566790ffa26b49f2dba4aeb4bfee2647",
}

// TestSpecHashGolden walks the registry: every experiment must have a
// pinned hash and every pinned hash must match, so both a changed
// canonical encoding and an unpinned new experiment fail loudly.
func TestSpecHashGolden(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		seen[e.Name] = true
		want, ok := goldenSpecHashes[e.Name]
		if !ok {
			t.Errorf("experiment %q has no golden spec hash; add it to goldenSpecHashes", e.Name)
			continue
		}
		spec, err := NewSpec(e.Name, 1, nil)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		got, err := spec.SpecHash()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if got != want {
			t.Errorf("%s: SpecHash = %s, want %s — the canonical spec encoding changed, which invalidates every cache",
				e.Name, got, want)
		}
	}
	for name := range goldenSpecHashes {
		if !seen[name] {
			t.Errorf("golden hash for %q names no registered experiment", name)
		}
	}
}

// TestSpecHashProperties pins the hash's structural contract: stability
// across re-encoding round-trips, sensitivity to every spec field, and
// the sharded-vs-whole-grid distinction WithoutShard erases.
func TestSpecHashProperties(t *testing.T) {
	spec, err := NewSpec("fig5", 7, CharParams{Scale: "tiny", Chips: 2, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := spec.SpecHash()
	if err != nil {
		t.Fatal(err)
	}
	if len(h1) != 64 || strings.ToLower(h1) != h1 {
		t.Fatalf("hash %q is not lowercase hex sha256", h1)
	}

	// Round-trip through the canonical encoding: same hash.
	enc, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := back.SpecHash()
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h1 {
		t.Errorf("round-trip changed hash: %s → %s", h1, h2)
	}

	// Every field contributes.
	seedVar := spec
	seedVar.Seed = 8
	if h, _ := seedVar.SpecHash(); h == h1 {
		t.Error("seed change did not change hash")
	}
	sharded := spec
	sharded.Shard = Shard{Index: 1, Count: 3}
	hs, err := sharded.SpecHash()
	if err != nil {
		t.Fatal(err)
	}
	if hs == h1 {
		t.Error("shard change did not change hash")
	}

	// WithoutShard restores the whole-grid identity.
	hw, err := sharded.WithoutShard().SpecHash()
	if err != nil {
		t.Fatal(err)
	}
	if hw != h1 {
		t.Errorf("WithoutShard hash = %s, want the unsharded spec's %s", hw, h1)
	}

	// Param JSON formatting must not matter: params are compacted.
	loose, err := DecodeSpec([]byte("{\n  \"name\": \"fig5\",\n  \"seed\": 7,\n  \"shard\": {\"index\":0,\"count\":1},\n  \"params\": {  \"scale\" : \"tiny\" ,\n \"chips\" : 2, \"iterations\": 2 }\n}\n"))
	if err != nil {
		t.Fatal(err)
	}
	hl, err := loose.SpecHash()
	if err != nil {
		t.Fatal(err)
	}
	if hl != h1 {
		t.Errorf("param whitespace changed hash: %s vs %s", hl, h1)
	}
}
