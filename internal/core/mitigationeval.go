package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// MechanismID names the evaluated mechanisms.
type MechanismID string

const (
	MechNone             MechanismID = "None"
	MechIncreasedRefresh MechanismID = "IncreasedRefresh"
	MechPARA             MechanismID = "PARA"
	MechProHIT           MechanismID = "ProHIT"
	MechMRLoc            MechanismID = "MRLoc"
	MechTWiCe            MechanismID = "TWiCe"
	MechTWiCeIdeal       MechanismID = "TWiCe-ideal"
	MechIdeal            MechanismID = "Ideal"
	// MechBlockHammer is the post-paper throttling contender evaluated by
	// the attack subsystem (RunAttackEval); it is not part of Figure 10's
	// paper-faithful mechanism list but can be requested explicitly. Its
	// RowBlocker-Req queue admission is requester-aware and proportional:
	// a blacklisted-row request is delayed in proportion to its source
	// thread's RowHammer likelihood index (BlockHammer's full design).
	MechBlockHammer MechanismID = "BlockHammer"
	// MechBlockHammerBinary is BlockHammer with the binary per-requester
	// admission gate (reject outright at RHLI ≥ 1) — the previous default,
	// kept as the comparison baseline for the proportional policy.
	MechBlockHammerBinary MechanismID = "BlockHammer-binary"
	// MechBlockHammerBlanket is BlockHammer with the legacy requester-
	// blind admission policy (reject any blacklisted-row read once the
	// queue is half full) — the baseline the per-thread policies are
	// measured against.
	MechBlockHammerBlanket MechanismID = "BlockHammer-blanket"
	// MechTRR is the in-DRAM counter-sampled Target Row Refresh model
	// (default sampler parameters): a small per-bank sampler table fed by
	// the activation stream in the observation window before each REF,
	// with neighbour refreshes piggybacked on REF commands. It is the
	// defense the trr-dodge experiment paces attacks around; that
	// experiment sweeps the sampler's rate/table-size axes directly.
	MechTRR MechanismID = "TRR"
)

// AllMechanisms lists the Figure 10 series in plotting order.
func AllMechanisms() []MechanismID {
	return []MechanismID{
		MechIncreasedRefresh, MechPARA, MechProHIT, MechMRLoc,
		MechTWiCe, MechTWiCeIdeal, MechIdeal,
	}
}

// buildMechanism constructs a mechanism instance for an HCfirst point.
func buildMechanism(id MechanismID, cfg sim.Config, hcFirst int, seed uint64) (mitigation.Mechanism, error) {
	p := cfg.MitigationParams(hcFirst, seed)
	switch id {
	case MechNone:
		return mitigation.NewNone(), nil
	case MechBlockHammer:
		return mitigation.NewBlockHammer(p)
	case MechBlockHammerBinary:
		return mitigation.NewBlockHammerBinary(p)
	case MechBlockHammerBlanket:
		return mitigation.NewBlockHammerBlanket(p)
	case MechTRR:
		return mitigation.NewTRR(p)
	case MechIncreasedRefresh:
		return mitigation.NewIncreasedRefresh(p)
	case MechPARA:
		return mitigation.NewPARA(p, cfg.T.TCKPS)
	case MechProHIT:
		return mitigation.NewProHIT(p)
	case MechMRLoc:
		return mitigation.NewMRLoc(p)
	case MechTWiCe:
		return mitigation.NewTWiCe(p, false)
	case MechTWiCeIdeal:
		return mitigation.NewTWiCe(p, true)
	case MechIdeal:
		return mitigation.NewIdeal(p)
	default:
		return nil, fmt.Errorf("core: unknown mechanism %q", id)
	}
}

// hcPointsFor returns the HCfirst sweep points a mechanism is evaluated
// at, following Section 6.2.2: ProHIT and MRLoc only at their published
// 2k point; Increased Refresh and real TWiCe only at ≥32k; PARA,
// TWiCe-ideal and Ideal across the whole sweep.
func hcPointsFor(id MechanismID, sweep []int) []int {
	var out []int
	for _, hc := range sweep {
		switch id {
		case MechProHIT, MechMRLoc:
			if hc == 2000 {
				out = append(out, hc)
			}
		case MechIncreasedRefresh, MechTWiCe:
			if hc >= 32_000 {
				out = append(out, hc)
			}
		case MechTWiCeIdeal:
			if hc < 32_000 {
				out = append(out, hc)
			}
		default:
			out = append(out, hc)
		}
	}
	return out
}

// DefaultHCSweep is the Figure 10 x-axis: 200k down to 64, including the
// ProHIT/MRLoc 2k point and the chips' minimum HCfirst values.
func DefaultHCSweep() []int {
	return []int{200_000, 100_000, 64_000, 32_000, 16_000, 8_000, 4_800,
		2_000, 1_024, 512, 256, 128, 64}
}

// MitigationOptions scales the Figure 10 evaluation.
type MitigationOptions struct {
	Mixes        int   // number of multi-programmed mixes (paper: 48)
	Cores        int   // cores per mix (paper: 8)
	TraceRecords int   // memory records per trace
	WarmupInsts  int64 // per core
	MeasureInsts int64 // per core
	HCSweep      []int
	Mechanisms   []MechanismID
	Parallelism  int // concurrent simulations; 0 = all cores
	Seed         uint64
}

// DefaultMitigationOptions is a CLI-scale configuration. The paper
// simulates 200M instructions per core over 48 mixes; these defaults keep
// the same structure at tractable cost.
func DefaultMitigationOptions() MitigationOptions {
	return MitigationOptions{
		Mixes:        48,
		Cores:        8,
		TraceRecords: 4_000,
		WarmupInsts:  5_000,
		MeasureInsts: 50_000,
		HCSweep:      DefaultHCSweep(),
		Mechanisms:   AllMechanisms(),
		Seed:         1,
	}
}

func (o MitigationOptions) normalized() MitigationOptions {
	if o.Mixes <= 0 {
		o.Mixes = 48
	}
	if o.Cores <= 0 {
		o.Cores = 8
	}
	if o.TraceRecords <= 0 {
		o.TraceRecords = 4_000
	}
	if o.MeasureInsts <= 0 {
		o.MeasureInsts = 50_000
	}
	if len(o.HCSweep) == 0 {
		o.HCSweep = DefaultHCSweep()
	}
	if len(o.Mechanisms) == 0 {
		o.Mechanisms = AllMechanisms()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// F10Point is one (mechanism, HCfirst) point of Figure 10, aggregated
// across mixes.
type F10Point struct {
	Mechanism MechanismID
	HCFirst   int
	Viable    bool

	// NormPerf is Figure 10b: weighted speedup normalized to the
	// no-mitigation baseline, in percent (mean / min / max across mixes).
	NormPerf, NormPerfMin, NormPerfMax float64

	// Overhead is Figure 10a: DRAM bandwidth overhead percent.
	Overhead, OverheadMin, OverheadMax float64
}

// Figure10 is the full mitigation evaluation.
type Figure10 struct {
	Points   []F10Point
	Mixes    int
	MixMPKIs []float64 // aggregate MPKI per mix on the baseline
}

// Fig10Params is the declarative (spec) form of MitigationOptions.
type Fig10Params struct {
	Mixes        int           `json:"mixes,omitempty"`
	Cores        int           `json:"cores,omitempty"`
	TraceRecords int           `json:"trace_records,omitempty"`
	WarmupInsts  int64         `json:"warmup_insts,omitempty"`
	MeasureInsts int64         `json:"measure_insts,omitempty"`
	HCSweep      []int         `json:"hc,omitempty"`
	Mechanisms   []MechanismID `json:"mechanisms,omitempty"`
}

// options expands the params into the imperative MitigationOptions form.
func (p Fig10Params) options(seed uint64) MitigationOptions {
	return MitigationOptions{
		Mixes:        p.Mixes,
		Cores:        p.Cores,
		TraceRecords: p.TraceRecords,
		WarmupInsts:  p.WarmupInsts,
		MeasureInsts: p.MeasureInsts,
		HCSweep:      p.HCSweep,
		Mechanisms:   p.Mechanisms,
		Seed:         seed,
	}
}

// fig10Params converts legacy options into the spec parameter form.
func (o MitigationOptions) fig10Params() Fig10Params {
	return Fig10Params{
		Mixes:        o.Mixes,
		Cores:        o.Cores,
		TraceRecords: o.TraceRecords,
		WarmupInsts:  o.WarmupInsts,
		MeasureInsts: o.MeasureInsts,
		HCSweep:      o.HCSweep,
		Mechanisms:   o.Mechanisms,
	}
}

// fig10Meta is the shard-invariant metadata: every shard recomputes the
// per-mix baselines identically from the spec's seed.
type fig10Meta struct {
	Mixes    int       `json:"mixes"`
	MixMPKIs []float64 `json:"mix_mpkis"`
}

// fig10Job is one (mechanism, HCfirst) task of the Figure 10 grid.
type fig10Job struct {
	mech MechanismID
	hc   int
}

// fig10Grid enumerates the (mechanism, HCfirst) tasks and their keys.
func fig10Grid(o MitigationOptions) (keys []string, jobs []fig10Job) {
	for _, id := range o.Mechanisms {
		for _, hc := range hcPointsFor(id, o.HCSweep) {
			keys = append(keys, fmt.Sprintf("mech=%s/hc=%d", id, hc))
			jobs = append(jobs, fig10Job{mech: id, hc: hc})
		}
	}
	return keys, jobs
}

// RunFigure10 evaluates every mechanism at every applicable HCfirst
// across the workload mixes. Baseline (no-mitigation) and single-core
// alone runs are shared across mechanisms. Both phases fan out through
// the experiment engine, so results are identical for any Parallelism.
func RunFigure10(o MitigationOptions) (*Figure10, error) {
	art, err := runSpecArtifact("fig10", o.Seed, o.fig10Params(), Exec{Parallelism: o.Parallelism})
	if err != nil {
		return nil, err
	}
	return art.(*Figure10), nil
}

func init() {
	register(&experiment{
		name:        "fig10",
		description: "Figure 10: mitigation-mechanism overhead across the HCfirst sweep",
		params:      func() any { return &Fig10Params{} },
		run: func(rc *runCtx) (*Result, error) {
			var p Fig10Params
			if err := rc.decode(&p); err != nil {
				return nil, err
			}
			o := p.options(rc.spec.Seed).normalized()
			cfg := sim.Table6Config(o.WarmupInsts, o.MeasureInsts)
			mixes := trace.Mixes(o.Mixes, o.Cores, o.TraceRecords, o.Seed)
			eo := rc.engineOptions(o.Seed)

			// Phase 1: per-mix baselines. Every shard recomputes them —
			// they are inputs to each grid cell, and being derived purely
			// from the spec's seed they agree bit-for-bit across shards.
			baselines, alones, err := mixBaselines(eo, cfg, mixes)
			if err != nil {
				return nil, err
			}
			meta := fig10Meta{Mixes: len(mixes)}
			for _, b := range baselines {
				meta.MixMPKIs = append(meta.MixMPKIs, b.mpki)
			}

			// Phase 2: the sharded (mechanism, HCfirst) grid.
			keys, jobs := fig10Grid(o)
			return gridResult(rc, meta, keys, jobs,
				func(_ engine.TaskContext, jb fig10Job) (F10Point, error) {
					pt, err := runPoint(cfg, o, jb.mech, jb.hc, mixes, alones, baselines)
					if err != nil {
						return F10Point{}, err
					}
					return *pt, nil
				})
		},
		finalize: func(res *Result) (Artifact, error) {
			var p Fig10Params
			if err := decodeParams(res.Spec.Params, &p); err != nil {
				return nil, err
			}
			o := p.options(res.Spec.Seed).normalized()
			var meta fig10Meta
			if err := json.Unmarshal(res.Meta, &meta); err != nil {
				return nil, fmt.Errorf("core: fig10 meta: %w", err)
			}
			keys, _ := fig10Grid(o)
			points, err := cellsInOrder[F10Point](res, keys)
			if err != nil {
				return nil, err
			}
			fig := &Figure10{Points: points, Mixes: meta.Mixes, MixMPKIs: meta.MixMPKIs}
			sort.SliceStable(fig.Points, func(i, j int) bool {
				if fig.Points[i].Mechanism != fig.Points[j].Mechanism {
					return fig.Points[i].Mechanism < fig.Points[j].Mechanism
				}
				return fig.Points[i].HCFirst > fig.Points[j].HCFirst
			})
			return fig, nil
		},
	})
}

// mixBaseline caches one mix's no-mitigation weighted speedup and MPKI.
type mixBaseline struct {
	ws   float64
	mpki float64
}

// runPoint evaluates one (mechanism, HCfirst) across all mixes.
func runPoint(cfg sim.Config, o MitigationOptions, id MechanismID, hc int,
	mixes []trace.Mix, alones [][]float64, baselines []mixBaseline,
) (*F10Point, error) {
	var perfs, overheads []float64
	viable := true
	for i := range mixes {
		mech, err := buildMechanism(id, cfg, hc, o.Seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
		if v, ok := mech.(mitigation.Viability); ok && !v.Viable() {
			viable = false
		}
		runCfg := cfg
		runCfg.Mechanism = mech
		res, err := sim.Run(runCfg, mixes[i])
		if err != nil {
			return nil, fmt.Errorf("%s hc=%d mix=%s: %w", id, hc, mixes[i].Name, err)
		}
		ws, err := sim.WeightedSpeedup(res.IPC, alones[i])
		if err != nil {
			return nil, err
		}
		perfs = append(perfs, 100*ws/baselines[i].ws)
		overheads = append(overheads, res.BandwidthOverheadPct)
	}
	pt := &F10Point{Mechanism: id, HCFirst: hc, Viable: viable}
	pt.NormPerf = stats.Mean(perfs)
	pt.NormPerfMin, _ = stats.Min(perfs)
	pt.NormPerfMax, _ = stats.Max(perfs)
	pt.Overhead = stats.Mean(overheads)
	pt.OverheadMin, _ = stats.Min(overheads)
	pt.OverheadMax, _ = stats.Max(overheads)
	return pt, nil
}

// PointsFor filters Figure 10's points for one mechanism, sorted by
// descending HCfirst (the paper's left-to-right x-axis).
func (f *Figure10) PointsFor(id MechanismID) []F10Point {
	var out []F10Point
	for _, p := range f.Points {
		if p.Mechanism == id {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].HCFirst > out[j].HCFirst })
	return out
}
