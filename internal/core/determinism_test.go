package core

import (
	"testing"

	"repro/internal/chips"
)

// The engine's contract: formatted experiment output is byte-identical
// regardless of worker count. These tests pin it for representative
// runners of each shape — one-chip-per-config (Table 3), all-chips fan-out
// (Figure 9, Figure 8/Table 4), and the two-phase mitigation sweep
// (Figure 10).

// detOptions returns tiny-scale options at the given parallelism.
func detOptions(parallelism int) Options {
	return Options{
		Scale:             chips.ScaleTiny,
		Stride:            1,
		MaxChipsPerConfig: 2,
		Iterations:        2,
		Parallelism:       parallelism,
		Seed:              1,
	}
}

func TestCharacterizationParallelismInvariant(t *testing.T) {
	runners := []struct {
		name string
		run  func(Options) (string, error)
	}{
		{"table2", func(o Options) (string, error) {
			r, err := RunTable2(o)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"table3", func(o Options) (string, error) {
			r, err := RunTable3(o)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"table5", func(o Options) (string, error) {
			r, err := RunTable5(o)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"figure5", func(o Options) (string, error) {
			r, err := RunFigure5(o)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"figure6", func(o Options) (string, error) {
			r, err := RunFigure6(o)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"figure7", func(o Options) (string, error) {
			r, err := RunFigure7(o)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
		{"figure8+table4", func(o Options) (string, error) {
			r, err := RunHCFirstStudy(o)
			if err != nil {
				return "", err
			}
			return r.FormatFigure8() + r.FormatTable4(), nil
		}},
		{"figure9", func(o Options) (string, error) {
			r, err := RunFigure9(o)
			if err != nil {
				return "", err
			}
			return r.Format(), nil
		}},
	}
	for _, tc := range runners {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial, err := tc.run(detOptions(1))
			if err != nil {
				t.Fatalf("parallelism=1: %v", err)
			}
			if serial == "" {
				t.Fatal("empty output")
			}
			parallel, err := tc.run(detOptions(8))
			if err != nil {
				t.Fatalf("parallelism=8: %v", err)
			}
			if serial != parallel {
				t.Errorf("output differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
			}
		})
	}
}

func TestFigure10ParallelismInvariant(t *testing.T) {
	run := func(parallelism int) string {
		o := MitigationOptions{
			Mixes:        2,
			Cores:        2,
			TraceRecords: 800,
			WarmupInsts:  500,
			MeasureInsts: 5_000,
			HCSweep:      []int{100_000, 2_000, 256},
			Mechanisms:   []MechanismID{MechPARA, MechIdeal, MechProHIT},
			Parallelism:  parallelism,
			Seed:         3,
		}
		f, err := RunFigure10(o)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		return f.Format()
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Errorf("Figure 10 output differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
