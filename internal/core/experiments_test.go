package core

import (
	"strings"
	"testing"

	"repro/internal/chips"
)

// tinyOptions keeps experiment tests fast: tiny chips, one chip per
// config, strided sweeps.
func tinyOptions() Options {
	return Options{
		Scale:             chips.ScaleTiny,
		Stride:            1,
		MaxChipsPerConfig: 1,
		Iterations:        2,
		Seed:              1,
	}
}

func TestRunTable1CensusMatchesPaper(t *testing.T) {
	t1, err := RunTable1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	totalChips, totalModules := 0, 0
	for _, r := range t1.Rows {
		totalChips += r.Chips
		totalModules += r.Modules
	}
	if totalModules != 300 {
		t.Errorf("modules = %d, want 300", totalModules)
	}
	// Tables 7/8 chip sums: DDR3 656, DDR4 832 (the paper's Table 1
	// headline counts differ slightly from its own appendix); LPDDR4 520.
	if totalChips < 1500 || totalChips > 2100 {
		t.Errorf("chips = %d, want ≈1580 (Tables 7/8 + LPDDR4 census)", totalChips)
	}
	out := t1.Format()
	if !strings.Contains(out, "LPDDR4-1y") {
		t.Errorf("Table 1 output missing LPDDR4-1y:\n%s", out)
	}
}

func TestRunTable2MatchesPaperFractions(t *testing.T) {
	t2, err := RunTable2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]int{
		"DDR3-old/Mfr.A": {24, 80},
		"DDR3-old/Mfr.B": {0, 88},
		"DDR3-old/Mfr.C": {0, 28},
		"DDR3-new/Mfr.A": {8, 80},
		"DDR3-new/Mfr.B": {44, 52},
		"DDR3-new/Mfr.C": {96, 104},
	}
	if len(t2.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(t2.Rows), len(want))
	}
	for _, r := range t2.Rows {
		w, ok := want[r.Key.String()]
		if !ok {
			t.Errorf("unexpected row %v", r.Key)
			continue
		}
		if r.Vulnerable != w[0] || r.Total != w[1] {
			t.Errorf("%v = %d/%d, want %d/%d", r.Key, r.Vulnerable, r.Total, w[0], w[1])
		}
	}
}

func TestRunTable3RecoversWorstPatterns(t *testing.T) {
	t3, err := RunTable3(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) == 0 {
		t.Fatal("no rows")
	}
	matched, measured := 0, 0
	for _, r := range t3.Rows {
		if !r.WorstOK {
			continue
		}
		measured++
		if r.Worst == r.PaperWorst || r.Worst == r.PaperWorst.Inverse() {
			matched++
		}
	}
	if measured == 0 {
		t.Fatal("no configuration produced enough flips")
	}
	if matched*3 < measured*2 {
		t.Errorf("only %d/%d measured worst patterns match the calibration", matched, measured)
	}
}

func TestRunFigure5SlopesPositive(t *testing.T) {
	f5, err := RunFigure5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Rows) == 0 {
		t.Fatal("no series")
	}
	for _, s := range f5.Rows {
		nonzero := 0
		lo, hi := 0.0, 0.0
		for _, r := range s.Points {
			if r > 0 {
				nonzero++
				if lo == 0 || r < lo {
					lo = r
				}
				if r > hi {
					hi = r
				}
			}
		}
		// A flat curve (e.g. an ECC chip whose only observable word
		// saturates at tiny scale) carries no slope information.
		if nonzero >= 3 && hi > 2*lo && s.Slope <= 0 {
			t.Errorf("%v: log-log slope %.2f not positive (Observation 4)", s.Key, s.Slope)
		}
	}
}

func TestRunHCFirstStudyOrdering(t *testing.T) {
	study, err := RunHCFirstStudy(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]HCFirstRow{}
	for _, r := range study.Rows {
		byKey[r.Key.String()] = r
	}
	// Observation 10: newer nodes have lower minimum HCfirst. With one
	// chip per config we check the headline orderings that drive the
	// paper's conclusion.
	pairs := [][2]string{
		{"LPDDR4-1y/Mfr.A", "LPDDR4-1x/Mfr.A"},
		{"DDR4-new/Mfr.A", "DDR4-old/Mfr.A"},
		{"DDR4-new/Mfr.C", "DDR4-old/Mfr.C"},
	}
	for _, p := range pairs {
		newer, okN := byKey[p[0]]
		older, okO := byKey[p[1]]
		if !okN || !okO || len(newer.Measured) == 0 || len(older.Measured) == 0 {
			t.Errorf("missing data for %v vs %v", p[0], p[1])
			continue
		}
		if newer.MinHC >= older.MinHC {
			t.Errorf("%s min HCfirst (%.0f) not below %s (%.0f)",
				p[0], newer.MinHC, p[1], older.MinHC)
		}
	}
	if out := study.FormatTable4(); !strings.Contains(out, "Table 4") {
		t.Error("FormatTable4 output malformed")
	}
	if out := study.FormatFigure8(); !strings.Contains(out, "Figure 8") {
		t.Error("FormatFigure8 output malformed")
	}
}

func TestRunFigure9Multipliers(t *testing.T) {
	o := tinyOptions()
	o.MaxChipsPerConfig = 2
	f9, err := RunFigure9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range f9.Rows {
		if r.MeanHC[1] <= 0 {
			continue
		}
		if r.MeanHC[2] > 0 && r.MeanHC[2] < r.MeanHC[1] {
			t.Errorf("%v: HC(2) %.0f < HC(1) %.0f", r.Key, r.MeanHC[2], r.MeanHC[1])
		}
		for _, m := range r.Multipliers[1] {
			if m < 1 {
				t.Errorf("%v: multiplier %v < 1", r.Key, m)
			}
		}
	}
}

func TestRunFigure10MiniSweep(t *testing.T) {
	o := MitigationOptions{
		Mixes:        2,
		Cores:        2,
		TraceRecords: 1_000,
		WarmupInsts:  1_000,
		MeasureInsts: 8_000,
		HCSweep:      []int{100_000, 2_000, 256},
		Mechanisms:   []MechanismID{MechPARA, MechIdeal, MechProHIT},
		Seed:         3,
	}
	f10, err := RunFigure10(o)
	if err != nil {
		t.Fatal(err)
	}
	para := f10.PointsFor(MechPARA)
	if len(para) != 3 {
		t.Fatalf("PARA evaluated at %d points, want 3", len(para))
	}
	// PARA's performance must degrade as HCfirst shrinks.
	if !(para[0].NormPerf >= para[2].NormPerf) {
		t.Errorf("PARA perf not monotone: %.1f%% at %d vs %.1f%% at %d",
			para[0].NormPerf, para[0].HCFirst, para[2].NormPerf, para[2].HCFirst)
	}
	// Ideal must dominate PARA at the lowest HCfirst.
	ideal := f10.PointsFor(MechIdeal)
	if len(ideal) != 3 {
		t.Fatalf("Ideal evaluated at %d points, want 3", len(ideal))
	}
	if ideal[2].NormPerf < para[2].NormPerf-1 {
		t.Errorf("Ideal (%.1f%%) below PARA (%.1f%%) at HCfirst=256",
			ideal[2].NormPerf, para[2].NormPerf)
	}
	// ProHIT only at its published point.
	prohit := f10.PointsFor(MechProHIT)
	if len(prohit) != 1 || prohit[0].HCFirst != 2_000 {
		t.Fatalf("ProHIT points = %+v, want single 2000 entry", prohit)
	}
	if out := f10.Format(); !strings.Contains(out, "normalized system performance") {
		t.Error("Figure 10 output malformed")
	}
}
