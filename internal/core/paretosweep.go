package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/attack"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/faultmodel"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file is the shared sweep core behind the system-level evaluation
// runners. RunFigure10 (benign overhead), RunAttackEval (security under
// attack) and RunParetoSweep (the combined frontier) are all two-phase
// experiments — a baseline phase followed by a grid fanned out over the
// deterministic engine — and they share the machinery here: scheduler
// selection, the benign baseline, per-mix baselines, and the single-cell
// attack runner every grid point funnels through.

// SchedulerID names a memory-controller scheduling policy of the sweep's
// scheduler axis.
type SchedulerID string

const (
	// SchedFRFCFS is the paper's baseline first-ready FCFS scheduler.
	SchedFRFCFS SchedulerID = "FR-FCFS"
	// SchedBLISS is the fairness-aware variant: per-requester service
	// streak counters blacklist a requester that monopolizes consecutive
	// read service, demoting (never blocking) its requests until the next
	// clearing interval.
	SchedBLISS SchedulerID = "BLISS"
)

// Schedulers lists the scheduler axis in evaluation order.
func Schedulers() []SchedulerID { return []SchedulerID{SchedFRFCFS, SchedBLISS} }

// applyScheduler configures a simulation for the scheduling policy.
// streak and clear parameterize BLISS (0 keeps the controller defaults:
// streak 4, clearing interval 10k cycles) and are ignored for FR-FCFS.
func applyScheduler(cfg *sim.Config, id SchedulerID, streak int, clear int64) error {
	switch id {
	case "", SchedFRFCFS:
		return nil
	case SchedBLISS:
		cfg.Ctrl.BLISS = true
		cfg.Ctrl.BLISSStreak = streak
		cfg.Ctrl.BLISSClearCycles = clear
		return nil
	default:
		return fmt.Errorf("core: unknown scheduler %q", id)
	}
}

// attackSimCfg builds the simulated system for a duration-terminated
// adversarial run. rows 0 keeps the Table 6 geometry.
func attackSimCfg(memCycles int64, rows int) sim.Config {
	cfg := sim.Table6Config(0, 1)
	if rows > 0 {
		cfg.Geo.Rows = rows
		cfg.T = dram.DDR4_2400(rows)
	}
	cfg.WarmupInsts = 0
	cfg.MeasureInsts = 1 << 40 // duration-terminated: MaxCPUCycles decides
	cfg.MaxCPUCycles = memCycles * int64(cfg.CPUFreqMHz) / int64(cfg.MemFreqMHz)
	return cfg
}

// attackChip builds the victim chip for an HCfirst point: a DDR4-like
// part spanning the simulated channel, blast radius 1. Without on-die ECC
// escaped flips are directly attributable; with it (the LPDDR4-like
// configuration) the observer reports post-correction escapes alongside
// raw flips.
func attackChip(cfg sim.Config, hc int, seed uint64, ecc bool) (*faultmodel.Chip, error) {
	chip, err := faultmodel.NewChip(faultmodel.Config{
		Name:         fmt.Sprintf("attacked-hc%d", hc),
		Banks:        cfg.Geo.Banks(),
		Rows:         cfg.Geo.Rows,
		RowBits:      1024,
		HCFirst:      float64(hc),
		Rate150k:     5e-5,
		WorstPattern: faultmodel.RowStripe0,
		OnDieECC:     ecc,
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	chip.WriteAll(faultmodel.RowStripe0)
	return chip, nil
}

// benignBaseline runs the benign cores alone — no attacker, no
// mitigation, FR-FCFS — as the shared performance reference of the
// adversarial sweeps.
func benignBaseline(cfg sim.Config, cores, records int, seed uint64) (trace.Mix, []float64, *sim.Result, error) {
	benign := trace.Mixes(1, cores, records, seed)[0]
	benign.Name = "benign"
	base, err := sim.Run(cfg, benign)
	if err != nil {
		return trace.Mix{}, nil, nil, fmt.Errorf("benign baseline: %w", err)
	}
	for i, v := range base.IPC {
		if v <= 0 {
			return trace.Mix{}, nil, nil, fmt.Errorf("benign baseline: core %d IPC is zero", i)
		}
	}
	return benign, base.IPC, base, nil
}

// mixBaselines is phase 1 of the benign sweeps: every mix's single-core
// alone IPCs and no-mitigation weighted speedup, fanned out over the
// engine.
func mixBaselines(eo engine.Options, cfg sim.Config, mixes []trace.Mix) ([]mixBaseline, [][]float64, error) {
	type mixResult struct {
		alone []float64
		base  mixBaseline
	}
	mixResults, err := engine.Map(eo, mixes, func(_ engine.TaskContext, mix trace.Mix) (mixResult, error) {
		alone, err := sim.RunAlone(cfg, mix)
		if err != nil {
			return mixResult{}, err
		}
		res, err := sim.Run(cfg, mix)
		if err != nil {
			return mixResult{}, err
		}
		ws, err := sim.WeightedSpeedup(res.IPC, alone)
		if err != nil {
			return mixResult{}, err
		}
		return mixResult{alone: alone, base: mixBaseline{ws: ws, mpki: res.MPKI}}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	baselines := make([]mixBaseline, len(mixes))
	alones := make([][]float64, len(mixes))
	for i, r := range mixResults {
		baselines[i] = r.base
		alones[i] = r.alone
	}
	return baselines, alones, nil
}

// sweepCell is one grid point of an adversarial sweep: a mechanism and
// scheduler facing one attack pattern at one HCfirst. An empty Pattern
// marks a benign-only cell (the mechanism's overhead with no attacker in
// the system). streamSeed derives from (pattern, HCfirst) only — never
// the mechanism or scheduler — so every contender at a grid point faces
// the same chip (same weakest cell, same thresholds) and the same
// attacker stream; anything else would confound the comparison.
type sweepCell struct {
	Mech    MechanismID
	Sched   SchedulerID
	Pattern attack.Kind
	HC      int
	// blissStreak / blissClear parameterize the BLISS scheduler for this
	// cell (0 = controller defaults); the Pareto sweep can take them as
	// grid axes.
	blissStreak int
	blissClear  int64
	streamSeed  uint64
	// duty / phase override the shared attack spec's pacing for this cell
	// (the trr-dodge grid takes them as axes); duty 0 keeps the shared
	// cellOptions.Spec values (full rate unless the spec paces).
	duty, phase float64
	// trr, when non-nil, builds the cell's mechanism as a TRR sampler
	// with this configuration instead of going through buildMechanism —
	// the trr-dodge grid's sampler rate/table-size axes.
	trr *mitigation.TRRConfig
}

// cellOptions carries the system-shape knobs runSweepCell needs; both
// AttackOptions and ParetoOptions reduce to it.
type cellOptions struct {
	MemCycles     int64
	AttackRecords int
	ECC           bool
	Spec          attack.Spec // Kind/Records/Seed overridden per cell
}

// runSweepCell runs one grid point: a mixed attacker+benign simulation
// (or a benign-only one for an empty Pattern) under the cell's mechanism
// and scheduler, reporting security and performance together. mechSeed is
// the per-task seed for mechanism-internal randomness.
func runSweepCell(cfg sim.Config, o cellOptions, cell sweepCell,
	benign trace.Mix, baseIPC []float64, mechSeed uint64,
) (*AttackPoint, error) {
	pt, _, _, err := runSweepCellObs(cfg, o, cell, benign, baseIPC, mechSeed)
	return pt, err
}

// runSweepCellObs is runSweepCell exposing the run's observer and
// mechanism, for grids (trr-dodge) whose cell payload carries per-REF
// timeline evidence and mechanism-internal counters. The observer is nil
// for benign-only cells.
func runSweepCellObs(cfg sim.Config, o cellOptions, cell sweepCell,
	benign trace.Mix, baseIPC []float64, mechSeed uint64,
) (*AttackPoint, *attack.Observer, mitigation.Mechanism, error) {
	if err := applyScheduler(&cfg, cell.Sched, cell.blissStreak, cell.blissClear); err != nil {
		return nil, nil, nil, err
	}
	var mech mitigation.Mechanism
	var err error
	if cell.trr != nil {
		mech, err = mitigation.NewTRRWithConfig(cfg.MitigationParams(cell.HC, mechSeed^0x3eca), *cell.trr)
	} else {
		mech, err = buildMechanism(cell.Mech, cfg, cell.HC, mechSeed^0x3eca)
	}
	if err != nil {
		return nil, nil, nil, err
	}

	mix := trace.Mix{Name: "benign-only"}
	var obs *attack.Observer
	if cell.Pattern != "" {
		chip, err := attackChip(cfg, cell.HC, cell.streamSeed, o.ECC)
		if err != nil {
			return nil, nil, nil, err
		}
		// The attacker has profiled the chip (the strong threat model of
		// Section 6): aim at the weakest cell's row.
		weak := chip.WeakestCell()
		spec := o.Spec
		spec.Kind = cell.Pattern
		spec.Records = o.AttackRecords
		spec.Seed = cell.streamSeed ^ 0xdec0
		if cell.duty > 0 {
			spec.DutyCycle = cell.duty
			spec.Phase = cell.phase
		}
		attackTrace, aggressors, err := spec.Synthesize(cfg.Geo, attack.Target{Bank: weak.Bank, Row: weak.Row})
		if err != nil {
			return nil, nil, nil, err
		}
		obs = attack.NewObserver(chip)
		obs.WatchAggressors(aggressors)
		mix.Name = "attack-" + string(cell.Pattern)
		mix.Traces = append(mix.Traces, attackTrace)
	}
	mix.Traces = append(mix.Traces, benign.Traces...)

	runCfg := cfg
	runCfg.Mechanism = mech
	if obs != nil {
		runCfg.Observer = obs
	}
	res, err := sim.Run(runCfg, mix)
	if err != nil {
		return nil, nil, nil, err
	}

	pt := &AttackPoint{
		Mechanism:           cell.Mech,
		Scheduler:           cell.Sched,
		Pattern:             cell.Pattern,
		HCFirst:             cell.HC,
		Viable:              true,
		OverheadPct:         res.BandwidthOverheadPct,
		ThrottleStallCycles: res.Ctrl.ThrottleStallCycles,
		TimeToFirstFlipMS:   -1,
	}
	if v, ok := mech.(mitigation.Viability); ok {
		pt.Viable = v.Viable()
	}
	if obs != nil {
		pt.EscapedFlips = obs.EscapedFlips()
		pt.RawFlips = obs.RawFlips()
		pt.AggressorACTs = obs.AggressorACTs()
		if c := obs.FirstFlipCycle(); c >= 0 {
			pt.TimeToFirstFlipMS = float64(c) * float64(cfg.T.TCKPS) * 1e-9
		}
		if secs := float64(o.MemCycles) * float64(cfg.T.TCKPS) * 1e-12; secs > 0 {
			pt.AggACTsPerSec = float64(obs.AggressorACTs()) / secs
		}
		// DoS attribution: the attacker sits at core 0 of the mix, so its
		// per-requester bus-busy share is the fraction of demand DRAM
		// service the attack consumed.
		pt.AttackerBusPct = res.Ctrl.BusSharePct(0)
	}
	// Benign performance: weighted speedup of the benign cores against
	// their unattacked, unmitigated baseline. In an attack cell the benign
	// cores sit at positions 1..N behind the attacker; in a benign-only
	// cell they are the whole mix. An attacker-only run (trr-dodge with
	// BenignCores 0) has no benign side to measure: -1.
	if len(baseIPC) == 0 {
		pt.BenignPerfPct = -1
		return pt, obs, mech, nil
	}
	off := 0
	if cell.Pattern != "" {
		off = 1
	}
	ws := 0.0
	for i, b := range baseIPC {
		ws += res.IPC[i+off] / b
	}
	pt.BenignPerfPct = 100 * ws / float64(len(baseIPC))
	return pt, obs, mech, nil
}

// --- Pareto sweep --------------------------------------------------------

// ParetoOptions scales the combined security/overhead sweep: the
// (mechanism × scheduler × HCfirst) grid, each point evaluated under
// every attack pattern plus one attacker-free run.
type ParetoOptions struct {
	Mechanisms []MechanismID
	Schedulers []SchedulerID
	Patterns   []attack.Kind
	HCSweep    []int

	// BenignCores / TraceRecords size the benign side of each mix;
	// MemCycles the attack window; Rows the per-bank geometry (0 =
	// Table 6); AttackRecords one attacker trace pass (0 = default).
	BenignCores   int
	TraceRecords  int
	MemCycles     int64
	Rows          int
	AttackRecords int

	// ECC evaluates LPDDR4-like chips with on-die ECC: escaped flips are
	// post-correction, reported alongside the raw count.
	ECC bool
	// AttackSpec carries pattern pacing (Phase/DutyCycle/Gap) applied to
	// every synthesized stream; Kind/Records/Seed are set per grid cell.
	AttackSpec attack.Spec

	// BLISSStreaks / BLISSClears turn the BLISS scheduler parameters into
	// sweep axes: every BLISS grid point is evaluated at each (streak,
	// clearing-interval) combination. Empty means one point at the
	// controller defaults (streak 4, 10k cycles). FR-FCFS points ignore
	// both axes.
	BLISSStreaks []int
	BLISSClears  []int64

	Parallelism int
	Seed        uint64
}

// DefaultParetoOptions is the CLI-scale configuration: the unprotected
// baseline, the paper's most scalable refresh-based mechanism, both
// BlockHammer admission policies and the oracle bound, under both
// schedulers, against the two highest-pressure patterns.
func DefaultParetoOptions() ParetoOptions {
	return ParetoOptions{
		Mechanisms: []MechanismID{MechNone, MechPARA, MechBlockHammerBlanket, MechBlockHammer, MechIdeal},
		Schedulers: Schedulers(),
		Patterns:   []attack.Kind{attack.DoubleSided, attack.Decoy},
		HCSweep:    []int{4_800, 512},

		BenignCores:  3,
		TraceRecords: 2_000,
		MemCycles:    3_000_000,
		Seed:         1,
	}
}

func (o ParetoOptions) normalized() ParetoOptions {
	d := DefaultParetoOptions()
	if len(o.Mechanisms) == 0 {
		o.Mechanisms = d.Mechanisms
	}
	if len(o.Schedulers) == 0 {
		o.Schedulers = d.Schedulers
	}
	if len(o.Patterns) == 0 {
		o.Patterns = d.Patterns
	}
	if len(o.HCSweep) == 0 {
		o.HCSweep = d.HCSweep
	}
	if o.BenignCores <= 0 {
		o.BenignCores = d.BenignCores
	}
	if o.TraceRecords <= 0 {
		o.TraceRecords = d.TraceRecords
	}
	if o.MemCycles <= 0 {
		o.MemCycles = d.MemCycles
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// ParetoPoint is one (mechanism, scheduler, HCfirst) frontier candidate,
// aggregated across attack patterns.
type ParetoPoint struct {
	Mechanism MechanismID
	Scheduler SchedulerID
	// BLISSStreak / BLISSClear identify the BLISS parameter point when
	// the sweep takes them as axes (0 = controller defaults).
	BLISSStreak int
	BLISSClear  int64
	HCFirst     int
	Viable      bool

	// Security axis: worst case across the evaluated attack patterns.
	EscapedFlips int
	RawFlips     int

	// Overhead axis: BenignPerfPct is the worst-case benign throughput
	// under attack (% of the unattacked, unmitigated baseline);
	// NoAttackPerfPct the same metric with no attacker in the system (the
	// mechanism+scheduler's pure benign cost); OverheadPct the worst-case
	// Figure 10a DRAM bandwidth overhead under attack.
	BenignPerfPct   float64
	NoAttackPerfPct float64
	OverheadPct     float64

	// OnFrontier marks points no other point at the same HCfirst
	// dominates (fewer-or-equal escaped flips AND greater-or-equal benign
	// throughput, with at least one strict).
	OnFrontier bool
}

// ParetoSweep is the full frontier result.
type ParetoSweep struct {
	Points    []ParetoPoint
	Patterns  []attack.Kind
	MemCycles int64
	WallMS    float64
	Benign    string
	ECC       bool
}

// ParetoParams is the declarative (spec) form of ParetoOptions.
type ParetoParams struct {
	Mechanisms    []MechanismID `json:"mechanisms,omitempty"`
	Schedulers    []SchedulerID `json:"schedulers,omitempty"`
	Patterns      []attack.Kind `json:"patterns,omitempty"`
	HCSweep       []int         `json:"hc,omitempty"`
	BenignCores   int           `json:"benign_cores,omitempty"`
	TraceRecords  int           `json:"trace_records,omitempty"`
	MemCycles     int64         `json:"mem_cycles,omitempty"`
	Rows          int           `json:"rows,omitempty"`
	AttackRecords int           `json:"attack_records,omitempty"`
	ECC           bool          `json:"ecc,omitempty"`
	Attack        *attack.Spec  `json:"attack,omitempty"`
	// BLISSStreaks / BLISSClears are the BLISS scheduler-parameter axes
	// (ROADMAP's fairness/throughput trade-off map); empty means one
	// point at the controller defaults.
	BLISSStreaks []int   `json:"bliss_streaks,omitempty"`
	BLISSClears  []int64 `json:"bliss_clears,omitempty"`
}

// Validate rejects axis values the grid cannot distinguish from the
// defaults (labels would collide into duplicate task keys), and attack
// pacing outside its [0,1) domain.
func (p *ParetoParams) Validate() error {
	if p.Attack != nil {
		if err := p.Attack.Validate(); err != nil {
			return err
		}
	}
	for _, s := range p.BLISSStreaks {
		if s <= 0 {
			return fmt.Errorf("core: pareto bliss_streaks value %d not positive (omit the field for the controller default)", s)
		}
	}
	for _, c := range p.BLISSClears {
		if c <= 0 {
			return fmt.Errorf("core: pareto bliss_clears value %d not positive (omit the field for the controller default)", c)
		}
	}
	return nil
}

// options expands the params into the imperative ParetoOptions form.
func (p ParetoParams) options(seed uint64) ParetoOptions {
	o := ParetoOptions{
		Mechanisms:    p.Mechanisms,
		Schedulers:    p.Schedulers,
		Patterns:      p.Patterns,
		HCSweep:       p.HCSweep,
		BenignCores:   p.BenignCores,
		TraceRecords:  p.TraceRecords,
		MemCycles:     p.MemCycles,
		Rows:          p.Rows,
		AttackRecords: p.AttackRecords,
		ECC:           p.ECC,
		BLISSStreaks:  p.BLISSStreaks,
		BLISSClears:   p.BLISSClears,
		Seed:          seed,
	}
	if p.Attack != nil {
		o.AttackSpec = *p.Attack
	}
	return o
}

// paretoParams converts legacy options into the spec parameter form.
func (o ParetoOptions) paretoParams() ParetoParams {
	p := ParetoParams{
		Mechanisms:    o.Mechanisms,
		Schedulers:    o.Schedulers,
		Patterns:      o.Patterns,
		HCSweep:       o.HCSweep,
		BenignCores:   o.BenignCores,
		TraceRecords:  o.TraceRecords,
		MemCycles:     o.MemCycles,
		Rows:          o.Rows,
		AttackRecords: o.AttackRecords,
		ECC:           o.ECC,
		BLISSStreaks:  o.BLISSStreaks,
		BLISSClears:   o.BLISSClears,
	}
	if o.AttackSpec != (attack.Spec{}) {
		spec := o.AttackSpec
		p.Attack = &spec
	}
	return p
}

// blissVariant is one point of the BLISS parameter axes.
type blissVariant struct {
	streak int
	clear  int64
}

// blissVariants expands the configured axes; FR-FCFS uses the single
// zero variant.
func (o ParetoOptions) blissVariants(sched SchedulerID) []blissVariant {
	if sched != SchedBLISS {
		return []blissVariant{{}}
	}
	streaks := o.BLISSStreaks
	if len(streaks) == 0 {
		streaks = []int{0}
	}
	clears := o.BLISSClears
	if len(clears) == 0 {
		clears = []int64{0}
	}
	var out []blissVariant
	for _, s := range streaks {
		for _, c := range clears {
			out = append(out, blissVariant{streak: s, clear: c})
		}
	}
	return out
}

// paretoGrid flattens the (mechanism × scheduler-variant × HCfirst) grid:
// per point, every attack pattern plus the benign-only cell, in
// deterministic order. The stream seed depends only on (pattern, HCfirst)
// so every contender faces the same chip and attacker stream.
func paretoGrid(o ParetoOptions) (keys []string, cells []sweepCell) {
	for _, mech := range o.Mechanisms {
		for _, sched := range o.Schedulers {
			for _, v := range o.blissVariants(sched) {
				for hi, hc := range o.HCSweep {
					add := func(pat attack.Kind, seed uint64) {
						cells = append(cells, sweepCell{
							Mech: mech, Sched: sched, Pattern: pat, HC: hc,
							blissStreak: v.streak, blissClear: v.clear,
							streamSeed: seed,
						})
						patLabel := string(pat)
						if pat == "" {
							patLabel = "benign-only"
						}
						keys = append(keys, fmt.Sprintf("mech=%s/sched=%s/hc=%d/pat=%s",
							mech, variantLabel(sched, v.streak, v.clear), hc, patLabel))
					}
					for pi, p := range o.Patterns {
						add(p, engine.DeriveSeed(o.Seed^0x57eea, uint64(pi*len(o.HCSweep)+hi)))
					}
					add("", 0)
				}
			}
		}
	}
	return keys, cells
}

// variantLabel renders a scheduler with its BLISS parameters, matching
// SchedulerLabel on points.
func variantLabel(sched SchedulerID, streak int, clear int64) string {
	if sched != SchedBLISS || (streak == 0 && clear == 0) {
		return schedLabel(sched)
	}
	s, c := streak, clear
	if s == 0 {
		s = 4
	}
	if c == 0 {
		c = 10_000
	}
	return fmt.Sprintf("%s[s=%d,c=%d]", SchedBLISS, s, c)
}

// SchedulerLabel renders the point's scheduler including any non-default
// BLISS parameters.
func (p ParetoPoint) SchedulerLabel() string {
	return variantLabel(p.Scheduler, p.BLISSStreak, p.BLISSClear)
}

// RunParetoSweep evaluates the (mechanism × scheduler × HCfirst) grid:
// every point runs one mixed attacker+benign simulation per attack
// pattern plus one attacker-free run, all fanned out over the experiment
// engine (results are bit-identical for any Parallelism), and the
// worst-case aggregates form escaped-flips-vs-benign-overhead frontier
// points per HCfirst. The BLISS streak/clear axes multiply the scheduler
// dimension when set.
func RunParetoSweep(o ParetoOptions) (*ParetoSweep, error) {
	art, err := runSpecArtifact("pareto", o.Seed, o.paretoParams(), Exec{Parallelism: o.Parallelism})
	if err != nil {
		return nil, err
	}
	return art.(*ParetoSweep), nil
}

func init() {
	register(&experiment{
		name:        "pareto",
		description: "Pareto sweep: worst-case security vs benign overhead per (mechanism × scheduler × HCfirst)",
		params:      func() any { return &ParetoParams{} },
		run: func(rc *runCtx) (*Result, error) {
			var p ParetoParams
			if err := rc.decode(&p); err != nil {
				return nil, err
			}
			o := p.options(rc.spec.Seed).normalized()
			cfg := attackSimCfg(o.MemCycles, o.Rows)
			benign, baseIPC, base, err := benignBaseline(cfg, o.BenignCores, o.TraceRecords, o.Seed)
			if err != nil {
				return nil, err
			}
			keys, cells := paretoGrid(o)
			co := cellOptions{
				MemCycles:     o.MemCycles,
				AttackRecords: o.AttackRecords,
				ECC:           o.ECC,
				Spec:          o.AttackSpec,
			}
			meta := sweepMeta{
				MemCycles: o.MemCycles,
				WallMS:    float64(o.MemCycles) * float64(cfg.T.TCKPS) * 1e-9,
				Benign:    fmt.Sprintf("%d benign cores, MPKI %.0f", o.BenignCores, base.MPKI),
				ECC:       o.ECC,
			}
			return gridResult(rc, meta, keys, cells,
				func(ctx engine.TaskContext, cell sweepCell) (AttackPoint, error) {
					pt, err := runSweepCell(cfg, co, cell, benign, baseIPC, ctx.Seed)
					if err != nil {
						return AttackPoint{}, fmt.Errorf("%s/%s/%s hc=%d: %w",
							cell.Mech, cell.Sched, cell.Pattern, cell.HC, err)
					}
					return *pt, nil
				})
		},
		finalize: func(res *Result) (Artifact, error) {
			var p ParetoParams
			if err := decodeParams(res.Spec.Params, &p); err != nil {
				return nil, err
			}
			o := p.options(res.Spec.Seed).normalized()
			var meta sweepMeta
			if err := json.Unmarshal(res.Meta, &meta); err != nil {
				return nil, fmt.Errorf("core: pareto meta: %w", err)
			}
			keys, cells := paretoGrid(o)
			results, err := cellsInOrder[AttackPoint](res, keys)
			if err != nil {
				return nil, err
			}
			return finalizePareto(o, meta, cells, results), nil
		},
	})
}

// finalizePareto aggregates each grid point's pattern block (worst case)
// plus its benign-only run into frontier points.
func finalizePareto(o ParetoOptions, meta sweepMeta, cells []sweepCell, results []AttackPoint) *ParetoSweep {
	sweep := &ParetoSweep{
		Patterns:  o.Patterns,
		MemCycles: meta.MemCycles,
		WallMS:    meta.WallMS,
		Benign:    meta.Benign,
		ECC:       meta.ECC,
	}
	perPoint := len(o.Patterns) + 1
	for start := 0; start+perPoint <= len(results); start += perPoint {
		block := results[start : start+perPoint]
		cell := cells[start]
		pt := ParetoPoint{
			Mechanism:   block[0].Mechanism,
			Scheduler:   block[0].Scheduler,
			BLISSStreak: cell.blissStreak,
			BLISSClear:  cell.blissClear,
			HCFirst:     block[0].HCFirst,
			Viable:      block[0].Viable,
		}
		pt.BenignPerfPct = block[0].BenignPerfPct
		for _, r := range block[:len(block)-1] { // attack cells
			if r.EscapedFlips > pt.EscapedFlips {
				pt.EscapedFlips = r.EscapedFlips
			}
			if r.RawFlips > pt.RawFlips {
				pt.RawFlips = r.RawFlips
			}
			if r.BenignPerfPct < pt.BenignPerfPct {
				pt.BenignPerfPct = r.BenignPerfPct
			}
			if r.OverheadPct > pt.OverheadPct {
				pt.OverheadPct = r.OverheadPct
			}
		}
		pt.NoAttackPerfPct = block[len(block)-1].BenignPerfPct
		sweep.Points = append(sweep.Points, pt)
	}
	markFrontier(sweep.Points)
	return sweep
}

// markFrontier sets OnFrontier per HCfirst group: a point is on the
// frontier unless some other point at the same HCfirst has no more
// escaped flips and no less worst-case benign throughput, with at least
// one strict improvement.
func markFrontier(points []ParetoPoint) {
	for i := range points {
		points[i].OnFrontier = true
		for j := range points {
			if i == j || points[i].HCFirst != points[j].HCFirst {
				continue
			}
			noWorse := points[j].EscapedFlips <= points[i].EscapedFlips &&
				points[j].BenignPerfPct >= points[i].BenignPerfPct
			strictly := points[j].EscapedFlips < points[i].EscapedFlips ||
				points[j].BenignPerfPct > points[i].BenignPerfPct
			if noWorse && strictly {
				points[i].OnFrontier = false
				break
			}
		}
	}
}

// PointFor returns the aggregate for one (mechanism, scheduler, HCfirst)
// grid point, if present.
func (s *ParetoSweep) PointFor(mech MechanismID, sched SchedulerID, hc int) (ParetoPoint, bool) {
	for _, p := range s.Points {
		if p.Mechanism == mech && p.Scheduler == sched && p.HCFirst == hc {
			return p, true
		}
	}
	return ParetoPoint{}, false
}

// Frontier returns the non-dominated points for one HCfirst, in grid
// order.
func (s *ParetoSweep) Frontier(hc int) []ParetoPoint {
	var out []ParetoPoint
	for _, p := range s.Points {
		if p.HCFirst == hc && p.OnFrontier {
			out = append(out, p)
		}
	}
	return out
}

// Format renders the frontier tables, one HCfirst group per table.
func (s *ParetoSweep) Format() string {
	var sb strings.Builder
	pats := make([]string, len(s.Patterns))
	for i, p := range s.Patterns {
		pats[i] = string(p)
	}
	fmt.Fprintf(&sb, "Pareto sweep: worst-case security vs benign overhead per (mechanism × scheduler × HCfirst)\n")
	fmt.Fprintf(&sb, "(%.2f ms window, patterns %s, %s", s.WallMS, strings.Join(pats, "+"), s.Benign)
	if s.ECC {
		sb.WriteString(", on-die ECC")
	}
	sb.WriteString(")\n")

	var hcs []int
	seen := map[int]bool{}
	for _, p := range s.Points {
		if !seen[p.HCFirst] {
			seen[p.HCFirst] = true
			hcs = append(hcs, p.HCFirst)
		}
	}
	for _, hc := range hcs {
		fmt.Fprintf(&sb, "\nHCfirst = %d\n", hc)
		sb.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "mechanism\tscheduler\tflips\traw\tbenign-perf%\tno-attack%\tbw-overhead%\tviable\tfrontier")
			for _, p := range s.Points {
				if p.HCFirst != hc {
					continue
				}
				front := ""
				if p.OnFrontier {
					front = "*"
				}
				fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.1f\t%.1f\t%.3f\t%v\t%s\n",
					p.Mechanism, p.SchedulerLabel(), p.EscapedFlips, p.RawFlips,
					p.BenignPerfPct, p.NoAttackPerfPct, p.OverheadPct, p.Viable, front)
			}
		}))
	}
	sb.WriteString("\nfrontier (*): no same-HCfirst point has fewer escaped flips and higher worst-case benign throughput.\n")
	return sb.String()
}
