package core

// The declarative experiment API. Every paper artifact (and every
// post-paper evaluation) is a named experiment in a registry; one
// JSON-serializable ExperimentSpec — name, parameters, seed, shard —
// fully determines a run. Run(spec) enumerates the experiment's task
// grid deterministically, keeps the tasks the spec's shard owns (stable
// task-key hashing, so any shard/count partition covers the grid exactly
// once), fans them out over the deterministic engine, and returns a
// Result whose canonical encoding merges with the other shards' into the
// byte-identical artifact a single-process run would produce.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Shard selects one slice of an experiment's task grid: shard Index of
// Count. The zero Shard (or Count ≤ 1) is the whole grid. Task ownership
// is decided by hashing the task's stable key, never by position, so
// running every Index in 0..Count-1 covers the grid exactly once for any
// Count.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// normalized maps the zero value to the canonical unsharded form 0/1.
func (s Shard) normalized() Shard {
	if s.Count <= 1 {
		return Shard{Index: 0, Count: 1}
	}
	return s
}

// Validate rejects impossible shards.
func (s Shard) Validate() error {
	n := s.normalized()
	if n.Index < 0 || n.Index >= n.Count {
		return fmt.Errorf("core: shard index %d out of range for count %d", s.Index, s.Count)
	}
	return nil
}

func (s Shard) String() string {
	n := s.normalized()
	return fmt.Sprintf("%d/%d", n.Index, n.Count)
}

// ParseShard parses the CLI form "index/count" (e.g. "2/8").
func ParseShard(v string) (Shard, error) {
	parts := strings.Split(v, "/")
	if len(parts) != 2 {
		return Shard{}, fmt.Errorf("core: shard %q not of the form index/count", v)
	}
	idx, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	cnt, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || cnt < 1 {
		return Shard{}, fmt.Errorf("core: shard %q not of the form index/count", v)
	}
	s := Shard{Index: idx, Count: cnt}
	if err := s.Validate(); err != nil {
		return Shard{}, err
	}
	return s, nil
}

// owns reports whether this shard runs the task with the given stable
// key. Ownership hashes the key alone, so it is independent of grid
// order, shard index enumeration, and everything else about the run.
func (s Shard) owns(key string) bool {
	n := s.normalized()
	if n.Count == 1 {
		return true
	}
	return int(keyHash(key)%uint64(n.Count)) == n.Index
}

// keyHash is FNV-1a over the key bytes: stable across processes and Go
// versions (unlike maphash), which shard partitioning requires.
func keyHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// ExperimentSpec is the declarative description of one experiment run:
// which registered experiment, with which parameters, from which seed,
// over which shard of the task grid. It round-trips through JSON, so a
// spec file plus a shard assignment is everything a worker process needs.
type ExperimentSpec struct {
	// Name selects a registered experiment ("table1" … "fig10",
	// "attack", "pareto", "trr-dodge"; see Experiments()).
	Name string `json:"name"`
	// Seed is the base seed of every derived per-task seed; 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Shard selects the slice of the task grid this run executes.
	Shard Shard `json:"shard"`
	// Params holds the experiment-specific parameters as raw JSON,
	// decoded strictly (unknown fields are errors) against the
	// experiment's parameter struct. Empty means all defaults.
	Params json.RawMessage `json:"params,omitempty"`
}

// normalized canonicalizes the spec: seed 0 → 1, shard → 0/1 form,
// params compacted so encodings compare byte-for-byte.
func (s ExperimentSpec) normalized() ExperimentSpec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	s.Shard = s.Shard.normalized()
	if len(s.Params) > 0 {
		var buf bytes.Buffer
		if json.Compact(&buf, s.Params) == nil {
			s.Params = json.RawMessage(buf.Bytes())
		}
	}
	return s
}

// sansShard is the spec with the shard erased (the whole-grid identity),
// used to check that results being merged came from the same experiment.
func (s ExperimentSpec) sansShard() ExperimentSpec {
	n := s.normalized()
	n.Shard = Shard{Index: 0, Count: 1}
	return n
}

// Validate checks the spec against the registry: the name must be
// registered, the shard possible, and the params must decode strictly
// into the experiment's parameter struct.
func (s ExperimentSpec) Validate() error {
	exp, err := lookup(s.Name)
	if err != nil {
		return err
	}
	if err := s.Shard.Validate(); err != nil {
		return err
	}
	return decodeParams(s.Params, exp.params())
}

// Encode renders the spec as canonical JSON (normalized, two-space
// indented, trailing newline).
func (s ExperimentSpec) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s.normalized(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WithoutShard returns the normalized whole-grid identity of the spec:
// the same experiment, seed and params with the shard erased. Two specs
// that differ only in shard assignment share a WithoutShard identity —
// the key the result store files whole-grid artifacts under.
func (s ExperimentSpec) WithoutShard() ExperimentSpec { return s.sansShard() }

// SpecHash returns the lowercase hex SHA-256 of the spec's canonical
// encoding (Encode: normalized seed/shard, compacted params, two-space
// indent, trailing newline). It is the spec's content address: every
// byte of the canonical encoding — including the shard — contributes, so
// a sharded spec hashes differently from its WithoutShard identity, and
// any change to the canonical encoding changes every hash (the golden
// tests pin this, because a silent change would invalidate every cache).
func (s ExperimentSpec) SpecHash() (string, error) {
	b, err := s.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// DecodeSpec parses a spec from JSON, rejecting unknown top-level fields,
// and validates it against the registry.
func DecodeSpec(data []byte) (ExperimentSpec, error) {
	var s ExperimentSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return ExperimentSpec{}, fmt.Errorf("core: bad experiment spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return ExperimentSpec{}, err
	}
	return s.normalized(), nil
}

// NewSpec builds a validated spec from a name, seed and a parameter
// struct (nil for all defaults).
func NewSpec(name string, seed uint64, params any) (ExperimentSpec, error) {
	s := ExperimentSpec{Name: name, Seed: seed}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return ExperimentSpec{}, err
		}
		if !bytes.Equal(raw, []byte("{}")) && !bytes.Equal(raw, []byte("null")) {
			s.Params = raw
		}
	}
	if err := s.Validate(); err != nil {
		return ExperimentSpec{}, err
	}
	return s.normalized(), nil
}

// paramsValidator lets a parameter struct add semantic checks beyond
// strict field decoding (e.g. rejecting non-positive axis values), so
// bad specs fail at validation time rather than mid-run.
type paramsValidator interface{ Validate() error }

// decodeParams strictly decodes raw params into an experiment's
// parameter struct; empty raw leaves the defaults untouched.
func decodeParams(raw json.RawMessage, into any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("core: bad experiment params: %w", err)
	}
	if v, ok := into.(paramsValidator); ok {
		return v.Validate()
	}
	return nil
}
