package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/attack"
)

// runShards executes a spec unsharded and as every shard of the given
// count, returning (full, parts).
func runShards(t *testing.T, spec ExperimentSpec, count int) (*Result, []*Result) {
	t.Helper()
	full, err := Run(spec)
	if err != nil {
		t.Fatalf("unsharded: %v", err)
	}
	var parts []*Result
	for idx := 0; idx < count; idx++ {
		s := spec
		s.Shard = Shard{Index: idx, Count: count}
		r, err := Run(s)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", idx, count, err)
		}
		parts = append(parts, r)
	}
	return full, parts
}

// checkShardInvariance is the PR's acceptance criterion: merging every
// shard of a spec yields a result byte-identical (canonical JSON) to the
// unsharded run, and the same formatted artifact.
func checkShardInvariance(t *testing.T, spec ExperimentSpec, count int) {
	t.Helper()
	full, parts := runShards(t, spec, count)
	if !full.Complete() {
		t.Fatalf("unsharded run incomplete: %d/%d tasks", len(full.Cells), full.Tasks)
	}
	covered := 0
	for _, p := range parts {
		covered += len(p.Cells)
	}
	if covered != full.Tasks {
		t.Fatalf("shards cover %d cells, want exactly %d (partition broken)", covered, full.Tasks)
	}
	merged, err := MergeResults(parts...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	fullEnc, err := full.Encode()
	if err != nil {
		t.Fatal(err)
	}
	mergedEnc, err := merged.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullEnc, mergedEnc) {
		t.Errorf("merged encoding differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			fullEnc, mergedEnc)
	}
	fullText, err := full.Format()
	if err != nil {
		t.Fatalf("format unsharded: %v", err)
	}
	mergedText, err := merged.Format()
	if err != nil {
		t.Fatalf("format merged: %v", err)
	}
	if fullText == "" {
		t.Error("empty formatted artifact")
	}
	if fullText != mergedText {
		t.Errorf("formatted artifact differs:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			fullText, mergedText)
	}
}

// TestMergeDecodedPartWithFreshPart pins the cache-resume contract: a
// shard result round-tripped through Encode/DecodeResult (whose raw
// JSON picked up the document's indentation) must still merge with a
// freshly computed shard holding compact Meta and cell bytes.
func TestMergeDecodedPartWithFreshPart(t *testing.T) {
	spec, err := NewSpec("fig5", 3, CharParams{Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	meta := json.RawMessage(`{"mem_cycles":1000,"benign":"attacker only"}`)
	part0 := &Result{
		Spec:  func() ExperimentSpec { s := spec; s.Shard = Shard{Index: 0, Count: 2}; return s }(),
		Tasks: 2,
		Meta:  meta,
		Cells: map[string]json.RawMessage{"a": json.RawMessage(`{"flips":[1,2]}`)},
	}
	enc, err := part0.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cached, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cached.Meta, meta) {
		t.Fatalf("decoded Meta not compacted: %q", cached.Meta)
	}
	fresh := &Result{
		Spec:  func() ExperimentSpec { s := spec; s.Shard = Shard{Index: 1, Count: 2}; return s }(),
		Tasks: 2,
		Meta:  meta,
		Cells: map[string]json.RawMessage{"b": json.RawMessage(`{"flips":[3]}`)},
	}
	merged, err := MergeResults(cached, fresh)
	if err != nil {
		t.Fatalf("merge cached+fresh: %v", err)
	}
	if !merged.Complete() {
		t.Fatalf("merged covers %d/%d cells", len(merged.Cells), merged.Tasks)
	}
}

// TestMergeDeterministicConflictAndBytes pins the mapiter fix in
// MergeResults and DecodeResult: with several conflicting cells, the
// error must name the lexically first key on every run (not whichever
// the map iterator yields), and repeated merges of the same parts must
// encode byte-identically.
func TestMergeDeterministicConflictAndBytes(t *testing.T) {
	spec, err := NewSpec("fig5", 3, CharParams{Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	shard := func(idx, count int, cells map[string]json.RawMessage) *Result {
		s := spec
		s.Shard = Shard{Index: idx, Count: count}
		return &Result{Spec: s, Tasks: 4, Meta: json.RawMessage(`{}`), Cells: cells}
	}
	a := shard(0, 2, map[string]json.RawMessage{
		"cell-a": json.RawMessage(`{"v":1}`),
		"cell-b": json.RawMessage(`{"v":2}`),
		"cell-c": json.RawMessage(`{"v":3}`),
	})
	conflict := shard(1, 2, map[string]json.RawMessage{
		"cell-a": json.RawMessage(`{"v":9}`),
		"cell-b": json.RawMessage(`{"v":9}`),
		"cell-c": json.RawMessage(`{"v":9}`),
	})
	// Many iterations so a map-order regression cannot pass by luck:
	// with 3 conflicting cells, 30 runs miss at probability (1/3)^29.
	for i := 0; i < 30; i++ {
		_, err := MergeResults(a, conflict)
		if err == nil {
			t.Fatal("merge of conflicting cells succeeded")
		}
		if want := `core: merge: conflicting cell "cell-a"`; err.Error() != want {
			t.Fatalf("iteration %d: conflict error = %q, want %q", i, err, want)
		}
	}

	b := shard(1, 2, map[string]json.RawMessage{
		"cell-d": json.RawMessage(`{"v":4}`),
	})
	var first []byte
	for i := 0; i < 10; i++ {
		merged, err := MergeResults(a, b)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := merged.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = enc
		} else if !bytes.Equal(enc, first) {
			t.Fatalf("iteration %d: merged encoding differs between runs of the same merge", i)
		}
	}
}

// TestShardMergeInvariance covers one characterization grid, the attack
// grid and the Pareto sweep (plus the two-phase Figure 10), each at two
// shard counts.
func TestShardMergeInvariance(t *testing.T) {
	tinyChar := CharParams{Scale: "tiny", Chips: 2, Iterations: 2}
	cases := []struct {
		name   string
		seed   uint64
		params any
	}{
		{"fig5", 1, tinyChar},
		{"fig8", 1, tinyChar},
		{"attack", 7, AttackParams{
			Patterns:     []attack.Kind{attack.DoubleSided, attack.Scattered},
			Mechanisms:   []MechanismID{MechNone, MechIdeal},
			HCSweep:      []int{512},
			BenignCores:  2,
			TraceRecords: 800,
			MemCycles:    150_000,
			Rows:         1024,
		}},
		{"pareto", 7, ParetoParams{
			Mechanisms:   []MechanismID{MechNone, MechIdeal},
			Schedulers:   []SchedulerID{SchedFRFCFS, SchedBLISS},
			Patterns:     []attack.Kind{attack.DoubleSided},
			HCSweep:      []int{512},
			BenignCores:  2,
			TraceRecords: 800,
			MemCycles:    150_000,
			Rows:         1024,
		}},
		{"fig10", 3, Fig10Params{
			Mixes:        2,
			Cores:        2,
			TraceRecords: 800,
			WarmupInsts:  500,
			MeasureInsts: 5_000,
			HCSweep:      []int{100_000, 2_000},
			Mechanisms:   []MechanismID{MechPARA, MechIdeal},
		}},
		{"trr-dodge", 7, TRRDodgeParams{
			Patterns:    []attack.Kind{attack.DoubleSided},
			DutyCycles:  []float64{0, 0.25},
			Phases:      []float64{0, 0.5},
			SampleRates: []float64{0.5},
			TableSizes:  []int{4},
			HCFirst:     256,
			MemCycles:   150_000,
			Rows:        1024,
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			spec, err := NewSpec(tc.name, tc.seed, tc.params)
			if err != nil {
				t.Fatal(err)
			}
			for _, count := range []int{2, 3} {
				t.Run(fmt.Sprintf("count=%d", count), func(t *testing.T) {
					checkShardInvariance(t, spec, count)
				})
			}
		})
	}
}

// TestParetoBLISSAxes pins the satellite: the BLISS streak/clear spec
// parameters multiply the scheduler axis, each variant carries its
// parameters on the point, and the labels distinguish them.
func TestParetoBLISSAxes(t *testing.T) {
	spec, err := NewSpec("pareto", 7, ParetoParams{
		Mechanisms:   []MechanismID{MechNone},
		Schedulers:   []SchedulerID{SchedBLISS},
		Patterns:     []attack.Kind{attack.DoubleSided},
		HCSweep:      []int{512},
		BenignCores:  2,
		TraceRecords: 600,
		MemCycles:    100_000,
		Rows:         1024,
		BLISSStreaks: []int{2, 8},
		BLISSClears:  []int64{20_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	art, err := res.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	sweep := art.(*ParetoSweep)
	if len(sweep.Points) != 2 {
		t.Fatalf("points = %d, want 2 (one per streak value)", len(sweep.Points))
	}
	labels := map[string]bool{}
	for _, p := range sweep.Points {
		if p.Scheduler != SchedBLISS {
			t.Errorf("point scheduler = %s, want BLISS", p.Scheduler)
		}
		if p.BLISSClear != 20_000 {
			t.Errorf("point BLISSClear = %d, want 20000", p.BLISSClear)
		}
		labels[p.SchedulerLabel()] = true
	}
	for _, want := range []string{"BLISS[s=2,c=20000]", "BLISS[s=8,c=20000]"} {
		if !labels[want] {
			t.Errorf("missing scheduler label %q in %v", want, labels)
		}
	}
}
