// Package core orchestrates the paper's experiments: it iterates chip
// populations through the charact measurement primitives and the sim
// mitigation harness, aggregates per-configuration statistics, and
// formats each of the paper's tables and figures (DESIGN.md §5).
package core

import (
	"fmt"
	"sort"

	"repro/internal/chips"
	"repro/internal/faultmodel"
)

// Options scales the characterization experiments. It is the legacy
// imperative form of CharParams: every RunX(Options) wrapper converts it
// to a spec and routes through the experiment registry, so Options must
// stay expressible as CharParams (in particular, Modules supports only
// the named population sets).
type Options struct {
	// Scale is the chip geometry / instantiation cap (chips.ScaleTiny …
	// chips.ScaleFull).
	Scale chips.Scale
	// Modules is the population; nil means chips.AllModules(). The spec
	// path only expresses the named sets (all/ddr3/ddr4/lpddr4), so a
	// custom slice here makes the RunX wrappers error.
	Modules []chips.ModuleSpec
	// Stride samples victim rows in full-chip sweeps (1 = every row).
	Stride int
	// MaxChipsPerConfig caps instantiated chips per (type-node, mfr)
	// pair in heavy experiments; 0 = no cap.
	MaxChipsPerConfig int
	// Iterations for repeated-measurement experiments (Figure 4's 10,
	// Table 5's 20); 0 keeps each experiment's default.
	Iterations int
	// Parallelism bounds concurrent per-chip tasks in the experiment
	// engine; 0 uses all cores. Results are identical for any value.
	Parallelism int
	Seed        uint64
}

// DefaultOptions is a medium-cost configuration suitable for CLI runs.
func DefaultOptions() Options {
	return Options{
		Scale:             chips.ScaleSmall,
		Stride:            1,
		MaxChipsPerConfig: 4,
		Seed:              1,
	}
}

func (o Options) normalized() Options {
	if o.Scale.Rows == 0 {
		o.Scale = chips.ScaleSmall
	}
	if o.Modules == nil {
		o.Modules = chips.AllModules()
	}
	if o.Stride < 1 {
		o.Stride = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ConfigKey identifies one cell of the paper's per-configuration tables.
type ConfigKey struct {
	Node chips.TypeNode
	Mfr  string
}

func (k ConfigKey) String() string { return fmt.Sprintf("%v/Mfr.%s", k.Node, k.Mfr) }

// ConfigKeys lists the populated configurations in the paper's order.
func ConfigKeys() []ConfigKey {
	var keys []ConfigKey
	for _, tn := range chips.TypeNodes {
		for _, mfr := range chips.Manufacturers {
			if chips.HasConfiguration(tn, mfr) {
				keys = append(keys, ConfigKey{Node: tn, Mfr: mfr})
			}
		}
	}
	return keys
}

// population builds the (possibly capped) chip population.
func (o Options) population() *chips.Population {
	return chips.NewPopulation(o.Modules, o.Scale, o.Seed)
}

// chipsByConfig groups population chips per configuration, capped at
// MaxChipsPerConfig keeping the weakest chips first (the paper's
// representative chips are the interesting, flippable ones).
func (o Options) chipsByConfig(pop *chips.Population) map[ConfigKey][]chips.ChipSpec {
	m := make(map[ConfigKey][]chips.ChipSpec)
	for _, c := range pop.Chips {
		k := ConfigKey{Node: c.Node, Mfr: c.Mfr}
		m[k] = append(m[k], c)
	}
	//rhlint:allow mapiter(independent per-key in-place rewrite)
	for k, list := range m {
		// Stable sort with a chip-ID tie-break: equal-HCFirst chips must
		// not depend on incidental input order, or capped selection below
		// would be irreproducible.
		sort.SliceStable(list, func(i, j int) bool {
			if list[i].HCFirst != list[j].HCFirst {
				return list[i].HCFirst < list[j].HCFirst
			}
			return list[i].Name < list[j].Name
		})
		if o.MaxChipsPerConfig > 0 && len(list) > o.MaxChipsPerConfig {
			list = list[:o.MaxChipsPerConfig]
		}
		m[k] = list
	}
	return m
}

// representative returns the chip the per-chip figures use: the weakest
// (most RowHammerable) chip of the configuration.
func representative(specs []chips.ChipSpec) (chips.ChipSpec, bool) {
	if len(specs) == 0 {
		return chips.ChipSpec{}, false
	}
	best := specs[0]
	for _, s := range specs[1:] {
		if s.HCFirst < best.HCFirst {
			best = s
		}
	}
	return best, true
}

// patternName renders a pattern like the paper's tables ("RowStripe0").
func patternName(p faultmodel.Pattern) string { return p.String() }

// CharParams is the declarative (spec) form of Options: the parameter
// block of every characterization experiment in the registry. The zero
// value means the CLI-scale defaults (DefaultOptions).
type CharParams struct {
	// Scale names a predefined geometry: tiny, small (default), medium,
	// full.
	Scale string `json:"scale,omitempty"`
	// CustomScale overrides Scale with an explicit geometry.
	CustomScale *chips.Scale `json:"custom_scale,omitempty"`
	// Modules names the population: all (default), ddr3, ddr4, lpddr4.
	Modules string `json:"modules,omitempty"`
	// Chips caps instantiated chips per configuration: 0 means the
	// default cap (4), -1 means every chip.
	Chips int `json:"chips,omitempty"`
	// Stride samples victim rows in full-chip sweeps (0 or 1 = every row).
	Stride int `json:"stride,omitempty"`
	// Iterations for repeated-measurement experiments; 0 keeps each
	// experiment's paper default.
	Iterations int `json:"iterations,omitempty"`
}

// scalesByName maps the predefined geometry names.
var scalesByName = map[string]chips.Scale{
	"tiny":   chips.ScaleTiny,
	"small":  chips.ScaleSmall,
	"medium": chips.ScaleMedium,
	"full":   chips.ScaleFull,
}

// scaleName returns the predefined name of a scale, if any.
func scaleName(s chips.Scale) (string, bool) {
	for _, name := range []string{"tiny", "small", "medium", "full"} {
		if scalesByName[name] == s {
			return name, true
		}
	}
	return "", false
}

// modulesByName resolves the named population sets.
func modulesByName(name string) ([]chips.ModuleSpec, error) {
	switch name {
	case "", "all":
		return chips.AllModules(), nil
	case "ddr3":
		return chips.DDR3Modules(), nil
	case "ddr4":
		return chips.DDR4Modules(), nil
	case "lpddr4":
		return chips.LPDDR4Modules(), nil
	default:
		return nil, fmt.Errorf("core: unknown module set %q (all, ddr3, ddr4, lpddr4)", name)
	}
}

// options expands the params into the imperative Options form.
func (p CharParams) options(seed uint64) (Options, error) {
	o := Options{Seed: seed}
	switch {
	case p.CustomScale != nil:
		o.Scale = *p.CustomScale
	case p.Scale == "":
		o.Scale = chips.ScaleSmall
	default:
		s, ok := scalesByName[p.Scale]
		if !ok {
			return Options{}, fmt.Errorf("core: unknown scale %q (tiny, small, medium, full)", p.Scale)
		}
		o.Scale = s
	}
	mods, err := modulesByName(p.Modules)
	if err != nil {
		return Options{}, err
	}
	o.Modules = mods
	switch {
	case p.Chips < 0:
		o.MaxChipsPerConfig = 0 // uncapped
	case p.Chips == 0:
		o.MaxChipsPerConfig = DefaultOptions().MaxChipsPerConfig
	default:
		o.MaxChipsPerConfig = p.Chips
	}
	o.Stride = p.Stride
	o.Iterations = p.Iterations
	return o, nil
}

// charParams converts legacy Options into the spec parameter form; a
// custom Modules slice is not expressible and errors.
func (o Options) charParams() (CharParams, error) {
	if o.Modules != nil {
		return CharParams{}, fmt.Errorf("core: custom Options.Modules cannot be expressed as an experiment spec; use the named sets (all, ddr3, ddr4, lpddr4)")
	}
	p := CharParams{Stride: o.Stride, Iterations: o.Iterations}
	scale := o.Scale
	if scale.Rows == 0 {
		scale = chips.ScaleSmall
	}
	if name, ok := scaleName(scale); ok {
		p.Scale = name
	} else {
		s := scale
		p.CustomScale = &s
	}
	switch {
	case o.MaxChipsPerConfig == 0:
		p.Chips = -1 // uncapped
	case o.MaxChipsPerConfig == DefaultOptions().MaxChipsPerConfig:
		p.Chips = 0
	default:
		p.Chips = o.MaxChipsPerConfig
	}
	return p, nil
}
