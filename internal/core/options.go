// Package core orchestrates the paper's experiments: it iterates chip
// populations through the charact measurement primitives and the sim
// mitigation harness, aggregates per-configuration statistics, and
// formats each of the paper's tables and figures (DESIGN.md §5).
package core

import (
	"fmt"
	"sort"

	"repro/internal/chips"
	"repro/internal/engine"
	"repro/internal/faultmodel"
)

// Options scales the characterization experiments.
type Options struct {
	// Scale is the chip geometry / instantiation cap (chips.ScaleTiny …
	// chips.ScaleFull).
	Scale chips.Scale
	// Modules is the population; nil means chips.AllModules().
	Modules []chips.ModuleSpec
	// Stride samples victim rows in full-chip sweeps (1 = every row).
	Stride int
	// MaxChipsPerConfig caps instantiated chips per (type-node, mfr)
	// pair in heavy experiments; 0 = no cap.
	MaxChipsPerConfig int
	// Iterations for repeated-measurement experiments (Figure 4's 10,
	// Table 5's 20); 0 keeps each experiment's default.
	Iterations int
	// Parallelism bounds concurrent per-chip tasks in the experiment
	// engine; 0 uses all cores. Results are identical for any value.
	Parallelism int
	Seed        uint64
}

// DefaultOptions is a medium-cost configuration suitable for CLI runs.
func DefaultOptions() Options {
	return Options{
		Scale:             chips.ScaleSmall,
		Stride:            1,
		MaxChipsPerConfig: 4,
		Seed:              1,
	}
}

func (o Options) normalized() Options {
	if o.Scale.Rows == 0 {
		o.Scale = chips.ScaleSmall
	}
	if o.Modules == nil {
		o.Modules = chips.AllModules()
	}
	if o.Stride < 1 {
		o.Stride = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// engine returns the executor options for this run's fan-outs.
func (o Options) engine() engine.Options {
	return engine.Options{Workers: o.Parallelism, Seed: o.Seed}
}

// ConfigKey identifies one cell of the paper's per-configuration tables.
type ConfigKey struct {
	Node chips.TypeNode
	Mfr  string
}

func (k ConfigKey) String() string { return fmt.Sprintf("%v/Mfr.%s", k.Node, k.Mfr) }

// ConfigKeys lists the populated configurations in the paper's order.
func ConfigKeys() []ConfigKey {
	var keys []ConfigKey
	for _, tn := range chips.TypeNodes {
		for _, mfr := range chips.Manufacturers {
			if chips.HasConfiguration(tn, mfr) {
				keys = append(keys, ConfigKey{Node: tn, Mfr: mfr})
			}
		}
	}
	return keys
}

// population builds the (possibly capped) chip population.
func (o Options) population() *chips.Population {
	return chips.NewPopulation(o.Modules, o.Scale, o.Seed)
}

// chipsByConfig groups population chips per configuration, capped at
// MaxChipsPerConfig keeping the weakest chips first (the paper's
// representative chips are the interesting, flippable ones).
func (o Options) chipsByConfig(pop *chips.Population) map[ConfigKey][]chips.ChipSpec {
	m := make(map[ConfigKey][]chips.ChipSpec)
	for _, c := range pop.Chips {
		k := ConfigKey{Node: c.Node, Mfr: c.Mfr}
		m[k] = append(m[k], c)
	}
	for k, list := range m {
		// Stable sort with a chip-ID tie-break: equal-HCFirst chips must
		// not depend on incidental input order, or capped selection below
		// would be irreproducible.
		sort.SliceStable(list, func(i, j int) bool {
			if list[i].HCFirst != list[j].HCFirst {
				return list[i].HCFirst < list[j].HCFirst
			}
			return list[i].Name < list[j].Name
		})
		if o.MaxChipsPerConfig > 0 && len(list) > o.MaxChipsPerConfig {
			list = list[:o.MaxChipsPerConfig]
		}
		m[k] = list
	}
	return m
}

// representative returns the chip the per-chip figures use: the weakest
// (most RowHammerable) chip of the configuration.
func representative(specs []chips.ChipSpec) (chips.ChipSpec, bool) {
	if len(specs) == 0 {
		return chips.ChipSpec{}, false
	}
	best := specs[0]
	for _, s := range specs[1:] {
		if s.HCFirst < best.HCFirst {
			best = s
		}
	}
	return best, true
}

// patternName renders a pattern like the paper's tables ("RowStripe0").
func patternName(p faultmodel.Pattern) string { return p.String() }
