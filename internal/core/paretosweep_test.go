package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/attack"
)

// tinyParetoOptions is the reduced grid of the Pareto-sweep smoke tests:
// 2 mechanisms × 2 schedulers × 2 HCfirst on a small chip, short window.
func tinyParetoOptions(parallelism int) ParetoOptions {
	return ParetoOptions{
		Mechanisms:   []MechanismID{MechNone, MechIdeal},
		Schedulers:   Schedulers(),
		Patterns:     []attack.Kind{attack.DoubleSided},
		HCSweep:      []int{2_000, 512},
		BenignCores:  2,
		TraceRecords: 800,
		MemCycles:    150_000,
		Rows:         1024,
		Parallelism:  parallelism,
		Seed:         7,
	}
}

// TestParetoSweepParallelismInvariant extends the engine's contract to
// the combined sweep: formatted output is byte-identical for any worker
// count (the CI smoke of the deterministic engine on this runner).
func TestParetoSweepParallelismInvariant(t *testing.T) {
	run := func(parallelism int) string {
		o := tinyParetoOptions(parallelism)
		s, err := RunParetoSweep(o)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		return s.Format()
	}
	serial := run(1)
	if serial == "" {
		t.Fatal("empty output")
	}
	parallel := run(8)
	if serial != parallel {
		t.Errorf("output differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestParetoSweepShape pins the grid structure and the baseline
// invariant: the (None, FR-FCFS) benign-only cell is the baseline system
// itself, so its no-attack throughput is exactly 100%.
func TestParetoSweepShape(t *testing.T) {
	o := tinyParetoOptions(0)
	s, err := RunParetoSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	want := len(o.Mechanisms) * len(o.Schedulers) * len(o.HCSweep)
	if len(s.Points) != want {
		t.Fatalf("points = %d, want %d", len(s.Points), want)
	}
	for _, hc := range o.HCSweep {
		if len(s.Frontier(hc)) == 0 {
			t.Errorf("no frontier point at HCfirst=%d", hc)
		}
	}
	pt, ok := s.PointFor(MechNone, SchedFRFCFS, 512)
	if !ok {
		t.Fatal("grid point (None, FR-FCFS, 512) missing")
	}
	if math.Abs(pt.NoAttackPerfPct-100) > 1e-9 {
		t.Errorf("baseline benign-only throughput = %.6f%%, want exactly 100", pt.NoAttackPerfPct)
	}
	if pt.EscapedFlips == 0 {
		t.Error("unprotected point survived the low-HCfirst attack")
	}
	ideal, ok := s.PointFor(MechIdeal, SchedFRFCFS, 512)
	if !ok || ideal.EscapedFlips != 0 {
		t.Errorf("Ideal mechanism leaked flips: %+v", ideal)
	}
	out := s.Format()
	for _, wantStr := range []string{"Pareto sweep", "FR-FCFS", "BLISS", "frontier", "HCfirst = 512"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("format output missing %q:\n%s", wantStr, out)
		}
	}
}

// TestFairnessBeatsBlanketBackpressure is the PR's acceptance criterion:
// under a max-MLP attack, the BLISS scheduler plus per-thread BlockHammer
// keeps benign throughput strictly above the requester-blind blanket-
// backpressure baseline (BlockHammer-blanket on FR-FCFS, the PR 2
// behavior), with zero escaped flips on both sides — the attribution
// refactor buys performance without spending any security.
func TestFairnessBeatsBlanketBackpressure(t *testing.T) {
	o := ParetoOptions{
		Mechanisms: []MechanismID{MechBlockHammerBlanket, MechBlockHammer},
		Schedulers: Schedulers(),
		// Decoy keeps queue pressure on non-blacklisted rows for the whole
		// window — the pattern where admission throttling alone cannot
		// save the benign cores and scheduling fairness has to.
		Patterns:     []attack.Kind{attack.Decoy},
		HCSweep:      []int{512},
		BenignCores:  2,
		TraceRecords: 800,
		MemCycles:    300_000,
		Rows:         1024,
		Seed:         1,
	}
	s, err := RunParetoSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	blanket, ok := s.PointFor(MechBlockHammerBlanket, SchedFRFCFS, 512)
	if !ok {
		t.Fatal("blanket baseline point missing")
	}
	fair, ok := s.PointFor(MechBlockHammer, SchedBLISS, 512)
	if !ok {
		t.Fatal("per-thread + BLISS point missing")
	}
	if blanket.EscapedFlips != 0 || fair.EscapedFlips != 0 {
		t.Fatalf("escaped flips: blanket=%d fair=%d, want 0 and 0",
			blanket.EscapedFlips, fair.EscapedFlips)
	}
	if fair.BenignPerfPct <= blanket.BenignPerfPct {
		t.Errorf("per-thread BlockHammer + BLISS benign throughput %.1f%% not above the blanket FR-FCFS baseline %.1f%%",
			fair.BenignPerfPct, blanket.BenignPerfPct)
	}
}

func TestMarkFrontier(t *testing.T) {
	pts := []ParetoPoint{
		{Mechanism: "A", HCFirst: 512, EscapedFlips: 0, BenignPerfPct: 90},
		{Mechanism: "B", HCFirst: 512, EscapedFlips: 0, BenignPerfPct: 95},  // dominates A
		{Mechanism: "C", HCFirst: 512, EscapedFlips: 3, BenignPerfPct: 99},  // trade-off: on frontier
		{Mechanism: "D", HCFirst: 512, EscapedFlips: 5, BenignPerfPct: 98},  // dominated by C
		{Mechanism: "E", HCFirst: 2000, EscapedFlips: 9, BenignPerfPct: 10}, // alone in its group
	}
	markFrontier(pts)
	want := map[MechanismID]bool{"A": false, "B": true, "C": true, "D": false, "E": true}
	for _, p := range pts {
		if p.OnFrontier != want[p.Mechanism] {
			t.Errorf("%s: OnFrontier = %v, want %v", p.Mechanism, p.OnFrontier, want[p.Mechanism])
		}
	}
}

// TestAttackEvalECCReportsRawFlips exercises the on-die ECC path end to
// end: an unprotected LPDDR4-like chip must report at least as many raw
// flips as post-correction escapes, and the report gains the raw column.
func TestAttackEvalECCReportsRawFlips(t *testing.T) {
	o := AttackOptions{
		Patterns:     []attack.Kind{attack.DoubleSided},
		Mechanisms:   []MechanismID{MechNone},
		HCSweep:      []int{512},
		BenignCores:  2,
		TraceRecords: 800,
		MemCycles:    250_000,
		Rows:         1024,
		ECC:          true,
		Seed:         7,
	}
	ev, err := RunAttackEval(o)
	if err != nil {
		t.Fatal(err)
	}
	pt := ev.Points[0]
	if pt.RawFlips == 0 {
		t.Fatal("no raw flips on an unprotected low-HCfirst chip")
	}
	// Post-correction escapes differ from the raw count: single raw flips
	// are corrected away, while multi-bit words can be miscorrected into
	// MORE observed flips than raw ones (the decoder flips an error-free
	// bit) — so the only wrong outcome is the counts being forced equal.
	if pt.EscapedFlips == pt.RawFlips {
		t.Errorf("escaped %d == raw %d: the ECC decode appears to be bypassed",
			pt.EscapedFlips, pt.RawFlips)
	}
	if !strings.Contains(ev.Format(), "raw") {
		t.Error("ECC report missing the raw-flip column")
	}
}
