// Package attack is the adversarial side of the Section 6 evaluation the
// paper never runs: it synthesizes real hammering access streams as
// first-class workload traces (single-sided, double-sided, TRRespass-style
// many-sided, scattered multi-bank, and decoy-interleaved), and couples
// the memory controller's ACT/REF command stream to a calibrated
// faultmodel.Chip through a per-bank hammer-accounting observer — so a
// mixed attacker+benign simulation can report whether a mitigation
// mechanism actually prevents bit flips, not just what it costs.
package attack

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Kind identifies an attack access pattern.
type Kind string

const (
	// SingleSided alternates one aggressor adjacent to the victim with a
	// far conflict row in the same bank (the original RowHammer loop: the
	// conflict row forces the aggressor's row buffer closed so every
	// access costs an ACT).
	SingleSided Kind = "single-sided"
	// DoubleSided alternates the two rows flanking the victim — the
	// paper's Algorithm 1 worst case.
	DoubleSided Kind = "double-sided"
	// ManySided cycles N aggressors spaced two rows apart (TRRespass-style
	// n-sided): every even row between them is a victim, and the wide
	// rotation defeats small activation-tracking tables.
	ManySided Kind = "many-sided"
	// Scattered runs double-sided pairs in several banks at once,
	// exploiting bank parallelism for a higher aggregate ACT rate and
	// spreading load across per-bank trackers.
	Scattered Kind = "scattered"
	// Decoy interleaves double-sided hammering with reads to pseudo-random
	// far rows, polluting frequency-based trackers (ProHIT/MRLoc tables,
	// Bloom filters) with innocuous hot candidates.
	Decoy Kind = "decoy"
)

// Kinds lists the attack pattern catalog in evaluation order.
func Kinds() []Kind {
	return []Kind{SingleSided, DoubleSided, ManySided, Scattered, Decoy}
}

// Spec parameterizes one synthesized attack stream. The zero Spec plus a
// Kind is valid; normalized() fills the per-kind defaults. Specs are
// JSON-serializable so the experiment layer can carry attacker pacing
// inside declarative experiment specs.
type Spec struct {
	Kind Kind `json:"kind,omitempty"`

	// Sides is the aggressor count for ManySided (default 8).
	Sides int `json:"sides,omitempty"`
	// Banks is the bank spread for Scattered (default 4, clamped to the
	// geometry).
	Banks int `json:"banks,omitempty"`
	// DecoyRatio is the fraction of accesses aimed at decoy rows for
	// Decoy (default 0.5).
	DecoyRatio float64 `json:"decoy_ratio,omitempty"`
	// Gap is the non-memory instruction count between accesses; it sets
	// the attacker's memory-level parallelism through the core's
	// instruction window (window/(Gap+1) outstanding loads).
	Gap int `json:"gap,omitempty"`
	// Records is the memory-record count of one trace pass (replayed
	// cyclically; default 2048).
	Records int `json:"records,omitempty"`

	// DutyCycle in [0,1) paces the stream against the refresh interval:
	// the attacker hammers for DutyCycle×PeriodCycles, then idles through
	// the rest of the period in non-memory instructions — the structure
	// real refresh-synchronized attacks use to dodge TRR sampling windows
	// around REF commands. 0 (the default) hammers continuously; any
	// value outside [0,1) is rejected by Validate/Synthesize.
	DutyCycle float64 `json:"duty_cycle,omitempty"`
	// Phase in [0,1) shifts where within each period the burst falls (the
	// first burst is shortened by Phase of a burst, moving every later
	// burst boundary by the same amount). Only meaningful together with
	// DutyCycle pacing: the shift is part of the periodic structure, so
	// it survives the trace's cyclic replay instead of re-applying a
	// one-time delay every pass. Values outside [0,1) are rejected by
	// Validate/Synthesize.
	Phase float64 `json:"phase,omitempty"`
	// PeriodCycles is the pacing period in memory-clock cycles (default:
	// the DDR4-2400 tREFI, 9363).
	PeriodCycles int64 `json:"period_cycles,omitempty"`

	Seed uint64 `json:"seed,omitempty"`
}

// Burst pacing converts memory-clock cycles into trace structure through
// two approximations of the Table 6 system: an idle memory cycle costs
// the 4 GHz, 4-wide core idleInstsPerMemCycle gap instructions, and one
// serialized hammering record costs serialACTCycles at the controller.
const (
	idleInstsPerMemCycle = 13 // ceil(4000/1200 CPU cycles) × 4-wide issue
	defaultPeriodCycles  = 9363
	// serialGapInsts spaces the records inside a paced burst so the
	// hammering is serialized, like the flush+dependency loops of real
	// refresh-synchronized attacks: any value past the 128-entry
	// instruction window guarantees at most one outstanding load (younger
	// instructions cannot retire past the in-flight load, so issue stalls
	// at window-full until it returns). Serialization is what keeps every
	// burst access an activation — a burst issued with full memory-level
	// parallelism lands as one batch in an idle controller queue, where
	// FR-FCFS merges the alternating-row accesses into row-buffer hits.
	serialGapInsts = 200
	// serialACTCycles is the measured cost of one serialized flush+load
	// round trip (uncached load latency plus the trailing gap issue) on
	// the Table 6 system; paced bursts are sized with it so a burst's
	// wall-clock length comes out at DutyCycle×PeriodCycles. It is
	// deliberately a touch above the true cost: the attack's natural
	// period then runs 2-3% short of the refresh interval, and the REF
	// stall absorbs the slack each interval — the stream self-locks to
	// the refresh schedule exactly as real refresh-synchronized attacks
	// do, instead of drifting through it.
	serialACTCycles = 62
)

// Target anchors an attack at a victim row (for Scattered, the first of
// the attacked banks).
type Target struct {
	Bank, Row int
}

// RowRef names one (bank, row) the synthesized stream deliberately
// activates; the observer watches these to measure the achieved
// aggressor ACT rate.
type RowRef struct {
	Bank, Row int
}

// Validate rejects pacing parameters outside their domain. duty_cycle
// and phase must both lie in [0,1): 0 disables pacing, values in (0,1)
// pace the stream, and anything else is an error rather than a silent
// no-op (a spec that asked for pacing and didn't get it would evaluate
// the wrong attack).
func (s Spec) Validate() error {
	if s.DutyCycle < 0 || s.DutyCycle >= 1 {
		return fmt.Errorf("attack: duty_cycle %g outside [0,1) (0 disables pacing)", s.DutyCycle)
	}
	if s.Phase < 0 || s.Phase >= 1 {
		return fmt.Errorf("attack: phase %g outside [0,1) (0 disables the shift)", s.Phase)
	}
	if s.Phase > 0 && s.DutyCycle == 0 {
		return fmt.Errorf("attack: phase %g without duty_cycle pacing would be silently ignored; set duty_cycle too", s.Phase)
	}
	return nil
}

func (s Spec) normalized() Spec {
	if s.Sides <= 0 {
		s.Sides = 8
	}
	if s.Banks <= 0 {
		s.Banks = 4
	}
	if s.DecoyRatio <= 0 {
		s.DecoyRatio = 0.5
	}
	if s.Gap <= 0 {
		// Maximum memory-level parallelism (64 outstanding loads through
		// the 128-entry window): a real attacker issues independent loads
		// so its requests dominate the controller's queue. Raising Gap
		// models a politer attacker who cedes head-of-line share.
		s.Gap = 1
	}
	if s.Records <= 0 {
		s.Records = 2048
	}
	if s.PeriodCycles <= 0 {
		s.PeriodCycles = defaultPeriodCycles
	}
	return s
}

// paceRecords applies the Phase/DutyCycle timing structure: every burst of
// hammering records is followed by an idle stretch (gap instructions on
// the record that opens the next burst) sized so the stream is active for
// roughly DutyCycle of each period. Phase shortens the first burst,
// shifting every later burst boundary by Phase of a burst — a periodic
// rearrangement, so cyclic replay preserves it. The fractional part of
// each period's idle-instruction budget carries over to the next period,
// so the achieved active fraction does not drift from the requested one
// however many periods the stream spans.
//
// Burst records are serialized to one access per row cycle (the
// flush+dependency structure real refresh-synchronized attacks use):
// burst sizing assumes each record costs an activation, and a burst
// issued with full memory-level parallelism would instead land as one
// batch in an idle controller queue, where FR-FCFS merges the
// alternating-row accesses into row-buffer hits — a couple of ACTs per
// burst, which is no hammering at all.
func (s Spec) paceRecords(recs []trace.Record) error {
	if len(recs) == 0 || s.DutyCycle <= 0 || s.DutyCycle >= 1 {
		return nil
	}
	burst := int(s.DutyCycle * float64(s.PeriodCycles) / serialACTCycles)
	if burst < 1 {
		burst = 1
	}
	if len(recs) <= burst {
		// Shorter traces would carry no idle stretch at all — cyclic
		// replay of an all-burst trace is a full-rate attack, the silent
		// wrong-answer this validation exists to prevent.
		return fmt.Errorf("attack: %d records cannot express duty_cycle %g (one burst is %d records); raise records or lower duty_cycle",
			len(recs), s.DutyCycle, burst)
	}
	for i := range recs {
		recs[i].Gap += serialGapInsts
	}
	idlePerPeriod := (1 - s.DutyCycle) * float64(s.PeriodCycles) * idleInstsPerMemCycle
	first := burst
	if s.Phase > 0 && s.Phase < 1 {
		// Round the shift up to at least one record: on small bursts a
		// truncated-to-zero shift used to drop the requested phase
		// entirely.
		shift := int(s.Phase * float64(burst))
		if shift < 1 {
			shift = 1
		}
		first = burst - shift
		if first < 1 {
			first = 1
		}
	}
	carry := 0.0
	for i := first; i < len(recs); i += burst {
		carry += idlePerPeriod
		idle := int(carry)
		carry -= float64(idle)
		recs[i].Gap += idle
	}
	return nil
}

// Synthesize builds the attacker's access stream against the target as a
// first-class trace (uncached flush+load records, fixed addresses every
// pass) plus the list of rows it deliberately hammers. The victim row is
// clamped away from the bank edges so every pattern has room for its
// aggressors.
func (s Spec) Synthesize(geo dram.Geometry, t Target) (*trace.Trace, []RowRef, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	s = s.normalized()
	mapper, err := dram.NewAddressMapper(geo)
	if err != nil {
		return nil, nil, err
	}
	rows := geo.Rows
	if rows < 16 {
		return nil, nil, fmt.Errorf("attack: geometry too small (%d rows)", rows)
	}
	if t.Bank < 0 || t.Bank >= geo.Banks() {
		return nil, nil, fmt.Errorf("attack: target bank %d out of range", t.Bank)
	}
	victim := t.Row
	if victim < 1 {
		victim = 1
	}
	if victim > rows-2 {
		victim = rows - 2
	}

	// Per-pattern aggressor sets, as (bank, row) pairs cycled in order.
	var refs []RowRef
	switch s.Kind {
	case SingleSided:
		far := (victim + rows/2) % rows
		if far < 1 {
			far = 1
		}
		refs = []RowRef{
			{Bank: t.Bank, Row: victim - 1},
			{Bank: t.Bank, Row: far},
		}
	case DoubleSided:
		refs = []RowRef{
			{Bank: t.Bank, Row: victim - 1},
			{Bank: t.Bank, Row: victim + 1},
		}
	case ManySided:
		n := s.Sides
		if max := rows / 2; n > max {
			n = max
		}
		// Aggressors sit two rows apart on the opposite parity of the
		// victim, so the victim is flanked but never activated by its own
		// attack (an ACT on the victim row would reset its damage). Edge
		// clamping slides the window by even steps only, preserving that
		// parity.
		lo := victim - 1
		if hi := lo + 2*(n-1); hi > rows-1 {
			shift := hi - (rows - 1)
			shift += shift & 1
			lo -= shift
		}
		for r := lo; r <= rows-1 && len(refs) < n; r += 2 {
			if r >= 0 {
				refs = append(refs, RowRef{Bank: t.Bank, Row: r})
			}
		}
	case Scattered:
		banks := s.Banks
		if banks > geo.Banks() {
			banks = geo.Banks()
		}
		for b := 0; b < banks; b++ {
			bank := (t.Bank + b) % geo.Banks()
			refs = append(refs,
				RowRef{Bank: bank, Row: victim - 1},
				RowRef{Bank: bank, Row: victim + 1})
		}
	case Decoy:
		refs = []RowRef{
			{Bank: t.Bank, Row: victim - 1},
			{Bank: t.Bank, Row: victim + 1},
		}
	default:
		return nil, nil, fmt.Errorf("attack: unknown pattern %q", s.Kind)
	}

	rng := stats.NewRNG(s.Seed ^ 0xa77ac4)
	tr := &trace.Trace{Name: "attack-" + string(s.Kind)}
	cols := geo.Columns
	colOf := make(map[RowRef]int, len(refs))
	next := 0
	for i := 0; i < s.Records; i++ {
		ref := refs[next%len(refs)]
		next++
		if s.Kind == Decoy && rng.Bernoulli(s.DecoyRatio) {
			// A decoy read to a far row in the same bank: outside the
			// victim's blast radius but hot enough to occupy trackers.
			ref = RowRef{Bank: t.Bank, Row: decoyRow(rng, victim, rows)}
			next-- // the displaced aggressor access happens next record
		}
		col := colOf[ref] % cols
		colOf[ref] = col + 1
		addr := mapper.AddressOf(dram.Address{Bank: ref.Bank, Row: ref.Row, Col: col})
		tr.Records = append(tr.Records, trace.Record{Gap: s.Gap, Addr: addr, NoCache: true})
	}
	if err := s.paceRecords(tr.Records); err != nil {
		return nil, nil, err
	}
	return tr, refs, nil
}

// decoyRow picks a pseudo-random row outside the victim's neighborhood.
// The exclusion band shrinks with the bank so candidates always exist,
// even for the tiny geometries tests use.
func decoyRow(rng *stats.RNG, victim, rows int) int {
	band := 8
	if max := rows/2 - 2; band > max {
		band = max
	}
	for {
		r := 1 + rng.Intn(rows-2)
		if r < victim-band || r > victim+band {
			return r
		}
	}
}
