package attack

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/faultmodel"
	"repro/internal/trace"
)

func testGeo() dram.Geometry {
	g := dram.Table6Geometry()
	g.Rows = 1024
	return g
}

func testChip(t *testing.T, hc float64) *faultmodel.Chip {
	t.Helper()
	geo := testGeo()
	chip, err := faultmodel.NewChip(faultmodel.Config{
		Name: "attack-test", Banks: geo.Banks(), Rows: geo.Rows, RowBits: 512,
		HCFirst: hc, Rate150k: 5e-5,
		WorstPattern: faultmodel.RowStripe0, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	chip.WriteAll(faultmodel.RowStripe0)
	return chip
}

func TestSynthesizeShapes(t *testing.T) {
	geo := testGeo()
	mapper, err := dram.NewAddressMapper(geo)
	if err != nil {
		t.Fatal(err)
	}
	target := Target{Bank: 3, Row: 500}
	for _, kind := range Kinds() {
		spec := Spec{Kind: kind, Seed: 5}
		tr, refs, err := spec.Synthesize(geo, target)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(tr.Records) == 0 || len(refs) == 0 {
			t.Fatalf("%s: empty synthesis", kind)
		}
		for _, r := range tr.Records {
			if !r.NoCache || r.Write {
				t.Fatalf("%s: attack records must be uncached reads, got %+v", kind, r)
			}
		}
		for _, ref := range refs {
			if ref.Bank < 0 || ref.Bank >= geo.Banks() || ref.Row < 1 || ref.Row > geo.Rows-2 {
				t.Fatalf("%s: aggressor %+v out of range", kind, ref)
			}
		}
		// Every synthesized address must land on a declared aggressor row,
		// except decoy rows for the Decoy kind.
		onAgg := 0
		for _, r := range tr.Records {
			a := mapper.Map(r.Addr)
			found := false
			for _, ref := range refs {
				if a.Bank == ref.Bank && a.Row == ref.Row {
					found = true
					break
				}
			}
			if found {
				onAgg++
			} else if kind != Decoy {
				t.Fatalf("%s: address maps to %v, not an aggressor", kind, a)
			}
		}
		if kind == Decoy {
			decoys := len(tr.Records) - onAgg
			if decoys == 0 {
				t.Error("decoy pattern produced no decoy accesses")
			}
			if onAgg == 0 {
				t.Error("decoy pattern produced no aggressor accesses")
			}
		}
	}
}

func TestSynthesizePerKindStructure(t *testing.T) {
	geo := testGeo()
	target := Target{Bank: 2, Row: 400}

	_, refs, err := Spec{Kind: DoubleSided}.Synthesize(geo, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0].Row != 399 || refs[1].Row != 401 {
		t.Errorf("double-sided aggressors = %v", refs)
	}

	_, refs, err = Spec{Kind: ManySided, Sides: 6}.Synthesize(geo, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 6 {
		t.Fatalf("many-sided aggressors = %v", refs)
	}
	for i := 1; i < len(refs); i++ {
		if refs[i].Row-refs[i-1].Row != 2 {
			t.Errorf("many-sided spacing: %v", refs)
		}
	}
	// Near either bank edge the window slides but must keep the victim
	// flanked and never make the victim its own aggressor (an ACT on the
	// victim would reset its damage and fake a secure result).
	for _, victim := range []int{1, 2, geo.Rows - 3, geo.Rows - 2, geo.Rows - 1, 400} {
		_, refs, err := Spec{Kind: ManySided, Sides: 8}.Synthesize(geo, Target{Bank: 0, Row: victim})
		if err != nil {
			t.Fatal(err)
		}
		v := victim
		if v < 1 {
			v = 1
		}
		if v > geo.Rows-2 {
			v = geo.Rows - 2
		}
		got := map[int]bool{}
		for _, r := range refs {
			got[r.Row] = true
		}
		if got[v] {
			t.Errorf("victim %d is in its own many-sided aggressor set %v", v, refs)
		}
		if !got[v-1] || !got[v+1] {
			t.Errorf("victim %d not flanked by many-sided set %v", v, refs)
		}
	}

	_, refs, err = Spec{Kind: Scattered, Banks: 4}.Synthesize(geo, target)
	if err != nil {
		t.Fatal(err)
	}
	banks := map[int]bool{}
	for _, r := range refs {
		banks[r.Bank] = true
	}
	if len(banks) != 4 {
		t.Errorf("scattered banks = %v", refs)
	}

	_, refs, err = Spec{Kind: SingleSided}.Synthesize(geo, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0].Row != 399 {
		t.Errorf("single-sided refs = %v", refs)
	}
	if d := refs[1].Row - target.Row; d > -8 && d < 8 {
		t.Errorf("single-sided conflict row %d too close to victim", refs[1].Row)
	}
}

func TestSynthesizeClampsEdges(t *testing.T) {
	geo := testGeo()
	for _, row := range []int{0, 1, geo.Rows - 1} {
		for _, kind := range Kinds() {
			_, refs, err := Spec{Kind: kind, Seed: 2}.Synthesize(geo, Target{Bank: 0, Row: row})
			if err != nil {
				t.Fatalf("%s at row %d: %v", kind, row, err)
			}
			for _, ref := range refs {
				if ref.Row < 0 || ref.Row > geo.Rows-1 {
					t.Fatalf("%s at row %d: aggressor %+v escapes the bank", kind, row, ref)
				}
			}
		}
	}
}

func TestSynthesizeDecoyTinyGeometry(t *testing.T) {
	// The decoy exclusion band must shrink with the bank: a mid-bank
	// victim in the minimum 16-row geometry used to starve decoyRow of
	// candidates and hang synthesis.
	geo := testGeo()
	geo.Rows = 16
	for victim := 0; victim < geo.Rows; victim++ {
		tr, _, err := Spec{Kind: Decoy, Seed: 1, Records: 64}.Synthesize(geo, Target{Bank: 0, Row: victim})
		if err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		if len(tr.Records) != 64 {
			t.Fatalf("victim %d: %d records", victim, len(tr.Records))
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	geo := testGeo()
	a, _, err := Spec{Kind: Decoy, Seed: 9}.Synthesize(geo, Target{Bank: 1, Row: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Spec{Kind: Decoy, Seed: 9}.Synthesize(geo, Target{Bank: 1, Row: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs across same-seed synthesis", i)
		}
	}
}

func TestDutyCyclePacing(t *testing.T) {
	geo := testGeo()
	target := Target{Bank: 1, Row: 300}
	continuous, _, err := Spec{Kind: DoubleSided, Records: 256, Seed: 3}.Synthesize(geo, target)
	if err != nil {
		t.Fatal(err)
	}
	paced, _, err := Spec{Kind: DoubleSided, Records: 256, Seed: 3, DutyCycle: 0.25}.Synthesize(geo, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(paced.Records) != len(continuous.Records) {
		t.Fatalf("pacing changed the record count: %d vs %d", len(paced.Records), len(continuous.Records))
	}
	// Every paced record is serialized (at least the serialization gap on
	// top of the continuous stream's gap), and burst boundaries addit-
	// ionally idle through 75% of each period in gap instructions.
	idles := 0
	for i := range paced.Records {
		if paced.Records[i].Addr != continuous.Records[i].Addr {
			t.Fatalf("record %d: pacing changed the access stream", i)
		}
		extra := paced.Records[i].Gap - continuous.Records[i].Gap
		if extra < serialGapInsts {
			t.Fatalf("record %d: paced gap %d lacks the serialization gap", i, paced.Records[i].Gap)
		}
		if extra > serialGapInsts {
			idles++
		}
	}
	if idles == 0 {
		t.Fatal("duty cycle inserted no idle stretches")
	}
	period := float64(defaultPeriodCycles)
	wantIdle := int(0.75 * period * idleInstsPerMemCycle)
	if paced.Instructions() < continuous.Instructions()+int64(idles)*int64(wantIdle)/2 {
		t.Errorf("paced trace only %d instructions vs %d continuous; idle stretches too short",
			paced.Instructions(), continuous.Instructions())
	}

	// Phase shifts where within each period the idle stretch falls: the
	// first burst is shortened, every later boundary moves with it, and —
	// because the shift is periodic, not a one-time prefix — the structure
	// survives cyclic replay.
	phased, _, err := Spec{Kind: DoubleSided, Records: 256, Seed: 3, DutyCycle: 0.25, Phase: 0.5}.Synthesize(geo, target)
	if err != nil {
		t.Fatal(err)
	}
	unphased, _, err := Spec{Kind: DoubleSided, Records: 256, Seed: 3, DutyCycle: 0.25}.Synthesize(geo, target)
	if err != nil {
		t.Fatal(err)
	}
	idleAt := func(recs []trace.Record) []int {
		var out []int
		for i := range recs {
			if recs[i].Gap > continuous.Records[i].Gap+serialGapInsts {
				out = append(out, i)
			}
		}
		return out
	}
	phasedIdx := idleAt(phased.Records)
	baseIdx := idleAt(unphased.Records)
	if len(phasedIdx) < 2 || len(baseIdx) < 2 {
		t.Fatalf("too few idle stretches to compare: %d phased, %d unphased", len(phasedIdx), len(baseIdx))
	}
	if phasedIdx[0] >= baseIdx[0] {
		t.Errorf("phase 0.5 first idle at record %d, want earlier than unphased %d", phasedIdx[0], baseIdx[0])
	}
	if (phasedIdx[1] - phasedIdx[0]) != (baseIdx[1] - baseIdx[0]) {
		t.Errorf("phase changed the burst period: %d vs %d", phasedIdx[1]-phasedIdx[0], baseIdx[1]-baseIdx[0])
	}
	if phased.Records[0].Gap != unphased.Records[0].Gap {
		t.Error("phase added a one-time prefix delay; it would re-apply on every replay pass")
	}
}

// TestSpecValidateRejectsOutOfRangePacing pins the bugfix: out-of-range
// DutyCycle/Phase used to be silently ignored (the attack ran unpaced);
// they must be validation errors in both Validate and Synthesize.
func TestSpecValidateRejectsOutOfRangePacing(t *testing.T) {
	geo := testGeo()
	target := Target{Bank: 0, Row: 200}
	bad := []Spec{
		{Kind: DoubleSided, DutyCycle: 1},
		{Kind: DoubleSided, DutyCycle: 1.5},
		{Kind: DoubleSided, DutyCycle: -0.1},
		{Kind: DoubleSided, DutyCycle: 0.5, Phase: 1},
		{Kind: DoubleSided, DutyCycle: 0.5, Phase: 2.5},
		{Kind: DoubleSided, DutyCycle: 0.5, Phase: -0.25},
		// Phase without pacing would be silently ignored — also an error.
		{Kind: DoubleSided, Phase: 0.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted duty=%g phase=%g", s.DutyCycle, s.Phase)
		}
		if _, _, err := s.Synthesize(geo, target); err == nil {
			t.Errorf("Synthesize accepted duty=%g phase=%g", s.DutyCycle, s.Phase)
		}
	}
	for _, s := range []Spec{
		{Kind: DoubleSided},
		{Kind: DoubleSided, DutyCycle: 0.99, Phase: 0.99},
		{Kind: DoubleSided, DutyCycle: 0.01},
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate rejected duty=%g phase=%g: %v", s.DutyCycle, s.Phase, err)
		}
	}
	// A trace too short to hold even one burst plus an idle stretch would
	// silently replay as a full-rate attack: Synthesize must reject it.
	short := Spec{Kind: DoubleSided, Records: 20, DutyCycle: 0.25}
	if _, _, err := short.Synthesize(geo, target); err == nil {
		t.Error("Synthesize accepted a trace shorter than one duty-cycle burst")
	}
}

// TestPhaseSurvivesSmallBursts pins the bugfix: on bursts small enough
// that Phase×burst truncated to zero, the requested phase used to be
// dropped entirely; the shift now rounds up to at least one record.
func TestPhaseSurvivesSmallBursts(t *testing.T) {
	geo := testGeo()
	target := Target{Bank: 1, Row: 300}
	// A tiny period gives a burst of very few records, so Phase×burst < 1.
	base := Spec{Kind: DoubleSided, Records: 64, Seed: 3, DutyCycle: 0.2, PeriodCycles: 1000}
	burst := int(base.DutyCycle * float64(base.PeriodCycles) / serialACTCycles)
	if burst < 1 {
		burst = 1
	}
	if int(0.2*float64(burst)) != 0 {
		// Guard: the scenario must actually exercise the truncation path.
		t.Fatalf("test burst %d too large to exercise shift truncation", burst)
	}
	unphased, _, err := base.Synthesize(geo, target)
	if err != nil {
		t.Fatal(err)
	}
	phasedSpec := base
	phasedSpec.Phase = 0.2
	phased, _, err := phasedSpec.Synthesize(geo, target)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range phased.Records {
		if phased.Records[i].Gap != unphased.Records[i].Gap {
			same = false
			break
		}
	}
	if same {
		t.Error("phase 0.2 on a small burst changed nothing; the shift truncated to zero")
	}
}

func TestObserverTimeline(t *testing.T) {
	chip := testChip(t, 1000)
	obs := NewObserver(chip)
	weak := chip.WeakestCell()
	lo, hi, _ := chip.AggressorsFor(weak.Row)
	obs.WatchAggressors([]RowRef{{Bank: weak.Bank, Row: lo}, {Bank: weak.Bank, Row: hi}})

	obs.OnACT(0, weak.Bank, lo, 10)
	obs.OnACT(0, weak.Bank, hi, 20)
	obs.OnACT(0, weak.Bank, 900, 30) // unwatched row
	// One REF covers every bank at the same cycle: the window must close
	// exactly once.
	for b := 0; b < chip.Banks(); b++ {
		obs.OnRefresh(0, b, 0, 64, 100)
	}
	obs.OnACT(0, weak.Bank, lo, 150)
	for b := 0; b < chip.Banks(); b++ {
		obs.OnRefresh(0, b, 64, 64, 200)
	}
	tl := obs.Timeline()
	if len(tl) != 2 {
		t.Fatalf("timeline windows = %d, want 2 (per-bank REF callbacks must deduplicate)", len(tl))
	}
	if tl[0].REFCycle != 100 || tl[0].ACTs != 3 || tl[0].AggressorACTs != 2 {
		t.Errorf("window 0 = %+v, want REF@100 with 3 ACTs / 2 aggressor", tl[0])
	}
	if tl[1].REFCycle != 200 || tl[1].ACTs != 1 || tl[1].AggressorACTs != 1 {
		t.Errorf("window 1 = %+v, want REF@200 with 1 ACT / 1 aggressor", tl[1])
	}
}

// eccChip builds an on-die-ECC (LPDDR4-like) chip for observer tests.
func eccChip(t *testing.T, hc float64) *faultmodel.Chip {
	t.Helper()
	geo := testGeo()
	chip, err := faultmodel.NewChip(faultmodel.Config{
		Name: "attack-ecc", Banks: geo.Banks(), Rows: geo.Rows, RowBits: 512,
		HCFirst: hc, Rate150k: 5e-5,
		WorstPattern: faultmodel.RowStripe0, OnDieECC: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	chip.WriteAll(faultmodel.RowStripe0)
	return chip
}

func TestObserverECCPostCorrection(t *testing.T) {
	chip := eccChip(t, 1000)
	obs := NewObserver(chip)
	weak := chip.WeakestCell()
	lo, hi, ok := chip.AggressorsFor(weak.Row)
	if !ok {
		t.Fatal("weakest cell at bank edge")
	}
	hammerTo := func(target int) {
		for obs.Damage(weak.Bank, weak.Row) < float64(target) {
			obs.OnACT(0, weak.Bank, lo, 0)
			obs.OnACT(0, weak.Bank, hi, 0)
		}
	}
	// Just past the weakest cell: one raw flip, corrected by the SEC code,
	// so nothing escapes yet.
	hammerTo(1001)
	if obs.RawFlips() == 0 {
		t.Fatal("no raw flip past the weakest threshold")
	}
	if obs.EscapedFlips() != 0 {
		t.Fatalf("single raw flip escaped through on-die ECC: %v", obs.Flips())
	}
	// Past the same-word companion (≤1.12×HCfirst): two raw flips share a
	// codeword, the decoder's behaviour is undefined, and flips escape.
	hammerTo(1150)
	if obs.RawFlips() < 2 {
		t.Fatalf("raw flips = %d, want ≥2 past the companion threshold", obs.RawFlips())
	}
	if obs.EscapedFlips() == 0 {
		t.Error("double raw flip fully corrected — SEC cannot do that")
	}
	if obs.EscapedFlips() > 0 && obs.FirstFlipCycle() < 0 {
		t.Error("escaped flips without a first-flip cycle")
	}
}

func TestObserverCrossesThresholdExactly(t *testing.T) {
	chip := testChip(t, 1000)
	obs := NewObserver(chip)
	weak := chip.WeakestCell()
	lo, hi, ok := chip.AggressorsFor(weak.Row)
	if !ok {
		t.Fatal("weakest cell at bank edge")
	}
	obs.WatchAggressors([]RowRef{{Bank: weak.Bank, Row: lo}, {Bank: weak.Bank, Row: hi}})

	// Alternate the aggressors: each ACT adds 0.5 effective hammers.
	cycle := int64(0)
	for i := 0; i < 2*1000-1; i++ {
		row := lo
		if i%2 == 1 {
			row = hi
		}
		obs.OnACT(0, weak.Bank, row, cycle)
		cycle += 56
	}
	if got := obs.EscapedFlips(); got != 0 {
		t.Fatalf("flips before threshold: %d (damage %.1f)", got, obs.Damage(weak.Bank, weak.Row))
	}
	obs.OnACT(0, weak.Bank, lo, cycle)
	if got := obs.EscapedFlips(); got == 0 {
		t.Fatalf("no flip at damage %.1f ≥ threshold %.0f", obs.Damage(weak.Bank, weak.Row), weak.Threshold)
	}
	if obs.FirstFlipCycle() != cycle {
		t.Errorf("first flip cycle %d, want %d", obs.FirstFlipCycle(), cycle)
	}
	if obs.AggressorACTs() != 2*1000 {
		t.Errorf("aggressor ACTs = %d, want %d", obs.AggressorACTs(), 2*1000)
	}
	// The flip is permanent: further hammering must not duplicate it.
	n := obs.EscapedFlips()
	for i := 0; i < 100; i++ {
		obs.OnACT(0, weak.Bank, lo, cycle+int64(i))
		obs.OnACT(0, weak.Bank, hi, cycle+int64(i))
	}
	for _, f := range obs.Flips()[:n] {
		count := 0
		for _, g := range obs.Flips() {
			if g.Flip == f.Flip {
				count++
			}
		}
		if count != 1 {
			t.Errorf("flip %+v recorded %d times", f.Flip, count)
		}
	}
}

func TestObserverRefreshResetsDamage(t *testing.T) {
	chip := testChip(t, 1000)
	obs := NewObserver(chip)
	weak := chip.WeakestCell()
	lo, hi, _ := chip.AggressorsFor(weak.Row)

	// Accumulate 90% of the threshold, refresh the victim, then repeat:
	// no flip may occur.
	hammer := func(n int) {
		for i := 0; i < n; i++ {
			obs.OnACT(0, weak.Bank, lo, int64(i))
			obs.OnACT(0, weak.Bank, hi, int64(i))
		}
	}
	hammer(900)
	if obs.Damage(weak.Bank, weak.Row) != 900 {
		t.Fatalf("damage = %.1f, want 900", obs.Damage(weak.Bank, weak.Row))
	}
	obs.OnRefresh(0, weak.Bank, weak.Row, 1, 1000)
	if obs.Damage(weak.Bank, weak.Row) != 0 {
		t.Fatal("auto-refresh did not reset damage")
	}
	hammer(900)
	if obs.EscapedFlips() != 0 {
		t.Fatalf("flips despite refresh: %d", obs.EscapedFlips())
	}
	// A mitigation victim refresh is an ACT on the victim row itself.
	obs.OnACT(0, weak.Bank, weak.Row, 2000)
	if obs.Damage(weak.Bank, weak.Row) != 0 {
		t.Fatal("own activation did not restore the row")
	}
}

func TestObserverRefreshRotationWraps(t *testing.T) {
	chip := testChip(t, 1000)
	obs := NewObserver(chip)
	rows := chip.Rows()
	// Damage rows 0 and rows-1 via their neighbors, then cover both with a
	// wrapping rotation window.
	obs.OnACT(0, 0, 1, 0)
	obs.OnACT(0, 0, rows-2, 0)
	if obs.Damage(0, 0) == 0 || obs.Damage(0, rows-1) == 0 {
		t.Fatal("setup: no damage accumulated")
	}
	obs.OnRefresh(0, 0, rows-2, 4, 1) // covers rows-2, rows-1, 0, 1
	if obs.Damage(0, 0) != 0 || obs.Damage(0, rows-1) != 0 {
		t.Error("wrapping rotation did not reset both edge rows")
	}
}
