package attack

import (
	"sort"

	"repro/internal/faultmodel"
)

// FlipEvent is one escaped bit flip: a fault-model cell whose accumulated
// neighbor-activation damage crossed its threshold before any refresh —
// auto, mitigation-triggered, or the row's own activation — restored its
// charge. Cycle is the memory-clock cycle of the crossing activation.
type FlipEvent struct {
	faultmodel.Flip
	Cycle int64
}

// REFWindow summarizes the command stream observed between two consecutive
// REF commands — the granularity at which TRR-style in-DRAM samplers
// operate, and therefore the resolution at which refresh-pause-aware
// attacks (Spec.Phase / Spec.DutyCycle) show their timing structure.
type REFWindow struct {
	// REFCycle is the memory cycle of the REF that closed the window.
	REFCycle int64
	// ACTs counts all activations inside the window; AggressorACTs the
	// subset on watched aggressor rows.
	ACTs          int64
	AggressorACTs int64
	// Flips counts escaped flips recorded inside the window.
	Flips int
}

// Observer is the per-bank hammer accountant that closes the security
// loop: it watches the controller's full command stream (every ACT,
// including mitigation victim refreshes, and the auto-refresh rotation)
// and mirrors, per physical wordline, the effective hammers accumulated
// since that wordline's last charge restoration. Whenever a wordline's
// damage crosses a cell threshold of the attached chip, the flip is
// recorded as escaped — permanently, as a real RowHammer flip persists
// until software rewrites the data.
//
// For chips with on-die ECC, crossings are tracked at raw-cell
// granularity (parity cells included) and filtered through the chip's
// real SEC decoder, so EscapedFlips reports what the system observes
// after correction while RawFlips keeps the pre-correction count.
//
// It implements sim.CommandObserver; drive it manually via OnACT/OnRefresh
// when wiring a bare controller. Not safe for concurrent use.
type Observer struct {
	chip      *faultmodel.Chip
	banks     int
	rows      int
	wordlines int
	ecc       bool

	// damage holds effective hammers per bank*wordlines+wl since the
	// wordline's last restoration.
	damage []float64
	// next caches the smallest cell threshold above the current damage
	// (0 = not yet computed), so the hot path is one comparison.
	next []float64

	// watch flags aggressor rows under rate measurement, dense per
	// bank*rows+row so the per-ACT check is one indexed load.
	watch   []bool
	aggACTs int64

	totalACTs int64

	// ECC bookkeeping: raw crossings seen so far, per (bank,row), so each
	// new raw flip re-runs the row's word decode against the full set.
	rawSeen   map[faultmodel.Flip]struct{}
	rawByRow  map[int64][]int
	rawCount  int
	touchKeys []int64 // reusable scratch for recordRawCrossings

	seen      map[faultmodel.Flip]struct{}
	flips     []FlipEvent
	firstFlip int64

	// Per-REF timeline.
	windows      []REFWindow
	cur          REFWindow
	lastREFCycle int64
}

// NewObserver builds an accountant over the chip. The chip must already
// hold its data pattern (WriteAll) so cell eligibility is defined.
func NewObserver(chip *faultmodel.Chip) *Observer {
	n := chip.Banks() * chip.Wordlines()
	return &Observer{
		chip:         chip,
		banks:        chip.Banks(),
		rows:         chip.Rows(),
		wordlines:    chip.Wordlines(),
		ecc:          chip.Config().OnDieECC,
		damage:       make([]float64, n),
		next:         make([]float64, n),
		watch:        make([]bool, chip.Banks()*chip.Rows()),
		rawSeen:      make(map[faultmodel.Flip]struct{}, 16),
		rawByRow:     make(map[int64][]int, 16),
		seen:         make(map[faultmodel.Flip]struct{}, 16),
		firstFlip:    -1,
		lastREFCycle: -1,
	}
}

// WatchAggressors registers rows whose activations count toward the
// aggressor ACT rate metric.
func (o *Observer) WatchAggressors(refs []RowRef) {
	for _, r := range refs {
		if r.Bank < 0 || r.Bank >= o.banks || r.Row < 0 || r.Row >= o.rows {
			continue // OnACT never accounts out-of-range rows
		}
		o.watch[r.Bank*o.rows+r.Row] = true
	}
}

func (o *Observer) key(bank, wl int) int { return bank*o.wordlines + wl }

// OnACT accounts one activation: the row's own wordline is restored, and
// every coupled wordline accumulates damage and is checked against the
// chip's flip model.
func (o *Observer) OnACT(rank, bank, row int, cycle int64) {
	if bank < 0 || bank >= o.banks || row < 0 || row >= o.rows {
		return
	}
	o.totalACTs++
	o.cur.ACTs++
	if o.watch[bank*o.rows+row] {
		o.aggACTs++
		o.cur.AggressorACTs++
	}
	wl := o.chip.WordlineIndex(row)
	o.damage[o.key(bank, wl)] = 0 // activation restores the row's charge
	o.chip.ForEachCoupledWordline(wl, func(n int, w float64) {
		k := o.key(bank, n)
		o.damage[k] += w
		if o.next[k] == 0 {
			_, t := o.crossings(bank, n, 0)
			o.next[k] = t
		}
		if o.damage[k] < o.next[k] {
			return
		}
		crossed, t := o.crossings(bank, n, o.damage[k])
		o.next[k] = t
		if o.ecc {
			o.recordRawCrossings(crossed, cycle)
		} else {
			for _, f := range crossed {
				o.recordFlip(f, cycle)
			}
		}
	})
}

// crossings selects the raw (parity-inclusive) or data-only threshold
// query depending on whether the chip corrects through on-die ECC.
func (o *Observer) crossings(bank, wl int, e float64) ([]faultmodel.Flip, float64) {
	if o.ecc {
		return o.chip.RawThresholdCrossings(bank, wl, e)
	}
	return o.chip.ThresholdCrossings(bank, wl, e)
}

// recordRawCrossings folds new raw cell flips into their rows' flip sets
// and re-runs the on-die ECC decode: only post-correction data flips are
// recorded as escaped, with the cycle of the raw crossing that caused
// them.
func (o *Observer) recordRawCrossings(crossed []faultmodel.Flip, cycle int64) {
	keys := o.touchKeys[:0]
	for _, f := range crossed {
		if _, dup := o.rawSeen[f]; dup {
			continue
		}
		o.rawSeen[f] = struct{}{}
		o.rawCount++
		rk := int64(f.Bank)<<32 | int64(f.Row)
		o.rawByRow[rk] = append(o.rawByRow[rk], f.Bit)
		keys = append(keys, rk)
	}
	// Deterministic ascending order over the touched rows, deduplicated
	// after the sort; the reusable scratch keeps this path allocation-free.
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, rk := range keys {
		if i > 0 && rk == keys[i-1] {
			continue
		}
		bank := int(rk >> 32)
		row := int(rk & 0xffffffff)
		for _, obs := range o.chip.ObservedFromRaw(bank, row, o.rawByRow[rk]) {
			o.recordFlip(obs, cycle)
		}
	}
	o.touchKeys = keys[:0]
}

// recordFlip appends a newly escaped data flip (idempotent per cell).
func (o *Observer) recordFlip(f faultmodel.Flip, cycle int64) {
	if _, dup := o.seen[f]; dup {
		return
	}
	o.seen[f] = struct{}{}
	o.flips = append(o.flips, FlipEvent{Flip: f, Cycle: cycle})
	o.cur.Flips++
	if o.firstFlip < 0 {
		o.firstFlip = cycle
	}
	if !o.ecc {
		o.rawCount++
	}
}

// OnRefresh clears the damage of every wordline the auto-refresh rotation
// covers (wrapping at the bank edge, as the DRAM rotation does), and
// closes the current timeline window on the first bank of each REF.
func (o *Observer) OnRefresh(rank, bank, rowStart, rowCount int, cycle int64) {
	if bank < 0 || bank >= o.banks {
		return
	}
	// One REF covers every bank at the same cycle; close the window once.
	if cycle != o.lastREFCycle {
		o.cur.REFCycle = cycle
		o.windows = append(o.windows, o.cur)
		o.cur = REFWindow{}
		o.lastREFCycle = cycle
	}
	for i := 0; i < rowCount; i++ {
		r := (rowStart + i) % o.rows
		k := o.key(bank, o.chip.WordlineIndex(r))
		o.damage[k] = 0
		// A refreshed wordline restarts from zero damage; the cached next
		// threshold (smallest not-yet-flipped cell) stays valid.
	}
}

// Flips returns the escaped flips in occurrence order.
func (o *Observer) Flips() []FlipEvent { return o.flips }

// EscapedFlips returns the count of distinct escaped bit flips — the
// post-correction count for chips with on-die ECC.
func (o *Observer) EscapedFlips() int { return len(o.flips) }

// RawFlips returns the count of distinct raw cell flips before any on-die
// ECC correction. Equal to EscapedFlips for chips without ECC.
func (o *Observer) RawFlips() int { return o.rawCount }

// Timeline returns the closed per-REF windows in time order. Activity
// after the last observed REF is not included.
func (o *Observer) Timeline() []REFWindow { return o.windows }

// FirstFlipCycle returns the memory cycle of the first escaped flip, or
// -1 when none escaped.
func (o *Observer) FirstFlipCycle() int64 { return o.firstFlip }

// AggressorACTs returns activations observed on watched aggressor rows.
func (o *Observer) AggressorACTs() int64 { return o.aggACTs }

// TotalACTs returns all activations observed.
func (o *Observer) TotalACTs() int64 { return o.totalACTs }

// Damage returns the currently accumulated effective hammers on a row's
// wordline (for tests and diagnostics).
func (o *Observer) Damage(bank, row int) float64 {
	return o.damage[o.key(bank, o.chip.WordlineIndex(row))]
}
