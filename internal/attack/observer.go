package attack

import (
	"repro/internal/faultmodel"
)

// FlipEvent is one escaped bit flip: a fault-model cell whose accumulated
// neighbor-activation damage crossed its threshold before any refresh —
// auto, mitigation-triggered, or the row's own activation — restored its
// charge. Cycle is the memory-clock cycle of the crossing activation.
type FlipEvent struct {
	faultmodel.Flip
	Cycle int64
}

// Observer is the per-bank hammer accountant that closes the security
// loop: it watches the controller's full command stream (every ACT,
// including mitigation victim refreshes, and the auto-refresh rotation)
// and mirrors, per physical wordline, the effective hammers accumulated
// since that wordline's last charge restoration. Whenever a wordline's
// damage crosses a cell threshold of the attached chip, the flip is
// recorded as escaped — permanently, as a real RowHammer flip persists
// until software rewrites the data.
//
// It implements sim.CommandObserver; drive it manually via OnACT/OnRefresh
// when wiring a bare controller. Not safe for concurrent use.
type Observer struct {
	chip      *faultmodel.Chip
	banks     int
	rows      int
	wordlines int

	// damage holds effective hammers per bank*wordlines+wl since the
	// wordline's last restoration.
	damage []float64
	// next caches the smallest cell threshold above the current damage
	// (0 = not yet computed), so the hot path is one comparison.
	next []float64

	watch   map[int64]struct{} // aggressor rows under rate measurement
	aggACTs int64

	totalACTs int64

	seen      map[faultmodel.Flip]struct{}
	flips     []FlipEvent
	firstFlip int64
}

// NewObserver builds an accountant over the chip. The chip must already
// hold its data pattern (WriteAll) so cell eligibility is defined.
func NewObserver(chip *faultmodel.Chip) *Observer {
	n := chip.Banks() * chip.Wordlines()
	return &Observer{
		chip:      chip,
		banks:     chip.Banks(),
		rows:      chip.Rows(),
		wordlines: chip.Wordlines(),
		damage:    make([]float64, n),
		next:      make([]float64, n),
		watch:     make(map[int64]struct{}),
		seen:      make(map[faultmodel.Flip]struct{}),
		firstFlip: -1,
	}
}

// WatchAggressors registers rows whose activations count toward the
// aggressor ACT rate metric.
func (o *Observer) WatchAggressors(refs []RowRef) {
	for _, r := range refs {
		o.watch[int64(r.Bank)<<32|int64(r.Row)] = struct{}{}
	}
}

func (o *Observer) key(bank, wl int) int { return bank*o.wordlines + wl }

// OnACT accounts one activation: the row's own wordline is restored, and
// every coupled wordline accumulates damage and is checked against the
// chip's flip model.
func (o *Observer) OnACT(rank, bank, row int, cycle int64) {
	if bank < 0 || bank >= o.banks || row < 0 || row >= o.rows {
		return
	}
	o.totalACTs++
	if _, ok := o.watch[int64(bank)<<32|int64(row)]; ok {
		o.aggACTs++
	}
	wl := o.chip.WordlineIndex(row)
	o.damage[o.key(bank, wl)] = 0 // activation restores the row's charge
	o.chip.ForEachCoupledWordline(wl, func(n int, w float64) {
		k := o.key(bank, n)
		o.damage[k] += w
		if o.next[k] == 0 {
			_, t := o.chip.ThresholdCrossings(bank, n, 0)
			o.next[k] = t
		}
		if o.damage[k] < o.next[k] {
			return
		}
		crossed, t := o.chip.ThresholdCrossings(bank, n, o.damage[k])
		o.next[k] = t
		for _, f := range crossed {
			if _, dup := o.seen[f]; dup {
				continue
			}
			o.seen[f] = struct{}{}
			o.flips = append(o.flips, FlipEvent{Flip: f, Cycle: cycle})
			if o.firstFlip < 0 {
				o.firstFlip = cycle
			}
		}
	})
}

// OnRefresh clears the damage of every wordline the auto-refresh rotation
// covers (wrapping at the bank edge, as the DRAM rotation does).
func (o *Observer) OnRefresh(rank, bank, rowStart, rowCount int, cycle int64) {
	if bank < 0 || bank >= o.banks {
		return
	}
	for i := 0; i < rowCount; i++ {
		r := (rowStart + i) % o.rows
		k := o.key(bank, o.chip.WordlineIndex(r))
		o.damage[k] = 0
		// A refreshed wordline restarts from zero damage; the cached next
		// threshold (smallest not-yet-flipped cell) stays valid.
	}
}

// Flips returns the escaped flips in occurrence order.
func (o *Observer) Flips() []FlipEvent { return o.flips }

// EscapedFlips returns the count of distinct escaped bit flips.
func (o *Observer) EscapedFlips() int { return len(o.flips) }

// FirstFlipCycle returns the memory cycle of the first escaped flip, or
// -1 when none escaped.
func (o *Observer) FirstFlipCycle() int64 { return o.firstFlip }

// AggressorACTs returns activations observed on watched aggressor rows.
func (o *Observer) AggressorACTs() int64 { return o.aggACTs }

// TotalACTs returns all activations observed.
func (o *Observer) TotalACTs() int64 { return o.totalACTs }

// Damage returns the currently accumulated effective hammers on a row's
// wordline (for tests and diagnostics).
func (o *Observer) Damage(bank, row int) float64 {
	return o.damage[o.key(bank, o.chip.WordlineIndex(row))]
}
