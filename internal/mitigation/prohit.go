package mitigation

import "repro/internal/stats"

// ProHIT (Son et al. [115]) tracks potential victim rows in a pair of
// probabilistically managed tables ("hot" and "cold") and refreshes the
// top hot entry during each REF command. The published design is tuned
// for HCfirst = 2000 and gives no scaling model (Section 6.1), so this
// implementation exposes the table parameters but reports itself viable
// only at that published operating point.
type ProHIT struct {
	p Params

	hotSize, coldSize int
	pInsert           float64 // pi: probability an unseen victim enters cold
	pEvict            float64 // pe: eviction position randomization
	pPromote          float64 // pt: promotion position randomization

	// Per-bank tables, most-significant entry first.
	hot, cold [][]int
	rng       *stats.RNG
}

// ProHITDefaults are our reconstruction of the DAC'17 configuration: four
// entries per table and sparse probabilistic insertion. The paper under
// reproduction states only that tables exist and are managed with
// probabilities pi/pe/pt; these values protect HCfirst = 2000 in our
// simulations while keeping the refresh overhead near zero.
var ProHITDefaults = struct {
	HotSize, ColdSize int
	PInsert           float64
	PEvict, PPromote  float64
	PublishedHCFirst  int
}{HotSize: 4, ColdSize: 4, PInsert: 1.0 / 16, PEvict: 0.3, PPromote: 0.3, PublishedHCFirst: 2000}

// NewProHIT builds the mechanism with the published defaults.
func NewProHIT(p Params) (*ProHIT, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &ProHIT{
		p:        p,
		hotSize:  ProHITDefaults.HotSize,
		coldSize: ProHITDefaults.ColdSize,
		pInsert:  ProHITDefaults.PInsert,
		pEvict:   ProHITDefaults.PEvict,
		pPromote: ProHITDefaults.PPromote,
		hot:      make([][]int, p.Banks),
		cold:     make([][]int, p.Banks),
		rng:      stats.NewRNG(p.Seed ^ 0x9406177),
	}
	return m, nil
}

func (m *ProHIT) Name() string { return "ProHIT" }

func indexOf(tbl []int, row int) int {
	for i, r := range tbl {
		if r == row {
			return i
		}
	}
	return -1
}

func (m *ProHIT) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int {
	for _, victim := range clampNeighbors(row, m.p.Rows) {
		m.observe(bank, victim)
	}
	return nil
}

// observe runs the table state machine for one potential victim.
func (m *ProHIT) observe(bank, victim int) {
	hot, cold := m.hot[bank], m.cold[bank]
	if i := indexOf(hot, victim); i >= 0 {
		// Already hot: upgrade one priority position.
		if i > 0 {
			hot[i], hot[i-1] = hot[i-1], hot[i]
		}
		return
	}
	if i := indexOf(cold, victim); i >= 0 {
		// Promote from cold to hot: to the top with probability
		// (1−pt)+pt/H, otherwise to a uniformly chosen other entry.
		m.cold[bank] = append(cold[:i], cold[i+1:]...)
		pos := 0
		if !m.rng.Bernoulli((1 - m.pPromote) + m.pPromote/float64(m.hotSize)) {
			if len(hot) > 0 {
				pos = 1 + m.rng.Intn(len(hot))
			}
		}
		if len(hot) >= m.hotSize {
			// Hot table full: demote the lowest-priority entry to cold.
			demoted := hot[len(hot)-1]
			hot = hot[:len(hot)-1]
			m.insertCold(bank, demoted)
		}
		if pos > len(hot) {
			pos = len(hot)
		}
		hot = append(hot, 0)
		copy(hot[pos+1:], hot[pos:])
		hot[pos] = victim
		m.hot[bank] = hot
		return
	}
	// Unseen: insert into cold with probability pi.
	if m.rng.Bernoulli(m.pInsert) {
		m.insertCold(bank, victim)
	}
}

// insertCold appends a row to the cold table, evicting per the paper's
// probabilities when full: the least recently inserted entry with
// probability (1−pe)+pe/C, any other with pe/C.
func (m *ProHIT) insertCold(bank, victim int) {
	cold := m.cold[bank]
	if len(cold) >= m.coldSize {
		evict := len(cold) - 1
		if !m.rng.Bernoulli((1 - m.pEvict) + m.pEvict/float64(m.coldSize)) {
			evict = m.rng.Intn(len(cold))
		}
		cold = append(cold[:evict], cold[evict+1:]...)
	}
	// Most recently inserted entries sit at the front.
	cold = append([]int{victim}, cold...)
	m.cold[bank] = cold
}

// OnAutoRefresh refreshes the top hot entry of the refreshed bank and
// removes it, as the paper describes, and drops tracking state for rows
// covered by the rotation.
func (m *ProHIT) OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int {
	var out []int
	if hot := m.hot[bank]; len(hot) > 0 {
		out = append(out, hot[0])
		m.hot[bank] = hot[1:]
	}
	return out
}

func (m *ProHIT) RefreshMultiplier() float64 { return 1 }

// Viable only at the published HCfirst = 2000 operating point.
func (m *ProHIT) Viable() bool { return m.p.HCFirst == ProHITDefaults.PublishedHCFirst }

func (m *ProHIT) ViabilityNote() string {
	return "published parameters cover HCfirst=2000 only; no scaling model exists"
}
