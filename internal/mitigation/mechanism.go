// Package mitigation implements the six RowHammer mitigation mechanisms
// the paper evaluates (Section 6.1): Increased Refresh Rate, PARA,
// ProHIT, MRLoc, TWiCe (plus its idealized variant) and the Ideal
// refresh-based mechanism, each parameterized by the chip's HCfirst so
// their overhead scaling can be measured (Figure 10).
package mitigation

import (
	"fmt"
)

// Params carries the system facts mechanisms need for scaling.
type Params struct {
	// HCFirst is the protected chip's weakest-cell hammer count; the
	// mechanism must prevent any row's neighbours from accumulating this
	// many hammers between refreshes of the row.
	HCFirst int

	Rows  int // rows per bank
	Banks int // total banks

	TRC   int64 // ns-scale timings expressed in memory-clock cycles
	TREFI int64
	TREFW int64

	Seed uint64
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.HCFirst <= 0:
		return fmt.Errorf("mitigation: HCFirst must be positive, got %d", p.HCFirst)
	case p.Rows <= 0 || p.Banks <= 0:
		return fmt.Errorf("mitigation: rows/banks must be positive (%d, %d)", p.Rows, p.Banks)
	case p.TRC <= 0 || p.TREFI <= 0 || p.TREFW <= 0:
		return fmt.Errorf("mitigation: timings must be positive")
	}
	return nil
}

// refsPerWindow returns how many REF commands fall in one refresh window.
func (p Params) refsPerWindow() float64 { return float64(p.TREFW) / float64(p.TREFI) }

// Mechanism observes the command stream and asks the controller to
// refresh victim rows. Implementations are single-threaded, driven from
// the controller's clock domain.
type Mechanism interface {
	// Name identifies the mechanism in reports.
	Name() string

	// OnActivate is invoked for every ACT the channel performs —
	// including mitigation-triggered ones (fromMitigation=true), which
	// are themselves activations that disturb their own neighbours. It
	// returns rows (same bank) the controller must refresh now.
	OnActivate(bank, row int, cycle int64, fromMitigation bool) []int

	// OnAutoRefresh is invoked per bank when a REF command's rotation
	// covers [rowStart, rowStart+rowCount); mechanisms reset tracking
	// state for those rows and may return extra rows to refresh (ProHIT
	// services its hot table on refresh commands).
	OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int

	// RefreshMultiplier scales the controller's REF rate: 1 is nominal;
	// the Increased Refresh Rate mechanism returns tREFW/tREFW'.
	RefreshMultiplier() float64
}

// Viability lets mechanisms declare the HCfirst range their design
// supports (Section 6.1: Increased Refresh and TWiCe do not scale below
// HCfirst = 32k; ProHIT and MRLoc have published parameters only for
// HCfirst = 2k).
type Viability interface {
	Viable() bool
	ViabilityNote() string
}

// RequesterNone marks an access whose source is unknown (direct
// controller use without a core in front). Throttlers must treat it as a
// distinct, never-privileged source.
const RequesterNone = -1

// Throttler is the optional extension throttling-based defenses implement
// (BlockHammer, Yağlıkçı et al., HPCA 2021). The controller consults
// ActAllowed before issuing a demand activation and delays the request
// while it returns false; mitigation-triggered refreshes are never
// throttled. Mechanisms still observe every issued ACT via OnActivate.
//
// The three methods split the design's two blockers plus its bookkeeping:
// ActAllowed is RowBlocker-Act (the per-row safety invariant — it must not
// depend on the requester for its admit/deny answer, or a spoofed source
// could exceed a row's activation budget); AdmitRequest is RowBlocker-Req
// (requester-aware queue admission, so a hammering thread cannot crowd the
// read queue with unissuable requests); OnRequesterACT attributes every
// issued demand ACT to its source so per-thread RowHammer-likelihood state
// can accrue. queueLoad is the read queue's occupancy fraction at
// admission time.
type Throttler interface {
	ActAllowed(requester, bank, row int, cycle int64) bool
	AdmitRequest(requester, bank, row int, queueLoad float64, cycle int64) bool
	OnRequesterACT(requester, bank, row int, cycle int64)
}

// clampRow keeps victim rows inside the bank.
func clampNeighbors(row, rows int) []int {
	var out []int
	if row > 0 {
		out = append(out, row-1)
	}
	if row < rows-1 {
		out = append(out, row+1)
	}
	return out
}

// None is the no-mitigation baseline.
type None struct{}

// NewNone returns the baseline mechanism.
func NewNone() None { return None{} }

func (None) Name() string { return "None" }

func (None) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int { return nil }

func (None) OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int { return nil }

func (None) RefreshMultiplier() float64 { return 1 }
