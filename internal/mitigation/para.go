package mitigation

import (
	"math"

	"repro/internal/stats"
)

// PARA (Probabilistic Adjacent Row Activation, Kim et al. [62]) refreshes
// a neighbour of every activated row with a low probability p. It is
// stateless, so it scales to arbitrary HCfirst values by raising p — at
// the cost of ever more refresh activations (Figure 10's most scalable
// but eventually slowest curve).
type PARA struct {
	p      Params
	prob   float64
	fanout int // adjacent rows refreshed per trigger (default 1)
	rng    *stats.RNG
}

// TargetBER is the acceptable probability of a RowHammer failure per hour
// of continuous hammering the paper adopts from consumer reliability
// targets (Section 6.1): 1e-15.
const TargetBER = 1e-15

// NewPARA derives p for the chip's HCfirst so that the bit error rate
// under continuous hammering stays below TargetBER per hour:
// each aggressor activation refreshes a given neighbour with probability
// p/2, so a victim survives HCfirst hammers unprotected with probability
// (1−p/2)^HCfirst; with 3600s/(HCfirst·tRC) attack windows per hour the
// per-window budget follows.
func NewPARA(p Params, tckPS int64) (*PARA, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &PARA{p: p, fanout: 1, rng: stats.NewRNG(p.Seed ^ 0x9a7a)}
	trcSec := float64(p.TRC) * float64(tckPS) * 1e-12
	windowsPerHour := 3600 / (float64(p.HCFirst) * trcSec)
	if windowsPerHour < 1 {
		windowsPerHour = 1
	}
	perWindow := TargetBER / windowsPerHour
	// (1 − p/2)^HC ≤ perWindow  ⇒  p = 2·(1 − perWindow^(1/HC)).
	m.prob = 2 * (1 - math.Exp(math.Log(perWindow)/float64(p.HCFirst)))
	if m.prob > 1 {
		m.prob = 1
	}
	return m, nil
}

// Probability returns the derived refresh probability p.
func (m *PARA) Probability() float64 { return m.prob }

// WithFanout sets how many adjacent rows each trigger refreshes (1 picks
// one side at random, 2 refreshes both — the DESIGN.md ablation). It
// returns the receiver for chaining.
func (m *PARA) WithFanout(n int) *PARA {
	if n < 1 {
		n = 1
	}
	if n > 2 {
		n = 2
	}
	m.fanout = n
	return m
}

func (m *PARA) Name() string { return "PARA" }

func (m *PARA) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int {
	if !m.rng.Bernoulli(m.prob) {
		return nil
	}
	ns := clampNeighbors(row, m.p.Rows)
	if len(ns) == 0 {
		return nil
	}
	if m.fanout >= len(ns) {
		return ns
	}
	// Refresh one adjacent row, chosen uniformly.
	return []int{ns[m.rng.Intn(len(ns))]}
}

func (m *PARA) OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int { return nil }

func (m *PARA) RefreshMultiplier() float64 { return 1 }

// Viable: PARA's design scales to any HCfirst.
func (m *PARA) Viable() bool { return true }

func (m *PARA) ViabilityNote() string { return "scales to arbitrary HCfirst by raising p" }
