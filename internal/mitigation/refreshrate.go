package mitigation

// IncreasedRefresh is the original RowHammer paper's brute-force defense:
// raise the refresh rate until no row can be activated HCfirst times
// within one refresh window. Following Section 6.1, the scaled window is
// tREFW' = HCfirst × tRC, so the multiplier over the nominal window is
// tREFW / (HCfirst × tRC). The mechanism issues no targeted refreshes; it
// only scales REF frequency.
//
// The design cannot scale below HCfirst ≈ 32k: the window becomes too
// short to fit the per-window refresh commands themselves.
type IncreasedRefresh struct {
	p          Params
	multiplier float64
}

// NewIncreasedRefresh builds the mechanism for the given parameters.
func NewIncreasedRefresh(p Params) (*IncreasedRefresh, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &IncreasedRefresh{p: p}
	scaledWindow := float64(p.HCFirst) * float64(p.TRC)
	m.multiplier = float64(p.TREFW) / scaledWindow
	if m.multiplier < 1 {
		m.multiplier = 1 // chips weaker than the nominal window need nothing
	}
	return m, nil
}

func (m *IncreasedRefresh) Name() string { return "IncreasedRefresh" }

func (m *IncreasedRefresh) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int {
	return nil
}

func (m *IncreasedRefresh) OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int {
	return nil
}

func (m *IncreasedRefresh) RefreshMultiplier() float64 { return m.multiplier }

// Viable reports whether the scaled refresh window is long enough to
// scale refresh this far (Section 6.1's HCfirst ≥ 32k bound).
func (m *IncreasedRefresh) Viable() bool { return m.p.HCFirst >= 32_000 }

func (m *IncreasedRefresh) ViabilityNote() string {
	return "refresh window HCfirst×tRC cannot fit the mandatory refreshes below HCfirst≈32k"
}
