package mitigation

// Ideal is the paper's ideal refresh-based mechanism: it tracks every
// activation to every row exactly and refreshes a victim only immediately
// before it could experience its first bit flip — the minimum possible
// number of additional refreshes for a refresh-based defense
// (Section 6.1). It bounds what any counter- or probability-based
// mechanism could hope to achieve.
type Ideal struct {
	p Params

	// hammers[bank][row] counts accumulated hammers (a single adjacent
	// activation contributes 0.5, so a double-sided pair contributes 1).
	hammers [][]float32
	trigger float32
}

// NewIdeal builds the oracle tracker.
func NewIdeal(p Params) (*Ideal, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Ideal{p: p}
	m.hammers = make([][]float32, p.Banks)
	for b := range m.hammers {
		m.hammers[b] = make([]float32, p.Rows)
	}
	m.trigger = float32(p.HCFirst) - 1
	if m.trigger < 1 {
		m.trigger = 1
	}
	return m, nil
}

func (m *Ideal) Name() string { return "Ideal" }

func (m *Ideal) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int {
	rows := m.hammers[bank]
	// Activating a row restores its own charge.
	rows[row] = 0
	var refresh []int
	for _, victim := range clampNeighbors(row, m.p.Rows) {
		rows[victim] += 0.5
		if rows[victim] >= m.trigger {
			refresh = append(refresh, victim)
			rows[victim] = 0
		}
	}
	return refresh
}

func (m *Ideal) OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int {
	rows := m.hammers[bank]
	for r := rowStart; r < rowStart+rowCount && r < len(rows); r++ {
		rows[r] = 0
	}
	return nil
}

func (m *Ideal) RefreshMultiplier() float64 { return 1 }

// Viable: the oracle applies at any HCfirst (it is a bound, not a
// realizable design).
func (m *Ideal) Viable() bool { return true }

func (m *Ideal) ViabilityNote() string {
	return "oracle bound: perfect per-row activation tracking"
}
