package mitigation

// TWiCe (Lee et al. [76]) keeps a per-bank table of potential victims
// with two counters each — activations and lifetime — refreshing a victim
// when its activation count crosses tRH = HCfirst/4 and pruning
// slow-hammered entries during refresh commands.
//
// The real design cannot support tRH below the number of refresh
// intervals per window (≈8k, hence HCfirst ≥ 32k, Section 6.1): pruning
// thresholds would need fractional (floating-point) rates and the table
// would grow unboundedly. TWiCe-ideal assumes those engineering issues
// away and is what the paper evaluates below 32k.
type TWiCe struct {
	p     Params
	ideal bool

	tRH     float64 // refresh threshold in activations
	pruneTh float64 // activations-per-lifetime pruning rate

	tables []map[int]*twiceEntry // per bank
}

type twiceEntry struct {
	acts float64
	life float64
}

// NewTWiCe builds the mechanism; ideal selects TWiCe-ideal, which is
// evaluated below the real design's HCfirst ≥ 32k bound.
func NewTWiCe(p Params, ideal bool) (*TWiCe, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &TWiCe{p: p, ideal: ideal}
	m.tRH = float64(p.HCFirst) / 4
	if m.tRH < 1 {
		m.tRH = 1
	}
	m.pruneTh = m.tRH / p.refsPerWindow()
	m.tables = make([]map[int]*twiceEntry, p.Banks)
	for i := range m.tables {
		m.tables[i] = make(map[int]*twiceEntry)
	}
	return m, nil
}

func (m *TWiCe) Name() string {
	if m.ideal {
		return "TWiCe-ideal"
	}
	return "TWiCe"
}

// TRH returns the refresh threshold in activations.
func (m *TWiCe) TRH() float64 { return m.tRH }

func (m *TWiCe) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int {
	var refresh []int
	tbl := m.tables[bank]
	for _, victim := range clampNeighbors(row, m.p.Rows) {
		e, ok := tbl[victim]
		if !ok {
			e = &twiceEntry{}
			tbl[victim] = e
		}
		// Each adjacent activation contributes half a (double-sided)
		// hammer to the victim.
		e.acts += 0.5
		if e.acts >= m.tRH {
			refresh = append(refresh, victim)
			delete(tbl, victim)
		}
	}
	return refresh
}

// OnAutoRefresh performs the pruning stage (hidden behind REF latency in
// the real design) and drops entries for rows the rotation refreshed.
func (m *TWiCe) OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int {
	tbl := m.tables[bank]
	//rhlint:allow mapiter(independent per-key prune-or-age; order-free)
	for row, e := range tbl {
		if row >= rowStart && row < rowStart+rowCount {
			delete(tbl, row)
			continue
		}
		e.life++
		if e.acts < m.pruneTh*e.life {
			delete(tbl, row)
		}
	}
	return nil
}

func (m *TWiCe) RefreshMultiplier() float64 { return 1 }

// TableEntries reports the current tracking-table occupancy (for the
// scalability analysis).
func (m *TWiCe) TableEntries() int {
	n := 0
	for _, tbl := range m.tables {
		n += len(tbl)
	}
	return n
}

// Viable: the real design requires tRH ≥ refreshes-per-window (within a
// small tolerance — the paper rounds the ≈8.2k refresh intervals of
// DDR4 to "∼8k" and draws the line at HCfirst = 32k); the ideal variant
// has no bound.
func (m *TWiCe) Viable() bool {
	if m.ideal {
		return true
	}
	return m.tRH >= 0.95*m.p.refsPerWindow()
}

func (m *TWiCe) ViabilityNote() string {
	if m.ideal {
		return "idealized: assumes the pruning/table-size issues below HCfirst=32k are solved"
	}
	return "tRH below the per-window refresh count (HCfirst < 32k) breaks pruning"
}
