package mitigation

import "repro/internal/stats"

// MRLoc (You et al. [133]) queues victim-row addresses on every
// activation and refreshes a re-inserted victim with a probability that
// grows with its re-insertion locality: victims seen again after a short
// interval are likelier to be refreshed. The published parameters target
// HCfirst = 2000; like the paper, we evaluate it only there.
type MRLoc struct {
	p Params

	queueSize int
	pMax      float64

	// Per-bank FIFO of recently observed victims (most recent last) and
	// a running insertion counter to compute re-insertion distance.
	queue  [][]mrlocEntry
	serial []int64
	rng    *stats.RNG
}

type mrlocEntry struct {
	row    int
	serial int64
}

// MRLocDefaults reconstructs the DAC'19 tuning: a 512-entry victim queue
// and a maximum refresh probability chosen so HCfirst = 2000 attacks are
// intercepted while benign locality costs almost nothing.
var MRLocDefaults = struct {
	QueueSize        int
	PMax             float64
	PublishedHCFirst int
}{QueueSize: 512, PMax: 0.05, PublishedHCFirst: 2000}

// NewMRLoc builds the mechanism with published defaults.
func NewMRLoc(p Params) (*MRLoc, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &MRLoc{
		p:         p,
		queueSize: MRLocDefaults.QueueSize,
		pMax:      MRLocDefaults.PMax,
		queue:     make([][]mrlocEntry, p.Banks),
		serial:    make([]int64, p.Banks),
		rng:       stats.NewRNG(p.Seed ^ 0x3a10c),
	}, nil
}

func (m *MRLoc) Name() string { return "MRLoc" }

func (m *MRLoc) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int {
	var refresh []int
	for _, victim := range clampNeighbors(row, m.p.Rows) {
		m.serial[bank]++
		q := m.queue[bank]
		// Find the victim's previous insertion, newest first.
		prev := -1
		for i := len(q) - 1; i >= 0; i-- {
			if q[i].row == victim {
				prev = i
				break
			}
		}
		if prev >= 0 {
			dist := m.serial[bank] - q[prev].serial
			if dist < int64(m.queueSize) {
				// Locality-weighted probability: re-insertions after a
				// short gap get close to pMax, distant ones near zero.
				pr := m.pMax * (1 - float64(dist)/float64(m.queueSize))
				if m.rng.Bernoulli(pr) {
					refresh = append(refresh, victim)
				}
			}
			q = append(q[:prev], q[prev+1:]...)
		}
		q = append(q, mrlocEntry{row: victim, serial: m.serial[bank]})
		if len(q) > m.queueSize {
			q = q[1:]
		}
		m.queue[bank] = q
	}
	return refresh
}

func (m *MRLoc) OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int { return nil }

func (m *MRLoc) RefreshMultiplier() float64 { return 1 }

// Viable only at the published HCfirst = 2000 operating point.
func (m *MRLoc) Viable() bool { return m.p.HCFirst == MRLocDefaults.PublishedHCFirst }

func (m *MRLoc) ViabilityNote() string {
	return "parameters tuned empirically for HCfirst=2000; no scaling rule published"
}
