package mitigation

import "testing"

// trrParams is a small deterministic system for sampler tests: tREFI
// 1000 with a 25% observation window means cycles 750..999 of each
// interval are observed; tREFW 8000 bounds the counter epoch.
func trrParams() Params {
	return Params{
		HCFirst: 1000,
		Rows:    1024,
		Banks:   4,
		TRC:     56,
		TREFI:   1000,
		TREFW:   8000,
		Seed:    1,
	}
}

// detTRR builds a sampler with SampleRate 1 (deterministic sampling) and
// the given table size and threshold.
func detTRR(t *testing.T, table, threshold int) *TRR {
	t.Helper()
	m, err := NewTRRWithConfig(trrParams(), TRRConfig{SampleRate: 1, TableSize: table, Threshold: threshold, WindowFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTRRConfigValidation(t *testing.T) {
	p := trrParams()
	for _, bad := range []TRRConfig{
		{SampleRate: -0.5},
		{SampleRate: 1.5},
		{TableSize: -1},
		{Threshold: -2},
		{WindowFrac: -0.1},
		{WindowFrac: 1.2},
	} {
		if _, err := NewTRRWithConfig(p, bad); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	m, err := NewTRR(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.SampleRate != TRRDefaults.SampleRate || cfg.TableSize != TRRDefaults.TableSize ||
		cfg.WindowFrac != TRRDefaults.WindowFrac {
		t.Errorf("defaults not filled: %+v", cfg)
	}
	if cfg.Threshold < 2 {
		t.Errorf("derived threshold %d below floor", cfg.Threshold)
	}
}

// TestTRRBlocksInWindowHammering is the block-at-full-rate half of the
// sampler's contract: activations inside the observation window cross
// the threshold and the next REF refreshes the aggressor's neighbours,
// after which the entry has been served and leaves the table.
func TestTRRBlocksInWindowHammering(t *testing.T) {
	m := detTRR(t, 4, 2)
	// Cycles 750 and 751 are inside the 25% window before the REF at 1000.
	m.OnActivate(0, 100, 750, false)
	m.OnActivate(0, 100, 751, false)
	if m.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", m.Samples())
	}
	got := m.OnAutoRefresh(0, 0, 64, 1000)
	if len(got) != 2 || got[0] != 99 || got[1] != 101 {
		t.Fatalf("REF refreshed %v, want [99 101]", got)
	}
	if m.VictimRefreshes() != 2 {
		t.Errorf("victim refreshes = %d, want 2", m.VictimRefreshes())
	}
	// Served entry left the table: the next REF issues nothing.
	if got := m.OnAutoRefresh(0, 0, 64, 2000); len(got) != 0 {
		t.Errorf("second REF refreshed %v, want nothing", got)
	}
	// A below-threshold row stays tracked but unserved.
	m.OnActivate(1, 200, 2750, false)
	if got := m.OnAutoRefresh(1, 0, 64, 3000); len(got) != 0 {
		t.Errorf("below-threshold entry served: %v", got)
	}
}

// TestTRRDodgedByOutOfWindowHammering is the dodge half: the same
// hammering placed outside the observation window is never sampled, so
// the sampler stays blind and REFs refresh nothing.
func TestTRRDodgedByOutOfWindowHammering(t *testing.T) {
	m := detTRR(t, 4, 2)
	for cycle := int64(0); cycle < 700; cycle += 7 {
		m.OnActivate(0, 100, cycle, false) // head of the interval: unobserved
	}
	if m.Samples() != 0 {
		t.Fatalf("out-of-window ACTs sampled %d times", m.Samples())
	}
	if got := m.OnAutoRefresh(0, 0, 64, 1000); len(got) != 0 {
		t.Errorf("blind sampler still refreshed %v", got)
	}
	// Mitigation-triggered ACTs are the sampler's own refreshes: never
	// sampled even in-window.
	m.OnActivate(0, 300, 800, true)
	if m.Samples() != 0 {
		t.Error("sampler sampled its own mitigation refresh")
	}
}

// TestTRRTableEviction pins the classic sampler weakness: a full table
// evicts its lowest-count (oldest on ties) entry for the new sample, so
// low-count rows are thrashed while established aggressors survive.
func TestTRRTableEviction(t *testing.T) {
	m := detTRR(t, 2, 3)
	in := int64(800) // inside the window before REF@1000
	m.OnActivate(0, 100, in, false)
	m.OnActivate(0, 100, in+1, false)
	m.OnActivate(0, 100, in+2, false) // row 100: count 3
	m.OnActivate(0, 200, in+3, false) // row 200: count 1
	m.OnActivate(0, 300, in+4, false) // full table: evicts row 200 (min count) → 300: count 1
	m.OnActivate(0, 300, in+5, false) // row 300: count 2
	m.OnActivate(0, 200, in+6, false) // full table: evicts row 300 (count 2 < 100's 3) → 200: count 1
	// Only row 100 (count 3) is at the threshold.
	got := m.OnAutoRefresh(0, 0, 64, 1000)
	if len(got) != 2 || got[0] != 99 || got[1] != 101 {
		t.Fatalf("REF refreshed %v, want row 100's neighbours [99 101]", got)
	}
}

// TestTRRWideRotationThrashesTable pins the TRRespass effect end to end
// at the unit level: rotating more aggressors than the table holds keeps
// evicting count-1 entries, so no row ever reaches the threshold.
func TestTRRWideRotationThrashesTable(t *testing.T) {
	m := detTRR(t, 2, 2)
	rows := []int{100, 102, 104, 106, 108, 110}
	cycle := int64(750)
	for pass := 0; pass < 40; pass++ {
		for _, r := range rows {
			m.OnActivate(0, r, cycle, false)
			cycle++
		}
	}
	if got := m.OnAutoRefresh(0, 0, 64, 1000); len(got) != 0 {
		t.Errorf("thrashed table still crossed the threshold: %v", got)
	}
}

// TestTRRClearsCountersPerTREFW pins the per-tREFW reset: suspicion
// accumulated in one refresh window does not survive into the next.
func TestTRRClearsCountersPerTREFW(t *testing.T) {
	m := detTRR(t, 4, 3)
	m.OnActivate(0, 100, 800, false)
	m.OnActivate(0, 100, 801, false) // count 2, below threshold 3
	// Next tREFW epoch (8000 cycles later): counters must be gone, so one
	// more in-window ACT cannot cross the threshold it would have crossed
	// with the stale count.
	m.OnActivate(0, 100, 8800, false)
	if got := m.OnAutoRefresh(0, 0, 64, 9000); len(got) != 0 {
		t.Errorf("stale counters crossed the threshold after the tREFW clear: %v", got)
	}
	if m.Samples() != 3 {
		t.Errorf("samples = %d, want 3 (clearing resets counters, not the sample tally)", m.Samples())
	}
}
