package mitigation

// BlockHammer (Yağlıkçı et al., HPCA 2021) is a throttling-based defense:
// instead of refreshing victims it rate-limits aggressors. Per-bank dual
// counting Bloom filters (count-min sketches here) estimate every row's
// activation count over a rolling pair of epochs; once a row's estimate
// crosses the blacklist threshold NBL, further activations to it are
// delayed so that no row can exceed the safe activation budget within a
// refresh window — so no victim can accumulate HCfirst hammers between
// two of its own refreshes. Unlike the paper's six mechanisms it issues
// zero extra refreshes; its cost is demand-ACT latency on (truly or
// falsely) blacklisted rows.
//
// Three RowBlocker-Req admission policies are implemented. The default
// proportional policy follows BlockHammer's full design: each source
// thread carries a RowHammer likelihood index (RHLI) — its activation
// count on hot rows relative to the blacklist threshold — and a
// blacklisted-row request is delayed in proportion to its source's RHLI
// (RHLI × the post-blacklist ACT spacing, capped at an epoch), so a
// borderline source pays a brief pause while a confirmed hammerer is
// rate-limited hard; a zero-RHLI thread that merely touches a (truly or
// falsely) blacklisted row is never collateral. The binary policy
// (NewBlockHammerBinary, the previous default) rejects blacklisted-row
// requests outright once the source's RHLI reaches 1 — the comparison
// baseline for the proportional design. The legacy blanket policy
// (NewBlockHammerBlanket, the pre-requester-ID behavior) rejects any
// blacklisted-row read once the queue is half full, regardless of who
// asks. All three share the same requester-agnostic RowBlocker-Act
// spacing, so the security guarantee is identical; they differ only in
// who pays the queue-admission cost, and how much.
type BlockHammer struct {
	p Params

	// maxActs is the per-row activation budget over one epoch pair (two
	// half-windows): capped so a victim flanked by two max-rate aggressors
	// stays below HCfirst accumulated hammers.
	maxActs float64
	// nbl is the blacklist threshold: activations estimated before
	// throttling engages.
	nbl float64
	// minInterval spaces post-blacklist ACTs so the budget holds.
	minInterval int64
	// epochLen is the filter rotation period (tREFW/2).
	epochLen int64

	epochStart int64
	filters    [2]*countMin // [0] active (inserted), [1] previous epoch
	release    map[int64]int64

	// policy selects the RowBlocker-Req admission policy.
	policy admissionPolicy
	// reqRelease is the proportional policy's per-requester delay window:
	// a blacklisted-row request from the source is held until this cycle.
	reqRelease map[int]int64
	// rhliACTs counts, per requester, issued ACTs whose target row's
	// estimate had already climbed past rhliRampFrac×NBL — the numerator
	// of the RowHammer likelihood index. Halved on every epoch rotation,
	// mirroring the estimate's two-epoch window: a still-blacklisted
	// hammerer keeps a high RHLI across the rotation instead of being
	// briefly re-admitted while its index re-ramps.
	rhliACTs map[int]float64

	throttleEvents int64
}

// countMin is a small count-min sketch: k hashed counter rows, estimate =
// min over rows. Overestimates under collisions, which for BlockHammer is
// the safe direction (false positives throttle benign rows; false
// negatives would miss aggressors).
type countMin struct {
	rows  [4][]uint32
	salts [4]uint64
}

func newCountMin(m int, seed uint64) *countMin {
	cm := &countMin{}
	for i := range cm.rows {
		cm.rows[i] = make([]uint32, m)
		cm.salts[i] = bhMix(seed + uint64(i)*0x9e3779b97f4a7c15)
	}
	return cm
}

func bhMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (cm *countMin) slot(i int, key uint64) int {
	return int(bhMix(key^cm.salts[i]) % uint64(len(cm.rows[i])))
}

func (cm *countMin) insert(key uint64) {
	for i := range cm.rows {
		cm.rows[i][cm.slot(i, key)]++
	}
}

func (cm *countMin) estimate(key uint64) uint32 {
	est := cm.rows[0][cm.slot(0, key)]
	for i := 1; i < len(cm.rows); i++ {
		if v := cm.rows[i][cm.slot(i, key)]; v < est {
			est = v
		}
	}
	return est
}

func (cm *countMin) clear() {
	for i := range cm.rows {
		for j := range cm.rows[i] {
			cm.rows[i][j] = 0
		}
	}
}

// cmCounters sizes each sketch row; 4096 counters across 4 hashes keeps
// the false-blacklist rate negligible for benign row working sets while
// staying far below one counter per row (the whole point of the filter).
const cmCounters = 4096

// blockHammerSafety derates the per-row activation budget below the exact
// HCfirst bound, absorbing the ±0.5-hammer accounting slack around epoch
// boundaries.
const blockHammerSafety = 0.8

// rhliRampFrac: issued ACTs to rows whose estimate has reached this
// fraction of NBL count toward the activating requester's RHLI, so a
// hammerer's index climbs during the ramp to the blacklist threshold, not
// only at the (budget-bounded, hence slow) post-blacklist trickle.
const rhliRampFrac = 0.5

// admissionPolicy selects the RowBlocker-Req variant.
type admissionPolicy int

const (
	// policyProportional delays blacklisted-row requests by
	// RHLI × minInterval per BlockHammer's full design (default).
	policyProportional admissionPolicy = iota
	// policyBinary rejects blacklisted-row requests outright at RHLI ≥ 1.
	policyBinary
	// policyBlanket rejects any blacklisted-row read on a half-full
	// queue, requester-blind (the pre-requester-ID behavior).
	policyBlanket
)

// NewBlockHammer builds the throttler for a chip's HCfirst, with
// proportional per-requester RowBlocker-Req admission.
func NewBlockHammer(p Params) (*BlockHammer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &BlockHammer{
		p:          p,
		release:    make(map[int64]int64),
		reqRelease: make(map[int]int64),
		rhliACTs:   make(map[int]float64),
	}
	m.epochLen = p.TREFW / 2
	if m.epochLen < 1 {
		m.epochLen = 1
	}
	// A victim between two aggressors gains 0.5 hammer per aggressor ACT:
	// N ACTs to each side accumulate N hammers, so cap per-row ACTs over
	// the two live epochs at safety×HCfirst.
	m.maxActs = blockHammerSafety * float64(p.HCFirst)
	if m.maxActs < 2 {
		m.maxActs = 2
	}
	m.nbl = m.maxActs / 4
	if m.nbl < 1 {
		m.nbl = 1
	}
	// Post-blacklist spacing: the remaining budget spread over the epoch
	// pair, so burst(NBL) + throttled ACTs ≤ maxActs.
	m.minInterval = int64(float64(2*m.epochLen) / (m.maxActs - m.nbl))
	if m.minInterval < 1 {
		m.minInterval = 1
	}
	m.filters[0] = newCountMin(cmCounters, p.Seed^0xb10c)
	m.filters[1] = newCountMin(cmCounters, p.Seed^0x4a44)
	return m, nil
}

// NewBlockHammerBinary builds the binary per-requester variant: a
// blacklisted-row request is rejected outright once its source's RHLI
// reaches 1. It is the comparison baseline for the proportional policy.
func NewBlockHammerBinary(p Params) (*BlockHammer, error) {
	m, err := NewBlockHammer(p)
	if err != nil {
		return nil, err
	}
	m.policy = policyBinary
	return m, nil
}

// NewBlockHammerBlanket builds the legacy requester-blind variant: queue
// admission rejects any blacklisted-row read once the queue is half full,
// whoever asks. It is the comparison baseline the per-requester policies
// are measured against.
func NewBlockHammerBlanket(p Params) (*BlockHammer, error) {
	m, err := NewBlockHammer(p)
	if err != nil {
		return nil, err
	}
	m.policy = policyBlanket
	return m, nil
}

func (m *BlockHammer) Name() string {
	switch m.policy {
	case policyBlanket:
		return "BlockHammer-blanket"
	case policyBinary:
		return "BlockHammer-binary"
	default:
		return "BlockHammer"
	}
}

func (m *BlockHammer) key(bank, row int) int64 { return int64(bank)<<32 | int64(row) }

// rotate swaps the filter roles at epoch boundaries: the stale filter is
// cleared and becomes the insertion target; estimates always cover the
// current and previous epoch.
func (m *BlockHammer) rotate(cycle int64) {
	for cycle-m.epochStart >= m.epochLen {
		m.epochStart += m.epochLen
		m.filters[0], m.filters[1] = m.filters[1], m.filters[0]
		m.filters[0].clear()
		m.release = make(map[int64]int64)
		m.reqRelease = make(map[int]int64)
		//rhlint:allow mapiter(independent per-key halve-or-delete; order-free)
		for k, v := range m.rhliACTs {
			if v >= 1 {
				m.rhliACTs[k] = v / 2
			} else {
				delete(m.rhliACTs, k)
			}
		}
	}
}

// estimate sums the two live epochs' counts for a row.
func (m *BlockHammer) estimate(bank, row int) float64 {
	k := uint64(m.key(bank, row))
	return float64(m.filters[0].estimate(k)) + float64(m.filters[1].estimate(k))
}

// OnActivate records the activation; BlockHammer never refreshes victims.
func (m *BlockHammer) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int {
	m.rotate(cycle)
	m.filters[0].insert(uint64(m.key(bank, row)))
	if m.estimate(bank, row) >= m.nbl {
		m.release[m.key(bank, row)] = cycle + m.minInterval
	}
	return nil
}

func (m *BlockHammer) OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int {
	m.rotate(cycle)
	return nil
}

// ActAllowed implements Throttler's RowBlocker-Act: blacklisted rows wait
// out minInterval between activations. The answer deliberately ignores the
// requester — the per-row budget is the security invariant, and it must
// hold however the activations are attributed.
func (m *BlockHammer) ActAllowed(requester, bank, row int, cycle int64) bool {
	m.rotate(cycle)
	if m.estimate(bank, row) < m.nbl {
		return true
	}
	if rel, ok := m.release[m.key(bank, row)]; ok && cycle < rel {
		m.throttleEvents++
		return false
	}
	return true
}

// AdmitRequest implements Throttler's RowBlocker-Req.
//
// Proportional policy (default, BlockHammer's full design): the first
// blacklisted-row request from a source with a nonzero RHLI opens a delay
// window of RHLI × minInterval cycles (capped at one epoch); the request
// and any follow-ups are rejected until the window closes, then admitted.
// A borderline source (RHLI ≪ 1) pays a pause proportional to its own
// hot-row activity; a confirmed hammerer (RHLI ≥ 1) is rate-limited to
// roughly one blacklisted-row admission per spacing interval or worse.
//
// Binary policy: a blacklisted-row read is rejected outright while its
// source's RHLI is ≥ 1 (the thread has personally driven a blacklist
// threshold's worth of hot-row activations this epoch pair).
//
// Blanket policy: any blacklisted-row read is rejected while the queue is
// at least half full and the row is inside its spacing window.
func (m *BlockHammer) AdmitRequest(requester, bank, row int, queueLoad float64, cycle int64) bool {
	m.rotate(cycle)
	if m.estimate(bank, row) < m.nbl {
		return true
	}
	// An unknown source cannot accrue an RHLI, so it must never be
	// privileged by the per-requester policies: fall back to the blanket
	// rule for it (and for the blanket variant itself).
	if m.policy == policyBlanket || requester < 0 {
		if queueLoad < 0.5 {
			return true
		}
		if rel, ok := m.release[m.key(bank, row)]; ok && cycle < rel {
			m.throttleEvents++
			return false
		}
		return true
	}
	if m.policy == policyBinary {
		if m.RHLI(requester) >= 1 {
			m.throttleEvents++
			return false
		}
		return true
	}
	// Proportional: serve out any open delay window first.
	if rel, ok := m.reqRelease[requester]; ok {
		if cycle < rel {
			m.throttleEvents++
			return false
		}
		// Window served: this request has paid its RHLI-proportional
		// delay and goes through; the next one opens a fresh window.
		delete(m.reqRelease, requester)
		return true
	}
	delay := int64(m.RHLI(requester) * float64(m.minInterval))
	if delay <= 0 {
		return true
	}
	if delay > m.epochLen {
		delay = m.epochLen
	}
	m.reqRelease[requester] = cycle + delay
	m.throttleEvents++
	return false
}

// OnRequesterACT attributes an issued demand ACT to its source: once the
// target row's estimate has climbed past rhliRampFrac×NBL, the ACT counts
// toward the requester's RowHammer likelihood index.
func (m *BlockHammer) OnRequesterACT(requester, bank, row int, cycle int64) {
	if requester < 0 {
		return
	}
	m.rotate(cycle)
	if m.estimate(bank, row) >= rhliRampFrac*m.nbl {
		m.rhliACTs[requester]++
	}
}

// RHLI returns the requester's RowHammer likelihood index for the live
// epoch pair: hot-row activations relative to the blacklist threshold.
// 0 is a certainly-benign source; ≥1 marks a hammerer.
func (m *BlockHammer) RHLI(requester int) float64 {
	return m.rhliACTs[requester] / m.nbl
}

func (m *BlockHammer) RefreshMultiplier() float64 { return 1 }

// ThrottleEvents reports how often ActAllowed denied an activation.
func (m *BlockHammer) ThrottleEvents() int64 { return m.throttleEvents }

// NBL returns the blacklist threshold in activations per epoch pair.
func (m *BlockHammer) NBL() float64 { return m.nbl }

// MinInterval returns the post-blacklist ACT spacing in memory cycles.
func (m *BlockHammer) MinInterval() int64 { return m.minInterval }

// Viable: throttling scales to arbitrarily low HCfirst — the design's
// headline claim — at growing performance cost from false blacklists.
func (m *BlockHammer) Viable() bool { return true }

func (m *BlockHammer) ViabilityNote() string {
	return "throttling-based: scales to any HCfirst; cost is ACT latency on blacklisted rows"
}
