package mitigation

import (
	"testing"

	"repro/internal/dram"
)

func testParams(hcFirst int) Params {
	t := dram.DDR4_2400(16384)
	return Params{
		HCFirst: hcFirst,
		Rows:    16384,
		Banks:   16,
		TRC:     int64(t.RC),
		TREFI:   int64(t.REFI),
		TREFW:   t.REFW,
		Seed:    1,
	}
}

func TestParamsValidate(t *testing.T) {
	good := testParams(10_000)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Params){
		func(p *Params) { p.HCFirst = 0 },
		func(p *Params) { p.Rows = 0 },
		func(p *Params) { p.Banks = 0 },
		func(p *Params) { p.TRC = 0 },
	} {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", p)
		}
	}
}

func TestNoneIsInert(t *testing.T) {
	n := NewNone()
	if got := n.OnActivate(0, 5, 1, false); got != nil {
		t.Errorf("None refreshed %v", got)
	}
	if n.RefreshMultiplier() != 1 {
		t.Error("None multiplier != 1")
	}
}

func TestIncreasedRefreshScaling(t *testing.T) {
	weak, err := NewIncreasedRefresh(testParams(32_000))
	if err != nil {
		t.Fatal(err)
	}
	strong, err := NewIncreasedRefresh(testParams(128_000))
	if err != nil {
		t.Fatal(err)
	}
	if weak.RefreshMultiplier() <= strong.RefreshMultiplier() {
		t.Errorf("multiplier must grow as HCfirst shrinks: %v vs %v",
			weak.RefreshMultiplier(), strong.RefreshMultiplier())
	}
	// tREFW' = HCfirst×tRC: at 32k and tRC=56 cycles the window is
	// 1.79M cycles vs the nominal 76.8G ps / 833 ps ≈ 76.8M cycles: ≈43×.
	if m := weak.RefreshMultiplier(); m < 35 || m > 55 {
		t.Errorf("multiplier at 32k = %v, want ≈43", m)
	}
	if !weak.Viable() {
		t.Error("32k must be viable (the paper's bound)")
	}
	below, err := NewIncreasedRefresh(testParams(16_000))
	if err != nil {
		t.Fatal(err)
	}
	if below.Viable() {
		t.Error("16k must not be viable")
	}
}

func TestPARAProbabilityScaling(t *testing.T) {
	t4800, err := NewPARA(testParams(4_800), 833)
	if err != nil {
		t.Fatal(err)
	}
	t128, err := NewPARA(testParams(128), 833)
	if err != nil {
		t.Fatal(err)
	}
	if !(t128.Probability() > t4800.Probability()) {
		t.Errorf("p must grow as HCfirst shrinks: %v vs %v", t128.Probability(), t4800.Probability())
	}
	// Section 6.2.2 context: p around 2% protects HCfirst≈5k chips.
	if p := t4800.Probability(); p < 0.005 || p > 0.08 {
		t.Errorf("p(4.8k) = %v, want a few percent", p)
	}
	if p := t128.Probability(); p < 0.3 || p > 1 {
		t.Errorf("p(128) = %v, want large", p)
	}
	// Statistical check: triggers per ACT ≈ p.
	hits := 0
	n := 200_000
	for i := 0; i < n; i++ {
		if len(t4800.OnActivate(0, 100, int64(i), false)) > 0 {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.8*t4800.Probability() || got > 1.2*t4800.Probability() {
		t.Errorf("observed trigger rate %v, want ≈%v", got, t4800.Probability())
	}
}

func TestPARARefreshesAdjacentRows(t *testing.T) {
	m, err := NewPARA(testParams(64), 833)
	if err != nil {
		t.Fatal(err)
	}
	m.prob = 1 // force triggers
	for i := 0; i < 100; i++ {
		vs := m.OnActivate(0, 500, int64(i), false)
		if len(vs) != 1 || (vs[0] != 499 && vs[0] != 501) {
			t.Fatalf("victims = %v, want one of 499/501", vs)
		}
	}
	m.WithFanout(2)
	if vs := m.OnActivate(0, 500, 0, false); len(vs) != 2 {
		t.Fatalf("fanout-2 victims = %v", vs)
	}
	// Edge rows clamp.
	if vs := m.OnActivate(0, 0, 0, false); len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("edge victims = %v", vs)
	}
}

func TestTWiCeRefreshesAtThreshold(t *testing.T) {
	p := testParams(32_000)
	m, err := NewTWiCe(p, false)
	if err != nil {
		t.Fatal(err)
	}
	// tRH = HCfirst/4 hammers; each single-sided ACT adds 0.5.
	acts := int(m.TRH()*2) - 1
	for i := 0; i < acts; i++ {
		if got := m.OnActivate(3, 100, int64(i), false); len(got) != 0 {
			t.Fatalf("premature refresh after %d ACTs: %v", i, got)
		}
	}
	if m.TableEntries() == 0 {
		t.Error("table empty mid-attack")
	}
	got := m.OnActivate(3, 100, int64(acts), false)
	want := false
	for _, v := range got {
		if v == 99 || v == 101 {
			want = true
		}
	}
	if !want {
		t.Fatalf("no victim refresh at threshold: %v", got)
	}
}

func TestTWiCePruningDropsColdRows(t *testing.T) {
	m, err := NewTWiCe(testParams(64_000), false)
	if err != nil {
		t.Fatal(err)
	}
	m.OnActivate(0, 10, 1, false) // rows 9 and 11 enter with 0.5 acts
	if m.TableEntries() != 2 {
		t.Fatalf("entries = %d, want 2", m.TableEntries())
	}
	// One pruning pass: act rate 0.5 per lifetime 1 is far below
	// pruneTh = tRH/8192 ≈ 1.95, so both entries are dropped.
	m.OnAutoRefresh(0, 5000, 2, 100)
	if m.TableEntries() != 0 {
		t.Fatalf("entries after prune = %d, want 0", m.TableEntries())
	}
}

func TestTWiCeViability(t *testing.T) {
	real32k, _ := NewTWiCe(testParams(32_000), false)
	if !real32k.Viable() {
		t.Error("TWiCe at 32k must be viable")
	}
	real16k, _ := NewTWiCe(testParams(16_000), false)
	if real16k.Viable() {
		t.Error("TWiCe at 16k must not be viable")
	}
	ideal16k, _ := NewTWiCe(testParams(16_000), true)
	if !ideal16k.Viable() {
		t.Error("TWiCe-ideal must always be viable")
	}
	if ideal16k.Name() != "TWiCe-ideal" || real16k.Name() != "TWiCe" {
		t.Error("names wrong")
	}
}

func TestIdealTriggersExactlyBeforeHCFirst(t *testing.T) {
	m, err := NewIdeal(testParams(1_000))
	if err != nil {
		t.Fatal(err)
	}
	// Alternate the two aggressors like a double-sided attack; the victim
	// accumulates 0.5 per ACT and must be refreshed just before 999.
	victim := 200
	total := 0
	var firstTrigger int
	for i := 0; i < 4000; i++ {
		agg := victim - 1
		if i%2 == 1 {
			agg = victim + 1
		}
		for _, v := range m.OnActivate(0, agg, int64(i), false) {
			if v == victim {
				total++
				if total == 1 {
					firstTrigger = i
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("ideal mechanism never refreshed the victim")
	}
	// 999 hammers ≈ 1998 ACTs.
	if firstTrigger < 1995 || firstTrigger > 2000 {
		t.Errorf("first refresh at ACT %d, want ≈1997", firstTrigger)
	}
}

func TestIdealActivationResetsOwnCounter(t *testing.T) {
	m, err := NewIdeal(testParams(100))
	if err != nil {
		t.Fatal(err)
	}
	// Hammer row 50's neighbour 49 a lot, but activate 50 itself midway:
	// the accumulated damage must reset.
	for i := 0; i < 150; i++ {
		m.OnActivate(0, 49, int64(i), false)
	}
	m.OnActivate(0, 50, 150, false) // victim itself activated
	triggers := 0
	for i := 0; i < 90; i++ {
		for _, v := range m.OnActivate(0, 49, int64(151+i), false) {
			if v == 50 {
				triggers++
			}
		}
	}
	if triggers != 0 {
		t.Errorf("counter did not reset on own activation: %d triggers", triggers)
	}
}

func TestIdealAutoRefreshResets(t *testing.T) {
	m, err := NewIdeal(testParams(100))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 190; i++ {
		m.OnActivate(0, 49, int64(i), false) // row 50 at 95 hammers
	}
	m.OnAutoRefresh(0, 0, 16384, 200) // full-bank rotation reset
	for i := 0; i < 8; i++ {
		if vs := m.OnActivate(0, 49, int64(201+i), false); len(vs) != 0 {
			t.Fatalf("refresh did not reset counters: %v", vs)
		}
	}
}

func TestProHITTracksAndRefreshesHotRows(t *testing.T) {
	m, err := NewProHIT(testParams(2_000))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Viable() {
		t.Error("ProHIT at 2000 must be viable")
	}
	// Hammer row 100 heavily: victims 99/101 should climb into the hot
	// table; a REF must then refresh one of them.
	refreshed := map[int]bool{}
	for i := 0; i < 4000; i++ {
		m.OnActivate(0, 100, int64(i), false)
		if i%500 == 499 {
			for _, v := range m.OnAutoRefresh(0, 0, 2, int64(i)) {
				refreshed[v] = true
			}
		}
	}
	if !refreshed[99] && !refreshed[101] {
		t.Errorf("hot victims never refreshed: %v", refreshed)
	}
	off, _ := NewProHIT(testParams(4_800))
	if off.Viable() {
		t.Error("ProHIT away from 2000 must not be viable")
	}
}

func TestClampNeighborsEdgeRows(t *testing.T) {
	const rows = 100
	cases := []struct {
		row  int
		want []int
	}{
		{0, []int{1}},         // bottom edge: no lower neighbor
		{rows - 1, []int{98}}, // top edge: no upper neighbor
		{1, []int{0, 2}},      // next to the edge: both exist
		{50, []int{49, 51}},   // interior
		{rows - 2, []int{97, 99}},
	}
	for _, c := range cases {
		got := clampNeighbors(c.row, rows)
		if len(got) != len(c.want) {
			t.Errorf("clampNeighbors(%d) = %v, want %v", c.row, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("clampNeighbors(%d) = %v, want %v", c.row, got, c.want)
				break
			}
		}
	}
	// A one-row bank has no neighbors at all.
	if got := clampNeighbors(0, 1); len(got) != 0 {
		t.Errorf("clampNeighbors(0, 1) = %v, want empty", got)
	}
}

func TestViabilityNotes(t *testing.T) {
	p := testParams(32_000)
	para, _ := NewPARA(p, 833)
	incr, _ := NewIncreasedRefresh(p)
	incrLow, _ := NewIncreasedRefresh(testParams(2_000))
	twice, _ := NewTWiCe(p, false)
	twiceLow, _ := NewTWiCe(testParams(2_000), false)
	twiceIdeal, _ := NewTWiCe(testParams(2_000), true)
	prohit, _ := NewProHIT(testParams(2_000))
	prohitOff, _ := NewProHIT(p)
	mrloc, _ := NewMRLoc(testParams(2_000))
	ideal, _ := NewIdeal(p)
	bh, _ := NewBlockHammer(p)

	cases := []struct {
		name   string
		v      Viability
		viable bool
	}{
		{"PARA", para, true},
		{"IncreasedRefresh@32k", incr, true},
		{"IncreasedRefresh@2k", incrLow, false},
		{"TWiCe@32k", twice, true},
		{"TWiCe@2k", twiceLow, false},
		{"TWiCe-ideal@2k", twiceIdeal, true},
		{"ProHIT@2k", prohit, true},
		{"ProHIT@32k", prohitOff, false},
		{"MRLoc@2k", mrloc, true},
		{"Ideal", ideal, true},
		{"BlockHammer", bh, true},
	}
	for _, c := range cases {
		if c.v.Viable() != c.viable {
			t.Errorf("%s: Viable() = %v, want %v", c.name, c.v.Viable(), c.viable)
		}
		if c.v.ViabilityNote() == "" {
			t.Errorf("%s: empty viability note", c.name)
		}
	}
}

func TestBlockHammerBlacklistsAndThrottles(t *testing.T) {
	m, err := NewBlockHammer(testParams(2_000))
	if err != nil {
		t.Fatal(err)
	}
	if m.RefreshMultiplier() != 1 {
		t.Error("BlockHammer must not change the refresh rate")
	}
	// Below the blacklist threshold nothing is throttled, and no victim
	// refreshes are ever requested.
	burst := int(m.NBL()) - 1
	for i := 0; i < burst; i++ {
		if !m.ActAllowed(0, 0, 700, int64(i)) {
			t.Fatalf("throttled after only %d ACTs (NBL=%.0f)", i, m.NBL())
		}
		if got := m.OnActivate(0, 700, int64(i), false); got != nil {
			t.Fatalf("BlockHammer refreshed victims %v", got)
		}
	}
	// Past the threshold the row must wait out the spacing interval.
	m.OnActivate(0, 700, int64(burst), false)
	if m.ActAllowed(0, 0, 700, int64(burst)+1) {
		t.Error("blacklisted row allowed to activate immediately")
	}
	if !m.ActAllowed(0, 0, 700, int64(burst)+m.MinInterval()+1) {
		t.Error("blacklisted row still blocked after the spacing interval")
	}
	if m.ThrottleEvents() == 0 {
		t.Error("no throttle events counted")
	}
	// Other rows are unaffected.
	if !m.ActAllowed(0, 0, 5_000, int64(burst)+1) || !m.ActAllowed(0, 3, 700, int64(burst)+1) {
		t.Error("throttling leaked to unrelated rows")
	}
}

func TestBlockHammerBudgetBoundsWindowACTs(t *testing.T) {
	p := testParams(2_000)
	m, err := NewBlockHammer(p)
	if err != nil {
		t.Fatal(err)
	}
	// Drive one row as fast as the throttler allows across a full refresh
	// window; the admitted ACT count must stay below HCfirst (so a victim
	// flanked by two such aggressors accumulates < HCfirst hammers).
	acts := 0
	trc := p.TRC
	for cycle := int64(0); cycle < p.TREFW; cycle += trc {
		if m.ActAllowed(0, 0, 123, cycle) {
			m.OnActivate(0, 123, cycle, false)
			acts++
		}
	}
	if acts >= p.HCFirst {
		t.Errorf("throttler admitted %d ACTs in one window, budget is < %d", acts, p.HCFirst)
	}
	if acts < int(m.NBL()) {
		t.Errorf("throttler admitted only %d ACTs; burst of %.0f should pass", acts, m.NBL())
	}
}

func TestBlockHammerEpochRotationForgivesOldActivity(t *testing.T) {
	p := testParams(2_000)
	m, err := NewBlockHammer(p)
	if err != nil {
		t.Fatal(err)
	}
	nbl := int(m.NBL())
	for i := 0; i < nbl+10; i++ {
		m.OnActivate(0, 42, int64(i), false)
	}
	if m.ActAllowed(0, 0, 42, int64(nbl)+11) {
		t.Fatal("row not blacklisted during the epoch")
	}
	// Two epoch lengths later both live filters have rotated past the
	// burst: the row starts fresh.
	later := p.TREFW + 10
	if !m.ActAllowed(0, 0, 42, later) {
		t.Error("blacklist survived full filter rotation")
	}
}

func TestBlockHammerPerRequesterAdmission(t *testing.T) {
	p := testParams(2_000)
	m, err := NewBlockHammer(p)
	if err != nil {
		t.Fatal(err)
	}
	// Requester 0 hammers one row the way the controller reports it: the
	// per-source attribution hook fires for every issued ACT, then the
	// mechanism observes the ACT itself.
	hammer := int(2.5 * m.NBL())
	for i := 0; i < hammer; i++ {
		m.OnRequesterACT(0, 0, 700, int64(i))
		m.OnActivate(0, 700, int64(i), false)
	}
	cycle := int64(hammer)
	if rhli := m.RHLI(0); rhli < 1 {
		t.Fatalf("hammering requester's RHLI = %.2f after %d hot-row ACTs, want ≥1", rhli, hammer)
	}
	if rhli := m.RHLI(1); rhli != 0 {
		t.Errorf("idle requester's RHLI = %.2f, want 0", rhli)
	}
	// The hammerer is rejected at admission even with an empty queue; a
	// benign requester touching the same blacklisted row is admitted.
	if m.AdmitRequest(0, 0, 700, 0, cycle) {
		t.Error("hammering requester admitted to its blacklisted row")
	}
	if !m.AdmitRequest(1, 0, 700, 0.9, cycle) {
		t.Error("benign requester rejected from a blacklisted row (per-requester policy must not take collateral)")
	}
	// Non-blacklisted rows are never admission-throttled, hammerer or not.
	if !m.AdmitRequest(0, 0, 5_000, 0.9, cycle) {
		t.Error("hammering requester rejected from a cold row")
	}
	// The row-level safety gate stays requester-blind: right after an ACT
	// the blacklisted row is inside its spacing window for everyone.
	m.OnActivate(0, 700, cycle, false)
	if m.ActAllowed(0, 0, 700, cycle+1) || m.ActAllowed(1, 0, 700, cycle+1) {
		t.Error("spacing window leaked through for some requester")
	}

	// The blanket variant rejects anyone once the queue is half full.
	b, err := NewBlockHammerBlanket(p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() == m.Name() {
		t.Error("blanket variant shares the per-requester name")
	}
	for i := 0; i < int(b.NBL())+1; i++ {
		b.OnActivate(0, 700, int64(i), false)
	}
	bc := int64(b.NBL()) + 1
	if b.AdmitRequest(1, 0, 700, 0.9, bc) {
		t.Error("blanket policy admitted a blacklisted-row read on a loaded queue")
	}
	if !b.AdmitRequest(1, 0, 700, 0.3, bc) {
		t.Error("blanket policy rejected below the half-full watermark")
	}
}

func TestBlockHammerProportionalDelay(t *testing.T) {
	p := testParams(2_000)
	m, err := NewBlockHammer(p)
	if err != nil {
		t.Fatal(err)
	}
	// Drive requester 0 to a high RHLI and requester 2 to a borderline
	// one (hot-row ACTs only after the ramp threshold count).
	hammer := int(3 * m.NBL())
	for i := 0; i < hammer; i++ {
		m.OnRequesterACT(0, 0, 700, int64(i))
		m.OnActivate(0, 700, int64(i), false)
	}
	// A few hot ACTs put requester 2 just above zero RHLI.
	for i := 0; i < 3; i++ {
		m.OnRequesterACT(2, 0, 700, int64(hammer+i))
	}
	cycle := int64(hammer + 3)
	heavy, light := m.RHLI(0), m.RHLI(2)
	if heavy < 1 {
		t.Fatalf("setup: hammering RHLI = %.2f, want ≥1", heavy)
	}
	if light <= 0 || light >= 1 {
		t.Fatalf("setup: borderline RHLI = %.2f, want in (0,1)", light)
	}

	// Proportional policy: both are rejected at first touch of the
	// blacklisted row, but the borderline source's delay window closes
	// sooner — strictly before the hammerer's.
	if m.AdmitRequest(0, 0, 700, 0, cycle) {
		t.Fatal("hammerer admitted without serving its delay")
	}
	if m.AdmitRequest(2, 0, 700, 0, cycle) {
		t.Fatal("borderline source admitted without serving its delay")
	}
	lightDelay := int64(light * float64(m.MinInterval()))
	heavyDelay := int64(heavy * float64(m.MinInterval()))
	if lightDelay >= heavyDelay {
		t.Fatalf("delays not proportional: light %d vs heavy %d", lightDelay, heavyDelay)
	}
	if !m.AdmitRequest(2, 0, 700, 0, cycle+lightDelay) {
		t.Error("borderline source still rejected after its proportional delay")
	}
	if m.AdmitRequest(0, 0, 700, 0, cycle+lightDelay) {
		t.Error("hammerer admitted after only the borderline delay")
	}
	if !m.AdmitRequest(0, 0, 700, 0, cycle+heavyDelay) {
		t.Error("hammerer still rejected after its full proportional delay")
	}
	// A zero-RHLI source is never delayed.
	if !m.AdmitRequest(1, 0, 700, 0.9, cycle) {
		t.Error("zero-RHLI source rejected (proportional policy must not take collateral)")
	}

	// The binary variant rejects the hammerer outright — no delay window
	// ever re-admits it while its RHLI stays ≥ 1.
	b, err := NewBlockHammerBinary(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hammer; i++ {
		b.OnRequesterACT(0, 0, 700, int64(i))
		b.OnActivate(0, 700, int64(i), false)
	}
	if b.Name() != "BlockHammer-binary" {
		t.Errorf("binary variant name = %q", b.Name())
	}
	bc := int64(hammer)
	for _, dt := range []int64{0, lightDelay, heavyDelay, 2 * heavyDelay} {
		if b.AdmitRequest(0, 0, 700, 0, bc+dt) {
			t.Fatalf("binary policy admitted a RHLI≥1 hammerer at +%d cycles", dt)
		}
	}
	if !b.AdmitRequest(1, 0, 700, 0.9, bc) {
		t.Error("binary policy rejected a zero-RHLI source")
	}
}

func TestBlockHammerRHLISurvivesEpochRotation(t *testing.T) {
	p := testParams(2_000)
	m, err := NewBlockHammer(p)
	if err != nil {
		t.Fatal(err)
	}
	hammer := int(3 * m.NBL())
	for i := 0; i < hammer; i++ {
		m.OnRequesterACT(0, 0, 700, int64(i))
		m.OnActivate(0, 700, int64(i), false)
	}
	before := m.RHLI(0)
	if before < 2 {
		t.Fatalf("setup: RHLI = %.2f, want ≥2", before)
	}
	// One epoch rotation: the previous epoch's filter still blacklists the
	// row, so the hammerer's RHLI must decay (halve), not vanish — or the
	// attacker would be re-admitted to a still-blacklisted row while its
	// index re-ramps at the spacing-bounded trickle.
	rotated := p.TREFW/2 + 10
	if got := m.RHLI(0); got != before {
		t.Fatalf("RHLI changed without rotation: %.2f vs %.2f", got, before)
	}
	if m.AdmitRequest(0, 0, 700, 0, rotated) {
		t.Error("hammerer re-admitted to its still-blacklisted row right after rotation")
	}
	after := m.RHLI(0)
	if after <= 0 || after >= before {
		t.Errorf("post-rotation RHLI = %.2f, want halved from %.2f", after, before)
	}
}

func TestMRLocRefreshesLocalVictims(t *testing.T) {
	m, err := NewMRLoc(testParams(2_000))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Viable() {
		t.Error("MRLoc at 2000 must be viable")
	}
	refreshes := 0
	for i := 0; i < 20_000; i++ {
		refreshes += len(m.OnActivate(0, 100, int64(i), false))
	}
	if refreshes == 0 {
		t.Error("MRLoc never refreshed a repeatedly hammered victim")
	}
	// A scan over distinct rows must trigger (almost) nothing.
	cold, _ := NewMRLoc(testParams(2_000))
	coldRefreshes := 0
	for i := 0; i < 20_000; i++ {
		coldRefreshes += len(cold.OnActivate(0, (i*37)%16000, int64(i), false))
	}
	if coldRefreshes > refreshes/4 {
		t.Errorf("MRLoc refreshed %d victims on a streaming scan (attack: %d)", coldRefreshes, refreshes)
	}
}
