package mitigation

import (
	"fmt"

	"repro/internal/stats"
)

// TRR models the in-DRAM Target Row Refresh samplers that shipped with
// DDR4/LPDDR4 parts once HCfirst dropped below what blanket refresh could
// cover: a small per-bank table of suspected aggressor rows, fed by
// probabilistically sampling the activation stream, whose over-threshold
// entries get their neighbours refreshed piggybacked on the next REF
// command.
//
// The model keeps the two structural weaknesses the RowHammer literature
// documents for real samplers, because they are the point of the
// trr-dodge study:
//
//   - The sampler has a finite observation budget. It watches only the
//     WindowFrac tail of each refresh interval (the activations "in
//     proximity of" the upcoming REF), and samples those at SampleRate.
//     An attacker who paces its bursts to the head of each interval
//     (attack.Spec.DutyCycle/Phase) is never observed.
//   - The table is tiny. When it is full, a new sample evicts the
//     lowest-count entry — so TRRespass-style many-sided rotations can
//     thrash the table faster than any entry can reach the threshold.
//
// Aggressor counters are cleared every tREFW: the auto-refresh rotation
// has restored every row by then, so older activity no longer threatens.
// TRR issues no refreshes beyond the piggybacked victim rows and never
// changes the REF pace.
type TRR struct {
	p   Params
	cfg TRRConfig

	// tables holds per-bank sampler entries, insertion order preserved.
	tables [][]trrEntry
	rng    *stats.RNG

	// epochStart is the start cycle of the current tREFW clearing epoch.
	epochStart int64

	samples         int64
	victimRefreshes int64
}

// trrEntry is one sampler table slot: a suspected aggressor row, how
// often the sampler has caught it activating, and when it was last
// caught (the eviction tie-break).
type trrEntry struct {
	row   int
	count int
	last  int64
}

// TRRConfig parameterizes the sampler. The zero value selects the
// defaults; out-of-domain values are construction errors.
type TRRConfig struct {
	// SampleRate is the probability an in-window activation is sampled
	// into the table, in (0,1] (default 0.5).
	SampleRate float64
	// TableSize is the number of tracked aggressor entries per bank
	// (default 4 — the "small sampler table" that makes wide rotations
	// effective).
	TableSize int
	// Threshold is the sampled count at which a REF refreshes the entry's
	// neighbours (0 derives it from the timing so a full-rate double-sided
	// aggressor crosses it within one observation window).
	Threshold int
	// WindowFrac is the fraction of each refresh interval, immediately
	// before the REF, in which the sampler observes activations, in (0,1]
	// (default 0.25).
	WindowFrac float64
}

// TRRDefaults are the default sampler parameters.
var TRRDefaults = TRRConfig{SampleRate: 0.5, TableSize: 4, WindowFrac: 0.25}

// NewTRR builds the sampler with the default configuration.
func NewTRR(p Params) (*TRR, error) { return NewTRRWithConfig(p, TRRConfig{}) }

// NewTRRWithConfig builds the sampler with explicit parameters; zero
// fields keep the defaults.
func NewTRRWithConfig(p Params, cfg TRRConfig) (*TRR, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = TRRDefaults.SampleRate
	}
	if cfg.SampleRate < 0 || cfg.SampleRate > 1 {
		return nil, fmt.Errorf("mitigation: TRR sample rate %g outside (0,1]", cfg.SampleRate)
	}
	if cfg.TableSize == 0 {
		cfg.TableSize = TRRDefaults.TableSize
	}
	if cfg.TableSize < 1 {
		return nil, fmt.Errorf("mitigation: TRR table size %d must be positive", cfg.TableSize)
	}
	if cfg.WindowFrac == 0 {
		cfg.WindowFrac = TRRDefaults.WindowFrac
	}
	if cfg.WindowFrac < 0 || cfg.WindowFrac > 1 {
		return nil, fmt.Errorf("mitigation: TRR window fraction %g outside (0,1]", cfg.WindowFrac)
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("mitigation: TRR threshold %d must not be negative", cfg.Threshold)
	}
	if cfg.Threshold == 0 {
		// A full-rate aggressor activates about once per tRC; the sampler
		// sees WindowFrac of those and keeps SampleRate of what it sees.
		// A quarter of that expected per-window count catches continuous
		// hammering on the first REF while staying above benign noise.
		perWindow := cfg.SampleRate * cfg.WindowFrac * float64(p.TREFI) / float64(p.TRC)
		cfg.Threshold = int(perWindow / 4)
		if cfg.Threshold < 2 {
			cfg.Threshold = 2
		}
	}
	return &TRR{
		p:      p,
		cfg:    cfg,
		tables: make([][]trrEntry, p.Banks),
		rng:    stats.NewRNG(p.Seed ^ 0x7225a3),
	}, nil
}

func (m *TRR) Name() string { return "TRR" }

// Config returns the resolved sampler parameters (defaults filled,
// threshold derived).
func (m *TRR) Config() TRRConfig { return m.cfg }

// rotate clears every bank's counters at tREFW boundaries: the rotation
// has refreshed all rows by then, so accumulated suspicion is stale.
func (m *TRR) rotate(cycle int64) {
	for cycle-m.epochStart >= m.p.TREFW {
		m.epochStart += m.p.TREFW
		for b := range m.tables {
			m.tables[b] = m.tables[b][:0]
		}
	}
}

// inWindow reports whether a cycle falls inside the sampler's observation
// window: the WindowFrac tail of the refresh interval, just before the
// next REF is due.
func (m *TRR) inWindow(cycle int64) bool {
	pos := cycle % m.p.TREFI
	return float64(pos) >= float64(m.p.TREFI)*(1-m.cfg.WindowFrac)
}

// OnActivate samples in-window activations into the bank's table.
// Mitigation-triggered activations are the sampler's own victim refreshes;
// it knows them and does not sample itself.
func (m *TRR) OnActivate(bank, row int, cycle int64, fromMitigation bool) []int {
	m.rotate(cycle)
	if fromMitigation || bank < 0 || bank >= m.p.Banks {
		return nil
	}
	if !m.inWindow(cycle) || !m.rng.Bernoulli(m.cfg.SampleRate) {
		return nil
	}
	m.samples++
	tbl := m.tables[bank]
	for i := range tbl {
		if tbl[i].row == row {
			tbl[i].count++
			tbl[i].last = cycle
			return nil
		}
	}
	if len(tbl) < m.cfg.TableSize {
		m.tables[bank] = append(tbl, trrEntry{row: row, count: 1, last: cycle})
		return nil
	}
	// Full table: the new sample replaces the lowest-count entry, ties
	// broken by least-recently-sampled. This is the classic sampler
	// eviction a wide aggressor rotation thrashes: every rotation member
	// arrives at count 1 and evicts another count-1 member before any
	// entry can accumulate.
	min := 0
	for i := 1; i < len(tbl); i++ {
		if tbl[i].count < tbl[min].count ||
			(tbl[i].count == tbl[min].count && tbl[i].last < tbl[min].last) {
			min = i
		}
	}
	tbl[min] = trrEntry{row: row, count: 1, last: cycle}
	return nil
}

// OnAutoRefresh piggybacks victim refreshes on the REF: every entry of
// the refreshed bank at or above the threshold gets its neighbours
// refreshed and leaves the table.
func (m *TRR) OnAutoRefresh(bank, rowStart, rowCount int, cycle int64) []int {
	m.rotate(cycle)
	if bank < 0 || bank >= m.p.Banks {
		return nil
	}
	var out []int
	kept := m.tables[bank][:0]
	for _, e := range m.tables[bank] {
		if e.count >= m.cfg.Threshold {
			ns := clampNeighbors(e.row, m.p.Rows)
			out = append(out, ns...)
			m.victimRefreshes += int64(len(ns))
			continue
		}
		kept = append(kept, e)
	}
	m.tables[bank] = kept
	return out
}

func (m *TRR) RefreshMultiplier() float64 { return 1 }

// Samples returns how many activations the sampler has observed.
func (m *TRR) Samples() int64 { return m.samples }

// VictimRefreshes returns how many neighbour refreshes REFs have issued.
func (m *TRR) VictimRefreshes() int64 { return m.victimRefreshes }

// Viable: samplers are what vendors actually deployed at low HCfirst, so
// the mechanism is "viable" at any point — the trr-dodge study exists to
// show that viable is not the same as secure.
func (m *TRR) Viable() bool { return true }

func (m *TRR) ViabilityNote() string {
	return "deployed in-DRAM sampler; dodgeable by paced (duty-cycle/phase) and table-thrashing attacks"
}
