package charact

import (
	"sort"

	"repro/internal/faultmodel"
)

// CoverageResult reports, for one chip, what fraction of all observable
// flips each data pattern identifies (Figure 4) and the flip count each
// pattern produced (used for Table 3's worst-case pattern).
type CoverageResult struct {
	HC         int
	Iterations int
	Total      int // size of the union of flips over all patterns
	Coverage   map[faultmodel.Pattern]float64
	FlipCount  map[faultmodel.Pattern]int
}

// WorstPattern returns the pattern with the highest flip count, i.e. the
// chip's worst-case data pattern, and false if no pattern flipped anything.
func (r *CoverageResult) WorstPattern() (faultmodel.Pattern, bool) {
	best, found := faultmodel.Pattern(0), false
	for _, p := range faultmodel.FigurePatterns() {
		if !found || r.FlipCount[p] > r.FlipCount[best] {
			if r.FlipCount[p] > 0 {
				best, found = p, true
			}
		}
	}
	return best, found
}

// MeasureCoverage runs the Section 5.2 data-pattern study on one chip:
// for each of the six Figure 4 patterns, iterations full-chip sweeps at
// the given HC; flips are aggregated per pattern and against the union.
func (t *Tester) MeasureCoverage(hc, iterations, stride int) (*CoverageResult, error) {
	if iterations < 1 {
		iterations = 1
	}
	res := &CoverageResult{
		HC:         hc,
		Iterations: iterations,
		Coverage:   make(map[faultmodel.Pattern]float64),
		FlipCount:  make(map[faultmodel.Pattern]int),
	}
	union := make(map[faultmodel.Flip]bool)
	perPattern := make(map[faultmodel.Pattern]map[faultmodel.Flip]bool)
	for _, p := range faultmodel.FigurePatterns() {
		t.WritePattern(p)
		set := make(map[faultmodel.Flip]bool)
		for it := 0; it < iterations; it++ {
			sw, err := t.Sweep(hc, stride)
			if err != nil {
				return nil, err
			}
			//rhlint:allow mapiter(builds membership sets; only len() is read)
			for f := range sw.Flips {
				set[f] = true
				union[f] = true
			}
		}
		perPattern[p] = set
	}
	res.Total = len(union)
	//rhlint:allow mapiter(independent per-key writes into result maps)
	for p, set := range perPattern {
		res.FlipCount[p] = len(set)
		if res.Total > 0 {
			res.Coverage[p] = float64(len(set)) / float64(res.Total)
		}
	}
	return res, nil
}

// SpatialProfile is Figure 6 for one chip: the fraction of observed flips
// at each row offset from the victim, measured at a hammer count chosen
// to hit the target flip rate.
type SpatialProfile struct {
	HC       int
	Fraction map[int]float64 // victim-relative row offset → fraction
	Total    int
}

// HCForRate estimates the hammer count at which a full sweep yields
// approximately the target bit flip rate, by laddering sweeps. The paper
// normalizes Figures 6 and 7 to a rate of 1e-6 this way (Section 5.4).
func (t *Tester) HCForRate(target float64, stride int) (int, error) {
	hc := 10_000
	maxHC := t.MaxHC
	if maxHC > 150_000 {
		maxHC = 150_000
	}
	var last *SweepResult
	for {
		sw, err := t.Sweep(hc, stride)
		if err != nil {
			return 0, err
		}
		last = sw
		if sw.Rate() >= target || hc >= maxHC {
			break
		}
		hc = int(float64(hc) * 1.5)
		if hc > maxHC {
			hc = maxHC
		}
	}
	if last.Rate() > 4*target && hc > 10_000 {
		// Overshot: back off one notch for a closer match.
		return int(float64(hc) / 1.5), nil
	}
	return hc, nil
}

// MeasureSpatial sweeps the chip at the given HC and attributes flips to
// their victim-relative row offset (Figure 6).
func (t *Tester) MeasureSpatial(hc, stride int) (*SpatialProfile, error) {
	sw, err := t.Sweep(hc, stride)
	if err != nil {
		return nil, err
	}
	p := &SpatialProfile{HC: hc, Fraction: make(map[int]float64)}
	//rhlint:allow mapiter(commutative integer sum)
	for _, n := range sw.FlipsByDist {
		p.Total += n
	}
	if p.Total == 0 {
		return p, nil
	}
	//rhlint:allow mapiter(independent per-key writes into result map)
	for off, n := range sw.FlipsByDist {
		p.Fraction[off] = float64(n) / float64(p.Total)
	}
	return p, nil
}

// WordDensity is Figure 7 for one chip: among 64-bit words containing at
// least one flip, the fraction containing exactly k flips.
type WordDensity struct {
	HC       int
	Fraction [6]float64 // index k = words with exactly k flips (k=1..5); [0] unused
	Words    int
}

// MeasureWordDensity sweeps at the given HC and counts flips per 64-bit
// word.
func (t *Tester) MeasureWordDensity(hc, stride int) (*WordDensity, error) {
	sw, err := t.Sweep(hc, stride)
	if err != nil {
		return nil, err
	}
	type wordKey struct{ bank, row, word int }
	words := make(map[wordKey]int)
	//rhlint:allow mapiter(commutative counting into a map)
	for f := range sw.Flips {
		words[wordKey{f.Bank, f.Row, f.Bit / 64}]++
	}
	d := &WordDensity{HC: hc, Words: len(words)}
	if len(words) == 0 {
		return d, nil
	}
	//rhlint:allow mapiter(every bucket sums identical addends; order cannot change rounding)
	for _, n := range words {
		if n > 5 {
			n = 5
		}
		d.Fraction[n] += 1 / float64(len(words))
	}
	return d, nil
}

// ECCWordAnalysis is Figure 9 for one chip: the minimum hammer count at
// which some 64-bit word contains 1, 2 and 3 flips (HCfirst, HCsecond,
// HCthird at ECC-word granularity) and the resulting multipliers, i.e.
// the protection factor of single- and double-error-correcting codes.
type ECCWordAnalysis struct {
	HC    [4]float64 // index k: min HC for a word with ≥k flips; [0] unused
	Found [4]bool
}

// Multiplier returns HC[k+1]/HC[k] (the Figure 9 red boxes) when both
// are defined.
func (a *ECCWordAnalysis) Multiplier(k int) (float64, bool) {
	if k < 1 || k > 2 || !a.Found[k] || !a.Found[k+1] || a.HC[k] == 0 {
		return 0, false
	}
	return a.HC[k+1] / a.HC[k], true
}

// AnalyzeECCWords computes the per-word hammer counts analytically from
// the chip's vulnerable-cell thresholds under its current pattern: the
// k-th flip of a word appears when HC reaches the word's k-th smallest
// effective threshold. (A sweep-based measurement converges to the same
// values but needs thousands of sweeps; see DESIGN.md §5.)
func (t *Tester) AnalyzeECCWords() *ECCWordAnalysis {
	a := &ECCWordAnalysis{}
	for k := 1; k <= 3; k++ {
		ts := t.chip.WordThresholds(t.chip.Pattern(), k)
		if len(ts) > 0 {
			a.HC[k] = ts[0]
			a.Found[k] = true
		}
	}
	return a
}

// MonotonicityResult is Table 5 for one chip: of all cells that flipped
// at least once across the HC sweep, the percentage whose empirical flip
// probability (out of Iterations trials) never decreases as HC grows.
type MonotonicityResult struct {
	HCs        []int
	Iterations int
	Cells      int
	Monotonic  int
}

// Percent returns the monotonic share in percent.
func (m *MonotonicityResult) Percent() float64 {
	if m.Cells == 0 {
		return 0
	}
	return 100 * float64(m.Monotonic) / float64(m.Cells)
}

// MeasureMonotonicity runs the Section 5.6 experiment: sweep HC over the
// given ladder, hammering every victim row iterations times per HC, and
// test each flipping cell's empirical flip-probability sequence for
// monotonic non-decrease.
func (t *Tester) MeasureMonotonicity(hcs []int, iterations, stride int) (*MonotonicityResult, error) {
	if len(hcs) == 0 {
		hcs = DefaultMonotonicityHCs()
	}
	sort.Ints(hcs)
	if iterations < 2 {
		iterations = 20
	}
	counts := make(map[faultmodel.Flip][]int)
	for hi, hc := range hcs {
		for it := 0; it < iterations; it++ {
			for _, v := range t.victims(stride) {
				flips, err := t.HammerDoubleSided(v, hc)
				if err != nil {
					return nil, err
				}
				for _, f := range flips {
					seq, ok := counts[f]
					if !ok {
						seq = make([]int, len(hcs))
						counts[f] = seq
					}
					seq[hi]++
				}
			}
		}
	}
	res := &MonotonicityResult{HCs: hcs, Iterations: iterations, Cells: len(counts)}
	//rhlint:allow mapiter(commutative count of monotonic sequences)
	for _, seq := range counts {
		mono := true
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				mono = false
				break
			}
		}
		if mono {
			res.Monotonic++
		}
	}
	return res, nil
}

// DefaultMonotonicityHCs is the paper's 25k–150k ladder with 5k steps,
// thinned to keep runtimes reasonable (every other step).
func DefaultMonotonicityHCs() []int {
	var hcs []int
	for hc := 25_000; hc <= 150_000; hc += 10_000 {
		hcs = append(hcs, hc)
	}
	return hcs
}

// RateCurve measures the Figure 5 series for one chip: flip rate at each
// hammer count of the ladder.
func (t *Tester) RateCurve(hcs []int, stride int) (map[int]float64, error) {
	out := make(map[int]float64, len(hcs))
	for _, hc := range hcs {
		sw, err := t.Sweep(hc, stride)
		if err != nil {
			return nil, err
		}
		out[hc] = sw.Rate()
	}
	return out, nil
}

// DefaultRateHCs is the Figure 5 hammer-count ladder (10k–150k,
// logarithmic).
func DefaultRateHCs() []int {
	var hcs []int
	hc := 10_000.0
	for hc <= 150_000 {
		hcs = append(hcs, int(hc))
		hc *= 1.6
	}
	if hcs[len(hcs)-1] != 150_000 {
		hcs = append(hcs, 150_000)
	}
	return hcs
}
