package charact

import "math"

// HCFirstOptions controls the first-flip search.
type HCFirstOptions struct {
	// MinHC and MaxHC bound the sweep; the paper uses 2k–150k
	// (Section 5.1). Zero values take those defaults (MaxHC additionally
	// clamped to the 32 ms bound).
	MinHC, MaxHC int
	// Stride samples victim rows during probes (1 = every row).
	Stride int
	// Precision stops the refinement when the bracket is within this
	// relative width (default 2%).
	Precision float64
	// Probes is how many sweep iterations each hammer count gets before
	// it is declared flip-free (default 2); flips near the threshold are
	// probabilistic, so a single probe is noisy.
	Probes int
}

func (o HCFirstOptions) normalized(t *Tester) HCFirstOptions {
	if o.MinHC <= 0 {
		o.MinHC = 2_000
	}
	if o.MaxHC <= 0 {
		o.MaxHC = 150_000
	}
	if o.MaxHC > t.MaxHC {
		o.MaxHC = t.MaxHC
	}
	if o.Stride < 1 {
		o.Stride = 1
	}
	if o.Precision <= 0 {
		o.Precision = 0.02
	}
	if o.Probes < 1 {
		o.Probes = 2
	}
	return o
}

// MeasureHCFirst finds the chip's HCfirst — the minimum hammer count that
// induces the first bit flip (Section 5.5) — under the currently written
// pattern. It ladders the hammer count geometrically until a flip appears
// and then bisects the bracket. found is false when the chip shows no
// flips within the sweep bound, i.e. the chip is not RowHammerable
// (Table 2).
func (t *Tester) MeasureHCFirst(opts HCFirstOptions) (hcFirst int, found bool, err error) {
	o := opts.normalized(t)

	probe := func(hc int) (bool, error) {
		for i := 0; i < o.Probes; i++ {
			any, err := t.AnyFlip(hc, o.Stride)
			if err != nil || any {
				return any, err
			}
		}
		return false, nil
	}

	// Geometric ladder: ×1.4 steps from MinHC to MaxHC.
	lo, hi := 0, -1
	hc := o.MinHC
	for {
		any, err := probe(hc)
		if err != nil {
			return 0, false, err
		}
		if any {
			hi = hc
			break
		}
		lo = hc
		if hc >= o.MaxHC {
			return 0, false, nil
		}
		hc = int(math.Ceil(float64(hc) * 1.4))
		if hc > o.MaxHC {
			hc = o.MaxHC
		}
	}
	if lo == 0 {
		lo = o.MinHC / 2 // first probe already flipped
	}

	// Bisect [lo, hi]: lo never flipped, hi did.
	for float64(hi-lo) > o.Precision*float64(hi) && hi-lo > 64 {
		mid := (lo + hi) / 2
		any, err := probe(mid)
		if err != nil {
			return 0, false, err
		}
		if any {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}
