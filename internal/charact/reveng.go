package charact

import "fmt"

// RemapKind classifies a chip's logical-to-physical row address mapping
// as inferred from hammering behaviour (Section 4.3).
type RemapKind int

const (
	// RemapIdentity: logical row N is physically adjacent to N±1.
	RemapIdentity RemapKind = iota
	// RemapPairedWordlines: logical rows 2k and 2k+1 share one physical
	// wordline, so row N's physical neighbours are N±2 (the Mfr B
	// LPDDR4-1x behaviour).
	RemapPairedWordlines
	// RemapUnknown: not enough flips to decide.
	RemapUnknown
)

func (k RemapKind) String() string {
	switch k {
	case RemapIdentity:
		return "identity"
	case RemapPairedWordlines:
		return "paired-wordlines"
	default:
		return "unknown"
	}
}

// ReverseEngineerRemap rediscovers the chip's internal row remapping the
// way the paper does: repeatedly access single rows and observe where the
// flips land. Hammering an even logical row on a paired-wordline chip
// yields no flips in the two consecutive rows sharing its wordline but a
// near-equal number in the four rows of the two adjacent wordlines.
func (t *Tester) ReverseEngineerRemap(attempts int) (RemapKind, error) {
	if attempts < 1 {
		attempts = 8
	}
	t.WritePattern(t.chip.Config().WorstPattern)
	// Single-sided hammering delivers half the effective hammers per ACT,
	// so use (nearly) the full 32 ms single-sided activation budget.
	hc := 9 * t.MaxHC / 5

	adjacent, skip2 := 0, 0
	rows := t.chip.Rows()
	for i := 0; i < attempts && adjacent+skip2 < 12; i++ {
		// Spread aggressors across the array, using even rows so the
		// paired-wordline signature (no flips at +1) is unambiguous.
		agg := (rows / (attempts + 1)) * (i + 1) &^ 1
		if agg < 4 || agg > rows-5 {
			continue
		}
		flips, err := t.HammerSingleSided(agg, hc)
		if err != nil {
			return RemapUnknown, err
		}
		for _, f := range flips {
			switch f.Row - agg {
			case -1, 1:
				adjacent++
			case -2, -3, 2, 3:
				skip2++
			}
		}
	}
	switch {
	case adjacent == 0 && skip2 == 0:
		return RemapUnknown, nil
	case adjacent >= skip2:
		return RemapIdentity, nil
	default:
		return RemapPairedWordlines, nil
	}
}

// AggressorOffset converts an inferred remap into the logical-row offset
// a double-sided test must use for its aggressors.
func (k RemapKind) AggressorOffset() (int, error) {
	switch k {
	case RemapIdentity:
		return 1, nil
	case RemapPairedWordlines:
		return 2, nil
	default:
		return 0, fmt.Errorf("charact: cannot derive aggressor offset for %v remap", k)
	}
}
