package charact

import (
	"testing"

	"repro/internal/chips"
	"repro/internal/dram"
	"repro/internal/faultmodel"
)

func testChip(t *testing.T, mutate func(*faultmodel.Config)) *faultmodel.Chip {
	t.Helper()
	cfg := faultmodel.Config{
		Name: "test", Type: dram.DDR4, Node: "new", Mfr: "A",
		Banks: 1, Rows: 256, RowBits: 1024,
		HCFirst: 10_000, Rate150k: 1e-4,
		WorstPattern: faultmodel.RowStripe0,
		Seed:         7,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := faultmodel.NewChip(cfg)
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	return c
}

func newTester(t *testing.T, c *faultmodel.Chip) *Tester {
	t.Helper()
	tt, err := NewTester(c, 0)
	if err != nil {
		t.Fatalf("NewTester: %v", err)
	}
	tt.WritePattern(c.Config().WorstPattern)
	return tt
}

func TestMeasureHCFirstFindsWeakestCell(t *testing.T) {
	c := testChip(t, nil)
	tt := newTester(t, c)
	hc, found, err := tt.MeasureHCFirst(HCFirstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("chip with HCFirst=10k reported not RowHammerable")
	}
	// Probabilistic flips put the measurement within ~±25% of the truth.
	truth := c.Config().HCFirst
	if float64(hc) < 0.7*truth || float64(hc) > 1.35*truth {
		t.Fatalf("measured HCfirst = %d, want within 30%% of %v", hc, truth)
	}
}

func TestMeasureHCFirstNotRowHammerable(t *testing.T) {
	c := testChip(t, func(cfg *faultmodel.Config) { cfg.HCFirst = 220_000 })
	tt := newTester(t, c)
	_, found, err := tt.MeasureHCFirst(HCFirstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("chip with HCFirst=220k reported RowHammerable within the 150k sweep")
	}
}

func TestHammerBounds(t *testing.T) {
	c := testChip(t, nil)
	tt := newTester(t, c)
	if _, err := tt.HammerDoubleSided(10, 0); err == nil {
		t.Error("zero hammer count accepted")
	}
	if _, err := tt.HammerDoubleSided(10, tt.MaxHC+1); err == nil {
		t.Error("hammer count beyond the 32 ms bound accepted")
	}
	if _, err := tt.HammerDoubleSided(0, 1000); err == nil {
		t.Error("edge row without two aggressors accepted")
	}
}

func TestSweepRateGrowsWithHC(t *testing.T) {
	c := testChip(t, func(cfg *faultmodel.Config) { cfg.Rate150k = 1e-3 })
	tt := newTester(t, c)
	low, err := tt.Sweep(20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := tt.Sweep(140_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if high.Rate() <= low.Rate() {
		t.Fatalf("rate at 140k (%g) not above rate at 20k (%g)", high.Rate(), low.Rate())
	}
}

func TestCoverageIdentifiesWorstPattern(t *testing.T) {
	c := testChip(t, func(cfg *faultmodel.Config) { cfg.Rate150k = 1e-3 })
	tt := newTester(t, c)
	cov, err := tt.MeasureCoverage(140_000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Total == 0 {
		t.Fatal("coverage experiment found no flips")
	}
	worst, ok := cov.WorstPattern()
	if !ok {
		t.Fatal("no worst pattern identified")
	}
	if worst != c.Config().WorstPattern {
		t.Errorf("worst pattern = %v, want %v (coverage map: %v)",
			worst, c.Config().WorstPattern, cov.FlipCount)
	}
	// No pattern may exceed full coverage; the union must dominate.
	for p, f := range cov.Coverage {
		if f < 0 || f > 1 {
			t.Errorf("coverage[%v] = %v out of [0,1]", p, f)
		}
	}
}

func TestSpatialProfileEvenOffsets(t *testing.T) {
	c := testChip(t, func(cfg *faultmodel.Config) {
		cfg.Rate150k = 1e-3
		cfg.W3 = 0.12
		cfg.W5 = 0.05
	})
	tt := newTester(t, c)
	sp, err := tt.MeasureSpatial(140_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Total == 0 {
		t.Fatal("no flips in spatial profile")
	}
	if sp.Fraction[0] < 0.5 {
		t.Errorf("victim-row fraction = %v, want dominant (≥0.5)", sp.Fraction[0])
	}
	for off, f := range sp.Fraction {
		if off%2 != 0 && f > 0 {
			t.Errorf("flips at odd offset %+d (fraction %v)", off, f)
		}
		if off == 1 || off == -1 {
			t.Errorf("flips in aggressor row at offset %+d", off)
		}
	}
}

func TestReverseEngineerIdentity(t *testing.T) {
	c := testChip(t, func(cfg *faultmodel.Config) { cfg.Rate150k = 1e-3 })
	tt := newTester(t, c)
	kind, err := tt.ReverseEngineerRemap(8)
	if err != nil {
		t.Fatal(err)
	}
	if kind != RemapIdentity {
		t.Fatalf("remap = %v, want identity", kind)
	}
	off, err := kind.AggressorOffset()
	if err != nil || off != 1 {
		t.Fatalf("aggressor offset = %d, %v; want 1, nil", off, err)
	}
}

func TestReverseEngineerPaired(t *testing.T) {
	c := testChip(t, func(cfg *faultmodel.Config) {
		cfg.Rate150k = 5e-3
		cfg.PairedWordlines = true
		cfg.Type = dram.LPDDR4
		cfg.OnDieECC = true
		cfg.HCFirst = 16_800
		cfg.ClusterP = 0.35
	})
	tt := newTester(t, c)
	kind, err := tt.ReverseEngineerRemap(24)
	if err != nil {
		t.Fatal(err)
	}
	if kind != RemapPairedWordlines {
		t.Fatalf("remap = %v, want paired-wordlines", kind)
	}
	off, err := kind.AggressorOffset()
	if err != nil || off != 2 {
		t.Fatalf("aggressor offset = %d, %v; want 2, nil", off, err)
	}
}

func TestMonotonicityECCVsRaw(t *testing.T) {
	if testing.Short() {
		t.Skip("monotonicity sweep is slow")
	}
	hcs := DefaultMonotonicityHCs()
	raw := testChip(t, func(cfg *faultmodel.Config) { cfg.Rate150k = 5e-4 })
	tr := newTester(t, raw)
	mRaw, err := tr.MeasureMonotonicity(hcs, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	eccChip := testChip(t, func(cfg *faultmodel.Config) {
		cfg.Rate150k = 3e-3 // dense: ECC-word interactions need many cells
		cfg.OnDieECC = true
		cfg.Type = dram.LPDDR4
		cfg.ClusterP = 0.45
	})
	te := newTester(t, eccChip)
	mECC, err := te.MeasureMonotonicity(hcs, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mRaw.Cells == 0 || mECC.Cells == 0 {
		t.Fatalf("vacuous monotonicity data: raw %d cells, ecc %d cells", mRaw.Cells, mECC.Cells)
	}
	if mRaw.Percent() < 85 {
		t.Errorf("raw chip monotonicity = %.1f%%, want ≥85%% (Table 5: >97%%)", mRaw.Percent())
	}
	// On-die ECC obscures per-cell probabilities (Table 5's ≈50% rows):
	// its monotonic share must not exceed the raw chip's.
	if mECC.Percent() > mRaw.Percent() {
		t.Errorf("on-die ECC monotonicity (%.1f%%) above raw (%.1f%%)",
			mECC.Percent(), mRaw.Percent())
	}
}

func TestHCForRateApproximatesTarget(t *testing.T) {
	c := testChip(t, func(cfg *faultmodel.Config) { cfg.Rate150k = 1e-3 })
	tt := newTester(t, c)
	hc, err := tt.HCForRate(1e-4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := tt.Sweep(hc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Rate() == 0 {
		t.Fatalf("HCForRate picked hc=%d with zero rate", hc)
	}
}

func TestPopulationChipMeasurement(t *testing.T) {
	// End-to-end: instantiate a population chip and verify its measured
	// HCfirst tracks the spec.
	pop := chips.NewPopulation(chips.DDR4Modules()[:1], chips.ScaleTiny, 1)
	if len(pop.Chips) == 0 {
		t.Fatal("empty population")
	}
	spec := pop.Chips[0]
	chip, err := pop.Instantiate(spec)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := NewTester(chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	tt.WritePattern(chip.Config().WorstPattern)
	hc, found, err := tt.MeasureHCFirst(HCFirstOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("chip %s (HCFirst %v) not RowHammerable", spec.Name, spec.HCFirst)
	}
	if f := float64(hc); f < 0.6*spec.HCFirst || f > 1.5*spec.HCFirst {
		t.Fatalf("measured %d, spec %v: out of tolerance", hc, spec.HCFirst)
	}
}
