// Package charact is the testing-infrastructure substitute: it drives
// faultmodel chips through the paper's characterization methodology
// (Section 4.3, Algorithm 1) — worst-case double-sided hammering with
// refresh disabled — and implements the per-chip measurements behind
// Tables 2–5 and Figures 4–9.
package charact

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/faultmodel"
)

// Tester wraps one chip with the state Algorithm 1 needs: the written
// data pattern, a per-iteration nonce, and the 32 ms test-length guard.
type Tester struct {
	chip *faultmodel.Chip
	bank int

	// MaxHC is the largest hammer count a single test may use, derived
	// from the 32 ms refresh-window bound of Section 4.3. Tests above it
	// would conflate retention failures with RowHammer flips.
	MaxHC int

	nonce uint64
}

// NewTester prepares a chip for characterization on the given bank.
func NewTester(chip *faultmodel.Chip, bank int) (*Tester, error) {
	if bank < 0 || bank >= chip.Banks() {
		return nil, fmt.Errorf("charact: bank %d out of range [0,%d)", bank, chip.Banks())
	}
	return &Tester{
		chip:  chip,
		bank:  bank,
		MaxHC: dram.MaxHammersIn(chip.Config().Type, 32),
	}, nil
}

// Chip returns the chip under test.
func (t *Tester) Chip() *faultmodel.Chip { return t.chip }

// WritePattern programs the data pattern into all cells (Algorithm 1
// lines 2–3).
func (t *Tester) WritePattern(p faultmodel.Pattern) { t.chip.WriteAll(p) }

// victimWindow returns the logical rows that can be disturbed when the
// given victim row is double-sided hammered, including the victim itself.
func (t *Tester) victimWindow(victim int) []int {
	radius := t.chip.BlastRadius() + 1 // aggressor offset 1 + coupling reach
	var rows []int
	step := 1
	if t.chip.Wordlines() != t.chip.Rows() {
		step = 2 // paired wordlines: two logical rows per physical step
	}
	for off := -radius * step; off <= radius*step+step-1; off++ {
		r := victim + off
		if r >= 0 && r < t.chip.Rows() {
			rows = append(rows, r)
		}
	}
	return rows
}

// HammerDoubleSided runs one core-loop iteration of Algorithm 1: refresh
// the victim, disable refresh, activate each physically-adjacent
// aggressor hc times, and collect the observed bit flips in all rows the
// hammering can disturb. It returns an error when hc exceeds the 32 ms
// bound or the victim has no two adjacent rows.
func (t *Tester) HammerDoubleSided(victim, hc int) ([]faultmodel.Flip, error) {
	if hc <= 0 {
		return nil, fmt.Errorf("charact: hammer count must be positive, got %d", hc)
	}
	if hc > t.MaxHC {
		return nil, fmt.Errorf("charact: hammer count %d exceeds the 32 ms bound (%d)", hc, t.MaxHC)
	}
	lo, hi, ok := t.chip.AggressorsFor(victim)
	if !ok {
		return nil, fmt.Errorf("charact: victim row %d has no adjacent aggressor rows", victim)
	}
	t.nonce++
	t.chip.BeginTest(t.nonce)
	if err := t.chip.Activate(t.bank, lo, hc); err != nil {
		return nil, err
	}
	if err := t.chip.Activate(t.bank, hi, hc); err != nil {
		return nil, err
	}
	var flips []faultmodel.Flip
	for _, r := range t.victimWindow(victim) {
		flips = append(flips, t.chip.ObservedFlips(t.bank, r)...)
	}
	return flips, nil
}

// HammerSingleSided activates a single aggressor row hc times and returns
// the observed flips around it (used to reverse-engineer row mappings).
func (t *Tester) HammerSingleSided(aggressor, hc int) ([]faultmodel.Flip, error) {
	if hc <= 0 || hc > 2*t.MaxHC {
		return nil, fmt.Errorf("charact: single-sided hammer count %d out of range", hc)
	}
	t.nonce++
	t.chip.BeginTest(t.nonce)
	if err := t.chip.Activate(t.bank, aggressor, hc); err != nil {
		return nil, err
	}
	var flips []faultmodel.Flip
	radius := (t.chip.BlastRadius() + 1) * 2
	for off := -radius; off <= radius; off++ {
		r := aggressor + off
		if r >= 0 && r < t.chip.Rows() && r != aggressor {
			flips = append(flips, t.chip.ObservedFlips(t.bank, r)...)
		}
	}
	return flips, nil
}

// victims returns the victim rows a full-chip sweep tests: every row that
// has aggressors on both sides, honouring the stride (stride > 1 samples
// the row space uniformly for cheaper sweeps).
func (t *Tester) victims(stride int) []int {
	if stride < 1 {
		stride = 1
	}
	var vs []int
	for v := 0; v < t.chip.Rows(); v += stride {
		if _, _, ok := t.chip.AggressorsFor(v); ok {
			vs = append(vs, v)
		}
	}
	return vs
}

// SweepResult aggregates one full-chip hammer sweep at a fixed HC.
type SweepResult struct {
	HC          int
	Pattern     faultmodel.Pattern
	Flips       map[faultmodel.Flip]bool // unique observed flips
	VictimRows  int                      // victims tested
	TestedBits  int64                    // victim rows × data bits per row
	FlipsByDist map[int]int              // victim-relative row offset → flips
}

// Rate returns the RowHammer bit flip rate: unique flipped cells over all
// tested bits (the paper's definition, Section 5.3).
func (r *SweepResult) Rate() float64 {
	if r.TestedBits == 0 {
		return 0
	}
	return float64(len(r.Flips)) / float64(r.TestedBits)
}

// Sweep double-sided hammers every victim row (at the given stride) with
// the chip's current pattern and aggregates unique flips. Flips are also
// attributed to their row offset from the victim for Figure 6.
func (t *Tester) Sweep(hc, stride int) (*SweepResult, error) {
	res := &SweepResult{
		HC:          hc,
		Pattern:     t.chip.Pattern(),
		Flips:       make(map[faultmodel.Flip]bool),
		FlipsByDist: make(map[int]int),
	}
	for _, v := range t.victims(stride) {
		flips, err := t.HammerDoubleSided(v, hc)
		if err != nil {
			return nil, err
		}
		res.VictimRows++
		for _, f := range flips {
			res.Flips[f] = true
			res.FlipsByDist[f.Row-v]++
		}
	}
	res.TestedBits = int64(res.VictimRows) * int64(t.chip.RowBits())
	return res, nil
}

// AnyFlip sweeps victims at the stride and reports whether any flip is
// observed at the given HC, stopping at the first one.
func (t *Tester) AnyFlip(hc, stride int) (bool, error) {
	for _, v := range t.victims(stride) {
		flips, err := t.HammerDoubleSided(v, hc)
		if err != nil {
			return false, err
		}
		if len(flips) > 0 {
			return true, nil
		}
	}
	return false, nil
}
