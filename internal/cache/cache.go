// Package cache models the shared last-level cache of the simulated
// system (Table 6: 16 MiB, 8-way, 64 B lines): LRU replacement,
// write-back/write-allocate, and MSHR-based miss handling in front of the
// memory controller.
package cache

import (
	"errors"
	"fmt"
)

// Backend is the memory side of the cache (the memory controller).
// EnqueueRead returns false when the read queue is full — the cache then
// rejects the access and the core retries. Writebacks must always be
// accepted (the controller keeps a write backlog). Every request carries
// the requester (source/thread) ID of the access that caused it, so the
// controller can attribute queue pressure and activations per source:
// misses carry the requester that allocated the MSHR, writebacks the
// requester whose fill or flush evicted the dirty line.
type Backend interface {
	EnqueueRead(requester int, addr int64, onDone func()) bool
	EnqueueWrite(requester int, addr int64)
}

// Config sizes the cache.
type Config struct {
	SizeBytes  int64
	Assoc      int
	LineBytes  int
	HitLatency int // CPU cycles from access to data for a hit
	MSHRs      int // outstanding distinct line misses
}

// Table6Config is the paper's LLC: 16 MiB, 8-way, 64 B lines. Hit latency
// approximates a three-level hierarchy's LLC round trip; MSHRs allow full
// memory-level parallelism across the 8-core window.
func Table6Config() Config {
	return Config{
		SizeBytes:  16 << 20,
		Assoc:      8,
		LineBytes:  64,
		HitLatency: 30,
		MSHRs:      64,
	}
}

type line struct {
	tag   int64
	valid bool
	dirty bool
}

type mshr struct {
	lineAddr int64
	req      int // requester that allocated the miss (merges ride along)
	waiters  []func()
	dirty    bool // a write merged into this fill
}

// Stats counts cache activity, per requester and total.
type Stats struct {
	Accesses, Hits, Misses int64
	Writebacks             int64
	MSHRMerges             int64
}

// Cache is a set-associative LLC. It is driven in the CPU clock domain:
// call Tick once per CPU cycle.
type Cache struct {
	cfg     Config
	sets    [][]line
	lru     [][]int8 // per-set LRU stack: lru[s][0] = most recent way
	nsets   int
	backend Backend

	mshrs map[int64]*mshr

	// hit-latency delay ring: ring[cycle % len] holds callbacks due.
	ring     [][]func()
	cycle    int64
	npending int // callbacks waiting in the ring

	Stats    Stats
	PerCore  []Stats
	nrequest int
}

// New builds a cache over the backend for n requesters (cores).
func New(cfg Config, backend Backend, cores int) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Assoc <= 0 || cfg.LineBytes <= 0 {
		return nil, errors.New("cache: size, associativity and line size must be positive")
	}
	nsets := int(cfg.SizeBytes / int64(cfg.LineBytes) / int64(cfg.Assoc))
	if nsets == 0 {
		return nil, errors.New("cache: fewer than one set")
	}
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", nsets)
	}
	if cfg.HitLatency < 1 {
		cfg.HitLatency = 1
	}
	if cfg.MSHRs < 1 {
		cfg.MSHRs = 1
	}
	c := &Cache{
		cfg:     cfg,
		nsets:   nsets,
		backend: backend,
		mshrs:   make(map[int64]*mshr),
		ring:    make([][]func(), cfg.HitLatency+1),
		PerCore: make([]Stats, cores),
	}
	// Carve all per-set slices out of two flat backing arrays: large
	// caches (32K sets) would otherwise pay 2*nsets allocations here,
	// which dominated the allocation profile of experiments that build
	// one cache hierarchy per simulated core mix.
	lineBuf := make([]line, nsets*cfg.Assoc)
	lruBuf := make([]int8, nsets*cfg.Assoc)
	c.sets = make([][]line, nsets)
	c.lru = make([][]int8, nsets)
	for i := range c.sets {
		lo, hi := i*cfg.Assoc, (i+1)*cfg.Assoc
		c.sets[i] = lineBuf[lo:hi:hi]
		order := lruBuf[lo:hi:hi]
		for w := range order {
			order[w] = int8(w)
		}
		c.lru[i] = order
	}
	return c, nil
}

// Tick advances the CPU clock and fires due hit callbacks.
func (c *Cache) Tick() {
	c.cycle++
	slot := c.cycle % int64(len(c.ring))
	if fns := c.ring[slot]; len(fns) > 0 {
		c.npending -= len(fns)
		for _, fn := range fns {
			fn()
		}
		c.ring[slot] = c.ring[slot][:0]
	}
}

// AdvanceIdle advances the CPU clock n cycles without firing anything.
// Legal only when no ring callback is due in the window — the caller must
// cap n below NextPendingCycle()-Cycle().
//
//rhlint:hotpath
func (c *Cache) AdvanceIdle(n int64) { c.cycle += n }

// Cycle returns the cache's current CPU cycle.
func (c *Cache) Cycle() int64 { return c.cycle }

// NextPendingCycle returns the cycle at which the earliest scheduled hit
// callback fires, or -1 when the ring is empty. Every scheduled callback
// is due within the next len(ring)-1 cycles, so occupied slots map back
// to absolute cycles unambiguously.
//
//rhlint:hotpath
func (c *Cache) NextPendingCycle() int64 {
	if c.npending == 0 {
		return -1
	}
	l := int64(len(c.ring))
	best := int64(-1)
	for s := int64(0); s < l; s++ {
		if len(c.ring[s]) == 0 {
			continue
		}
		d := (s - c.cycle) % l
		if d <= 0 {
			d += l
		}
		if best == -1 || c.cycle+d < best {
			best = c.cycle + d
		}
	}
	return best
}

// PendingWithin reports whether any ring callback fires within the next
// k cycles — a cheap gate (k slot probes) in front of the full
// NextPendingCycle scan for callers that only care about short windows.
//
//rhlint:hotpath
func (c *Cache) PendingWithin(k int64) bool {
	if c.npending == 0 {
		return false
	}
	l := int64(len(c.ring))
	if k >= l {
		return true // every pending callback is due within l-1 cycles
	}
	for d := int64(1); d <= k; d++ {
		if len(c.ring[(c.cycle+d)%l]) > 0 {
			return true
		}
	}
	return false
}

func (c *Cache) schedule(delay int, fn func()) {
	if delay < 1 {
		delay = 1
	}
	slot := (c.cycle + int64(delay)) % int64(len(c.ring))
	//rhlint:allow hotalloc(amortized: Tick truncates fired slots to length 0, so slot capacity is reused across cycles)
	c.ring[slot] = append(c.ring[slot], fn)
	c.npending++
}

func (c *Cache) lineAddr(addr int64) int64 { return addr / int64(c.cfg.LineBytes) }

func (c *Cache) setOf(la int64) int { return int(la & int64(c.nsets-1)) }

// touch moves way to the MRU position of set s.
func (c *Cache) touch(s, way int) {
	order := c.lru[s]
	for i, w := range order {
		if int(w) == way {
			copy(order[1:i+1], order[:i])
			order[0] = int8(way)
			return
		}
	}
}

// lookup returns the way holding la, or -1.
func (c *Cache) lookup(la int64) (set, way int) {
	s := c.setOf(la)
	for w := range c.sets[s] {
		if c.sets[s][w].valid && c.sets[s][w].tag == la {
			return s, w
		}
	}
	return s, -1
}

// install fills la into its set, evicting LRU (writing back if dirty).
// req attributes the eviction's writeback to the requester whose fill
// displaced the victim line.
func (c *Cache) install(req int, la int64, dirty bool) {
	s := c.setOf(la)
	order := c.lru[s]
	victim := int(order[len(order)-1])
	for w := range c.sets[s] { // prefer an invalid way
		if !c.sets[s][w].valid {
			victim = w
			break
		}
	}
	v := &c.sets[s][victim]
	if v.valid && v.dirty {
		c.Stats.Writebacks++
		c.backend.EnqueueWrite(req, v.tag*int64(c.cfg.LineBytes))
	}
	*v = line{tag: la, valid: true, dirty: dirty}
	c.touch(s, victim)
}

func (c *Cache) account(core int, hit bool) {
	c.Stats.Accesses++
	if hit {
		c.Stats.Hits++
	} else {
		c.Stats.Misses++
	}
	if core >= 0 && core < len(c.PerCore) {
		c.PerCore[core].Accesses++
		if hit {
			c.PerCore[core].Hits++
		} else {
			c.PerCore[core].Misses++
		}
	}
}

// access implements both reads and writes; onDone fires when the data is
// available (reads) or the line is owned (writes). It returns false when
// the access cannot be accepted this cycle (MSHRs or the controller's
// read queue are full) — the caller must retry.
func (c *Cache) access(core int, addr int64, write bool, onDone func()) bool {
	la := c.lineAddr(addr)
	if s, w := c.lookup(la); w >= 0 {
		c.account(core, true)
		c.touch(s, w)
		if write {
			c.sets[s][w].dirty = true
		}
		if onDone != nil {
			c.schedule(c.cfg.HitLatency, onDone)
		}
		return true
	}
	// Miss: merge into an in-flight fill when possible.
	if m, ok := c.mshrs[la]; ok {
		c.Stats.MSHRMerges++
		c.account(core, false)
		if write {
			m.dirty = true
		}
		if onDone != nil {
			//rhlint:allow hotalloc(miss path: waiter growth is bounded by in-flight misses and amortized against DRAM fill latency)
			m.waiters = append(m.waiters, onDone)
		}
		return true
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		return false
	}
	//rhlint:allow hotalloc(miss path: one MSHR per outstanding miss, bounded by cfg.MSHRs and amortized against DRAM fill latency)
	m := &mshr{lineAddr: la, req: core, dirty: write}
	if onDone != nil {
		//rhlint:allow hotalloc(miss path: waiter growth is bounded by in-flight misses and amortized against DRAM fill latency)
		m.waiters = append(m.waiters, onDone)
	}
	// Register the MSHR before handing the fill callback to the backend:
	// a backend that completes synchronously must find (and clear) it.
	c.mshrs[la] = m
	//rhlint:allow hotalloc(miss path: one fill closure per outstanding miss, amortized against DRAM fill latency)
	accepted := c.backend.EnqueueRead(core, la*int64(c.cfg.LineBytes), func() {
		delete(c.mshrs, la)
		c.install(m.req, la, m.dirty)
		for _, fn := range m.waiters {
			fn()
		}
	})
	if !accepted {
		delete(c.mshrs, la)
		return false
	}
	c.account(core, false)
	return true
}

// Read requests addr for the given requester (core/thread) ID; onDone
// fires when data is ready. The requester ID flows through to the memory
// controller for per-source attribution.
func (c *Cache) Read(core int, addr int64, onDone func()) bool {
	return c.access(core, addr, false, onDone)
}

// ReadUncached models a flush+load (the clflush-based access sequence
// RowHammer attack code uses): any cached copy of the line is invalidated
// (written back when dirty) and the load goes straight to the memory
// controller without allocating, so every replay reaches DRAM. Returns
// false when the controller's read queue rejects the request.
func (c *Cache) ReadUncached(core int, addr int64, onDone func()) bool {
	la := c.lineAddr(addr)
	// An in-flight fill for the line must complete first: ride it. The
	// subsequent replay will find the line cached, flush it, and miss.
	if m, ok := c.mshrs[la]; ok {
		c.Stats.MSHRMerges++
		c.account(core, false)
		if onDone != nil {
			m.waiters = append(m.waiters, onDone)
		}
		return true
	}
	if !c.backend.EnqueueRead(core, la*int64(c.cfg.LineBytes), onDone) {
		return false
	}
	if s, w := c.lookup(la); w >= 0 {
		if c.sets[s][w].dirty {
			c.Stats.Writebacks++
			c.backend.EnqueueWrite(core, la*int64(c.cfg.LineBytes))
		}
		c.sets[s][w] = line{}
	}
	c.account(core, false)
	return true
}

// Write stores to addr (write-allocate, write-back). The done callback is
// optional: stores retire immediately in the core model.
func (c *Cache) Write(core int, addr int64) bool {
	return c.access(core, addr, true, nil)
}

// MPKI returns misses per kilo-instruction given an instruction count.
func (s Stats) MPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) * 1000 / float64(instructions)
}

// ResetStats zeroes the counters (end of warmup).
func (c *Cache) ResetStats() {
	c.Stats = Stats{}
	for i := range c.PerCore {
		c.PerCore[i] = Stats{}
	}
}
