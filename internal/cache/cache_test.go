package cache

import "testing"

// fakeMem records backend traffic (with requester attribution) and
// completes reads on demand.
type fakeMem struct {
	reads     []int64
	writes    []int64
	readReqs  []int
	writeReqs []int
	pending   []func()
	rejectRd  bool
}

func (f *fakeMem) EnqueueRead(requester int, addr int64, onDone func()) bool {
	if f.rejectRd {
		return false
	}
	f.reads = append(f.reads, addr)
	f.readReqs = append(f.readReqs, requester)
	f.pending = append(f.pending, onDone)
	return true
}

func (f *fakeMem) EnqueueWrite(requester int, addr int64) {
	f.writes = append(f.writes, addr)
	f.writeReqs = append(f.writeReqs, requester)
}

func (f *fakeMem) completeAll() {
	for _, fn := range f.pending {
		fn()
	}
	f.pending = nil
}

func smallConfig() Config {
	return Config{SizeBytes: 8192, Assoc: 2, LineBytes: 64, HitLatency: 3, MSHRs: 4}
}

func newCache(t *testing.T, mem *fakeMem) *Cache {
	t.Helper()
	c, err := New(smallConfig(), mem, 2)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	mem := &fakeMem{}
	if _, err := New(Config{}, mem, 1); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(Config{SizeBytes: 1000, Assoc: 3, LineBytes: 64}, mem, 1); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
}

func TestMissThenHit(t *testing.T) {
	mem := &fakeMem{}
	c := newCache(t, mem)

	done := false
	if !c.Read(0, 0x1000, func() { done = true }) {
		t.Fatal("read rejected")
	}
	if len(mem.reads) != 1 {
		t.Fatalf("backend reads = %d", len(mem.reads))
	}
	mem.completeAll()
	if !done {
		t.Fatal("miss callback not fired")
	}

	// Second access: hit, served after HitLatency ticks, no new traffic.
	hit := false
	if !c.Read(0, 0x1000, func() { hit = true }) {
		t.Fatal("hit rejected")
	}
	if len(mem.reads) != 1 {
		t.Error("hit generated backend traffic")
	}
	for i := 0; i < smallConfig().HitLatency+1; i++ {
		c.Tick()
	}
	if !hit {
		t.Fatal("hit callback not fired after HitLatency")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestMSHRMerging(t *testing.T) {
	mem := &fakeMem{}
	c := newCache(t, mem)
	fired := 0
	c.Read(0, 0x2000, func() { fired++ })
	c.Read(1, 0x2010, func() { fired++ }) // same line
	if len(mem.reads) != 1 {
		t.Fatalf("merged miss issued %d reads", len(mem.reads))
	}
	if c.Stats.MSHRMerges != 1 {
		t.Errorf("merges = %d", c.Stats.MSHRMerges)
	}
	mem.completeAll()
	if fired != 2 {
		t.Fatalf("fired = %d, want both waiters", fired)
	}
}

func TestMSHRLimitRejects(t *testing.T) {
	mem := &fakeMem{}
	c := newCache(t, mem)
	for i := 0; i < 4; i++ {
		if !c.Read(0, int64(i)*64, func() {}) {
			t.Fatalf("read %d rejected below MSHR limit", i)
		}
	}
	if c.Read(0, 5*64, func() {}) {
		t.Error("read accepted beyond MSHR limit")
	}
	mem.completeAll()
	if !c.Read(0, 6*64, func() {}) {
		t.Error("read rejected after MSHRs freed")
	}
}

func TestBackendRejectionPropagates(t *testing.T) {
	mem := &fakeMem{rejectRd: true}
	c := newCache(t, mem)
	if c.Read(0, 0, func() {}) {
		t.Error("read accepted when the controller queue is full")
	}
	mem.rejectRd = false
	if !c.Read(0, 0, func() {}) {
		t.Error("retry rejected")
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	mem := &fakeMem{}
	c := newCache(t, mem)

	// Write miss: allocate (fetch) and mark dirty.
	if !c.Write(0, 0x40) {
		t.Fatal("write rejected")
	}
	if len(mem.reads) != 1 {
		t.Fatalf("write-allocate issued %d fetches", len(mem.reads))
	}
	mem.completeAll()

	// Evict the dirty line by filling its set (2-way: two more lines
	// mapping to set of 0x40). Set count = 8192/64/2 = 64 sets; lines
	// mapping to set 1: addresses 64 + k*64*64.
	conflict1 := int64(0x40 + 64*64)
	conflict2 := int64(0x40 + 2*64*64)
	c.Read(0, conflict1, func() {})
	mem.completeAll()
	c.Read(0, conflict2, func() {})
	mem.completeAll()
	if len(mem.writes) != 1 || mem.writes[0] != 0x40 {
		t.Fatalf("writebacks = %v, want [0x40]", mem.writes)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writeback stat = %d", c.Stats.Writebacks)
	}
}

func TestLRUKeepsHotLine(t *testing.T) {
	mem := &fakeMem{}
	c := newCache(t, mem)
	// Fill a 2-way set with lines A and B; touch A; add C. B must be the
	// victim, A must survive.
	a := int64(0)
	bAddr := int64(64 * 64)
	cAddr := int64(2 * 64 * 64)
	c.Read(0, a, func() {})
	mem.completeAll()
	c.Read(0, bAddr, func() {})
	mem.completeAll()
	c.Read(0, a, func() {}) // touch A
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	c.Read(0, cAddr, func() {})
	mem.completeAll()
	reads := len(mem.reads)
	c.Read(0, a, func() {}) // must still hit
	if len(mem.reads) != reads {
		t.Error("LRU evicted the recently used line")
	}
}

func TestRequesterAttribution(t *testing.T) {
	mem := &fakeMem{}
	c := newCache(t, mem)

	// Miss: the backend read carries the allocating requester.
	if !c.Read(5, 0x40, func() {}) {
		t.Fatal("read rejected")
	}
	if len(mem.readReqs) != 1 || mem.readReqs[0] != 5 {
		t.Fatalf("miss requesters = %v, want [5]", mem.readReqs)
	}
	mem.completeAll()

	// Dirty the line as requester 1, then evict it with fills from
	// requester 2: the writeback is attributed to the evicting requester.
	if !c.Write(1, 0x40) {
		t.Fatal("write rejected")
	}
	c.Read(2, 0x40+64*64, func() {})
	mem.completeAll()
	c.Read(2, 0x40+2*64*64, func() {})
	mem.completeAll()
	if len(mem.writeReqs) != 1 || mem.writeReqs[0] != 2 {
		t.Fatalf("writeback requesters = %v, want [2]", mem.writeReqs)
	}

	// Flush+load: the uncached read and its flush writeback both carry
	// the flushing requester.
	if !c.Write(1, 0x80) {
		t.Fatal("write rejected")
	}
	mem.completeAll() // line now cached dirty
	if !c.ReadUncached(4, 0x80, func() {}) {
		t.Fatal("uncached read rejected")
	}
	last := len(mem.readReqs) - 1
	if mem.readReqs[last] != 4 {
		t.Errorf("uncached read requester = %d, want 4", mem.readReqs[last])
	}
	if got := mem.writeReqs[len(mem.writeReqs)-1]; got != 4 {
		t.Errorf("flush writeback requester = %d, want 4", got)
	}
}

func TestPerCoreStats(t *testing.T) {
	mem := &fakeMem{}
	c := newCache(t, mem)
	c.Read(0, 0, func() {})
	c.Read(1, 64*64, func() {})
	mem.completeAll()
	if c.PerCore[0].Misses != 1 || c.PerCore[1].Misses != 1 {
		t.Errorf("per-core stats: %+v", c.PerCore)
	}
	if got := c.PerCore[0].MPKI(1000); got != 1 {
		t.Errorf("MPKI = %v, want 1", got)
	}
	c.ResetStats()
	if c.Stats.Accesses != 0 || c.PerCore[0].Misses != 0 {
		t.Error("ResetStats incomplete")
	}
}
