// Package rowhammer is the public API of this reproduction of
// "Revisiting RowHammer: An Experimental Analysis of Modern DRAM Devices
// and Mitigation Techniques" (Kim et al., ISCA 2020).
//
// It exposes four layers:
//
//   - The fault model (Chip, ChipConfig, Pattern): simulated DRAM chips
//     with RowHammer protection disabled, calibrated to the paper's 1580
//     real chips.
//   - The characterization harness (Tester): the paper's Algorithm 1
//     methodology — double-sided hammering with refresh disabled — plus
//     the measurements behind Tables 2–5 and Figures 4–9.
//   - The chip population (Modules, NewPopulation): the 300-module /
//     1580-chip census of Tables 1, 7 and 8.
//   - The system simulator and mitigation mechanisms (SimConfig, RunSim,
//     NewPARA, …): the cycle-accurate Section 6 evaluation behind
//     Figure 10.
//   - The attack subsystem (AttackSpec, HammerObserver, RunAttackEval):
//     adversarial hammering streams as first-class traces, coupled to the
//     fault model through the controller's command stream — the security
//     side of the mitigation evaluation the paper doesn't contain. The
//     TRR dodge study (NewTRR, RunTRRDodge) closes the loop on in-DRAM
//     sampling defenses: refresh-synchronized duty-cycle pacing
//     (AttackSpec.DutyCycle/Phase) escapes a sampler that blocks the
//     same attack at full rate.
//
// The experiment runners (RunTable1 … RunFigure10, RunAttackEval)
// regenerate every table and figure of the paper plus the attack
// evaluation; see EXPERIMENTS.md for paper-vs-measured values. Every
// runner fans its (configuration, chip) or (mechanism, HCfirst) grid out
// over a deterministic parallel engine: the Parallelism field of
// Options / MitigationOptions / AttackOptions bounds worker count and
// changes wall-clock time only — results are bit-identical for any value.
//
// Underneath the runners sits the declarative experiment API: every
// experiment is a named entry in a registry (Experiments()), fully
// described by a JSON-serializable ExperimentSpec (name + params + seed
// + shard) and executed by RunExperiment. Specs shard: running every
// index of a shard count — on one machine or many — and merging the
// results (MergeResults) reproduces the unsharded artifact byte for
// byte. The RunX functions are thin wrappers over this path; the rhx
// CLI exposes it directly (rhx run / merge / list).
package rowhammer

import (
	"repro/internal/attack"
	"repro/internal/charact"
	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/faultmodel"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/trace"
)

// --- Fault model -------------------------------------------------------

// Chip is a simulated DRAM chip with RowHammer protection disabled.
type Chip = faultmodel.Chip

// ChipConfig describes a chip's geometry and RowHammer vulnerability.
type ChipConfig = faultmodel.Config

// Flip is one observed bit flip.
type Flip = faultmodel.Flip

// Pattern is a DRAM data pattern (Solid, ColStripe, Checkered, RowStripe).
type Pattern = faultmodel.Pattern

// Data patterns of Section 4.3.
const (
	Solid0     = faultmodel.Solid0
	Solid1     = faultmodel.Solid1
	ColStripe0 = faultmodel.ColStripe0
	ColStripe1 = faultmodel.ColStripe1
	Checkered0 = faultmodel.Checkered0
	Checkered1 = faultmodel.Checkered1
	RowStripe0 = faultmodel.RowStripe0
	RowStripe1 = faultmodel.RowStripe1
)

// NewChip builds a chip from its configuration.
func NewChip(cfg ChipConfig) (*Chip, error) { return faultmodel.NewChip(cfg) }

// --- Characterization --------------------------------------------------

// Tester drives a chip through the paper's testing methodology.
type Tester = charact.Tester

// HCFirstOptions controls the first-flip search.
type HCFirstOptions = charact.HCFirstOptions

// NewTester prepares a chip for characterization on one bank.
func NewTester(chip *Chip, bank int) (*Tester, error) { return charact.NewTester(chip, bank) }

// --- Population --------------------------------------------------------

// ModuleSpec is one DRAM module of the population (Tables 7 and 8).
type ModuleSpec = chips.ModuleSpec

// ChipSpec is one chip of the population.
type ChipSpec = chips.ChipSpec

// Population is the instantiable chip population.
type Population = chips.Population

// Scale selects chip geometry and instantiation caps.
type Scale = chips.Scale

// TypeNode identifies a DRAM type-node configuration (e.g. LPDDR4-1y).
type TypeNode = chips.TypeNode

// Predefined population scales.
var (
	ScaleTiny   = chips.ScaleTiny
	ScaleSmall  = chips.ScaleSmall
	ScaleMedium = chips.ScaleMedium
	ScaleFull   = chips.ScaleFull
)

// AllModules returns the paper's full 300-module population.
func AllModules() []ModuleSpec { return chips.AllModules() }

// DDR3Modules, DDR4Modules and LPDDR4Modules return the per-type module
// lists (Tables 8, 7, and the synthesized LPDDR4 set).
func DDR3Modules() []ModuleSpec   { return chips.DDR3Modules() }
func DDR4Modules() []ModuleSpec   { return chips.DDR4Modules() }
func LPDDR4Modules() []ModuleSpec { return chips.LPDDR4Modules() }

// NewPopulation samples per-chip vulnerabilities for a module list.
func NewPopulation(modules []ModuleSpec, scale Scale, seed uint64) *Population {
	return chips.NewPopulation(modules, scale, seed)
}

// --- Declarative experiment API ----------------------------------------

// ExperimentSpec declares one experiment run: a registered name, its
// parameters (raw JSON, strictly decoded), a seed, and the shard of the
// task grid to execute. Specs round-trip through JSON.
type ExperimentSpec = core.ExperimentSpec

// ExperimentShard selects one slice of an experiment's task grid
// (index/count); ownership hashes stable task keys, so every partition
// covers the grid exactly once.
type ExperimentShard = core.Shard

// ExperimentResult is one run's mergeable output: its spec, the grid
// size, shard-invariant metadata and one cell per executed task. Merging
// all shards of a spec and encoding canonically reproduces the unsharded
// run byte for byte; Artifact()/Format() rebuild the typed table/figure.
type ExperimentResult = core.Result

// ExperimentInfo describes a registry entry (rhx list).
type ExperimentInfo = core.ExperimentInfo

// ExperimentExec carries execution-only knobs (Parallelism) that never
// affect results.
type ExperimentExec = core.Exec

// Experiment parameter blocks, one per experiment family: the
// characterization grids, Figure 10, the attack grid, the Pareto sweep
// (whose BLISSStreaks/BLISSClears fields are the BLISS
// scheduler-parameter axes), and the TRR dodge study (duty-cycle/phase
// pacing × sampler rate/table-size).
type (
	CharParams     = core.CharParams
	Fig10Params    = core.Fig10Params
	AttackParams   = core.AttackParams
	ParetoParams   = core.ParetoParams
	TRRDodgeParams = core.TRRDodgeParams
)

// Experiments lists the registry in canonical order.
func Experiments() []ExperimentInfo { return core.Experiments() }

// NewExperimentSpec builds a validated spec from a name, seed and a
// parameter struct (nil = defaults).
func NewExperimentSpec(name string, seed uint64, params any) (ExperimentSpec, error) {
	return core.NewSpec(name, seed, params)
}

// DecodeExperimentSpec parses and validates a spec from JSON.
func DecodeExperimentSpec(data []byte) (ExperimentSpec, error) { return core.DecodeSpec(data) }

// ParseExperimentShard parses the "index/count" CLI form.
func ParseExperimentShard(v string) (ExperimentShard, error) { return core.ParseShard(v) }

// RunExperiment executes a spec's shard of its experiment.
func RunExperiment(spec ExperimentSpec) (*ExperimentResult, error) { return core.Run(spec) }

// RunExperimentWith executes a spec with explicit execution options.
func RunExperimentWith(spec ExperimentSpec, ex ExperimentExec) (*ExperimentResult, error) {
	return core.RunWith(spec, ex)
}

// DecodeExperimentResult parses an encoded result.
func DecodeExperimentResult(data []byte) (*ExperimentResult, error) { return core.DecodeResult(data) }

// MergeExperimentResults recombines shard results of one spec.
func MergeExperimentResults(parts ...*ExperimentResult) (*ExperimentResult, error) {
	return core.MergeResults(parts...)
}

// --- Experiments -------------------------------------------------------

// Options scales the characterization experiments. Its Parallelism field
// bounds the experiment engine's worker pool (0 = all cores) without
// affecting results.
type Options = core.Options

// MitigationOptions scales the Figure 10 evaluation; like Options, its
// Parallelism field trades wall-clock for cores, never results.
type MitigationOptions = core.MitigationOptions

// DefaultOptions returns CLI-scale characterization options.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultMitigationOptions returns CLI-scale mitigation options.
func DefaultMitigationOptions() MitigationOptions { return core.DefaultMitigationOptions() }

// Experiment runners, one per paper artifact.
var (
	RunTable1  = core.RunTable1
	RunTable2  = core.RunTable2
	RunTable3  = core.RunTable3
	RunTable5  = core.RunTable5
	RunTable7  = core.RunTable7
	RunTable8  = core.RunTable8
	RunFigure4 = core.RunFigure4
	RunFigure5 = core.RunFigure5
	RunFigure6 = core.RunFigure6
	RunFigure7 = core.RunFigure7
	RunFigure9 = core.RunFigure9

	// RunHCFirstStudy backs both Figure 8 and Table 4.
	RunHCFirstStudy = core.RunHCFirstStudy

	// RunFigure10 is the mitigation-mechanism evaluation.
	RunFigure10 = core.RunFigure10
)

// --- System simulation -------------------------------------------------

// SimConfig describes one simulated system (Table 6).
type SimConfig = sim.Config

// SimResult reports one simulation run.
type SimResult = sim.Result

// Mix is a multi-programmed workload.
type Mix = trace.Mix

// Mechanism is a RowHammer mitigation mechanism.
type Mechanism = mitigation.Mechanism

// MitigationParams parameterizes a mechanism for a chip's HCfirst.
type MitigationParams = mitigation.Params

// Table6SimConfig returns the paper's simulated system configuration.
func Table6SimConfig(warmup, measure int64) SimConfig { return sim.Table6Config(warmup, measure) }

// RunSim simulates a mix on a configuration.
func RunSim(cfg SimConfig, mix Mix) (*SimResult, error) { return sim.Run(cfg, mix) }

// WorkloadMixes builds deterministic multi-programmed mixes.
func WorkloadMixes(n, cores, records int, seed uint64) []Mix {
	return trace.Mixes(n, cores, records, seed)
}

// Mechanism constructors (Section 6.1, plus the post-paper BlockHammer).
func NewPARA(p MitigationParams, tckPS int64) (Mechanism, error) {
	return mitigation.NewPARA(p, tckPS)
}
func NewIncreasedRefresh(p MitigationParams) (Mechanism, error) {
	return mitigation.NewIncreasedRefresh(p)
}
func NewProHIT(p MitigationParams) (Mechanism, error) { return mitigation.NewProHIT(p) }
func NewMRLoc(p MitigationParams) (Mechanism, error)  { return mitigation.NewMRLoc(p) }
func NewTWiCe(p MitigationParams, ideal bool) (Mechanism, error) {
	return mitigation.NewTWiCe(p, ideal)
}
func NewIdealMechanism(p MitigationParams) (Mechanism, error) { return mitigation.NewIdeal(p) }

// NewBlockHammer builds the throttling defense with proportional
// per-requester RowBlocker-Req queue admission per BlockHammer's full
// design: a blacklisted-row request is delayed in proportion to its
// source thread's RowHammer likelihood index. NewBlockHammerBinary keeps
// the binary RHLI ≥ 1 gate (the previous default) for comparison, and
// NewBlockHammerBlanket the legacy requester-blind policy. All three
// share the same RowBlocker-Act spacing, so the security guarantee is
// identical.
func NewBlockHammer(p MitigationParams) (Mechanism, error) { return mitigation.NewBlockHammer(p) }
func NewBlockHammerBinary(p MitigationParams) (Mechanism, error) {
	return mitigation.NewBlockHammerBinary(p)
}
func NewBlockHammerBlanket(p MitigationParams) (Mechanism, error) {
	return mitigation.NewBlockHammerBlanket(p)
}

// TRRConfig parameterizes the in-DRAM counter-sampled Target Row Refresh
// model: sampling rate, per-bank table size, service threshold and the
// observation-window fraction of each refresh interval.
type TRRConfig = mitigation.TRRConfig

// NewTRR builds the TRR sampler with default parameters; NewTRRWithConfig
// takes explicit ones (zero fields keep the defaults). TRR is the
// sampling defense the trr-dodge experiment paces attacks around
// (mechanism ID "TRR" in the attack/pareto grids).
func NewTRR(p MitigationParams) (Mechanism, error) { return mitigation.NewTRR(p) }
func NewTRRWithConfig(p MitigationParams, cfg TRRConfig) (Mechanism, error) {
	return mitigation.NewTRRWithConfig(p, cfg)
}

// RequesterNone marks a memory request whose source thread is unknown.
const RequesterNone = mitigation.RequesterNone

// DDR4Timing returns the DDR4-2400 timing set used by the simulations.
func DDR4Timing(rowsPerBank int) dram.Timing { return dram.DDR4_2400(rowsPerBank) }

// --- Attack subsystem ----------------------------------------------------

// AttackKind identifies an adversarial access pattern (single-sided,
// double-sided, TRRespass-style many-sided, scattered multi-bank,
// decoy-interleaved).
type AttackKind = attack.Kind

// Attack pattern catalog.
const (
	AttackSingleSided = attack.SingleSided
	AttackDoubleSided = attack.DoubleSided
	AttackManySided   = attack.ManySided
	AttackScattered   = attack.Scattered
	AttackDecoy       = attack.Decoy
)

// AttackKinds lists the pattern catalog in evaluation order.
func AttackKinds() []AttackKind { return attack.Kinds() }

// AttackSpec parameterizes one synthesized attack stream; its Synthesize
// method turns a spec plus a victim target into a first-class Trace of
// uncached hammering reads.
type AttackSpec = attack.Spec

// AttackTarget anchors an attack at a victim (bank, row).
type AttackTarget = attack.Target

// AttackRowRef names one row an attack stream deliberately activates.
type AttackRowRef = attack.RowRef

// HammerObserver is the per-bank hammer accountant coupling a memory
// controller's ACT/REF command stream to a fault-model chip; it
// implements SimConfig's CommandObserver hook.
type HammerObserver = attack.Observer

// AttackFlipEvent is one escaped bit flip with its crossing cycle.
type AttackFlipEvent = attack.FlipEvent

// NewHammerObserver builds an accountant over a chip (which must have a
// written data pattern).
func NewHammerObserver(chip *Chip) *HammerObserver { return attack.NewObserver(chip) }

// AttackOptions scales the attack evaluation; AttackEval is its result.
type AttackOptions = core.AttackOptions
type AttackEval = core.AttackEval

// AttackPoint is one (mechanism, pattern, HCfirst) outcome.
type AttackPoint = core.AttackPoint

// MechanismID names a mechanism in the evaluation runners.
type MechanismID = core.MechanismID

// DefaultAttackOptions returns the CLI-scale attack evaluation options.
func DefaultAttackOptions() AttackOptions { return core.DefaultAttackOptions() }

// RunAttackEval runs the security evaluation the paper doesn't contain:
// mixed attacker+benign simulations over a (mechanism × pattern ×
// HCfirst) grid, reporting escaped flips, time to first flip and achieved
// aggressor ACT rate alongside benign performance and bandwidth overhead.
func RunAttackEval(o AttackOptions) (*AttackEval, error) { return core.RunAttackEval(o) }

// REFWindow summarizes the command stream a HammerObserver saw between two
// consecutive REF commands (the TRR sampling granularity).
type REFWindow = attack.REFWindow

// SchedulerID names a memory-controller scheduling policy of the sweep
// runners' scheduler axis: the paper's FR-FCFS baseline or the
// fairness-aware BLISS variant (per-requester service-streak
// blacklisting).
type SchedulerID = core.SchedulerID

// Scheduler axis.
const (
	SchedFRFCFS = core.SchedFRFCFS
	SchedBLISS  = core.SchedBLISS
)

// Schedulers lists the scheduler axis in evaluation order.
func Schedulers() []SchedulerID { return core.Schedulers() }

// ParetoOptions scales the combined security/overhead sweep; ParetoSweep
// is its result and ParetoPoint one (mechanism, scheduler, HCfirst)
// frontier candidate.
type ParetoOptions = core.ParetoOptions
type ParetoSweep = core.ParetoSweep
type ParetoPoint = core.ParetoPoint

// DefaultParetoOptions returns the CLI-scale Pareto sweep options.
func DefaultParetoOptions() ParetoOptions { return core.DefaultParetoOptions() }

// RunParetoSweep evaluates the (mechanism × scheduler × HCfirst) grid
// under every attack pattern plus one attacker-free run, aggregating
// worst-case escaped flips against worst-case benign throughput into
// frontier points per HCfirst — the BlockHammer paper's Figure 11 shape,
// generalized with a scheduler axis. Results are bit-identical for any
// Parallelism.
func RunParetoSweep(o ParetoOptions) (*ParetoSweep, error) { return core.RunParetoSweep(o) }

// TRRDodge is the duty-cycle dodge study's result; DodgePoint one grid
// cell (pattern × pacing × sampler configuration) with its security
// outcome, sampler effort and per-REF timeline evidence.
type TRRDodge = core.TRRDodge
type DodgePoint = core.DodgePoint

// DefaultTRRDodgeParams returns the CLI-scale dodge-study grid.
func DefaultTRRDodgeParams() TRRDodgeParams { return core.DefaultTRRDodgeParams() }

// RunTRRDodge runs the ROADMAP's duty-cycle security study: a (sampler
// rate × table size × pattern × duty-cycle × phase) grid of attacks
// against the in-DRAM TRR sampler, reporting escaped flips, the
// sampler's effort, and the per-REF timeline evidence of the dodge. Duty
// cycle 0 is the full-rate baseline; the headline finding is a paced
// attack escaping a sampler configuration that blocks the same attack at
// full rate ("trr-dodge" in the experiment registry, cmd/rhdodge on the
// command line).
func RunTRRDodge(p TRRDodgeParams, seed uint64, parallelism int) (*TRRDodge, error) {
	return core.RunTRRDodge(p, seed, parallelism)
}

// --- DRAM substrate ------------------------------------------------------

// Channel is a cycle-accurate DRAM channel state machine.
type Channel = dram.Channel

// Geometry describes a channel's structure.
type Geometry = dram.Geometry

// Address is a (rank, bank, row, column) coordinate.
type Address = dram.Address

// AddressMapper translates byte addresses to DRAM coordinates and back.
type AddressMapper = dram.AddressMapper

// Timing holds JEDEC timing parameters in memory-clock cycles.
type Timing = dram.Timing

// MemController is the FR-FCFS memory controller with the mitigation hook.
type MemController = memctrl.Controller

// MemControllerConfig sizes the controller queues.
type MemControllerConfig = memctrl.Config

// Table6Geometry returns the paper's simulated DRAM geometry.
func Table6Geometry() Geometry { return dram.Table6Geometry() }

// NewChannel builds a DRAM channel.
func NewChannel(geo Geometry, t Timing) (*Channel, error) { return dram.NewChannel(geo, t) }

// NewAddressMapper builds the address translator for a geometry.
func NewAddressMapper(geo Geometry) (*AddressMapper, error) { return dram.NewAddressMapper(geo) }

// NewMemController builds a controller over a channel; mech may be nil.
func NewMemController(cfg MemControllerConfig, ch *Channel, mech Mechanism) (*MemController, error) {
	return memctrl.New(cfg, ch, mech)
}

// Table6MemControllerConfig returns the paper's controller parameters.
func Table6MemControllerConfig() MemControllerConfig { return memctrl.Table6Config() }
